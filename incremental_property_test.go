// Property test for the incremental lint pipeline: over randomized
// generated corpora and random single-file diffs, the incremental run
// must be byte-identical to a full run, and the affected set must be a
// superset of the units whose findings actually changed.
package pdt_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/query"
	"pdt/internal/workload"
)

// corpusSources builds the per-unit virtual file sets of one trial
// corpus: GenMergeUnits units sharing "shared.h" plus one standalone
// unit with no shared include, so affected sets have a second
// connected component to (correctly) exclude.
func corpusSources(trial int64) (map[string]map[string]string, string) {
	hdr, units := workload.GenMergeUnits(3, 3, 2)
	sources := map[string]map[string]string{}
	for u, unit := range units {
		name := fmt.Sprintf("unit%d.cpp", u)
		sources[name] = map[string]string{"shared.h": hdr, name: unit}
	}
	iso := fmt.Sprintf("int isolated%d() { return %d; }\n", trial, trial)
	sources["iso.cpp"] = map[string]string{"iso.cpp": iso}
	return sources, hdr
}

// compileCorpus compiles and merges every unit, in sorted unit order.
func compileCorpus(t *testing.T, sources map[string]map[string]string) *ductape.PDB {
	t.Helper()
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	// Sorted for a deterministic merge order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var merged *ductape.PDB
	for _, name := range names {
		db := compileFilesTU(t, sources[name], name)
		if merged == nil {
			merged = db
		} else {
			merged = ductape.Merge(merged, db)
		}
	}
	return merged
}

// mutate applies a random single-file diff to one unit and returns the
// changed file's name.
func mutate(r *rand.Rand, sources map[string]map[string]string, trial int64) string {
	victims := []string{"unit0.cpp", "unit1.cpp", "unit2.cpp", "iso.cpp"}
	name := victims[r.Intn(len(victims))]
	src := sources[name][name]
	switch r.Intn(3) {
	case 0: // new routine
		src += fmt.Sprintf("int extra_%d_%d() { return %d; }\n", trial, r.Intn(100), r.Intn(9))
	case 1: // new class with methods
		src += fmt.Sprintf("class Mut%d {\npublic:\n    int f() const { return %d; }\n};\n",
			trial, r.Intn(9))
	default: // reshape: append a multi-line routine so extents differ
		src += fmt.Sprintf("int reshaped_%d() {\n    int s = %d;\n    return s;\n}\n",
			trial, r.Intn(9))
	}
	sources[name][name] = src
	return name
}

func reportJSON(t *testing.T, diags []analysis.Diagnostic) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// findingsByUnit groups a report by the file its findings anchor to.
// Database-level findings (no file) group under "".
func findingsByUnit(diags []analysis.Diagnostic) map[string][]analysis.Diagnostic {
	out := map[string][]analysis.Diagnostic{}
	for _, d := range diags {
		out[d.Loc.File] = append(out[d.Loc.File], d)
	}
	return out
}

func TestIncrementalLintProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	const trials = 5
	for trial := int64(0); trial < trials; trial++ {
		r := rand.New(rand.NewSource(trial))

		sources, _ := corpusSources(trial)
		base := compileCorpus(t, sources)
		journal, err := durable.OpenJournal(durable.OS, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}

		// Warm the findings DB on the base corpus; the warm report must
		// already match a full run byte for byte.
		fullBase := analysis.Run(base, analysis.All(), analysis.Options{})
		warm, err := analysis.RunIncremental(base, analysis.All(),
			analysis.IncrementalOptions{Journal: journal})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reportJSON(t, warm.Diags), reportJSON(t, fullBase)) {
			t.Fatalf("trial %d: cold incremental diverges from full run", trial)
		}

		// One random single-file diff, then recompile the whole corpus.
		changed := mutate(r, sources, trial)
		next := compileCorpus(t, sources)

		fullNext := analysis.Run(next, analysis.All(), analysis.Options{})
		inc, err := analysis.RunIncremental(next, analysis.All(),
			analysis.IncrementalOptions{Journal: journal, Changed: []string{changed}})
		if err != nil {
			t.Fatal(err)
		}

		// Byte identity against the full run.
		if !bytes.Equal(reportJSON(t, inc.Diags), reportJSON(t, fullNext)) {
			t.Errorf("trial %d (changed %s): incremental report diverges from full run",
				trial, changed)
		}

		// The mutations never touch the include graph, so the file-only
		// passes must have been spliced from cache.
		reused := map[string]bool{}
		for _, name := range inc.Reused {
			reused[name] = true
		}
		if !reused["include-cycle"] || !reused["pdb-recovery"] {
			t.Errorf("trial %d: include-cycle/pdb-recovery not reused after a %s-only diff (reused=%v)",
				trial, changed, inc.Reused)
		}

		// Soundness: every unit whose findings actually changed is in
		// the affected set of the changed-file list.
		affected := query.New(next).Affected([]string{changed})
		before, after := findingsByUnit(fullBase), findingsByUnit(fullNext)
		for unit := range after {
			if unit == "" || reflect.DeepEqual(before[unit], after[unit]) {
				continue
			}
			if !affected.ContainsUnit(unit) {
				t.Errorf("trial %d: findings in %q changed but the unit is not in Affected(%s) = %v",
					trial, unit, changed, affected.Units())
			}
		}
		for unit := range before {
			if unit == "" {
				continue
			}
			if _, still := after[unit]; !still && !affected.ContainsUnit(unit) {
				t.Errorf("trial %d: findings in %q vanished but the unit is not in Affected(%s)",
					trial, unit, changed)
			}
		}

		// The standalone component must stay out of the affected set
		// when the diff is on the shared side, and vice versa.
		if changed != "iso.cpp" && affected.ContainsUnit("iso.cpp") {
			t.Errorf("trial %d: iso.cpp affected by a diff in %s", trial, changed)
		}
		if changed == "iso.cpp" && affected.ContainsUnit("unit0.cpp") {
			t.Errorf("trial %d: unit0.cpp affected by a diff in iso.cpp", trial)
		}
	}
}
