// The merge example shows the paper's multi-translation-unit workflow
// (Table 2, pdbmerge): each unit of a project is compiled to its own
// program database — as a build system would invoke cxxparse per file
// — and the databases are merged into one, eliminating the duplicate
// template instantiations the shared header produced in every unit.
package main

import (
	"fmt"
	"os"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/tools/tree"
)

const sharedHeader = `#ifndef GEOM_H
#define GEOM_H
template <class T>
class Point {
public:
    Point(T x_, T y_) : x(x_), y(y_) { }
    T dist2() const { return x * x + y * y; }
    T x, y;
};
#endif
`

var units = map[string]string{
	"render.cpp": `#include "geom.h"
double renderDistance() {
    Point<double> p(3.0, 4.0);
    return p.dist2();
}
`,
	"physics.cpp": `#include "geom.h"
double physicsStep() {
    Point<double> v(1.0, 2.0);   // duplicate instantiation
    Point<int> cell(7, 8);       // unique to this unit
    return v.dist2() + cell.dist2();
}
`,
	"main.cpp": `#include "geom.h"
double renderDistance();
double physicsStep();
int main() {
    return renderDistance() + physicsStep() > 0 ? 0 : 1;
}
`,
}

func compileUnit(name string) *ductape.PDB {
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	fs.AddVirtualFile("geom.h", sharedHeader)
	res := core.CompileSource(fs, name, units[name], opts)
	if res.HasErrors() {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

func main() {
	var dbs []*ductape.PDB
	total := 0
	for _, name := range []string{"render.cpp", "physics.cpp", "main.cpp"} {
		db := compileUnit(name)
		n := db.Raw().ItemCount()
		total += n
		fmt.Printf("compiled %-12s -> %3d PDB items "+
			"(%d classes, %d routines)\n", name, n,
			len(db.Classes()), len(db.Routines()))
		dbs = append(dbs, db)
	}

	merged := ductape.Merge(dbs...)
	fmt.Printf("\nmerged: %d items in -> %d items out "+
		"(duplicate template instantiations eliminated)\n",
		total, merged.Raw().ItemCount())

	if errs := merged.Raw().Validate(); len(errs) > 0 {
		fmt.Fprintln(os.Stderr, "integrity:", errs[0])
		os.Exit(1)
	}

	fmt.Println("\ninstantiations in the merged database:")
	for _, c := range merged.Classes() {
		if c.IsInstantiation() {
			fmt.Printf("  %s (from template %s)\n", c.Name(), c.Template().Name())
		}
	}

	fmt.Println("\nmerged static call graph:")
	tree.PrintCallGraph(os.Stdout, merged)
}
