// The callgraph example reproduces the paper's Figure 5: the pdbtree
// call-graph display implemented against the DUCTAPE API, run over the
// Figure 1 Stack program. It prints the file inclusion tree, the class
// hierarchy, and the static call graph.
package main

import (
	"fmt"
	"os"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/tools/tree"
	"pdt/internal/workload"
)

func main() {
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range workload.StackFiles() {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "TestStackAr.cpp",
		workload.StackFiles()["TestStackAr.cpp"], opts)
	if res.HasErrors() {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))

	fmt.Println("=== file inclusion tree ===")
	tree.PrintFileTree(os.Stdout, db)

	fmt.Println("=== class hierarchy ===")
	tree.PrintClassHierarchy(os.Stdout, db)

	fmt.Println("\n=== static call graph (Figure 5) ===")
	tree.PrintCallGraph(os.Stdout, db)
}
