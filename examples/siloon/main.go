// The siloon example reproduces the paper's Figure 8: SILOON uses PDT
// to parse a C++ numerics library, generates wrapper and bridging
// code, and a script drives the library through the bridge — including
// a templated class made available by explicit instantiation.
package main

import (
	"fmt"
	"os"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/siloon"
)

const library = `
#include <cmath>

// A statistics accumulator.
class Stats {
public:
    Stats() : n(0), sum(0), sumsq(0) { }
    void add(double x) { n++; sum += x; sumsq += x * x; }
    int count() const { return n; }
    double mean() const { return n > 0 ? sum / n : 0.0; }
    double variance() const {
        if (n < 2) return 0.0;
        double m = mean();
        return (sumsq - n * m * m) / (n - 1);
    }
private:
    int n;
    double sum;
    double sumsq;
};

// A templated interval; available to scripts via explicit
// instantiation (the paper's requirement for templates).
template <class T>
class Interval {
public:
    Interval(T lo, T hi) : lo_(lo), hi_(hi) { }
    T width() const { return hi_ - lo_; }
    T midpoint() const { return (lo_ + hi_) / 2; }
    bool contains(T x) const { return x >= lo_ && x <= hi_; }
private:
    T lo_;
    T hi_;
};
template class Interval<double>;

double rms(double a, double b) { return sqrt((a * a + b * b) / 2); }

int main() { return 0; }
`

const userScript = `
# Drive the C++ library from slang through the SILOON bridge.
s = Stats_new();
i = 0;
while (i < 5) {
    s.add(i * 2);          # 0 2 4 6 8
    i = i + 1;
}
print("count", s.count());
print("mean", s.mean());
print("variance", s.variance());

iv = Interval_double_new(1.5, 6.5);
print("width", iv.width());
print("mid", iv.midpoint());
print("contains 3?", iv.contains(3));
print("contains 9?", iv.contains(9));

print("rms", rms(3, 4));

Stats_delete(s);
Interval_double_delete(iv);
`

func main() {
	// 1. PDT parses the library and produces its PDB.
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "library.cpp", library, opts)
	if res.HasErrors() {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))

	// 2. SILOON generates wrapper + bridging code from the PDB.
	bindings := siloon.Generate(db, siloon.Options{IncludeFree: true})
	fmt.Println("=== generated binding table ===")
	fmt.Print(bindings.Describe())
	fmt.Println("\n=== generated slang wrapper module (excerpt) ===")
	excerpt(bindings.WrapperScript, 8)
	fmt.Println("\n=== generated C++ registration glue (excerpt) ===")
	excerpt(bindings.GlueSource, 8)

	// 3. The bridge links a slang interpreter to the library.
	_, sc, err := siloon.NewBridge(res.Unit, bindings, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siloon:", err)
		os.Exit(1)
	}

	// 4. The user script calls the library.
	fmt.Println("\n=== script output ===")
	if err := siloon.RunScript(sc, bindings, userScript); err != nil {
		fmt.Fprintln(os.Stderr, "siloon:", err)
		os.Exit(1)
	}
}

func excerpt(s string, n int) {
	count := 0
	start := 0
	for i := 0; i < len(s) && count < n; i++ {
		if s[i] == '\n' {
			fmt.Println(s[start:i])
			start = i + 1
			count++
		}
	}
	if count == n {
		fmt.Println("  ...")
	}
}
