// The quickstart example reproduces the paper's core flow on Figure
// 1's Stack program: compile C++ source with the PDT frontend, run the
// IL Analyzer to build a program database, and walk the database with
// the DUCTAPE API — listing the templates, their instantiations, and
// the attributes Figure 3 shows.
package main

import (
	"fmt"
	"os"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/workload"
)

func main() {
	// 1. Compile the paper's Figure 1 program (StackAr.h includes
	//    StackAr.cpp so templates are instantiated in the PDB file).
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range workload.StackFiles() {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "TestStackAr.cpp",
		workload.StackFiles()["TestStackAr.cpp"], opts)
	if res.HasErrors() {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}

	// 2. The IL Analyzer produces the program database.
	raw := ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{})
	db := ductape.FromRaw(raw)
	fmt.Printf("program database: %d items (%d files, %d classes, %d routines, %d templates, %d types)\n\n",
		raw.ItemCount(), len(db.Files()), len(db.Classes()),
		len(db.Routines()), len(db.Templates()), len(db.Types()))

	// 3. Navigate with DUCTAPE: templates and their instantiations.
	fmt.Println("templates:")
	for _, te := range db.Templates() {
		fmt.Printf("  te#%-4d %-12s kind=%-8s at %s\n",
			te.ID(), te.Name(), te.Kind(), te.Location())
		for _, c := range te.InstantiatedClasses() {
			fmt.Printf("          instantiates class %s\n", c.Name())
		}
		for _, r := range te.InstantiatedRoutines() {
			fmt.Printf("          instantiates routine %s\n", r.FullName())
		}
	}

	// 4. The Stack<int> class item, as in Figure 3's cl#8.
	cls := db.LookupClass("Stack<int>")
	if cls == nil {
		fmt.Fprintln(os.Stderr, "Stack<int> not found")
		os.Exit(1)
	}
	fmt.Printf("\nclass %s (instantiation of %s):\n", cls.Name(), cls.Template().Name())
	for _, m := range cls.DataMembers() {
		fmt.Printf("  member %-12s %-6s : %s\n", m.Name, m.Access, m.Type.Name())
	}
	for _, r := range cls.Functions() {
		body := "declared"
		if r.HasBody() {
			body = "instantiated"
		}
		fmt.Printf("  method %-40s [%s]\n", r.FullName(), body)
	}

	// 5. The push routine's signature reveals return and parameter
	//    types (Figure 3's ty#2058).
	push := db.LookupRoutine("Stack<int>::push(const int &)")
	if push != nil {
		sig := push.Signature()
		fmt.Printf("\npush signature: %s\n", sig.Name())
		fmt.Printf("  returns %s\n", sig.ReturnType().Name())
		for i, a := range sig.ArgumentTypes() {
			fmt.Printf("  arg %d: %s (kind %s)\n", i, a.Name(), a.Kind())
		}
		for _, call := range push.Callees() {
			fmt.Printf("  calls %s at %s\n", call.Call().FullName(), call.Location())
		}
	}
}
