// The tauprofile example reproduces the paper's Figure 7: TAU
// automatically instruments the POOMA-style Krylov (conjugate
// gradient) solver using PDT, runs it, and displays the profile. Each
// template instantiation is profiled under its own name thanks to the
// CT(*this) run-time type query.
package main

import (
	"fmt"
	"os"

	"pdt/internal/tau"
	"pdt/internal/workload"
)

func main() {
	res, err := tau.ProfileSource(workload.KrylovFiles(), "krylov.cpp", tau.VirtualClock)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tauprofile:", err)
		os.Exit(1)
	}

	fmt.Println("=== program output ===")
	fmt.Print(res.Output)

	fmt.Println("\n=== profile overview (Figure 7, left panel) ===")
	tau.WriteBars(os.Stdout, res.Runtime, 40)

	fmt.Println("\n=== flat profile (Figure 7, right panel) ===")
	tau.WriteReport(os.Stdout, res.Runtime)

	// Show a sample of what the instrumentor inserted.
	fmt.Println("=== instrumented source (excerpt) ===")
	if src, ok := res.Instrumented["krylov.h"]; ok {
		for i, line := range splitLines(src) {
			if i >= 12 {
				break
			}
			fmt.Println(line)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
