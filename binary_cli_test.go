// Acceptance tests for the binary encoding at the tool boundary:
// pdbconv translates between encodings losslessly, pdbmerge writes
// binary output on request, and a pdbd daemon serving a binary corpus
// answers byte-identically to one serving the ASCII original — same
// bodies, same fingerprints, and the same cache keys, proven by the
// binary daemon hitting the disk cache the ASCII daemon filled.
package pdt_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/obs"
	"pdt/internal/pdbd"
)

func TestPdbconvBinaryTranslation(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	src := workloadPDB(t)
	tmp := t.TempDir()
	binPath := filepath.Join(tmp, "workload.bpdb")
	backPath := filepath.Join(tmp, "back.pdb")

	if _, stderr, err := runTool(t, "pdbconv", "-to=binary", "-o", binPath, src); err != nil {
		t.Fatalf("pdbconv -to=binary: %v\n%s", err, stderr)
	}
	bin, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(bin), "PDTB") {
		t.Fatalf("binary output does not start with the PDTB magic: %q", bin[:min(len(bin), 8)])
	}

	if _, stderr, err := runTool(t, "pdbconv", "-to=ascii", "-o", backPath, binPath); err != nil {
		t.Fatalf("pdbconv -to=ascii: %v\n%s", err, stderr)
	}
	orig, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(orig) {
		t.Fatalf("ascii -> binary -> ascii via pdbconv is not byte-identical (%d vs %d bytes)",
			len(back), len(orig))
	}
	if len(bin) >= len(orig) {
		t.Errorf("binary encoding (%d bytes) is not smaller than ascii (%d bytes)", len(bin), len(orig))
	}

	// Every read-only tool must produce identical stdout from either
	// encoding — readers auto-detect, no flags needed.
	tools := []struct {
		tool string
		args []string
	}{
		{"pdbconv", nil},
		{"pdbtree", []string{"-calls"}},
		{"pdblint", []string{"-format=json"}},
		{"pdbquery", []string{"nodes"}},
	}
	for _, tc := range tools {
		var outs [2]string
		for i, path := range []string{src, binPath} {
			args := append([]string{}, tc.args...)
			if tc.tool == "pdbquery" {
				args = append([]string{path}, tc.args...)
			} else {
				args = append(args, path)
			}
			out, stderr, err := runTool(t, tc.tool, args...)
			// pdblint exits nonzero when it has findings; only other
			// tools' failures are fatal here.
			if err != nil && tc.tool != "pdblint" {
				t.Fatalf("%s %v: %v\n%s", tc.tool, args, err, stderr)
			}
			outs[i] = out
		}
		if outs[0] != outs[1] {
			t.Errorf("%s %v output differs between encodings\n--- ascii ---\n%s\n--- binary ---\n%s",
				tc.tool, tc.args, outs[0], outs[1])
		}
	}
}

func TestPdbmergeBinaryOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	src := workloadPDB(t)
	tmp := t.TempDir()
	asciiOut := filepath.Join(tmp, "merged.pdb")
	binOut := filepath.Join(tmp, "merged.bpdb")
	backOut := filepath.Join(tmp, "back.pdb")

	// Merging a database with itself dedups to the same content, so
	// the two encodings of the merge must carry the same model.
	if _, stderr, err := runTool(t, "pdbmerge", "-o", asciiOut, src, src); err != nil {
		t.Fatalf("pdbmerge: %v\n%s", err, stderr)
	}
	if _, stderr, err := runTool(t, "pdbmerge", "-format=binary", "-o", binOut, src, src); err != nil {
		t.Fatalf("pdbmerge -format=binary: %v\n%s", err, stderr)
	}
	bin, err := os.ReadFile(binOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(bin), "PDTB") {
		t.Fatal("pdbmerge -format=binary did not write a PDTB stream")
	}
	if _, stderr, err := runTool(t, "pdbconv", "-to=ascii", "-o", backOut, binOut); err != nil {
		t.Fatalf("pdbconv -to=ascii: %v\n%s", err, stderr)
	}
	want, err := os.ReadFile(asciiOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(backOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("binary pdbmerge output does not decode to the ascii pdbmerge output")
	}
}

// TestPdbdServesBinaryCorpus proves the daemon is encoding-blind: the
// same corpus served from a binary file answers every endpoint with
// the bytes the ASCII-served daemon produced, reports the same corpus
// fingerprint, and — because cache keys are derived from endpoint,
// params, and fingerprint only — hits the disk cache entries the
// ASCII daemon wrote.
func TestPdbdServesBinaryCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	asciiPath := workloadPDB(t)
	binPath := filepath.Join(t.TempDir(), "workload.bpdb")
	if _, stderr, err := runTool(t, "pdbconv", "-to=binary", "-o", binPath, asciiPath); err != nil {
		t.Fatalf("pdbconv -to=binary: %v\n%s", err, stderr)
	}
	cacheDir := t.TempDir()
	endpoints := []string{
		"/v1/query/nodes",
		"/v1/query/deps?node=file:krylov.cpp",
		"/v1/query/affected?file=StackAr.h&format=json",
		"/v1/lint",
		"/v1/lint?format=json",
		"/v1/tree?calls",
	}

	type response struct {
		body, fingerprint, tier string
	}
	serve := func(t *testing.T, path string) map[string]response {
		srv, err := pdbd.New(context.Background(), pdbd.Config{
			Paths:    []string{path},
			CacheDir: cacheDir,
			Metrics:  obs.New("pdbd"),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		out := make(map[string]response, len(endpoints))
		for _, ep := range endpoints {
			resp, err := http.Get(ts.URL + ep)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s = %d\n%s", ep, resp.StatusCode, body)
			}
			out[ep] = response{
				body:        string(body),
				fingerprint: resp.Header.Get("X-Pdbd-Fingerprint"),
				tier:        resp.Header.Get("X-Pdbd-Cache"),
			}
		}
		return out
	}

	fromASCII := serve(t, asciiPath)
	fromBinary := serve(t, binPath)
	for _, ep := range endpoints {
		a, b := fromASCII[ep], fromBinary[ep]
		if b.body != a.body {
			t.Errorf("%s body differs between encodings\n--- ascii ---\n%s\n--- binary ---\n%s",
				ep, a.body, b.body)
		}
		if a.fingerprint == "" || b.fingerprint != a.fingerprint {
			t.Errorf("%s fingerprint %q (binary) != %q (ascii)", ep, b.fingerprint, a.fingerprint)
		}
		// The binary daemon started with a cold memory cache, so a
		// disk hit proves its cache key equals the ASCII daemon's.
		if b.tier != "disk" {
			t.Errorf("%s served from %q, want a disk hit on the ascii daemon's cache entry", ep, b.tier)
		}
	}
}
