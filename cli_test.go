// Integration tests that build and drive the command-line tools the
// way a user would, over the testdata programs.
package pdt_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pdt/internal/durable"
	"pdt/internal/obs"
)

var (
	binOnce sync.Once
	binDir  string
	binErr  error
)

// buildTools compiles all cmd/ binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pdt-bin-")
		if err != nil {
			binErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			binErr = err
			binDir = string(out)
			return
		}
		binDir = dir
	})
	if binErr != nil {
		t.Fatalf("building tools: %v (%s)", binErr, binDir)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) (string, string, error) {
	t.Helper()
	bin := filepath.Join(buildTools(t), name)
	cmd := exec.Command(bin, args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	tmp := t.TempDir()
	pdbPath := filepath.Join(tmp, "stack.pdb")

	// cxxparse: C++ → PDB.
	_, stderr, err := runTool(t, "cxxparse", "-v", "-o", pdbPath,
		"testdata/cxx/stack/TestStackAr.cpp")
	if err != nil {
		t.Fatalf("cxxparse: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "PDB items") {
		t.Errorf("cxxparse -v output: %q", stderr)
	}
	data, err := os.ReadFile(pdbPath)
	if err != nil || !strings.HasPrefix(string(data), "<PDB 1.0>") {
		t.Fatalf("PDB file: %v", err)
	}

	// pdbtree: Figure 5 output.
	out, _, err := runTool(t, "pdbtree", "-calls", pdbPath)
	if err != nil {
		t.Fatalf("pdbtree: %v", err)
	}
	for _, want := range []string{"main()", "`--> Stack<int>::push(const int &)",
		"`--> Stack<int>::isFull()"} {
		if !strings.Contains(out, want) {
			t.Errorf("pdbtree missing %q:\n%s", want, out)
		}
	}

	// pdbconv: readable dump.
	out, _, err = runTool(t, "pdbconv", pdbPath)
	if err != nil {
		t.Fatalf("pdbconv: %v", err)
	}
	if !strings.Contains(out, "Program Database (PDB 1.0)") ||
		!strings.Contains(out, "Stack<int>") {
		t.Errorf("pdbconv output:\n%s", out[:200])
	}

	// pdbhtml: documentation tree.
	htmlDir := filepath.Join(tmp, "docs")
	_, stderr, err = runTool(t, "pdbhtml", "-d", htmlDir, pdbPath)
	if err != nil {
		t.Fatalf("pdbhtml: %v\n%s", err, stderr)
	}
	if _, err := os.Stat(filepath.Join(htmlDir, "index.html")); err != nil {
		t.Errorf("index.html missing: %v", err)
	}

	// pdbmerge: self-merge must keep the structure and parse.
	merged := filepath.Join(tmp, "merged.pdb")
	_, stderr, err = runTool(t, "pdbmerge", "-o", merged, pdbPath, pdbPath)
	if err != nil {
		t.Fatalf("pdbmerge: %v\n%s", err, stderr)
	}
	out, _, err = runTool(t, "pdbtree", "-calls", merged)
	if err != nil {
		t.Fatalf("pdbtree on merged: %v", err)
	}
	if strings.Count(out, "main()\n") != 1 {
		t.Errorf("self-merge duplicated main:\n%s", out)
	}
}

func TestCLIPdblint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	tmp := t.TempDir()

	// Parse each translation unit of the lint demo, then merge the
	// databases so cross-TU findings (ODR conflicts, dead routines)
	// become visible.
	var pdbs []string
	for _, tu := range []string{"one.cpp", "two.cpp", "main.cpp"} {
		out := filepath.Join(tmp, tu+".pdb")
		_, stderr, err := runTool(t, "cxxparse", "-o", out,
			filepath.Join("testdata/cxx/lintdemo", tu))
		if err != nil {
			t.Fatalf("cxxparse %s: %v\n%s", tu, err, stderr)
		}
		pdbs = append(pdbs, out)
	}
	merged := filepath.Join(tmp, "lintdemo.pdb")
	_, stderr, err := runTool(t, "pdbmerge", append([]string{"-o", merged}, pdbs...)...)
	if err != nil {
		t.Fatalf("pdbmerge: %v\n%s", err, stderr)
	}

	// JSON run: every analysis pass must report at least one finding,
	// and the highest severity (the ODR error) sets exit code 2.
	out, stderr, err := runTool(t, "pdblint", "-format=json", merged)
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("pdblint exit = %v, want exit code 2\n%s", err, stderr)
	}
	var report struct {
		SchemaVersion int              `json:"schema_version"`
		Findings      []map[string]any `json:"findings"`
	}
	if jerr := json.Unmarshal([]byte(out), &report); jerr != nil {
		t.Fatalf("pdblint JSON: %v\n%s", jerr, out)
	}
	if report.SchemaVersion != 1 {
		t.Errorf("pdblint schema_version = %d, want 1", report.SchemaVersion)
	}
	seen := map[string]bool{}
	for _, d := range report.Findings {
		seen[d["pass"].(string)] = true
	}
	for _, pass := range []string{"dead-routine", "include-cycle", "unused-include",
		"hierarchy-check", "template-bloat", "odr-duplicate"} {
		if !seen[pass] {
			t.Errorf("no %s finding in:\n%s", pass, out)
		}
	}
	for _, want := range []string{
		"include cycle: a.h -\\u003e b.h -\\u003e a.h",
		"routine 'deadHelper(int)' is defined but unreachable",
		"'a.h' includes 'unused.h' but uses nothing it provides",
		"polymorphic class 'Shape' is used as a base but its destructor is not virtual",
		"non-virtual 'Circle::scale(int, int)' hides inherited virtual 'Shape::scale(double)'",
		"template 'Grid' has 10 instantiations (threshold 8)",
		"routine 'helper(int)' has 2 conflicting signatures",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pdblint missing %q", want)
		}
	}

	// Output must be deterministic across runs.
	out2, _, _ := runTool(t, "pdblint", "-format=json", merged)
	if out != out2 {
		t.Error("pdblint JSON output differs between runs")
	}
	serial, _, _ := runTool(t, "pdblint", "-serial", "-format=json", merged)
	if out != serial {
		t.Error("pdblint serial output differs from parallel")
	}

	// Pass selection restricts findings and lowers the exit code.
	out, _, err = runTool(t, "pdblint", "-passes=include-cycle", merged)
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Errorf("pdblint -passes exit = %v, want exit code 1", err)
	}
	if !strings.Contains(out, "include cycle") || strings.Contains(out, "odr") {
		t.Errorf("pass selection output:\n%s", out)
	}
	_, stderr, err = runTool(t, "pdblint", "-passes=no-such-pass", merged)
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Errorf("unknown pass exit = %v, want exit code 3", err)
	}
	if !strings.Contains(stderr, "unknown pass") {
		t.Errorf("unknown pass stderr: %q", stderr)
	}

	// -list names every registered pass and exits cleanly.
	out, _, err = runTool(t, "pdblint", "-list")
	if err != nil {
		t.Fatalf("pdblint -list: %v", err)
	}
	for _, pass := range []string{"pdb-integrity", "dead-routine", "include-cycle",
		"unused-include", "hierarchy-check", "template-bloat", "odr-duplicate"} {
		if !strings.Contains(out, pass) {
			t.Errorf("-list missing %s:\n%s", pass, out)
		}
	}
}

func TestCLITaurun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	out, stderr, err := runTool(t, "taurun", "testdata/cxx/pooma/krylov.cpp")
	if err != nil {
		t.Fatalf("taurun: %v\n%s", err, stderr)
	}
	for _, want := range []string{"iterations 16", "converged 1",
		"%Time", "conjugateGradient()", "axpy()"} {
		if !strings.Contains(out, want) {
			t.Errorf("taurun missing %q", want)
		}
	}
}

func TestCLITauinstr(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	out, stderr, err := runTool(t, "tauinstr", "-d", dir,
		"testdata/cxx/pooma/krylov.cpp")
	if err != nil {
		t.Fatalf("tauinstr: %v\n%s", err, stderr)
	}
	if !strings.Contains(out, "instrumented") {
		t.Errorf("tauinstr output: %q", out)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) == 0 {
		t.Fatal("no instrumented files written")
	}
	found := false
	for _, e := range entries {
		b, _ := os.ReadFile(filepath.Join(dir, e.Name()))
		if strings.Contains(string(b), "TAU_PROFILE(") {
			found = true
		}
	}
	if !found {
		t.Error("no TAU_PROFILE macros in instrumented output")
	}
}

func TestCLISiloonAndSlang(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	tmp := t.TempDir()
	lib := filepath.Join(tmp, "lib.cpp")
	os.WriteFile(lib, []byte(`
class Adder {
public:
    Adder() : total(0) { }
    void add(int x) { total += x; }
    int sum() const { return total; }
private:
    int total;
};
int main() { return 0; }
`), 0o644)

	// siloongen -list shows the binding table.
	out, stderr, err := runTool(t, "siloongen", "-list", lib)
	if err != nil {
		t.Fatalf("siloongen: %v\n%s", err, stderr)
	}
	if !strings.Contains(out, "new__Adder") || !strings.Contains(out, "Adder__add") {
		t.Errorf("siloongen -list:\n%s", out)
	}

	// siloongen writes the generated files.
	genDir := filepath.Join(tmp, "gen")
	_, stderr, err = runTool(t, "siloongen", "-d", genDir, lib)
	if err != nil {
		t.Fatalf("siloongen: %v\n%s", err, stderr)
	}
	for _, f := range []string{"bindings.slang", "glue.cpp"} {
		if _, err := os.Stat(filepath.Join(genDir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}

	// slang drives the library.
	scriptPath := filepath.Join(tmp, "drv.slang")
	os.WriteFile(scriptPath, []byte(`
a = Adder_new();
a.add(40);
a.add(2);
print(a.sum());
Adder_delete(a);
`), 0o644)
	out, stderr, err = runTool(t, "slang", "-lib", lib, scriptPath)
	if err != nil {
		t.Fatalf("slang: %v\n%s", err, stderr)
	}
	if strings.TrimSpace(out) != "42" {
		t.Errorf("slang output = %q, want 42", out)
	}

	// slang without a library runs plain scripts.
	plainScript := filepath.Join(tmp, "plain.slang")
	os.WriteFile(plainScript, []byte(`print(6 * 7);`), 0o644)
	out, _, err = runTool(t, "slang", plainScript)
	if err != nil || strings.TrimSpace(out) != "42" {
		t.Errorf("plain slang: %v %q", err, out)
	}
}

// metricsSnapshot decodes the JSON snapshot a tool wrote to standard
// error under -metrics -.
func metricsSnapshot(t *testing.T, tool, stderr string) obs.Snapshot {
	t.Helper()
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(stderr), &snap); err != nil {
		t.Fatalf("%s metrics JSON: %v\n%s", tool, err, stderr)
	}
	if snap.Tool != tool {
		t.Errorf("snapshot tool = %q, want %q", snap.Tool, tool)
	}
	return snap
}

// wantSpans fails unless every named stage span appears in the
// snapshot's span tree.
func wantSpans(t *testing.T, tool string, snap obs.Snapshot, names ...string) {
	t.Helper()
	for _, name := range names {
		if snap.Find(name) == nil {
			t.Errorf("%s: no %q span in snapshot", tool, name)
		}
	}
}

// TestCLIMetrics drives every PDB tool with and without -metrics -:
// the flag must add a parseable JSON snapshot on stderr with the
// expected stage spans, and must leave the tool's real output
// byte-identical.
func TestCLIMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	tmp := t.TempDir()

	// Build the lint demo's per-TU databases; they feed every tool.
	var pdbs []string
	for _, tu := range []string{"one.cpp", "two.cpp", "main.cpp"} {
		out := filepath.Join(tmp, tu+".pdb")
		_, stderr, err := runTool(t, "cxxparse", "-o", out,
			filepath.Join("testdata/cxx/lintdemo", tu))
		if err != nil {
			t.Fatalf("cxxparse %s: %v\n%s", tu, err, stderr)
		}
		pdbs = append(pdbs, out)
	}

	// pdbmerge -j 8 -metrics -: the acceptance scenario. Split, parse,
	// and merge stage spans with item counts, plus worker utilization.
	plainOut := filepath.Join(tmp, "plain.pdb")
	if _, stderr, err := runTool(t, "pdbmerge",
		append([]string{"-j", "8", "-o", plainOut}, pdbs...)...); err != nil {
		t.Fatalf("pdbmerge: %v\n%s", err, stderr)
	}
	metricsOut := filepath.Join(tmp, "metrics.pdb")
	_, stderr, err := runTool(t, "pdbmerge",
		append([]string{"-j", "8", "-metrics", "-", "-o", metricsOut}, pdbs...)...)
	if err != nil {
		t.Fatalf("pdbmerge -metrics: %v\n%s", err, stderr)
	}
	snap := metricsSnapshot(t, "pdbmerge", stderr)
	wantSpans(t, "pdbmerge", snap, "load", "read", "split", "parse", "merge", "level-1", "write")
	if sp := snap.Find("load"); sp.Items != 3 {
		t.Errorf("load span items = %d, want 3 files", sp.Items)
	}
	if sp := snap.Find("split"); sp.Items <= 0 || sp.Bytes <= 0 {
		t.Errorf("split span = %d items / %d bytes, want both > 0", sp.Items, sp.Bytes)
	}
	if sp := snap.Find("merge"); sp.Items != 3 {
		t.Errorf("merge span items = %d, want 3 databases", sp.Items)
	}
	poolNames := map[string]bool{}
	for _, p := range snap.Pools {
		poolNames[p.Name] = true
		var busy int64
		for _, b := range p.BusyNS {
			busy += b
		}
		if p.Workers <= 0 || busy <= 0 || p.Utilization <= 0 {
			t.Errorf("pool %s: workers=%d busy=%d utilization=%f, want all > 0",
				p.Name, p.Workers, busy, p.Utilization)
		}
	}
	for _, want := range []string{"load", "merge"} {
		if !poolNames[want] {
			t.Errorf("no %q worker pool in %v", want, poolNames)
		}
	}
	// Instrumentation must not change the merged result.
	plain, err1 := os.ReadFile(plainOut)
	instr, err2 := os.ReadFile(metricsOut)
	if err1 != nil || err2 != nil {
		t.Fatalf("reading merged outputs: %v / %v", err1, err2)
	}
	if string(plain) != string(instr) {
		t.Error("pdbmerge output differs with -metrics enabled")
	}
	merged := plainOut

	// The read-only viewers: same stdout with and without the flag,
	// and the read pipeline stages present in the snapshot.
	viewers := []struct {
		tool  string
		args  []string
		spans []string
	}{
		{"pdbconv", []string{"-j", "2"}, []string{"read", "split", "parse", "reassemble", "convert"}},
		{"pdbtree", []string{"-calls"}, []string{"read", "split", "parse", "print"}},
	}
	for _, v := range viewers {
		out1, _, err := runTool(t, v.tool, append(v.args, merged)...)
		if err != nil {
			t.Fatalf("%s: %v", v.tool, err)
		}
		out2, stderr, err := runTool(t, v.tool,
			append(append([]string{"-metrics", "-"}, v.args...), merged)...)
		if err != nil {
			t.Fatalf("%s -metrics: %v\n%s", v.tool, err, stderr)
		}
		if out1 != out2 {
			t.Errorf("%s stdout differs with -metrics enabled", v.tool)
		}
		wantSpans(t, v.tool, metricsSnapshot(t, v.tool, stderr), v.spans...)
	}

	// pdbhtml writes to a directory; stdout is just the summary line.
	htmlDir := filepath.Join(tmp, "docs")
	out1, _, err := runTool(t, "pdbhtml", "-d", htmlDir, merged)
	if err != nil {
		t.Fatalf("pdbhtml: %v", err)
	}
	out2, stderr, err := runTool(t, "pdbhtml", "-d", htmlDir, "-metrics", "-", merged)
	if err != nil {
		t.Fatalf("pdbhtml -metrics: %v\n%s", err, stderr)
	}
	if out1 != out2 {
		t.Error("pdbhtml stdout differs with -metrics enabled")
	}
	wantSpans(t, "pdbhtml", metricsSnapshot(t, "pdbhtml", stderr), "read", "split", "parse", "generate")

	// pdblint: analysis span with one child per pass and a findings
	// counter; diagnostics (and the exit code) unchanged.
	wantExit := func(err error, stderr string) {
		t.Helper()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Fatalf("pdblint exit = %v, want exit code 2\n%s", err, stderr)
		}
	}
	out1, _, err = runTool(t, "pdblint", "-format=json", merged)
	wantExit(err, "")
	out2, stderr, err = runTool(t, "pdblint", "-format=json", "-metrics", "-", merged)
	wantExit(err, stderr)
	if out1 != out2 {
		t.Error("pdblint stdout differs with -metrics enabled")
	}
	snap = metricsSnapshot(t, "pdblint", stderr)
	wantSpans(t, "pdblint", snap, "read", "split", "parse", "analysis", "dead-routine", "odr-duplicate")
	if sp := snap.Find("analysis"); len(sp.Children) == 0 {
		t.Error("analysis span has no per-pass children")
	}
	if snap.Counters["analysis.findings"] <= 0 {
		t.Errorf("analysis.findings = %d, want > 0", snap.Counters["analysis.findings"])
	}

	// taurun exports the TAU profile through the same snapshot format.
	out1, _, err = runTool(t, "taurun", "testdata/cxx/pooma/krylov.cpp")
	if err != nil {
		t.Fatalf("taurun: %v", err)
	}
	out2, stderr, err = runTool(t, "taurun", "-metrics", "-", "testdata/cxx/pooma/krylov.cpp")
	if err != nil {
		t.Fatalf("taurun -metrics: %v\n%s", err, stderr)
	}
	if out1 != out2 {
		t.Error("taurun stdout differs with -metrics enabled")
	}
	snap = metricsSnapshot(t, "taurun", stderr)
	if sp := snap.Find("tau"); sp == nil || len(sp.Children) == 0 {
		t.Fatalf("taurun snapshot lacks a tau span with per-timer children:\n%s", stderr)
	}
	if snap.Counters["tau.calls"] <= 0 {
		t.Errorf("tau.calls = %d, want > 0", snap.Counters["tau.calls"])
	}

	// -metrics <file> writes the same snapshot to a file, and -trace
	// renders the human-readable span tree on stderr.
	mfile := filepath.Join(tmp, "metrics.json")
	if _, stderr, err := runTool(t, "pdbconv", "-metrics", mfile, merged); err != nil {
		t.Fatalf("pdbconv -metrics file: %v\n%s", err, stderr)
	}
	data, err := os.ReadFile(mfile)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	wantSpans(t, "pdbconv", metricsSnapshot(t, "pdbconv", string(data)), "read", "convert")
	_, stderr, err = runTool(t, "pdbconv", "-trace", merged)
	if err != nil {
		t.Fatalf("pdbconv -trace: %v", err)
	}
	for _, want := range []string{"read", "convert"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-trace output lacks %q:\n%s", want, stderr)
		}
	}
}

func TestCLIErrorReporting(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	tmp := t.TempDir()
	bad := filepath.Join(tmp, "bad.cpp")
	os.WriteFile(bad, []byte("Unknown broken ;;; int main( { return"), 0o644)
	_, stderr, err := runTool(t, "cxxparse", bad)
	if err == nil {
		t.Error("cxxparse should fail on broken input")
	}
	if stderr == "" {
		t.Error("no diagnostics printed")
	}
	// Missing file.
	_, _, err = runTool(t, "cxxparse", filepath.Join(tmp, "nope.cpp"))
	if err == nil {
		t.Error("cxxparse should fail on missing file")
	}
	// pdbtree on garbage.
	garbage := filepath.Join(tmp, "garbage.pdb")
	os.WriteFile(garbage, []byte("not a pdb"), 0o644)
	_, _, err = runTool(t, "pdbtree", garbage)
	if err == nil {
		t.Error("pdbtree should fail on a non-PDB file")
	}
}

// TestCLIResilientIngestion is the acceptance scenario of the
// resilient-ingestion work: merge a corpus in which roughly one item
// block in ten is corrupted. Lenient mode must complete, report
// recovered/dropped counts through -metrics, and exit with the
// dedicated "completed with recoveries" code; strict mode must refuse
// the damaged input.
func TestCLIResilientIngestion(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	tmp := t.TempDir()

	golden, err := os.ReadFile("testdata/golden/lintdemo.pdb")
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every tenth item block: breaking the "#" in the head
	// makes the whole block unidentifiable, the worst damage short of
	// losing bytes. Block 1 — the first item after the header — is
	// among them, which is also the one damage shape strict mode
	// detects ("attribute outside any item"); a broken head later in
	// the stream reads as an ignorable unknown attribute to the
	// historic strict parser.
	blocks := strings.Split(string(golden), "\n\n")
	var damagedBlocks int
	for i := range blocks {
		if i%10 != 1 || !strings.Contains(blocks[i], "#") {
			continue
		}
		blocks[i] = strings.Replace(blocks[i], "#", "%", 1)
		damagedBlocks++
	}
	if damagedBlocks == 0 {
		t.Fatal("corpus too small to damage")
	}
	corrupted := filepath.Join(tmp, "corrupted.pdb")
	clean := filepath.Join(tmp, "clean.pdb")
	if err := os.WriteFile(corrupted, []byte(strings.Join(blocks, "\n\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(clean, golden, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict merge refuses the damaged input with the I/O failure code.
	_, _, err = runTool(t, "pdbmerge", "-o", filepath.Join(tmp, "strict.pdb"), corrupted, clean)
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("strict pdbmerge on damaged input: err = %v, want exit 3", err)
	}

	// Lenient merge completes, counts the recoveries, and exits 4.
	merged := filepath.Join(tmp, "merged.pdb")
	qdir := filepath.Join(tmp, "quarantine")
	_, stderr, err := runTool(t, "pdbmerge", "-lenient", "-quarantine", qdir,
		"-metrics", "-", "-o", merged, corrupted, clean)
	if !errors.As(err, &ee) || ee.ExitCode() != 4 {
		t.Fatalf("lenient pdbmerge: err = %v, want exit 4 (completed with recoveries)\n%s", err, stderr)
	}
	snap := metricsSnapshot(t, "pdbmerge", stderr)
	if n := snap.Counters["load.recovered"]; n < int64(damagedBlocks) {
		t.Errorf("load.recovered = %d, want >= %d damaged blocks", n, damagedBlocks)
	}
	if snap.Counters["load.dropped_lines"] <= 0 {
		t.Error("load.dropped_lines not reported")
	}
	quarantined, err := filepath.Glob(filepath.Join(qdir, "corrupted.pdb.*.skipped"))
	if err != nil || len(quarantined) == 0 {
		t.Errorf("no quarantine files written: %v (%v)", quarantined, err)
	}

	// The merged output is a valid PDB a strict tool accepts.
	if out, stderr, err := runTool(t, "pdbconv", "-o", os.DevNull, merged); err != nil {
		t.Fatalf("pdbconv on lenient merge output: %v\n%s%s", err, out, stderr)
	}

	// A viewer in lenient mode reads the damaged file directly and
	// reports the recovery through its exit code too.
	if _, _, err := runTool(t, "pdbconv", "-lenient", "-o", os.DevNull, corrupted); !errors.As(err, &ee) || ee.ExitCode() != 4 {
		t.Fatalf("pdbconv -lenient: err = %v, want exit 4", err)
	}

	// On clean inputs lenient merging stays exit 0 and byte-identical
	// to strict merging.
	strictOut := filepath.Join(tmp, "strict-clean.pdb")
	lenientOut := filepath.Join(tmp, "lenient-clean.pdb")
	if _, stderr, err := runTool(t, "pdbmerge", "-o", strictOut, clean); err != nil {
		t.Fatalf("strict merge of clean input: %v\n%s", err, stderr)
	}
	if _, stderr, err := runTool(t, "pdbmerge", "-lenient", "-o", lenientOut, clean); err != nil {
		t.Fatalf("lenient merge of clean input: %v (want exit 0)\n%s", err, stderr)
	}
	a, _ := os.ReadFile(strictOut)
	b, _ := os.ReadFile(lenientOut)
	if string(a) != string(b) {
		t.Error("lenient merge of clean input differs from strict")
	}

	// pdblint surfaces the recovered spans as pdb-recovery warnings;
	// the findings exit code (1) wins over the recovery code.
	out, _, err := runTool(t, "pdblint", "-lenient", "-passes", "pdb-recovery", corrupted)
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("pdblint -lenient: err = %v, want exit 1 (warnings)\n%s", err, out)
	}
	if !strings.Contains(out, "pdb-recovery") {
		t.Errorf("pdblint output lacks pdb-recovery findings:\n%s", out)
	}
}

// TestCLICrashConsistentMerge drives the crash-consistency surface of
// pdbmerge end to end: checkpointed merge, resume with reuse visible
// in -metrics, flag validation, and the output/journal locks with
// their distinct exit code.
func TestCLICrashConsistentMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	tmp := t.TempDir()

	var inputs []string
	for i := 0; i < 4; i++ {
		p := filepath.Join(tmp, fmt.Sprintf("in%d.pdb", i))
		text := fmt.Sprintf("<PDB 1.0>\n\nso#1 common.h\n\nso#2 unit%d.cpp\nsinc 1\n\nro#3 f%d\nrloc so#2 1 1\nracs NA\nrkind fun\nrlink C++\n", i, i)
		if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, p)
	}
	ck := filepath.Join(tmp, "ck")

	// A checkpointed merge journals one entry per reduction unit.
	out1 := filepath.Join(tmp, "out1.pdb")
	if _, stderr, err := runTool(t, "pdbmerge",
		append([]string{"-checkpoint-dir", ck, "-o", out1}, inputs...)...); err != nil {
		t.Fatalf("pdbmerge -checkpoint-dir: %v\n%s", err, stderr)
	}
	ckpts, err := filepath.Glob(filepath.Join(ck, "*.ckpt"))
	if err != nil || len(ckpts) != 3 {
		t.Fatalf("journal entries = %v (%v), want 3 for 4 inputs", ckpts, err)
	}

	// Resume: byte-identical output, and the reuse is observable in
	// the -metrics snapshot (the PR's acceptance signal).
	out2 := filepath.Join(tmp, "out2.pdb")
	_, stderr, err := runTool(t, "pdbmerge",
		append([]string{"-checkpoint-dir", ck, "-resume", "-metrics", "-", "-o", out2}, inputs...)...)
	if err != nil {
		t.Fatalf("pdbmerge -resume: %v\n%s", err, stderr)
	}
	snap := metricsSnapshot(t, "pdbmerge", stderr)
	if got := snap.Counters["checkpoint.reused"]; got != 3 {
		t.Errorf("checkpoint.reused = %d, want 3", got)
	}
	if got := snap.Counters["checkpoint.written"]; got != 0 {
		t.Errorf("checkpoint.written = %d on a full resume, want 0", got)
	}
	wantSpans(t, "pdbmerge", snap, "write", "durable")
	a, err1 := os.ReadFile(out1)
	b, err2 := os.ReadFile(out2)
	if err1 != nil || err2 != nil {
		t.Fatalf("reading outputs: %v / %v", err1, err2)
	}
	if string(a) != string(b) {
		t.Error("resumed merge differs from the original run")
	}

	// -resume without -checkpoint-dir is a usage error.
	var ee *exec.ExitError
	if _, _, err := runTool(t, "pdbmerge",
		append([]string{"-resume", "-o", filepath.Join(tmp, "x.pdb")}, inputs...)...); !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("pdbmerge -resume without -checkpoint-dir: err = %v, want exit 3", err)
	}

	// While another process holds the output lock, a second pdbmerge
	// must fail fast with the dedicated exit code, touching nothing.
	out3 := filepath.Join(tmp, "out3.pdb")
	lock, err := durable.AcquireLock(out3 + ".lock")
	if err != nil {
		t.Fatal(err)
	}
	defer lock.Release()
	_, stderr, err = runTool(t, "pdbmerge", append([]string{"-o", out3}, inputs...)...)
	if !errors.As(err, &ee) || ee.ExitCode() != 5 {
		t.Fatalf("pdbmerge under held lock: err = %v, want exit 5\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "lock") {
		t.Errorf("lock refusal stderr does not mention the lock: %q", stderr)
	}
	if _, err := os.Lstat(out3); !os.IsNotExist(err) {
		t.Error("locked-out run still produced output")
	}

	// The checkpoint journal is guarded the same way.
	jlock, err := durable.AcquireLock(ck + ".lock")
	if err != nil {
		t.Fatal(err)
	}
	defer jlock.Release()
	_, _, err = runTool(t, "pdbmerge",
		append([]string{"-checkpoint-dir", ck, "-o", filepath.Join(tmp, "out4.pdb")}, inputs...)...)
	if !errors.As(err, &ee) || ee.ExitCode() != 5 {
		t.Fatalf("pdbmerge under held journal lock: err = %v, want exit 5", err)
	}
}
