// Differential proof that the binary PDTB encoding is a drop-in
// replacement for the ASCII encoding: over randomly parameterized
// generated corpora, ascii -> binary -> ascii is byte-identity, and
// every tool surface (pdblint, pdbquery, pdbtree, the corpus
// fingerprint) produces identical bytes whichever encoding it loads.
package pdt_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/corpus"
	"pdt/internal/ductape"
	"pdt/internal/workload"
)

// writeBothEncodings saves db in both encodings and proves the
// ascii -> binary -> ascii round-trip is byte-identical for it.
func writeBothEncodings(t *testing.T, db *ductape.PDB) (asciiPath, binPath string) {
	t.Helper()
	var ascii, bin bytes.Buffer
	if err := db.Write(&ascii); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	reread, err := ductape.Read(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("reading binary encoding back: %v", err)
	}
	var back bytes.Buffer
	if err := reread.Write(&back); err != nil {
		t.Fatal(err)
	}
	if back.String() != ascii.String() {
		t.Fatalf("ascii -> binary -> ascii is not byte-identical:\n--- direct ---\n%s\n--- via binary ---\n%s",
			ascii.String(), back.String())
	}

	dir := t.TempDir()
	asciiPath = filepath.Join(dir, "corpus.pdb")
	binPath = filepath.Join(dir, "corpus.bpdb")
	if err := os.WriteFile(asciiPath, ascii.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return asciiPath, binPath
}

// renderAll opens the database at path as a corpus and renders every
// tool surface to bytes: the content fingerprint, the pdbtree view,
// the pdblint JSON report, and a pdbquery JSON response.
func renderAll(t *testing.T, path string) map[string]string {
	t.Helper()
	ctx := context.Background()
	c, err := corpus.Open(ctx, []string{path}, corpus.Options{})
	if err != nil {
		t.Fatalf("corpus.Open(%s): %v", path, err)
	}
	out := map[string]string{"fingerprint": c.Fingerprint()}

	var tree bytes.Buffer
	if err := c.WriteTree(&tree, corpus.TreeRequest{}); err != nil {
		t.Fatal(err)
	}
	out["tree"] = tree.String()

	lres, err := c.Lint(ctx, corpus.LintRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var lint bytes.Buffer
	if err := analysis.WriteJSON(&lint, lres.Diags); err != nil {
		t.Fatal(err)
	}
	out["lint"] = lint.String()

	qres, err := c.Query(ctx, corpus.QueryRequest{Command: corpus.CmdNodes})
	if err != nil {
		t.Fatal(err)
	}
	var q bytes.Buffer
	if err := qres.Write(&q, "json"); err != nil {
		t.Fatal(err)
	}
	out["query"] = q.String()
	return out
}

// TestBinaryDifferentialCorpora draws random generator parameters from
// a fixed seed, builds each corpus with the C++ front end, and checks
// the full differential contract on every one. Run under -race in CI.
func TestBinaryDifferentialCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated corpora")
	}
	rng := rand.New(rand.NewSource(8))
	type builder struct {
		name  string
		build func(t *testing.T) *ductape.PDB
	}
	var cases []builder
	for i := 0; i < 3; i++ {
		depth, width, methods := 2+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3)
		cases = append(cases, builder{
			name: fmt.Sprintf("layered_d%dw%dm%d", depth, width, methods),
			build: func(t *testing.T) *ductape.PDB {
				files, mainFile := workload.GenLayeredLib(depth, width, methods)
				return compileFilesTU(t, files, mainFile)
			},
		})
	}
	for i := 0; i < 3; i++ {
		units, shared, local := 2+rng.Intn(3), 1+rng.Intn(4), 1+rng.Intn(3)
		cases = append(cases, builder{
			name: fmt.Sprintf("merge_u%ds%dl%d", units, shared, local),
			build: func(t *testing.T) *ductape.PDB {
				hdr, unitSrcs := workload.GenMergeUnits(units, shared, local)
				var dbs []*ductape.PDB
				for j, src := range unitSrcs {
					name := fmt.Sprintf("unit%d.cpp", j)
					dbs = append(dbs, compileFilesTU(t,
						map[string]string{"shared.h": hdr, name: src}, name))
				}
				return ductape.Merge(dbs...)
			},
		})
	}
	cases = append(cases, builder{
		name: "krylov_stack",
		build: func(t *testing.T) *ductape.PDB {
			return ductape.Merge(
				compileFilesTU(t, workload.KrylovFiles(), "krylov.cpp"),
				compileFilesTU(t, workload.StackFiles(), "TestStackAr.cpp"))
		},
	})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db := c.build(t)
			asciiPath, binPath := writeBothEncodings(t, db)
			fromASCII := renderAll(t, asciiPath)
			fromBinary := renderAll(t, binPath)
			for surface, want := range fromASCII {
				if got := fromBinary[surface]; got != want {
					t.Errorf("%s output differs between encodings\n--- ascii ---\n%s\n--- binary ---\n%s",
						surface, want, got)
				}
			}
		})
	}
}
