// Package pdt is a Go reproduction of the Program Database Toolkit
// (PDT) from "A Tool Framework for Static and Dynamic Analysis of
// Object-Oriented Software with Templates" (Lindlan et al., SC 2000).
//
// The pipeline mirrors the paper's Figure 2:
//
//	C++ source → frontend (internal/cpp/...) → IL (internal/il)
//	           → IL Analyzer (internal/ilanalyzer) → PDB (internal/pdb)
//	           → DUCTAPE API (internal/ductape)
//	           → tools (internal/tools/...), TAU (internal/tau),
//	             SILOON (internal/siloon)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// per-table/figure reproduction index. The benchmarks in bench_test.go
// regenerate the quantitative results.
package pdt
