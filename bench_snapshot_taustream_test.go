// Benchmark snapshot for the taustream profile pipeline.
//
// TestBenchSnapshotTaustream is gated on PDT_BENCH_SNAPSHOT_TAUSTREAM:
// when the variable names an output path, the test measures (1) raw
// decode+aggregate throughput of the daemon-side ingest and (2)
// end-to-end streamed throughput through the buffered client and a
// live HTTP ingest endpoint, and writes the events/sec measurements as
// JSON. CI runs it on every push and uploads the artifact; the
// committed BENCH_taustream.json is the documented baseline. A
// conservative throughput floor is asserted here: ingest must sustain
// at least 100k events/sec, the end-to-end stream at least 10k — far
// below healthy numbers, so only a real regression trips it.
package pdt_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"pdt/internal/taustream"
)

func TestBenchSnapshotTaustream(t *testing.T) {
	out := os.Getenv("PDT_BENCH_SNAPSHOT_TAUSTREAM")
	if out == "" {
		t.Skip("set PDT_BENCH_SNAPSHOT_TAUSTREAM=<path> to write the benchmark snapshot")
	}

	// Part 1: daemon-side ingest (decode + sharded aggregation), the
	// hot loop every posted batch runs through.
	const batchEvents = 4096
	events := make([]taustream.Event, 0, batchEvents)
	events = append(events, taustream.Event{Kind: taustream.KindRunStart})
	for i := 0; len(events) < batchEvents-1; i++ {
		events = append(events, taustream.Event{
			Kind: taustream.KindSample, Name: "push() Stack<int>",
			Calls: 1, Inclusive: uint64(i + 2), Exclusive: uint64(i + 1),
		}, taustream.Event{
			Kind: taustream.KindEdge, Parent: "main()", Name: "push() Stack<int>",
			Calls: 1, Inclusive: uint64(i + 2),
		})
	}
	events = append(events, taustream.Event{Kind: taustream.KindRunEnd})
	batch := taustream.AppendBatch(nil, events)

	agg := taustream.NewAggregator(nil)
	const ingestIters = 200
	start := time.Now()
	for i := 0; i < ingestIters; i++ {
		if _, err := agg.Ingest(bytes.NewReader(batch)); err != nil {
			t.Fatal(err)
		}
	}
	ingestSecs := time.Since(start).Seconds()
	ingestEvents := float64(ingestIters * len(events))
	ingestRate := ingestEvents / ingestSecs

	// Part 2: end to end — concurrent buffered clients streaming over
	// HTTP into a live aggregator, the shape of many simultaneous
	// taurun -stream runs.
	e2eAgg := taustream.NewAggregator(nil)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := e2eAgg.Ingest(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer ts.Close()
	httpc := &http.Client{Timeout: 30 * time.Second,
		Transport: &http.Transport{MaxConnsPerHost: 64, MaxIdleConnsPerHost: 64}}

	const (
		streamClients   = 8
		eventsPerClient = 20000
	)
	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < streamClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The buffer holds the whole run so the measurement is of
			// sustained delivery, not of the drop path.
			c := taustream.Dial(ts.URL, taustream.Options{
				Buffer: eventsPerClient + 16, HTTPClient: httpc})
			for j := 0; j < eventsPerClient; j++ {
				c.Sample("f()", 1, 2, 1)
			}
			if err := c.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
			if n := c.Dropped(); n != 0 {
				t.Errorf("dropped %d events with a full-run buffer", n)
			}
		}()
	}
	wg.Wait()
	streamSecs := time.Since(start).Seconds()
	streamEvents := float64(streamClients * eventsPerClient)
	streamRate := streamEvents / streamSecs

	s := e2eAgg.Snapshot()
	if s.Runs != streamClients || s.Timers[0].Calls != uint64(streamEvents) {
		t.Fatalf("end-to-end lost events: %+v", s)
	}

	t.Logf("ingest: %.0f events/sec; streamed end-to-end: %.0f events/sec", ingestRate, streamRate)
	if ingestRate < 100_000 {
		t.Errorf("ingest rate %.0f events/sec below the 100k floor", ingestRate)
	}
	if streamRate < 10_000 {
		t.Errorf("streamed rate %.0f events/sec below the 10k floor", streamRate)
	}

	snap := map[string]any{
		"generated_by":            "TestBenchSnapshotTaustream",
		"ingest_events":           int(ingestEvents),
		"ingest_events_per_sec":   ingestRate,
		"stream_clients":          streamClients,
		"stream_events":           int(streamEvents),
		"stream_events_per_sec":   streamRate,
		"batch_events":            batchEvents,
		"ingest_batch_bytes":      len(batch),
		"bytes_per_event_on_wire": float64(len(batch)) / float64(len(events)),
		"ingest_floor_events_sec": 100_000,
		"stream_floor_events_sec": 10_000,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
