// Integration test of the paper's multi-translation-unit workflow:
// each source file of a project is compiled to its own PDB (as a build
// system would), the PDBs are merged with pdbmerge semantics, and the
// merged database is queried through DUCTAPE — duplicate template
// instantiations from the shared header appear exactly once, with the
// call graph stitched across translation units.
package pdt_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/tools/tree"
	"pdt/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const matrixHeader = `#ifndef MATRIX_H
#define MATRIX_H
// A shared numerics header: class template + free function templates.
template <class T>
class Matrix2 {
public:
    Matrix2() : a(0), b(0), c(0), d(0) { }
    Matrix2(T a_, T b_, T c_, T d_) : a(a_), b(b_), c(c_), d(d_) { }
    T det() const { return a * d - b * c; }
    T trace() const { return a + d; }
    Matrix2 operator*(const Matrix2 & o) const {
        return Matrix2(a * o.a + b * o.c, a * o.b + b * o.d,
                       c * o.a + d * o.c, c * o.b + d * o.d);
    }
    T a, b, c, d;
};

template <class T>
T detProduct(const Matrix2<T> & x, const Matrix2<T> & y) {
    Matrix2<T> prod = x * y;
    return prod.det();
}
#endif
`

const unitAlpha = `#include "matrix.h"
// Unit alpha uses Matrix2<double>.
double alphaWork() {
    Matrix2<double> m(1.0, 2.0, 3.0, 4.0);
    Matrix2<double> n(0.5, 0.0, 0.0, 0.5);
    return detProduct(m, n);
}
`

const unitBeta = `#include "matrix.h"
// Unit beta also uses Matrix2<double> (duplicate instantiation) and
// Matrix2<int> (unique).
double betaWork() {
    Matrix2<double> m(2.0, 0.0, 0.0, 2.0);
    return m.det();
}
int betaCount() {
    Matrix2<int> mi(1, 2, 3, 4);
    return mi.trace();
}
`

const unitMain = `#include "matrix.h"
double alphaWork();
double betaWork();
int betaCount();
int main() {
    double total = alphaWork() + betaWork();
    return betaCount() + (total > 0 ? 0 : 1);
}
`

func compileTU(t *testing.T, name, src string) *ductape.PDB {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	fs.AddVirtualFile("matrix.h", matrixHeader)
	res := core.CompileSource(fs, name, src, opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("%s: %v", name, d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

func TestMultiTUMergeWorkflow(t *testing.T) {
	// Separate compilations, as a build system would run cxxparse.
	dbAlpha := compileTU(t, "alpha.cpp", unitAlpha)
	dbBeta := compileTU(t, "beta.cpp", unitBeta)
	dbMain := compileTU(t, "main.cpp", unitMain)

	merged := ductape.Merge(dbAlpha, dbBeta, dbMain)

	// Integrity first.
	if errs := merged.Raw().Validate(); len(errs) != 0 {
		t.Fatalf("merged PDB invalid: %v", errs[0])
	}

	// Duplicate instantiations from the shared header are deduplicated.
	count := func(name string) int {
		n := 0
		for _, c := range merged.Classes() {
			if c.Name() == name {
				n++
			}
		}
		return n
	}
	if count("Matrix2<double>") != 1 {
		t.Errorf("Matrix2<double> appears %d times", count("Matrix2<double>"))
	}
	if count("Matrix2<int>") != 1 {
		t.Errorf("Matrix2<int> appears %d times", count("Matrix2<int>"))
	}

	// Per-unit functions all survive.
	for _, fn := range []string{"alphaWork", "betaWork", "betaCount", "main"} {
		if merged.LookupRoutine(fn) == nil {
			t.Errorf("routine %s lost in merge", fn)
		}
	}

	// main was compiled against declarations only; alpha.cpp carried
	// the definition of alphaWork. The merged routine has the body.
	alpha := merged.LookupRoutine("alphaWork")
	if !alpha.HasBody() {
		t.Error("merge kept the bodyless alphaWork declaration")
	}
	if len(alpha.Callees()) == 0 {
		t.Error("alphaWork callees lost")
	}

	// The merged call graph stitches across units: main calls
	// alphaWork, which calls detProduct<double>, which calls
	// Matrix2<double>::det (through the shared instantiation).
	var sb strings.Builder
	tree.PrintCallGraph(&sb, merged)
	out := sb.String()
	for _, want := range []string{
		"main()",
		"`--> alphaWork()",
		"`--> detProduct<double>",
		"Matrix2<double>::det()",
		"Matrix2<double>::operator*(const Matrix2<double> &)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged call graph missing %q:\n%s", want, out)
		}
	}

	// The shared template exists once, pointing at both instantiations.
	matTemplates := 0
	for _, te := range merged.Templates() {
		if te.Name() == "Matrix2" && te.Kind() == ductape.TE_CLASS {
			matTemplates++
			if len(te.InstantiatedClasses()) != 2 {
				t.Errorf("Matrix2 template instantiations = %d, want 2",
					len(te.InstantiatedClasses()))
			}
		}
	}
	if matTemplates != 1 {
		t.Errorf("Matrix2 class template appears %d times", matTemplates)
	}

	// The shared header file item exists once with three includers.
	var hdr *ductape.File
	for _, f := range merged.Files() {
		if f.Name() == "matrix.h" {
			if hdr != nil {
				t.Error("matrix.h duplicated")
			}
			hdr = f
		}
	}
	if hdr == nil {
		t.Fatal("matrix.h lost")
	}
	if len(hdr.IncludedBy()) != 3 {
		t.Errorf("matrix.h includedBy = %d, want 3", len(hdr.IncludedBy()))
	}

	// Round-trip the merged database through the ASCII format.
	var buf strings.Builder
	if err := merged.Write(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := ductape.Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Classes()) != len(merged.Classes()) {
		t.Error("merged database does not round-trip")
	}
}

// compileFilesTU compiles one translation unit from a multi-file
// workload map.
func compileFilesTU(t *testing.T, files map[string]string, mainFile string) *ductape.PDB {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range files {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, mainFile, files[mainFile], opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("%s: %v", mainFile, d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

// TestPdblintWorkloadGolden runs the full analysis suite over a merged
// database built from two unrelated programs (the POOMA-style Krylov
// solver and the paper's Figure 1 stack demo) and golden-checks the
// JSON report. Merging collapses the two main() routines — they share
// the dedup key — so one program's call tree becomes unreachable: the
// exact situation pdblint exists to expose after pdbmerge.
//
// Regenerate with: go test -run TestPdblintWorkloadGolden -update
func TestPdblintWorkloadGolden(t *testing.T) {
	dbKrylov := compileFilesTU(t, workload.KrylovFiles(), "krylov.cpp")
	dbStack := compileFilesTU(t, workload.StackFiles(), "TestStackAr.cpp")
	merged := ductape.Merge(dbKrylov, dbStack)

	diags := analysis.Run(merged, analysis.All(), analysis.Options{})
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}

	// The report must be deterministic run to run.
	again := analysis.Run(merged, analysis.All(), analysis.Options{})
	var buf2 bytes.Buffer
	if err := analysis.WriteJSON(&buf2, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("analysis report is not deterministic")
	}

	// Sanity before trusting the golden file: the collapsed main must
	// leave dead routines behind.
	if !strings.Contains(buf.String(), "dead-routine") {
		t.Fatalf("no dead-routine findings in merged workload:\n%s", buf.String())
	}

	golden := filepath.Join("testdata", "golden", "pdblint_workload.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report differs from golden file %s\n--- got ---\n%s", golden, buf.String())
	}
}

// TestMergeIdempotent checks that merging a database with itself is a
// no-op structurally.
func TestMergeIdempotent(t *testing.T) {
	db := compileTU(t, "alpha.cpp", unitAlpha)
	merged := ductape.Merge(db, db)
	if merged.Raw().ItemCount() != db.Raw().ItemCount() {
		t.Errorf("self-merge changed item count: %d -> %d",
			db.Raw().ItemCount(), merged.Raw().ItemCount())
	}
	if errs := merged.Raw().Validate(); len(errs) != 0 {
		t.Errorf("self-merge invalid: %v", errs[0])
	}
}

// TestMergeAssociativeShape checks that merge order does not change
// the structural outcome (item counts per kind).
func TestMergeAssociativeShape(t *testing.T) {
	a := compileTU(t, "alpha.cpp", unitAlpha)
	b := compileTU(t, "beta.cpp", unitBeta)
	m := compileTU(t, "main.cpp", unitMain)

	x := ductape.Merge(ductape.Merge(a, b), m).Raw()
	y := ductape.Merge(a, ductape.Merge(b, m)).Raw()
	if x.ItemCount() != y.ItemCount() {
		t.Errorf("merge not shape-associative: %d vs %d", x.ItemCount(), y.ItemCount())
	}
	if len(x.Classes) != len(y.Classes) || len(x.Routines) != len(y.Routines) ||
		len(x.Templates) != len(y.Templates) {
		t.Error("per-kind counts differ between association orders")
	}
}
