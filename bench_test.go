// Benchmarks regenerating the quantitative results of EXPERIMENTS.md.
// One benchmark (family) per experiment:
//
//	B1  BenchmarkParse*                   — frontend throughput
//	B2  BenchmarkInstantiationMode*       — used vs eager instantiation (ablation D1)
//	B3  BenchmarkPDBWrite/Read            — database serialization
//	B4  BenchmarkMerge*                   — pdbmerge dedup scaling
//	B5  BenchmarkCallGraph*               — call-graph traversal (Figure 5 algorithm)
//	B6  BenchmarkInstrumentation*         — TAU instrumentation overhead (Figure 7)
//	B7  BenchmarkBridgeCall*              — SILOON bridge call overhead (Figure 8)
//	D2  BenchmarkTemplateOrigin*          — location scan vs direct template IDs
package pdt_test

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/core"
	"pdt/internal/cpp/sema"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/interp"
	"pdt/internal/pdb"
	"pdt/internal/script"
	"pdt/internal/siloon"
	"pdt/internal/tau"
	"pdt/internal/tools/tree"
	"pdt/internal/workload"
)

// compile is the benchmark frontend helper.
func compile(b *testing.B, files map[string]string, mainFile string, mode sema.InstantiationMode) *core.Result {
	b.Helper()
	opts := core.Options{Mode: mode}
	fs := core.NewFileSet(opts)
	for name, content := range files {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, mainFile, files[mainFile], opts)
	if res.HasErrors() {
		b.Fatalf("compile: %v", res.Diagnostics[0])
	}
	return res
}

// --- B1: frontend throughput -------------------------------------------------

func benchmarkParse(b *testing.B, classes int) {
	src := workload.GenClasses(classes, 4)
	lines := strings.Count(src, "\n")
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compile(b, map[string]string{"gen.cpp": src}, "gen.cpp", sema.Used)
	}
	b.ReportMetric(float64(lines), "loc")
}

func BenchmarkParse10Classes(b *testing.B)  { benchmarkParse(b, 10) }
func BenchmarkParse50Classes(b *testing.B)  { benchmarkParse(b, 50) }
func BenchmarkParse200Classes(b *testing.B) { benchmarkParse(b, 200) }

func BenchmarkParseStackFigure1(b *testing.B) {
	files := workload.StackFiles()
	for i := 0; i < b.N; i++ {
		compile(b, files, "TestStackAr.cpp", sema.Used)
	}
}

func BenchmarkParseKrylov(b *testing.B) {
	files := workload.KrylovFiles()
	for i := 0; i < b.N; i++ {
		compile(b, files, "krylov.cpp", sema.Used)
	}
}

// --- B2/D1: used vs eager instantiation --------------------------------------

func benchmarkInstantiation(b *testing.B, mode sema.InstantiationMode, members, insts, used int) {
	src := workload.GenTemplateFanout(members, insts, used)
	files := map[string]string{"gen.cpp": src}
	var bodies, items, rcalls int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := compile(b, files, "gen.cpp", mode)
		bodies = res.Stats.BodiesAnalyzed
		db := ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{})
		items = db.ItemCount()
		rcalls = 0
		for _, r := range db.Routines {
			rcalls += len(r.Calls)
		}
	}
	b.ReportMetric(float64(bodies), "bodies")
	b.ReportMetric(float64(items), "pdb-items")
	b.ReportMetric(float64(rcalls), "rcalls")
}

// The paper's §2: used mode "minimizes compilation time and the size
// of the IL". 32-member template, 16 instantiations, 4 members used.
func BenchmarkInstantiationModeUsed(b *testing.B) {
	benchmarkInstantiation(b, sema.Used, 32, 16, 4)
}

func BenchmarkInstantiationModeEager(b *testing.B) {
	benchmarkInstantiation(b, sema.Eager, 32, 16, 4)
}

// --- B3: PDB serialization -----------------------------------------------------

func buildBigPDB(b *testing.B) *pdb.PDB {
	b.Helper()
	src := workload.GenClasses(100, 6)
	res := compile(b, map[string]string{"gen.cpp": src}, "gen.cpp", sema.Used)
	return ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{})
}

func BenchmarkPDBWrite(b *testing.B) {
	db := buildBigPDB(b)
	b.ReportMetric(float64(db.ItemCount()), "items")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPDBRead(b *testing.B) {
	db := buildBigPDB(b)
	text := db.String()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdb.Read(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B4: pdbmerge dedup scaling -------------------------------------------------

func benchmarkMerge(b *testing.B, units int) {
	hdr, sources := workload.GenSharedHeaderUnits(units, 8, 2)
	dbs := make([]*ductape.PDB, 0, units)
	totalIn := 0
	for _, src := range sources {
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		fs.AddVirtualFile("shared.h", hdr)
		res := core.CompileSource(fs, "unit.cpp", src, opts)
		if res.HasErrors() {
			b.Fatalf("compile: %v", res.Diagnostics[0])
		}
		raw := ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{})
		totalIn += raw.ItemCount()
		dbs = append(dbs, ductape.FromRaw(raw))
	}
	var out int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := ductape.Merge(dbs...)
		out = merged.Raw().ItemCount()
	}
	b.ReportMetric(float64(totalIn), "items-in")
	b.ReportMetric(float64(out), "items-out")
	b.ReportMetric(float64(totalIn)/float64(out), "dedup-ratio")
}

func BenchmarkMerge2Units(b *testing.B)  { benchmarkMerge(b, 2) }
func BenchmarkMerge8Units(b *testing.B)  { benchmarkMerge(b, 8) }
func BenchmarkMerge32Units(b *testing.B) { benchmarkMerge(b, 32) }

// --- B8: pdblint pass driver, serial vs parallel ----------------------------------

// buildLintDB merges several workloads into one database large enough
// that the per-pass work dominates the driver's coordination cost.
func buildLintDB(b *testing.B) *ductape.PDB {
	b.Helper()
	hdr, sources := workload.GenSharedHeaderUnits(24, 8, 4)
	dbs := make([]*ductape.PDB, 0, len(sources)+3)
	for _, src := range sources {
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		fs.AddVirtualFile("shared.h", hdr)
		res := core.CompileSource(fs, "unit.cpp", src, opts)
		if res.HasErrors() {
			b.Fatalf("compile: %v", res.Diagnostics[0])
		}
		dbs = append(dbs, ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{})))
	}
	for _, w := range []struct {
		files map[string]string
		main  string
	}{
		{workload.KrylovFiles(), "krylov.cpp"},
		{workload.StackFiles(), "TestStackAr.cpp"},
		{map[string]string{"gen.cpp": workload.GenClasses(120, 6)}, "gen.cpp"},
	} {
		res := compile(b, w.files, w.main, sema.Used)
		dbs = append(dbs, ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{})))
	}
	return ductape.Merge(dbs...)
}

func benchmarkPdblint(b *testing.B, workers int) {
	db := buildLintDB(b)
	passes := analysis.All()
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = len(analysis.Run(db, passes, analysis.Options{Workers: workers}))
	}
	b.ReportMetric(float64(n), "findings")
}

func BenchmarkPdblintSerial(b *testing.B)   { benchmarkPdblint(b, 1) }
func BenchmarkPdblintParallel(b *testing.B) { benchmarkPdblint(b, 0) }

// --- B5: call-graph traversal -----------------------------------------------------

func benchmarkCallGraph(b *testing.B, depth, fanout int) {
	src := workload.GenCallChain(depth, fanout)
	res := compile(b, map[string]string{"gen.cpp": src}, "gen.cpp", sema.Used)
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.PrintCallGraph(io.Discard, db)
	}
}

func BenchmarkCallGraphDeep(b *testing.B) { benchmarkCallGraph(b, 12, 2) }
func BenchmarkCallGraphWide(b *testing.B) { benchmarkCallGraph(b, 4, 6) }

// --- B6: TAU instrumentation overhead (Figure 7) ----------------------------------

// BenchmarkKrylovUninstrumented measures the solver alone; the paired
// benchmark measures it with TAU timers active. The steps metric shows
// the deterministic virtual-time overhead of instrumentation.
func BenchmarkKrylovUninstrumented(b *testing.B) {
	files := workload.KrylovFiles()
	res := compile(b, files, "krylov.cpp", sema.Used)
	var steps uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New(res.Unit, interp.Options{})
		if _, err := in.Run(); err != nil {
			b.Fatal(err)
		}
		steps = in.Clock()
	}
	b.ReportMetric(float64(steps), "vsteps")
}

func BenchmarkKrylovInstrumented(b *testing.B) {
	files := workload.KrylovFiles()
	var steps uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tau.ProfileSource(files, "krylov.cpp", tau.VirtualClock)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.StopTimer()
	res, err := tau.ProfileSource(files, "krylov.cpp", tau.VirtualClock)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range res.Runtime.Profiles() {
		steps += p.Exclusive
	}
	b.ReportMetric(float64(steps), "vsteps")
}

// BenchmarkInstrumentOnly isolates the source-rewriting cost.
func BenchmarkInstrumentOnly(b *testing.B) {
	files := workload.KrylovFiles()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range files {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "krylov.cpp", files["krylov.cpp"], opts)
	if res.HasErrors() {
		b.Fatal(res.Diagnostics[0])
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tau.Instrument(fs, db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B7: SILOON bridge call overhead (Figure 8) -------------------------------------

const benchLib = `
class Counter {
public:
    Counter() : n(0) { }
    void bump() { n++; }
    int value() const { return n; }
private:
    int n;
};
int main() { return 0; }
`

func BenchmarkBridgeCall(b *testing.B) {
	res := compile(b, map[string]string{"lib.cpp": benchLib}, "lib.cpp", sema.Used)
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
	bindings := siloon.Generate(db, siloon.Options{})
	br, sc, err := siloon.NewBridge(res.Unit, bindings, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := sc.Run(bindings.WrapperScript); err != nil {
		b.Fatal(err)
	}
	if err := sc.Run(`c = Counter_new();`); err != nil {
		b.Fatal(err)
	}
	_ = br
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.Run(`Counter_bump(c);`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectCall is the baseline: the same method invoked
// directly on the C++ interpreter (no script, no bridge).
func BenchmarkDirectCall(b *testing.B) {
	res := compile(b, map[string]string{"lib.cpp": benchLib}, "lib.cpp", sema.Used)
	in := interp.New(res.Unit, interp.Options{})
	if err := in.InitGlobals(); err != nil {
		b.Fatal(err)
	}
	cls := res.Unit.LookupClass("Counter")
	obj, err := in.Construct(cls, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.CallMethod(obj, "bump", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScriptOnlyCall is the slang-side baseline: a no-op slang
// function call, isolating script interpretation cost.
func BenchmarkScriptOnlyCall(b *testing.B) {
	sc := script.NewInterp(nil)
	if err := sc.Run(`def noop() { return 0; }`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.Run(`noop();`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- D2: template-origin matching: location scan vs direct IDs -----------------------

// The scan cost grows with the number of *templates* in the pre-built
// list (the paper's §3.1 structure), so the workload declares many
// distinct templates, each instantiated.
func benchmarkTemplateOrigin(b *testing.B, mode ilanalyzer.OriginMode, k int) {
	src := workload.GenManyTemplates(k)
	res := compile(b, map[string]string{"gen.cpp": src}, "gen.cpp", sema.Used)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{TemplateOrigin: mode})
	}
}

func BenchmarkTemplateOriginScan64(b *testing.B) {
	benchmarkTemplateOrigin(b, ilanalyzer.OriginScan, 64)
}

func BenchmarkTemplateOriginDirect64(b *testing.B) {
	benchmarkTemplateOrigin(b, ilanalyzer.OriginDirect, 64)
}

func BenchmarkTemplateOriginScan256(b *testing.B) {
	benchmarkTemplateOrigin(b, ilanalyzer.OriginScan, 256)
}

func BenchmarkTemplateOriginDirect256(b *testing.B) {
	benchmarkTemplateOrigin(b, ilanalyzer.OriginDirect, 256)
}

// --- E8 shape check as a benchmark-time assertion -------------------------------------

// BenchmarkKrylovProfileShape regenerates Figure 7 and asserts its
// qualitative shape: kernel routines dominate, the solver driver is
// mostly inclusive time.
func BenchmarkKrylovProfileShape(b *testing.B) {
	var res *tau.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = tau.ProfileSource(workload.KrylovFiles(), "krylov.cpp", tau.VirtualClock)
		if err != nil {
			b.Fatal(err)
		}
	}
	profiles := res.Runtime.Profiles()
	if len(profiles) == 0 {
		b.Fatal("no profiles")
	}
	top := profiles[0].Name
	if !strings.Contains(top, "axpy") && !strings.Contains(top, "dot") &&
		!strings.Contains(top, "applyLaplacian") && !strings.Contains(top, "get") {
		b.Fatalf("top routine %q is not a kernel (shape mismatch)", top)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "top=%s", top)
	b.Log(sb.String())
}
