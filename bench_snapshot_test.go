// Benchmark snapshot for the query/incremental-lint subsystem.
//
// TestBenchSnapshotPdbquery is gated on PDT_BENCH_SNAPSHOT: when the
// variable names an output path, the test times graph construction,
// an affected-set query, and a full versus warm-incremental lint run
// over a generated many-unit corpus, and writes the measurements as
// JSON. CI runs it on every push and uploads the artifact; the
// committed BENCH_pdbquery.json is the documented baseline.
package pdt_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"pdt/internal/analysis"
	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/query"
	"pdt/internal/workload"
)

// benchCorpus compiles and merges the benchmark corpus: a layered
// header library (deep include chain, deep virtual hierarchies — the
// expensive case for the include-closure and override analyses) plus
// a set of GenMergeUnits units with distinct per-unit file names.
func benchCorpus(t *testing.T, depth, width, methods, units int) *ductape.PDB {
	t.Helper()
	lib, main := workload.GenLayeredLib(depth, width, methods)
	merged := compileFilesTU(t, lib, main)
	hdr, srcs := workload.GenMergeUnits(units, 8, 4)
	for u, src := range srcs {
		name := fmt.Sprintf("unit%d.cpp", u)
		db := compileFilesTU(t, map[string]string{"shared.h": hdr, name: src}, name)
		merged = ductape.Merge(merged, db)
	}
	return merged
}

// timeMin reports the fastest of n runs of fn, in float milliseconds —
// the min is the least noisy estimator on a shared CI runner.
func timeMin(n int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e6
}

func TestBenchSnapshotPdbquery(t *testing.T) {
	out := os.Getenv("PDT_BENCH_SNAPSHOT")
	if out == "" {
		t.Skip("set PDT_BENCH_SNAPSHOT=<path> to write the benchmark snapshot")
	}

	db := benchCorpus(t, 48, 4, 8, 8)
	passes := analysis.All()

	var g *query.Graph
	graphMS := timeMin(5, func() { g = query.New(db) })
	affectedMS := timeMin(5, func() { g.Affected([]string{"unit0.cpp"}) })
	affected := g.Affected([]string{"unit0.cpp"})

	fullMS := timeMin(5, func() { analysis.Run(db, passes, analysis.Options{}) })

	journal, err := durable.OpenJournal(durable.OS, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Cold run populates the findings DB; the warm runs splice
	// everything from cache.
	if _, err := analysis.RunIncremental(db, passes,
		analysis.IncrementalOptions{Journal: journal}); err != nil {
		t.Fatal(err)
	}
	var warm *analysis.IncrementalResult
	warmMS := timeMin(5, func() {
		warm, err = analysis.RunIncremental(db, passes, analysis.IncrementalOptions{
			Journal: journal, Graph: g, Changed: []string{"unit0.cpp"}})
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(warm.Reused) != len(passes) {
		t.Fatalf("warm run reused %d of %d passes", len(warm.Reused), len(passes))
	}

	snap := map[string]any{
		"generated_by":             "TestBenchSnapshotPdbquery",
		"corpus":                   map[string]int{"layer_depth": 48, "layer_width": 4, "layer_methods": 8, "merge_units": 8},
		"graph_nodes":              g.Len(),
		"graph_edges":              g.EdgeCount(),
		"affected_units":           len(affected.Units()),
		"graph_build_ms":           graphMS,
		"affected_query_ms":        affectedMS,
		"lint_full_ms":             fullMS,
		"lint_incremental_warm_ms": warmMS,
		"incremental_speedup":      fullMS / warmMS,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("graph %.2fms affected %.2fms full %.2fms warm-incremental %.2fms",
		graphMS, affectedMS, fullMS, warmMS)
	if warmMS >= fullMS {
		t.Errorf("warm incremental (%.2fms) is not faster than a full run (%.2fms)",
			warmMS, fullMS)
	}
}
