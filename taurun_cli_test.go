// Integration tests for taurun's include search (-I) and live
// streaming (-stream), driving the built binary the way a user would.
package pdt_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pdt/internal/taustream"
)

// TestCLITaurunIncludeDir is the regression test for the -I bug: the
// flag used to be parsed and then ignored, so a header outside the
// main file's directory was unresolvable. The committed fixture keeps
// mathutil.h in a sibling include/ directory.
func TestCLITaurunIncludeDir(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	// Without -I the header never loads: the run must fail.
	_, stderr, err := runTool(t, "taurun", "testdata/cxx/incdir/app/main.cpp")
	if err == nil {
		t.Fatal("taurun succeeded without -I; the fixture no longer isolates the header")
	}
	if !strings.Contains(stderr, "taurun:") {
		t.Errorf("stderr: %q", stderr)
	}

	out, stderr, err := runTool(t, "taurun",
		"-I", "testdata/cxx/incdir/include", "testdata/cxx/incdir/app/main.cpp")
	if err != nil {
		t.Fatalf("taurun -I: %v\n%s", err, stderr)
	}
	for _, want := range []string{"total 36", "%Time", "cube(int)", "accumulate(int, int)"} {
		if !strings.Contains(out, want) {
			t.Errorf("taurun -I output missing %q:\n%s", want, out)
		}
	}
}

// TestCLITaurunIncludeCollision pins the collision rule: when an -I
// directory carries a file with the same base name as one next to the
// main file, the main file's directory wins.
func TestCLITaurunIncludeCollision(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	mainDir := t.TempDir()
	incDir := t.TempDir()
	writeFile := func(dir, name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(mainDir, "main.cpp", `#include "value.h"
#include <iostream>
int main() {
    cout << "value " << value() << endl;
    return 0;
}
`)
	writeFile(mainDir, "value.h", "int value() { return 1; }\n")
	writeFile(incDir, "value.h", "int value() { return 2; }\n")

	out, stderr, err := runTool(t, "taurun", "-I", incDir,
		filepath.Join(mainDir, "main.cpp"))
	if err != nil {
		t.Fatalf("taurun: %v\n%s", err, stderr)
	}
	if !strings.Contains(out, "value 1") {
		t.Errorf("-I shadowed the main directory's header:\n%s", out)
	}
}

// TestCLITaurunUsage pins the corrected usage string: it must name
// every flag the tool accepts (it used to omit -I, -callpath, and
// -metrics).
func TestCLITaurunUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	_, stderr, err := runTool(t, "taurun")
	if err == nil {
		t.Fatal("taurun with no arguments succeeded")
	}
	for _, want := range []string{"-wall", "-bars", "-callpath", "-I dir", "-metrics", "-stream"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("usage missing %q: %s", want, stderr)
		}
	}
}

// TestCLITaurunStream is the end-to-end streaming smoke: taurun
// -stream posts live events to an ingest endpoint while the program
// runs, and the aggregated profile must agree with the one-shot report
// taurun prints — same timers, same call counts.
func TestCLITaurunStream(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	agg := taustream.NewAggregator(nil)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := agg.Ingest(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer ts.Close()

	// The fixture is small enough that its whole run fits the client
	// buffer: the stream must be lossless. (A firehose like the krylov
	// benchmark legitimately drops under the drop-not-block contract;
	// internal/taustream's tests cover that path.)
	out, stderr, err := runTool(t, "taurun", "-stream", ts.URL,
		"-I", "testdata/cxx/incdir/include", "testdata/cxx/incdir/app/main.cpp")
	if err != nil {
		t.Fatalf("taurun -stream: %v\n%s", err, stderr)
	}
	if strings.Contains(stderr, "dropped") {
		t.Fatalf("lossy stream on an idle server: %s", stderr)
	}

	// The one-shot stdout report must be unaffected by streaming.
	plain, _, err := runTool(t, "taurun",
		"-I", "testdata/cxx/incdir/include", "testdata/cxx/incdir/app/main.cpp")
	if err != nil {
		t.Fatal(err)
	}
	if out != plain {
		t.Error("stdout differs with -stream enabled")
	}

	snap := agg.Snapshot()
	if snap.Runs != 1 || snap.Unit != "steps" || snap.DroppedByClients != 0 {
		t.Fatalf("aggregate header: %+v", snap)
	}
	streamed := map[string]uint64{}
	for _, tm := range snap.Timers {
		streamed[tm.Name] = tm.Calls
	}
	reported := reportCalls(t, out)
	if len(reported) == 0 {
		t.Fatalf("no timers parsed from report:\n%s", out)
	}
	for name, calls := range reported {
		if streamed[name] != calls {
			t.Errorf("%s: streamed %d calls, report says %d", name, streamed[name], calls)
		}
	}
	if len(streamed) != len(reported) {
		t.Errorf("streamed %d timers, report has %d", len(streamed), len(reported))
	}
}

// TestCLITaurunStreamDeadDaemon pins the drop-not-block contract at
// the CLI surface: with nothing listening, the run still succeeds and
// prints its report; the stream failure is only a warning.
func TestCLITaurunStreamDeadDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	out, stderr, err := runTool(t, "taurun", "-stream", "127.0.0.1:1",
		"-I", "testdata/cxx/incdir/include", "testdata/cxx/incdir/app/main.cpp")
	if err != nil {
		t.Fatalf("taurun must not fail on a dead daemon: %v\n%s", err, stderr)
	}
	if !strings.Contains(out, "total 36") || !strings.Contains(out, "%Time") {
		t.Errorf("report lost: %s", out)
	}
	if !strings.Contains(stderr, "taurun: stream:") {
		t.Errorf("no stream warning on stderr: %q", stderr)
	}
}

// reportCalls parses "#Calls name" pairs out of taurun's flat-profile
// table.
func reportCalls(t *testing.T, out string) map[string]uint64 {
	t.Helper()
	// Table rows: %Time  Exclusive  Inclusive  #Calls  Name (the name
	// can carry a template instantiation suffix).
	re := regexp.MustCompile(`(?m)^\s*[\d.]+\s+\d+\s+\d+\s+(\d+)\s+(\S.*\S|\S)\s*$`)
	calls := map[string]uint64{}
	inTable := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "%Time") {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		m := re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var n uint64
		if _, err := fmt.Sscan(m[1], &n); err != nil {
			t.Fatal(err)
		}
		calls[m[2]] += n
	}
	return calls
}
