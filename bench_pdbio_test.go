// Benchmark snapshot for the PDB encodings and the sharded index maps.
//
// TestBenchSnapshotPdbio is gated on PDT_BENCH_SNAPSHOT_PDBIO: when the
// variable names an output path, the test times reading the benchmark
// corpus from the ASCII and binary encodings, measures sharded versus
// globally locked map lookup throughput under concurrency, and writes
// the measurements as JSON. CI runs it on every push and uploads the
// artifact; the committed BENCH_pdbio.json is the documented baseline.
// The binary decoder must beat the ASCII parser by at least 2x — that
// floor is asserted, not just recorded.
package pdt_test

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"pdt/internal/cmap"
	"pdt/internal/pdb"
)

// mapThroughput runs workers goroutines doing opsPerWorker lookups
// each against get, returning million-ops/second of wall time.
func mapThroughput(workers, opsPerWorker, keySpace int, get func(k int)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				get((w*opsPerWorker + i) % keySpace)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(workers*opsPerWorker) / elapsed / 1e6
}

func TestBenchSnapshotPdbio(t *testing.T) {
	out := os.Getenv("PDT_BENCH_SNAPSHOT_PDBIO")
	if out == "" {
		t.Skip("set PDT_BENCH_SNAPSHOT_PDBIO=<path> to write the benchmark snapshot")
	}

	db := benchCorpus(t, 48, 4, 8, 8)
	var ascii, bin bytes.Buffer
	if err := db.Write(&ascii); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	items := db.Raw().ItemCount()

	// Both timings go through the same auto-detecting entry point, so
	// the comparison includes the sniff both production paths pay.
	asciiMS := timeMin(9, func() {
		if _, err := pdb.Read(bytes.NewReader(ascii.Bytes())); err != nil {
			t.Fatal(err)
		}
	})
	binMS := timeMin(9, func() {
		if _, err := pdb.Read(bytes.NewReader(bin.Bytes())); err != nil {
			t.Fatal(err)
		}
	})
	asciiRate := float64(ascii.Len()) / 1e6 / (asciiMS / 1e3)
	binRate := float64(bin.Len()) / 1e6 / (binMS / 1e3)

	// Sharded versus globally RWMutex-locked map: concurrent readers
	// over the same key space. On a single core the two are close (the
	// win is uncontended lock cost); with real parallelism the global
	// lock serializes and the gap widens.
	const keySpace = 4096
	const workers = 8
	const ops = 200_000
	sharded := cmap.NewInt[int]()
	global := make(map[int]int, keySpace)
	var mu sync.RWMutex
	for i := 0; i < keySpace; i++ {
		sharded.Set(i, i)
		global[i] = i
	}
	shardedMops := mapThroughput(workers, ops, keySpace, func(k int) { sharded.Get(k) })
	globalMops := mapThroughput(workers, ops, keySpace, func(k int) {
		mu.RLock()
		_ = global[k]
		mu.RUnlock()
	})

	snap := map[string]any{
		"generated_by":       "TestBenchSnapshotPdbio",
		"corpus":             map[string]int{"layer_depth": 48, "layer_width": 4, "layer_methods": 8, "merge_units": 8},
		"items":              items,
		"ascii_bytes":        ascii.Len(),
		"binary_bytes":       bin.Len(),
		"ascii_read_ms":      asciiMS,
		"binary_read_ms":     binMS,
		"ascii_read_mb_s":    asciiRate,
		"binary_read_mb_s":   binRate,
		"binary_speedup":     asciiMS / binMS,
		"map_workers":        workers,
		"sharded_get_mops_s": shardedMops,
		"global_get_mops_s":  globalMops,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ascii %.2fms (%.1f MB/s, %d bytes) binary %.2fms (%.1f MB/s, %d bytes) speedup %.2fx; maps sharded %.1f vs global %.1f Mops/s",
		asciiMS, asciiRate, ascii.Len(), binMS, binRate, bin.Len(), asciiMS/binMS, shardedMops, globalMops)

	if binMS*2 > asciiMS {
		t.Errorf("binary read (%.2fms) is not at least 2x faster than ascii (%.2fms)", binMS, asciiMS)
	}
	if bin.Len() >= ascii.Len() {
		t.Errorf("binary encoding (%d bytes) is not smaller than ascii (%d bytes)", bin.Len(), ascii.Len())
	}
}
