// Golden integration tests for pdbquery over the merged two-program
// workload (Krylov solver + Figure 1 stack demo): the query answers in
// both formats are pinned byte-for-byte and must be deterministic.
package pdt_test

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/workload"
)

// TestCLIPdbqueryGolden drives every pdbquery command over the merged
// workload database and golden-checks text and JSON output.
//
// Regenerate with: go test -run TestCLIPdbqueryGolden -update
func TestCLIPdbqueryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dbKrylov := compileFilesTU(t, workload.KrylovFiles(), "krylov.cpp")
	dbStack := compileFilesTU(t, workload.StackFiles(), "TestStackAr.cpp")
	merged := ductape.Merge(dbKrylov, dbStack)
	path := filepath.Join(t.TempDir(), "workload.pdb")
	if err := merged.Save(path); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"nodes_text", []string{path, "nodes"}},
		{"deps_krylov_text", []string{path, "deps", "file:krylov.cpp"}},
		{"deps_krylov_json", []string{"-format=json", path, "deps", "file:krylov.cpp"}},
		{"deps_depth1_text", []string{"-depth", "1", path, "deps", "file:krylov.cpp"}},
		{"revdeps_pooma_text", []string{path, "revdeps", "pooma.h"}},
		{"revdeps_pooma_json", []string{"-format=json", path, "revdeps", "pooma.h"}},
		{"somepath_text", []string{path, "somepath", "file:krylov.cpp", "file:pooma.h"}},
		{"somepath_json", []string{"-format=json", path, "somepath", "file:krylov.cpp", "file:pooma.h"}},
		{"reaches_text", []string{path, "reaches", "file:krylov.cpp", "file:pooma.h"}},
		{"whatinputs_stackar_text", []string{path, "whatinputs", "StackAr.h"}},
		{"affected_stackar_text", []string{path, "affected", "StackAr.h"}},
		{"affected_stackar_json", []string{"-format=json", path, "affected", "StackAr.h"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, stderr, err := runTool(t, "pdbquery", c.args...)
			if err != nil {
				t.Fatalf("pdbquery %v: %v\n%s", c.args, err, stderr)
			}
			again, _, err := runTool(t, "pdbquery", c.args...)
			if err != nil || out != again {
				t.Errorf("pdbquery %v is not deterministic (err=%v)", c.args, err)
			}

			golden := filepath.Join("testdata", "golden", "pdbquery", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if !bytes.Equal([]byte(out), want) {
				t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s",
					golden, out, want)
			}
		})
	}
}

// TestCLIPdbqueryErrors covers the failure surface: unknown commands
// and nodes are usage errors, and an unreachable pair exits 1.
func TestCLIPdbqueryErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	db := compileFilesTU(t, workload.KrylovFiles(), "krylov.cpp")
	path := filepath.Join(t.TempDir(), "krylov.pdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	var ee *exec.ExitError
	if _, stderr, err := runTool(t, "pdbquery", path, "frobnicate"); !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Errorf("unknown command: err = %v, want exit 3\n%s", err, stderr)
	}
	if _, stderr, err := runTool(t, "pdbquery", path, "deps", "no-such-node"); !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Errorf("unknown node: err = %v, want exit 3\n%s", err, stderr)
	}
	// pooma.h is a leaf: it cannot reach krylov.cpp.
	out, _, err := runTool(t, "pdbquery", path, "reaches", "file:pooma.h", "file:krylov.cpp")
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Errorf("unreachable pair: err = %v, want exit 1", err)
	}
	if strings.TrimSpace(out) != "false" {
		t.Errorf("reaches output = %q, want false", out)
	}
	out, _, err = runTool(t, "pdbquery", path, "somepath", "file:pooma.h", "file:krylov.cpp")
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Errorf("somepath with no path: err = %v, want exit 1", err)
	}
	if strings.TrimSpace(out) != "no path" {
		t.Errorf("somepath output = %q, want 'no path'", out)
	}
}

// TestCLIPdblintIncremental pins the acceptance contract for the
// findings DB: a warm `pdblint -changed -findings-db` run is
// byte-identical to a full run and its metrics show cached findings
// being spliced in (lint.reused > 0).
func TestCLIPdblintIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dbKrylov := compileFilesTU(t, workload.KrylovFiles(), "krylov.cpp")
	dbStack := compileFilesTU(t, workload.StackFiles(), "TestStackAr.cpp")
	merged := ductape.Merge(dbKrylov, dbStack)
	path := filepath.Join(t.TempDir(), "workload.pdb")
	if err := merged.Save(path); err != nil {
		t.Fatal(err)
	}
	fdb := filepath.Join(t.TempDir(), "findings")

	// The merged workload has real findings, so every variant exits
	// with the findings code (1 warnings / 2 errors) — never 0 or a
	// usage/IO failure.
	wantFindings := func(err error, stderr string) {
		t.Helper()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() > 2 {
			t.Fatalf("pdblint exit = %v, want findings exit\n%s", err, stderr)
		}
	}

	full, stderr, err := runTool(t, "pdblint", path)
	wantFindings(err, stderr)

	// Cold incremental run: nothing cached yet, every pass runs, and
	// the report already matches the full run byte for byte.
	cold, stderr, err := runTool(t, "pdblint", "-findings-db", fdb, "-metrics", "-", path)
	wantFindings(err, stderr)
	if cold != full {
		t.Error("cold incremental output differs from full run")
	}
	snap := metricsSnapshot(t, "pdblint", stderr)
	if snap.Counters["lint.reran"] == 0 || snap.Counters["lint.reused"] != 0 {
		t.Errorf("cold run: reran=%d reused=%d, want all reran",
			snap.Counters["lint.reran"], snap.Counters["lint.reused"])
	}
	if snap.Counters["findings.stored"] == 0 {
		t.Error("cold run stored no findings")
	}

	// Warm run against the unchanged database: every pass is spliced
	// from the findings DB and the bytes still match the full run.
	warm, stderr, err := runTool(t, "pdblint",
		"-findings-db", fdb, "-changed", "krylov.cpp", "-metrics", "-", path)
	wantFindings(err, stderr)
	if warm != full {
		t.Error("warm incremental output differs from full run")
	}
	snap = metricsSnapshot(t, "pdblint", stderr)
	if snap.Counters["lint.reused"] == 0 || snap.Counters["lint.reran"] != 0 {
		t.Errorf("warm run: reused=%d reran=%d, want all reused",
			snap.Counters["lint.reused"], snap.Counters["lint.reran"])
	}
	if snap.Counters["lint.affected_units"] == 0 {
		t.Error("warm run with -changed reported no affected units")
	}
	wantSpans(t, "pdblint", snap, "incremental", "fingerprint", "affected")
}
