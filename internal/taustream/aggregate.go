package taustream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"pdt/internal/cmap"
	"pdt/internal/obs"
	"pdt/internal/schema"
	"pdt/internal/tau"
)

// ErrMalformed marks an ingest payload the decoder rejected; the
// daemon maps it onto its bad-request envelope.
var ErrMalformed = errors.New("malformed profile stream")

// timerStats accumulates one timer name across runs. Counters are
// atomic so concurrent ingests only contend on the cmap shard long
// enough to find the record, never while adding to it.
type timerStats struct {
	calls atomic.Uint64
	incl  atomic.Uint64
	excl  atomic.Uint64
}

// edgeStats accumulates one parent→child edge across runs.
type edgeStats struct {
	calls atomic.Uint64
	incl  atomic.Uint64
}

// Aggregator accumulates streamed profile events from many concurrent
// instrumented runs into per-routine (flat) and per-edge (call-path)
// statistics, sharded on internal/cmap so ingests from many
// connections scale across cores. Aggregation is additive and
// commutative: interleaving runs' batches in any order yields the
// same totals.
type Aggregator struct {
	metrics *obs.Metrics
	timers  *cmap.Map[string, *timerStats]
	edges   *cmap.Map[string, *edgeStats] // key: parent + "\x1f" + child

	runs          atomic.Uint64
	stepsRuns     atomic.Uint64
	nanosRuns     atomic.Uint64
	clientDropped atomic.Uint64
	epoch         atomic.Uint64 // bumped on every state change (memo key)
}

// NewAggregator builds an empty aggregator reporting into m (nil
// disables instrumentation).
func NewAggregator(m *obs.Metrics) *Aggregator {
	return &Aggregator{
		metrics: m,
		timers:  cmap.NewString[*timerStats](),
		edges:   cmap.NewString[*edgeStats](),
	}
}

// Epoch returns a counter that changes whenever the aggregate state
// does; renderers memoize on it.
func (a *Aggregator) Epoch() uint64 { return a.epoch.Load() }

// Ingest decodes one posted batch and applies its events. It returns
// how many events were applied; decode failures return ErrMalformed
// (wrapped) without applying anything from the bad frame onward.
func (a *Aggregator) Ingest(r io.Reader) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	a.metrics.Counter("ingest.bytes").Add(int64(len(data)))
	events, skipped, err := DecodeBatch(data)
	if err != nil {
		a.metrics.Counter("ingest.rejected").Add(1)
		return 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if skipped > 0 {
		a.metrics.Counter("ingest.unknown_kinds").Add(int64(skipped))
	}
	for i := range events {
		a.apply(&events[i])
	}
	a.metrics.Counter("ingest.events").Add(int64(len(events)))
	return len(events), nil
}

func (a *Aggregator) apply(ev *Event) {
	switch ev.Kind {
	case KindRunStart:
		a.runs.Add(1)
		if ev.Unit == UnitNanos {
			a.nanosRuns.Add(1)
		} else {
			a.stepsRuns.Add(1)
		}
	case KindSample:
		a.addSample(ev.Name, ev.Calls, ev.Inclusive, ev.Exclusive)
	case KindEdge:
		a.addEdge(ev.Parent, ev.Name, ev.Calls, ev.Inclusive)
	case KindRunEnd:
		a.clientDropped.Add(ev.Dropped)
		a.metrics.Counter("ingest.client_dropped").Add(int64(ev.Dropped))
	}
	a.epoch.Add(1)
}

func (a *Aggregator) addSample(name string, calls, incl, excl uint64) {
	ts, ok := a.timers.Get(name)
	if !ok {
		ts, _ = a.timers.GetOrSet(name, &timerStats{})
	}
	ts.calls.Add(calls)
	ts.incl.Add(incl)
	ts.excl.Add(excl)
}

func (a *Aggregator) addEdge(parent, child string, calls, incl uint64) {
	key := parent + "\x1f" + child
	es, ok := a.edges.Get(key)
	if !ok {
		es, _ = a.edges.GetOrSet(key, &edgeStats{})
	}
	es.calls.Add(calls)
	es.incl.Add(incl)
}

// AddRuntime applies a completed one-shot run's profile — the offline
// merge path. Streaming a run with zero drops and AddRuntime over the
// same run are interchangeable: the differential tests pin that N
// streamed runs and N AddRuntime calls render byte-identical
// snapshots.
func (a *Aggregator) AddRuntime(rt *tau.Runtime) {
	if rt == nil {
		return
	}
	a.apply(&Event{Kind: KindRunStart, Unit: UnitFor(rt.Unit())})
	for _, p := range rt.Profiles() {
		a.apply(&Event{Kind: KindSample, Name: p.Name, Calls: p.Calls,
			Inclusive: p.Inclusive, Exclusive: p.Exclusive})
	}
	for _, e := range rt.Edges() {
		a.apply(&Event{Kind: KindEdge, Parent: e.Parent, Name: e.Child,
			Calls: e.Calls, Inclusive: e.Inclusive})
	}
	a.apply(&Event{Kind: KindRunEnd})
}

// TimerStat is one aggregated timer in a snapshot.
type TimerStat struct {
	Name      string `json:"name"`
	Calls     uint64 `json:"calls"`
	Inclusive uint64 `json:"inclusive"`
	Exclusive uint64 `json:"exclusive"`
}

// EdgeStat is one aggregated call-path edge in a snapshot.
type EdgeStat struct {
	Parent    string `json:"parent"`
	Child     string `json:"child"`
	Calls     uint64 `json:"calls"`
	Inclusive uint64 `json:"inclusive"`
}

// TemplateStat groups timers by their CT(obj) instantiation type —
// the paper's per-template view, aggregated across every routine of
// that instantiation.
type TemplateStat struct {
	Name      string `json:"name"` // e.g. "Stack<int>"
	Timers    int    `json:"timers"`
	Calls     uint64 `json:"calls"`
	Inclusive uint64 `json:"inclusive"`
	Exclusive uint64 `json:"exclusive"`
}

// Snapshot is one deterministic view of the aggregate: flat timers
// sorted by exclusive time (the report order), call-path edges sorted
// by inclusive time, and the per-template-instantiation grouping.
type Snapshot struct {
	SchemaVersion    int            `json:"schema_version"`
	Unit             string         `json:"unit"` // "steps", "nsec", "mixed", "" before any run
	Runs             uint64         `json:"runs"`
	DroppedByClients uint64         `json:"dropped_by_clients"`
	Timers           []TimerStat    `json:"timers"`
	Edges            []EdgeStat     `json:"edges"`
	Templates        []TemplateStat `json:"templates"`
}

// Snapshot renders the current aggregate. Concurrent ingests may land
// mid-walk (each timer is internally consistent; the set is a moment's
// view); quiesced, the result is fully deterministic.
func (a *Aggregator) Snapshot() *Snapshot {
	s := &Snapshot{
		SchemaVersion:    schema.Version,
		Runs:             a.runs.Load(),
		DroppedByClients: a.clientDropped.Load(),
		Timers:           []TimerStat{},
		Edges:            []EdgeStat{},
		Templates:        []TemplateStat{},
	}
	switch steps, nanos := a.stepsRuns.Load(), a.nanosRuns.Load(); {
	case steps > 0 && nanos > 0:
		s.Unit = "mixed"
	case nanos > 0:
		s.Unit = UnitNanos.String()
	case steps > 0:
		s.Unit = UnitSteps.String()
	}

	a.timers.Range(func(name string, ts *timerStats) bool {
		s.Timers = append(s.Timers, TimerStat{Name: name, Calls: ts.calls.Load(),
			Inclusive: ts.incl.Load(), Exclusive: ts.excl.Load()})
		return true
	})
	sort.Slice(s.Timers, func(i, j int) bool {
		if s.Timers[i].Exclusive != s.Timers[j].Exclusive {
			return s.Timers[i].Exclusive > s.Timers[j].Exclusive
		}
		return s.Timers[i].Name < s.Timers[j].Name
	})

	a.edges.Range(func(key string, es *edgeStats) bool {
		parent, child, _ := strings.Cut(key, "\x1f")
		s.Edges = append(s.Edges, EdgeStat{Parent: parent, Child: child,
			Calls: es.calls.Load(), Inclusive: es.incl.Load()})
		return true
	})
	sort.Slice(s.Edges, func(i, j int) bool {
		if s.Edges[i].Inclusive != s.Edges[j].Inclusive {
			return s.Edges[i].Inclusive > s.Edges[j].Inclusive
		}
		if s.Edges[i].Parent != s.Edges[j].Parent {
			return s.Edges[i].Parent < s.Edges[j].Parent
		}
		return s.Edges[i].Child < s.Edges[j].Child
	})

	groups := map[string]*TemplateStat{}
	for _, t := range s.Timers {
		inst, ok := instantiationOf(t.Name)
		if !ok {
			continue
		}
		g := groups[inst]
		if g == nil {
			g = &TemplateStat{Name: inst}
			groups[inst] = g
		}
		g.Timers++
		g.Calls += t.Calls
		g.Inclusive += t.Inclusive
		g.Exclusive += t.Exclusive
	}
	for _, g := range groups {
		s.Templates = append(s.Templates, *g)
	}
	sort.Slice(s.Templates, func(i, j int) bool {
		if s.Templates[i].Exclusive != s.Templates[j].Exclusive {
			return s.Templates[i].Exclusive > s.Templates[j].Exclusive
		}
		return s.Templates[i].Name < s.Templates[j].Name
	})
	return s
}

// instantiationOf extracts the run-time instantiation type from a
// timer display name: tau renders member-template timers as
// "name type" with the CT(obj) type last, e.g. "push() Stack<int>".
func instantiationOf(name string) (string, bool) {
	i := strings.LastIndexByte(name, ' ')
	if i < 0 {
		return "", false
	}
	typ := name[i+1:]
	if !strings.ContainsRune(typ, '<') {
		return "", false
	}
	return typ, true
}

// WriteJSON renders the snapshot as indented JSON (the /v1/profile
// body): deterministic for a quiesced aggregator, so differential
// tests compare bytes.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Template instantiation names are full of <>; render them
	// literally instead of as < escapes.
	enc.SetEscapeHTML(false)
	return enc.Encode(s)
}
