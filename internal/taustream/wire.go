// Package taustream streams TAU profile events from instrumented
// programs into the pdbd daemon, merging the paper's dynamic half
// (run-time profiling, §4.1) into the resident static-analysis
// service: many concurrent instrumented runs emit timer samples and
// call edges as they execute, and the daemon aggregates them into one
// live per-routine / per-template-instantiation profile.
//
// The package has three parts:
//
//   - the wire format (this file): length-framed varint events built
//     on the PDTB encoding helpers (internal/pdb);
//   - Client: a buffered, non-blocking emitter that implements
//     tau.Sink. A slow or absent daemon must never stall the profiled
//     program, so the client drops under pressure (counting
//     ingest.dropped) instead of blocking;
//   - Aggregator: the daemon-side accumulator on sharded concurrent
//     maps (internal/cmap), whose deterministic Snapshot is served by
//     pdbd's /v1/profile endpoints.
//
// Aggregation is purely additive — every event is a delta — so events
// are commutative across runs and a dropped event loses one sample
// without corrupting anything. Streaming a run with no drops yields
// exactly the run's one-shot profile (AddRuntime), which is the
// property the differential tests pin byte-for-byte.
package taustream

import (
	"fmt"

	"pdt/internal/pdb"
)

// Magic identifies a profile event stream ("PDTS": the PDT toolkit's
// streaming container, sibling of the PDTB database container).
const Magic = "PDTS"

// Version is the wire-format version. Unknown versions are rejected;
// unknown event kinds within a known version are skipped, so the
// format can grow kinds without breaking deployed daemons.
const Version = 1

// Kind discriminates event payloads.
type Kind uint8

const (
	// KindRunStart opens one instrumented run: carries the clock unit.
	KindRunStart Kind = 1
	// KindSample reports a completed timer scope: name (carrying the
	// CT(obj) template instantiation type), call count, inclusive and
	// exclusive time.
	KindSample Kind = 2
	// KindEdge reports a parent→child call-path edge.
	KindEdge Kind = 3
	// KindRunEnd closes a run: carries the client's dropped-event count
	// so the daemon knows how lossy the stream was.
	KindRunEnd Kind = 4
)

// Unit is the clock unit of a run's measurements.
type Unit uint8

const (
	// UnitSteps is the deterministic virtual clock.
	UnitSteps Unit = 0
	// UnitNanos is wall-clock nanoseconds.
	UnitNanos Unit = 1
)

// String returns the report spelling of the unit (tau.Runtime.Unit).
func (u Unit) String() string {
	if u == UnitNanos {
		return "nsec"
	}
	return "steps"
}

// UnitFor maps a tau clock-unit label ("steps", "nsec") to the wire
// unit.
func UnitFor(label string) Unit {
	if label == "nsec" {
		return UnitNanos
	}
	return UnitSteps
}

// Event is one profile event. Fields are a union over the kinds: a
// sample uses Name/Calls/Inclusive/Exclusive, an edge adds Parent, a
// run start uses Unit, a run end uses Dropped.
type Event struct {
	Kind      Kind
	Name      string // timer (sample) or child (edge) name
	Parent    string // edge parent ("<root>" for top-level scopes)
	Unit      Unit
	Calls     uint64
	Inclusive uint64
	Exclusive uint64
	Dropped   uint64
}

// AppendBatch encodes a batch: the stream header (magic + version)
// followed by one length-framed event per entry. Each frame is a
// uvarint payload length and then the payload, so a decoder can skip
// frames whose kind it does not understand.
func AppendBatch(dst []byte, events []Event) []byte {
	dst = append(dst, Magic...)
	dst = pdb.AppendUvarint(dst, Version)
	var payload []byte
	for i := range events {
		payload = appendEvent(payload[:0], &events[i])
		dst = pdb.AppendLenBytes(dst, payload)
	}
	return dst
}

func appendEvent(dst []byte, ev *Event) []byte {
	dst = append(dst, byte(ev.Kind))
	switch ev.Kind {
	case KindRunStart:
		dst = append(dst, byte(ev.Unit))
	case KindSample:
		dst = pdb.AppendLenString(dst, ev.Name)
		dst = pdb.AppendUvarint(dst, ev.Calls)
		dst = pdb.AppendUvarint(dst, ev.Inclusive)
		dst = pdb.AppendUvarint(dst, ev.Exclusive)
	case KindEdge:
		dst = pdb.AppendLenString(dst, ev.Parent)
		dst = pdb.AppendLenString(dst, ev.Name)
		dst = pdb.AppendUvarint(dst, ev.Calls)
		dst = pdb.AppendUvarint(dst, ev.Inclusive)
	case KindRunEnd:
		dst = pdb.AppendUvarint(dst, ev.Dropped)
	}
	return dst
}

// DecodeBatch decodes one encoded batch. Events of unknown kind are
// counted in skipped and otherwise ignored; any structural defect —
// bad magic, unsupported version, a frame that overruns the buffer —
// returns an error naming the offset.
func DecodeBatch(data []byte) (events []Event, skipped int, err error) {
	r := pdb.NewWireReader(data)
	if string(r.Bytes(len(Magic))) != Magic {
		return nil, 0, fmt.Errorf("taustream: missing %s magic", Magic)
	}
	if v := r.Uvarint(); r.Err() == nil && v != Version {
		return nil, 0, fmt.Errorf("taustream: unsupported version %d (have %d)", v, Version)
	}
	for r.Err() == nil && r.Remaining() > 0 {
		frame := r.Bytes(r.Length())
		if r.Err() != nil {
			break
		}
		ev, ok, ferr := decodeEvent(frame)
		if ferr != nil {
			return nil, skipped, fmt.Errorf("taustream: frame at offset %d: %w", r.Pos(), ferr)
		}
		if !ok {
			skipped++
			continue
		}
		events = append(events, ev)
	}
	if err := r.Err(); err != nil {
		return nil, skipped, fmt.Errorf("taustream: %w", err)
	}
	return events, skipped, nil
}

// decodeEvent decodes one frame payload. ok=false reports an unknown
// kind (skippable); an error reports a malformed known payload.
func decodeEvent(frame []byte) (Event, bool, error) {
	r := pdb.NewWireReader(frame)
	ev := Event{Kind: Kind(r.U8())}
	switch ev.Kind {
	case KindRunStart:
		ev.Unit = Unit(r.U8())
	case KindSample:
		ev.Name = r.LenString()
		ev.Calls = r.Uvarint()
		ev.Inclusive = r.Uvarint()
		ev.Exclusive = r.Uvarint()
	case KindEdge:
		ev.Parent = r.LenString()
		ev.Name = r.LenString()
		ev.Calls = r.Uvarint()
		ev.Inclusive = r.Uvarint()
	case KindRunEnd:
		ev.Dropped = r.Uvarint()
	default:
		return Event{}, false, r.Err()
	}
	return ev, true, r.Err()
}
