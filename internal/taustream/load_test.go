package taustream

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"pdt/internal/tau"
)

// TestLoadThousandClients is the issue's load proof: 1000 simulated
// instrumented programs stream concurrently into one aggregator (run
// under -race in CI). Each client's buffer comfortably holds its whole
// run, so no events may be dropped, and the aggregate totals must be
// exact — the same additive-delta property the differential test pins,
// now under full contention across the cmap shards.
func TestLoadThousandClients(t *testing.T) {
	const (
		clients        = 1000
		scopesPerRun   = 8
		timersPerScope = 2 // outer() and inner() per scope
	)
	agg := NewAggregator(nil)
	ts := ingestServer(t, agg)

	// One shared transport with a bounded connection pool: the point is
	// 1000 concurrent emitters, not 1000 sockets — and the test must not
	// exhaust file descriptors on small CI runners.
	httpc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxConnsPerHost:     128,
			MaxIdleConnsPerHost: 128,
		},
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := tau.NewRuntime(tau.VirtualClock)
			c := Dial(ts.URL, Options{Unit: UnitSteps, HTTPClient: httpc})
			rt.SetSink(c)
			for s := 0; s < scopesPerRun; s++ {
				rt.Start("outer()")
				rt.Start("inner() Grid<double>")
				rt.Stop()
				rt.Stop()
			}
			if err := c.Close(); err != nil {
				errs <- err
				return
			}
			if n := c.Dropped(); n != 0 {
				t.Errorf("client dropped %d events with a roomy buffer", n)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client: %v", err)
	}

	s := agg.Snapshot()
	if s.Runs != clients {
		t.Errorf("runs = %d, want %d", s.Runs, clients)
	}
	if s.DroppedByClients != 0 {
		t.Errorf("dropped_by_clients = %d, want 0", s.DroppedByClients)
	}
	if len(s.Timers) != timersPerScope {
		t.Fatalf("timers = %+v, want %d names", s.Timers, timersPerScope)
	}
	for _, tm := range s.Timers {
		if tm.Calls != clients*scopesPerRun {
			t.Errorf("%s: calls = %d, want %d", tm.Name, tm.Calls, clients*scopesPerRun)
		}
	}
	// Every edge observation must have survived: <root>→outer and
	// outer→inner, once per scope per client.
	if len(s.Edges) != 2 {
		t.Fatalf("edges = %+v", s.Edges)
	}
	for _, e := range s.Edges {
		if e.Calls != clients*scopesPerRun {
			t.Errorf("%s→%s: calls = %d, want %d", e.Parent, e.Child, e.Calls, clients*scopesPerRun)
		}
	}
	if len(s.Templates) != 1 || s.Templates[0].Name != "Grid<double>" {
		t.Errorf("templates = %+v", s.Templates)
	}
}
