package taustream

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdt/internal/obs"
	"pdt/internal/pdbio"
)

// IngestPath is the daemon endpoint profile batches are posted to.
const IngestPath = "/v1/profile/ingest"

// Options configures a Client. The zero value is usable: virtual-clock
// unit, default buffering, and a shared default HTTP client.
type Options struct {
	// Unit stamps the run's clock unit on its RunStart event.
	Unit Unit
	// Buffer is the event channel capacity (default 4096). When the
	// flusher cannot keep up and the buffer fills, further events are
	// dropped — never blocking the instrumented program.
	Buffer int
	// BatchEvents flushes a batch once it holds this many events
	// (default 512).
	BatchEvents int
	// FlushEvery flushes a partial batch after this long (default
	// 200ms), bounding dashboard staleness during long quiet runs.
	FlushEvery time.Duration
	// Retries is how many times a failed send is retried when the
	// error is transient under pdbio.Retryable (default 3).
	Retries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// Metrics receives the client's counters (ingest.sent events,
	// ingest.dropped, ingest.batches, ingest.retries,
	// ingest.send_errors). Nil disables instrumentation.
	Metrics *obs.Metrics
	// HTTPClient overrides the transport (shared by load tests to
	// bound connection counts). Nil uses a client with a 10s timeout.
	HTTPClient *http.Client
}

// Client is the streaming emitter: a buffered, non-blocking tau.Sink
// that frames profile events and posts them to a pdbd ingest endpoint
// in batches, with retry/backoff on transient failures. Under
// pressure — full buffer, daemon away — it drops events and counts
// them; the profiled program never waits on the network.
type Client struct {
	url     string
	ch      chan Event
	quit    chan struct{}
	done    chan struct{}
	opts    Options
	httpc   *http.Client
	metrics *obs.Metrics

	closing  atomic.Bool
	dropped  atomic.Uint64
	sent     atomic.Uint64
	closeErr error
	closed   sync.Once
}

// Dial builds a client posting to addr and starts its flusher. addr is
// a host:port or a base URL; the ingest path is appended when absent.
// Dial never connects eagerly — the first batch does — so a dead
// daemon costs the program nothing but dropped events.
func Dial(addr string, opts Options) *Client {
	if opts.Buffer <= 0 {
		opts.Buffer = 4096
	}
	if opts.BatchEvents <= 0 {
		opts.BatchEvents = 512
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = 200 * time.Millisecond
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	c := &Client{
		url:     ingestURL(addr),
		ch:      make(chan Event, opts.Buffer),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		opts:    opts,
		httpc:   opts.HTTPClient,
		metrics: opts.Metrics,
	}
	if c.httpc == nil {
		c.httpc = &http.Client{Timeout: 10 * time.Second}
	}
	go c.flusher()
	return c
}

// ingestURL normalizes addr into the full ingest endpoint URL.
func ingestURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if strings.HasSuffix(addr, IngestPath) {
		return addr
	}
	return strings.TrimSuffix(addr, "/") + IngestPath
}

// Sample implements tau.Sink: one completed timer scope.
func (c *Client) Sample(name string, calls, incl, excl uint64) {
	c.emit(Event{Kind: KindSample, Name: name, Calls: calls, Inclusive: incl, Exclusive: excl})
}

// Edge implements tau.Sink: one parent→child call-path observation.
func (c *Client) Edge(parent, child string, calls, incl uint64) {
	c.emit(Event{Kind: KindEdge, Parent: parent, Name: child, Calls: calls, Inclusive: incl})
}

// Dropped returns how many events were discarded because the buffer
// was full (the drop-not-block contract's loss meter).
func (c *Client) Dropped() uint64 { return c.dropped.Load() }

// Sent returns how many events were delivered in acknowledged batches.
func (c *Client) Sent() uint64 { return c.sent.Load() }

// emit enqueues without ever blocking: a full buffer — or a client
// already closing — drops the event and counts it.
func (c *Client) emit(ev Event) {
	if c.closing.Load() {
		c.dropped.Add(1)
		c.metrics.Counter("ingest.dropped").Add(1)
		return
	}
	select {
	case c.ch <- ev:
	default:
		c.dropped.Add(1)
		c.metrics.Counter("ingest.dropped").Add(1)
	}
}

// Close flushes buffered events, appends the RunEnd marker carrying
// the final drop count, posts the last batch, and returns the last
// send failure (nil when every batch was acknowledged). Events
// emitted after Close begins are dropped, never a panic.
func (c *Client) Close() error {
	c.closed.Do(func() {
		c.closing.Store(true)
		close(c.quit)
		<-c.done
	})
	return c.closeErr
}

// flusher is the background sender: it batches events from the
// channel and posts a batch when it is full or the flush interval
// elapses. The RunStart event leads the first batch (it bypasses the
// buffer, so it is never dropped); RunEnd trails the last.
func (c *Client) flusher() {
	defer close(c.done)
	ticker := time.NewTicker(c.opts.FlushEvery)
	defer ticker.Stop()

	batch := []Event{{Kind: KindRunStart, Unit: c.opts.Unit}}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := c.post(batch); err != nil {
			c.closeErr = err
			c.metrics.Counter("ingest.send_errors").Add(1)
		} else {
			c.sent.Add(uint64(len(batch)))
			c.metrics.Counter("ingest.sent").Add(int64(len(batch)))
		}
		batch = batch[:0]
	}
	for {
		select {
		case ev := <-c.ch:
			batch = append(batch, ev)
			if len(batch) >= c.opts.BatchEvents {
				flush()
			}
		case <-c.quit:
			// Drain whatever the program enqueued before Close, then
			// trail the stream with the loss-accounting marker.
			for {
				select {
				case ev := <-c.ch:
					batch = append(batch, ev)
					if len(batch) >= c.opts.BatchEvents {
						flush()
					}
					continue
				default:
				}
				break
			}
			batch = append(batch, Event{Kind: KindRunEnd, Dropped: c.dropped.Load()})
			flush()
			return
		case <-ticker.C:
			flush()
		}
	}
}

// statusError is a non-2xx ingest response. 5xx and 429 are transient
// under the Temporary() convention pdbio.Retryable consults; 4xx are
// not (a malformed or oversized batch will not improve on resend).
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("ingest: HTTP %d: %s", e.code, strings.TrimSpace(e.body))
}

func (e *statusError) Temporary() bool {
	return e.code >= 500 || e.code == http.StatusTooManyRequests
}

// post encodes and sends one batch, retrying transient failures with
// doubling backoff under the same classification the pdbio loader
// uses.
func (c *Client) post(batch []Event) error {
	body := AppendBatch(nil, batch)
	backoff := c.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		err = c.postOnce(body)
		if err == nil || attempt >= c.opts.Retries || !pdbio.Retryable(err) {
			return err
		}
		c.metrics.Counter("ingest.retries").Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
}

func (c *Client) postOnce(body []byte) error {
	resp, err := c.httpc.Post(c.url, "application/x-pdt-taustream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg := make([]byte, 256)
		n, _ := resp.Body.Read(msg)
		return &statusError{code: resp.StatusCode, body: string(msg[:n])}
	}
	c.metrics.Counter("ingest.batches").Add(1)
	return nil
}
