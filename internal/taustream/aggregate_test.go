package taustream

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdt/internal/schema"
	"pdt/internal/tau"
)

// driveRun replays a deterministic workload — nested and template
// timers, varying per seed — onto a runtime. Both halves of the
// differential test run it on identical fresh runtimes, so the only
// difference between them is the transport.
func driveRun(rt *tau.Runtime, seed int) {
	rt.Start("main()")
	for i := 0; i <= seed%3; i++ {
		rt.Start("push() Stack<int>")
		rt.Start("isFull() Stack<int>")
		rt.Stop()
		rt.Stop()
	}
	rt.Start(fmt.Sprintf("work%d()", seed%2))
	rt.Stop()
	rt.Stop()
}

// ingestServer serves the ingest endpoint directly off an aggregator.
func ingestServer(t *testing.T, agg *Aggregator) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := agg.Ingest(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestStreamedMatchesOffline is the tentpole property: streaming N
// runs through the wire-format client yields a /v1/profile snapshot
// byte-identical to merging the same N one-shot profiles offline
// (AddRuntime).
func TestStreamedMatchesOffline(t *testing.T) {
	const runs = 8

	streamed := NewAggregator(nil)
	ts := ingestServer(t, streamed)
	for seed := 0; seed < runs; seed++ {
		rt := tau.NewRuntime(tau.VirtualClock)
		c := Dial(ts.URL, Options{Unit: UnitSteps})
		rt.SetSink(c)
		driveRun(rt, seed)
		if err := c.Close(); err != nil {
			t.Fatalf("run %d: close: %v", seed, err)
		}
		if n := c.Dropped(); n != 0 {
			t.Fatalf("run %d: %d events dropped; property needs a lossless stream", seed, n)
		}
	}

	offline := NewAggregator(nil)
	for seed := 0; seed < runs; seed++ {
		rt := tau.NewRuntime(tau.VirtualClock)
		driveRun(rt, seed)
		offline.AddRuntime(rt)
	}

	var got, want bytes.Buffer
	if err := streamed.Snapshot().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if err := offline.Snapshot().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("streamed and offline snapshots differ:\nstreamed:\n%s\noffline:\n%s",
			got.String(), want.String())
	}
	if !strings.Contains(got.String(), "Stack<int>") {
		t.Errorf("snapshot lost the template instantiation grouping:\n%s", got.String())
	}
	snap := streamed.Snapshot()
	if snap.Runs != runs || snap.Unit != "steps" || snap.SchemaVersion != schema.Version {
		t.Errorf("snapshot header: %+v", snap)
	}
}

func TestIngestMalformed(t *testing.T) {
	agg := NewAggregator(nil)
	_, err := agg.Ingest(strings.NewReader("not a stream"))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if agg.Epoch() != 0 {
		t.Error("malformed ingest mutated the aggregate")
	}
}

func TestIngestAccumulates(t *testing.T) {
	agg := NewAggregator(nil)
	batch := AppendBatch(nil, []Event{
		{Kind: KindRunStart, Unit: UnitNanos},
		{Kind: KindSample, Name: "f()", Calls: 2, Inclusive: 10, Exclusive: 6},
		{Kind: KindEdge, Parent: "<root>", Name: "f()", Calls: 2, Inclusive: 10},
		{Kind: KindRunEnd, Dropped: 3},
	})
	for i := 0; i < 2; i++ {
		n, err := agg.Ingest(bytes.NewReader(batch))
		if err != nil || n != 4 {
			t.Fatalf("ingest %d: n=%d err=%v", i, n, err)
		}
	}
	s := agg.Snapshot()
	if s.Runs != 2 || s.DroppedByClients != 6 || s.Unit != "nsec" {
		t.Errorf("header: %+v", s)
	}
	if len(s.Timers) != 1 || s.Timers[0].Calls != 4 || s.Timers[0].Inclusive != 20 ||
		s.Timers[0].Exclusive != 12 {
		t.Errorf("timers: %+v", s.Timers)
	}
	if len(s.Edges) != 1 || s.Edges[0].Parent != "<root>" || s.Edges[0].Calls != 4 {
		t.Errorf("edges: %+v", s.Edges)
	}
}

func TestSnapshotMixedUnits(t *testing.T) {
	agg := NewAggregator(nil)
	agg.apply(&Event{Kind: KindRunStart, Unit: UnitSteps})
	agg.apply(&Event{Kind: KindRunStart, Unit: UnitNanos})
	if got := agg.Snapshot().Unit; got != "mixed" {
		t.Errorf("unit = %q, want mixed", got)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewAggregator(nil).Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Empty aggregates serialize arrays, not nulls, and no unit.
	for _, want := range []string{`"timers": []`, `"edges": []`, `"templates": []`, `"unit": ""`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("empty snapshot missing %s:\n%s", want, buf.String())
		}
	}
}

func TestAddRuntimeNil(t *testing.T) {
	agg := NewAggregator(nil)
	agg.AddRuntime(nil)
	if agg.Epoch() != 0 {
		t.Error("nil runtime mutated the aggregate")
	}
}

func TestInstantiationOf(t *testing.T) {
	cases := []struct {
		name, want string
		ok         bool
	}{
		{"push() Stack<int>", "Stack<int>", true},
		{"main()", "", false},
		{"a b", "", false},
		{"top() Stack<Vector<double>>", "Stack<Vector<double>>", true},
	}
	for _, tc := range cases {
		got, ok := instantiationOf(tc.name)
		if got != tc.want || ok != tc.ok {
			t.Errorf("instantiationOf(%q) = %q, %v; want %q, %v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestWriteHTML(t *testing.T) {
	agg := NewAggregator(nil)
	rt := tau.NewRuntime(tau.VirtualClock)
	driveRun(rt, 1)
	agg.AddRuntime(rt)

	var buf bytes.Buffer
	if err := WriteHTML(&buf, agg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{`<div class="tau-profile">`, "Flat profile",
		"Template instantiations", "Call paths", "Stack&lt;int&gt;", "1 run(s)"} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML missing %q:\n%s", want, page)
		}
	}
	if strings.Contains(page, "Stack<int>") {
		t.Error("template name not HTML-escaped")
	}
}

// TestWriteHTMLEmpty pins that a daemon with no runs yet still renders
// a (minimal) dashboard rather than erroring.
func TestWriteHTMLEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, NewAggregator(nil).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 run(s)") {
		t.Errorf("empty dashboard: %s", buf.String())
	}
}

// TestEpochAdvances pins the renderer memo key: any applied event
// changes the epoch.
func TestEpochAdvances(t *testing.T) {
	agg := NewAggregator(nil)
	before := agg.Epoch()
	agg.apply(&Event{Kind: KindSample, Name: "f", Calls: 1})
	if agg.Epoch() == before {
		t.Error("epoch did not advance on ingest")
	}
}

// TestIngestReadError pins that a failing body reader surfaces as a
// non-ErrMalformed error (a transport problem, not a client bug).
func TestIngestReadError(t *testing.T) {
	agg := NewAggregator(nil)
	_, err := agg.Ingest(&failingReader{})
	if err == nil || errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want a plain read error", err)
	}
}

type failingReader struct{}

func (*failingReader) Read([]byte) (int, error) { return 0, errors.New("boom") }
