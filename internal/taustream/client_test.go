package taustream

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pdt/internal/obs"
)

func TestIngestURL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"localhost:7245", "http://localhost:7245/v1/profile/ingest"},
		{"http://localhost:7245", "http://localhost:7245/v1/profile/ingest"},
		{"http://localhost:7245/", "http://localhost:7245/v1/profile/ingest"},
		{"https://pdbd.example/v1/profile/ingest", "https://pdbd.example/v1/profile/ingest"},
	}
	for _, tc := range cases {
		if got := ingestURL(tc.in); got != tc.want {
			t.Errorf("ingestURL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestStatusErrorClassification(t *testing.T) {
	for code, transient := range map[int]bool{500: true, 503: true, 429: true, 400: false, 404: false} {
		e := &statusError{code: code}
		if e.Temporary() != transient {
			t.Errorf("HTTP %d: Temporary() = %v, want %v", code, e.Temporary(), transient)
		}
	}
}

// TestClientDeliversAll is the happy path: everything emitted before
// Close arrives, framed by exactly one RunStart and one RunEnd.
func TestClientDeliversAll(t *testing.T) {
	agg := NewAggregator(nil)
	ts := ingestServer(t, agg)
	m := obs.New("test")
	c := Dial(ts.URL, Options{Unit: UnitNanos, Metrics: m})
	const n = 100
	for i := 0; i < n; i++ {
		c.Sample("f()", 1, 2, 1)
		c.Edge("<root>", "f()", 1, 2)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Dropped() != 0 {
		t.Fatalf("dropped %d events on an idle server", c.Dropped())
	}
	if got := c.Sent(); got != 2*n+2 { // events + RunStart + RunEnd
		t.Errorf("sent = %d, want %d", got, 2*n+2)
	}
	s := agg.Snapshot()
	if s.Runs != 1 || len(s.Timers) != 1 || s.Timers[0].Calls != n ||
		len(s.Edges) != 1 || s.Edges[0].Calls != n {
		t.Errorf("aggregate: %+v", s)
	}
	if m.Snapshot().Counters["ingest.sent"] != 2*n+2 {
		t.Errorf("counters: %+v", m.Snapshot().Counters)
	}
}

// TestClientDropsNotBlocks is the drop-not-block contract: with the
// daemon wedged mid-request and a one-event buffer, a burst of emits
// returns immediately (never stalling the profiled program), the
// overflow is counted in ingest.dropped, and the RunEnd marker carries
// the loss to the daemon.
func TestClientDropsNotBlocks(t *testing.T) {
	agg := NewAggregator(nil)
	release := make(chan struct{})
	var wedged atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wedged.CompareAndSwap(false, true) {
			<-release // wedge only the first batch; Close's flush proceeds
		}
		if _, err := agg.Ingest(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer ts.Close()

	m := obs.New("test")
	c := Dial(ts.URL, Options{
		Buffer:      1,
		BatchEvents: 1, // flush per event, so the flusher wedges in post()
		Retries:     -1,
		Metrics:     m,
	})
	c.Sample("first()", 1, 1, 1) // pulls the flusher into the wedged POST
	deadline := time.After(5 * time.Second)
	for c.Dropped() == 0 {
		select {
		case <-deadline:
			t.Fatal("no drops despite a wedged daemon and a full buffer")
		default:
		}
		done := make(chan struct{})
		go func() { c.Sample("burst()", 1, 1, 1); close(done) }()
		select {
		case <-done: // emit returned immediately — the contract
		case <-time.After(time.Second):
			t.Fatal("emit blocked on a wedged daemon")
		}
	}
	close(release)
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	dropped := c.Dropped()
	if dropped == 0 {
		t.Fatal("expected dropped events")
	}
	if got := m.Snapshot().Counters["ingest.dropped"]; got != int64(dropped) {
		t.Errorf("ingest.dropped counter = %d, want %d", got, dropped)
	}
	if got := agg.Snapshot().DroppedByClients; got != dropped {
		t.Errorf("RunEnd carried %d dropped, client counted %d", got, dropped)
	}
}

// TestClientRetriesTransient pins the pdbio.Retryable discipline: 5xx
// responses are retried with backoff until the daemon recovers, and
// the batch is not lost.
func TestClientRetriesTransient(t *testing.T) {
	agg := NewAggregator(nil)
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		if _, err := agg.Ingest(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer ts.Close()

	m := obs.New("test")
	// FlushEvery is long so the only flush is Close's: one batch, an
	// exact attempt count.
	c := Dial(ts.URL, Options{Retries: 3, RetryBackoff: time.Millisecond,
		FlushEvery: time.Minute, Metrics: m})
	c.Sample("f()", 1, 1, 1)
	if err := c.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two 503s, one success)", got)
	}
	if got := m.Snapshot().Counters["ingest.retries"]; got != 2 {
		t.Errorf("ingest.retries = %d, want 2", got)
	}
	if s := agg.Snapshot(); len(s.Timers) != 1 || s.Timers[0].Calls != 1 {
		t.Errorf("batch lost across retries: %+v", s)
	}
}

// TestClientPermanentFailureNotRetried pins that 4xx responses are
// terminal: resending a bad batch cannot succeed.
func TestClientPermanentFailureNotRetried(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer ts.Close()

	c := Dial(ts.URL, Options{Retries: 5, RetryBackoff: time.Millisecond,
		FlushEvery: time.Minute})
	c.Sample("f()", 1, 1, 1)
	err := c.Close()
	if err == nil {
		t.Fatal("close reported no error from a rejecting daemon")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (4xx is permanent)", got)
	}
}

// TestClientDeadDaemon: a daemon that is simply absent costs the
// program nothing but a close-time error and dropped-on-the-floor
// batches — taurun treats it as a warning.
func TestClientDeadDaemon(t *testing.T) {
	c := Dial("127.0.0.1:1", Options{Retries: -1,
		HTTPClient: &http.Client{Timeout: time.Second}})
	c.Sample("f()", 1, 1, 1)
	if err := c.Close(); err == nil {
		t.Fatal("close reported no error with no daemon listening")
	}
}

// TestClientEmitAfterClose pins the no-panic contract: late samples
// from a confused caller are counted as drops, never a send on a
// closed channel.
func TestClientEmitAfterClose(t *testing.T) {
	agg := NewAggregator(nil)
	ts := ingestServer(t, agg)
	c := Dial(ts.URL, Options{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Sample("late()", 1, 1, 1)
	c.Edge("<root>", "late()", 1, 1)
	if c.Dropped() != 2 {
		t.Errorf("late emits: dropped = %d, want 2", c.Dropped())
	}
	if err := c.Close(); err != nil { // double Close is a no-op
		t.Fatal(err)
	}
}
