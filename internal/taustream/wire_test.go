package taustream

import (
	"strings"
	"testing"

	"pdt/internal/pdb"
)

func TestBatchRoundTrip(t *testing.T) {
	in := []Event{
		{Kind: KindRunStart, Unit: UnitNanos},
		{Kind: KindSample, Name: "push() Stack<int>", Calls: 3, Inclusive: 40, Exclusive: 25},
		{Kind: KindEdge, Parent: "main()", Name: "push() Stack<int>", Calls: 1, Inclusive: 40},
		{Kind: KindSample, Name: "", Calls: 0, Inclusive: 0, Exclusive: 0},
		{Kind: KindRunEnd, Dropped: 7},
	}
	data := AppendBatch(nil, in)
	out, skipped, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestDecodeBatchEmpty(t *testing.T) {
	out, skipped, err := DecodeBatch(AppendBatch(nil, nil))
	if err != nil || skipped != 0 || len(out) != 0 {
		t.Fatalf("empty batch: %v events, %d skipped, err %v", out, skipped, err)
	}
}

// TestDecodeBatchSkipsUnknownKinds pins the forward-compatibility
// contract: a frame with an unrecognized kind is skipped (and counted),
// not an error, so new event kinds can ship without breaking deployed
// daemons.
func TestDecodeBatchSkipsUnknownKinds(t *testing.T) {
	data := AppendBatch(nil, []Event{{Kind: KindRunStart}})
	// Hand-frame an event of kind 99 with an arbitrary payload, then
	// splice a later sample frame in behind it (skipping the 5-byte
	// magic+version header of the second batch).
	data = pdb.AppendLenBytes(data, []byte{99, 0xde, 0xad})
	more := AppendBatch(nil, []Event{{Kind: KindSample, Name: "f", Calls: 1}})
	data = append(data, more[len(Magic)+1:]...)

	out, skipped, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(out) != 2 || out[1].Name != "f" {
		t.Errorf("events after unknown kind lost: %+v", out)
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	valid := AppendBatch(nil, []Event{{Kind: KindSample, Name: "f", Calls: 1}})
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "magic"},
		{"bad magic", []byte("PDTB\x01"), "magic"},
		{"bad version", append([]byte(Magic), 0x7f), "unsupported version"},
		{"truncated frame", valid[:len(valid)-2], ""},
		{"overrun length", append([]byte(Magic), 0x01, 0xff), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeBatch(tc.data)
			if err == nil {
				t.Fatal("no error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestUnitMapping(t *testing.T) {
	if UnitSteps.String() != "steps" || UnitNanos.String() != "nsec" {
		t.Errorf("unit spellings: %q, %q", UnitSteps, UnitNanos)
	}
	for _, label := range []string{"steps", "nsec"} {
		if got := UnitFor(label).String(); got != label {
			t.Errorf("UnitFor(%q).String() = %q", label, got)
		}
	}
	if UnitFor("unknown") != UnitSteps {
		t.Error("unknown label should default to the virtual clock")
	}
}
