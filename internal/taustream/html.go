package taustream

import (
	"fmt"
	"html"
	"io"
)

// WriteHTML renders the snapshot as a self-contained dashboard
// fragment in the pdbhtml idiom — the live counterpart of the paper's
// Figure 7 displays: a bar overview scaled to the hottest timer, the
// flat profile table, the per-template-instantiation grouping, and
// the call-path edges. The fragment is a single <div>, embeddable in
// any page (or usable directly: browsers render fragments), and is
// deterministic for a quiesced aggregator.
func WriteHTML(w io.Writer, s *Snapshot) error {
	esc := html.EscapeString
	var total, max uint64
	for _, t := range s.Timers {
		total += t.Exclusive
		if t.Exclusive > max {
			max = t.Exclusive
		}
	}
	pct := func(v uint64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}

	b := &errWriter{w: w}
	b.printf("<div class=\"tau-profile\">\n")
	b.printf("<h2>Live TAU profile</h2>\n")
	b.printf("<p class=\"tau-summary\">%d run(s), %d timer(s), unit %s, %d event(s) dropped by clients</p>\n",
		s.Runs, len(s.Timers), esc(unitOrDash(s.Unit)), s.DroppedByClients)

	b.printf("<table class=\"tau-bars\">\n")
	for _, t := range s.Timers {
		width := 0
		if max > 0 {
			width = int(uint64(300) * t.Exclusive / max)
		}
		b.printf("<tr><td><div class=\"tau-bar\" style=\"width:%dpx;background:#36c;height:1em\"></div></td>"+
			"<td>%5.1f%%</td><td>%s</td></tr>\n", width, pct(t.Exclusive), esc(t.Name))
	}
	b.printf("</table>\n")

	b.printf("<h3>Flat profile (%s)</h3>\n<table class=\"tau-flat\">\n", esc(unitOrDash(s.Unit)))
	b.printf("<tr><th>%%Time</th><th>Exclusive</th><th>Inclusive</th><th>#Calls</th><th>Name</th></tr>\n")
	for _, t := range s.Timers {
		b.printf("<tr><td>%.1f</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
			pct(t.Exclusive), t.Exclusive, t.Inclusive, t.Calls, esc(t.Name))
	}
	b.printf("</table>\n")

	if len(s.Templates) > 0 {
		b.printf("<h3>Template instantiations</h3>\n<table class=\"tau-templates\">\n")
		b.printf("<tr><th>Instantiation</th><th>Timers</th><th>#Calls</th><th>Exclusive</th><th>Inclusive</th></tr>\n")
		for _, t := range s.Templates {
			b.printf("<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
				esc(t.Name), t.Timers, t.Calls, t.Exclusive, t.Inclusive)
		}
		b.printf("</table>\n")
	}

	if len(s.Edges) > 0 {
		b.printf("<h3>Call paths</h3>\n<table class=\"tau-edges\">\n")
		b.printf("<tr><th>Parent</th><th>Child</th><th>#Calls</th><th>Inclusive</th></tr>\n")
		for _, e := range s.Edges {
			b.printf("<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td></tr>\n",
				esc(e.Parent), esc(e.Child), e.Calls, e.Inclusive)
		}
		b.printf("</table>\n")
	}
	b.printf("</div>\n")
	return b.err
}

func unitOrDash(u string) string {
	if u == "" {
		return "-"
	}
	return u
}

// errWriter latches the first write failure so the renderer reads as
// straight-line formatting.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}
