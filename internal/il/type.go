// Package il defines PDT's intermediate language: the typed, semantic
// representation of one C++ translation unit that internal/cpp/sema
// constructs and internal/ilanalyzer walks to produce the program
// database.
//
// The IL mirrors the properties of the EDG front end's IL that the
// paper relies on (§3.1): it preserves source names and locations, it
// represents every *used* template instantiation as a first-class
// entity, and — faithfully to the paper — an instantiation's subtree
// records *that* it was instantiated, while the link back to its
// originating template is recoverable either by the analyzer's
// location-scan (the paper's approach) or via the direct back-pointer
// (the paper's proposed front-end modification, kept for the D2
// ablation).
package il

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TypeKind classifies IL types. The names parallel the PDB "ykind"
// attribute values of the paper's Figure 3.
type TypeKind int

// Type kinds.
const (
	TVoid TypeKind = iota
	TBool
	TChar
	TSChar
	TUChar
	TShort
	TUShort
	TInt
	TUInt
	TLong
	TULong
	TLongLong
	TULongLong
	TFloat
	TDouble
	TLongDouble
	TEnum
	TClass
	TPtr
	TRef
	TArray
	TFunc
	// TTref is a qualified type reference (const/volatile wrapper) —
	// the paper's "tref" kind (Figure 3 item ty#439 "const int").
	TTref
	// TError is the recovery type for ill-formed constructs.
	TError
)

var typeKindNames = map[TypeKind]string{
	TVoid: "void", TBool: "bool", TChar: "char", TSChar: "schar",
	TUChar: "uchar", TShort: "short", TUShort: "ushort", TInt: "int",
	TUInt: "uint", TLong: "long", TULong: "ulong", TLongLong: "llong",
	TULongLong: "ullong", TFloat: "float", TDouble: "double",
	TLongDouble: "ldouble", TEnum: "enum", TClass: "class", TPtr: "ptr",
	TRef: "ref", TArray: "array", TFunc: "func", TTref: "tref",
	TError: "error",
}

// String returns the PDB ykind spelling of the kind.
func (k TypeKind) String() string { return typeKindNames[k] }

// IsInteger reports whether the kind is an integral type.
func (k TypeKind) IsInteger() bool {
	switch k {
	case TBool, TChar, TSChar, TUChar, TShort, TUShort, TInt, TUInt,
		TLong, TULong, TLongLong, TULongLong:
		return true
	}
	return false
}

// IsFloat reports whether the kind is a floating-point type.
func (k TypeKind) IsFloat() bool {
	return k == TFloat || k == TDouble || k == TLongDouble
}

// IsArithmetic reports whether the kind is integral or floating.
func (k TypeKind) IsArithmetic() bool { return k.IsInteger() || k.IsFloat() }

// Type is one canonicalized IL type. Types are interned in a TypeTable;
// pointer equality implies type identity.
type Type struct {
	Kind TypeKind
	ID   int

	// Elem is the referent for TPtr/TRef/TArray/TTref.
	Elem *Type
	// Const/Volatile qualify a TTref.
	Const    bool
	Volatile bool
	// ArrayLen is the element count of a TArray (-1 when unknown).
	ArrayLen int64
	// Class is the class of a TClass type.
	Class *Class
	// Enum is the enumeration of a TEnum type.
	Enum *Enum
	// Func signature parts (TFunc).
	Ret         *Type
	Params      []*Type
	Variadic    bool
	ConstMethod bool
}

// Unqualified strips TTref wrappers.
func (t *Type) Unqualified() *Type {
	for t != nil && t.Kind == TTref {
		t = t.Elem
	}
	return t
}

// Deref strips reference types (and qualifiers around them).
func (t *Type) Deref() *Type {
	u := t.Unqualified()
	if u != nil && u.Kind == TRef {
		return u.Elem.Unqualified()
	}
	return u
}

// IsConst reports whether the outermost qualification is const.
func (t *Type) IsConst() bool { return t.Kind == TTref && t.Const }

// String renders the type in C++-like syntax (as PDB item names do:
// "const int &", "bool () const", "void (const int &)").
func (t *Type) String() string {
	if t == nil {
		return "<nil-type>"
	}
	switch t.Kind {
	case TVoid:
		return "void"
	case TBool:
		return "bool"
	case TChar:
		return "char"
	case TSChar:
		return "signed char"
	case TUChar:
		return "unsigned char"
	case TShort:
		return "short"
	case TUShort:
		return "unsigned short"
	case TInt:
		return "int"
	case TUInt:
		return "unsigned int"
	case TLong:
		return "long"
	case TULong:
		return "unsigned long"
	case TLongLong:
		return "long long"
	case TULongLong:
		return "unsigned long long"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TLongDouble:
		return "long double"
	case TEnum:
		if t.Enum != nil {
			return t.Enum.QualifiedName()
		}
		return "enum"
	case TClass:
		if t.Class != nil {
			return t.Class.QualifiedName()
		}
		return "class"
	case TPtr:
		return t.Elem.String() + " *"
	case TRef:
		return t.Elem.String() + " &"
	case TArray:
		if t.ArrayLen >= 0 {
			return fmt.Sprintf("%s [%d]", t.Elem.String(), t.ArrayLen)
		}
		return t.Elem.String() + " []"
	case TTref:
		var q []string
		if t.Const {
			q = append(q, "const")
		}
		if t.Volatile {
			q = append(q, "volatile")
		}
		quals := strings.Join(q, " ")
		// Qualified pointers/arrays/functions spell the qualifier on
		// the right ("int * const"), distinguishing pointer-to-const
		// ("const int *") from const-pointer.
		if e := t.Elem; e != nil {
			switch e.Kind {
			case TPtr, TArray, TFunc, TRef:
				return e.String() + " " + quals
			}
		}
		return quals + " " + t.Elem.String()
	case TFunc:
		var sb strings.Builder
		sb.WriteString(t.Ret.String())
		sb.WriteString(" (")
		for i, p := range t.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.String())
		}
		if t.Variadic {
			if len(t.Params) > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("...")
		}
		sb.WriteString(")")
		if t.ConstMethod {
			sb.WriteString(" const")
		}
		return sb.String()
	default:
		return "<error-type>"
	}
}

// key returns the interning key.
func (t *Type) key() string {
	switch t.Kind {
	case TEnum:
		return "enum:" + t.Enum.QualifiedName() + fmt.Sprintf("@%p", t.Enum)
	case TClass:
		return "class:" + fmt.Sprintf("%p", t.Class)
	case TPtr:
		return "ptr:" + t.Elem.key()
	case TRef:
		return "ref:" + t.Elem.key()
	case TArray:
		return fmt.Sprintf("array[%d]:%s", t.ArrayLen, t.Elem.key())
	case TTref:
		return fmt.Sprintf("tref[c=%v,v=%v]:%s", t.Const, t.Volatile, t.Elem.key())
	case TFunc:
		parts := make([]string, 0, len(t.Params)+1)
		for _, p := range t.Params {
			parts = append(parts, p.key())
		}
		return fmt.Sprintf("func[v=%v,c=%v]:%s->(%s)", t.Variadic, t.ConstMethod,
			t.Ret.key(), strings.Join(parts, ","))
	default:
		return "k:" + t.Kind.String()
	}
}

// TypeTable interns types so each distinct type exists once per unit,
// with a stable ID (the PDB "ty#" number).
type TypeTable struct {
	mu     sync.Mutex
	byKey  map[string]*Type
	all    []*Type
	nextID int
}

// NewTypeTable returns an empty table with the fundamental types
// preregistered.
func NewTypeTable() *TypeTable {
	tt := &TypeTable{byKey: make(map[string]*Type), nextID: 1}
	for k := TVoid; k <= TLongDouble; k++ {
		tt.Intern(&Type{Kind: k})
	}
	return tt
}

// Intern canonicalizes t, returning the unique instance.
func (tt *TypeTable) Intern(t *Type) *Type {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	k := t.key()
	if existing, ok := tt.byKey[k]; ok {
		return existing
	}
	t.ID = tt.nextID
	tt.nextID++
	tt.byKey[k] = t
	tt.all = append(tt.all, t)
	return t
}

// Builtin returns the interned fundamental type of kind k.
func (tt *TypeTable) Builtin(k TypeKind) *Type { return tt.Intern(&Type{Kind: k}) }

// PtrTo returns the interned pointer-to-t.
func (tt *TypeTable) PtrTo(t *Type) *Type { return tt.Intern(&Type{Kind: TPtr, Elem: t}) }

// RefTo returns the interned reference-to-t.
func (tt *TypeTable) RefTo(t *Type) *Type { return tt.Intern(&Type{Kind: TRef, Elem: t}) }

// ConstOf returns the interned const-qualified t.
func (tt *TypeTable) ConstOf(t *Type) *Type {
	if t.Kind == TTref {
		return tt.Intern(&Type{Kind: TTref, Elem: t.Elem, Const: true, Volatile: t.Volatile})
	}
	return tt.Intern(&Type{Kind: TTref, Elem: t, Const: true})
}

// ArrayOf returns the interned array type.
func (tt *TypeTable) ArrayOf(t *Type, n int64) *Type {
	return tt.Intern(&Type{Kind: TArray, Elem: t, ArrayLen: n})
}

// ClassType returns the interned type of a class.
func (tt *TypeTable) ClassType(c *Class) *Type {
	return tt.Intern(&Type{Kind: TClass, Class: c})
}

// EnumType returns the interned type of an enum.
func (tt *TypeTable) EnumType(e *Enum) *Type {
	return tt.Intern(&Type{Kind: TEnum, Enum: e})
}

// Func returns the interned function type.
func (tt *TypeTable) Func(ret *Type, params []*Type, variadic, constM bool) *Type {
	return tt.Intern(&Type{Kind: TFunc, Ret: ret, Params: params,
		Variadic: variadic, ConstMethod: constM})
}

// All returns every interned type ordered by ID.
func (tt *TypeTable) All() []*Type {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make([]*Type, len(tt.all))
	copy(out, tt.all)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of interned types.
func (tt *TypeTable) Len() int {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return len(tt.all)
}
