package il

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/pp"
	"pdt/internal/source"
)

// TypeKey identifies one syntactic type occurrence within one routine.
// Template instantiations share AST nodes, so the routine is part of
// the key: the same ast.TypeExpr resolves differently in Stack<int>
// and Stack<double>.
type TypeKey struct {
	R *Routine
	T ast.TypeExpr
}

// Unit is the IL for one translation unit: the output of the frontend
// (preprocessor + parser + sema) and the input of the IL Analyzer.
type Unit struct {
	// Main is the compiled source file.
	Main *source.File
	// Files lists every file the unit touched (main + includes), in
	// first-visit order.
	Files []*source.File

	// Global is the global namespace; every entity is reachable from it
	// except the flat indices below.
	Global *Namespace

	// Flat creation-ordered indices over all entities, including
	// template instantiations (which also hang off their templates).
	AllClasses   []*Class
	AllRoutines  []*Routine
	AllEnums     []*Enum
	AllTypedefs  []*Typedef
	AllTemplates []*Template
	AllVars      []*Var

	// Macros records preprocessor definitions/undefinitions in source
	// order (for the PDB MACRO items).
	Macros []pp.Record

	// Types interns every type in the unit.
	Types *TypeTable

	// ExprTypes records the resolved type of every syntactic type
	// occurrence inside routine bodies (declarations, casts, new
	// expressions, catch parameters). The interpreter reads it to
	// materialize typed storage without redoing name resolution.
	ExprTypes map[TypeKey]*Type

	// SuppLocs is the supplemental location table: the paper notes that
	// some constructs' locations "are maintained in supplemental data
	// structures that must be scanned, since they are not directly
	// connected to the IL constructs" (§3.1). We reproduce that
	// property: template header/body spans live here, keyed by the
	// template, and the analyzer scans this table rather than reading a
	// field off the node.
	SuppLocs map[interface{}]source.Span

	nextRoutineID int
}

// NewUnit returns an empty unit for the given main file.
func NewUnit(main *source.File) *Unit {
	return &Unit{
		Main:      main,
		Global:    &Namespace{Aliases: map[string]*Namespace{}},
		Types:     NewTypeTable(),
		ExprTypes: map[TypeKey]*Type{},
		SuppLocs:  map[interface{}]source.Span{},
	}
}

// RecordExprType stores the resolved type of a syntactic type
// occurrence within r.
func (u *Unit) RecordExprType(r *Routine, te ast.TypeExpr, t *Type) {
	if te != nil && t != nil {
		u.ExprTypes[TypeKey{R: r, T: te}] = t
	}
}

// ExprType returns the recorded type of te within r, or nil.
func (u *Unit) ExprType(r *Routine, te ast.TypeExpr) *Type {
	return u.ExprTypes[TypeKey{R: r, T: te}]
}

// AddRoutine registers r in the flat index, assigning its ID.
func (u *Unit) AddRoutine(r *Routine) {
	r.ID = u.nextRoutineID
	u.nextRoutineID++
	u.AllRoutines = append(u.AllRoutines, r)
}

// AddFile records f in the unit's file list if not already present.
func (u *Unit) AddFile(f *source.File) {
	for _, e := range u.Files {
		if e == f {
			return
		}
	}
	u.Files = append(u.Files, f)
}

// LookupClass finds a class by qualified name anywhere in the unit.
func (u *Unit) LookupClass(qualified string) *Class {
	for _, c := range u.AllClasses {
		if c.QualifiedName() == qualified || c.Name == qualified {
			return c
		}
	}
	return nil
}

// LookupRoutine finds the first routine with the given qualified name.
func (u *Unit) LookupRoutine(qualified string) *Routine {
	for _, r := range u.AllRoutines {
		if r.QualifiedName() == qualified || r.Name == qualified {
			return r
		}
	}
	return nil
}

// LookupTemplate finds a template by name.
func (u *Unit) LookupTemplate(name string) *Template {
	for _, t := range u.AllTemplates {
		if t.QualifiedName() == name || t.Name == name {
			return t
		}
	}
	return nil
}
