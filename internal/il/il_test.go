package il

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pdt/internal/cpp/ast"
)

func TestTypeTableInternsBuiltins(t *testing.T) {
	tt := NewTypeTable()
	a := tt.Builtin(TInt)
	b := tt.Builtin(TInt)
	if a != b {
		t.Error("builtin types must be pointer-identical")
	}
	if tt.Builtin(TDouble) == a {
		t.Error("distinct builtins must differ")
	}
}

func TestTypeTableInternsCompound(t *testing.T) {
	tt := NewTypeTable()
	p1 := tt.PtrTo(tt.ConstOf(tt.Builtin(TChar)))
	p2 := tt.PtrTo(tt.ConstOf(tt.Builtin(TChar)))
	if p1 != p2 {
		t.Error("equal compound types must intern to one instance")
	}
	f1 := tt.Func(tt.Builtin(TVoid), []*Type{p1}, false, true)
	f2 := tt.Func(tt.Builtin(TVoid), []*Type{p2}, false, true)
	if f1 != f2 {
		t.Error("function types must intern")
	}
	f3 := tt.Func(tt.Builtin(TVoid), []*Type{p1}, true, true)
	if f1 == f3 {
		t.Error("variadic flag must distinguish function types")
	}
}

// randomType builds a random type tree of bounded depth in the table.
func randomType(tt *TypeTable, r *rand.Rand, depth int) *Type {
	if depth <= 0 {
		kinds := []TypeKind{TVoid, TBool, TChar, TInt, TUInt, TLong, TFloat, TDouble}
		return tt.Builtin(kinds[r.Intn(len(kinds))])
	}
	switch r.Intn(5) {
	case 0:
		return tt.PtrTo(randomType(tt, r, depth-1))
	case 1:
		return tt.RefTo(randomType(tt, r, depth-1))
	case 2:
		return tt.ConstOf(randomType(tt, r, depth-1))
	case 3:
		return tt.ArrayOf(randomType(tt, r, depth-1), int64(r.Intn(16)))
	default:
		n := r.Intn(3)
		params := make([]*Type, n)
		for i := range params {
			params[i] = randomType(tt, r, depth-1)
		}
		return tt.Func(randomType(tt, r, depth-1), params, r.Intn(2) == 0, false)
	}
}

// Property: interning is idempotent — rebuilding the same structure
// returns the identical pointer, and String() is injective over
// distinct interned types within one table.
func TestTypeInterningProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tt := NewTypeTable()
		a := randomType(tt, r, 4)
		// Rebuild with a fresh RNG of the same seed: identical walk.
		r2 := rand.New(rand.NewSource(seed))
		b := randomType(tt, r2, 4)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: String renderings of distinct interned types are distinct
// (the spelling is a faithful key).
func TestTypeStringInjectiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tt := NewTypeTable()
		seen := map[string]*Type{}
		for i := 0; i < 50; i++ {
			ty := randomType(tt, r, 3)
			if prev, ok := seen[ty.String()]; ok && prev != ty {
				return false
			}
			seen[ty.String()] = ty
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnqualifiedAndDeref(t *testing.T) {
	tt := NewTypeTable()
	base := tt.Builtin(TInt)
	cref := tt.RefTo(tt.ConstOf(base))
	if cref.Deref() != base {
		t.Errorf("Deref(const int &) = %v", cref.Deref())
	}
	cc := tt.ConstOf(tt.ConstOf(base))
	if cc.Unqualified() != base {
		t.Errorf("Unqualified(const const int) = %v", cc.Unqualified())
	}
	if !tt.ConstOf(base).IsConst() {
		t.Error("IsConst")
	}
}

func TestClassHierarchyHelpers(t *testing.T) {
	base := &Class{Name: "Base"}
	base.Methods = append(base.Methods,
		&Routine{Name: "f", Virtual: true},
		&Routine{Name: "g"})
	base.Members = append(base.Members, &Var{Name: "x"})
	mid := &Class{Name: "Mid", Bases: []Base{{Class: base}}}
	mid.Methods = append(mid.Methods, &Routine{Name: "f", Virtual: true})
	derived := &Class{Name: "Derived", Bases: []Base{{Class: mid}}}

	if got := derived.FindMethod("f"); got != mid.Methods[0] {
		t.Errorf("FindMethod(f) = %v (want Mid's override)", got)
	}
	if got := derived.FindMethod("g"); got != base.Methods[1] {
		t.Error("FindMethod(g) should reach Base")
	}
	if derived.FindMember("x") == nil {
		t.Error("FindMember should search bases")
	}
	if !derived.DerivesFrom(base) || base.DerivesFrom(derived) {
		t.Error("DerivesFrom wrong")
	}
	all := derived.AllBases(nil)
	if len(all) != 2 {
		t.Errorf("AllBases = %d", len(all))
	}
}

func TestQualifiedNames(t *testing.T) {
	g := &Namespace{}
	outer := &Namespace{Name: "outer", Parent: g}
	inner := &Namespace{Name: "inner", Parent: outer}
	if inner.QualifiedName() != "outer::inner" {
		t.Errorf("qn = %q", inner.QualifiedName())
	}
	cls := &Class{Name: "C", Parent: inner}
	if cls.QualifiedName() != "outer::inner::C" {
		t.Errorf("class qn = %q", cls.QualifiedName())
	}
	m := &Routine{Name: "m", Class: cls}
	if m.QualifiedName() != "outer::inner::C::m" {
		t.Errorf("routine qn = %q", m.QualifiedName())
	}
	if cls.ScopeNamespace() != inner {
		t.Error("ScopeNamespace")
	}
}

func TestBaseName(t *testing.T) {
	c := &Class{Name: "Stack<int, 4>"}
	if c.BaseName() != "Stack" {
		t.Errorf("BaseName = %q", c.BaseName())
	}
}

func TestTemplateArgValueString(t *testing.T) {
	tt := NewTypeTable()
	cases := []struct {
		v    TemplateArgValue
		want string
	}{
		{TemplateArgValue{Type: tt.Builtin(TInt)}, "int"},
		{TemplateArgValue{Const: 42, IsInt: true}, "42"},
		{TemplateArgValue{Const: -7, IsInt: true}, "-7"},
		{TemplateArgValue{Const: 0, IsInt: true}, "0"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q want %q", got, c.want)
		}
	}
}

func TestUnitExprTypes(t *testing.T) {
	u := NewUnit(nil)
	r := &Routine{Name: "f"}
	te := &ast.BuiltinType{Spec: "int"}
	ty := u.Types.Builtin(TInt)
	u.RecordExprType(r, te, ty)
	if u.ExprType(r, te) != ty {
		t.Error("ExprType lookup failed")
	}
	r2 := &Routine{Name: "g"}
	if u.ExprType(r2, te) != nil {
		t.Error("ExprType must be per-routine")
	}
}

func TestRoutineFullName(t *testing.T) {
	tt := NewTypeTable()
	cls := &Class{Name: "Stack<int>"}
	sig := tt.Func(tt.Builtin(TVoid), []*Type{tt.RefTo(tt.ConstOf(tt.Builtin(TInt)))}, false, false)
	r := &Routine{Name: "push", Class: cls, Signature: sig}
	if r.FullName() != "Stack<int>::push(const int &)" {
		t.Errorf("FullName = %q", r.FullName())
	}
}

func TestEnumLookup(t *testing.T) {
	e := &Enum{Name: "Color", Values: []EnumValue{{Name: "R", Value: 0}, {Name: "G", Value: 5}}}
	if v, ok := e.Lookup("G"); !ok || v != 5 {
		t.Errorf("Lookup(G) = %d,%v", v, ok)
	}
	if _, ok := e.Lookup("B"); ok {
		t.Error("Lookup(B) should fail")
	}
}

func TestNamespaceMemberNames(t *testing.T) {
	ns := &Namespace{Name: "n"}
	ns.Classes = append(ns.Classes, &Class{Name: "C"})
	ns.Routines = append(ns.Routines, &Routine{Name: "f"})
	ns.Vars = append(ns.Vars, &Var{Name: "v"})
	got := ns.MemberNames()
	want := []string{"C", "f", "v"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MemberNames = %v", got)
	}
}
