package il

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/source"
)

// Scope is implemented by entities that can own declarations
// (namespaces and classes).
type Scope interface {
	QualifiedName() string
	ScopeNamespace() *Namespace // innermost enclosing namespace
}

// Namespace is a C++ namespace (or the global namespace, Name == "").
type Namespace struct {
	Name   string
	Parent *Namespace
	Loc    source.Loc

	Namespaces []*Namespace
	Classes    []*Class
	Routines   []*Routine
	Vars       []*Var
	Enums      []*Enum
	Typedefs   []*Typedef
	Templates  []*Template
	Aliases    map[string]*Namespace
}

// QualifiedName returns "a::b" ("" for the global namespace).
func (n *Namespace) QualifiedName() string {
	if n == nil || n.Parent == nil {
		return ""
	}
	p := n.Parent.QualifiedName()
	if p == "" {
		return n.Name
	}
	return p + "::" + n.Name
}

// ScopeNamespace returns the namespace itself.
func (n *Namespace) ScopeNamespace() *Namespace { return n }

// MemberNames lists the direct member names, for the PDB NAMESPACE item.
func (n *Namespace) MemberNames() []string {
	var out []string
	for _, x := range n.Namespaces {
		out = append(out, x.Name)
	}
	for _, x := range n.Classes {
		out = append(out, x.Name)
	}
	for _, x := range n.Routines {
		out = append(out, x.Name)
	}
	for _, x := range n.Vars {
		out = append(out, x.Name)
	}
	for _, x := range n.Enums {
		out = append(out, x.Name)
	}
	for _, x := range n.Typedefs {
		out = append(out, x.Name)
	}
	return out
}

// Base is one direct base class of a class.
type Base struct {
	Class   *Class
	Access  ast.Access
	Virtual bool
	Loc     source.Loc
}

// Friend records a friend declaration.
type Friend struct {
	// Name is the friend's name as written; Class/Routine are resolved
	// when possible.
	Name    string
	Class   *Class
	Routine *Routine
	Loc     source.Loc
}

// Class is a class/struct/union: a plain definition, a template
// instantiation ("Stack<int>"), or an explicit specialization.
type Class struct {
	Name      string // includes template arguments for instantiations
	Kind      ast.ClassKind
	Parent    Scope
	Access    ast.Access // access when nested in a class
	Loc       source.Loc
	Header    source.Span
	Body      source.Span
	Complete  bool // definition seen
	Bases     []Base
	Friends   []Friend
	Methods   []*Routine
	Members   []*Var // data members
	Enums     []*Enum
	Typedefs  []*Typedef
	Nested    []*Class
	Templates []*Template // member templates

	// IsInstantiation marks classes produced by template instantiation.
	IsInstantiation bool
	// IsSpecialization marks explicit specializations.
	IsSpecialization bool
	// Origin is the template this class was instantiated from. Present
	// in the IL as the paper's proposed front-end modification; the
	// analyzer's default (paper-faithful) mode ignores it and matches by
	// location instead. Nil for specializations in scan mode semantics.
	Origin *Template
	// Args holds the instantiation's template arguments.
	Args []TemplateArgValue

	// Decl is the AST the class came from (the template's ClassDecl for
	// instantiations).
	Decl *ast.ClassDecl

	// AnonUnion marks unnamed unions folded into the enclosing class.
	AnonUnion bool
}

// QualifiedName returns the full name including parents.
func (c *Class) QualifiedName() string {
	if c.Parent == nil {
		return c.Name
	}
	p := c.Parent.QualifiedName()
	if p == "" {
		return c.Name
	}
	return p + "::" + c.Name
}

// ScopeNamespace returns the innermost namespace enclosing the class.
func (c *Class) ScopeNamespace() *Namespace {
	if c.Parent == nil {
		return nil
	}
	return c.Parent.ScopeNamespace()
}

// BaseName returns the class name without template arguments
// ("Stack" for "Stack<int>").
func (c *Class) BaseName() string {
	if i := strings.IndexByte(c.Name, '<'); i >= 0 {
		return c.Name[:i]
	}
	return c.Name
}

// FindMethod returns the first method with the given name, searching
// bases depth-first (used for member lookup and virtual dispatch).
func (c *Class) FindMethod(name string) *Routine {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	for _, b := range c.Bases {
		if b.Class == nil {
			continue
		}
		if m := b.Class.FindMethod(name); m != nil {
			return m
		}
	}
	return nil
}

// FindMethods returns all methods with the given name (the overload
// set), innermost class first.
func (c *Class) FindMethods(name string) []*Routine {
	var out []*Routine
	for _, m := range c.Methods {
		if m.Name == name {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		for _, b := range c.Bases {
			if b.Class == nil {
				continue
			}
			if ms := b.Class.FindMethods(name); len(ms) > 0 {
				out = append(out, ms...)
				break
			}
		}
	}
	return out
}

// FindMember returns the data member with the given name, searching
// bases.
func (c *Class) FindMember(name string) *Var {
	for _, v := range c.Members {
		if v.Name == name {
			return v
		}
	}
	for _, b := range c.Bases {
		if b.Class == nil {
			continue
		}
		if v := b.Class.FindMember(name); v != nil {
			return v
		}
	}
	return nil
}

// AllBases appends every (transitive) base class to out, depth-first.
func (c *Class) AllBases(out []*Class) []*Class {
	for _, b := range c.Bases {
		if b.Class == nil {
			continue
		}
		out = append(out, b.Class)
		out = b.Class.AllBases(out)
	}
	return out
}

// DerivesFrom reports whether c has base (transitively).
func (c *Class) DerivesFrom(base *Class) bool {
	for _, b := range c.Bases {
		if b.Class == nil {
			continue
		}
		if b.Class == base || b.Class.DerivesFrom(base) {
			return true
		}
	}
	return false
}

// CallSite is one static call recorded in a routine body — the PDB
// "rcall" attribute. The paper's IL Analyzer must do extra lifetime
// processing to catch constructor/destructor calls; sema performs the
// equivalent analysis when building the IL.
type CallSite struct {
	Callee  *Routine
	Virtual bool
	Loc     source.Loc
}

// Var is a variable: global, namespace member, class data member, or
// parameter (parameters appear only in Routine.Params).
type Var struct {
	Name    string
	Type    *Type
	Loc     source.Loc
	Access  ast.Access
	Storage ast.StorageClass
	Class   *Class   // owning class for data members
	Init    ast.Expr // initializer (unevaluated)
	Default ast.Expr // default argument (parameters)
	Kind    string   // PDB cmkind: "var" normally
}

// Routine is a function: free, member, instantiated from a template, or
// compiler-relevant special member.
type Routine struct {
	ID        int // stable creation index within the unit
	Name      string
	Kind      ast.RoutineKind
	Class     *Class // nil for free functions
	Namespace *Namespace
	Access    ast.Access
	Loc       source.Loc
	Header    source.Span
	BodySpan  source.Span
	Signature *Type
	Params    []*Var
	Ret       *Type

	Virtual     bool
	PureVirtual bool
	Static      bool
	Inline      bool
	Const       bool
	Explicit    bool
	Linkage     string
	Storage     ast.StorageClass

	// IsInstantiation marks routines produced by template instantiation.
	IsInstantiation bool
	// Used marks routines actually used in the compilation. In "used"
	// instantiation mode, unused members of instantiated class
	// templates keep Used == false and are omitted from the PDB, as the
	// EDG used mode omits them from the IL (§2).
	Used bool
	// Origin is the template the routine was instantiated from (see
	// Class.Origin for the fidelity caveat).
	Origin *Template

	// Decl is the (possibly template) AST carrying the body.
	Decl *ast.FunctionDecl
	// HasBody reports whether a definition was seen.
	HasBody bool

	// Calls lists the static call sites found in the body.
	Calls []CallSite

	// Bindings maps template parameter names to their argument values
	// for instantiated routines (used when analyzing/interpreting the
	// shared template body).
	Bindings map[string]TemplateArgValue
}

// QualifiedName returns "Class::name" or "ns::name".
func (r *Routine) QualifiedName() string {
	if r.Class != nil {
		return r.Class.QualifiedName() + "::" + r.Name
	}
	if r.Namespace != nil {
		if q := r.Namespace.QualifiedName(); q != "" {
			return q + "::" + r.Name
		}
	}
	return r.Name
}

// FullName renders the routine with its signature for display, in the
// style of the paper's pdbtree output.
func (r *Routine) FullName() string {
	if r.Signature == nil {
		return r.QualifiedName() + "()"
	}
	sig := r.Signature
	var sb strings.Builder
	sb.WriteString(r.QualifiedName())
	sb.WriteString("(")
	for i, p := range sig.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// Enum is an enumeration with its enumerators.
type Enum struct {
	Name   string
	Parent Scope
	Access ast.Access
	Loc    source.Loc
	Values []EnumValue
}

// EnumValue is one enumerator.
type EnumValue struct {
	Name  string
	Value int64
	Loc   source.Loc
}

// QualifiedName returns the full name of the enum.
func (e *Enum) QualifiedName() string {
	if e.Parent == nil {
		return e.Name
	}
	p := e.Parent.QualifiedName()
	if p == "" {
		return e.Name
	}
	return p + "::" + e.Name
}

// Lookup returns the value of an enumerator, if present.
func (e *Enum) Lookup(name string) (int64, bool) {
	for _, v := range e.Values {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// Typedef is a type alias.
type Typedef struct {
	Name   string
	Type   *Type
	Parent Scope
	Access ast.Access
	Loc    source.Loc
}

// TemplateKind classifies templates — the PDB "tkind" attribute
// (Figure 3: class, memfunc; Figure 6 adds func, statmem).
type TemplateKind int

// Template kinds.
const (
	TemplClass TemplateKind = iota
	TemplFunc
	TemplMemFunc
	TemplStatMem
)

func (k TemplateKind) String() string {
	switch k {
	case TemplClass:
		return "class"
	case TemplFunc:
		return "func"
	case TemplMemFunc:
		return "memfunc"
	case TemplStatMem:
		return "statmem"
	default:
		return "?"
	}
}

// TemplateArgValue is one bound template argument: a type or an integer
// constant.
type TemplateArgValue struct {
	Type  *Type
	Const int64
	IsInt bool
}

// String renders the argument as it appears inside "<...>".
func (a TemplateArgValue) String() string {
	if a.IsInt {
		return intToString(a.Const)
	}
	if a.Type != nil {
		return a.Type.String()
	}
	return "?"
}

func intToString(v int64) string {
	// Avoid strconv import churn in this file's tiny use.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Template is a class, function, member-function, or static-member
// template declaration.
type Template struct {
	Name   string
	Kind   TemplateKind
	Parent Scope
	Access ast.Access
	Loc    source.Loc
	Header source.Span
	Body   source.Span
	Text   string

	Params []ast.TemplateParam

	// ClassDecl or FuncDecl is the declaration AST (exactly one set).
	ClassDecl *ast.ClassDecl
	FuncDecl  *ast.FunctionDecl

	// For member-function templates declared in-class and defined
	// out-of-line, OutOfLine carries the definition.
	OutOfLine *ast.FunctionDecl

	// Instantiations produced from this template.
	ClassInsts   []*Class
	RoutineInsts []*Routine

	// Specializations registered for this template.
	Specs []*TemplateSpec
}

// TemplateSpec is one explicit specialization of a class template.
type TemplateSpec struct {
	Args  []TemplateArgValue
	Class *Class
}

// QualifiedName returns the template's qualified name.
func (t *Template) QualifiedName() string {
	if t.Parent == nil {
		return t.Name
	}
	p := t.Parent.QualifiedName()
	if p == "" {
		return t.Name
	}
	return p + "::" + t.Name
}
