package conv_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/tools/conv"
)

func buildDB(t *testing.T, src string) *ductape.PDB {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Errorf("diagnostic: %v", d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

func TestConvertReadable(t *testing.T) {
	db := buildDB(t, `
#define FLAG 1
namespace app {
    class Engine {
    public:
        Engine() { }
        virtual void run() { step(); }
    private:
        void step() { }
        int cycles;
    };
}
template <class T> T twice(T x) { return x + x; }
int main() {
    app::Engine e;
    e.run();
    return twice(21);
}
`)
	var sb strings.Builder
	conv.Convert(&sb, db)
	out := sb.String()
	for _, want := range []string{
		"Program Database (PDB 1.0)",
		"Source Files (",
		"Templates (",
		"[te#", "kind=func",
		"instantiations (1): twice<int>",
		"Classes (",
		"class app::Engine",
		"member: priv cycles : int",
		"method: pub app::Engine::run()",
		"Routines (",
		"calls app::Engine::step()",
		"kind=ctor",
		"virtual=virt",
		"Types (",
		"Namespaces (",
		"app",
		"Macros (",
		"def FLAG",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("readable output missing %q", want)
		}
	}
}

func TestConvertResolvesReferences(t *testing.T) {
	db := buildDB(t, `
class B { public: virtual ~B() { } };
class D : public B { };
`)
	var sb strings.Builder
	conv.Convert(&sb, db)
	out := sb.String()
	if !strings.Contains(out, "base: pub B") {
		t.Errorf("base reference not resolved to a name:\n%s", out)
	}
	// No raw unresolved ids should leak into names.
	if strings.Contains(out, "<unresolved>") {
		t.Errorf("unresolved references in output:\n%s", out)
	}
}
