// Package conv implements the pdbconv utility of Table 2: it converts
// a program database from the compact ASCII format into a fully
// spelled-out, human-readable report, resolving every cross-reference
// to a name.
package conv

import (
	"fmt"
	"io"
	"strings"

	"pdt/internal/ductape"
)

// Convert writes the readable form of the database to w.
func Convert(w io.Writer, db *ductape.PDB) {
	fmt.Fprintf(w, "Program Database (PDB 1.0) — %d items\n", len(db.Items()))

	if files := db.Files(); len(files) > 0 {
		fmt.Fprintf(w, "\nSource Files (%d)\n", len(files))
		for _, f := range files {
			fmt.Fprintf(w, "  [so#%d] %s", f.ID(), f.Name())
			if f.System() {
				fmt.Fprint(w, " (system)")
			}
			fmt.Fprintln(w)
			for _, inc := range f.Includes() {
				fmt.Fprintf(w, "      includes %s\n", inc.Name())
			}
		}
	}

	if tmpls := db.Templates(); len(tmpls) > 0 {
		fmt.Fprintf(w, "\nTemplates (%d)\n", len(tmpls))
		for _, t := range tmpls {
			fmt.Fprintf(w, "  [te#%d] %s kind=%s at %s\n", t.ID(), t.Name(), t.Kind(), locStr(t.Location()))
			if t.Text() != "" {
				fmt.Fprintf(w, "      text: %s\n", truncate(t.Text(), 100))
			}
			if n := len(t.InstantiatedClasses()) + len(t.InstantiatedRoutines()); n > 0 {
				var names []string
				for _, c := range t.InstantiatedClasses() {
					names = append(names, c.Name())
				}
				for _, r := range t.InstantiatedRoutines() {
					names = append(names, r.FullName())
				}
				fmt.Fprintf(w, "      instantiations (%d): %s\n", n, strings.Join(names, ", "))
			}
		}
	}

	if classes := db.Classes(); len(classes) > 0 {
		fmt.Fprintf(w, "\nClasses (%d)\n", len(classes))
		for _, c := range classes {
			fmt.Fprintf(w, "  [cl#%d] %s %s at %s", c.ID(), c.Kind(), c.FullName(), locStr(c.Location()))
			var marks []string
			if c.IsInstantiation() {
				marks = append(marks, "instantiation")
			}
			if c.IsSpecialization() {
				marks = append(marks, "specialization")
			}
			if t := c.Template(); t != nil {
				marks = append(marks, "of template "+t.Name())
			}
			if len(marks) > 0 {
				fmt.Fprintf(w, " (%s)", strings.Join(marks, ", "))
			}
			fmt.Fprintln(w)
			for _, b := range c.BaseClasses() {
				name := "<unresolved>"
				if b.Class != nil {
					name = b.Class.FullName()
				}
				virt := ""
				if b.Virtual {
					virt = "virtual "
				}
				fmt.Fprintf(w, "      base: %s%s %s\n", virt, b.Access, name)
			}
			for _, fr := range c.Friends() {
				fmt.Fprintf(w, "      friend: %s\n", fr)
			}
			for _, m := range c.DataMembers() {
				tn := "?"
				if m.Type != nil {
					tn = m.Type.Name()
				}
				st := ""
				if m.Static {
					st = "static "
				}
				fmt.Fprintf(w, "      member: %s %s%s : %s\n", m.Access, st, m.Name, tn)
			}
			for _, r := range c.Functions() {
				fmt.Fprintf(w, "      method: %s %s\n", r.Access(), r.FullName())
			}
		}
	}

	if routines := db.Routines(); len(routines) > 0 {
		fmt.Fprintf(w, "\nRoutines (%d)\n", len(routines))
		for _, r := range routines {
			fmt.Fprintf(w, "  [ro#%d] %s at %s\n", r.ID(), r.FullName(), locStr(r.Location()))
			attrs := []string{"kind=" + r.Kind(), "access=" + r.Access(),
				"linkage=" + r.Linkage(), "virtual=" + r.Virtuality()}
			if r.IsStatic() {
				attrs = append(attrs, "static")
			}
			if r.IsConst() {
				attrs = append(attrs, "const")
			}
			if sig := r.Signature(); sig != nil {
				attrs = append(attrs, "signature="+sig.Name())
			}
			fmt.Fprintf(w, "      %s\n", strings.Join(attrs, " "))
			if t := r.Template(); t != nil {
				fmt.Fprintf(w, "      instantiated from template %s (te#%d)\n", t.Name(), t.ID())
			}
			for _, call := range r.Callees() {
				v := ""
				if call.IsVirtual() {
					v = " (virtual)"
				}
				fmt.Fprintf(w, "      calls %s%s at %s\n", call.Call().FullName(), v, locStr(call.Location()))
			}
		}
	}

	if types := db.Types(); len(types) > 0 {
		fmt.Fprintf(w, "\nTypes (%d)\n", len(types))
		for _, t := range types {
			fmt.Fprintf(w, "  [ty#%d] %s kind=%s", t.ID(), t.Name(), t.Kind())
			if ik := t.IntegerKind(); ik != "" {
				fmt.Fprintf(w, " ikind=%s", ik)
			}
			fmt.Fprintln(w)
		}
	}

	if nss := db.Namespaces(); len(nss) > 0 {
		fmt.Fprintf(w, "\nNamespaces (%d)\n", len(nss))
		for _, n := range nss {
			if n.AliasOf() != "" {
				fmt.Fprintf(w, "  [na#%d] %s = %s (alias)\n", n.ID(), n.Name(), n.AliasOf())
				continue
			}
			fmt.Fprintf(w, "  [na#%d] %s members: %s\n", n.ID(), n.Name(),
				strings.Join(n.Members(), ", "))
		}
	}

	if macros := db.Macros(); len(macros) > 0 {
		fmt.Fprintf(w, "\nMacros (%d)\n", len(macros))
		for _, m := range macros {
			fmt.Fprintf(w, "  [ma#%d] %s %s at %s\n", m.ID(), m.Kind(), m.Name(), locStr(m.Location()))
			if m.Text() != "" {
				fmt.Fprintf(w, "      %s\n", truncate(m.Text(), 100))
			}
		}
	}
}

func locStr(l ductape.Location) string {
	if !l.Valid() {
		return "<unknown>"
	}
	return l.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
