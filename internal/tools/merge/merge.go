// Package merge implements the pdbmerge utility of Table 2: merging
// PDB files from separate compilations into one PDB file, eliminating
// duplicate template instantiations in the process. The merge logic
// itself lives in the DUCTAPE library (ductape.Merge); this package
// adds file-level plumbing for the command-line tool.
package merge

import (
	"fmt"
	"io"

	"pdt/internal/ductape"
)

// Files loads every input PDB, merges them in order, and writes the
// result to w.
func Files(w io.Writer, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("pdbmerge: no input files")
	}
	dbs := make([]*ductape.PDB, 0, len(paths))
	for _, p := range paths {
		db, err := ductape.Load(p)
		if err != nil {
			return fmt.Errorf("pdbmerge: %s: %w", p, err)
		}
		dbs = append(dbs, db)
	}
	merged := ductape.Merge(dbs...)
	return merged.Write(w)
}

// Merge combines already-loaded databases (API form used by tests and
// the benchmarks).
func Merge(dbs ...*ductape.PDB) *ductape.PDB { return ductape.Merge(dbs...) }
