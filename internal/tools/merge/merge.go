// Package merge implements the pdbmerge utility of Table 2: merging
// PDB files from separate compilations into one PDB file, eliminating
// duplicate template instantiations in the process. The merge logic
// itself lives in the DUCTAPE library (ductape.Merge); the concurrent
// loading and the balanced tree reduction over many inputs live in
// internal/pdbio. This package keeps the historical file-level entry
// points as thin wrappers.
package merge

import (
	"context"
	"fmt"
	"io"

	"pdt/internal/ductape"
	"pdt/internal/pdbio"
)

// Files loads every input PDB concurrently, merges them with the k-way
// tree reduction, and writes the result to w. Every input is attempted
// even after a failure; the error aggregates one entry per bad input.
func Files(w io.Writer, paths []string) error {
	return FilesContext(context.Background(), w, paths, 0)
}

// FilesContext is Files with cancellation and an explicit worker
// count (0 = one per CPU).
func FilesContext(ctx context.Context, w io.Writer, paths []string, workers int) error {
	if len(paths) == 0 {
		return fmt.Errorf("pdbmerge: no input files")
	}
	err := pdbio.MergeFiles(ctx, w, paths, pdbio.WithWorkers(workers))
	if err != nil {
		return fmt.Errorf("pdbmerge: %w", err)
	}
	return nil
}

// Merge combines already-loaded databases (API form used by tests and
// the benchmarks).
func Merge(dbs ...*ductape.PDB) *ductape.PDB { return ductape.Merge(dbs...) }
