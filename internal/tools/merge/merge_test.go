package merge

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/analysis"
	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
)

// compile turns one virtual translation unit (plus any headers) into a
// DUCTAPE database.
func compile(t *testing.T, name, src string, headers map[string]string) *ductape.PDB {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for h, text := range headers {
		fs.AddVirtualFile(h, text)
	}
	res := core.CompileSource(fs, name, src, opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("compile %s: %v", name, d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

// writePDB serialises a database to a file on disk for Files().
func writePDB(t *testing.T, dir, name string, db *ductape.PDB) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var sb strings.Builder
	if err := db.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFilesMergesOnDisk(t *testing.T) {
	// Both units instantiate Box<int>; the on-disk merge must collapse
	// the duplicates (the paper's duplicate-instantiation elimination).
	headers := map[string]string{"s.h": "#ifndef S_H\n#define S_H\n" +
		"template <class T> class Box { public: Box() { } T v; int get() { return 1; } };\n" +
		"#endif\n"}
	db1 := compile(t, "u1.cpp",
		"#include \"s.h\"\nvoid u1() { Box<int> b; b.get(); }\n", headers)
	db2 := compile(t, "u2.cpp",
		"#include \"s.h\"\nvoid u2() { Box<int> b; b.get(); }\n", headers)

	dir := t.TempDir()
	var paths []string
	for i, db := range []*ductape.PDB{db1, db2} {
		paths = append(paths, writePDB(t, dir, []string{"u1.pdb", "u2.pdb"}[i], db))
	}
	var out strings.Builder
	if err := Files(&out, paths); err != nil {
		t.Fatalf("Files: %v", err)
	}
	if !strings.HasPrefix(out.String(), "<PDB 1.0>") {
		t.Fatalf("output is not a PDB: %q", out.String()[:20])
	}
	merged, err := ductape.Read(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("merged output unreadable: %v", err)
	}
	boxes := 0
	for _, c := range merged.Classes() {
		if c.Name() == "Box<int>" {
			boxes++
		}
	}
	if boxes != 1 {
		t.Errorf("Box<int> appears %d times after merge, want 1", boxes)
	}
	if errs := merged.Raw().Validate(); len(errs) != 0 {
		t.Errorf("merged output invalid: %v", errs[0])
	}
}

// Two translation units that disagree on a routine's return type: both
// definitions must survive the merge (their signatures differ), which
// is exactly what the odr-duplicate analysis pass then reports.
func TestMergeKeepsConflictingSignatures(t *testing.T) {
	db1 := compile(t, "u1.cpp", "int helper(int x) { return x + 1; }\n", nil)
	db2 := compile(t, "u2.cpp", "double helper(int x) { return x * 0.5; }\n", nil)
	merged := Merge(db1, db2)

	var sigs []string
	for _, r := range merged.Routines() {
		if r.Name() == "helper" {
			if sig := r.Signature(); sig != nil {
				sigs = append(sigs, sig.Name())
			}
		}
	}
	if len(sigs) != 2 || sigs[0] == sigs[1] {
		t.Fatalf("helper signatures after merge = %v, want two distinct", sigs)
	}

	diags := analysis.NewODRDuplicatePass().Run(merged)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "helper") &&
			strings.Contains(d.Message, "conflicting signatures") {
			found = true
		}
	}
	if !found {
		t.Errorf("odr-duplicate missed the conflict: %v", diags)
	}
}

func TestFilesErrors(t *testing.T) {
	var out strings.Builder
	if err := Files(&out, nil); err == nil ||
		!strings.Contains(err.Error(), "no input files") {
		t.Errorf("no-input error = %v", err)
	}
	if err := Files(&out, []string{"/nonexistent/x.pdb"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.pdb")
	os.WriteFile(bad, []byte("not a pdb"), 0o644)
	if err := Files(&out, []string{bad}); err == nil {
		t.Error("malformed file accepted")
	}
}
