package tree_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/tools/tree"
)

func buildDB(t *testing.T, src string, extra map[string]string) *ductape.PDB {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "main.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Errorf("diagnostic: %v", d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

// TestFuncTree is experiment E6 (Figure 5): the call graph display
// shows nesting with "`--> " connectors, marks virtual calls, and cuts
// cycles with "...".
func TestFuncTree(t *testing.T) {
	src := `
class Base {
public:
    virtual int work() { return helper(); }
    int helper() { return 1; }
};
int recurse(int n);
int recurse(int n) {
    if (n <= 0) return 0;
    return recurse(n - 1);
}
int main() {
    Base b;
    Base *p = &b;
    p->work();
    return recurse(3);
}
`
	db := buildDB(t, src, nil)
	var sb strings.Builder
	tree.PrintCallGraph(&sb, db)
	out := sb.String()

	if !strings.Contains(out, "main()") {
		t.Errorf("missing root main: %s", out)
	}
	if !strings.Contains(out, "`--> Base::work() (VIRTUAL)") {
		t.Errorf("virtual call not marked:\n%s", out)
	}
	// Nested callee of work at deeper indentation.
	if !strings.Contains(out, "     `--> Base::helper()") {
		t.Errorf("nesting broken:\n%s", out)
	}
	// Recursion is cut with "...".
	if !strings.Contains(out, "recurse(int) ...") {
		t.Errorf("cycle not cut:\n%s", out)
	}
}

func TestFuncTreeStackExample(t *testing.T) {
	src := `
#include <vector>
class Overflow { };
template <class Object>
class Stack {
public:
    bool isFull() const { return top == theArray.size() - 1; }
    void push(const Object & x) {
        if (isFull())
            throw Overflow();
        theArray[++top] = x;
    }
private:
    vector<Object> theArray;
    int top;
};
int main() {
    Stack<int> s;
    s.push(4);
    return 0;
}
`
	db := buildDB(t, src, nil)
	var sb strings.Builder
	tree.PrintCallGraph(&sb, db)
	out := sb.String()
	for _, want := range []string{
		"main()",
		"`--> Stack<int>::push(const int &)",
		"`--> Stack<int>::isFull()",
		"`--> vector<int>::size()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("call graph missing %q:\n%s", want, out)
		}
	}
}

func TestFileTree(t *testing.T) {
	db := buildDB(t, `#include "a.h"`+"\nint main() { return 0; }\n",
		map[string]string{
			"a.h": `#include "b.h"` + "\nint aa;\n",
			"b.h": "int bb;\n",
		})
	var sb strings.Builder
	tree.PrintFileTree(&sb, db)
	out := sb.String()
	if !strings.Contains(out, "main.cpp\n`--> a.h\n     `--> b.h") {
		t.Errorf("file tree shape wrong:\n%s", out)
	}
}

func TestClassHierarchy(t *testing.T) {
	db := buildDB(t, `
class A { };
class B : public A { };
class C : public B { };
`, nil)
	var sb strings.Builder
	tree.PrintClassHierarchy(&sb, db)
	out := sb.String()
	if !strings.Contains(out, "A\n`--> B\n     `--> C") {
		t.Errorf("hierarchy shape wrong:\n%s", out)
	}
}

func TestClassHierarchyMarksInstantiations(t *testing.T) {
	db := buildDB(t, `
template <class T> class Box { };
template <> class Box<char> { };
int main() { Box<int> b; Box<char> c; return 0; }
`, nil)
	var sb strings.Builder
	tree.PrintClassHierarchy(&sb, db)
	out := sb.String()
	if !strings.Contains(out, "Box<int> [instantiation]") {
		t.Errorf("instantiation not marked:\n%s", out)
	}
	if !strings.Contains(out, "Box<char> [specialization]") {
		t.Errorf("specialization not marked:\n%s", out)
	}
}
