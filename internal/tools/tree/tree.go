// Package tree implements the pdbtree utility of Table 2: it displays
// the file inclusion tree, the class hierarchy, and the static call
// graph of a program database. PrintFuncTree is a line-for-line Go
// rendition of the paper's Figure 5 routine, including the
// ACTIVE-flag cycle cut, the "`--> " connectors, the "(VIRTUAL)"
// marker, and the " ..." ellipsis on back edges.
package tree

import (
	"fmt"
	"io"
	"strings"

	"pdt/internal/ductape"
)

// PrintFuncTree writes the static call graph rooted at r, exactly as
// the paper's Figure 5 does.
func PrintFuncTree(w io.Writer, r *ductape.Routine, level int) {
	r.Flag = ductape.Active
	c := r.Callees()
	for _, it := range c {
		rr := it.Call()
		if level != 0 || len(rr.Callees()) > 0 {
			indent := (level - 1) * 5
			if indent > 0 {
				fmt.Fprint(w, strings.Repeat(" ", indent))
			}
			if level != 0 {
				fmt.Fprint(w, "`--> ")
			}
			fmt.Fprint(w, rr.FullName())
			if it.IsVirtual() {
				fmt.Fprint(w, " (VIRTUAL)")
			}
			if rr.Flag == ductape.Active {
				fmt.Fprintln(w, " ...")
			} else {
				fmt.Fprintln(w)
				PrintFuncTree(w, rr, level+1)
			}
		}
	}
	r.Flag = ductape.Inactive
}

// PrintCallGraph prints the call tree for every root routine (main
// first), prefixed with the root's own name.
func PrintCallGraph(w io.Writer, db *ductape.PDB) {
	db.ResetFlags()
	for _, root := range db.RootRoutines() {
		fmt.Fprintln(w, root.FullName())
		PrintFuncTree(w, root, 1)
		fmt.Fprintln(w)
	}
}

// PrintFileTree prints the source file inclusion tree.
func PrintFileTree(w io.Writer, db *ductape.PDB) {
	seen := map[*ductape.File]bool{}
	var rec func(f *ductape.File, level int)
	rec = func(f *ductape.File, level int) {
		if level > 0 {
			fmt.Fprint(w, strings.Repeat(" ", (level-1)*5))
			fmt.Fprint(w, "`--> ")
		}
		fmt.Fprint(w, f.Name())
		if seen[f] {
			fmt.Fprintln(w, " ...")
			return
		}
		fmt.Fprintln(w)
		seen[f] = true
		for _, inc := range f.Includes() {
			rec(inc, level+1)
		}
		seen[f] = false
	}
	for _, root := range db.RootFiles() {
		rec(root, 0)
		fmt.Fprintln(w)
	}
}

// PrintClassHierarchy prints the class hierarchy, roots first, derived
// classes indented beneath their bases.
func PrintClassHierarchy(w io.Writer, db *ductape.PDB) {
	seen := map[*ductape.Class]bool{}
	var rec func(c *ductape.Class, level int)
	rec = func(c *ductape.Class, level int) {
		if level > 0 {
			fmt.Fprint(w, strings.Repeat(" ", (level-1)*5))
			fmt.Fprint(w, "`--> ")
		}
		fmt.Fprint(w, c.FullName())
		if c.IsInstantiation() {
			fmt.Fprint(w, " [instantiation]")
		}
		if c.IsSpecialization() {
			fmt.Fprint(w, " [specialization]")
		}
		if seen[c] {
			fmt.Fprintln(w, " ...")
			return
		}
		fmt.Fprintln(w)
		seen[c] = true
		for _, d := range c.DerivedClasses() {
			rec(d, level+1)
		}
		seen[c] = false
	}
	for _, root := range db.RootClasses() {
		rec(root, 0)
	}
}
