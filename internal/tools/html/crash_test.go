package html

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/ductape"
)

const tinySite = "<PDB 1.0>\n\nso#1 common.h\n\nso#2 unit0.cpp\nsinc 1\n\nro#3 f0\nrloc so#2 1 1\nracs NA\nrkind fun\nrlink C++\n"

func tinyDB(t *testing.T) *ductape.PDB {
	t.Helper()
	db, err := ductape.Read(strings.NewReader(tinySite))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGenerateReplacesStaleSite: regeneration swaps the whole site,
// so pages from a previous run that no longer exist disappear instead
// of lingering as stale documentation.
func TestGenerateReplacesStaleSite(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "site")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "src_removed_cpp.html")
	if err := os.WriteFile(stale, []byte("stale page"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := Generate(tinyDB(t), dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Lstat(stale); !os.IsNotExist(err) {
		t.Error("stale page survived regeneration")
	}
	if got := mustRead(t, filepath.Join(dir, "index.html")); !strings.Contains(got, "Program Database") {
		t.Error("index.html missing after regeneration")
	}
	// The staging and aside directories must both be gone.
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "site" {
			t.Errorf("leftover in parent: %s", e.Name())
		}
	}
}

// TestGeneratePerPageFailuresJoinAndPreserveTarget: page failures are
// collected — every page is still attempted — and a failed generation
// never touches the previously installed site.
func TestGeneratePerPageFailuresJoinAndPreserveTarget(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "site")
	if err := Generate(tinyDB(t), dir, nil); err != nil {
		t.Fatal(err)
	}
	before := mustRead(t, filepath.Join(dir, "index.html"))

	orig := createFile
	defer func() { createFile = orig }()
	var attempted []string
	createFile = func(path string) (io.WriteCloser, error) {
		base := filepath.Base(path)
		attempted = append(attempted, base)
		if base == "classes.html" || base == "routines.html" {
			return nil, fmt.Errorf("injected failure for %s", base)
		}
		return orig(path)
	}

	err := Generate(tinyDB(t), dir, nil)
	if err == nil {
		t.Fatal("Generate succeeded with two failing pages")
	}
	for _, want := range []string{"classes.html", "routines.html"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error does not name %s: %v", want, err)
		}
	}
	// The failure on classes.html did not stop the later pages.
	joined := strings.Join(attempted, " ")
	for _, want := range []string{"templates.html", "files.html"} {
		if !strings.Contains(joined, want) {
			t.Errorf("%s was never attempted after the first failure", want)
		}
	}
	if after := mustRead(t, filepath.Join(dir, "index.html")); after != before {
		t.Error("failed generation modified the installed site")
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "site" {
			t.Errorf("failed generation left staging debris: %s", e.Name())
		}
	}
}
