package html_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/tools/html"
)

func TestGenerate(t *testing.T) {
	src := `
template <class T> class Holder {
public:
    T get() const { return v; }
private:
    T v;
};
class Base { public: virtual void f() { } };
class Derived : public Base { public: void f() { g(); } void g() { } };
int main() {
    Holder<int> h;
    Derived d;
    d.f();
    return h.get();
}
`
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("diagnostic: %v", d)
	}
	db := ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))

	dir := t.TempDir()
	loader := func(name string) (string, bool) {
		if name == "main.cpp" {
			return src, true
		}
		return "", false
	}
	if err := html.Generate(db, dir, loader); err != nil {
		t.Fatal(err)
	}

	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return string(b)
	}

	index := read("index.html")
	if !strings.Contains(index, "Classes") || !strings.Contains(index, "<a href=\"classes.html\">") {
		t.Error("index missing navigation or counts")
	}

	classes := read("classes.html")
	for _, want := range []string{
		"Holder&lt;int&gt;", "Derived",
		"bases: pub", "derived:",
		"instantiated from template",
	} {
		if !strings.Contains(classes, want) {
			t.Errorf("classes.html missing %q", want)
		}
	}

	routines := read("routines.html")
	if !strings.Contains(routines, "Derived::f()") {
		t.Error("routines.html missing Derived::f")
	}
	if !strings.Contains(routines, "calls:") || !strings.Contains(routines, "called by:") {
		t.Error("routines.html missing call links")
	}

	templates := read("templates.html")
	if !strings.Contains(templates, "Holder") || !strings.Contains(templates, "class instantiations:") {
		t.Error("templates.html missing instantiation links")
	}

	files := read("files.html")
	if !strings.Contains(files, "main.cpp") {
		t.Error("files.html missing main.cpp")
	}

	// Source page exists with line anchors.
	var srcPage string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "src_main_cpp") {
			srcPage = e.Name()
		}
	}
	if srcPage == "" {
		t.Fatal("source page not generated")
	}
	page := read(srcPage)
	if !strings.Contains(page, `id="L3"`) {
		t.Error("source page missing line anchors")
	}
	// Escaping: template angle brackets must be escaped everywhere.
	if strings.Contains(classes, "<int>") {
		t.Error("unescaped angle brackets in HTML")
	}
}
