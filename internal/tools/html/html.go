// Package html implements the pdbhtml utility of Table 2: it creates
// web-based documentation that enables navigation of the code via HTML
// links — an index page plus pages for classes, routines, templates,
// files, and namespaces, all cross-linked by PDB item anchors.
package html

import (
	"bytes"
	"errors"
	"fmt"
	"html"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pdt/internal/ductape"
)

// SourceLoader optionally resolves a file name to its source text so
// pages can link into syntax-anchored source listings. Return ok=false
// when the source is unavailable.
type SourceLoader func(name string) (content string, ok bool)

// DiskLoader loads sources from the file system.
func DiskLoader(name string) (string, bool) {
	b, err := os.ReadFile(name)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// createFile is the page-creation seam; tests override it to inject
// per-page failures.
var createFile = func(path string) (io.WriteCloser, error) { return os.Create(path) }

// Generate writes the documentation tree for dir: index.html,
// classes.html, routines.html, templates.html, files.html, and one
// source page per file the loader can resolve.
//
// The site is generated crash-consistently: every page is written
// into a staging directory next to dir, and only a fully successful
// generation is renamed into place (the previous site, if any, is
// swapped out whole). A failure — or a killed run — therefore never
// leaves dir holding a partially written or partially updated site
// with no indication which pages are stale. Page errors don't stop
// the tree: every page is attempted and the returned error joins one
// entry per failed page.
func Generate(db *ductape.PDB, dir string, load SourceLoader) error {
	dir = filepath.Clean(dir)
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	stage, err := os.MkdirTemp(parent, "."+filepath.Base(dir)+".stage-")
	if err != nil {
		return err
	}
	installed := false
	defer func() {
		if !installed {
			os.RemoveAll(stage)
		}
	}()

	var errs []error
	writePage := func(name string, gen func(io.Writer)) {
		f, err := createFile(filepath.Join(stage, name))
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
			return
		}
		gen(f)
		if err := f.Close(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	for _, p := range sitePages(db, load) {
		writePage(p.name, p.gen)
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	return install(stage, dir, &installed)
}

// sitePage is one page of the documentation site: its file name and
// the generator that renders it.
type sitePage struct {
	name string
	gen  func(io.Writer)
}

// sitePages enumerates every page Generate writes, in generation
// order: the five fixed pages plus one source page per file the loader
// resolves. Page and PageNames serve the same list one page at a time,
// so a page fetched individually (the pdbd /v1/html endpoint) is
// byte-identical to the file Generate writes.
func sitePages(db *ductape.PDB, load SourceLoader) []sitePage {
	pages := []sitePage{
		{"index.html", func(w io.Writer) { writeIndex(w, db) }},
		{"classes.html", func(w io.Writer) { writeClasses(w, db) }},
		{"routines.html", func(w io.Writer) { writeRoutines(w, db) }},
		{"templates.html", func(w io.Writer) { writeTemplates(w, db) }},
		{"files.html", func(w io.Writer) { writeFiles(w, db, load) }},
	}
	if load != nil {
		for _, sf := range db.Files() {
			content, ok := load(sf.Name())
			if !ok {
				continue
			}
			sf, content := sf, content
			pages = append(pages, sitePage{sourcePage(sf), func(w io.Writer) { writeSource(w, sf, content) }})
		}
	}
	return pages
}

// PageNames lists the name of every page Generate would write for db,
// in generation order.
func PageNames(db *ductape.PDB, load SourceLoader) []string {
	pages := sitePages(db, load)
	names := make([]string, len(pages))
	for i, p := range pages {
		names[i] = p.name
	}
	return names
}

// Page renders one named page of the documentation site into memory,
// byte-identical to the file Generate writes under the same name.
// ok is false for a name Generate would not produce.
func Page(db *ductape.PDB, name string, load SourceLoader) (content []byte, ok bool) {
	for _, p := range sitePages(db, load) {
		if p.name == name {
			var buf bytes.Buffer
			p.gen(&buf)
			return buf.Bytes(), true
		}
	}
	return nil, false
}

// install swaps the fully generated staging directory into place: the
// previous site (if any) is moved aside, the staging tree renamed to
// dir, and the old site removed. The target is never observable in a
// half-written state — at worst a crash between the two renames
// leaves the site absent for one swap, with the old tree intact under
// its aside name.
func install(stage, dir string, installed *bool) error {
	var aside string
	if _, err := os.Lstat(dir); err == nil {
		aside = stage + ".old"
		if err := os.Rename(dir, aside); err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if err := os.Rename(stage, dir); err != nil {
		if aside != "" {
			os.Rename(aside, dir) // best effort: put the old site back
		}
		return err
	}
	*installed = true
	if aside != "" {
		if err := os.RemoveAll(aside); err != nil {
			return err
		}
	}
	return nil
}

func head(w io.Writer, title string) {
	fmt.Fprintf(w, "<!DOCTYPE html>\n<html><head><title>%s</title>\n", html.EscapeString(title))
	fmt.Fprint(w, `<style>
body { font-family: sans-serif; margin: 2em; }
code, pre { font-family: monospace; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
.nav a { margin-right: 1em; }
.access-pub { color: #060; } .access-prot { color: #850; } .access-priv { color: #a00; }
</style></head><body>
`)
	fmt.Fprintf(w, "<div class=\"nav\"><a href=\"index.html\">index</a>"+
		"<a href=\"classes.html\">classes</a><a href=\"routines.html\">routines</a>"+
		"<a href=\"templates.html\">templates</a><a href=\"files.html\">files</a></div>\n")
	fmt.Fprintf(w, "<h1>%s</h1>\n", html.EscapeString(title))
}

func foot(w io.Writer) {
	fmt.Fprint(w, "<hr><small>generated by pdbhtml (Program Database Toolkit)</small></body></html>\n")
}

func classAnchor(c *ductape.Class) string     { return fmt.Sprintf("cl%d", c.ID()) }
func routineAnchor(r *ductape.Routine) string { return fmt.Sprintf("ro%d", r.ID()) }
func templAnchor(t *ductape.Template) string  { return fmt.Sprintf("te%d", t.ID()) }

func classLink(c *ductape.Class) string {
	if c == nil {
		return "?"
	}
	return fmt.Sprintf(`<a href="classes.html#%s">%s</a>`, classAnchor(c), html.EscapeString(c.FullName()))
}

func routineLink(r *ductape.Routine) string {
	if r == nil {
		return "?"
	}
	return fmt.Sprintf(`<a href="routines.html#%s">%s</a>`, routineAnchor(r), html.EscapeString(r.FullName()))
}

func templLink(t *ductape.Template) string {
	if t == nil {
		return "?"
	}
	return fmt.Sprintf(`<a href="templates.html#%s">%s</a>`, templAnchor(t), html.EscapeString(t.Name()))
}

func sourcePage(f *ductape.File) string {
	name := strings.NewReplacer("/", "_", "\\", "_", ".", "_").Replace(f.Name())
	return "src_" + name + ".html"
}

func locLink(l ductape.Location) string {
	if !l.Valid() {
		return ""
	}
	return fmt.Sprintf(`<a href="%s#L%d">%s:%d</a>`, sourcePage(l.File),
		l.Line, html.EscapeString(l.File.Name()), l.Line)
}

func writeIndex(w io.Writer, db *ductape.PDB) {
	head(w, "Program Database")
	fmt.Fprint(w, "<table><tr><th>Item kind</th><th>Count</th></tr>\n")
	rows := []struct {
		name string
		n    int
	}{
		{"Source files", len(db.Files())},
		{"Classes", len(db.Classes())},
		{"Routines", len(db.Routines())},
		{"Templates", len(db.Templates())},
		{"Types", len(db.Types())},
		{"Namespaces", len(db.Namespaces())},
		{"Macros", len(db.Macros())},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td></tr>\n", r.name, r.n)
	}
	fmt.Fprint(w, "</table>\n")
	foot(w)
}

func writeClasses(w io.Writer, db *ductape.PDB) {
	head(w, "Classes")
	for _, c := range db.Classes() {
		fmt.Fprintf(w, `<h2 id="%s">%s %s</h2>`+"\n", classAnchor(c), c.Kind(),
			html.EscapeString(c.FullName()))
		if l := locLink(c.Location()); l != "" {
			fmt.Fprintf(w, "<p>defined at %s</p>\n", l)
		}
		if t := c.Template(); t != nil {
			fmt.Fprintf(w, "<p>instantiated from template %s</p>\n", templLink(t))
		}
		if len(c.BaseClasses()) > 0 {
			fmt.Fprint(w, "<p>bases: ")
			for i, b := range c.BaseClasses() {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprintf(w, "%s %s", b.Access, classLink(b.Class))
			}
			fmt.Fprintln(w, "</p>")
		}
		if len(c.DerivedClasses()) > 0 {
			fmt.Fprint(w, "<p>derived: ")
			for i, d := range c.DerivedClasses() {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprint(w, classLink(d))
			}
			fmt.Fprintln(w, "</p>")
		}
		if len(c.DataMembers()) > 0 {
			fmt.Fprint(w, "<table><tr><th>member</th><th>type</th><th>access</th></tr>\n")
			for _, m := range c.DataMembers() {
				tn := "?"
				if m.Type != nil {
					tn = m.Type.Name()
				}
				fmt.Fprintf(w, `<tr><td>%s</td><td><code>%s</code></td><td class="access-%s">%s</td></tr>`+"\n",
					html.EscapeString(m.Name), html.EscapeString(tn), m.Access, m.Access)
			}
			fmt.Fprint(w, "</table>\n")
		}
		if len(c.Functions()) > 0 {
			fmt.Fprint(w, "<ul>\n")
			for _, r := range c.Functions() {
				fmt.Fprintf(w, "<li>%s</li>\n", routineLink(r))
			}
			fmt.Fprint(w, "</ul>\n")
		}
	}
	foot(w)
}

func writeRoutines(w io.Writer, db *ductape.PDB) {
	head(w, "Routines")
	for _, r := range db.Routines() {
		fmt.Fprintf(w, `<h2 id="%s">%s</h2>`+"\n", routineAnchor(r), html.EscapeString(r.FullName()))
		if l := locLink(r.Location()); l != "" {
			fmt.Fprintf(w, "<p>at %s</p>\n", l)
		}
		fmt.Fprintf(w, "<p>kind=%s access=%s virtual=%s", r.Kind(), r.Access(), r.Virtuality())
		if sig := r.Signature(); sig != nil {
			fmt.Fprintf(w, " signature=<code>%s</code>", html.EscapeString(sig.Name()))
		}
		fmt.Fprintln(w, "</p>")
		if t := r.Template(); t != nil {
			fmt.Fprintf(w, "<p>instantiated from %s</p>\n", templLink(t))
		}
		if len(r.Callees()) > 0 {
			fmt.Fprint(w, "<p>calls: ")
			for i, cs := range r.Callees() {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprint(w, routineLink(cs.Call()))
				if cs.IsVirtual() {
					fmt.Fprint(w, " <em>(virtual)</em>")
				}
			}
			fmt.Fprintln(w, "</p>")
		}
		if len(r.Callers()) > 0 {
			fmt.Fprint(w, "<p>called by: ")
			for i, cr := range r.Callers() {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprint(w, routineLink(cr))
			}
			fmt.Fprintln(w, "</p>")
		}
	}
	foot(w)
}

func writeTemplates(w io.Writer, db *ductape.PDB) {
	head(w, "Templates")
	for _, t := range db.Templates() {
		fmt.Fprintf(w, `<h2 id="%s">%s <small>(%s)</small></h2>`+"\n",
			templAnchor(t), html.EscapeString(t.Name()), t.Kind())
		if l := locLink(t.Location()); l != "" {
			fmt.Fprintf(w, "<p>declared at %s</p>\n", l)
		}
		if t.Text() != "" {
			fmt.Fprintf(w, "<pre>%s</pre>\n", html.EscapeString(t.Text()))
		}
		if insts := t.InstantiatedClasses(); len(insts) > 0 {
			fmt.Fprint(w, "<p>class instantiations: ")
			for i, c := range insts {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprint(w, classLink(c))
			}
			fmt.Fprintln(w, "</p>")
		}
		if insts := t.InstantiatedRoutines(); len(insts) > 0 {
			fmt.Fprint(w, "<p>routine instantiations: ")
			for i, r := range insts {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprint(w, routineLink(r))
			}
			fmt.Fprintln(w, "</p>")
		}
	}
	foot(w)
}

func writeFiles(w io.Writer, db *ductape.PDB, load SourceLoader) {
	head(w, "Source Files")
	fmt.Fprint(w, "<ul>\n")
	for _, f := range db.Files() {
		name := html.EscapeString(f.Name())
		if load != nil {
			if _, ok := load(f.Name()); ok {
				name = fmt.Sprintf(`<a href="%s">%s</a>`, sourcePage(f), name)
			}
		}
		fmt.Fprintf(w, "<li>%s", name)
		if len(f.Includes()) > 0 {
			fmt.Fprint(w, "<ul>")
			for _, inc := range f.Includes() {
				fmt.Fprintf(w, "<li>includes %s</li>", html.EscapeString(inc.Name()))
			}
			fmt.Fprint(w, "</ul>")
		}
		fmt.Fprintln(w, "</li>")
	}
	fmt.Fprint(w, "</ul>\n")
	foot(w)
}

func writeSource(w io.Writer, f *ductape.File, content string) {
	head(w, f.Name())
	fmt.Fprint(w, "<pre>\n")
	for i, line := range strings.Split(content, "\n") {
		fmt.Fprintf(w, `<span id="L%d">%4d  %s</span>`+"\n", i+1, i+1, html.EscapeString(line))
	}
	fmt.Fprint(w, "</pre>\n")
	foot(w)
}
