package sema

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// collectDecls walks a declaration list, building IL entities.
func (s *Sema) collectDecls(decls []ast.Decl, access ast.Access) {
	for _, d := range decls {
		s.collectDecl(d, access, false)
	}
}

func (s *Sema) collectDecl(d ast.Decl, access ast.Access, friend bool) {
	switch d := d.(type) {
	case *ast.NamespaceDecl:
		s.collectNamespace(d)
	case *ast.UsingDirective:
		if ns := s.lookupNamespace(d.Namespace); ns != nil {
			s.usingNS = append(s.usingNS, ns)
		}
	case *ast.UsingDecl:
		// Using-declarations are recorded but need no lowering in the
		// subset: lookups already search enclosing scopes.
	case *ast.LinkageSpec:
		for _, inner := range d.Decls {
			s.collectLinkageDecl(inner, d.Lang)
		}
	case *ast.ClassDecl:
		s.collectClass(d, access, friend)
	case *ast.EnumDecl:
		s.collectEnum(d, access)
	case *ast.TypedefDecl:
		s.collectTypedef(d, access)
	case *ast.VarDecl:
		s.collectVar(d, access)
	case *ast.DeclGroup:
		for _, inner := range d.Decls {
			s.collectDecl(inner, access, friend)
		}
	case *ast.FunctionDecl:
		s.collectFunction(d, access, "C++", friend)
	case *ast.ExplicitInstantiation:
		s.collectExplicitInstantiation(d)
	case *ast.BadDecl:
		// already diagnosed by the parser
	}
}

func (s *Sema) collectLinkageDecl(d ast.Decl, lang string) {
	if fd, ok := d.(*ast.FunctionDecl); ok {
		s.collectFunction(fd, ast.NoAccess, lang, false)
		return
	}
	s.collectDecl(d, ast.NoAccess, false)
}

func (s *Sema) collectNamespace(d *ast.NamespaceDecl) {
	parent := s.currentNS()
	if d.Alias != nil {
		if target := s.lookupNamespace(*d.Alias); target != nil {
			parent.Aliases[d.Name] = target
		} else {
			s.errorf(d.NameLoc, "unknown namespace %s in alias", d.Alias.String())
		}
		return
	}
	var ns *il.Namespace
	for _, existing := range parent.Namespaces {
		if existing.Name == d.Name {
			ns = existing // reopened namespace
			break
		}
	}
	if ns == nil {
		ns = &il.Namespace{Name: d.Name, Parent: parent, Loc: d.NameLoc,
			Aliases: map[string]*il.Namespace{}}
		parent.Namespaces = append(parent.Namespaces, ns)
	}
	s.nsStack = append(s.nsStack, ns)
	s.collectDecls(d.Decls, ast.NoAccess)
	s.nsStack = s.nsStack[:len(s.nsStack)-1]
}

// collectClass lowers a class declaration: plain classes are resolved
// fully; templated classes are registered as il.Template entities and
// resolved only at instantiation; explicit specializations are resolved
// fully and registered with their template.
func (s *Sema) collectClass(d *ast.ClassDecl, access ast.Access, friend bool) {
	if friend && !d.IsDefinition {
		// "friend class X;" — record on the enclosing class only.
		if c := s.currentClass(); c != nil {
			c.Friends = append(c.Friends, il.Friend{Name: d.Name, Loc: d.NameLoc})
		}
		return
	}
	switch {
	case d.Template != nil && !d.Template.IsSpecialization():
		s.collectClassTemplate(d, access)
	case d.Template != nil && d.Template.IsSpecialization():
		s.collectClassSpecialization(d, access)
	default:
		s.collectPlainClass(d, access)
	}
}

// collectPlainClass resolves a non-template class definition (or
// forward declaration) immediately.
func (s *Sema) collectPlainClass(d *ast.ClassDecl, access ast.Access) *il.Class {
	scope := s.currentScope()
	// Merge with a forward declaration if present.
	c := s.findClassInScope(scope, d.Name)
	if c == nil {
		c = &il.Class{Name: d.Name, Kind: d.Kind, Parent: scope,
			Access: access, Loc: d.NameLoc, Decl: d}
		s.registerClass(c)
	}
	c.Header = d.Header
	if !d.IsDefinition {
		return c
	}
	if c.Complete {
		s.errorf(d.NameLoc, "redefinition of class %s", d.Name)
		return c
	}
	c.Body = d.Body
	c.Complete = true
	c.Decl = d
	s.resolveClassBody(c, d, nil)
	return c
}

// registerClass attaches c to its scope and the flat index.
func (s *Sema) registerClass(c *il.Class) {
	switch p := c.Parent.(type) {
	case *il.Namespace:
		p.Classes = append(p.Classes, c)
	case *il.Class:
		p.Nested = append(p.Nested, c)
	}
	s.unit.AllClasses = append(s.unit.AllClasses, c)
}

func (s *Sema) findClassInScope(scope il.Scope, name string) *il.Class {
	switch p := scope.(type) {
	case *il.Namespace:
		for _, c := range p.Classes {
			if c.Name == name {
				return c
			}
		}
	case *il.Class:
		for _, c := range p.Nested {
			if c.Name == name {
				return c
			}
		}
	}
	return nil
}

// collectClassTemplate registers a class template; its body is kept as
// AST and instantiated on demand. Member-function templates get their
// own il.Template entities (PDB tkind memfunc / statmem), as in the
// paper's Figure 3 (te#566 push).
func (s *Sema) collectClassTemplate(d *ast.ClassDecl, access ast.Access) {
	scope := s.currentScope()
	t := &il.Template{
		Name: d.Name, Kind: il.TemplClass, Parent: scope, Access: access,
		Loc: d.NameLoc, Header: d.Header, Body: d.Body,
		Text: d.Template.Text, Params: d.Template.Params, ClassDecl: d,
	}
	s.registerTemplate(t)
	s.unit.SuppLocs[t] = source.Span{Begin: d.Header.Begin, End: d.Body.End}

	// Create member-function template entities for every function
	// member declared in the class body.
	for _, m := range d.Members {
		fd, ok := m.Decl.(*ast.FunctionDecl)
		if !ok || m.Friend {
			continue
		}
		kind := il.TemplMemFunc
		if fd.Storage == ast.Static {
			kind = il.TemplStatMem
		}
		mt := &il.Template{
			Name: fd.Name.Terminal().Name, Kind: kind, Parent: scope,
			Access: m.Access, Loc: fd.Name.Terminal().Loc,
			Header: fd.Header, Body: fd.Body2,
			Params: d.Template.Params, FuncDecl: fd,
		}
		s.registerTemplate(mt)
		s.memberTemplate(t, mt.Name, mt)
	}
}

// memberTemplates maps (class template, member name) → member template.
// Stored lazily in a side map.
var _ = 0 // (placeholder to keep section comment attached)

func (s *Sema) memberTemplate(classT *il.Template, name string, mt *il.Template) {
	if s.memberTemplates == nil {
		s.memberTemplates = map[*il.Template]map[string]*il.Template{}
	}
	m := s.memberTemplates[classT]
	if m == nil {
		m = map[string]*il.Template{}
		s.memberTemplates[classT] = m
	}
	m[name] = mt
}

func (s *Sema) lookupMemberTemplate(classT *il.Template, name string) *il.Template {
	if m, ok := s.memberTemplates[classT]; ok {
		return m[name]
	}
	return nil
}

func (s *Sema) registerTemplate(t *il.Template) {
	switch p := t.Parent.(type) {
	case *il.Namespace:
		p.Templates = append(p.Templates, t)
	case *il.Class:
		p.Templates = append(p.Templates, t)
	}
	s.unit.AllTemplates = append(s.unit.AllTemplates, t)
}

// collectClassSpecialization resolves "template<> class Stack<int>"
// fully and registers it both as a class and with its template.
func (s *Sema) collectClassSpecialization(d *ast.ClassDecl, access ast.Access) {
	tmpl := s.lookupTemplateByName(d.Name)
	if tmpl == nil {
		s.errorf(d.NameLoc, "specialization of unknown template %s", d.Name)
		return
	}
	args := s.resolveTemplateArgs(d.SpecArgs, nil)
	name := instantiatedName(d.Name, args)
	c := &il.Class{Name: name, Kind: d.Kind, Parent: tmpl.Parent,
		Access: access, Loc: d.NameLoc, Header: d.Header, Body: d.Body,
		Complete: d.IsDefinition, IsSpecialization: true, Decl: d,
		Args: args,
		// Origin intentionally recorded (the paper's proposed front-end
		// modification); the analyzer's default scan mode cannot see it.
		Origin: tmpl,
	}
	s.registerClass(c)
	tmpl.Specs = append(tmpl.Specs, &il.TemplateSpec{Args: args, Class: c})
	s.classInsts[qualifiedKey(tmpl, name)] = c
	if d.IsDefinition {
		s.resolveClassBody(c, d, nil)
	}
}

// collectEnum lowers an enumeration, evaluating enumerator values.
func (s *Sema) collectEnum(d *ast.EnumDecl, access ast.Access) {
	scope := s.currentScope()
	e := &il.Enum{Name: d.Name, Parent: scope, Access: access, Loc: d.NameLoc}
	next := int64(0)
	for _, en := range d.Enumerators {
		if en.Value != nil {
			if v, ok := s.evalConst(en.Value, nil); ok {
				next = v
			} else {
				s.errorf(en.Loc, "enumerator %s value is not a constant expression", en.Name)
			}
		}
		e.Values = append(e.Values, il.EnumValue{Name: en.Name, Value: next, Loc: en.Loc})
		s.enumConsts[en.Name] = next
		next++
	}
	switch p := scope.(type) {
	case *il.Namespace:
		p.Enums = append(p.Enums, e)
	case *il.Class:
		p.Enums = append(p.Enums, e)
	}
	s.unit.AllEnums = append(s.unit.AllEnums, e)
}

func (s *Sema) collectTypedef(d *ast.TypedefDecl, access ast.Access) {
	scope := s.currentScope()
	ty := s.resolveType(d.Type, nil)
	td := &il.Typedef{Name: d.Name, Type: ty, Parent: scope, Access: access, Loc: d.NameLoc}
	switch p := scope.(type) {
	case *il.Namespace:
		p.Typedefs = append(p.Typedefs, td)
	case *il.Class:
		p.Typedefs = append(p.Typedefs, td)
	}
	s.unit.AllTypedefs = append(s.unit.AllTypedefs, td)
}

func (s *Sema) collectVar(d *ast.VarDecl, access ast.Access) {
	if d.Name == "" {
		return
	}
	// Out-of-line static member definition "C::count".
	if strings.Contains(d.Name, "::") {
		s.attachStaticMemberDef(d)
		return
	}
	scope := s.currentScope()
	ty := s.resolveType(d.Type, nil)
	v := &il.Var{Name: d.Name, Type: ty, Loc: d.NameLoc, Access: access,
		Storage: d.Storage, Init: d.Init, Kind: "var"}
	switch p := scope.(type) {
	case *il.Namespace:
		p.Vars = append(p.Vars, v)
	case *il.Class:
		v.Class = p
		p.Members = append(p.Members, v)
	}
	s.unit.AllVars = append(s.unit.AllVars, v)
}

func (s *Sema) attachStaticMemberDef(d *ast.VarDecl) {
	parts := strings.Split(d.Name, "::")
	clsName := strings.Join(parts[:len(parts)-1], "::")
	member := parts[len(parts)-1]
	if c := s.unit.LookupClass(clsName); c != nil {
		if v := c.FindMember(member); v != nil {
			v.Init = d.Init
			return
		}
	}
	// Template static member definitions attach at instantiation time.
}

// collectExplicitInstantiation handles "template class Stack<int>;" by
// instantiating the class and, per the standard, all of its members.
func (s *Sema) collectExplicitInstantiation(d *ast.ExplicitInstantiation) {
	nt, ok := d.Type.(*ast.NamedType)
	if !ok {
		s.errorf(d.Pos.Begin, "explicit instantiation requires a template-id")
		return
	}
	ty := s.resolveType(nt, nil)
	cls := ty.Unqualified()
	if cls.Kind != il.TClass || cls.Class == nil {
		s.errorf(d.Pos.Begin, "explicit instantiation of non-class %s", nt.Name.String())
		return
	}
	// Explicit instantiation forces every member.
	for _, m := range cls.Class.Methods {
		s.useRoutine(m)
	}
	s.drainPending()
}
