package sema

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// bodyCtx is the environment for analyzing one routine body.
type bodyCtx struct {
	s     *Sema
	r     *il.Routine
	class *il.Class
	b     bindings
	// scopes holds local variable types, innermost last.
	scopes []map[string]*il.Type
	// objs tracks class-typed locals per scope for destructor-call
	// extraction at scope exit (the paper's "lifetime" processing).
	objs [][]*il.Class
}

// analyzeBody walks a routine's body, resolving types and recording
// static call sites (PDB "rcall"), including constructor and destructor
// calls which the EDG IL does not represent as ordinary calls (§3.1).
func (s *Sema) analyzeBody(r *il.Routine) {
	if r.Decl == nil || r.Decl.Body == nil {
		return
	}
	// Re-establish the lexical context of the routine.
	savedNS, savedClasses := s.nsStack, s.classStack
	defer func() { s.nsStack, s.classStack = savedNS, savedClasses }()
	s.nsStack = nsChainOf(s.unit.Global, r)
	if r.Class != nil {
		s.classStack = []*il.Class{r.Class}
	} else {
		s.classStack = nil
	}

	ctx := &bodyCtx{s: s, r: r, class: r.Class, b: r.Bindings}
	ctx.push()
	for _, p := range r.Params {
		ctx.declare(p.Name, p.Type)
	}
	// Constructor initializers: member/base construction calls.
	for _, init := range r.Decl.Inits {
		var argTypes []*il.Type
		for _, a := range init.Args {
			argTypes = append(argTypes, ctx.typeOf(a))
		}
		ctx.recordInitCall(init, argTypes)
	}
	ctx.walkStmt(r.Decl.Body)
	ctx.pop(r.BodySpan.End)
}

// nsChainOf rebuilds the namespace stack (outermost first) enclosing r.
func nsChainOf(global *il.Namespace, r *il.Routine) []*il.Namespace {
	ns := r.Namespace
	if ns == nil && r.Class != nil {
		ns = r.Class.ScopeNamespace()
	}
	if ns == nil {
		return []*il.Namespace{global}
	}
	var chain []*il.Namespace
	for n := ns; n != nil; n = n.Parent {
		chain = append([]*il.Namespace{n}, chain...)
	}
	if len(chain) == 0 || chain[0] != global {
		chain = append([]*il.Namespace{global}, chain...)
	}
	return chain
}

func (c *bodyCtx) push() {
	c.scopes = append(c.scopes, map[string]*il.Type{})
	c.objs = append(c.objs, nil)
}

// pop closes a scope, recording destructor calls for the class-typed
// locals it owned (in reverse declaration order) at the scope-end
// location.
func (c *bodyCtx) pop(end source.Loc) {
	top := c.objs[len(c.objs)-1]
	for i := len(top) - 1; i >= 0; i-- {
		c.recordDtor(top[i], end)
	}
	c.scopes = c.scopes[:len(c.scopes)-1]
	c.objs = c.objs[:len(c.objs)-1]
}

func (c *bodyCtx) declare(name string, t *il.Type) {
	if name != "" {
		c.scopes[len(c.scopes)-1][name] = t
	}
}

func (c *bodyCtx) lookupLocal(name string) *il.Type {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t
		}
	}
	return nil
}

func (c *bodyCtx) trackObj(t *il.Type) {
	u := t.Unqualified()
	if u.Kind == il.TClass && u.Class != nil {
		c.objs[len(c.objs)-1] = append(c.objs[len(c.objs)-1], u.Class)
	}
}

// record appends a call site and marks the callee used.
func (c *bodyCtx) record(callee *il.Routine, virtual bool, loc source.Loc) {
	if callee == nil {
		return
	}
	c.r.Calls = append(c.r.Calls, il.CallSite{Callee: callee, Virtual: virtual, Loc: loc})
	c.s.useRoutine(callee)
}

// recordCtor resolves and records a constructor call on cls.
func (c *bodyCtx) recordCtor(cls *il.Class, argTypes []*il.Type, loc source.Loc) {
	if cls == nil {
		return
	}
	var ctors []*il.Routine
	for _, m := range cls.Methods {
		if m.Kind == ast.Constructor {
			ctors = append(ctors, m)
		}
	}
	if callee := pickOverload(ctors, argTypes); callee != nil {
		c.record(callee, false, loc)
	}
}

// recordDtor resolves and records a destructor call on cls.
func (c *bodyCtx) recordDtor(cls *il.Class, loc source.Loc) {
	if cls == nil {
		return
	}
	for _, m := range cls.Methods {
		if m.Kind == ast.Destructor {
			c.record(m, m.Virtual, loc)
			return
		}
	}
}

// recordInitCall handles one constructor-initializer entry: a data
// member of class type or a base class.
func (c *bodyCtx) recordInitCall(init ast.CtorInit, argTypes []*il.Type) {
	if c.class == nil {
		return
	}
	name := init.Name.Terminal().Name
	if m := c.class.FindMember(name); m != nil {
		u := m.Type.Unqualified()
		if u.Kind == il.TClass {
			c.recordCtor(u.Class, argTypes, init.Name.Loc())
		}
		return
	}
	for _, b := range c.class.Bases {
		if b.Class != nil && (b.Class.Name == name || b.Class.BaseName() == name) {
			c.recordCtor(b.Class, argTypes, init.Name.Loc())
			return
		}
	}
}

// --- statements ----------------------------------------------------------

// resolveT resolves a syntactic type under the body's bindings and
// records it in the unit's expression-type table for the interpreter.
func (c *bodyCtx) resolveT(te ast.TypeExpr) *il.Type {
	t := c.s.resolveType(te, c.b)
	c.s.unit.RecordExprType(c.r, te, t)
	return t
}

func (c *bodyCtx) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.CompoundStmt:
		c.push()
		for _, inner := range st.Stmts {
			c.walkStmt(inner)
		}
		c.pop(st.Pos.End)
	case *ast.DeclStmt:
		for _, d := range st.Decls {
			c.walkLocalDecl(d)
		}
	case *ast.ExprStmt:
		c.typeOf(st.E)
	case *ast.EmptyStmt:
	case *ast.IfStmt:
		c.typeOf(st.Cond)
		c.walkStmt(st.Then)
		c.walkStmt(st.Else)
	case *ast.WhileStmt:
		c.typeOf(st.Cond)
		c.walkStmt(st.Body)
	case *ast.DoStmt:
		c.walkStmt(st.Body)
		c.typeOf(st.Cond)
	case *ast.ForStmt:
		c.push()
		c.walkStmt(st.Init)
		if st.Cond != nil {
			c.typeOf(st.Cond)
		}
		if st.Post != nil {
			c.typeOf(st.Post)
		}
		c.walkStmt(st.Body)
		c.pop(st.Pos.End)
	case *ast.ReturnStmt:
		if st.E != nil {
			c.typeOf(st.E)
		}
	case *ast.BreakStmt, *ast.ContinueStmt:
	case *ast.SwitchStmt:
		c.typeOf(st.Cond)
		for _, cs := range st.Cases {
			c.push()
			for _, inner := range cs.Stmts {
				c.walkStmt(inner)
			}
			c.pop(cs.Pos.End)
		}
	case *ast.TryStmt:
		c.walkStmt(st.Body)
		for _, h := range st.Handlers {
			c.push()
			if h.Param != nil {
				c.declare(h.Param.Name, c.resolveT(h.Param.Type))
			}
			c.walkStmt(h.Body)
			c.pop(h.Pos.End)
		}
	}
}

func (c *bodyCtx) walkLocalDecl(d ast.Decl) {
	switch d := d.(type) {
	case *ast.VarDecl:
		ty := c.resolveT(d.Type)
		c.declare(d.Name, ty)
		u := ty.Unqualified()
		switch {
		case d.HasCtorArgs:
			var argTypes []*il.Type
			for _, a := range d.CtorArgs {
				argTypes = append(argTypes, c.typeOf(a))
			}
			if u.Kind == il.TClass {
				c.recordCtor(u.Class, argTypes, d.NameLoc)
				c.trackObj(ty)
			}
		case d.Init != nil:
			c.typeOf(d.Init)
			if u.Kind == il.TClass {
				// Copy-initialization from a value of the same class:
				// the temporary's constructor call was recorded while
				// typing the initializer.
				c.trackObj(ty)
			}
		default:
			if u.Kind == il.TClass {
				c.recordCtor(u.Class, nil, d.NameLoc)
				c.trackObj(ty)
			}
		}
	case *ast.DeclGroup:
		for _, inner := range d.Decls {
			c.walkLocalDecl(inner)
		}
	case *ast.FunctionDecl:
		// Local function declaration (most vexing parse) — nothing to do.
	case *ast.TypedefDecl:
		// Local typedefs resolve against the enclosing scopes already.
		c.s.collectTypedef(d, ast.NoAccess)
	case *ast.ClassDecl, *ast.EnumDecl:
		c.s.collectDecl(d, ast.NoAccess, false)
	}
}

// --- expressions -----------------------------------------------------------

// typeOf computes the type of an expression, resolving calls and
// recording call sites as a side effect. Unresolvable constructs get
// TError and produce no record — the analysis is tolerant by design.
func (c *bodyCtx) typeOf(e ast.Expr) *il.Type {
	tt := c.s.unit.Types
	errT := tt.Builtin(il.TError)
	switch e := e.(type) {
	case nil:
		return errT
	case *ast.IntLit:
		return tt.Builtin(il.TInt)
	case *ast.FloatLit:
		return tt.Builtin(il.TDouble)
	case *ast.CharLit:
		return tt.Builtin(il.TChar)
	case *ast.BoolLit:
		return tt.Builtin(il.TBool)
	case *ast.StringLit:
		return tt.PtrTo(tt.ConstOf(tt.Builtin(il.TChar)))
	case *ast.ThisExpr:
		if c.class == nil {
			return errT
		}
		return tt.PtrTo(tt.ClassType(c.class))
	case *ast.ParenExpr:
		return c.typeOf(e.E)
	case *ast.NameExpr:
		return c.typeOfName(e)
	case *ast.UnaryExpr:
		return c.typeOfUnary(e)
	case *ast.BinaryExpr:
		return c.typeOfBinary(e)
	case *ast.CondExpr:
		c.typeOf(e.C)
		t := c.typeOf(e.T)
		c.typeOf(e.F)
		return t
	case *ast.CallExpr:
		return c.typeOfCall(e)
	case *ast.MemberExpr:
		return c.typeOfMember(e)
	case *ast.IndexExpr:
		base := c.typeOf(e.Base)
		c.typeOf(e.Index)
		u := base.Deref()
		switch u.Kind {
		case il.TPtr, il.TArray:
			return u.Elem
		case il.TClass:
			idxT := c.typeOf(e.Index)
			if callee := pickOverload(u.Class.FindMethods("operator[]"), []*il.Type{idxT}); callee != nil {
				c.record(callee, callee.Virtual, e.Pos.Begin)
				return callee.Ret
			}
		}
		return errT
	case *ast.CastExpr:
		ty := c.resolveT(e.Type)
		opT := c.typeOf(e.Operand)
		if e.Style == ast.FunctionalCast {
			u := ty.Unqualified()
			if u.Kind == il.TClass {
				c.recordCtor(u.Class, []*il.Type{opT}, e.Pos.Begin)
			}
		}
		return ty
	case *ast.ConstructExpr:
		ty := c.resolveT(e.Type)
		var argTypes []*il.Type
		for _, a := range e.Args {
			argTypes = append(argTypes, c.typeOf(a))
		}
		if u := ty.Unqualified(); u.Kind == il.TClass {
			c.recordCtor(u.Class, argTypes, e.Pos.Begin)
		}
		return ty
	case *ast.NewExpr:
		ty := c.resolveT(e.Type)
		if e.ArraySize != nil {
			c.typeOf(e.ArraySize)
		}
		var argTypes []*il.Type
		for _, a := range e.Args {
			argTypes = append(argTypes, c.typeOf(a))
		}
		if u := ty.Unqualified(); u.Kind == il.TClass && e.ArraySize == nil {
			c.recordCtor(u.Class, argTypes, e.Pos.Begin)
		}
		return tt.PtrTo(ty)
	case *ast.DeleteExpr:
		opT := c.typeOf(e.Operand)
		if u := opT.Deref(); u.Kind == il.TPtr {
			if elem := u.Elem.Unqualified(); elem.Kind == il.TClass {
				c.recordDtor(elem.Class, e.Pos.Begin)
			}
		}
		return tt.Builtin(il.TVoid)
	case *ast.SizeofExpr:
		if e.E != nil {
			c.typeOf(e.E)
		}
		if e.Type != nil {
			c.resolveT(e.Type)
		}
		return tt.Builtin(il.TULong)
	case *ast.ThrowExpr:
		if e.Operand != nil {
			c.typeOf(e.Operand)
		}
		return tt.Builtin(il.TVoid)
	default:
		return errT
	}
}

// typeOfName resolves a name used as a value: locals, parameters, data
// members (implicit this), enumerators, globals, then function names.
func (c *bodyCtx) typeOfName(e *ast.NameExpr) *il.Type {
	s := c.s
	tt := s.unit.Types
	name := e.Name.Terminal().Name
	if e.Name.IsSimple() {
		if t := c.lookupLocal(name); t != nil {
			return t
		}
		if c.class != nil {
			if m := c.class.FindMember(name); m != nil {
				return m.Type
			}
		}
		if c.b != nil {
			if v, ok := c.b[name]; ok && v.IsInt {
				return tt.Builtin(il.TInt)
			}
		}
		if _, ok := s.enumConsts[name]; ok {
			return tt.Builtin(il.TInt)
		}
		for _, ns := range s.nsChain() {
			for _, v := range ns.Vars {
				if v.Name == name {
					return v.Type
				}
			}
		}
		// Function designator.
		if cands := c.findRoutines(name); len(cands) > 0 {
			return cands[0].Signature
		}
		return tt.Builtin(il.TError)
	}
	// Qualified: Class::member, Enum::value, ns::var.
	if len(e.Name.Segs) >= 2 {
		owner := e.Name.Segs[len(e.Name.Segs)-2].Name
		if _, ok := s.lookupQualifiedConst(e.Name); ok {
			return tt.Builtin(il.TInt)
		}
		if cls := s.unit.LookupClass(owner); cls != nil {
			if m := cls.FindMember(name); m != nil {
				return m.Type
			}
		}
		var prefix ast.QualName
		prefix.Global = e.Name.Global
		prefix.Segs = e.Name.Segs[:len(e.Name.Segs)-1]
		if ns := s.lookupNamespace(prefix); ns != nil {
			for _, v := range ns.Vars {
				if v.Name == name {
					return v.Type
				}
			}
			for _, r := range ns.Routines {
				if r.Name == name {
					return r.Signature
				}
			}
		}
	}
	return tt.Builtin(il.TError)
}

func (c *bodyCtx) typeOfUnary(e *ast.UnaryExpr) *il.Type {
	tt := c.s.unit.Types
	opT := c.typeOf(e.Operand)
	u := opT.Deref()
	if u.Kind == il.TClass && u.Class != nil {
		// Overloaded unary operator on a class object.
		var opName string
		switch e.Op {
		case ast.PreInc, ast.PostInc:
			opName = "operator++"
		case ast.PreDec, ast.PostDec:
			opName = "operator--"
		case ast.Deref:
			opName = "operator*"
		case ast.LogNot:
			opName = "operator!"
		case ast.Neg:
			opName = "operator-"
		}
		if opName != "" {
			if callee := pickOverload(u.Class.FindMethods(opName), nil); callee != nil {
				c.record(callee, callee.Virtual, e.Pos)
				return callee.Ret
			}
		}
	}
	switch e.Op {
	case ast.LogNot:
		return tt.Builtin(il.TBool)
	case ast.Deref:
		if u.Kind == il.TPtr || u.Kind == il.TArray {
			return u.Elem
		}
		return tt.Builtin(il.TError)
	case ast.AddrOf:
		return tt.PtrTo(opT.Deref())
	default:
		return opT.Deref()
	}
}

func (c *bodyCtx) typeOfBinary(e *ast.BinaryExpr) *il.Type {
	tt := c.s.unit.Types
	lt := c.typeOf(e.L)
	rt := c.typeOf(e.R)
	lu, ru := lt.Deref(), rt.Deref()

	// Overloaded operators when either operand is of class type.
	if lu.Kind == il.TClass || ru.Kind == il.TClass {
		opName := "operator" + e.Op.String()
		if e.Op == ast.Comma {
			opName = ""
		}
		if opName != "" {
			if lu.Kind == il.TClass && lu.Class != nil {
				if callee := pickOverload(lu.Class.FindMethods(opName), []*il.Type{rt}); callee != nil {
					c.record(callee, callee.Virtual, e.Pos)
					return callee.Ret
				}
			}
			if callee := pickOverload(c.findRoutines(opName), []*il.Type{lt, rt}); callee != nil {
				c.record(callee, false, e.Pos)
				return callee.Ret
			}
		}
	}

	switch {
	case e.Op.IsAssign():
		return lt
	case e.Op == ast.Comma:
		return rt
	case e.Op == ast.LAnd || e.Op == ast.LOr ||
		e.Op == ast.EqOp || e.Op == ast.NeOp || e.Op == ast.LtOp ||
		e.Op == ast.GtOp || e.Op == ast.LeOp || e.Op == ast.GeOp:
		return tt.Builtin(il.TBool)
	default:
		// Usual arithmetic conversions, simplified.
		if lu.Kind.IsFloat() {
			return lu
		}
		if ru.Kind.IsFloat() {
			return ru
		}
		if lu.Kind == il.TPtr || lu.Kind == il.TArray {
			return lu
		}
		if ru.Kind == il.TPtr || ru.Kind == il.TArray {
			return ru
		}
		if lu.Kind.IsInteger() {
			return lu
		}
		return ru
	}
}

func (c *bodyCtx) typeOfMember(e *ast.MemberExpr) *il.Type {
	tt := c.s.unit.Types
	baseT := c.typeOf(e.Base)
	u := baseT.Deref()
	if e.Arrow {
		if u.Kind != il.TPtr {
			return tt.Builtin(il.TError)
		}
		u = u.Elem.Unqualified()
	}
	if u.Kind != il.TClass || u.Class == nil {
		return tt.Builtin(il.TError)
	}
	name := e.Name.Terminal().Name
	if m := u.Class.FindMember(name); m != nil {
		return m.Type
	}
	if ms := u.Class.FindMethods(name); len(ms) > 0 {
		return ms[0].Signature
	}
	return tt.Builtin(il.TError)
}

// typeOfCall resolves a call expression, records the call site, and
// returns the callee's return type.
func (c *bodyCtx) typeOfCall(e *ast.CallExpr) *il.Type {
	s := c.s
	tt := s.unit.Types
	var argTypes []*il.Type
	for _, a := range e.Args {
		argTypes = append(argTypes, c.typeOf(a))
	}

	switch fn := e.Fn.(type) {
	case *ast.NameExpr:
		name := fn.Name.Terminal().Name
		if fn.Name.IsSimple() || (len(fn.Name.Segs) == 1 && fn.Name.Segs[0].HasArgs) {
			// Explicit function-template arguments: f<int>(x).
			if fn.Name.Segs[0].HasArgs {
				if tmpl := c.findFuncTemplate(name); tmpl != nil {
					args := s.resolveTemplateArgs(fn.Name.Segs[0].Args, c.b)
					b := s.bindParams(tmpl.Params, args)
					callee := s.instantiateFunctionTemplate(tmpl, b, fn.Name.Loc())
					c.record(callee, false, fn.Name.Loc())
					return callee.Ret
				}
			}
			// Member functions of the enclosing class.
			if c.class != nil {
				if callee := pickOverload(c.class.FindMethods(name), argTypes); callee != nil {
					c.record(callee, callee.Virtual, fn.Name.Loc())
					return callee.Ret
				}
			}
			// Free functions.
			if callee := pickOverload(c.findRoutines(name), argTypes); callee != nil {
				c.record(callee, false, fn.Name.Loc())
				return callee.Ret
			}
			// Function templates via deduction.
			if tmpl := c.findFuncTemplate(name); tmpl != nil {
				if b := s.deduceFunctionTemplate(tmpl, argTypes); b != nil {
					callee := s.instantiateFunctionTemplate(tmpl, b, fn.Name.Loc())
					c.record(callee, false, fn.Name.Loc())
					return callee.Ret
				}
			}
			// A local variable of class type being called: operator().
			if t := c.lookupLocal(name); t != nil {
				if u := t.Deref(); u.Kind == il.TClass && u.Class != nil {
					if callee := pickOverload(u.Class.FindMethods("operator()"), argTypes); callee != nil {
						c.record(callee, callee.Virtual, fn.Name.Loc())
						return callee.Ret
					}
				}
			}
			return tt.Builtin(il.TError)
		}
		// Qualified call: Class::f(...) or ns::f(...).
		owner := fn.Name.Segs[len(fn.Name.Segs)-2]
		ownerName := owner.Name
		if owner.HasArgs {
			ownerName = instantiatedName(ownerName, s.resolveTemplateArgs(owner.Args, c.b))
		}
		if cls := s.unit.LookupClass(ownerName); cls != nil {
			if callee := pickOverload(cls.FindMethods(name), argTypes); callee != nil {
				// Explicitly qualified calls are never virtual dispatch.
				c.record(callee, false, fn.Name.Loc())
				return callee.Ret
			}
		}
		var prefix ast.QualName
		prefix.Global = fn.Name.Global
		prefix.Segs = fn.Name.Segs[:len(fn.Name.Segs)-1]
		if ns := s.lookupNamespace(prefix); ns != nil {
			var cands []*il.Routine
			for _, r := range ns.Routines {
				if r.Name == name {
					cands = append(cands, r)
				}
			}
			if callee := pickOverload(cands, argTypes); callee != nil {
				c.record(callee, false, fn.Name.Loc())
				return callee.Ret
			}
		}
		return tt.Builtin(il.TError)

	case *ast.MemberExpr:
		baseT := c.typeOf(fn.Base)
		u := baseT.Deref()
		viaPtr := false
		if fn.Arrow {
			if u.Kind == il.TPtr {
				u = u.Elem.Unqualified()
				viaPtr = true
			} else {
				return tt.Builtin(il.TError)
			}
		}
		if u.Kind != il.TClass || u.Class == nil {
			return tt.Builtin(il.TError)
		}
		name := fn.Name.Terminal().Name
		// Member function templates with explicit or deduced args.
		for _, mt := range u.Class.Templates {
			if mt.Name == name {
				var b bindings
				if fn.Name.Terminal().HasArgs {
					args := s.resolveTemplateArgs(fn.Name.Terminal().Args, c.b)
					b = s.bindParams(mt.Params, args)
				} else {
					b = s.deduceFunctionTemplate(mt, argTypes)
				}
				if b != nil {
					callee := s.instantiateMemberTemplate(u.Class, mt, b, fn.Pos)
					c.record(callee, false, fn.Pos)
					if callee != nil {
						return callee.Ret
					}
					return tt.Builtin(il.TError)
				}
			}
		}
		if callee := pickOverload(u.Class.FindMethods(name), argTypes); callee != nil {
			c.record(callee, callee.Virtual && (viaPtr || isRefType(baseT)), fn.Pos)
			return callee.Ret
		}
		return tt.Builtin(il.TError)

	default:
		// Calling the result of an arbitrary expression: operator() on
		// class values; otherwise untyped.
		fnT := c.typeOf(e.Fn)
		if u := fnT.Deref(); u.Kind == il.TClass && u.Class != nil {
			if callee := pickOverload(u.Class.FindMethods("operator()"), argTypes); callee != nil {
				c.record(callee, callee.Virtual, e.Pos.Begin)
				return callee.Ret
			}
		}
		if u := fnT.Deref(); u.Kind == il.TFunc {
			return u.Ret
		}
		return tt.Builtin(il.TError)
	}
}

func isRefType(t *il.Type) bool {
	return t.Unqualified().Kind == il.TRef
}

// findRoutines collects the free-function overload set for name across
// the namespace chain.
func (c *bodyCtx) findRoutines(name string) []*il.Routine {
	var out []*il.Routine
	for _, ns := range c.s.nsChain() {
		for _, r := range ns.Routines {
			if r.Name == name {
				out = append(out, r)
			}
		}
	}
	return out
}

// findFuncTemplate finds a free function template by name.
func (c *bodyCtx) findFuncTemplate(name string) *il.Template {
	for _, ns := range c.s.nsChain() {
		for _, t := range ns.Templates {
			if t.Name == name && t.Kind == il.TemplFunc {
				return t
			}
		}
	}
	return nil
}

// instantiateMemberTemplate instantiates a member function template of
// class cls under bindings b.
func (s *Sema) instantiateMemberTemplate(cls *il.Class, tmpl *il.Template, b bindings, loc source.Loc) *il.Routine {
	var args []il.TemplateArgValue
	for _, p := range tmpl.Params {
		args = append(args, b[p.Name])
	}
	name := instantiatedName(tmpl.Name, args)
	for _, r := range tmpl.RoutineInsts {
		if r.Name == name && r.Class == cls {
			return r
		}
	}
	// Merge enclosing class bindings with the member's own.
	merged := bindings{}
	for _, m := range cls.Methods {
		if m.Bindings != nil {
			for k, v := range m.Bindings {
				merged[k] = v
			}
			break
		}
	}
	for k, v := range b {
		merged[k] = v
	}
	r := s.buildRoutine(tmpl.FuncDecl, cls, nil, tmpl.Access, "C++", merged)
	r.Name = name
	r.IsInstantiation = true
	r.Origin = tmpl
	tmpl.RoutineInsts = append(tmpl.RoutineInsts, r)
	s.useRoutine(r)
	return r
}

// pickOverload selects the best candidate for the given argument types:
// arity feasibility first, then a simple conversion-rank score. Ties go
// to the earliest declaration, which matches the subset's needs.
func pickOverload(cands []*il.Routine, argTypes []*il.Type) *il.Routine {
	var best *il.Routine
	bestScore := -1
	for _, cand := range cands {
		minArgs := 0
		for _, p := range cand.Params {
			if p.Default == nil {
				minArgs++
			}
		}
		variadic := cand.Signature != nil && cand.Signature.Variadic
		if len(argTypes) < minArgs || (!variadic && len(argTypes) > len(cand.Params)) {
			continue
		}
		score := 0
		ok := true
		for i, at := range argTypes {
			if i >= len(cand.Params) {
				break // variadic tail
			}
			score += convRank(cand.Params[i].Type, at)
		}
		if !ok {
			continue
		}
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

// convRank scores how well an argument type matches a parameter type.
func convRank(param, arg *il.Type) int {
	if param == nil || arg == nil {
		return 0
	}
	if param == arg {
		return 4
	}
	pd, ad := param.Deref(), arg.Deref()
	if pd == ad {
		return 3
	}
	if pd.Kind == il.TClass && ad.Kind == il.TClass && ad.Class != nil && pd.Class != nil {
		if ad.Class.DerivesFrom(pd.Class) {
			return 2
		}
		return 0
	}
	if pd.Kind.IsArithmetic() && ad.Kind.IsArithmetic() {
		if pd.Kind == ad.Kind {
			return 3
		}
		return 1
	}
	if (pd.Kind == il.TPtr || pd.Kind == il.TArray) && (ad.Kind == il.TPtr || ad.Kind == il.TArray) {
		return 1
	}
	return 0
}
