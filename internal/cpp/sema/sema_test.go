package sema_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/sema"
	"pdt/internal/il"
)

// compile runs the full frontend over src (as main.cpp), with extra
// virtual files, failing on diagnostics.
func compile(t *testing.T, src string, extra map[string]string) *il.Unit {
	t.Helper()
	res := compileRes(t, src, extra, sema.Used)
	for _, d := range res.Diagnostics {
		t.Errorf("diagnostic: %v", d)
	}
	return res.Unit
}

func compileRes(t *testing.T, src string, extra map[string]string, mode sema.InstantiationMode) *core.Result {
	t.Helper()
	opts := core.Options{Mode: mode}
	fs := core.NewFileSet(opts)
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	return core.CompileSource(fs, "main.cpp", src, opts)
}

func findClass(t *testing.T, u *il.Unit, name string) *il.Class {
	t.Helper()
	if c := u.LookupClass(name); c != nil {
		return c
	}
	var names []string
	for _, c := range u.AllClasses {
		names = append(names, c.Name)
	}
	t.Fatalf("class %q not found; have %v", name, names)
	return nil
}

func findRoutine(t *testing.T, u *il.Unit, qualified string) *il.Routine {
	t.Helper()
	if r := u.LookupRoutine(qualified); r != nil {
		return r
	}
	var names []string
	for _, r := range u.AllRoutines {
		names = append(names, r.QualifiedName())
	}
	t.Fatalf("routine %q not found; have %v", qualified, names)
	return nil
}

func TestGlobalsAndFunctions(t *testing.T) {
	u := compile(t, `
int counter = 0;
double scale(double x) { return x * 2.0; }
int main() { counter = 1; scale(3.0); return 0; }
`, nil)
	if len(u.Global.Vars) != 1 || u.Global.Vars[0].Name != "counter" {
		t.Errorf("globals = %+v", u.Global.Vars)
	}
	mainR := findRoutine(t, u, "main")
	if len(mainR.Calls) != 1 || mainR.Calls[0].Callee.Name != "scale" {
		t.Errorf("main calls = %+v", mainR.Calls)
	}
}

func TestClassLayoutAndMethods(t *testing.T) {
	u := compile(t, `
class Point {
public:
    Point(int x, int y) : x_(x), y_(y) { }
    int x() const { return x_; }
    int y() const { return y_; }
    void move(int dx, int dy) { x_ += dx; y_ += dy; }
private:
    int x_, y_;
};
`, nil)
	p := findClass(t, u, "Point")
	if len(p.Methods) != 4 || len(p.Members) != 2 {
		t.Fatalf("methods=%d members=%d", len(p.Methods), len(p.Members))
	}
	if p.Methods[0].Kind != ast.Constructor {
		t.Errorf("first method kind = %v", p.Methods[0].Kind)
	}
	if p.Members[0].Access != ast.Private {
		t.Errorf("member access = %v", p.Members[0].Access)
	}
	x := findRoutine(t, u, "Point::x")
	if !x.Const || x.Ret.Kind != il.TInt {
		t.Errorf("x: const=%v ret=%v", x.Const, x.Ret)
	}
	if x.Signature.String() != "int () const" {
		t.Errorf("signature = %q", x.Signature.String())
	}
}

func TestInheritanceAndVirtualOverride(t *testing.T) {
	u := compile(t, `
class Shape {
public:
    virtual double area() const { return 0.0; }
    virtual ~Shape() { }
};
class Circle : public Shape {
public:
    Circle(double r) : r_(r) { }
    double area() const { return 3.14159 * r_ * r_; }
private:
    double r_;
};
double measure(Shape *s) { return s->area(); }
`, nil)
	circle := findClass(t, u, "Circle")
	if len(circle.Bases) != 1 || circle.Bases[0].Class.Name != "Shape" {
		t.Fatalf("bases = %+v", circle.Bases)
	}
	area := findRoutine(t, u, "Circle::area")
	if !area.Virtual {
		t.Error("Circle::area should inherit virtual")
	}
	measure := findRoutine(t, u, "measure")
	if len(measure.Calls) != 1 || !measure.Calls[0].Virtual {
		t.Errorf("measure calls = %+v", measure.Calls)
	}
	if measure.Calls[0].Callee.QualifiedName() != "Shape::area" {
		t.Errorf("static callee = %s", measure.Calls[0].Callee.QualifiedName())
	}
}

func TestOutOfLinePlainMember(t *testing.T) {
	u := compile(t, `
class Counter {
public:
    void bump();
    int value() const;
private:
    int n;
};
void Counter::bump() { n++; }
int Counter::value() const { return n; }
`, nil)
	bump := findRoutine(t, u, "Counter::bump")
	if !bump.HasBody {
		t.Error("out-of-line body not attached")
	}
	if bump.Loc.Line != 9 {
		t.Errorf("bump reported at line %d, want definition line 9", bump.Loc.Line)
	}
}

func TestClassTemplateInstantiation(t *testing.T) {
	u := compile(t, `
template <class T>
class Box {
public:
    Box(const T & v) : value(v) { }
    T get() const { return value; }
private:
    T value;
};
int main() {
    Box<int> bi(42);
    Box<double> bd(2.5);
    return bi.get();
}
`, nil)
	bi := findClass(t, u, "Box<int>")
	if !bi.IsInstantiation || bi.Origin == nil || bi.Origin.Name != "Box" {
		t.Fatalf("Box<int> = %+v", bi)
	}
	if bi.Members[0].Type.Kind != il.TInt {
		t.Errorf("Box<int>::value type = %v", bi.Members[0].Type)
	}
	bd := findClass(t, u, "Box<double>")
	if bd.Members[0].Type.Kind != il.TDouble {
		t.Errorf("Box<double>::value type = %v", bd.Members[0].Type)
	}
	// get() used only on Box<int> — "used" mode instantiates only that
	// body, but both declarations exist.
	getInt := findRoutine(t, u, "Box<int>::get")
	if !getInt.HasBody {
		t.Error("Box<int>::get should be instantiated (used)")
	}
	getDouble := findRoutine(t, u, "Box<double>::get")
	if getDouble.HasBody {
		t.Error("Box<double>::get should NOT be instantiated in used mode")
	}
}

func TestUsedVsEagerMode(t *testing.T) {
	src := `
template <class T>
class Wide {
public:
    void a() { }
    void b() { }
    void c() { }
    void d() { }
};
int main() { Wide<int> w; w.a(); return 0; }
`
	used := compileRes(t, src, nil, sema.Used)
	eager := compileRes(t, src, nil, sema.Eager)
	if len(used.Diagnostics) > 0 || len(eager.Diagnostics) > 0 {
		t.Fatalf("diags: %v %v", used.Diagnostics, eager.Diagnostics)
	}
	usedBodies := 0
	for _, r := range used.Unit.AllRoutines {
		if r.IsInstantiation && r.HasBody {
			usedBodies++
		}
	}
	eagerBodies := 0
	for _, r := range eager.Unit.AllRoutines {
		if r.IsInstantiation && r.HasBody {
			eagerBodies++
		}
	}
	if usedBodies >= eagerBodies {
		t.Errorf("used mode should instantiate fewer bodies: used=%d eager=%d",
			usedBodies, eagerBodies)
	}
	if usedBodies != 1 {
		t.Errorf("used mode instantiated %d bodies, want 1 (only a())", usedBodies)
	}
	if eagerBodies != 4 {
		t.Errorf("eager mode instantiated %d bodies, want 4", eagerBodies)
	}
}

func TestMemberTemplateEntities(t *testing.T) {
	// Member functions of a class template are templates themselves
	// (tkind memfunc), located at their out-of-line definitions — the
	// paper's Figure 3 te#566.
	u := compile(t, `
template <class Object>
class Stack {
public:
    void push(const Object & x);
    bool isFull() const;
private:
    int top;
};
template <class Object>
void Stack<Object>::push(const Object & x) { top++; }
template <class Object>
bool Stack<Object>::isFull() const { return top == 10; }
int main() { Stack<int> s; s.push(3); return 0; }
`, nil)
	var classT, pushT, isFullT *il.Template
	for _, tm := range u.AllTemplates {
		switch {
		case tm.Name == "Stack" && tm.Kind == il.TemplClass:
			classT = tm
		case tm.Name == "push" && tm.Kind == il.TemplMemFunc:
			pushT = tm
		case tm.Name == "isFull" && tm.Kind == il.TemplMemFunc:
			isFullT = tm
		}
	}
	if classT == nil || pushT == nil || isFullT == nil {
		t.Fatalf("templates = %+v", u.AllTemplates)
	}
	if pushT.Loc.Line != 11 {
		t.Errorf("push template at line %d, want out-of-line def line 11", pushT.Loc.Line)
	}
	if !strings.Contains(pushT.Text, "push") {
		t.Errorf("push template text = %q", pushT.Text)
	}
	// The instantiated routine's Origin is the member template.
	pushR := findRoutine(t, u, "Stack<int>::push")
	if pushR.Origin != pushT {
		t.Errorf("push origin = %+v", pushR.Origin)
	}
	stackInt := findClass(t, u, "Stack<int>")
	if stackInt.Origin != classT {
		t.Errorf("class origin = %+v", stackInt.Origin)
	}
}

func TestStackFigure1CallGraph(t *testing.T) {
	u := compile(t, stackFig1Source, nil)
	push := findRoutine(t, u, "Stack<int>::push")
	if !push.HasBody {
		t.Fatal("push not instantiated")
	}
	var callees []string
	for _, cs := range push.Calls {
		callees = append(callees, cs.Callee.QualifiedName())
	}
	// push calls isFull, Overflow's ctor (implicit none — no user ctor),
	// and vector<int>::operator[].
	wantContains := []string{"Stack<int>::isFull", "vector<int>::operator[]"}
	for _, w := range wantContains {
		found := false
		for _, c := range callees {
			if c == w {
				found = true
			}
		}
		if !found {
			t.Errorf("push should call %s; calls = %v", w, callees)
		}
	}
	isFull := findRoutine(t, u, "Stack<int>::isFull")
	var isFullCallees []string
	for _, cs := range isFull.Calls {
		isFullCallees = append(isFullCallees, cs.Callee.QualifiedName())
	}
	found := false
	for _, c := range isFullCallees {
		if c == "vector<int>::size" {
			found = true
		}
	}
	if !found {
		t.Errorf("isFull should call vector<int>::size; calls = %v", isFullCallees)
	}
	// main calls push, isEmpty, topAndPop and the Stack<int> ctor.
	mainR := findRoutine(t, u, "main")
	var mainCallees []string
	for _, cs := range mainR.Calls {
		mainCallees = append(mainCallees, cs.Callee.QualifiedName())
	}
	for _, w := range []string{"Stack<int>::Stack", "Stack<int>::push",
		"Stack<int>::isEmpty", "Stack<int>::topAndPop"} {
		found := false
		for _, c := range mainCallees {
			if c == w {
				found = true
			}
		}
		if !found {
			t.Errorf("main should call %s; calls = %v", w, mainCallees)
		}
	}
}

func TestFunctionTemplateDeduction(t *testing.T) {
	u := compile(t, `
template <class T> T biggest(T a, T b) { return a > b ? a : b; }
int main() {
    int i = biggest(3, 4);
    double d = biggest(1.5, 2.5);
    return i;
}
`, nil)
	var insts []string
	for _, r := range u.AllRoutines {
		if r.IsInstantiation {
			insts = append(insts, r.Name)
		}
	}
	want := map[string]bool{"biggest<int>": false, "biggest<double>": false}
	for _, n := range insts {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("missing instantiation %s; have %v", n, insts)
		}
	}
	mainR := findRoutine(t, u, "main")
	if len(mainR.Calls) != 2 {
		t.Errorf("main calls = %+v", mainR.Calls)
	}
	bi := findRoutine(t, u, "biggest<int>")
	if bi.Ret.Kind != il.TInt {
		t.Errorf("biggest<int> ret = %v", bi.Ret)
	}
}

func TestExplicitSpecializationPreferred(t *testing.T) {
	u := compile(t, `
template <class T> class Traits {
public:
    int size() { return 1; }
};
template <> class Traits<double> {
public:
    int size() { return 8; }
};
int main() {
    Traits<int> ti;
    Traits<double> td;
    return ti.size() + td.size();
}
`, nil)
	td := findClass(t, u, "Traits<double>")
	if !td.IsSpecialization {
		t.Error("Traits<double> should be the explicit specialization")
	}
	ti := findClass(t, u, "Traits<int>")
	if ti.IsSpecialization || !ti.IsInstantiation {
		t.Error("Traits<int> should be a normal instantiation")
	}
	// Only one instantiation of the primary template.
	tmpl := u.LookupTemplate("Traits")
	if len(tmpl.ClassInsts) != 1 {
		t.Errorf("primary instantiations = %d", len(tmpl.ClassInsts))
	}
	if len(tmpl.Specs) != 1 {
		t.Errorf("specs = %d", len(tmpl.Specs))
	}
}

func TestNonTypeTemplateParams(t *testing.T) {
	u := compile(t, `
template <class T, int N>
class FixedArray {
public:
    int capacity() const { return N; }
private:
    T data[N];
};
int main() {
    FixedArray<double, 16> fa;
    return fa.capacity();
}
`, nil)
	fa := findClass(t, u, "FixedArray<double, 16>")
	if fa == nil {
		t.Fatal("instantiation missing")
	}
	data := fa.Members[0]
	u2 := data.Type.Unqualified()
	if u2.Kind != il.TArray || u2.ArrayLen != 16 || u2.Elem.Kind != il.TDouble {
		t.Errorf("data type = %v", data.Type)
	}
}

func TestDefaultTemplateArgs(t *testing.T) {
	u := compile(t, `
template <class T, int N = 4>
class Buf {
public:
    int cap() const { return N; }
};
int main() {
    Buf<char> b;
    return b.cap();
}
`, nil)
	if u.LookupClass("Buf<char, 4>") == nil {
		var names []string
		for _, c := range u.AllClasses {
			names = append(names, c.Name)
		}
		t.Fatalf("default arg not applied; classes = %v", names)
	}
}

func TestNestedTemplates(t *testing.T) {
	u := compile(t, `
template <class T> class Inner { public: T v; };
template <class T> class Outer { public: Inner<T> inner; };
int main() {
    Outer<int> o;
    o.inner.v = 5;
    return o.inner.v;
}
`, nil)
	if u.LookupClass("Outer<int>") == nil || u.LookupClass("Inner<int>") == nil {
		t.Error("transitive instantiation failed")
	}
}

func TestNamespaces(t *testing.T) {
	u := compile(t, `
namespace math {
    double pi = 3.14159;
    double twice(double x) { return 2 * x; }
    namespace detail {
        int secret() { return 42; }
    }
}
int main() {
    return (int) math::twice(math::pi) + math::detail::secret();
}
`, nil)
	if len(u.Global.Namespaces) != 1 || u.Global.Namespaces[0].Name != "math" {
		t.Fatalf("namespaces = %+v", u.Global.Namespaces)
	}
	mainR := findRoutine(t, u, "main")
	var callees []string
	for _, cs := range mainR.Calls {
		callees = append(callees, cs.Callee.QualifiedName())
	}
	for _, w := range []string{"math::twice", "math::detail::secret"} {
		found := false
		for _, c := range callees {
			if c == w {
				found = true
			}
		}
		if !found {
			t.Errorf("main should call %s; calls = %v", w, callees)
		}
	}
}

func TestOverloadResolution(t *testing.T) {
	u := compile(t, `
int f(int x) { return 1; }
int f(double x) { return 2; }
int f(const char *s) { return 3; }
int main() {
    return f(1) + f(2.5) + f("hi");
}
`, nil)
	mainR := findRoutine(t, u, "main")
	if len(mainR.Calls) != 3 {
		t.Fatalf("calls = %+v", mainR.Calls)
	}
	kinds := []il.TypeKind{
		mainR.Calls[0].Callee.Params[0].Type.Deref().Kind,
		mainR.Calls[1].Callee.Params[0].Type.Deref().Kind,
		mainR.Calls[2].Callee.Params[0].Type.Deref().Kind,
	}
	if kinds[0] != il.TInt || kinds[1] != il.TDouble || kinds[2] != il.TPtr {
		t.Errorf("overload picks = %v", kinds)
	}
}

func TestCtorDtorLifetimeCalls(t *testing.T) {
	u := compile(t, `
class Res {
public:
    Res() { }
    ~Res() { }
};
void scopeTest() {
    Res r;
    {
        Res inner;
    }
}
`, nil)
	st := findRoutine(t, u, "scopeTest")
	ctors, dtors := 0, 0
	for _, cs := range st.Calls {
		switch cs.Callee.Kind {
		case ast.Constructor:
			ctors++
		case ast.Destructor:
			dtors++
		}
	}
	if ctors != 2 || dtors != 2 {
		t.Errorf("ctors=%d dtors=%d (calls=%+v)", ctors, dtors, st.Calls)
	}
}

func TestNewDeleteCalls(t *testing.T) {
	u := compile(t, `
class Obj {
public:
    Obj(int v) { }
    ~Obj() { }
};
void heap() {
    Obj *p = new Obj(3);
    delete p;
}
`, nil)
	h := findRoutine(t, u, "heap")
	var kinds []ast.RoutineKind
	for _, cs := range h.Calls {
		kinds = append(kinds, cs.Callee.Kind)
	}
	if len(kinds) != 2 || kinds[0] != ast.Constructor || kinds[1] != ast.Destructor {
		t.Errorf("heap calls = %+v", h.Calls)
	}
}

func TestEnumsAndConstants(t *testing.T) {
	u := compile(t, `
enum Color { RED, GREEN = 5, BLUE };
template <class T, int N> class Arr { T d[N]; };
Arr<int, BLUE> a;
`, nil)
	e := u.AllEnums[0]
	if v, _ := e.Lookup("BLUE"); v != 6 {
		t.Errorf("BLUE = %d", v)
	}
	if u.LookupClass("Arr<int, 6>") == nil {
		t.Error("enum constant not used in template arg")
	}
}

func TestOperatorOverloadCalls(t *testing.T) {
	u := compile(t, `
class Vec2 {
public:
    Vec2(double x, double y) : x_(x), y_(y) { }
    Vec2 operator+(const Vec2 & o) const { return Vec2(x_ + o.x_, y_ + o.y_); }
    double operator[](int i) const { return i == 0 ? x_ : y_; }
private:
    double x_, y_;
};
double use() {
    Vec2 a(1, 2), b(3, 4);
    Vec2 c = a + b;
    return c[0];
}
`, nil)
	use := findRoutine(t, u, "use")
	names := map[string]bool{}
	for _, cs := range use.Calls {
		names[cs.Callee.Name] = true
	}
	if !names["operator+"] || !names["operator[]"] {
		t.Errorf("operator calls missing: %+v", use.Calls)
	}
}

func TestVectorHeaderInstantiation(t *testing.T) {
	u := compile(t, `
#include <vector>
int main() {
    vector<double> v;
    v.push_back(1.5);
    v.push_back(2.5);
    return v.size();
}
`, nil)
	vd := findClass(t, u, "vector<double>")
	if !vd.IsInstantiation {
		t.Error("vector<double> should be an instantiation")
	}
	pb := findRoutine(t, u, "vector<double>::push_back")
	if !pb.HasBody {
		t.Error("push_back should be instantiated (used)")
	}
	// reserve is called by push_back's body.
	rs := findRoutine(t, u, "vector<double>::reserve")
	if !rs.HasBody {
		t.Error("reserve should be transitively instantiated")
	}
}

func TestTAUHeaderMacros(t *testing.T) {
	u := compile(t, `
#include <tau.h>
template <class T> class veclike {
public:
    veclike(int size) {
        TAU_PROFILE("veclike::veclike()", CT(*this), TAU_USER);
    }
};
int main() {
    veclike<int> v(10);
    return 0;
}
`, nil)
	ctor := findRoutine(t, u, "veclike<int>::veclike")
	var names []string
	for _, cs := range ctor.Calls {
		names = append(names, cs.Callee.QualifiedName())
	}
	foundCtor, foundType := false, false
	for _, n := range names {
		if n == "TauProfiler::TauProfiler" {
			foundCtor = true
		}
		if n == "__pdt_typename" {
			foundType = true
		}
	}
	if !foundCtor || !foundType {
		t.Errorf("TAU macro lowering calls = %v", names)
	}
}

func TestStats(t *testing.T) {
	res := compileRes(t, stackFig1Source, nil, sema.Used)
	st := res.Stats
	if st.ClassInsts == 0 || st.RoutineInsts == 0 || st.Types == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestExplicitInstantiationForcesMembers(t *testing.T) {
	u := compile(t, `
template <class T> class Full {
public:
    void used() { }
    void unused() { }
};
template class Full<int>;
`, nil)
	un := findRoutine(t, u, "Full<int>::unused")
	if !un.HasBody {
		t.Error("explicit instantiation must instantiate all members")
	}
}

func TestDiagnosticsForUnknownType(t *testing.T) {
	res := compileRes(t, "Unknown x;", nil, sema.Used)
	if !res.HasErrors() {
		t.Error("expected a diagnostic for unknown type")
	}
}

// stackFig1Source is the paper's Figure 1 program (StackAr layout:
// header + implementation + driver merged into one unit the way the
// paper's so#66/so#73/so#75 files combine).
const stackFig1Source = `
#include <vector>
class Overflow { };
class Underflow { };

template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10);
    bool isEmpty() const;
    bool isFull() const;
    const Object & top() const;
    void makeEmpty();
    void pop();
    void push(const Object & x);
    Object topAndPop();
private:
    vector<Object> theArray;
    int topOfStack;
};

template <class Object>
Stack<Object>::Stack(int capacity) : theArray(capacity), topOfStack(-1) { }

template <class Object>
bool Stack<Object>::isEmpty() const {
    return topOfStack == -1;
}

template <class Object>
bool Stack<Object>::isFull() const {
    return topOfStack == theArray.size() - 1;
}

template <class Object>
const Object & Stack<Object>::top() const {
    if (isEmpty())
        throw Underflow();
    return theArray.at(topOfStack);
}

template <class Object>
void Stack<Object>::makeEmpty() {
    topOfStack = -1;
}

template <class Object>
void Stack<Object>::pop() {
    if (isEmpty())
        throw Underflow();
    topOfStack--;
}

template <class Object>
void Stack<Object>::push(const Object & x) {
    if (isFull())
        throw Overflow();
    theArray[++topOfStack] = x;
}

template <class Object>
Object Stack<Object>::topAndPop() {
    if (isEmpty())
        throw Underflow();
    return theArray.at(topOfStack--);
}

int main() {
    Stack<int> s;
    for (int i = 0; i < 10; i++)
        s.push(i);
    while (!s.isEmpty())
        s.topAndPop();
    return 0;
}
`
