package sema

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/il"
)

// bindings map template parameter names to bound argument values while
// resolving inside an instantiation.
type bindings = map[string]il.TemplateArgValue

// resolveType lowers a syntactic type to an interned IL type.
func (s *Sema) resolveType(te ast.TypeExpr, b bindings) *il.Type {
	tt := s.unit.Types
	switch te := te.(type) {
	case nil:
		return tt.Builtin(il.TError)
	case *ast.BuiltinType:
		return tt.Builtin(builtinKind(te.Spec))
	case *ast.ConstType:
		return tt.ConstOf(s.resolveType(te.Elem, b))
	case *ast.VolatileType:
		inner := s.resolveType(te.Elem, b)
		if inner.Kind == il.TTref {
			return tt.Intern(&il.Type{Kind: il.TTref, Elem: inner.Elem, Const: inner.Const, Volatile: true})
		}
		return tt.Intern(&il.Type{Kind: il.TTref, Elem: inner, Volatile: true})
	case *ast.PointerType:
		return tt.PtrTo(s.resolveType(te.Elem, b))
	case *ast.RefType:
		return tt.RefTo(s.resolveType(te.Elem, b))
	case *ast.ArrayType:
		n := int64(-1)
		if te.Size != nil {
			if v, ok := s.evalConst(te.Size, b); ok {
				n = v
			} else {
				s.errorf(te.Pos, "array bound is not a constant expression")
			}
		}
		return tt.ArrayOf(s.resolveType(te.Elem, b), n)
	case *ast.FuncType:
		params := make([]*il.Type, 0, len(te.Params))
		variadic := false
		for _, p := range te.Params {
			if p.Ellipsis {
				variadic = true
				continue
			}
			params = append(params, s.resolveType(p.Type, b))
		}
		return tt.Func(s.resolveType(te.Ret, b), params, variadic, te.Const)
	case *ast.NamedType:
		return s.resolveNamedType(te.Name, b, te)
	default:
		return tt.Builtin(il.TError)
	}
}

func builtinKind(spec string) il.TypeKind {
	switch spec {
	case "void":
		return il.TVoid
	case "bool":
		return il.TBool
	case "char":
		return il.TChar
	case "signed char":
		return il.TSChar
	case "unsigned char":
		return il.TUChar
	case "short":
		return il.TShort
	case "unsigned short":
		return il.TUShort
	case "int":
		return il.TInt
	case "unsigned", "unsigned int":
		return il.TUInt
	case "long":
		return il.TLong
	case "unsigned long":
		return il.TULong
	case "long long":
		return il.TLongLong
	case "unsigned long long":
		return il.TULongLong
	case "float":
		return il.TFloat
	case "double":
		return il.TDouble
	case "long double":
		return il.TLongDouble
	default:
		return il.TError
	}
}

// resolveNamedType resolves a possibly-qualified, possibly-templated
// name in type context.
func (s *Sema) resolveNamedType(q ast.QualName, b bindings, te *ast.NamedType) *il.Type {
	tt := s.unit.Types
	if len(q.Segs) == 0 {
		return tt.Builtin(il.TError)
	}
	// Single unqualified segment.
	if len(q.Segs) == 1 && !q.Global {
		seg := q.Segs[0]
		if !seg.HasArgs {
			if b != nil {
				if v, ok := b[seg.Name]; ok {
					if v.IsInt {
						s.errorf(seg.Loc, "non-type template parameter %s used as a type", seg.Name)
						return tt.Builtin(il.TError)
					}
					return v.Type
				}
			}
			if t := s.lookupTypeName(seg.Name, s.currentScopeChain()); t != nil {
				return t
			}
			s.errorf(seg.Loc, "unknown type name %q", seg.Name)
			return tt.Builtin(il.TError)
		}
		// Template-id: instantiate.
		tmpl := s.lookupTemplateByName(seg.Name)
		if tmpl == nil {
			s.errorf(seg.Loc, "unknown template %q", seg.Name)
			return tt.Builtin(il.TError)
		}
		args := s.resolveTemplateArgs(seg.Args, b)
		c := s.instantiateClass(tmpl, args, seg.Loc)
		if c == nil {
			return tt.Builtin(il.TError)
		}
		return tt.ClassType(c)
	}
	// Qualified name: resolve the prefix to a namespace or class, then
	// the terminal inside it.
	scope, rest := s.resolveQualPrefix(q, b)
	if scope == nil {
		s.errorf(q.Loc(), "cannot resolve qualifier of %s", q.String())
		return tt.Builtin(il.TError)
	}
	if len(rest) != 1 {
		s.errorf(q.Loc(), "cannot resolve %s", q.String())
		return tt.Builtin(il.TError)
	}
	seg := rest[0]
	switch sc := scope.(type) {
	case *il.Namespace:
		if seg.HasArgs {
			if tmpl := findTemplateIn(sc, seg.Name); tmpl != nil {
				args := s.resolveTemplateArgs(seg.Args, b)
				if c := s.instantiateClass(tmpl, args, seg.Loc); c != nil {
					return tt.ClassType(c)
				}
			}
			s.errorf(seg.Loc, "unknown template %s in namespace %s", seg.Name, sc.QualifiedName())
			return tt.Builtin(il.TError)
		}
		if t := s.lookupTypeNameIn(sc, seg.Name); t != nil {
			return t
		}
	case *il.Class:
		if t := s.lookupTypeInClass(sc, seg.Name); t != nil {
			return t
		}
	}
	s.errorf(seg.Loc, "unknown type %s", q.String())
	return tt.Builtin(il.TError)
}

// resolveQualPrefix resolves all but the last segment of a qualified
// name to a scope (namespace or class). Template-id segments resolve to
// their instantiations.
func (s *Sema) resolveQualPrefix(q ast.QualName, b bindings) (il.Scope, []ast.Seg) {
	segs := q.Segs
	var scope il.Scope
	if q.Global {
		scope = s.unit.Global
	}
	for len(segs) > 1 {
		seg := segs[0]
		next := s.resolveScopeSeg(scope, seg, b)
		if next == nil {
			return nil, segs
		}
		scope = next
		segs = segs[1:]
	}
	return scope, segs
}

// resolveScopeSeg resolves one qualifier segment inside scope (nil
// scope = search the current scope chain).
func (s *Sema) resolveScopeSeg(scope il.Scope, seg ast.Seg, b bindings) il.Scope {
	if seg.HasArgs {
		var tmpl *il.Template
		if scope == nil {
			tmpl = s.lookupTemplateByName(seg.Name)
		} else if ns, ok := scope.(*il.Namespace); ok {
			tmpl = findTemplateIn(ns, seg.Name)
		}
		if tmpl == nil {
			return nil
		}
		args := s.resolveTemplateArgs(seg.Args, b)
		return s.instantiateClass(tmpl, args, seg.Loc)
	}
	if scope == nil {
		// Search current chain for a namespace, class, or binding.
		if b != nil {
			if v, ok := b[seg.Name]; ok && v.Type != nil {
				if u := v.Type.Unqualified(); u.Kind == il.TClass {
					return u.Class
				}
			}
		}
		for _, ns := range s.nsChain() {
			for _, sub := range ns.Namespaces {
				if sub.Name == seg.Name {
					return sub
				}
			}
			if target, ok := ns.Aliases[seg.Name]; ok {
				return target
			}
			for _, c := range ns.Classes {
				if c.Name == seg.Name {
					return c
				}
			}
		}
		return nil
	}
	switch sc := scope.(type) {
	case *il.Namespace:
		for _, sub := range sc.Namespaces {
			if sub.Name == seg.Name {
				return sub
			}
		}
		if target, ok := sc.Aliases[seg.Name]; ok {
			return target
		}
		for _, c := range sc.Classes {
			if c.Name == seg.Name {
				return c
			}
		}
	case *il.Class:
		for _, c := range sc.Nested {
			if c.Name == seg.Name {
				return c
			}
		}
	}
	return nil
}

// nsChain returns the namespace stack innermost-first plus active
// using-directive targets.
func (s *Sema) nsChain() []*il.Namespace {
	var out []*il.Namespace
	for i := len(s.nsStack) - 1; i >= 0; i-- {
		out = append(out, s.nsStack[i])
	}
	out = append(out, s.usingNS...)
	return out
}

// currentScopeChain returns the class stack (innermost first) for
// member lookups; namespaces are handled separately.
func (s *Sema) currentScopeChain() []*il.Class {
	var out []*il.Class
	for i := len(s.classStack) - 1; i >= 0; i-- {
		out = append(out, s.classStack[i])
	}
	return out
}

// lookupTypeName searches classes then namespaces for a type name.
func (s *Sema) lookupTypeName(name string, classes []*il.Class) *il.Type {
	for _, c := range classes {
		if t := s.lookupTypeInClass(c, name); t != nil {
			return t
		}
	}
	for _, ns := range s.nsChain() {
		if t := s.lookupTypeNameIn(ns, name); t != nil {
			return t
		}
	}
	return nil
}

func (s *Sema) lookupTypeNameIn(ns *il.Namespace, name string) *il.Type {
	tt := s.unit.Types
	for _, c := range ns.Classes {
		if c.Name == name {
			return tt.ClassType(c)
		}
	}
	for _, e := range ns.Enums {
		if e.Name == name {
			return tt.EnumType(e)
		}
	}
	for _, td := range ns.Typedefs {
		if td.Name == name {
			return td.Type
		}
	}
	return nil
}

func (s *Sema) lookupTypeInClass(c *il.Class, name string) *il.Type {
	tt := s.unit.Types
	for _, n := range c.Nested {
		if n.Name == name {
			return tt.ClassType(n)
		}
	}
	for _, e := range c.Enums {
		if e.Name == name {
			return tt.EnumType(e)
		}
	}
	for _, td := range c.Typedefs {
		if td.Name == name {
			return td.Type
		}
	}
	for _, b := range c.Bases {
		if b.Class != nil {
			if t := s.lookupTypeInClass(b.Class, name); t != nil {
				return t
			}
		}
	}
	return nil
}

// lookupTemplateByName finds a class template by unqualified name,
// searching the current class stack (member templates), namespace
// chain, then the whole unit.
func (s *Sema) lookupTemplateByName(name string) *il.Template {
	for _, c := range s.currentScopeChain() {
		for _, t := range c.Templates {
			if t.Name == name && t.Kind == il.TemplClass {
				return t
			}
		}
	}
	for _, ns := range s.nsChain() {
		for _, t := range ns.Templates {
			if t.Name == name && t.Kind == il.TemplClass {
				return t
			}
		}
	}
	for _, t := range s.unit.AllTemplates {
		if t.Name == name && t.Kind == il.TemplClass {
			return t
		}
	}
	return nil
}

func findTemplateIn(ns *il.Namespace, name string) *il.Template {
	for _, t := range ns.Templates {
		if t.Name == name && t.Kind == il.TemplClass {
			return t
		}
	}
	return nil
}

// lookupNamespace resolves a namespace path from the current chain.
func (s *Sema) lookupNamespace(q ast.QualName) *il.Namespace {
	var cur *il.Namespace
	for i, seg := range q.Segs {
		if i == 0 && !q.Global {
			for _, ns := range s.nsChain() {
				for _, sub := range ns.Namespaces {
					if sub.Name == seg.Name {
						cur = sub
						break
					}
				}
				if cur == nil {
					if target, ok := ns.Aliases[seg.Name]; ok {
						cur = target
					}
				}
				if cur != nil {
					break
				}
			}
			if cur == nil {
				return nil
			}
			continue
		}
		if cur == nil {
			cur = s.unit.Global
		}
		var next *il.Namespace
		for _, sub := range cur.Namespaces {
			if sub.Name == seg.Name {
				next = sub
				break
			}
		}
		if next == nil {
			if target, ok := cur.Aliases[seg.Name]; ok {
				next = target
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// --- constant expression evaluation -------------------------------------

// evalConst evaluates an integral constant expression (enumerators,
// bound non-type template parameters, literals, arithmetic).
func (s *Sema) evalConst(e ast.Expr, b bindings) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.CharLit:
		return e.Value, true
	case *ast.BoolLit:
		if e.Value {
			return 1, true
		}
		return 0, true
	case *ast.ParenExpr:
		return s.evalConst(e.E, b)
	case *ast.NameExpr:
		name := e.Name.Terminal().Name
		if b != nil {
			if v, ok := b[name]; ok && v.IsInt {
				return v.Const, true
			}
		}
		if v, ok := s.enumConsts[name]; ok && e.Name.IsSimple() {
			return v, true
		}
		// Qualified enumerator: E::A or Class::A.
		if len(e.Name.Segs) >= 2 {
			if v, ok := s.lookupQualifiedConst(e.Name); ok {
				return v, true
			}
		}
		// const int globals with constant initializers.
		if e.Name.IsSimple() {
			for _, ns := range s.nsChain() {
				for _, v := range ns.Vars {
					if v.Name == name && v.Init != nil && v.Type != nil && v.Type.IsConst() {
						return s.evalConst(v.Init, b)
					}
				}
			}
		}
		return 0, false
	case *ast.UnaryExpr:
		v, ok := s.evalConst(e.Operand, b)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case ast.Neg:
			return -v, true
		case ast.Pos_:
			return v, true
		case ast.BitNot:
			return ^v, true
		case ast.LogNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.BinaryExpr:
		l, ok1 := s.evalConst(e.L, b)
		r, ok2 := s.evalConst(e.R, b)
		if !ok1 || !ok2 {
			return 0, false
		}
		return applyIntOp(e.Op, l, r)
	case *ast.CondExpr:
		c, ok := s.evalConst(e.C, b)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return s.evalConst(e.T, b)
		}
		return s.evalConst(e.F, b)
	case *ast.SizeofExpr:
		if e.Type != nil {
			return s.sizeOf(s.resolveType(e.Type, b)), true
		}
		return 0, false
	case *ast.CastExpr:
		return s.evalConst(e.Operand, b)
	default:
		return 0, false
	}
}

func (s *Sema) lookupQualifiedConst(q ast.QualName) (int64, bool) {
	owner := q.Segs[len(q.Segs)-2].Name
	name := q.Terminal().Name
	for _, e := range s.unit.AllEnums {
		if e.Name == owner {
			if v, ok := e.Lookup(name); ok {
				return v, true
			}
		}
	}
	// Class-scoped enumerator: Class::Value.
	for _, c := range s.unit.AllClasses {
		if c.Name == owner {
			for _, e := range c.Enums {
				if v, ok := e.Lookup(name); ok {
					return v, true
				}
			}
		}
	}
	return 0, false
}

func applyIntOp(op ast.BinOp, l, r int64) (int64, bool) {
	switch op {
	case ast.Add:
		return l + r, true
	case ast.Sub:
		return l - r, true
	case ast.Mul:
		return l * r, true
	case ast.Div:
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case ast.Rem:
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case ast.BAnd:
		return l & r, true
	case ast.BOr:
		return l | r, true
	case ast.BXor:
		return l ^ r, true
	case ast.ShlOp:
		return l << uint(r&63), true
	case ast.ShrOp:
		return l >> uint(r&63), true
	case ast.LAnd:
		return b2i(l != 0 && r != 0), true
	case ast.LOr:
		return b2i(l != 0 || r != 0), true
	case ast.EqOp:
		return b2i(l == r), true
	case ast.NeOp:
		return b2i(l != r), true
	case ast.LtOp:
		return b2i(l < r), true
	case ast.GtOp:
		return b2i(l > r), true
	case ast.LeOp:
		return b2i(l <= r), true
	case ast.GeOp:
		return b2i(l >= r), true
	default:
		return 0, false
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sizeOf returns the ABI size model used for sizeof in constant
// expressions (an LP64 model).
func (s *Sema) sizeOf(t *il.Type) int64 {
	switch u := t.Unqualified(); u.Kind {
	case il.TBool, il.TChar, il.TSChar, il.TUChar:
		return 1
	case il.TShort, il.TUShort:
		return 2
	case il.TInt, il.TUInt, il.TFloat, il.TEnum:
		return 4
	case il.TLong, il.TULong, il.TLongLong, il.TULongLong, il.TDouble,
		il.TPtr, il.TRef:
		return 8
	case il.TLongDouble:
		return 16
	case il.TArray:
		if u.ArrayLen < 0 {
			return 8
		}
		return u.ArrayLen * s.sizeOf(u.Elem)
	case il.TClass:
		if u.Class == nil {
			return 8
		}
		var total int64
		for _, m := range u.Class.Members {
			total += s.sizeOf(m.Type)
		}
		for _, b := range u.Class.Bases {
			if b.Class != nil {
				total += s.sizeOf(s.unit.Types.ClassType(b.Class))
			}
		}
		if total == 0 {
			total = 1
		}
		return total
	default:
		return 8
	}
}
