package sema

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// resolveTemplateArgs lowers syntactic template arguments to bound
// values under the enclosing bindings.
func (s *Sema) resolveTemplateArgs(args []ast.TemplateArg, b bindings) []il.TemplateArgValue {
	out := make([]il.TemplateArgValue, 0, len(args))
	for _, a := range args {
		switch {
		case a.Type != nil:
			out = append(out, il.TemplateArgValue{Type: s.resolveType(a.Type, b)})
		case a.Expr != nil:
			// A bare name that is bound to a *type* parameter was
			// parsed as an expression; reinterpret.
			if ne, ok := a.Expr.(*ast.NameExpr); ok && ne.Name.IsSimple() && b != nil {
				if v, bound := b[ne.Name.Terminal().Name]; bound {
					out = append(out, v)
					continue
				}
			}
			if v, ok := s.evalConst(a.Expr, b); ok {
				out = append(out, il.TemplateArgValue{Const: v, IsInt: true})
			} else {
				s.errorf(a.Expr.Span().Begin,
					"template argument is neither a type nor a constant expression")
				out = append(out, il.TemplateArgValue{IsInt: true})
			}
		}
	}
	return out
}

// instantiatedName renders "Stack<int>" from a base name and arguments.
func instantiatedName(base string, args []il.TemplateArgValue) string {
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('<')
	for i, a := range args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	// ">>" needs no special care in IL names; PDB names keep "> >"-free
	// modern spelling.
	sb.WriteByte('>')
	return sb.String()
}

// qualifiedKey builds the instantiation cache key.
func qualifiedKey(tmpl *il.Template, name string) string {
	p := ""
	if tmpl.Parent != nil {
		p = tmpl.Parent.QualifiedName()
	}
	if p == "" {
		return name
	}
	return p + "::" + name
}

// argsEqual compares bound argument lists.
func argsEqual(a, b []il.TemplateArgValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsInt != b[i].IsInt {
			return false
		}
		if a[i].IsInt {
			if a[i].Const != b[i].Const {
				return false
			}
		} else if a[i].Type != b[i].Type {
			return false
		}
	}
	return true
}

// instantiateClass returns the class for tmpl<args>, creating it on
// first use ("used" instantiation mode, §2 of the paper). Explicit
// specializations take precedence.
func (s *Sema) instantiateClass(tmpl *il.Template, args []il.TemplateArgValue, loc source.Loc) *il.Class {
	if s.depth >= s.opts.MaxInstantiationDepth {
		s.errorf(loc, "template instantiation depth limit exceeded at %s", tmpl.Name)
		return nil
	}
	args = s.applyDefaultArgs(tmpl, args, loc)

	// Explicit specialization?
	for _, spec := range tmpl.Specs {
		if argsEqual(spec.Args, args) {
			return spec.Class
		}
	}
	name := instantiatedName(tmpl.Name, args)
	key := qualifiedKey(tmpl, name)
	if c, ok := s.classInsts[key]; ok {
		return c
	}
	if tmpl.ClassDecl == nil {
		s.errorf(loc, "%s is not a class template", tmpl.Name)
		return nil
	}

	c := &il.Class{
		Name: name, Kind: tmpl.ClassDecl.Kind, Parent: tmpl.Parent,
		Access: tmpl.Access,
		// Instantiations carry the template's source position — the IL
		// property the paper's analyzer exploits to match templates to
		// instantiations by location (§3.1).
		Loc: tmpl.Loc, Header: tmpl.ClassDecl.Header, Body: tmpl.ClassDecl.Body,
		Complete: true, IsInstantiation: true, Origin: tmpl, Args: args,
		Decl: tmpl.ClassDecl,
	}
	s.classInsts[key] = c // cache before body resolution (self-reference)
	s.registerClass(c)
	tmpl.ClassInsts = append(tmpl.ClassInsts, c)

	b := s.bindParams(tmpl.Params, args)
	// The template's own name maps to this instantiation inside the
	// body ("Stack" used unqualified inside Stack<Object>).
	b[tmpl.Name] = il.TemplateArgValue{Type: s.unit.Types.ClassType(c)}

	s.depth++
	s.resolveClassBody(c, tmpl.ClassDecl, b)
	s.depth--

	if s.opts.Mode == Eager {
		for _, m := range c.Methods {
			s.useRoutine(m)
		}
	}
	return c
}

// applyDefaultArgs pads args with the template's default arguments.
func (s *Sema) applyDefaultArgs(tmpl *il.Template, args []il.TemplateArgValue, loc source.Loc) []il.TemplateArgValue {
	if len(args) >= len(tmpl.Params) {
		return args
	}
	out := append([]il.TemplateArgValue{}, args...)
	b := s.bindParams(tmpl.Params[:len(args)], args)
	for _, p := range tmpl.Params[len(args):] {
		switch {
		case p.DefaultType != nil:
			v := il.TemplateArgValue{Type: s.resolveType(p.DefaultType, b)}
			out = append(out, v)
			b[p.Name] = v
		case p.DefaultExpr != nil:
			c, ok := s.evalConst(p.DefaultExpr, b)
			if !ok {
				s.errorf(loc, "default template argument of %s is not constant", p.Name)
			}
			v := il.TemplateArgValue{Const: c, IsInt: true}
			out = append(out, v)
			b[p.Name] = v
		default:
			s.errorf(loc, "too few template arguments for %s (%d < %d)",
				tmpl.Name, len(args), len(tmpl.Params))
			if p.IsType {
				out = append(out, il.TemplateArgValue{Type: s.unit.Types.Builtin(il.TError)})
			} else {
				out = append(out, il.TemplateArgValue{IsInt: true})
			}
		}
	}
	return out
}

// bindParams zips parameter names with argument values.
func (s *Sema) bindParams(params []ast.TemplateParam, args []il.TemplateArgValue) bindings {
	b := bindings{}
	for i, p := range params {
		if i < len(args) && p.Name != "" {
			b[p.Name] = args[i]
		}
	}
	return b
}

// useRoutine marks a routine as used: for instantiated routines whose
// body has not yet been materialized, it locates the defining AST
// (in-class or out-of-line) and queues body analysis. This is the core
// of "used" instantiation mode.
func (s *Sema) useRoutine(r *il.Routine) {
	if r == nil {
		return
	}
	r.Used = true
	if s.analyzed[r] {
		return
	}
	if r.IsInstantiation && r.Decl != nil && r.Decl.Body == nil {
		// Find an out-of-line definition registered for the class
		// template this routine's class came from.
		if r.Class != nil && r.Class.Origin != nil {
			if defs := s.memberDefs[r.Class.Origin]; defs != nil {
				for _, def := range defs[r.Name] {
					if len(def.Params) == len(r.Decl.Params) {
						r.Decl = def
						// The routine is reported at its definition
						// site, as in the paper's Figure 3.
						r.Loc = def.Name.Terminal().Loc
						r.Header = def.Header
						break
					}
				}
			}
		}
	}
	if r.Decl != nil && r.Decl.Body != nil {
		r.HasBody = true
		r.BodySpan = r.Decl.Body2
		s.queueBody(r)
	}
}

// deduceFunctionTemplate attempts template argument deduction for a
// call f(args...) against a function template, returning bindings or
// nil when deduction fails.
func (s *Sema) deduceFunctionTemplate(tmpl *il.Template, argTypes []*il.Type) bindings {
	fd := tmpl.FuncDecl
	if fd == nil {
		return nil
	}
	params := fd.Params
	// Count required parameters (those without defaults).
	required := 0
	for _, p := range params {
		if p.Default == nil && !p.Ellipsis {
			required++
		}
	}
	if len(argTypes) < required || len(argTypes) > len(params) {
		return nil
	}
	b := bindings{}
	for i, at := range argTypes {
		if i >= len(params) || params[i].Ellipsis {
			break
		}
		if !s.unify(params[i].Type, at, b) {
			return nil
		}
	}
	// Every template parameter must be bound.
	for _, p := range tmpl.Params {
		if _, ok := b[p.Name]; !ok {
			return nil
		}
	}
	return b
}

// unify matches a syntactic parameter type pattern against a concrete
// argument type, binding template parameter names.
func (s *Sema) unify(pattern ast.TypeExpr, arg *il.Type, b bindings) bool {
	if arg == nil {
		return false
	}
	switch pattern := pattern.(type) {
	case *ast.NamedType:
		name := pattern.Name
		if name.IsSimple() {
			pname := name.Terminal().Name
			if isTemplateParamName(b, pname) {
				return bindOrCheck(b, pname, il.TemplateArgValue{Type: stripForDeduction(arg)})
			}
			if _, pending := b[pname]; !pending {
				// Unbound non-parameter name: may still be a template
				// parameter not yet seen; bind optimistically only if
				// it looks like one (single upper-case-led identifier
				// not resolving to a type).
				if s.lookupTypeNameQuiet(pname) == nil {
					return bindOrCheck(b, pname, il.TemplateArgValue{Type: stripForDeduction(arg)})
				}
			}
			// Concrete named type: must equal the argument.
			t := s.lookupTypeNameQuiet(pname)
			return t != nil && t == stripForDeduction(arg)
		}
		// Template-id pattern: vector<T> against vector<int>.
		term := name.Terminal()
		if term.HasArgs {
			u := stripForDeduction(arg)
			if u.Kind != il.TClass || u.Class == nil || !u.Class.IsInstantiation {
				return false
			}
			if u.Class.BaseName() != term.Name {
				return false
			}
			if len(term.Args) != len(u.Class.Args) {
				return false
			}
			for i, pa := range term.Args {
				ca := u.Class.Args[i]
				switch {
				case pa.Type != nil && !ca.IsInt:
					if !s.unify(pa.Type, ca.Type, b) {
						return false
					}
				case pa.Expr != nil && ca.IsInt:
					if ne, ok := pa.Expr.(*ast.NameExpr); ok && ne.Name.IsSimple() {
						if !bindOrCheck(b, ne.Name.Terminal().Name,
							il.TemplateArgValue{Const: ca.Const, IsInt: true}) {
							return false
						}
					} else if v, ok := s.evalConst(pa.Expr, b); !ok || v != ca.Const {
						return false
					}
				default:
					return false
				}
			}
			return true
		}
		return false
	case *ast.ConstType:
		return s.unify(pattern.Elem, stripConst(arg), b)
	case *ast.VolatileType:
		return s.unify(pattern.Elem, stripConst(arg), b)
	case *ast.RefType:
		return s.unify(pattern.Elem, derefForDeduction(arg), b)
	case *ast.PointerType:
		u := arg.Deref()
		if u.Kind != il.TPtr && u.Kind != il.TArray {
			return false
		}
		return s.unify(pattern.Elem, u.Elem, b)
	case *ast.ArrayType:
		u := arg.Deref()
		if u.Kind != il.TArray && u.Kind != il.TPtr {
			return false
		}
		return s.unify(pattern.Elem, u.Elem, b)
	case *ast.BuiltinType:
		return builtinKind(pattern.Spec) == arg.Deref().Kind
	default:
		return false
	}
}

func isTemplateParamName(b bindings, name string) bool {
	_, ok := b[name]
	return ok
}

func bindOrCheck(b bindings, name string, v il.TemplateArgValue) bool {
	if old, ok := b[name]; ok && (old.Type != nil || old.IsInt) {
		return argsEqual([]il.TemplateArgValue{old}, []il.TemplateArgValue{v})
	}
	b[name] = v
	return true
}

func stripForDeduction(t *il.Type) *il.Type { return t.Deref() }

func stripConst(t *il.Type) *il.Type {
	if t.Kind == il.TTref {
		return t.Elem
	}
	return t
}

func derefForDeduction(t *il.Type) *il.Type {
	u := t
	if u.Kind == il.TRef {
		u = u.Elem
	}
	return u
}

// lookupTypeNameQuiet looks a type name up without diagnostics.
func (s *Sema) lookupTypeNameQuiet(name string) *il.Type {
	return s.lookupTypeName(name, s.currentScopeChain())
}

// instantiateFunctionTemplate creates (or returns the cached) routine
// instantiation of a free function template under bindings b.
func (s *Sema) instantiateFunctionTemplate(tmpl *il.Template, b bindings, loc source.Loc) *il.Routine {
	var args []il.TemplateArgValue
	for _, p := range tmpl.Params {
		args = append(args, b[p.Name])
	}
	name := instantiatedName(tmpl.Name, args)
	for _, r := range tmpl.RoutineInsts {
		if r.Name == name {
			return r
		}
	}
	fd := tmpl.FuncDecl
	ns, _ := tmpl.Parent.(*il.Namespace)
	r := s.buildRoutine(fd, nil, ns, ast.NoAccess, "C++", b)
	r.Name = name
	r.IsInstantiation = true
	r.Origin = tmpl
	r.Bindings = b
	tmpl.RoutineInsts = append(tmpl.RoutineInsts, r)
	s.useRoutine(r)
	return r
}
