package sema_test

import (
	"strings"
	"testing"

	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/sema"
	"pdt/internal/il"
)

func TestTypedefsAtAllScopes(t *testing.T) {
	u := compile(t, `
typedef unsigned long size_type;
typedef int *int_ptr;
typedef double matrix_t[4];
namespace util {
    typedef size_type count_t;
}
class Holder {
public:
    typedef int value_type;
    value_type get() const { return v; }
private:
    value_type v;
};
size_type g1;
util::count_t g2;
Holder::value_type g3;
int_ptr g4;
matrix_t g5;
`, nil)
	findVarType := func(name string) *il.Type {
		for _, v := range u.Global.Vars {
			if v.Name == name {
				return v.Type
			}
		}
		t.Fatalf("global %s missing", name)
		return nil
	}
	if findVarType("g1").Kind != il.TULong {
		t.Errorf("g1 = %v", findVarType("g1"))
	}
	if findVarType("g2").Kind != il.TULong {
		t.Errorf("g2 (via nested typedef) = %v", findVarType("g2"))
	}
	if findVarType("g3").Kind != il.TInt {
		t.Errorf("g3 (class-scoped typedef) = %v", findVarType("g3"))
	}
	if g4 := findVarType("g4"); g4.Kind != il.TPtr || g4.Elem.Kind != il.TInt {
		t.Errorf("g4 = %v", g4)
	}
	if g5 := findVarType("g5"); g5.Kind != il.TArray || g5.ArrayLen != 4 {
		t.Errorf("g5 = %v", g5)
	}
	if len(u.AllTypedefs) != 5 {
		t.Errorf("typedefs recorded = %d", len(u.AllTypedefs))
	}
}

func TestSizeofInConstantExpressions(t *testing.T) {
	u := compile(t, `
int a[sizeof(int)];
int b[sizeof(double) + sizeof(char)];
template <class T, int N> class Fixed { T d[N]; };
Fixed<char, sizeof(long)> f;
`, nil)
	vt := func(name string) *il.Type {
		for _, v := range u.Global.Vars {
			if v.Name == name {
				return v.Type.Unqualified()
			}
		}
		t.Fatalf("missing %s", name)
		return nil
	}
	if vt("a").ArrayLen != 4 {
		t.Errorf("a len = %d", vt("a").ArrayLen)
	}
	if vt("b").ArrayLen != 9 {
		t.Errorf("b len = %d", vt("b").ArrayLen)
	}
	if u.LookupClass("Fixed<char, 8>") == nil {
		t.Error("sizeof in template args failed")
	}
}

func TestConstExprOperators(t *testing.T) {
	// Exercise the full constant-expression evaluator through array
	// bounds.
	u := compile(t, `
enum { BASE = 3 };
const int K = 5;
int a[(BASE * K + 1) % 7];       // 16 % 7 = 2
int b[(1 << 4) | 3];             // 19
int c[~(-3) & 7];                // 2 & 7 = 2
int d[BASE > 2 ? 10 : 20];       // 10
int e[(BASE == 3) + (K != 5)];   // 1
int f[-(-6) / 2];                // 3
`, nil)
	want := map[string]int64{"a": 2, "b": 19, "c": 2, "d": 10, "e": 1, "f": 3}
	for _, v := range u.Global.Vars {
		if w, ok := want[v.Name]; ok {
			if got := v.Type.Unqualified().ArrayLen; got != w {
				t.Errorf("%s bound = %d, want %d", v.Name, got, w)
			}
		}
	}
}

func TestQualifiedTypeResolution(t *testing.T) {
	u := compile(t, `
namespace lib {
    class Widget { public: int id; };
    namespace detail {
        class Gear { public: int teeth; };
    }
    typedef Widget W;
}
lib::Widget w1;
lib::detail::Gear g1;
lib::W w2;
::lib::Widget w3;
`, nil)
	for _, name := range []string{"w1", "g1", "w2", "w3"} {
		found := false
		for _, v := range u.Global.Vars {
			if v.Name == name && v.Type.Unqualified().Kind == il.TClass {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not resolved to a class type", name)
		}
	}
}

func TestQualifiedTemplateInNamespace(t *testing.T) {
	u := compile(t, `
namespace geo {
    template <class T> class Point { public: T x; T y; };
}
geo::Point<double> origin;
`, nil)
	if u.LookupClass("Point<double>") == nil {
		t.Error("namespace-qualified template-id not instantiated")
	}
}

func TestExternCLinkage(t *testing.T) {
	u := compile(t, `
extern "C" {
    int c_add(int a, int b);
    int c_global;
}
extern "C" void c_single(void);
`, nil)
	add := findRoutine(t, u, "c_add")
	if add.Linkage != "C" {
		t.Errorf("c_add linkage = %q", add.Linkage)
	}
	single := findRoutine(t, u, "c_single")
	if single.Linkage != "C" {
		t.Errorf("c_single linkage = %q", single.Linkage)
	}
	foundVar := false
	for _, v := range u.Global.Vars {
		if v.Name == "c_global" {
			foundVar = true
		}
	}
	if !foundVar {
		t.Error("extern \"C\" variable lost")
	}
}

func TestStaticMemberOutOfLineDefinition(t *testing.T) {
	u := compile(t, `
class Registry {
public:
    static int count;
    static double factor;
};
int Registry::count = 7;
double Registry::factor = 2.5;
`, nil)
	reg := findClass(t, u, "Registry")
	for _, m := range reg.Members {
		if m.Init == nil {
			t.Errorf("static member %s has no initializer attached", m.Name)
		}
	}
}

func TestConversionOperatorSema(t *testing.T) {
	u := compile(t, `
class Fraction {
public:
    Fraction(int n, int d) : num(n), den(d) { }
    operator double() const { return (double) num / den; }
private:
    int num, den;
};
`, nil)
	frac := findClass(t, u, "Fraction")
	var conv *il.Routine
	for _, m := range frac.Methods {
		if m.Kind == ast.Conversion {
			conv = m
		}
	}
	if conv == nil {
		t.Fatal("conversion operator not collected")
	}
	if conv.Ret.Kind != il.TDouble {
		t.Errorf("conversion target = %v", conv.Ret)
	}
}

func TestFreeOperatorTwoClassArgs(t *testing.T) {
	u := compile(t, `
class V { public: V(int a) : x(a) { } int x; };
V operator+(const V & l, const V & r) { return V(l.x + r.x); }
int use() {
    V a(1), b(2);
    V c = a + b;
    return c.x;
}
`, nil)
	use := findRoutine(t, u, "use")
	foundOp := false
	for _, cs := range use.Calls {
		if cs.Callee.Name == "operator+" && cs.Callee.Class == nil {
			foundOp = true
		}
	}
	if !foundOp {
		t.Errorf("free operator+ not recorded: %+v", use.Calls)
	}
}

func TestDeductionPatterns(t *testing.T) {
	u := compile(t, `
#include <vector>
template <class T> int byValue(T v) { return 1; }
template <class T> int byConstRef(const T & v) { return 2; }
template <class T> int byPtr(T *p) { return 3; }
template <class T> int fromVector(const vector<T> & v) { return 4; }
template <class T, int N> int fromArray(const Arr<T, N> & a) { return 5; }
template <class T, int N> class Arr { public: T d[N]; };
int main() {
    int x = 5;
    vector<double> vd;
    Arr<char, 9> ac;
    return byValue(x) + byConstRef(x) + byPtr(&x) + fromVector(vd) + fromArray(ac);
}
`, nil)
	wantInsts := []string{
		"byValue<int>", "byConstRef<int>", "byPtr<int>",
		"fromVector<double>", "fromArray<char, 9>",
	}
	have := map[string]bool{}
	for _, r := range u.AllRoutines {
		if r.IsInstantiation {
			have[r.Name] = true
		}
	}
	for _, w := range wantInsts {
		if !have[w] {
			t.Errorf("deduction missed %s; have %v", w, have)
		}
	}
}

func TestDiamondInheritance(t *testing.T) {
	u := compile(t, `
class Top { public: int t; };
class Left : public Top { public: int l; };
class Right : public Top { public: int r; };
class Bottom : public Left, public Right { public: int b; };
`, nil)
	bottom := findClass(t, u, "Bottom")
	if len(bottom.Bases) != 2 {
		t.Fatalf("bases = %d", len(bottom.Bases))
	}
	all := bottom.AllBases(nil)
	// Left, Top, Right, Top — the diamond is visible in the base walk.
	if len(all) != 4 {
		t.Errorf("AllBases = %d", len(all))
	}
	if !bottom.DerivesFrom(findClass(t, u, "Top")) {
		t.Error("DerivesFrom through diamond")
	}
}

func TestPureVirtualAndAbstract(t *testing.T) {
	u := compile(t, `
class Shape {
public:
    virtual double area() const = 0;
    virtual ~Shape() { }
};
class Square : public Shape {
public:
    Square(double s) : side(s) { }
    double area() const { return side * side; }
private:
    double side;
};
double measure(const Shape & s) { return s.area(); }
int main() {
    Square sq(3);
    return (int) measure(sq);
}
`, nil)
	area := findRoutine(t, u, "Shape::area")
	if !area.PureVirtual {
		t.Error("pure virtual flag lost")
	}
	measure := findRoutine(t, u, "measure")
	if len(measure.Calls) != 1 || !measure.Calls[0].Virtual {
		t.Errorf("virtual call through const ref: %+v", measure.Calls)
	}
}

func TestUsingDirectiveLookup(t *testing.T) {
	u := compile(t, `
namespace math {
    double pi() { return 3.14159; }
    class Angle { public: double rad; };
}
using namespace math;
double area(double r) { return pi() * r * r; }
Angle globalAngle;
`, nil)
	area := findRoutine(t, u, "area")
	if len(area.Calls) != 1 || area.Calls[0].Callee.QualifiedName() != "math::pi" {
		t.Errorf("using-directive call resolution: %+v", area.Calls)
	}
	found := false
	for _, v := range u.Global.Vars {
		if v.Name == "globalAngle" && v.Type.Unqualified().Kind == il.TClass {
			found = true
		}
	}
	if !found {
		t.Error("using-directive type resolution failed")
	}
}

func TestNamespaceAlias(t *testing.T) {
	u := compile(t, `
namespace verylongname {
    int f() { return 1; }
}
namespace vl = verylongname;
int main() { return vl::f(); }
`, nil)
	mainR := findRoutine(t, u, "main")
	if len(mainR.Calls) != 1 || mainR.Calls[0].Callee.QualifiedName() != "verylongname::f" {
		t.Errorf("alias call: %+v", mainR.Calls)
	}
}

func TestReopenedNamespace(t *testing.T) {
	u := compile(t, `
namespace app { int first() { return 1; } }
namespace app { int second() { return first() + 1; } }
`, nil)
	if len(u.Global.Namespaces) != 1 {
		t.Fatalf("namespaces = %d (reopen must merge)", len(u.Global.Namespaces))
	}
	second := findRoutine(t, u, "app::second")
	if len(second.Calls) != 1 {
		t.Errorf("cross-reopening call: %+v", second.Calls)
	}
}

func TestInstantiationDepthLimit(t *testing.T) {
	res := compileRes(t, `
template <class T> class Wrap { public: Wrap<Wrap<T> > *next; };
int main() { Wrap<int> w; return 0; }
`, nil, sema.Used)
	// Recursive wrapping through a pointer member must not hang; it
	// either resolves lazily or reports the depth limit.
	_ = res
}

func TestRedefinitionDiagnosed(t *testing.T) {
	res := compileRes(t, `
class C { public: int a; };
class C { public: int b; };
`, nil, sema.Used)
	if !res.HasErrors() {
		t.Error("class redefinition not diagnosed")
	}
	found := false
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Msg, "redefinition") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics = %v", res.Diagnostics)
	}
}

func TestUnknownTemplateDiagnosed(t *testing.T) {
	res := compileRes(t, "NotATemplate<int> x;\n", nil, sema.Used)
	if !res.HasErrors() {
		t.Error("unknown template not diagnosed")
	}
}

func TestTooFewTemplateArgsDiagnosed(t *testing.T) {
	res := compileRes(t, `
template <class A, class B> class Pair { A a; B b; };
Pair<int> p;
`, nil, sema.Used)
	if !res.HasErrors() {
		t.Error("missing template argument not diagnosed")
	}
}
