// Package sema implements the semantic analysis of the PDT frontend:
// scope construction, name lookup, type resolution, and — centrally for
// the paper — template instantiation. It lowers the parse tree into the
// IL (internal/il) consumed by the IL Analyzer, the interpreter, and
// every downstream tool.
//
// Instantiation follows the EDG "used" mode the paper selects (§2):
// class templates are instantiated when first used; member functions of
// instantiated class templates are instantiated only when they are
// themselves used (called, referenced, or explicitly instantiated).
// An eager mode ("all") is also provided for the B2 ablation benchmark.
package sema

import (
	"fmt"

	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// InstantiationMode selects the template instantiation strategy.
type InstantiationMode int

const (
	// Used instantiates member functions only when used (EDG "used"
	// mode, the paper's choice).
	Used InstantiationMode = iota
	// Eager instantiates every member function of every instantiated
	// class template (EDG automatic/"all" style).
	Eager
)

// Options configure the analysis.
type Options struct {
	Mode InstantiationMode
	// MaxInstantiationDepth bounds recursive instantiation.
	MaxInstantiationDepth int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Mode: Used, MaxInstantiationDepth: 64}
}

// Error is a semantic diagnostic.
type Error struct {
	Loc source.Loc
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Loc, e.Msg) }

// Sema analyzes one translation unit.
type Sema struct {
	unit *il.Unit
	opts Options
	errs []*Error

	// scope state during collection
	nsStack    []*il.Namespace
	classStack []*il.Class
	usingNS    []*il.Namespace

	// template member definitions seen out-of-line, keyed by template.
	memberDefs map[*il.Template]map[string][]*ast.FunctionDecl

	// memberTemplates maps a class template to the il.Template entities
	// of its member functions (PDB memfunc/statmem items).
	memberTemplates map[*il.Template]map[string]*il.Template

	// instantiation caches
	classInsts map[string]*il.Class // key: qualified instantiated name

	// pending routine bodies to analyze (worklist; avoids unbounded
	// recursion while instantiating).
	pending  []*il.Routine
	analyzed map[*il.Routine]bool

	depth int

	// enumerators visible at namespace scope, for constant evaluation.
	enumConsts map[string]int64
}

// New returns an analyzer producing into a fresh unit for main.
func New(main *source.File, opts Options) *Sema {
	return &Sema{
		unit:       il.NewUnit(main),
		opts:       opts,
		memberDefs: map[*il.Template]map[string][]*ast.FunctionDecl{},
		classInsts: map[string]*il.Class{},
		analyzed:   map[*il.Routine]bool{},
		enumConsts: map[string]int64{},
	}
}

// Unit returns the IL unit under construction.
func (s *Sema) Unit() *il.Unit { return s.unit }

// Errors returns accumulated diagnostics.
func (s *Sema) Errors() []*Error { return s.errs }

func (s *Sema) errorf(loc source.Loc, format string, args ...interface{}) {
	if len(s.errs) < 100 {
		s.errs = append(s.errs, &Error{Loc: loc, Msg: fmt.Sprintf(format, args...)})
	}
}

// Analyze performs the full analysis of a parsed translation unit and
// returns the IL.
func (s *Sema) Analyze(tu *ast.TranslationUnit) *il.Unit {
	s.unit.AddFile(tu.File)
	s.collectFiles(tu.File)
	s.nsStack = []*il.Namespace{s.unit.Global}
	s.collectDecls(tu.Decls, ast.NoAccess)
	s.drainPending()
	return s.unit
}

// collectFiles records the include closure in first-visit order.
func (s *Sema) collectFiles(f *source.File) {
	s.unit.AddFile(f)
	for _, inc := range f.Includes {
		already := false
		for _, e := range s.unit.Files {
			if e == inc {
				already = true
				break
			}
		}
		s.unit.AddFile(inc)
		if !already {
			s.collectFiles(inc)
		}
	}
}

// currentNS returns the namespace being collected into.
func (s *Sema) currentNS() *il.Namespace { return s.nsStack[len(s.nsStack)-1] }

// currentClass returns the class being collected into, or nil.
func (s *Sema) currentClass() *il.Class {
	if len(s.classStack) == 0 {
		return nil
	}
	return s.classStack[len(s.classStack)-1]
}

// currentScope returns the innermost scope (class or namespace).
func (s *Sema) currentScope() il.Scope {
	if c := s.currentClass(); c != nil {
		return c
	}
	return s.currentNS()
}

// drainPending analyzes queued routine bodies until quiescent. Body
// analysis may instantiate templates, which queues more bodies.
func (s *Sema) drainPending() {
	for len(s.pending) > 0 {
		r := s.pending[0]
		s.pending = s.pending[1:]
		if s.analyzed[r] {
			continue
		}
		s.analyzed[r] = true
		s.analyzeBody(r)
	}
}

// queueBody schedules a routine's body for analysis.
func (s *Sema) queueBody(r *il.Routine) {
	if r == nil || s.analyzed[r] {
		return
	}
	s.pending = append(s.pending, r)
}

// Stats summarizes instantiation work, used by the B2 benchmark and by
// cxxparse's -v output.
type Stats struct {
	Classes        int
	Routines       int
	ClassInsts     int
	RoutineInsts   int
	BodiesAnalyzed int
	Types          int
}

// Stats returns analysis statistics.
func (s *Sema) Stats() Stats {
	st := Stats{
		Classes:  len(s.unit.AllClasses),
		Routines: len(s.unit.AllRoutines),
		Types:    s.unit.Types.Len(),
	}
	for _, c := range s.unit.AllClasses {
		if c.IsInstantiation {
			st.ClassInsts++
		}
	}
	for _, r := range s.unit.AllRoutines {
		if r.IsInstantiation {
			st.RoutineInsts++
		}
	}
	st.BodiesAnalyzed = len(s.analyzed)
	return st
}
