package sema

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// collectFunction lowers a namespace-scope function declaration or
// definition: free functions, free function templates, and out-of-line
// member definitions (both plain and templated).
func (s *Sema) collectFunction(fd *ast.FunctionDecl, access ast.Access, linkage string, friend bool) {
	if friend {
		if c := s.currentClass(); c != nil {
			c.Friends = append(c.Friends, il.Friend{Name: fd.Name.String(), Loc: fd.Name.Loc()})
		}
		// A friend definition also introduces a namespace-scope
		// function.
		if fd.Body == nil {
			return
		}
	}

	if fd.Template != nil && !fd.Template.IsSpecialization() {
		if len(fd.Name.Segs) > 1 {
			s.collectTemplateMemberDef(fd)
			return
		}
		s.collectFunctionTemplate(fd, access)
		return
	}

	if len(fd.Name.Segs) > 1 {
		s.collectOutOfLineDef(fd)
		return
	}

	// Plain free function: merge a prior declaration when this is the
	// definition.
	ns := s.currentNS()
	name := fd.Name.Terminal().Name
	if fd.Body != nil {
		for _, r := range ns.Routines {
			if r.Name == name && !r.HasBody && len(r.Params) == len(fd.Params) {
				r.Decl = fd
				r.HasBody = true
				r.Loc = fd.Name.Terminal().Loc
				r.Header = fd.Header
				r.BodySpan = fd.Body2
				s.queueBody(r)
				return
			}
		}
	}
	r := s.buildRoutine(fd, nil, ns, access, linkage, nil)
	if r.HasBody {
		s.queueBody(r)
	}
}

// collectFunctionTemplate registers a free function template.
func (s *Sema) collectFunctionTemplate(fd *ast.FunctionDecl, access ast.Access) {
	ns := s.currentNS()
	name := fd.Name.Terminal().Name
	// Merge declaration/definition pairs.
	for _, t := range ns.Templates {
		if t.Name == name && t.Kind == il.TemplFunc {
			if fd.Body != nil && (t.FuncDecl == nil || t.FuncDecl.Body == nil) {
				t.FuncDecl = fd
				t.Text = fd.Template.Text
				t.Header = fd.Header
				t.Body = fd.Body2
			}
			return
		}
	}
	t := &il.Template{
		Name: name, Kind: il.TemplFunc, Parent: ns, Access: access,
		Loc: fd.Name.Terminal().Loc, Header: fd.Header, Body: fd.Body2,
		Text: fd.Template.Text, Params: fd.Template.Params, FuncDecl: fd,
	}
	s.registerTemplate(t)
	s.unit.SuppLocs[t] = source.Span{Begin: fd.Header.Begin, End: fd.Body2.End}
}

// collectTemplateMemberDef records an out-of-line member definition of
// a class template ("template<class T> void Stack<T>::push(...)"),
// updating the corresponding member-template entity to point at the
// definition (as the EDG IL does — Figure 3's te#566).
func (s *Sema) collectTemplateMemberDef(fd *ast.FunctionDecl) {
	ownerSeg := fd.Name.Segs[len(fd.Name.Segs)-2]
	memberName := fd.Name.Terminal().Name
	tmpl := s.lookupTemplateByName(ownerSeg.Name)
	if tmpl == nil {
		s.errorf(ownerSeg.Loc, "out-of-line member of unknown class template %s", ownerSeg.Name)
		return
	}
	defs := s.memberDefs[tmpl]
	if defs == nil {
		defs = map[string][]*ast.FunctionDecl{}
		s.memberDefs[tmpl] = defs
	}
	defs[memberName] = append(defs[memberName], fd)

	mt := s.lookupMemberTemplate(tmpl, memberName)
	if mt == nil {
		kind := il.TemplMemFunc
		if fd.Storage == ast.Static {
			kind = il.TemplStatMem
		}
		mt = &il.Template{Name: memberName, Kind: kind, Parent: tmpl.Parent,
			Params: fd.Template.Params, FuncDecl: fd}
		s.registerTemplate(mt)
		s.memberTemplate(tmpl, memberName, mt)
	}
	mt.Loc = fd.Name.Terminal().Loc
	mt.Header = fd.Header
	mt.Body = fd.Body2
	mt.Text = fd.Template.Text
	mt.FuncDecl = fd
	s.unit.SuppLocs[mt] = source.Span{Begin: fd.Header.Begin, End: fd.Body2.End}
}

// collectOutOfLineDef attaches "bool Stack::isFull() const { ... }"
// (non-template) to its class method or namespace routine.
func (s *Sema) collectOutOfLineDef(fd *ast.FunctionDecl) {
	prefix := fd.Name
	prefix.Segs = prefix.Segs[:len(prefix.Segs)-1]
	memberName := fd.Name.Terminal().Name

	// Try a class first (including instantiations/specializations named
	// with template-ids, e.g. "Stack<int>::push").
	clsName := prefix.String()
	if c := s.unit.LookupClass(clsName); c != nil {
		for _, m := range c.Methods {
			if m.Name == memberName && len(m.Params) == paramCount(fd) && m.Const == fd.Const {
				s.attachDefinition(m, fd)
				return
			}
		}
		// Arity-relaxed second pass (default arguments).
		for _, m := range c.Methods {
			if m.Name == memberName {
				s.attachDefinition(m, fd)
				return
			}
		}
		s.errorf(fd.Name.Loc(), "no member %s declared in %s", memberName, clsName)
		return
	}
	// Then a namespace-qualified free function.
	if ns := s.lookupNamespace(prefix); ns != nil {
		for _, r := range ns.Routines {
			if r.Name == memberName && len(r.Params) == paramCount(fd) {
				s.attachDefinition(r, fd)
				return
			}
		}
		s.nsStack = append(s.nsStack, ns)
		r := s.buildRoutine(fd, nil, ns, ast.NoAccess, "C++", nil)
		s.nsStack = s.nsStack[:len(s.nsStack)-1]
		if r.HasBody {
			s.queueBody(r)
		}
		return
	}
	s.errorf(fd.Name.Loc(), "cannot resolve qualified definition %s", fd.Name.String())
}

func paramCount(fd *ast.FunctionDecl) int {
	n := 0
	for _, p := range fd.Params {
		if !p.Ellipsis {
			n++
		}
	}
	return n
}

// attachDefinition merges an out-of-line definition into a declared
// routine: the routine's reported location moves to the definition, as
// in the paper's Figure 3 (ro#7 push located at StackAr.cpp).
func (s *Sema) attachDefinition(r *il.Routine, fd *ast.FunctionDecl) {
	if fd.Body == nil {
		return
	}
	r.Decl = fd
	r.HasBody = true
	r.Loc = fd.Name.Terminal().Loc
	r.Header = fd.Header
	r.BodySpan = fd.Body2
	s.queueBody(r)
}

// buildRoutine creates an il.Routine from a declaration, resolving its
// signature under bindings b. It registers the routine with its class
// or namespace and the unit.
func (s *Sema) buildRoutine(fd *ast.FunctionDecl, c *il.Class, ns *il.Namespace, access ast.Access, linkage string, b bindings) *il.Routine {
	tt := s.unit.Types
	r := &il.Routine{
		Name: fd.Name.Terminal().Name, Kind: fd.Kind, Class: c,
		Namespace: ns, Access: access,
		Loc:    fd.Name.Terminal().Loc,
		Header: fd.Header, BodySpan: fd.Body2,
		Virtual: fd.Virtual, PureVirtual: fd.PureVirtual,
		Static: fd.Storage == ast.Static, Inline: fd.Inline,
		Const: fd.Const, Explicit: fd.Explicit,
		Linkage: linkage, Storage: fd.Storage,
		Decl: fd, HasBody: fd.Body != nil && (c == nil || !c.IsInstantiation),
		Bindings: b,
	}
	if c != nil && c.IsInstantiation {
		r.IsInstantiation = true
		if c.Origin != nil {
			r.Origin = s.lookupMemberTemplate(c.Origin, r.Name)
		}
	}

	// Return type: constructors/destructors have none; conversions
	// return their target type.
	var ret *il.Type
	switch fd.Kind {
	case ast.Constructor, ast.Destructor:
		ret = tt.Builtin(il.TVoid)
	default:
		if fd.Ret != nil {
			ret = s.resolveType(fd.Ret, b)
		} else {
			ret = tt.Builtin(il.TInt) // implicit int (pre-standard tolerance)
		}
	}
	r.Ret = ret

	var paramTypes []*il.Type
	variadic := false
	for _, p := range fd.Params {
		if p.Ellipsis {
			variadic = true
			continue
		}
		pt := s.resolveType(p.Type, b)
		paramTypes = append(paramTypes, pt)
		r.Params = append(r.Params, &il.Var{Name: p.Name, Type: pt,
			Loc: p.NameLoc, Default: p.Default, Kind: "param"})
	}
	r.Signature = tt.Func(ret, paramTypes, variadic, fd.Const)

	// A method overriding a virtual base method is itself virtual.
	if c != nil && !r.Virtual {
		for _, base := range c.AllBases(nil) {
			for _, m := range base.Methods {
				if m.Name == r.Name && m.Virtual && len(m.Params) == len(r.Params) {
					r.Virtual = true
				}
			}
		}
	}

	if c != nil {
		c.Methods = append(c.Methods, r)
	} else if ns != nil {
		ns.Routines = append(ns.Routines, r)
	}
	s.unit.AddRoutine(r)
	return r
}

// resolveClassBody lowers the members of a class definition (plain,
// specialization, or instantiation under bindings b).
func (s *Sema) resolveClassBody(c *il.Class, d *ast.ClassDecl, b bindings) {
	// Bases.
	for _, base := range d.Bases {
		bt := s.resolveNamedType(base.Name, b, nil)
		u := bt.Unqualified()
		if u.Kind != il.TClass || u.Class == nil {
			s.errorf(base.Name.Loc(), "base %s of %s is not a class",
				base.Name.String(), c.Name)
			continue
		}
		if !u.Class.Complete {
			s.errorf(base.Name.Loc(), "base class %s is incomplete", u.Class.Name)
		}
		c.Bases = append(c.Bases, il.Base{Class: u.Class, Access: base.Access,
			Virtual: base.Virtual, Loc: base.Name.Loc()})
	}

	s.classStack = append(s.classStack, c)
	defer func() { s.classStack = s.classStack[:len(s.classStack)-1] }()

	for _, m := range d.Members {
		switch md := m.Decl.(type) {
		case *ast.FunctionDecl:
			if m.Friend {
				c.Friends = append(c.Friends, il.Friend{Name: md.Name.String(), Loc: md.Name.Loc()})
				continue
			}
			if md.Template != nil && !md.Template.IsSpecialization() {
				// Member function template of a plain class.
				kind := il.TemplMemFunc
				if md.Storage == ast.Static {
					kind = il.TemplStatMem
				}
				t := &il.Template{Name: md.Name.Terminal().Name, Kind: kind,
					Parent: c, Access: m.Access, Loc: md.Name.Terminal().Loc,
					Header: md.Header, Body: md.Body2,
					Text: md.Template.Text, Params: md.Template.Params, FuncDecl: md}
				s.registerTemplate(t)
				continue
			}
			r := s.buildRoutine(md, c, nil, m.Access, "C++", b)
			if !c.IsInstantiation && r.HasBody {
				s.queueBody(r)
			}
		case *ast.VarDecl:
			s.addDataMember(c, md, m.Access, b)
		case *ast.DeclGroup:
			for _, inner := range md.Decls {
				if vd, ok := inner.(*ast.VarDecl); ok {
					s.addDataMember(c, vd, m.Access, b)
				}
			}
		case *ast.EnumDecl:
			s.collectEnum(md, m.Access)
		case *ast.TypedefDecl:
			s.collectTypedefIn(c, md, m.Access, b)
		case *ast.ClassDecl:
			if m.Friend {
				c.Friends = append(c.Friends, il.Friend{Name: md.Name, Loc: md.NameLoc})
				continue
			}
			if b != nil {
				s.errorf(md.NameLoc, "nested classes inside class templates are not supported")
				continue
			}
			s.collectClass(md, m.Access, false)
		case *ast.UsingDecl:
			// no lowering needed
		}
	}
}

func (s *Sema) addDataMember(c *il.Class, vd *ast.VarDecl, access ast.Access, b bindings) {
	if vd.Name == "" {
		return
	}
	ty := s.resolveType(vd.Type, b)
	v := &il.Var{Name: vd.Name, Type: ty, Loc: vd.NameLoc, Access: access,
		Storage: vd.Storage, Class: c, Init: vd.Init, Kind: "var"}
	c.Members = append(c.Members, v)
	s.unit.AllVars = append(s.unit.AllVars, v)
}

func (s *Sema) collectTypedefIn(c *il.Class, d *ast.TypedefDecl, access ast.Access, b bindings) {
	ty := s.resolveType(d.Type, b)
	td := &il.Typedef{Name: d.Name, Type: ty, Parent: c, Access: access, Loc: d.NameLoc}
	c.Typedefs = append(c.Typedefs, td)
	s.unit.AllTypedefs = append(s.unit.AllTypedefs, td)
}
