// Package pp implements the C++ preprocessor of the PDT frontend. It
// executes #include/#define/#undef and the conditional directives,
// expands object- and function-like macros with correct hide-set
// handling, and produces the logical token stream consumed by the
// parser. It also records every macro definition and undefinition so
// the IL Analyzer can emit the PDB MACRO items of Table 1.
package pp

import (
	"fmt"
	"strconv"
	"strings"

	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

const maxIncludeDepth = 200

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	IsFunc   bool
	Params   []string
	Body     []lex.Token
	Loc      source.Loc
	Builtin  bool
	Intrinse func(loc source.Loc) []lex.Token // dynamic builtins (__LINE__ ...)
}

// Text renders the macro's definition text for the PDB "mtext"
// attribute, in the same style as the paper's Figure 3 template text.
func (m *Macro) Text() string {
	var sb strings.Builder
	sb.WriteString(m.Name)
	if m.IsFunc {
		sb.WriteByte('(')
		sb.WriteString(strings.Join(m.Params, ", "))
		sb.WriteByte(')')
	}
	body := lex.Stringify(m.Body)
	if body != "" {
		sb.WriteByte(' ')
		sb.WriteString(body)
	}
	return sb.String()
}

// RecordKind distinguishes PDB macro records.
type RecordKind int

const (
	// Define records a #define.
	Define RecordKind = iota
	// Undef records an #undef.
	Undef
)

// Record is one macro event, reported to the program database.
type Record struct {
	Kind  RecordKind
	Name  string
	Text  string
	Loc   source.Loc
	Macro *Macro // nil for Undef
}

// Error is a preprocessing diagnostic.
type Error struct {
	Loc source.Loc
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Loc, e.Msg) }

// Preprocessor holds the macro table and accumulates output tokens and
// macro records across a whole translation unit.
type Preprocessor struct {
	fs     *source.FileSet
	macros map[string]*Macro

	// Records lists macro definitions/undefinitions in source order.
	Records []Record

	out   []lex.Token
	errs  []*Error
	once  map[*source.File]bool
	depth int
}

// New returns a preprocessor over the file set, with the standard
// predefined macros installed.
func New(fs *source.FileSet) *Preprocessor {
	p := &Preprocessor{
		fs:     fs,
		macros: make(map[string]*Macro),
		once:   make(map[*source.File]bool),
	}
	p.predefine("__cplusplus", "199711L")
	p.predefine("__PDT__", "1")
	p.macros["__FILE__"] = &Macro{Name: "__FILE__", Builtin: true,
		Intrinse: func(loc source.Loc) []lex.Token {
			name := "<unknown>"
			if loc.File != nil {
				name = loc.File.Name
			}
			return []lex.Token{{Kind: lex.StringLit, Text: lex.Quote(name), Loc: loc}}
		}}
	p.macros["__LINE__"] = &Macro{Name: "__LINE__", Builtin: true,
		Intrinse: func(loc source.Loc) []lex.Token {
			return []lex.Token{{Kind: lex.IntLit, Text: strconv.Itoa(loc.Line), Loc: loc}}
		}}
	return p
}

func (p *Preprocessor) predefine(name, value string) {
	f := p.fs.AddVirtualFile("<predefined>", "")
	toks := tokenizeString(value, source.Loc{File: f, Line: 1, Col: 1})
	p.macros[name] = &Macro{Name: name, Body: toks, Builtin: true}
}

// Define installs a command-line style definition ("NAME" or
// "NAME=value").
func (p *Preprocessor) Define(def string) {
	name, value := def, "1"
	if i := strings.IndexByte(def, '='); i >= 0 {
		name, value = def[:i], def[i+1:]
	}
	p.predefine(name, value)
}

// Errors returns accumulated diagnostics.
func (p *Preprocessor) Errors() []*Error { return p.errs }

// Macros returns the current macro table (primarily for tests).
func (p *Preprocessor) Macros() map[string]*Macro { return p.macros }

func (p *Preprocessor) errorf(loc source.Loc, format string, args ...interface{}) {
	p.errs = append(p.errs, &Error{Loc: loc, Msg: fmt.Sprintf(format, args...)})
}

// tokenizeString lexes a string as if it appeared at loc.
func tokenizeString(s string, loc source.Loc) []lex.Token {
	f := &source.File{Name: "<builtin>", Content: []byte(s)}
	toks, _ := lex.Tokens(f)
	toks = toks[:len(toks)-1] // strip EOF
	for i := range toks {
		toks[i].Loc = loc
	}
	return toks
}

// Process preprocesses the file and returns the complete logical token
// stream for the translation unit, terminated with an EOF token.
func (p *Preprocessor) Process(f *source.File) []lex.Token {
	p.processFile(f)
	eofLoc := source.Loc{File: f, Line: f.NumLines() + 1, Col: 1}
	p.out = append(p.out, lex.Token{Kind: lex.EOF, Loc: eofLoc, StartOfLine: true})
	return p.out
}

// condState tracks one level of conditional nesting.
type condState struct {
	active    bool // tokens in the current branch are emitted
	taken     bool // some branch of this conditional was active
	seenElse  bool
	parentOff bool // an enclosing conditional is inactive
}

func (p *Preprocessor) processFile(f *source.File) {
	if p.once[f] {
		return
	}
	if p.depth >= maxIncludeDepth {
		p.errorf(source.Loc{File: f, Line: 1, Col: 1}, "include depth limit exceeded")
		return
	}
	p.depth++
	defer func() { p.depth-- }()

	raw, lerrs := lex.Tokens(f)
	for _, e := range lerrs {
		p.errs = append(p.errs, &Error{Loc: e.Loc, Msg: e.Msg})
	}

	ts := &stream{toks: raw}
	var conds []condState

	active := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	for {
		t := ts.peek()
		if t.Kind == lex.EOF {
			break
		}
		if t.Kind == lex.Hash && t.StartOfLine {
			ts.next() // '#'
			p.directive(f, ts, &conds, active())
			continue
		}
		if !active() {
			ts.next()
			continue
		}
		p.expandOne(ts, &p.out)
	}
	if len(conds) != 0 {
		p.errorf(source.Loc{File: f, Line: f.NumLines(), Col: 1}, "unterminated conditional directive")
	}
}

// directiveLine collects the remaining tokens of the current directive
// (up to but excluding the first token of the next line).
func directiveLine(ts *stream) []lex.Token {
	var out []lex.Token
	for {
		t := ts.peek()
		if t.Kind == lex.EOF || t.StartOfLine {
			return out
		}
		out = append(out, ts.next())
	}
}

func (p *Preprocessor) directive(f *source.File, ts *stream, conds *[]condState, active bool) {
	nameTok := ts.peek()
	if nameTok.StartOfLine || nameTok.Kind == lex.EOF {
		return // null directive: "#" alone
	}
	name := nameTok.Text
	switch name {
	case "if", "ifdef", "ifndef":
		ts.next()
		line := directiveLine(ts)
		cond := false
		if active {
			switch name {
			case "ifdef", "ifndef":
				if len(line) == 0 || line[0].Kind != lex.Ident && line[0].Kind != lex.Keyword {
					p.errorf(nameTok.Loc, "#%s expects an identifier", name)
				} else {
					_, defined := p.macros[line[0].Text]
					cond = defined == (name == "ifdef")
				}
			case "if":
				cond = p.evalCondition(line, nameTok.Loc)
			}
		}
		*conds = append(*conds, condState{active: cond, taken: cond, parentOff: !active})
	case "elif":
		ts.next()
		line := directiveLine(ts)
		if len(*conds) == 0 {
			p.errorf(nameTok.Loc, "#elif without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		if c.seenElse {
			p.errorf(nameTok.Loc, "#elif after #else")
		}
		if c.parentOff || c.taken {
			c.active = false
		} else {
			c.active = p.evalCondition(line, nameTok.Loc)
			c.taken = c.taken || c.active
		}
	case "else":
		ts.next()
		directiveLine(ts)
		if len(*conds) == 0 {
			p.errorf(nameTok.Loc, "#else without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		if c.seenElse {
			p.errorf(nameTok.Loc, "duplicate #else")
		}
		c.seenElse = true
		c.active = !c.parentOff && !c.taken
		c.taken = true
	case "endif":
		ts.next()
		directiveLine(ts)
		if len(*conds) == 0 {
			p.errorf(nameTok.Loc, "#endif without #if")
			return
		}
		*conds = (*conds)[:len(*conds)-1]
	case "include":
		ts.next()
		line := directiveLine(ts)
		if active {
			p.include(f, line, nameTok.Loc)
		}
	case "define":
		ts.next()
		line := directiveLine(ts)
		if active {
			p.define(line, nameTok.Loc)
		}
	case "undef":
		ts.next()
		line := directiveLine(ts)
		if !active {
			return
		}
		if len(line) == 0 {
			p.errorf(nameTok.Loc, "#undef expects an identifier")
			return
		}
		delete(p.macros, line[0].Text)
		p.Records = append(p.Records, Record{Kind: Undef, Name: line[0].Text, Loc: line[0].Loc})
	case "pragma":
		ts.next()
		line := directiveLine(ts)
		if active && len(line) > 0 && line[0].Text == "once" {
			p.once[f] = true
		}
	case "error":
		ts.next()
		line := directiveLine(ts)
		if active {
			p.errorf(nameTok.Loc, "#error %s", lex.Stringify(line))
		}
	case "warning", "line", "ident":
		ts.next()
		directiveLine(ts)
	default:
		p.errorf(nameTok.Loc, "unknown preprocessor directive #%s", name)
		ts.next()
		directiveLine(ts)
	}
}

func (p *Preprocessor) include(from *source.File, line []lex.Token, loc source.Loc) {
	if len(line) == 0 {
		p.errorf(loc, "#include expects a file name")
		return
	}
	var spelling string
	system := false
	switch {
	case line[0].Kind == lex.StringLit:
		s, err := lex.StringValue(line[0].Text)
		if err != nil {
			p.errorf(line[0].Loc, "bad include: %v", err)
			return
		}
		spelling = s
	case line[0].Kind == lex.Lt:
		system = true
		var sb strings.Builder
		for _, t := range line[1:] {
			if t.Kind == lex.Gt {
				break
			}
			if t.SpaceBefore && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(t.Text)
		}
		spelling = sb.String()
	default:
		p.errorf(line[0].Loc, "bad #include syntax")
		return
	}
	inc, err := p.fs.Resolve(spelling, system, from)
	if err != nil {
		p.errorf(loc, "%v", err)
		return
	}
	already := false
	for _, e := range from.Includes {
		if e == inc {
			already = true
			break
		}
	}
	if !already {
		from.Includes = append(from.Includes, inc)
	}
	p.processFile(inc)
}

func (p *Preprocessor) define(line []lex.Token, loc source.Loc) {
	if len(line) == 0 || (line[0].Kind != lex.Ident && line[0].Kind != lex.Keyword) {
		p.errorf(loc, "#define expects an identifier")
		return
	}
	m := &Macro{Name: line[0].Text, Loc: line[0].Loc}
	rest := line[1:]
	// Function-like only when '(' immediately follows the name.
	if len(rest) > 0 && rest[0].Kind == lex.LParen && !rest[0].SpaceBefore {
		m.IsFunc = true
		i := 1
		for i < len(rest) && rest[i].Kind != lex.RParen {
			if rest[i].Kind == lex.Ident || rest[i].Kind == lex.Keyword {
				m.Params = append(m.Params, rest[i].Text)
			} else if rest[i].Kind != lex.Comma {
				p.errorf(rest[i].Loc, "bad macro parameter list")
			}
			i++
		}
		if i >= len(rest) {
			p.errorf(loc, "unterminated macro parameter list")
			return
		}
		rest = rest[i+1:]
	}
	m.Body = append([]lex.Token(nil), rest...)
	p.macros[m.Name] = m
	p.Records = append(p.Records, Record{Kind: Define, Name: m.Name, Text: m.Text(), Loc: m.Loc, Macro: m})
}
