package pp

import (
	"strings"

	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

// stream is a token cursor with pushback, used both for file streams and
// for macro-expansion rescanning.
type stream struct {
	pushed []lex.Token
	toks   []lex.Token
	pos    int
}

func (s *stream) peek() lex.Token {
	if n := len(s.pushed); n > 0 {
		return s.pushed[n-1]
	}
	if s.pos < len(s.toks) {
		return s.toks[s.pos]
	}
	return lex.Token{Kind: lex.EOF}
}

func (s *stream) next() lex.Token {
	if n := len(s.pushed); n > 0 {
		t := s.pushed[n-1]
		s.pushed = s.pushed[:n-1]
		return t
	}
	if s.pos < len(s.toks) {
		t := s.toks[s.pos]
		s.pos++
		return t
	}
	return lex.Token{Kind: lex.EOF}
}

// push prepends toks so they are read next, before the rest of the
// stream (used to rescan macro expansions).
func (s *stream) push(toks []lex.Token) {
	for i := len(toks) - 1; i >= 0; i-- {
		s.pushed = append(s.pushed, toks[i])
	}
}

// expandOne reads one token from ts; if it begins a macro invocation the
// expansion is pushed back for rescanning, otherwise the token is
// appended to out.
func (p *Preprocessor) expandOne(ts *stream, out *[]lex.Token) {
	t := ts.next()
	if t.Kind != lex.Ident && t.Kind != lex.Keyword {
		*out = append(*out, t)
		return
	}
	m, ok := p.macros[t.Text]
	if !ok || t.HideSet.Contains(t.Text) {
		*out = append(*out, t)
		return
	}
	if m.Intrinse != nil {
		repl := m.Intrinse(t.Loc)
		for i := range repl {
			repl[i].HideSet = t.HideSet.With(m.Name)
		}
		ts.push(repl)
		return
	}
	if !m.IsFunc {
		repl := p.substitute(m, nil, t)
		ts.push(repl)
		return
	}
	// Function-like: expands only when followed by '('.
	if ts.peek().Kind != lex.LParen {
		*out = append(*out, t)
		return
	}
	args, ok2 := p.gatherArgs(ts, m, t.Loc)
	if !ok2 {
		*out = append(*out, t)
		return
	}
	repl := p.substitute(m, args, t)
	ts.push(repl)
}

// gatherArgs consumes "( a, b, ... )" splitting at top-level commas.
func (p *Preprocessor) gatherArgs(ts *stream, m *Macro, loc source.Loc) ([][]lex.Token, bool) {
	ts.next() // '('
	var args [][]lex.Token
	var cur []lex.Token
	depth := 0
	for {
		t := ts.next()
		switch {
		case t.Kind == lex.EOF:
			p.errorf(loc, "unterminated invocation of macro %s", m.Name)
			return nil, false
		case t.Kind == lex.LParen || t.Kind == lex.LBracket || t.Kind == lex.LBrace:
			depth++
			cur = append(cur, t)
		case t.Kind == lex.RBracket || t.Kind == lex.RBrace:
			depth--
			cur = append(cur, t)
		case t.Kind == lex.RParen:
			if depth == 0 {
				args = append(args, cur)
				// f() with no params: zero args.
				if len(m.Params) == 0 && len(args) == 1 && len(args[0]) == 0 {
					args = nil
				}
				if len(args) != len(m.Params) {
					p.errorf(loc, "macro %s expects %d arguments, got %d", m.Name, len(m.Params), len(args))
					// Continue anyway with what we have, padding.
					for len(args) < len(m.Params) {
						args = append(args, nil)
					}
				}
				return args, true
			}
			depth--
			cur = append(cur, t)
		case t.Kind == lex.Comma && depth == 0:
			args = append(args, cur)
			cur = nil
		default:
			cur = append(cur, t)
		}
	}
}

// expandTokens fully macro-expands a token run (used for macro arguments
// and conditional expressions).
func (p *Preprocessor) expandTokens(toks []lex.Token) []lex.Token {
	ts := &stream{toks: toks}
	var out []lex.Token
	for {
		if ts.peek().Kind == lex.EOF && len(ts.pushed) == 0 {
			return out
		}
		p.expandOne(ts, &out)
	}
}

// substitute builds the replacement list for one invocation: parameters
// are replaced by fully-expanded arguments, '#' stringizes, '##' pastes,
// and the macro name is added to every output token's hide set. Output
// tokens take the invocation location so downstream consumers (PDB,
// instrumentor) see source positions, as the EDG IL does.
func (p *Preprocessor) substitute(m *Macro, args [][]lex.Token, inv lex.Token) []lex.Token {
	paramIndex := func(name string) int {
		for i, p := range m.Params {
			if p == name {
				return i
			}
		}
		return -1
	}
	var out []lex.Token
	body := m.Body
	for i := 0; i < len(body); i++ {
		t := body[i]
		// '#param' → string literal of the raw argument spelling.
		if t.Kind == lex.Hash && i+1 < len(body) {
			if idx := paramIndex(body[i+1].Text); idx >= 0 && m.IsFunc {
				s := lex.Stringify(args[idx])
				out = append(out, lex.Token{Kind: lex.StringLit, Text: lex.Quote(s),
					Loc: inv.Loc, SpaceBefore: t.SpaceBefore})
				i++
				continue
			}
		}
		// 'a ## b' → paste.
		if i+2 < len(body) && body[i+1].Kind == lex.HashHash {
			left := p.substTokenRaw(t, args, paramIndex)
			right := p.substTokenRaw(body[i+2], args, paramIndex)
			pasted := pasteTokens(left, right, inv.Loc)
			pasted[0].SpaceBefore = t.SpaceBefore
			out = append(out, pasted...)
			i += 2
			continue
		}
		if idx := paramIndex(t.Text); idx >= 0 && m.IsFunc && (t.Kind == lex.Ident || t.Kind == lex.Keyword) {
			exp := p.expandTokens(args[idx])
			for j, e := range exp {
				e.Loc = inv.Loc
				if j == 0 {
					e.SpaceBefore = t.SpaceBefore
				}
				out = append(out, e)
			}
			continue
		}
		t.Loc = inv.Loc
		out = append(out, t)
	}
	hs := inv.HideSet.With(m.Name)
	for i := range out {
		out[i].HideSet = out[i].HideSet.Union(hs)
	}
	return out
}

// substTokenRaw substitutes a parameter with its *unexpanded* argument
// tokens (operands of ## are not pre-expanded).
func (p *Preprocessor) substTokenRaw(t lex.Token, args [][]lex.Token, paramIndex func(string) int) []lex.Token {
	if idx := paramIndex(t.Text); idx >= 0 && (t.Kind == lex.Ident || t.Kind == lex.Keyword) {
		if len(args[idx]) == 0 {
			return nil
		}
		return args[idx]
	}
	return []lex.Token{t}
}

// pasteTokens concatenates the last token of left with the first of
// right and relexes the result.
func pasteTokens(left, right []lex.Token, loc source.Loc) []lex.Token {
	if len(left) == 0 {
		if len(right) == 0 {
			return []lex.Token{{Kind: lex.Ident, Text: "", Loc: loc}}
		}
		return right
	}
	if len(right) == 0 {
		return left
	}
	glue := left[len(left)-1].Text + right[0].Text
	relexed := tokenizeString(glue, loc)
	out := append([]lex.Token(nil), left[:len(left)-1]...)
	out = append(out, relexed...)
	out = append(out, right[1:]...)
	for i := range out {
		out[i].Loc = loc
	}
	return out
}

// evalCondition evaluates a #if/#elif controlling expression.
// 'defined X' / 'defined(X)' are resolved before macro expansion, then
// the run is expanded and parsed as an integer constant expression.
// Unknown identifiers evaluate to 0, per the standard.
func (p *Preprocessor) evalCondition(line []lex.Token, loc source.Loc) bool {
	var pre []lex.Token
	for i := 0; i < len(line); i++ {
		t := line[i]
		if (t.Kind == lex.Ident || t.Kind == lex.Keyword) && t.Text == "defined" {
			name := ""
			if i+1 < len(line) && (line[i+1].Kind == lex.Ident || line[i+1].Kind == lex.Keyword) {
				name = line[i+1].Text
				i++
			} else if i+3 < len(line) && line[i+1].Kind == lex.LParen && line[i+3].Kind == lex.RParen {
				name = line[i+2].Text
				i += 3
			} else {
				p.errorf(t.Loc, "bad 'defined' operator")
			}
			val := "0"
			if _, ok := p.macros[name]; ok {
				val = "1"
			}
			pre = append(pre, lex.Token{Kind: lex.IntLit, Text: val, Loc: t.Loc, SpaceBefore: t.SpaceBefore})
			continue
		}
		pre = append(pre, t)
	}
	expanded := p.expandTokens(pre)
	ev := condEval{toks: expanded, pp: p, loc: loc}
	v := ev.ternary()
	if ev.pos < len(ev.toks) && !ev.failed {
		p.errorf(loc, "trailing tokens in preprocessor condition")
	}
	return v != 0
}

// condEval is a tiny recursive-descent evaluator for preprocessor
// integer constant expressions.
type condEval struct {
	toks   []lex.Token
	pos    int
	pp     *Preprocessor
	loc    source.Loc
	failed bool
}

func (e *condEval) peek() lex.Token {
	if e.pos < len(e.toks) {
		return e.toks[e.pos]
	}
	return lex.Token{Kind: lex.EOF}
}

func (e *condEval) next() lex.Token {
	t := e.peek()
	if e.pos < len(e.toks) {
		e.pos++
	}
	return t
}

func (e *condEval) fail(msg string) int64 {
	if !e.failed {
		e.pp.errorf(e.loc, "in preprocessor condition: %s", msg)
		e.failed = true
	}
	return 0
}

func (e *condEval) ternary() int64 {
	c := e.binary(0)
	if e.peek().Kind == lex.Question {
		e.next()
		a := e.ternary()
		if e.peek().Kind != lex.Colon {
			return e.fail("expected ':'")
		}
		e.next()
		b := e.ternary()
		if c != 0 {
			return a
		}
		return b
	}
	return c
}

// binding powers for binary operators.
var condPrec = map[lex.Kind]int{
	lex.OrOr: 1, lex.AndAnd: 2, lex.Pipe: 3, lex.Caret: 4, lex.Amp: 5,
	lex.Eq: 6, lex.Ne: 6, lex.Lt: 7, lex.Gt: 7, lex.Le: 7, lex.Ge: 7,
	lex.Shl: 8, lex.Shr: 8, lex.Plus: 9, lex.Minus: 9,
	lex.Star: 10, lex.Slash: 10, lex.Percent: 10,
}

func (e *condEval) binary(minPrec int) int64 {
	lhs := e.unary()
	for {
		op := e.peek().Kind
		prec, ok := condPrec[op]
		if !ok || prec < minPrec {
			return lhs
		}
		e.next()
		rhs := e.binary(prec + 1)
		switch op {
		case lex.OrOr:
			lhs = b2i(lhs != 0 || rhs != 0)
		case lex.AndAnd:
			lhs = b2i(lhs != 0 && rhs != 0)
		case lex.Pipe:
			lhs |= rhs
		case lex.Caret:
			lhs ^= rhs
		case lex.Amp:
			lhs &= rhs
		case lex.Eq:
			lhs = b2i(lhs == rhs)
		case lex.Ne:
			lhs = b2i(lhs != rhs)
		case lex.Lt:
			lhs = b2i(lhs < rhs)
		case lex.Gt:
			lhs = b2i(lhs > rhs)
		case lex.Le:
			lhs = b2i(lhs <= rhs)
		case lex.Ge:
			lhs = b2i(lhs >= rhs)
		case lex.Shl:
			lhs <<= uint(rhs) & 63
		case lex.Shr:
			lhs >>= uint(rhs) & 63
		case lex.Plus:
			lhs += rhs
		case lex.Minus:
			lhs -= rhs
		case lex.Star:
			lhs *= rhs
		case lex.Slash:
			if rhs == 0 {
				return e.fail("division by zero")
			}
			lhs /= rhs
		case lex.Percent:
			if rhs == 0 {
				return e.fail("division by zero")
			}
			lhs %= rhs
		}
	}
}

func (e *condEval) unary() int64 {
	t := e.next()
	switch t.Kind {
	case lex.IntLit:
		v, err := lex.IntValue(t.Text)
		if err != nil {
			return e.fail(err.Error())
		}
		return v
	case lex.CharLit:
		v, err := lex.CharValue(t.Text)
		if err != nil {
			return e.fail(err.Error())
		}
		return v
	case lex.Ident:
		return 0 // unknown identifiers are 0
	case lex.Keyword:
		switch t.Text {
		case "true":
			return 1
		case "false":
			return 0
		}
		return 0
	case lex.Not:
		return b2i(e.unary() == 0)
	case lex.Minus:
		return -e.unary()
	case lex.Plus:
		return e.unary()
	case lex.Tilde:
		return ^e.unary()
	case lex.LParen:
		v := e.ternary()
		if e.peek().Kind != lex.RParen {
			return e.fail("expected ')'")
		}
		e.next()
		return v
	default:
		return e.fail("unexpected token " + t.String())
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// StringifyLine renders tokens of one directive for diagnostics.
func StringifyLine(toks []lex.Token) string {
	return strings.TrimSpace(lex.Stringify(toks))
}
