package pp

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

// randCondExpr builds a random well-formed preprocessor constant
// expression together with its expected value, so the evaluator can be
// checked against an independent Go computation.
func randCondExpr(r *rand.Rand, depth int) (string, int64) {
	if depth <= 0 {
		v := int64(r.Intn(50))
		return fmt.Sprintf("%d", v), v
	}
	switch r.Intn(8) {
	case 0:
		s, v := randCondExpr(r, depth-1)
		return "(" + s + ")", v
	case 1:
		s, v := randCondExpr(r, depth-1)
		return "!" + "(" + s + ")", boolToInt(v == 0)
	case 2:
		s, v := randCondExpr(r, depth-1)
		return "-(" + s + ")", -v
	default:
		ls, lv := randCondExpr(r, depth-1)
		rs, rv := randCondExpr(r, depth-1)
		ops := []struct {
			text string
			f    func(a, b int64) (int64, bool)
		}{
			{"+", func(a, b int64) (int64, bool) { return a + b, true }},
			{"-", func(a, b int64) (int64, bool) { return a - b, true }},
			{"*", func(a, b int64) (int64, bool) { return a * b, true }},
			{"==", func(a, b int64) (int64, bool) { return boolToInt(a == b), true }},
			{"!=", func(a, b int64) (int64, bool) { return boolToInt(a != b), true }},
			{"<", func(a, b int64) (int64, bool) { return boolToInt(a < b), true }},
			{">=", func(a, b int64) (int64, bool) { return boolToInt(a >= b), true }},
			{"&&", func(a, b int64) (int64, bool) { return boolToInt(a != 0 && b != 0), true }},
			{"||", func(a, b int64) (int64, bool) { return boolToInt(a != 0 || b != 0), true }},
			{"&", func(a, b int64) (int64, bool) { return a & b, true }},
			{"|", func(a, b int64) (int64, bool) { return a | b, true }},
			{"^", func(a, b int64) (int64, bool) { return a ^ b, true }},
		}
		op := ops[r.Intn(len(ops))]
		v, _ := op.f(lv, rv)
		// Parenthesize operands: precedence is the evaluator's concern
		// elsewhere; this property targets operator semantics.
		return "(" + ls + ") " + op.text + " (" + rs + ")", v
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Property: #if evaluation matches an independent Go computation of
// the same expression.
func TestCondEvalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		exprText, want := randCondExpr(r, 4)
		src := fmt.Sprintf("#if (%s) == (%d)\nint yes;\n#else\nint no;\n#endif\n", exprText, want)
		fs := source.NewFileSet()
		main := fs.AddVirtualFile("main.cpp", src)
		p := New(fs)
		toks := p.Process(main)
		if len(p.Errors()) > 0 {
			t.Logf("errors on %q: %v", exprText, p.Errors())
			return false
		}
		got := lex.Stringify(toks)
		if got != "int yes ;" && got != "int yes;" {
			t.Logf("expr %q: want %d, pp chose %q", exprText, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: macro-expanded output never contains the defined
// object-macro names (full expansion), for random non-recursive
// definitions.
func TestObjectMacroFullExpansionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		src := ""
		// Chain: M0 = literal, Mi = Mi-1 + i
		src += "#define M0 1\n"
		for i := 1; i < n; i++ {
			src += fmt.Sprintf("#define M%d (M%d + %d)\n", i, i-1, i)
		}
		src += fmt.Sprintf("int x = M%d;\n", n-1)
		fs := source.NewFileSet()
		main := fs.AddVirtualFile("main.cpp", src)
		p := New(fs)
		toks := p.Process(main)
		if len(p.Errors()) > 0 {
			return false
		}
		for _, tok := range toks {
			if tok.Kind == lex.Ident && len(tok.Text) > 1 && tok.Text[0] == 'M' {
				t.Logf("unexpanded macro %q in output of:\n%s", tok.Text, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
