package pp

import (
	"strings"
	"testing"

	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

// run preprocesses main.cpp given as src, with extra named files.
func run(t *testing.T, src string, extra map[string]string) (string, *Preprocessor) {
	t.Helper()
	fs := source.NewFileSet()
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	main := fs.AddVirtualFile("main.cpp", src)
	p := New(fs)
	toks := p.Process(main)
	for _, e := range p.Errors() {
		t.Errorf("pp error: %v", e)
	}
	return lex.Stringify(toks[:len(toks)-1]), p
}

func TestObjectMacro(t *testing.T) {
	got, _ := run(t, "#define N 10\nint a[N];", nil)
	if got != "int a[10];" && got != "int a[ 10 ];" {
		if !strings.Contains(got, "10") || strings.Contains(got, "N") {
			t.Errorf("got %q", got)
		}
	}
}

func TestFunctionMacro(t *testing.T) {
	got, _ := run(t, "#define MAX(a,b) ((a)>(b)?(a):(b))\nint x = MAX(1, 2);", nil)
	want := "int x = ((1)>(2)?(1):(2));"
	if strings.ReplaceAll(got, " ", "") != strings.ReplaceAll(want, " ", "") {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestFunctionMacroNotCalled(t *testing.T) {
	got, _ := run(t, "#define F(a) a+a\nint F;", nil)
	if !strings.Contains(got, "int F ;") && !strings.Contains(got, "int F;") {
		t.Errorf("bare function-macro name should not expand: %q", got)
	}
}

func TestNestedExpansion(t *testing.T) {
	got, _ := run(t, "#define A B\n#define B C\n#define C 42\nint x = A;", nil)
	if !strings.Contains(got, "42") {
		t.Errorf("got %q", got)
	}
}

func TestRecursiveMacroStops(t *testing.T) {
	got, _ := run(t, "#define X X\nint X;", nil)
	if !strings.Contains(got, "int X") {
		t.Errorf("self-referential macro must not loop: %q", got)
	}
}

func TestMutualRecursionStops(t *testing.T) {
	got, _ := run(t, "#define A B\n#define B A\nint A;", nil)
	// Expansion A -> B -> A(with A in hideset) stops.
	if !strings.Contains(got, "int A") && !strings.Contains(got, "int B") {
		t.Errorf("got %q", got)
	}
}

func TestStringize(t *testing.T) {
	got, _ := run(t, `#define S(x) #x`+"\nconst char* s = S(hello world);", nil)
	if !strings.Contains(got, `"hello world"`) {
		t.Errorf("got %q", got)
	}
}

func TestPaste(t *testing.T) {
	got, _ := run(t, "#define GLUE(a,b) a##b\nint GLUE(foo,bar) = 1;", nil)
	if !strings.Contains(got, "foobar") {
		t.Errorf("got %q", got)
	}
}

func TestConditionals(t *testing.T) {
	src := `#define FOO 1
#if FOO
int yes;
#else
int no;
#endif
#ifdef BAR
int bar;
#endif
#ifndef BAR
int nobar;
#endif`
	got, _ := run(t, src, nil)
	if !strings.Contains(got, "yes") || strings.Contains(got, "int no;") {
		t.Errorf("got %q", got)
	}
	if strings.Contains(got, "int bar") || !strings.Contains(got, "nobar") {
		t.Errorf("got %q", got)
	}
}

func TestElifChain(t *testing.T) {
	src := `#define V 2
#if V == 1
int one;
#elif V == 2
int two;
#elif V == 3
int three;
#else
int other;
#endif`
	got, _ := run(t, src, nil)
	if !strings.Contains(got, "two") || strings.Contains(got, "one") ||
		strings.Contains(got, "three") || strings.Contains(got, "other") {
		t.Errorf("got %q", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#if 1
#if 0
int dead;
#else
int live;
#endif
#endif`
	got, _ := run(t, src, nil)
	if strings.Contains(got, "dead") || !strings.Contains(got, "live") {
		t.Errorf("got %q", got)
	}
}

func TestCondExpressionOperators(t *testing.T) {
	src := `#if (1 << 3) == 8 && !defined(NOPE) && (5 % 3 == 2) && (2 > 1 ? 1 : 0)
int pass;
#endif`
	got, _ := run(t, src, nil)
	if !strings.Contains(got, "pass") {
		t.Errorf("got %q", got)
	}
}

func TestInclude(t *testing.T) {
	got, p := run(t, `#include "defs.h"`+"\nint x = VALUE;",
		map[string]string{"defs.h": "#define VALUE 7\n"})
	if !strings.Contains(got, "7") {
		t.Errorf("got %q", got)
	}
	_ = p
}

func TestIncludeGuard(t *testing.T) {
	hdr := `#ifndef H_GUARD
#define H_GUARD
int decl;
#endif`
	got, _ := run(t, "#include \"g.h\"\n#include \"g.h\"\nint tail;",
		map[string]string{"g.h": hdr})
	if strings.Count(got, "decl") != 1 {
		t.Errorf("guarded header included twice: %q", got)
	}
}

func TestPragmaOnce(t *testing.T) {
	got, _ := run(t, "#include \"o.h\"\n#include \"o.h\"\n",
		map[string]string{"o.h": "#pragma once\nint once_decl;\n"})
	if strings.Count(got, "once_decl") != 1 {
		t.Errorf("pragma once violated: %q", got)
	}
}

func TestIncludesRecorded(t *testing.T) {
	fs := source.NewFileSet()
	fs.AddVirtualFile("a.h", "int a;")
	fs.AddVirtualFile("b.h", `#include "a.h"`+"\nint b;")
	main := fs.AddVirtualFile("main.cpp", `#include "b.h"`+"\nint m;")
	p := New(fs)
	p.Process(main)
	if len(p.Errors()) > 0 {
		t.Fatalf("errors: %v", p.Errors())
	}
	if len(main.Includes) != 1 || main.Includes[0].Name != "b.h" {
		t.Errorf("main includes = %v", main.Includes)
	}
	bh := fs.Lookup("b.h")
	if len(bh.Includes) != 1 || bh.Includes[0].Name != "a.h" {
		t.Errorf("b.h includes = %v", bh.Includes)
	}
}

func TestBuiltinHeader(t *testing.T) {
	fs := source.NewFileSet()
	fs.RegisterBuiltin("vector", "int builtin_vec;")
	main := fs.AddVirtualFile("main.cpp", "#include <vector>\n")
	p := New(fs)
	toks := p.Process(main)
	if len(p.Errors()) > 0 {
		t.Fatalf("errors: %v", p.Errors())
	}
	if !strings.Contains(lex.Stringify(toks), "builtin_vec") {
		t.Error("builtin header not included")
	}
	if len(main.Includes) != 1 || !main.Includes[0].System {
		t.Errorf("system include not recorded: %v", main.Includes)
	}
}

func TestMacroRecords(t *testing.T) {
	_, p := run(t, "#define A 1\n#define F(x) x*2\n#undef A\n", nil)
	if len(p.Records) != 3 {
		t.Fatalf("got %d records", len(p.Records))
	}
	if p.Records[0].Kind != Define || p.Records[0].Name != "A" {
		t.Errorf("rec0 = %+v", p.Records[0])
	}
	if p.Records[1].Name != "F" || !strings.Contains(p.Records[1].Text, "F(x)") {
		t.Errorf("rec1 = %+v", p.Records[1])
	}
	if p.Records[2].Kind != Undef || p.Records[2].Name != "A" {
		t.Errorf("rec2 = %+v", p.Records[2])
	}
}

func TestFileLineMacros(t *testing.T) {
	got, _ := run(t, "const char* f = __FILE__;\nint l = __LINE__;", nil)
	if !strings.Contains(got, `"main.cpp"`) {
		t.Errorf("__FILE__: %q", got)
	}
	if !strings.Contains(got, "2") {
		t.Errorf("__LINE__: %q", got)
	}
}

func TestCommandLineDefine(t *testing.T) {
	fs := source.NewFileSet()
	main := fs.AddVirtualFile("main.cpp", "#ifdef CLI\nint cli;\n#endif\nint v = VAL;")
	p := New(fs)
	p.Define("CLI")
	p.Define("VAL=9")
	toks := p.Process(main)
	got := lex.Stringify(toks)
	if !strings.Contains(got, "cli") || !strings.Contains(got, "9") {
		t.Errorf("got %q", got)
	}
}

func TestErrorDirective(t *testing.T) {
	fs := source.NewFileSet()
	main := fs.AddVirtualFile("main.cpp", "#if 0\n#error dead\n#endif\n#define OK 1\n")
	p := New(fs)
	p.Process(main)
	if len(p.Errors()) != 0 {
		t.Errorf("inactive #error should not fire: %v", p.Errors())
	}
	main2 := fs.AddVirtualFile("main2.cpp", "#error boom\n")
	p2 := New(fs)
	p2.Process(main2)
	if len(p2.Errors()) != 1 {
		t.Errorf("active #error should fire once: %v", p2.Errors())
	}
}

func TestMissingInclude(t *testing.T) {
	fs := source.NewFileSet()
	main := fs.AddVirtualFile("main.cpp", `#include "nope.h"`+"\n")
	p := New(fs)
	p.Process(main)
	if len(p.Errors()) == 0 {
		t.Error("expected missing-include error")
	}
}

func TestMacroArgsWithCommasInParens(t *testing.T) {
	got, _ := run(t, "#define CALL(f, args) f args\nint y = CALL(g, (1, 2));", nil)
	if !strings.Contains(strings.ReplaceAll(got, " ", ""), "g(1,2)") {
		t.Errorf("got %q", got)
	}
}

func TestExpandedTokensCarryInvocationLoc(t *testing.T) {
	fs := source.NewFileSet()
	main := fs.AddVirtualFile("main.cpp", "#define M 1+2\nint x = M;")
	p := New(fs)
	toks := p.Process(main)
	for _, tok := range toks {
		if tok.Text == "1" || tok.Text == "2" {
			if tok.Loc.Line != 2 {
				t.Errorf("expanded token %q at line %d, want 2", tok.Text, tok.Loc.Line)
			}
		}
	}
}

func TestTAUStyleProfileMacro(t *testing.T) {
	// The macro shape TAU inserts (paper §4.1).
	src := `#define TAU_PROFILE(name, type, group) TauProfiler __tauP(name, type, group)
#define CT(obj) __pdt_typename(obj)
void f() { TAU_PROFILE("vector::vector()", CT(*this), 0); }`
	got, _ := run(t, src, nil)
	if !strings.Contains(got, "TauProfiler") || !strings.Contains(got, "__pdt_typename") {
		t.Errorf("got %q", got)
	}
	if !strings.Contains(got, "* this") && !strings.Contains(got, "*this") {
		t.Errorf("CT argument lost: %q", got)
	}
}
