// Package stdlib provides the built-in system headers shipped with the
// PDT frontend — the stand-in for the KAI standard library headers the
// paper bundles with PDT 1.3 ("the inclusion of KAI's 3.4c standard
// library header files has significantly improved PDT's robustness").
//
// Headers are written in the supported C++ subset. Routines declared
// without bodies (stream inserters, math functions, the TAU runtime
// hooks) are implemented as intrinsics by the interpreter
// (internal/interp); their names all start with __pdt_ or live on the
// iostream/TauProfiler classes.
package stdlib

import "pdt/internal/source"

// Headers maps header names to their contents.
var Headers = map[string]string{
	"vector":     vectorH,
	"vector.h":   vectorH,
	"iostream":   iostreamH,
	"iostream.h": iostreamH,
	"cmath":      cmathH,
	"math.h":     cmathH,
	"cstdio":     cstdioH,
	"stdio.h":    cstdioH,
	"cstdlib":    cstdlibH,
	"stdlib.h":   cstdlibH,
	"cassert":    cassertH,
	"assert.h":   cassertH,
	"cstring":    cstringH,
	"string.h":   cstringH,
	"tau.h":      tauH,
	"siloon.h":   siloonH,
}

// Register installs every built-in header into the file set.
func Register(fs *source.FileSet) {
	for name, content := range Headers {
		fs.RegisterBuiltin(name, content)
	}
}

const vectorH = `#ifndef __PDT_VECTOR
#define __PDT_VECTOR
// Minimal std-style vector for the PDT subset. Grows geometrically;
// bounds are not checked (as in the era's KAI headers).
template <class T>
class vector {
public:
    vector() : data_(0), size_(0), cap_(0) { }
    explicit vector(int n) : data_(new T[n]), size_(n), cap_(n) { }
    vector(int n, const T & init) : data_(new T[n]), size_(n), cap_(n) {
        for (int i = 0; i < n; i++)
            data_[i] = init;
    }
    vector(const vector & other)
        : data_(new T[other.cap_]), size_(other.size_), cap_(other.cap_) {
        for (int i = 0; i < size_; i++)
            data_[i] = other.data_[i];
    }
    ~vector() { delete[] data_; }
    vector & operator=(const vector & other) {
        if (this != &other) {
            delete[] data_;
            cap_ = other.cap_;
            size_ = other.size_;
            data_ = new T[cap_];
            for (int i = 0; i < size_; i++)
                data_[i] = other.data_[i];
        }
        return *this;
    }
    int size() const { return size_; }
    int capacity() const { return cap_; }
    bool empty() const { return size_ == 0; }
    T & operator[](int i) { return data_[i]; }
    const T & at(int i) const { return data_[i]; }
    T & front() { return data_[0]; }
    T & back() { return data_[size_ - 1]; }
    void push_back(const T & x) {
        if (size_ == cap_)
            reserve(cap_ == 0 ? 8 : 2 * cap_);
        data_[size_++] = x;
    }
    void pop_back() { size_--; }
    void clear() { size_ = 0; }
    void resize(int n) {
        reserve(n);
        size_ = n;
    }
    void reserve(int n) {
        if (n <= cap_)
            return;
        T *bigger = new T[n];
        for (int i = 0; i < size_; i++)
            bigger[i] = data_[i];
        delete[] data_;
        data_ = bigger;
        cap_ = n;
    }
private:
    T *data_;
    int size_;
    int cap_;
};
#endif
`

const iostreamH = `#ifndef __PDT_IOSTREAM
#define __PDT_IOSTREAM
// Stream output. The inserters are interpreter intrinsics.
class ostream {
public:
    ostream & operator<<(int x);
    ostream & operator<<(long x);
    ostream & operator<<(unsigned long x);
    ostream & operator<<(double x);
    ostream & operator<<(char c);
    ostream & operator<<(bool b);
    ostream & operator<<(const char * s);
};
extern ostream cout;
extern ostream cerr;
extern const char * endl;
#endif
`

const cmathH = `#ifndef __PDT_CMATH
#define __PDT_CMATH
double sqrt(double x);
double fabs(double x);
double sin(double x);
double cos(double x);
double tan(double x);
double exp(double x);
double log(double x);
double pow(double base, double exponent);
double floor(double x);
double ceil(double x);
#endif
`

const cstdioH = `#ifndef __PDT_CSTDIO
#define __PDT_CSTDIO
int printf(const char * format, ...);
int puts(const char * s);
int putchar(int c);
#endif
`

const cstdlibH = `#ifndef __PDT_CSTDLIB
#define __PDT_CSTDLIB
int abs(int x);
long labs(long x);
void exit(int status);
int rand();
void srand(unsigned int seed);
int atoi(const char * s);
#endif
`

const cassertH = `#ifndef __PDT_CASSERT
#define __PDT_CASSERT
void __pdt_assert(int ok, const char * what);
#define assert(x) __pdt_assert((x) ? 1 : 0, #x)
#endif
`

const cstringH = `#ifndef __PDT_CSTRING
#define __PDT_CSTRING
int strcmp(const char * a, const char * b);
unsigned long strlen(const char * s);
#endif
`

// tauH is the TAU measurement API of the paper's §4.1: the
// TAU_PROFILE macro declares a scoped profiler object whose constructor
// starts a timer and whose destructor (run at scope exit) stops it.
// CT(obj) is the run-time type query used for template instantiations.
const tauH = `#ifndef __PDT_TAU
#define __PDT_TAU
const char * __pdt_typename(...);
class TauProfiler {
public:
    TauProfiler(const char * name, const char * type, int group);
    ~TauProfiler();
};
#define TAU_PROFILE(name, type, group) TauProfiler __tauProfiler(name, type, group)
#define CT(obj) __pdt_typename(obj)
#define TAU_USER 0
#define TAU_DEFAULT 1
#endif
`

// siloonH declares the bridge runtime hooks used by SILOON-generated
// glue code (§4.2): registration of wrapped routines and boxed
// argument passing.
const siloonH = `#ifndef __PDT_SILOON
#define __PDT_SILOON
void __pdt_siloon_register(const char * mangled, int token);
double __pdt_siloon_arg_num(int index);
const char * __pdt_siloon_arg_str(int index);
void __pdt_siloon_ret_num(double value);
void __pdt_siloon_ret_str(const char * value);
int __pdt_siloon_arg_obj(int index);
void __pdt_siloon_ret_obj(int handle);
#endif
`
