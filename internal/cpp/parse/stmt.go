package parse

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

// parseCompound parses "{ stmts }".
func (p *Parser) parseCompound() *ast.CompoundStmt {
	lb := p.expect(lex.LBrace, "compound statement")
	cs := &ast.CompoundStmt{Pos: source.Span{Begin: lb.Loc}}
	wasInBlock := p.inBlock
	p.inBlock = true
	p.pushScope()
	for !p.at(lex.RBrace) && !p.at(lex.EOF) {
		start := p.pos
		s := p.parseStmt()
		if s != nil {
			cs.Stmts = append(cs.Stmts, s)
		}
		if p.pos == start {
			p.errorf(p.peek().Loc, "unexpected token %s in block", p.peek())
			p.next()
		}
	}
	p.popScope()
	p.inBlock = wasInBlock
	rb := p.expect(lex.RBrace, "compound statement")
	cs.Pos.End = rb.Loc
	return cs
}

// parseStmt parses one statement.
func (p *Parser) parseStmt() ast.Stmt {
	t := p.peek()
	switch {
	case t.Kind == lex.LBrace:
		return p.parseCompound()
	case t.Kind == lex.Semi:
		loc := p.next().Loc
		return &ast.EmptyStmt{Pos: source.Span{Begin: loc, End: loc}}
	case t.IsKw("if"):
		return p.parseIf()
	case t.IsKw("while"):
		return p.parseWhile()
	case t.IsKw("do"):
		return p.parseDo()
	case t.IsKw("for"):
		return p.parseFor()
	case t.IsKw("return"):
		kw := p.next()
		s := &ast.ReturnStmt{Pos: source.Span{Begin: kw.Loc}}
		if !p.at(lex.Semi) {
			s.E = p.parseExpr()
		}
		semi := p.expect(lex.Semi, "return statement")
		s.Pos.End = semi.Loc
		return s
	case t.IsKw("break"):
		kw := p.next()
		semi := p.expect(lex.Semi, "break statement")
		return &ast.BreakStmt{Pos: source.Span{Begin: kw.Loc, End: semi.Loc}}
	case t.IsKw("continue"):
		kw := p.next()
		semi := p.expect(lex.Semi, "continue statement")
		return &ast.ContinueStmt{Pos: source.Span{Begin: kw.Loc, End: semi.Loc}}
	case t.IsKw("switch"):
		return p.parseSwitch()
	case t.IsKw("try"):
		return p.parseTry()
	case t.IsKw("goto"):
		p.errorf(t.Loc, "goto is not supported by the PDT frontend subset")
		p.syncDecl()
		return nil
	case t.IsKw("typedef"):
		d := p.parseTypedef()
		return &ast.DeclStmt{Decls: []ast.Decl{d}, Pos: d.Span()}
	case t.IsKw("class") || t.IsKw("struct") || t.IsKw("union"):
		if p.classHeadFollows() {
			d := p.parseClass(nil)
			return &ast.DeclStmt{Decls: []ast.Decl{d}, Pos: d.Span()}
		}
		return p.parseBlockDeclStmt()
	case t.IsKw("enum"):
		d := p.parseEnum()
		return &ast.DeclStmt{Decls: []ast.Decl{d}, Pos: d.Span()}
	case p.stmtStartsDecl():
		return p.parseBlockDeclStmt()
	default:
		return p.parseExprStmt()
	}
}

// stmtStartsDecl decides whether the statement at the cursor is a
// declaration. This is the central declaration/expression ambiguity;
// it relies on the syntactic symbol table.
func (p *Parser) stmtStartsDecl() bool {
	t := p.peek()
	if t.Kind == lex.Keyword {
		switch t.Text {
		case "const", "volatile", "static", "register", "auto", "mutable",
			"void", "bool", "char", "int", "long", "short", "signed",
			"unsigned", "float", "double", "typename":
			return true
		}
		return false
	}
	if t.Kind != lex.Ident && t.Kind != lex.ColonCol {
		return false
	}
	if !p.startsType() {
		return false
	}
	// A type name begins the statement; it is a declaration when a
	// declarator follows ("T x", "T *x", "T &x", "T<...>" then those).
	save := p.pos
	defer func() { p.pos = save }()
	p.parseTypeSpecifierQuiet()
	switch p.peek().Kind {
	case lex.Ident:
		return true
	case lex.Star, lex.Amp:
		// "T * x" — declaration only if an identifier follows the ops;
		// "a * b;" with a not-a-type never reaches here.
		for p.at(lex.Star) || p.at(lex.Amp) || p.atKw("const") || p.atKw("volatile") {
			p.next()
		}
		return p.at(lex.Ident)
	}
	return false
}

// parseTypeSpecifierQuiet parses a type specifier while suppressing
// diagnostics (used for lookahead).
func (p *Parser) parseTypeSpecifierQuiet() {
	saved := p.errs
	p.parseTypeSpecifier()
	p.errs = saved
}

// parseBlockDeclStmt parses a block-scope declaration statement.
func (p *Parser) parseBlockDeclStmt() ast.Stmt {
	startLoc := p.peek().Loc
	specs := p.parseDeclSpecs()
	baseType := p.parseTypeSpecifier()
	var decls []ast.Decl
	for {
		d := p.parseDeclarator(baseType, specs, nil, ast.NoAccess, startLoc)
		if d == nil {
			return nil
		}
		if fd, ok := d.(*ast.FunctionDecl); ok {
			// Local function declaration ("most vexing parse" outcome).
			decls = append(decls, fd)
			return &ast.DeclStmt{Decls: decls, Pos: fd.Span()}
		}
		decls = append(decls, d)
		if p.accept(lex.Comma) {
			continue
		}
		semi := p.expect(lex.Semi, "declaration statement")
		return &ast.DeclStmt{Decls: decls, Pos: source.Span{Begin: startLoc, End: semi.Loc}}
	}
}

func (p *Parser) parseExprStmt() ast.Stmt {
	start := p.peek().Loc
	e := p.parseExpr()
	semi := p.expect(lex.Semi, "expression statement")
	if e == nil {
		return nil
	}
	return &ast.ExprStmt{E: e, Pos: source.Span{Begin: start, End: semi.Loc}}
}

func (p *Parser) parseIf() ast.Stmt {
	kw := p.next()
	p.expect(lex.LParen, "if condition")
	cond := p.parseExpr()
	p.expect(lex.RParen, "if condition")
	s := &ast.IfStmt{Cond: cond, Pos: source.Span{Begin: kw.Loc}}
	s.Then = p.parseStmt()
	if p.acceptKw("else") {
		s.Else = p.parseStmt()
	}
	s.Pos.End = p.lastLoc()
	return s
}

func (p *Parser) parseWhile() ast.Stmt {
	kw := p.next()
	p.expect(lex.LParen, "while condition")
	cond := p.parseExpr()
	p.expect(lex.RParen, "while condition")
	body := p.parseStmt()
	return &ast.WhileStmt{Cond: cond, Body: body,
		Pos: source.Span{Begin: kw.Loc, End: p.lastLoc()}}
}

func (p *Parser) parseDo() ast.Stmt {
	kw := p.next()
	body := p.parseStmt()
	if !p.acceptKw("while") {
		p.errorf(p.peek().Loc, "expected 'while' after do body")
	}
	p.expect(lex.LParen, "do-while condition")
	cond := p.parseExpr()
	p.expect(lex.RParen, "do-while condition")
	semi := p.expect(lex.Semi, "do-while statement")
	return &ast.DoStmt{Body: body, Cond: cond,
		Pos: source.Span{Begin: kw.Loc, End: semi.Loc}}
}

func (p *Parser) parseFor() ast.Stmt {
	kw := p.next()
	p.expect(lex.LParen, "for clause")
	s := &ast.ForStmt{Pos: source.Span{Begin: kw.Loc}}
	p.pushScope()
	defer p.popScope()
	switch {
	case p.accept(lex.Semi):
		s.Init = &ast.EmptyStmt{}
	case p.stmtStartsDecl():
		s.Init = p.parseBlockDeclStmt()
	default:
		s.Init = p.parseExprStmt()
	}
	if !p.at(lex.Semi) {
		s.Cond = p.parseExpr()
	}
	p.expect(lex.Semi, "for clause")
	if !p.at(lex.RParen) {
		s.Post = p.parseExpr()
	}
	p.expect(lex.RParen, "for clause")
	s.Body = p.parseStmt()
	s.Pos.End = p.lastLoc()
	return s
}

func (p *Parser) parseSwitch() ast.Stmt {
	kw := p.next()
	p.expect(lex.LParen, "switch condition")
	cond := p.parseExpr()
	p.expect(lex.RParen, "switch condition")
	s := &ast.SwitchStmt{Cond: cond, Pos: source.Span{Begin: kw.Loc}}
	p.expect(lex.LBrace, "switch body")
	var cur *ast.SwitchCase
	flush := func() {
		if cur != nil {
			s.Cases = append(s.Cases, *cur)
			cur = nil
		}
	}
	for !p.at(lex.RBrace) && !p.at(lex.EOF) {
		switch {
		case p.atKw("case"):
			loc := p.next().Loc
			v := p.parseConstantExpr()
			p.expect(lex.Colon, "case label")
			if cur == nil || len(cur.Stmts) > 0 {
				flush()
				cur = &ast.SwitchCase{Pos: source.Span{Begin: loc}}
			}
			cur.Values = append(cur.Values, v)
		case p.atKw("default"):
			loc := p.next().Loc
			p.expect(lex.Colon, "default label")
			if cur == nil || len(cur.Stmts) > 0 {
				flush()
				cur = &ast.SwitchCase{Pos: source.Span{Begin: loc}}
			}
		default:
			if cur == nil {
				p.errorf(p.peek().Loc, "statement before first case label")
				cur = &ast.SwitchCase{Pos: source.Span{Begin: p.peek().Loc}}
			}
			start := p.pos
			if st := p.parseStmt(); st != nil {
				cur.Stmts = append(cur.Stmts, st)
			}
			if p.pos == start {
				p.next()
			}
		}
	}
	flush()
	rb := p.expect(lex.RBrace, "switch body")
	s.Pos.End = rb.Loc
	return s
}

func (p *Parser) parseTry() ast.Stmt {
	kw := p.next()
	s := &ast.TryStmt{Pos: source.Span{Begin: kw.Loc}}
	s.Body = p.parseCompound()
	for p.atKw("catch") {
		cloc := p.next().Loc
		p.expect(lex.LParen, "catch clause")
		h := ast.Handler{Pos: source.Span{Begin: cloc}}
		if p.at(lex.Ellipsis) {
			p.next()
		} else {
			h.Param = p.parseParam()
		}
		p.expect(lex.RParen, "catch clause")
		h.Body = p.parseCompound()
		h.Pos.End = p.lastLoc()
		s.Handlers = append(s.Handlers, h)
	}
	if len(s.Handlers) == 0 {
		p.errorf(kw.Loc, "try block without catch handler")
	}
	s.Pos.End = p.lastLoc()
	return s
}
