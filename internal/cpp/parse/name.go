package parse

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/lex"
)

// parseQualName parses a possibly-qualified name with optional template
// argument lists on each segment: "::N::Stack<int>::push".
// allowTemplateArgs controls whether '<' after a known template name
// opens an argument list.
func (p *Parser) parseQualName(allowTemplateArgs bool) ast.QualName {
	var q ast.QualName
	if p.at(lex.ColonCol) {
		q.Global = true
		p.next()
	}
	for {
		t := p.peek()
		if t.Kind != lex.Ident && !(t.Kind == lex.Keyword && t.Text == "operator") && t.Kind != lex.Tilde {
			p.errorf(t.Loc, "expected identifier, found %s", t)
			return q
		}
		seg := p.parseSeg(allowTemplateArgs)
		q.Segs = append(q.Segs, seg)
		if p.at(lex.ColonCol) && p.segCanQualify(seg) {
			p.next()
			continue
		}
		return q
	}
}

// segCanQualify reports whether a further "::" continues the qualified
// name (destructor and operator segments must be terminal).
func (p *Parser) segCanQualify(seg ast.Seg) bool {
	if len(seg.Name) == 0 {
		return false
	}
	return seg.Name[0] != '~' && !isOperatorSegName(seg.Name)
}

func isOperatorSegName(name string) bool {
	return len(name) > 8 && name[:8] == "operator"
}

// parseSeg parses one name segment: identifier, "~identifier"
// (destructor), or "operator @", each optionally followed by template
// arguments.
func (p *Parser) parseSeg(allowTemplateArgs bool) ast.Seg {
	var seg ast.Seg
	switch {
	case p.at(lex.Tilde):
		loc := p.next().Loc
		id := p.expect(lex.Ident, "destructor name")
		seg = ast.Seg{Name: "~" + id.Text, Loc: loc}
	case p.atKw("operator"):
		loc := p.next().Loc
		seg = ast.Seg{Name: "operator" + p.parseOperatorSpelling(), Loc: loc}
	default:
		id := p.next()
		seg = ast.Seg{Name: id.Text, Loc: id.Loc}
	}
	if allowTemplateArgs && p.at(lex.Lt) && p.shouldOpenArgs(seg.Name) {
		seg.Args, seg.HasArgs = p.parseTemplateArgs()
	}
	return seg
}

// shouldOpenArgs decides whether '<' after name opens template
// arguments. Known templates always do; unknown names do when inside a
// type context caller (handled by callers passing allowTemplateArgs).
func (p *Parser) shouldOpenArgs(name string) bool {
	if p.isTemplateName(name) {
		return true
	}
	// Heuristic for qualified unknowns (e.g. out-of-line members of a
	// template parsed before its definition is recorded — rare).
	return false
}

// parseOperatorSpelling consumes the tokens after the "operator"
// keyword and returns their spelling ("+", "[]", "()", " new", ...).
func (p *Parser) parseOperatorSpelling() string {
	t := p.peek()
	switch t.Kind {
	case lex.LParen:
		p.next()
		p.expect(lex.RParen, "operator()")
		return "()"
	case lex.LBracket:
		p.next()
		p.expect(lex.RBracket, "operator[]")
		return "[]"
	case lex.Keyword:
		if t.Text == "new" || t.Text == "delete" {
			p.next()
			if p.at(lex.LBracket) {
				p.next()
				p.expect(lex.RBracket, "operator new[]")
				return " " + t.Text + "[]"
			}
			return " " + t.Text
		}
	}
	switch t.Kind {
	case lex.Plus, lex.Minus, lex.Star, lex.Slash, lex.Percent, lex.Caret,
		lex.Amp, lex.Pipe, lex.Tilde, lex.Not, lex.Assign, lex.Lt, lex.Gt,
		lex.PlusAssign, lex.MinusAssign, lex.StarAssign, lex.SlashAssign,
		lex.PercentAssign, lex.CaretAssign, lex.AmpAssign, lex.PipeAssign,
		lex.Shl, lex.Shr, lex.ShlAssign, lex.ShrAssign, lex.Eq, lex.Ne,
		lex.Le, lex.Ge, lex.AndAnd, lex.OrOr, lex.PlusPlus, lex.MinusMinus,
		lex.Comma, lex.Arrow, lex.ArrowStar:
		p.next()
		return t.Text
	}
	p.errorf(t.Loc, "expected operator symbol after 'operator', found %s", t)
	return "?"
}

// parseTemplateArgs parses "<arg, arg, ...>" and returns the args. The
// opening '<' must be current. Handles '>>' closing nested lists.
func (p *Parser) parseTemplateArgs() ([]ast.TemplateArg, bool) {
	p.expect(lex.Lt, "template argument list")
	var args []ast.TemplateArg
	if p.at(lex.Gt) {
		p.next()
		return args, true
	}
	if p.at(lex.Shr) {
		p.splitShr()
		p.next()
		return args, true
	}
	for {
		args = append(args, p.parseTemplateArg())
		if p.accept(lex.Comma) {
			continue
		}
		if p.at(lex.Shr) {
			p.splitShr()
		}
		p.expect(lex.Gt, "template argument list")
		return args, true
	}
}

// parseTemplateArg parses one template argument: a type when the
// lookahead begins a type, otherwise a constant expression.
func (p *Parser) parseTemplateArg() ast.TemplateArg {
	if p.startsType() {
		ty := p.parseType()
		return ast.TemplateArg{Type: ty}
	}
	savedNoGt := p.noGt
	p.noGt = true
	e := p.parseConstantExpr()
	p.noGt = savedNoGt
	return ast.TemplateArg{Expr: e}
}

// startsType reports whether the lookahead begins a type in the
// supported subset.
func (p *Parser) startsType() bool {
	t := p.peek()
	switch t.Kind {
	case lex.Keyword:
		switch t.Text {
		case "const", "volatile", "void", "bool", "char", "int", "long",
			"short", "signed", "unsigned", "float", "double", "class",
			"struct", "union", "enum", "typename":
			return true
		}
		return false
	case lex.Ident:
		if p.isTypeName(t.Text) {
			return true
		}
		// Qualified type: A::B where terminal is a known type.
		if p.peekN(1).Kind == lex.ColonCol {
			return p.qualifiedLooksLikeType()
		}
		return false
	case lex.ColonCol:
		return p.qualifiedLooksLikeType()
	}
	return false
}

// qualifiedLooksLikeType scans a qualified name without consuming input
// and reports whether its terminal segment is a registered type.
func (p *Parser) qualifiedLooksLikeType() bool {
	i := p.pos
	if p.toks[i].Kind == lex.ColonCol {
		i++
	}
	last := ""
	for {
		if p.toks[i].Kind != lex.Ident {
			return false
		}
		last = p.toks[i].Text
		i++
		// Skip a balanced template argument list.
		if p.toks[i].Kind == lex.Lt && (p.lookupName(last) == symTemplate || p.lookupName(last) == symFuncTemplate) {
			depth := 1
			i++
			for depth > 0 {
				switch p.toks[i].Kind {
				case lex.Lt:
					depth++
				case lex.Gt:
					depth--
				case lex.Shr:
					depth -= 2
				case lex.EOF, lex.Semi, lex.LBrace:
					return false
				}
				i++
			}
		}
		if p.toks[i].Kind == lex.ColonCol {
			i++
			continue
		}
		break
	}
	k, ok := p.globalTypes[last]
	if ok && (k == symType || k == symTemplate) {
		return true
	}
	// Unknown terminal after qualification: assume type when followed
	// by something declarator-like. Conservative: only '*'/'&'/ident.
	switch p.toks[i].Kind {
	case lex.Ident, lex.Star, lex.Amp:
		return true
	}
	return false
}
