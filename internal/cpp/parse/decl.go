package parse

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

// parseExternalDecl parses one namespace-scope declaration.
func (p *Parser) parseExternalDecl() ast.Decl {
	t := p.peek()
	switch {
	case t.Kind == lex.Semi:
		p.next()
		return nil
	case t.IsKw("namespace"):
		return p.parseNamespace()
	case t.IsKw("using"):
		return p.parseUsing()
	case t.IsKw("extern") && p.peekN(1).Kind == lex.StringLit:
		return p.parseLinkage()
	case t.IsKw("template"):
		return p.parseTemplate(ast.NoAccess)
	case t.IsKw("typedef"):
		return p.parseTypedef()
	case t.IsKw("enum"):
		return p.parseEnum()
	case t.IsKw("class") || t.IsKw("struct") || t.IsKw("union"):
		if p.classHeadFollows() {
			return p.parseClass(nil)
		}
		return p.parseFuncOrVar(ast.NoAccess, nil)
	default:
		return p.parseFuncOrVar(ast.NoAccess, nil)
	}
}

// classHeadFollows disambiguates "class C {...}" / "class C;" /
// "class C : base" from an elaborated-type-specifier in a variable or
// function declaration ("class C x;" / "struct S f();").
func (p *Parser) classHeadFollows() bool {
	// p.peek() is class/struct/union.
	i := 1
	if p.peekN(i).Kind != lex.Ident {
		return p.peekN(i).Kind == lex.LBrace // anonymous
	}
	i++
	// Skip a template-id on the name (specialization headers).
	if p.peekN(i).Kind == lex.Lt {
		depth := 1
		i++
		for depth > 0 {
			switch p.peekN(i).Kind {
			case lex.Lt:
				depth++
			case lex.Gt:
				depth--
			case lex.Shr:
				depth -= 2
			case lex.EOF:
				return false
			}
			i++
		}
	}
	switch p.peekN(i).Kind {
	case lex.LBrace, lex.Colon, lex.Semi:
		return true
	}
	return false
}

// --- namespaces, using, linkage ----------------------------------------

func (p *Parser) parseNamespace() ast.Decl {
	kw := p.next() // namespace
	d := &ast.NamespaceDecl{Header: source.Span{Begin: kw.Loc, End: kw.Loc}}
	if p.at(lex.Ident) {
		id := p.next()
		d.Name = id.Text
		d.NameLoc = id.Loc
		d.Header.End = id.Loc
	}
	if p.accept(lex.Assign) {
		alias := p.parseQualName(true)
		d.Alias = &alias
		p.expect(lex.Semi, "namespace alias")
		p.declareName(d.Name, symNamespace)
		return d
	}
	p.declareName(d.Name, symNamespace)
	lb := p.expect(lex.LBrace, "namespace body")
	d.Body.Begin = lb.Loc
	p.pushScope()
	for !p.at(lex.RBrace) && !p.at(lex.EOF) {
		start := p.pos
		if inner := p.parseExternalDecl(); inner != nil {
			d.Decls = append(d.Decls, inner)
		}
		if p.pos == start {
			p.errorf(p.peek().Loc, "unexpected token %s in namespace", p.peek())
			p.next()
		}
	}
	p.popScope()
	rb := p.expect(lex.RBrace, "namespace body")
	d.Body.End = rb.Loc
	return d
}

func (p *Parser) parseUsing() ast.Decl {
	kw := p.next() // using
	if p.atKw("namespace") {
		p.next()
		name := p.parseQualName(true)
		semi := p.expect(lex.Semi, "using directive")
		return &ast.UsingDirective{Namespace: name, Pos: source.Span{Begin: kw.Loc, End: semi.Loc}}
	}
	name := p.parseQualName(true)
	semi := p.expect(lex.Semi, "using declaration")
	// Names brought in by using may be types (e.g. using std::vector).
	if p.isTypeName(name.Terminal().Name) {
		p.declareName(name.Terminal().Name, p.lookupName(name.Terminal().Name))
	}
	return &ast.UsingDecl{Name: name, Pos: source.Span{Begin: kw.Loc, End: semi.Loc}}
}

func (p *Parser) parseLinkage() ast.Decl {
	kw := p.next() // extern
	langTok := p.next()
	lang, _ := lex.StringValue(langTok.Text)
	d := &ast.LinkageSpec{Lang: lang, Pos: source.Span{Begin: kw.Loc, End: langTok.Loc}}
	if p.accept(lex.LBrace) {
		for !p.at(lex.RBrace) && !p.at(lex.EOF) {
			start := p.pos
			if inner := p.parseExternalDecl(); inner != nil {
				d.Decls = append(d.Decls, inner)
			}
			if p.pos == start {
				p.next()
			}
		}
		rb := p.expect(lex.RBrace, "linkage specification")
		d.Pos.End = rb.Loc
		return d
	}
	if inner := p.parseExternalDecl(); inner != nil {
		d.Decls = append(d.Decls, inner)
	}
	return d
}

// --- typedef, enum ------------------------------------------------------

func (p *Parser) parseTypedef() ast.Decl {
	kw := p.next() // typedef
	base := p.parseTypeSpecifier()
	ty := p.parseTypeOps(base)
	id := p.expect(lex.Ident, "typedef name")
	// Array suffix: typedef int Buf[16];
	for p.at(lex.LBracket) {
		p.next()
		var size ast.Expr
		if !p.at(lex.RBracket) {
			size = p.parseConstantExpr()
		}
		p.expect(lex.RBracket, "typedef array")
		ty = &ast.ArrayType{Elem: ty, Size: size, Pos: id.Loc}
	}
	semi := p.expect(lex.Semi, "typedef")
	p.declareName(id.Text, symType)
	return &ast.TypedefDecl{Name: id.Text, NameLoc: id.Loc, Type: ty,
		Pos: source.Span{Begin: kw.Loc, End: semi.Loc}}
}

func (p *Parser) parseEnum() ast.Decl {
	kw := p.next() // enum
	d := &ast.EnumDecl{Header: source.Span{Begin: kw.Loc, End: kw.Loc}}
	if p.at(lex.Ident) {
		id := p.next()
		d.Name = id.Text
		d.NameLoc = id.Loc
		d.Header.End = id.Loc
		p.declareName(d.Name, symType)
	}
	if p.at(lex.LBrace) {
		lb := p.next()
		d.Body.Begin = lb.Loc
		for !p.at(lex.RBrace) && !p.at(lex.EOF) {
			id := p.expect(lex.Ident, "enumerator")
			e := ast.Enumerator{Name: id.Text, Loc: id.Loc}
			if p.accept(lex.Assign) {
				e.Value = p.parseConstantExpr()
			}
			d.Enumerators = append(d.Enumerators, e)
			if !p.accept(lex.Comma) {
				break
			}
		}
		rb := p.expect(lex.RBrace, "enum body")
		d.Body.End = rb.Loc
	}
	p.expect(lex.Semi, "enum declaration")
	return d
}

// --- templates -----------------------------------------------------------

// parseTemplate parses "template <...> declaration", explicit
// specializations ("template <>") and explicit instantiations
// ("template class Stack<int>;").
func (p *Parser) parseTemplate(access ast.Access) ast.Decl {
	startTok := p.pos
	kw := p.next() // template
	if !p.at(lex.Lt) {
		// Explicit instantiation: template class Stack<int>;
		ty := p.parseType()
		semi := p.expect(lex.Semi, "explicit instantiation")
		return &ast.ExplicitInstantiation{Type: ty,
			Pos: source.Span{Begin: kw.Loc, End: semi.Loc}}
	}
	p.next() // <
	info := &ast.TemplateInfo{KwLoc: kw.Loc}
	p.pushScope()
	defer p.popScope()
	for !p.at(lex.Gt) && !p.at(lex.EOF) {
		param := p.parseTemplateParam()
		info.Params = append(info.Params, param)
		if !p.accept(lex.Comma) {
			break
		}
	}
	if p.at(lex.Shr) {
		p.splitShr()
	}
	p.expect(lex.Gt, "template parameter list")

	var d ast.Decl
	t := p.peek()
	switch {
	case t.IsKw("class") || t.IsKw("struct") || t.IsKw("union"):
		if p.classHeadFollows() {
			d = p.parseClass(info)
		} else {
			d = p.parseFuncOrVar(access, info)
		}
	case t.IsKw("template"):
		// template<class T> template<class U> — member template
		// out-of-line definition; the inner clause carries the real
		// parameters for the function.
		inner := p.parseTemplate(access)
		if fd, ok := inner.(*ast.FunctionDecl); ok && fd.Template != nil {
			merged := append(append([]ast.TemplateParam{}, info.Params...), fd.Template.Params...)
			fd.Template.Params = merged
		}
		d = inner
	default:
		d = p.parseFuncOrVar(access, info)
	}
	info.Text = lex.Stringify(p.toks[startTok:p.pos])
	return d
}

func (p *Parser) parseTemplateParam() ast.TemplateParam {
	t := p.peek()
	if t.IsKw("class") || t.IsKw("typename") {
		p.next()
		param := ast.TemplateParam{IsType: true, Loc: t.Loc}
		if p.at(lex.Ident) {
			id := p.next()
			param.Name = id.Text
			param.Loc = id.Loc
			p.declareName(param.Name, symType)
		}
		if p.accept(lex.Assign) {
			param.DefaultType = p.parseType()
		}
		return param
	}
	// Non-type parameter: type name [= expr]
	ty := p.parseType()
	param := ast.TemplateParam{Type: ty, Loc: t.Loc}
	if p.at(lex.Ident) {
		id := p.next()
		param.Name = id.Text
		param.Loc = id.Loc
	}
	if p.accept(lex.Assign) {
		savedNoGt := p.noGt
		p.noGt = true
		param.DefaultExpr = p.parseConstantExpr()
		p.noGt = savedNoGt
	}
	return param
}

// --- classes --------------------------------------------------------------

// parseClass parses a class/struct/union declaration or definition.
// info carries the enclosing template clause, or nil.
func (p *Parser) parseClass(info *ast.TemplateInfo) ast.Decl {
	kwTok := p.next()
	var kind ast.ClassKind
	switch kwTok.Text {
	case "struct":
		kind = ast.Struct
	case "union":
		kind = ast.Union
	default:
		kind = ast.Class
	}
	d := &ast.ClassDecl{Kind: kind, Template: info,
		Header: source.Span{Begin: kwTok.Loc, End: kwTok.Loc}}
	if info != nil {
		d.Header.Begin = info.KwLoc
	}
	if p.at(lex.Ident) {
		id := p.next()
		d.Name = id.Text
		d.NameLoc = id.Loc
		d.Header.End = id.Loc
		if info != nil && !info.IsSpecialization() {
			p.declareName(d.Name, symTemplate)
		} else {
			if p.lookupName(d.Name) != symTemplate {
				p.declareName(d.Name, symType)
			}
		}
	}
	// Specialization arguments: template<> class Stack<int>
	if p.at(lex.Lt) {
		d.SpecArgs, _ = p.parseTemplateArgs()
	}
	if p.accept(lex.Semi) {
		return d // forward declaration
	}
	if p.at(lex.Colon) {
		p.next()
		defAccess := ast.Private
		if kind != ast.Class {
			defAccess = ast.Public
		}
		for {
			b := ast.BaseSpec{Access: defAccess}
			for {
				switch {
				case p.acceptKw("virtual"):
					b.Virtual = true
					continue
				case p.atKw("public"):
					p.next()
					b.Access = ast.Public
					continue
				case p.atKw("protected"):
					p.next()
					b.Access = ast.Protected
					continue
				case p.atKw("private"):
					p.next()
					b.Access = ast.Private
					continue
				}
				break
			}
			b.Name = p.parseQualNameInType()
			d.Bases = append(d.Bases, b)
			if !p.accept(lex.Comma) {
				break
			}
		}
	}
	lb := p.expect(lex.LBrace, "class body")
	d.IsDefinition = true
	d.Body.Begin = lb.Loc
	p.classStack = append(p.classStack, d.Name)
	p.pushScope()
	// The class name itself is a type inside its own body.
	if info != nil && !info.IsSpecialization() {
		p.declareName(d.Name, symTemplate)
	} else {
		p.declareName(d.Name, symType)
	}

	access := ast.Private
	if kind != ast.Class {
		access = ast.Public
	}
	for !p.at(lex.RBrace) && !p.at(lex.EOF) {
		switch {
		case p.atKw("public") && p.peekN(1).Kind == lex.Colon:
			p.next()
			p.next()
			access = ast.Public
		case p.atKw("protected") && p.peekN(1).Kind == lex.Colon:
			p.next()
			p.next()
			access = ast.Protected
		case p.atKw("private") && p.peekN(1).Kind == lex.Colon:
			p.next()
			p.next()
			access = ast.Private
		default:
			start := p.pos
			m := p.parseMemberDecl(access)
			if m != nil {
				d.Members = append(d.Members, ast.Member{Access: access, Decl: m, Friend: p.lastWasFriend})
			}
			if p.pos == start {
				p.errorf(p.peek().Loc, "unexpected token %s in class body", p.peek())
				p.next()
			}
		}
	}
	p.popScope()
	p.classStack = p.classStack[:len(p.classStack)-1]
	rb := p.expect(lex.RBrace, "class body")
	d.Body.End = rb.Loc
	p.expect(lex.Semi, "class declaration")
	return d
}

// parseMemberDecl parses one member of a class body.
func (p *Parser) parseMemberDecl(access ast.Access) ast.Decl {
	p.lastWasFriend = false
	t := p.peek()
	switch {
	case t.Kind == lex.Semi:
		p.next()
		return nil
	case t.IsKw("friend"):
		p.next()
		p.lastWasFriend = true
		if p.atKw("class") || p.atKw("struct") || p.atKw("union") {
			// friend class X;
			kw := p.next()
			name := p.parseQualNameInType()
			semi := p.expect(lex.Semi, "friend class declaration")
			return &ast.ClassDecl{Kind: classKindOf(kw.Text), Name: name.Terminal().Name,
				NameLoc: name.Loc(),
				Header:  source.Span{Begin: kw.Loc, End: semi.Loc}}
		}
		return p.parseFuncOrVar(access, nil)
	case t.IsKw("template"):
		return p.parseTemplate(access)
	case t.IsKw("typedef"):
		return p.parseTypedef()
	case t.IsKw("enum"):
		return p.parseEnum()
	case t.IsKw("using"):
		return p.parseUsing()
	case t.IsKw("class") || t.IsKw("struct") || t.IsKw("union"):
		if p.classHeadFollows() {
			return p.parseClass(nil)
		}
		return p.parseFuncOrVar(access, nil)
	default:
		return p.parseFuncOrVar(access, nil)
	}
}

func classKindOf(kw string) ast.ClassKind {
	switch kw {
	case "struct":
		return ast.Struct
	case "union":
		return ast.Union
	default:
		return ast.Class
	}
}
