package parse

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

// binary operator precedence (higher binds tighter). Assignment and the
// conditional operator are handled separately for right-associativity.
var binPrec = map[lex.Kind]int{
	lex.OrOr:   1,
	lex.AndAnd: 2,
	lex.Pipe:   3,
	lex.Caret:  4,
	lex.Amp:    5,
	lex.Eq:     6, lex.Ne: 6,
	lex.Lt: 7, lex.Gt: 7, lex.Le: 7, lex.Ge: 7,
	lex.Shl: 8, lex.Shr: 8,
	lex.Plus: 9, lex.Minus: 9,
	lex.Star: 10, lex.Slash: 10, lex.Percent: 10,
}

var binOpOf = map[lex.Kind]ast.BinOp{
	lex.OrOr: ast.LOr, lex.AndAnd: ast.LAnd, lex.Pipe: ast.BOr,
	lex.Caret: ast.BXor, lex.Amp: ast.BAnd,
	lex.Eq: ast.EqOp, lex.Ne: ast.NeOp,
	lex.Lt: ast.LtOp, lex.Gt: ast.GtOp, lex.Le: ast.LeOp, lex.Ge: ast.GeOp,
	lex.Shl: ast.ShlOp, lex.Shr: ast.ShrOp,
	lex.Plus: ast.Add, lex.Minus: ast.Sub,
	lex.Star: ast.Mul, lex.Slash: ast.Div, lex.Percent: ast.Rem,
}

var assignOpOf = map[lex.Kind]ast.BinOp{
	lex.Assign: ast.AssignOp, lex.PlusAssign: ast.AddAssign,
	lex.MinusAssign: ast.SubAssign, lex.StarAssign: ast.MulAssign,
	lex.SlashAssign: ast.DivAssign, lex.PercentAssign: ast.RemAssign,
	lex.AmpAssign: ast.AndAssign, lex.PipeAssign: ast.OrAssign,
	lex.CaretAssign: ast.XorAssign, lex.ShlAssign: ast.ShlAssignOp,
	lex.ShrAssign: ast.ShrAssignOp,
}

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() ast.Expr {
	e := p.parseAssignExpr()
	for p.at(lex.Comma) {
		loc := p.next().Loc
		r := p.parseAssignExpr()
		e = &ast.BinaryExpr{Op: ast.Comma, L: e, R: r, Pos: loc}
	}
	return e
}

// parseAssignExpr parses an assignment-expression (also the grammar
// production where throw-expressions live).
func (p *Parser) parseAssignExpr() ast.Expr {
	if p.atKw("throw") {
		kw := p.next()
		t := &ast.ThrowExpr{Pos: source.Span{Begin: kw.Loc, End: kw.Loc}}
		if !p.at(lex.Semi) && !p.at(lex.RParen) && !p.at(lex.Comma) && !p.at(lex.Colon) {
			t.Operand = p.parseAssignExpr()
			t.Pos.End = p.lastLoc()
		}
		return t
	}
	lhs := p.parseConditional(p.parseBinary(1))
	if op, ok := assignOpOf[p.peek().Kind]; ok {
		loc := p.next().Loc
		rhs := p.parseAssignExpr()
		return &ast.BinaryExpr{Op: op, L: lhs, R: rhs, Pos: loc}
	}
	return lhs
}

// parseConstantExpr parses a conditional-expression (no assignment, no
// comma) — used for array sizes, enum values, template arguments.
func (p *Parser) parseConstantExpr() ast.Expr {
	return p.parseConditional(p.parseBinary(1))
}

func (p *Parser) parseConditional(cond ast.Expr) ast.Expr {
	if !p.at(lex.Question) {
		return cond
	}
	loc := p.next().Loc
	thenE := p.parseAssignExpr()
	p.expect(lex.Colon, "conditional expression")
	elseE := p.parseAssignExpr()
	return &ast.CondExpr{C: cond, T: thenE, F: elseE, Pos: loc}
}

// noGt suppresses '>' (and '>>') as binary operators while parsing
// template arguments.
func (p *Parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		k := p.peek().Kind
		if p.noGt && (k == lex.Gt || k == lex.Shr) {
			return lhs
		}
		prec, ok := binPrec[k]
		if !ok || prec < minPrec {
			return lhs
		}
		opTok := p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.BinaryExpr{Op: binOpOf[k], L: lhs, R: rhs, Pos: opTok.Loc}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case lex.Plus:
		p.next()
		return &ast.UnaryExpr{Op: ast.Pos_, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.Minus:
		p.next()
		return &ast.UnaryExpr{Op: ast.Neg, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.Not:
		p.next()
		return &ast.UnaryExpr{Op: ast.LogNot, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.Tilde:
		// "~x" vs a destructor call "~C()" — destructor calls appear
		// only after '.'/'->', handled in parsePostfix.
		p.next()
		return &ast.UnaryExpr{Op: ast.BitNot, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.Star:
		p.next()
		return &ast.UnaryExpr{Op: ast.Deref, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.Amp:
		p.next()
		return &ast.UnaryExpr{Op: ast.AddrOf, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.PlusPlus:
		p.next()
		return &ast.UnaryExpr{Op: ast.PreInc, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.MinusMinus:
		p.next()
		return &ast.UnaryExpr{Op: ast.PreDec, Operand: p.parseUnary(), Pos: t.Loc}
	case lex.Keyword:
		switch t.Text {
		case "sizeof":
			return p.parseSizeof()
		case "new":
			return p.parseNew()
		case "delete":
			return p.parseDelete()
		case "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast":
			return p.parseNamedCast()
		}
	case lex.LParen:
		// C-style cast "(T)expr" vs parenthesized expression.
		if p.castFollows() {
			lp := p.next()
			ty := p.parseType()
			p.expect(lex.RParen, "cast")
			operand := p.parseUnary()
			return &ast.CastExpr{Style: ast.CCast, Type: ty, Operand: operand,
				Pos: source.Span{Begin: lp.Loc, End: p.lastLoc()}}
		}
	}
	return p.parsePostfix(p.parsePrimary())
}

// castFollows reports whether "(T)" at the cursor is a cast: the
// parenthesized tokens must form a type and be followed by an
// expression-start token.
func (p *Parser) castFollows() bool {
	save := p.pos
	defer func() { p.pos = save }()
	p.next() // '('
	if !p.startsType() {
		return false
	}
	saved := p.errs
	p.parseType()
	p.errs = saved
	if !p.at(lex.RParen) {
		return false
	}
	p.next()
	switch p.peek().Kind {
	case lex.Ident, lex.IntLit, lex.FloatLit, lex.CharLit, lex.StringLit,
		lex.LParen, lex.Tilde, lex.Not, lex.Star, lex.Amp,
		lex.PlusPlus, lex.MinusMinus:
		return true
	case lex.Keyword:
		switch p.peek().Text {
		case "this", "true", "false", "new", "sizeof":
			return true
		}
	}
	return false
}

func (p *Parser) parseSizeof() ast.Expr {
	kw := p.next()
	if p.at(lex.LParen) {
		save := p.pos
		p.next()
		if p.startsType() {
			ty := p.parseType()
			if p.at(lex.RParen) {
				rp := p.next()
				return &ast.SizeofExpr{Type: ty, Pos: source.Span{Begin: kw.Loc, End: rp.Loc}}
			}
		}
		p.pos = save
	}
	e := p.parseUnary()
	return &ast.SizeofExpr{E: e, Pos: source.Span{Begin: kw.Loc, End: p.lastLoc()}}
}

func (p *Parser) parseNew() ast.Expr {
	kw := p.next()
	n := &ast.NewExpr{Pos: source.Span{Begin: kw.Loc}}
	// "new (T)" or "new T"; placement new unsupported.
	n.Type = p.parseNewType()
	if p.at(lex.LBracket) {
		p.next()
		n.ArraySize = p.parseExpr()
		p.expect(lex.RBracket, "array new")
	} else if p.at(lex.LParen) {
		p.next()
		for !p.at(lex.RParen) && !p.at(lex.EOF) {
			n.Args = append(n.Args, p.parseAssignExpr())
			if !p.accept(lex.Comma) {
				break
			}
		}
		p.expect(lex.RParen, "new initializer")
	}
	n.Pos.End = p.lastLoc()
	return n
}

// parseNewType parses the type of a new-expression: specifier plus
// pointer operators (but array/paren parts handled by parseNew).
func (p *Parser) parseNewType() ast.TypeExpr {
	base := p.parseTypeSpecifier()
	for p.at(lex.Star) {
		loc := p.next().Loc
		base = &ast.PointerType{Elem: base, Pos: loc}
	}
	return base
}

func (p *Parser) parseDelete() ast.Expr {
	kw := p.next()
	d := &ast.DeleteExpr{Pos: source.Span{Begin: kw.Loc}}
	if p.at(lex.LBracket) {
		p.next()
		p.expect(lex.RBracket, "delete[]")
		d.Array = true
	}
	d.Operand = p.parseUnary()
	d.Pos.End = p.lastLoc()
	return d
}

func (p *Parser) parseNamedCast() ast.Expr {
	kw := p.next()
	var style ast.CastStyle
	switch kw.Text {
	case "static_cast":
		style = ast.StaticCast
	case "const_cast":
		style = ast.ConstCast
	case "reinterpret_cast":
		style = ast.ReinterpretCast
	case "dynamic_cast":
		style = ast.DynamicCast
	}
	p.expect(lex.Lt, kw.Text)
	ty := p.parseType()
	if p.at(lex.Shr) {
		p.splitShr()
	}
	p.expect(lex.Gt, kw.Text)
	p.expect(lex.LParen, kw.Text)
	e := p.parseExpr()
	rp := p.expect(lex.RParen, kw.Text)
	return &ast.CastExpr{Style: style, Type: ty, Operand: e,
		Pos: source.Span{Begin: kw.Loc, End: rp.Loc}}
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case lex.IntLit:
		p.next()
		v, err := lex.IntValue(t.Text)
		if err != nil {
			p.errorf(t.Loc, "%v", err)
		}
		return &ast.IntLit{Value: v, Text: t.Text, Pos: t.Loc}
	case lex.FloatLit:
		p.next()
		v, err := lex.FloatValue(t.Text)
		if err != nil {
			p.errorf(t.Loc, "%v", err)
		}
		return &ast.FloatLit{Value: v, Text: t.Text, Pos: t.Loc}
	case lex.CharLit:
		p.next()
		v, err := lex.CharValue(t.Text)
		if err != nil {
			p.errorf(t.Loc, "%v", err)
		}
		return &ast.CharLit{Value: v, Text: t.Text, Pos: t.Loc}
	case lex.StringLit:
		p.next()
		v, err := lex.StringValue(t.Text)
		if err != nil {
			p.errorf(t.Loc, "%v", err)
		}
		// Adjacent string literals concatenate.
		for p.at(lex.StringLit) {
			t2 := p.next()
			v2, _ := lex.StringValue(t2.Text)
			v += v2
		}
		return &ast.StringLit{Value: v, Pos: t.Loc}
	case lex.LParen:
		lp := p.next()
		savedNoGt := p.noGt
		p.noGt = false
		e := p.parseExpr()
		p.noGt = savedNoGt
		rp := p.expect(lex.RParen, "parenthesized expression")
		return &ast.ParenExpr{E: e, Pos: source.Span{Begin: lp.Loc, End: rp.Loc}}
	case lex.Keyword:
		switch t.Text {
		case "this":
			p.next()
			return &ast.ThisExpr{Pos: t.Loc}
		case "true":
			p.next()
			return &ast.BoolLit{Value: true, Pos: t.Loc}
		case "false":
			p.next()
			return &ast.BoolLit{Value: false, Pos: t.Loc}
		case "bool", "char", "int", "long", "short", "float", "double",
			"unsigned", "signed", "void":
			// Functional cast on a fundamental type: int(x).
			ty := p.parseTypeSpecifier()
			return p.parseConstructOrName(ty, t.Loc)
		case "operator":
			// Address of an operator function: &operator<< — rare;
			// parse the name.
			name := p.parseQualName(true)
			return &ast.NameExpr{Name: name}
		}
	case lex.Ident, lex.ColonCol:
		name := p.parseQualName(true)
		// Functional construction: T(...) where T names a type.
		term := name.Terminal()
		if p.at(lex.LParen) && (p.isTypeName(term.Name) || (term.HasArgs && p.isTypeName(term.Name))) {
			ty := &ast.NamedType{Name: name}
			return p.parseConstructOrName(ty, name.Loc())
		}
		return &ast.NameExpr{Name: name}
	}
	p.errorf(t.Loc, "expected expression, found %s", t)
	p.next()
	return &ast.IntLit{Value: 0, Text: "0", Pos: t.Loc}
}

// parseConstructOrName parses "T(args)" as a construction/functional
// cast; a bare type name in expression context is an error the caller
// reports later.
func (p *Parser) parseConstructOrName(ty ast.TypeExpr, loc source.Loc) ast.Expr {
	if !p.at(lex.LParen) {
		if nt, ok := ty.(*ast.NamedType); ok {
			return &ast.NameExpr{Name: nt.Name}
		}
		p.errorf(loc, "type name used as expression")
		return &ast.IntLit{Value: 0, Text: "0", Pos: loc}
	}
	lp := p.next()
	var args []ast.Expr
	for !p.at(lex.RParen) && !p.at(lex.EOF) {
		args = append(args, p.parseAssignExpr())
		if !p.accept(lex.Comma) {
			break
		}
	}
	rp := p.expect(lex.RParen, "construction")
	span := source.Span{Begin: loc, End: rp.Loc}
	_ = lp
	if len(args) == 1 {
		return &ast.CastExpr{Style: ast.FunctionalCast, Type: ty, Operand: args[0], Pos: span}
	}
	return &ast.ConstructExpr{Type: ty, Args: args, Pos: span}
}

func (p *Parser) parsePostfix(e ast.Expr) ast.Expr {
	for {
		t := p.peek()
		switch t.Kind {
		case lex.LParen:
			lp := p.next()
			call := &ast.CallExpr{Fn: e, LParen: lp.Loc}
			savedNoGt := p.noGt
			p.noGt = false
			for !p.at(lex.RParen) && !p.at(lex.EOF) {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(lex.Comma) {
					break
				}
			}
			p.noGt = savedNoGt
			rp := p.expect(lex.RParen, "call")
			call.Pos = source.Span{Begin: e.Span().Begin, End: rp.Loc}
			e = call
		case lex.LBracket:
			p.next()
			idx := p.parseExpr()
			rb := p.expect(lex.RBracket, "subscript")
			e = &ast.IndexExpr{Base: e, Index: idx,
				Pos: source.Span{Begin: e.Span().Begin, End: rb.Loc}}
		case lex.Dot, lex.Arrow:
			p.next()
			name := p.parseQualName(true)
			e = &ast.MemberExpr{Base: e, Arrow: t.Kind == lex.Arrow,
				Name: name, Pos: name.Loc()}
		case lex.PlusPlus:
			p.next()
			e = &ast.UnaryExpr{Op: ast.PostInc, Operand: e, Pos: t.Loc}
		case lex.MinusMinus:
			p.next()
			e = &ast.UnaryExpr{Op: ast.PostDec, Operand: e, Pos: t.Loc}
		default:
			return e
		}
	}
}
