package parse

import (
	"testing"

	"pdt/internal/cpp/ast"
)

func TestQualifiedTypeInBlockScope(t *testing.T) {
	src := `namespace lib { class Widget { public: int id; }; }
void f() {
    lib::Widget w;
    w.id = 3;
    ::lib::Widget g;
    g.id = 4;
}`
	tu := parseSrc(t, src, nil)
	fn := tu.Decls[1].(*ast.FunctionDecl)
	ds, ok := fn.Body.Stmts[0].(*ast.DeclStmt)
	if !ok {
		t.Fatalf("stmt 0 = %T, want DeclStmt", fn.Body.Stmts[0])
	}
	v := ds.Decls[0].(*ast.VarDecl)
	nt := v.Type.(*ast.NamedType)
	if nt.Name.String() != "lib::Widget" {
		t.Errorf("type = %q", nt.Name.String())
	}
	ds2, ok := fn.Body.Stmts[2].(*ast.DeclStmt)
	if !ok {
		t.Fatalf("stmt 2 = %T, want DeclStmt (globally qualified)", fn.Body.Stmts[2])
	}
	nt2 := ds2.Decls[0].(*ast.VarDecl).Type.(*ast.NamedType)
	if !nt2.Name.Global {
		t.Error("global qualification lost")
	}
}

func TestFunctionalCastsOfFundamentals(t *testing.T) {
	src := `double g() {
    int a = int(2.9);
    double b = double(a);
    unsigned u = unsigned(7);
    return b + a + u;
}`
	tu := parseSrc(t, src, nil)
	fn := firstDecl[*ast.FunctionDecl](t, tu)
	ds := fn.Body.Stmts[0].(*ast.DeclStmt)
	v := ds.Decls[0].(*ast.VarDecl)
	cast, ok := v.Init.(*ast.CastExpr)
	if !ok || cast.Style != ast.FunctionalCast {
		t.Fatalf("init = %#v", v.Init)
	}
}

func TestTernaryChainsAndComma(t *testing.T) {
	src := `int f(int x) {
    int r = x > 10 ? 1 : x > 5 ? 2 : 3;
    int a, b;
    a = 1, b = 2;
    for (a = 0, b = 10; a < b; a++, b--) { }
    return r + a + b;
}`
	tu := parseSrc(t, src, nil)
	fn := firstDecl[*ast.FunctionDecl](t, tu)
	if len(fn.Body.Stmts) != 5 {
		t.Fatalf("stmts = %d", len(fn.Body.Stmts))
	}
	es := fn.Body.Stmts[2].(*ast.ExprStmt)
	bin := es.E.(*ast.BinaryExpr)
	if bin.Op != ast.Comma {
		t.Errorf("comma op = %v", bin.Op)
	}
}

func TestDanglingElse(t *testing.T) {
	src := `int f(int a, int b) {
    if (a)
        if (b)
            return 1;
        else
            return 2;
    return 3;
}`
	tu := parseSrc(t, src, nil)
	fn := firstDecl[*ast.FunctionDecl](t, tu)
	outer := fn.Body.Stmts[0].(*ast.IfStmt)
	if outer.Else != nil {
		t.Error("else must bind to the inner if")
	}
	inner := outer.Then.(*ast.IfStmt)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}

func TestDeleteThisAndChainedCalls(t *testing.T) {
	src := `class Node {
public:
    Node *next;
    Node *advance() { return next; }
    void destroy() { delete this; }
};
Node *walk(Node *n) { return n->advance()->advance(); }`
	tu := parseSrc(t, src, nil)
	if len(tu.Decls) != 2 {
		t.Fatalf("decls = %d", len(tu.Decls))
	}
}

func TestNegativeTemplateArgs(t *testing.T) {
	src := `template <int N> class Bias { public: int v[10]; };
Bias<-3> b;`
	tu := parseSrc(t, src, nil)
	var v *ast.VarDecl
	for _, d := range tu.Decls {
		if vd, ok := d.(*ast.VarDecl); ok {
			v = vd
		}
	}
	nt := v.Type.(*ast.NamedType)
	arg := nt.Name.Segs[0].Args[0]
	if arg.Expr == nil {
		t.Fatal("negative arg lost")
	}
	u := arg.Expr.(*ast.UnaryExpr)
	if u.Op != ast.Neg {
		t.Errorf("arg = %#v", arg.Expr)
	}
}

func TestConstMethodsReturningConstRefs(t *testing.T) {
	src := `template <class T> class Wrap {
public:
    const T & view() const { return item; }
    T & edit() { return item; }
private:
    T item;
};`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	view := c.Members[0].Decl.(*ast.FunctionDecl)
	if !view.Const {
		t.Error("view should be const")
	}
	ref := view.Ret.(*ast.RefType)
	if _, ok := ref.Elem.(*ast.ConstType); !ok {
		t.Errorf("view ret = %#v", view.Ret)
	}
	edit := c.Members[1].Decl.(*ast.FunctionDecl)
	if edit.Const {
		t.Error("edit should not be const")
	}
}

func TestErrorsAccessors(t *testing.T) {
	_, errs := parseSrcErrs(t, "class ;;; 123 junk", nil)
	if len(errs) == 0 {
		t.Fatal("expected errors")
	}
	if errs[0].Error() == "" {
		t.Error("error string empty")
	}
}

func TestPrefixSuffixIncrementMix(t *testing.T) {
	src := `int f() {
    int i = 0;
    int a = i++ + ++i;
    int b = --i - i--;
    return a + b;
}`
	tu := parseSrc(t, src, nil)
	fn := firstDecl[*ast.FunctionDecl](t, tu)
	if len(fn.Body.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(fn.Body.Stmts))
	}
}

func TestThrowInExpressions(t *testing.T) {
	src := `int f(int x) {
    int v = x > 0 ? x : throw 5;
    return v;
}`
	tu := parseSrc(t, src, nil)
	fn := firstDecl[*ast.FunctionDecl](t, tu)
	ds := fn.Body.Stmts[0].(*ast.DeclStmt)
	cond := ds.Decls[0].(*ast.VarDecl).Init.(*ast.CondExpr)
	if _, ok := cond.F.(*ast.ThrowExpr); !ok {
		t.Errorf("false arm = %#v", cond.F)
	}
}

func TestMultiDimArrays(t *testing.T) {
	src := `double grid[4][8];
void f() { grid[1][2] = 3.5; }`
	tu := parseSrc(t, src, nil)
	v := firstDecl[*ast.VarDecl](t, tu)
	outer := v.Type.(*ast.ArrayType)
	inner, ok := outer.Elem.(*ast.ArrayType)
	if !ok {
		t.Fatalf("type = %#v", v.Type)
	}
	_ = inner
}

func TestUnsignedCombos(t *testing.T) {
	src := `unsigned a; unsigned int b; unsigned long c; signed char d;
long long e; unsigned long long f2; short g; long double h;`
	tu := parseSrc(t, src, nil)
	specs := map[string]string{}
	collect := func(d ast.Decl) {
		if v, ok := d.(*ast.VarDecl); ok {
			if bt, ok := v.Type.(*ast.BuiltinType); ok {
				specs[v.Name] = bt.Spec
			}
		}
	}
	for _, d := range tu.Decls {
		if g, ok := d.(*ast.DeclGroup); ok {
			for _, inner := range g.Decls {
				collect(inner)
			}
		} else {
			collect(d)
		}
	}
	want := map[string]string{
		"a": "unsigned int", "b": "unsigned int", "c": "unsigned long",
		"d": "signed char", "e": "long long", "f2": "unsigned long long",
		"g": "short", "h": "long double",
	}
	for name, spec := range want {
		if specs[name] != spec {
			t.Errorf("%s = %q, want %q", name, specs[name], spec)
		}
	}
}
