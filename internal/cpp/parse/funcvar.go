package parse

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

// declSpecs holds the leading specifiers of a declaration.
type declSpecs struct {
	storage  ast.StorageClass
	virtual  bool
	inline   bool
	explicit bool
}

func (p *Parser) parseDeclSpecs() declSpecs {
	var s declSpecs
	for {
		switch {
		case p.acceptKw("virtual"):
			s.virtual = true
		case p.acceptKw("inline"):
			s.inline = true
		case p.acceptKw("explicit"):
			s.explicit = true
		case p.acceptKw("static"):
			s.storage = ast.Static
		case p.acceptKw("extern"):
			s.storage = ast.Extern
		case p.acceptKw("register"):
			s.storage = ast.Register
		case p.acceptKw("mutable"):
			s.storage = ast.Mutable
		case p.acceptKw("auto"):
			s.storage = ast.Auto
		default:
			return s
		}
	}
}

// parseFuncOrVar parses a function or variable declaration (namespace
// scope or member), including constructors, destructors, operators and
// conversion functions. info carries the template clause, if any.
func (p *Parser) parseFuncOrVar(access ast.Access, info *ast.TemplateInfo) ast.Decl {
	startLoc := p.peek().Loc
	if info != nil {
		startLoc = info.KwLoc
	}
	specs := p.parseDeclSpecs()

	inClass := p.currentClass() != ""

	// Conversion operator: "operator T() ..." (member only).
	if p.atKw("operator") && inClass {
		opLoc := p.next().Loc
		convType := p.parseType()
		fd := &ast.FunctionDecl{
			Name: ast.QualName{Segs: []ast.Seg{{Name: "operator " + convType.String(), Loc: opLoc}}},
			Kind: ast.Conversion, Ret: convType, Template: info, Linkage: "C++",
			Virtual: specs.virtual, Inline: specs.inline, Storage: specs.storage,
			Header: source.Span{Begin: startLoc, End: opLoc},
		}
		p.expectFunctionParen(fd)
		return p.finishFunction(fd)
	}

	// In-class destructor: "~C() {...}".
	if p.at(lex.Tilde) && inClass {
		loc := p.peek().Loc
		name := p.parseQualName(true)
		fd := &ast.FunctionDecl{Name: name, Kind: ast.Destructor, Template: info,
			Linkage: "C++", Virtual: specs.virtual, Inline: specs.inline,
			Header: source.Span{Begin: startLoc, End: loc}}
		p.expectFunctionParen(fd)
		return p.finishFunction(fd)
	}

	// In-class constructor: "C(...)" where C is the current class.
	if inClass && p.at(lex.Ident) && p.peek().Text == p.currentClass() &&
		p.peekN(1).Kind == lex.LParen {
		id := p.next()
		fd := &ast.FunctionDecl{
			Name: ast.QualName{Segs: []ast.Seg{{Name: id.Text, Loc: id.Loc}}},
			Kind: ast.Constructor, Template: info, Linkage: "C++",
			Explicit: specs.explicit, Inline: specs.inline,
			Header: source.Span{Begin: startLoc, End: id.Loc},
		}
		p.expectFunctionParen(fd)
		return p.finishFunction(fd)
	}

	// General path: type then declarator(s).
	baseType := p.parseTypeSpecifier()

	// Reinterpretation: the "type" may actually be a constructor or
	// destructor name (out-of-line "Stack<Object>::Stack", "...::~Stack").
	if nt, ok := baseType.(*ast.NamedType); ok && p.at(lex.LParen) {
		if kind, isCtorDtor := ctorDtorNameKind(nt.Name, p.currentClass()); isCtorDtor {
			fd := &ast.FunctionDecl{Name: nt.Name, Kind: kind, Template: info,
				Linkage: "C++", Explicit: specs.explicit, Inline: specs.inline,
				Virtual: specs.virtual,
				Header:  source.Span{Begin: startLoc, End: nt.Name.Terminal().Loc}}
			p.expectFunctionParen(fd)
			return p.finishFunction(fd)
		}
	}

	var decls []ast.Decl
	for {
		d := p.parseDeclarator(baseType, specs, info, access, startLoc)
		if d == nil {
			p.syncDecl()
			return groupOf(decls, startLoc, p.lastLoc())
		}
		if fd, ok := d.(*ast.FunctionDecl); ok {
			// Functions cannot share a declarator list in the subset.
			return fd
		}
		decls = append(decls, d)
		if p.accept(lex.Comma) {
			continue
		}
		p.expect(lex.Semi, "declaration")
		return groupOf(decls, startLoc, p.lastLoc())
	}
}

func groupOf(decls []ast.Decl, begin, end source.Loc) ast.Decl {
	switch len(decls) {
	case 0:
		return nil
	case 1:
		return decls[0]
	default:
		return &ast.DeclGroup{Decls: decls, Pos: source.Span{Begin: begin, End: end}}
	}
}

// ctorDtorNameKind inspects a qualified name that was parsed as a type
// and reports whether it actually names a constructor ("C::C",
// unqualified "C" matching the current class) or destructor ("C::~C").
func ctorDtorNameKind(q ast.QualName, currentClass string) (ast.RoutineKind, bool) {
	t := q.Terminal()
	if strings.HasPrefix(t.Name, "~") {
		return ast.Destructor, true
	}
	if len(q.Segs) >= 2 {
		prev := q.Segs[len(q.Segs)-2]
		if prev.Name == t.Name {
			return ast.Constructor, true
		}
	} else if currentClass != "" && t.Name == currentClass {
		return ast.Constructor, true
	}
	return ast.PlainFunction, false
}

// parseDeclarator parses one declarator given the base type, producing a
// VarDecl or FunctionDecl.
func (p *Parser) parseDeclarator(baseType ast.TypeExpr, specs declSpecs, info *ast.TemplateInfo, access ast.Access, startLoc source.Loc) ast.Decl {
	ty := p.parseTypeOps(baseType)

	if p.at(lex.Semi) {
		// Bare "class C;"-style already handled; "int;" is an error but
		// elaborated friend decls can land here; emit nothing.
		return &ast.VarDecl{Name: "", Type: ty, Pos: source.Span{Begin: startLoc, End: p.peek().Loc}}
	}

	// operator declarations: "bool operator==(...)"
	if p.atKw("operator") {
		opLoc := p.peek().Loc
		name := p.parseQualName(true)
		fd := &ast.FunctionDecl{Name: name, Kind: ast.Operator,
			OpName: strings.TrimPrefix(name.Terminal().Name, "operator"),
			Ret:    ty, Template: info, Linkage: "C++",
			Virtual: specs.virtual, Inline: specs.inline, Storage: specs.storage,
			Header: source.Span{Begin: startLoc, End: opLoc}}
		p.expectFunctionParen(fd)
		return p.finishFunction(fd)
	}

	if !p.at(lex.Ident) && !p.at(lex.ColonCol) && !p.at(lex.Tilde) {
		p.errorf(p.peek().Loc, "expected declarator name, found %s", p.peek())
		return nil
	}
	name := p.parseQualName(true)
	nameLoc := name.Terminal().Loc

	// Qualified operator definitions: "bool Stack<T>::operator==(...)"
	if isOperatorSegName(name.Terminal().Name) {
		fd := &ast.FunctionDecl{Name: name, Kind: ast.Operator,
			OpName: strings.TrimPrefix(name.Terminal().Name, "operator"),
			Ret:    ty, Template: info, Linkage: "C++",
			Virtual: specs.virtual, Inline: specs.inline, Storage: specs.storage,
			Header: source.Span{Begin: startLoc, End: nameLoc}}
		p.expectFunctionParen(fd)
		return p.finishFunction(fd)
	}

	if p.at(lex.LParen) && p.parenStartsParams() {
		fd := &ast.FunctionDecl{Name: name, Kind: ast.PlainFunction, Ret: ty,
			Template: info, Linkage: "C++",
			Virtual: specs.virtual, Inline: specs.inline, Storage: specs.storage,
			Header: source.Span{Begin: startLoc, End: nameLoc}}
		if info != nil && name.IsSimple() {
			p.declareName(name.Terminal().Name, symFuncTemplate)
		}
		p.expectFunctionParen(fd)
		return p.finishFunction(fd)
	}

	// Variable.
	v := &ast.VarDecl{Name: name.Terminal().Name, NameLoc: nameLoc, Type: ty,
		Storage: specs.storage, Pos: source.Span{Begin: startLoc, End: nameLoc}}
	if len(name.Segs) > 1 {
		// Out-of-line static member definition: keep full name in Name.
		v.Name = name.String()
	}
	for p.at(lex.LBracket) {
		p.next()
		var size ast.Expr
		if !p.at(lex.RBracket) {
			size = p.parseConstantExpr()
		}
		p.expect(lex.RBracket, "array declarator")
		v.Type = &ast.ArrayType{Elem: v.Type, Size: size, Pos: nameLoc}
	}
	switch {
	case p.accept(lex.Assign):
		v.Init = p.parseAssignExpr()
	case p.at(lex.LParen):
		p.next()
		v.HasCtorArgs = true
		for !p.at(lex.RParen) && !p.at(lex.EOF) {
			v.CtorArgs = append(v.CtorArgs, p.parseAssignExpr())
			if !p.accept(lex.Comma) {
				break
			}
		}
		p.expect(lex.RParen, "initializer")
	}
	v.Pos.End = p.peek().Loc
	return v
}

// parenStartsParams disambiguates "T f(...)" (function declarator) from
// "T x(args)" (variable with constructor arguments) at block scope. At
// namespace/class scope a '(' always begins parameters.
func (p *Parser) parenStartsParams() bool {
	if !p.inBlock {
		return true
	}
	// Block scope: parameters start with a type or ')' (empty list, the
	// "most vexing parse" — treated as a declaration, as the standard
	// requires).
	save := p.pos
	defer func() { p.pos = save }()
	p.next() // '('
	if p.at(lex.RParen) {
		return true
	}
	return p.startsType()
}

// expectFunctionParen parses the parameter list into fd.
func (p *Parser) expectFunctionParen(fd *ast.FunctionDecl) {
	p.expect(lex.LParen, "parameter list")
	if p.atKw("void") && p.peekN(1).Kind == lex.RParen {
		p.next()
	}
	for !p.at(lex.RParen) && !p.at(lex.EOF) {
		if p.at(lex.Ellipsis) {
			loc := p.next().Loc
			fd.Params = append(fd.Params, &ast.ParamDecl{Ellipsis: true, NameLoc: loc})
			break
		}
		fd.Params = append(fd.Params, p.parseParam())
		if !p.accept(lex.Comma) {
			break
		}
	}
	p.expect(lex.RParen, "parameter list")
}

func (p *Parser) parseParam() *ast.ParamDecl {
	ty := p.parseType()
	param := &ast.ParamDecl{Type: ty}
	if p.at(lex.Ident) {
		id := p.next()
		param.Name = id.Text
		param.NameLoc = id.Loc
	}
	// Abstract function declarators in parameters ("T ()", "T (*f)(U)")
	// — the "most vexing parse" outcome. The paren groups are consumed
	// and the parameter is recorded with its return type only.
	for p.at(lex.LParen) {
		p.skipBalancedParens()
	}
	for p.at(lex.LBracket) {
		p.next()
		var size ast.Expr
		if !p.at(lex.RBracket) {
			size = p.parseConstantExpr()
		}
		p.expect(lex.RBracket, "parameter array")
		// Array parameters decay to pointers.
		param.Type = &ast.PointerType{Elem: param.Type, Pos: param.NameLoc}
		_ = size
	}
	if p.accept(lex.Assign) {
		param.Default = p.parseAssignExpr()
	}
	return param
}

// finishFunction parses everything after the parameter list: cv
// qualifiers, exception specification, pure-virtual marker, constructor
// initializers, and the body.
func (p *Parser) finishFunction(fd *ast.FunctionDecl) ast.Decl {
	if p.acceptKw("const") {
		fd.Const = true
	}
	p.acceptKw("volatile")
	if p.atKw("throw") && p.peekN(1).Kind == lex.LParen {
		p.next()
		p.next()
		fd.HasThrow = true
		for !p.at(lex.RParen) && !p.at(lex.EOF) {
			fd.Throws = append(fd.Throws, p.parseType())
			if !p.accept(lex.Comma) {
				break
			}
		}
		p.expect(lex.RParen, "exception specification")
	}
	fd.Header.End = p.lastLoc()

	// Pure virtual: "= 0 ;"
	if p.at(lex.Assign) && p.peekN(1).Kind == lex.IntLit && p.peekN(1).Text == "0" {
		p.next()
		p.next()
		fd.PureVirtual = true
		p.expect(lex.Semi, "pure virtual declaration")
		return fd
	}
	// Constructor initializers.
	if p.at(lex.Colon) && fd.Kind == ast.Constructor {
		p.next()
		for {
			var init ast.CtorInit
			init.Name = p.parseQualName(true)
			p.expect(lex.LParen, "constructor initializer")
			for !p.at(lex.RParen) && !p.at(lex.EOF) {
				init.Args = append(init.Args, p.parseAssignExpr())
				if !p.accept(lex.Comma) {
					break
				}
			}
			p.expect(lex.RParen, "constructor initializer")
			fd.Inits = append(fd.Inits, init)
			if !p.accept(lex.Comma) {
				break
			}
		}
	}
	switch {
	case p.at(lex.LBrace):
		fd.Body = p.parseCompound()
		fd.Body2 = fd.Body.Pos
	case p.accept(lex.Semi):
		// declaration only
	default:
		p.errorf(p.peek().Loc, "expected function body or ';', found %s", p.peek())
		p.syncDecl()
	}
	return fd
}
