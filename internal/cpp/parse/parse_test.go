package parse

import (
	"testing"

	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/pp"
	"pdt/internal/source"
)

// parseSrc preprocesses and parses src as main.cpp with optional extra
// files, failing the test on any diagnostic.
func parseSrc(t *testing.T, src string, extra map[string]string) *ast.TranslationUnit {
	t.Helper()
	tu, errs := parseSrcErrs(t, src, extra)
	for _, e := range errs {
		t.Errorf("parse error: %v", e)
	}
	return tu
}

func parseSrcErrs(t *testing.T, src string, extra map[string]string) (*ast.TranslationUnit, []*Error) {
	t.Helper()
	fs := source.NewFileSet()
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	main := fs.AddVirtualFile("main.cpp", src)
	pre := pp.New(fs)
	toks := pre.Process(main)
	for _, e := range pre.Errors() {
		t.Errorf("pp error: %v", e)
	}
	return ParseFile(main, toks)
}

func firstDecl[T ast.Decl](t *testing.T, tu *ast.TranslationUnit) T {
	t.Helper()
	for _, d := range tu.Decls {
		if v, ok := d.(T); ok {
			return v
		}
	}
	var zero T
	t.Fatalf("no %T in translation unit (decls: %#v)", zero, tu.Decls)
	return zero
}

func TestSimpleVar(t *testing.T) {
	tu := parseSrc(t, "int x = 42;", nil)
	v := firstDecl[*ast.VarDecl](t, tu)
	if v.Name != "x" {
		t.Errorf("name = %q", v.Name)
	}
	if bt, ok := v.Type.(*ast.BuiltinType); !ok || bt.Spec != "int" {
		t.Errorf("type = %v", v.Type)
	}
	if lit, ok := v.Init.(*ast.IntLit); !ok || lit.Value != 42 {
		t.Errorf("init = %#v", v.Init)
	}
}

func TestMultiDeclarator(t *testing.T) {
	tu := parseSrc(t, "int a, *b, c[3];", nil)
	g := firstDecl[*ast.DeclGroup](t, tu)
	if len(g.Decls) != 3 {
		t.Fatalf("got %d decls", len(g.Decls))
	}
	b := g.Decls[1].(*ast.VarDecl)
	if _, ok := b.Type.(*ast.PointerType); !ok {
		t.Errorf("b type = %v", b.Type)
	}
	c := g.Decls[2].(*ast.VarDecl)
	if _, ok := c.Type.(*ast.ArrayType); !ok {
		t.Errorf("c type = %v", c.Type)
	}
}

func TestFunctionDecl(t *testing.T) {
	tu := parseSrc(t, "double hypot(double a, double b = 1.0);", nil)
	f := firstDecl[*ast.FunctionDecl](t, tu)
	if f.Name.String() != "hypot" || len(f.Params) != 2 {
		t.Fatalf("f = %v params=%d", f.Name, len(f.Params))
	}
	if f.Params[1].Default == nil {
		t.Error("default argument missing")
	}
	if f.Body != nil {
		t.Error("declaration should have no body")
	}
}

func TestFunctionDef(t *testing.T) {
	tu := parseSrc(t, "int add(int a, int b) { return a + b; }", nil)
	f := firstDecl[*ast.FunctionDecl](t, tu)
	if f.Body == nil || len(f.Body.Stmts) != 1 {
		t.Fatalf("body = %#v", f.Body)
	}
	ret := f.Body.Stmts[0].(*ast.ReturnStmt)
	bin := ret.E.(*ast.BinaryExpr)
	if bin.Op != ast.Add {
		t.Errorf("op = %v", bin.Op)
	}
}

func TestClassWithMembers(t *testing.T) {
	src := `class Point {
public:
    Point(int x, int y);
    ~Point();
    int getX() const;
    virtual void move(int dx, int dy);
    static int count;
private:
    int x, y;
};`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	if c.Name != "Point" || !c.IsDefinition {
		t.Fatalf("class = %+v", c)
	}
	var kinds []ast.RoutineKind
	var accesses []ast.Access
	for _, m := range c.Members {
		if fd, ok := m.Decl.(*ast.FunctionDecl); ok {
			kinds = append(kinds, fd.Kind)
			accesses = append(accesses, m.Access)
			if fd.Name.Terminal().Name == "getX" && !fd.Const {
				t.Error("getX should be const")
			}
			if fd.Name.Terminal().Name == "move" && !fd.Virtual {
				t.Error("move should be virtual")
			}
		}
	}
	want := []ast.RoutineKind{ast.Constructor, ast.Destructor, ast.PlainFunction, ast.PlainFunction}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kind[%d] = %v, want %v", i, kinds[i], want[i])
		}
		if accesses[i] != ast.Public {
			t.Errorf("access[%d] = %v", i, accesses[i])
		}
	}
	// x, y private members
	last := c.Members[len(c.Members)-1]
	if last.Access != ast.Private {
		t.Errorf("last member access = %v", last.Access)
	}
}

func TestInheritance(t *testing.T) {
	src := `class Base {};
class Mid {};
class Derived : public Base, protected virtual Mid {};`
	tu := parseSrc(t, src, nil)
	var derived *ast.ClassDecl
	for _, d := range tu.Decls {
		if c, ok := d.(*ast.ClassDecl); ok && c.Name == "Derived" {
			derived = c
		}
	}
	if derived == nil || len(derived.Bases) != 2 {
		t.Fatalf("derived = %+v", derived)
	}
	if derived.Bases[0].Access != ast.Public || derived.Bases[0].Name.String() != "Base" {
		t.Errorf("base0 = %+v", derived.Bases[0])
	}
	if derived.Bases[1].Access != ast.Protected || !derived.Bases[1].Virtual {
		t.Errorf("base1 = %+v", derived.Bases[1])
	}
}

func TestStructDefaultAccess(t *testing.T) {
	tu := parseSrc(t, "struct S { int x; };", nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	if c.Kind != ast.Struct || c.Members[0].Access != ast.Public {
		t.Errorf("struct member access = %v", c.Members[0].Access)
	}
}

func TestClassTemplate(t *testing.T) {
	src := `template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10);
    bool isEmpty() const;
    void push(const Object & x);
private:
    int topOfStack;
};`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	if c.Template == nil || len(c.Template.Params) != 1 {
		t.Fatalf("template info = %+v", c.Template)
	}
	if !c.Template.Params[0].IsType || c.Template.Params[0].Name != "Object" {
		t.Errorf("param = %+v", c.Template.Params[0])
	}
	// explicit ctor
	ctor := c.Members[0].Decl.(*ast.FunctionDecl)
	if ctor.Kind != ast.Constructor || !ctor.Explicit {
		t.Errorf("ctor = %+v", ctor)
	}
	// const member function with reference-to-const param
	push := c.Members[2].Decl.(*ast.FunctionDecl)
	ref, ok := push.Params[0].Type.(*ast.RefType)
	if !ok {
		t.Fatalf("push param type = %v", push.Params[0].Type)
	}
	if _, ok := ref.Elem.(*ast.ConstType); !ok {
		t.Errorf("push param elem = %v", ref.Elem)
	}
}

func TestOutOfLineMemberTemplate(t *testing.T) {
	src := `template <class Object> class Stack { public: void push(const Object & x); bool isFull() const; };
template <class Object>
void Stack<Object>::push(const Object & x) {
    theArray[++topOfStack] = x;
}
template <class Object>
bool Stack<Object>::isFull() const {
    return topOfStack == 10;
}`
	tu := parseSrc(t, src, nil)
	if len(tu.Decls) != 3 {
		t.Fatalf("got %d decls", len(tu.Decls))
	}
	push := tu.Decls[1].(*ast.FunctionDecl)
	if push.Name.String() != "Stack<Object>::push" {
		t.Errorf("push name = %q", push.Name.String())
	}
	if push.Template == nil || push.Body == nil {
		t.Error("push should be a templated definition")
	}
	isFull := tu.Decls[2].(*ast.FunctionDecl)
	if !isFull.Const {
		t.Error("isFull should be const")
	}
}

func TestOutOfLineCtorDtor(t *testing.T) {
	src := `template <class T> class Vec { public: Vec(int n); ~Vec(); };
template <class T> Vec<T>::Vec(int n) { }
template <class T> Vec<T>::~Vec() { }`
	tu := parseSrc(t, src, nil)
	ctor := tu.Decls[1].(*ast.FunctionDecl)
	if ctor.Kind != ast.Constructor {
		t.Errorf("ctor kind = %v (%v)", ctor.Kind, ctor.Name)
	}
	dtor := tu.Decls[2].(*ast.FunctionDecl)
	if dtor.Kind != ast.Destructor {
		t.Errorf("dtor kind = %v (%v)", dtor.Kind, dtor.Name)
	}
}

func TestFunctionTemplate(t *testing.T) {
	src := `template <class T> T max(T a, T b) { return a > b ? a : b; }`
	tu := parseSrc(t, src, nil)
	f := firstDecl[*ast.FunctionDecl](t, tu)
	if f.Template == nil || f.Name.String() != "max" {
		t.Fatalf("f = %+v", f)
	}
}

func TestNonTypeTemplateParam(t *testing.T) {
	src := `template <class T, int N> class Array { T data[N]; };
Array<double, 16> a;`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	if len(c.Template.Params) != 2 || c.Template.Params[1].IsType {
		t.Fatalf("params = %+v", c.Template.Params)
	}
	v := firstDecl[*ast.VarDecl](t, tu)
	nt := v.Type.(*ast.NamedType)
	if len(nt.Name.Segs[0].Args) != 2 {
		t.Fatalf("args = %+v", nt.Name.Segs[0].Args)
	}
	if nt.Name.Segs[0].Args[1].Expr == nil {
		t.Error("second arg should be an expression")
	}
}

func TestExplicitSpecialization(t *testing.T) {
	src := `template <class T> class Traits { };
template <> class Traits<int> { public: int size; };`
	tu := parseSrc(t, src, nil)
	spec := tu.Decls[1].(*ast.ClassDecl)
	if spec.Template == nil || !spec.Template.IsSpecialization() {
		t.Fatalf("spec = %+v", spec.Template)
	}
	if len(spec.SpecArgs) != 1 || spec.SpecArgs[0].Type == nil {
		t.Errorf("spec args = %+v", spec.SpecArgs)
	}
}

func TestExplicitInstantiation(t *testing.T) {
	src := `template <class T> class Stack { };
template class Stack<int>;`
	tu := parseSrc(t, src, nil)
	inst := tu.Decls[1].(*ast.ExplicitInstantiation)
	nt := inst.Type.(*ast.NamedType)
	if nt.Name.String() != "Stack<int>" {
		t.Errorf("inst = %q", nt.Name.String())
	}
}

func TestNestedTemplateArgsShr(t *testing.T) {
	src := `template <class T> class Stack { };
Stack<Stack<int>> s;`
	tu := parseSrc(t, src, nil)
	v := firstDecl[*ast.VarDecl](t, tu)
	nt := v.Type.(*ast.NamedType)
	if nt.Name.String() != "Stack<Stack<int>>" {
		t.Errorf("type = %q", nt.Name.String())
	}
}

func TestNamespace(t *testing.T) {
	src := `namespace math {
    const double pi = 3.14159;
    namespace detail { int hidden; }
}
using namespace math;`
	tu := parseSrc(t, src, nil)
	ns := firstDecl[*ast.NamespaceDecl](t, tu)
	if ns.Name != "math" || len(ns.Decls) != 2 {
		t.Fatalf("ns = %+v", ns)
	}
	inner := ns.Decls[1].(*ast.NamespaceDecl)
	if inner.Name != "detail" {
		t.Errorf("inner = %+v", inner)
	}
	ud := firstDecl[*ast.UsingDirective](t, tu)
	if ud.Namespace.String() != "math" {
		t.Errorf("using = %v", ud.Namespace)
	}
}

func TestEnumTypedef(t *testing.T) {
	src := `enum Color { RED, GREEN = 5, BLUE };
typedef unsigned long size_type;
size_type n = 0;`
	tu := parseSrc(t, src, nil)
	e := firstDecl[*ast.EnumDecl](t, tu)
	if e.Name != "Color" || len(e.Enumerators) != 3 {
		t.Fatalf("enum = %+v", e)
	}
	if e.Enumerators[1].Value == nil {
		t.Error("GREEN should have a value")
	}
	td := firstDecl[*ast.TypedefDecl](t, tu)
	if td.Name != "size_type" {
		t.Errorf("typedef = %+v", td)
	}
	v := firstDecl[*ast.VarDecl](t, tu)
	if v.Name != "n" {
		t.Errorf("var via typedef type: %+v", v)
	}
}

func TestOperatorOverload(t *testing.T) {
	src := `class Complex {
public:
    Complex operator+(const Complex & o) const;
    Complex & operator=(const Complex & o);
    bool operator==(const Complex & o) const;
    double & operator[](int i);
    double operator()(int i, int j) const;
};
Complex operator-(const Complex & a, const Complex & b);`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	ops := []string{"+", "=", "==", "[]", "()"}
	for i, m := range c.Members {
		fd := m.Decl.(*ast.FunctionDecl)
		if fd.Kind != ast.Operator || fd.OpName != ops[i] {
			t.Errorf("member %d: kind=%v op=%q want %q", i, fd.Kind, fd.OpName, ops[i])
		}
	}
	free := firstDecl[*ast.FunctionDecl](t, tu)
	if free.Kind != ast.Operator || free.OpName != "-" {
		t.Errorf("free op = %+v", free)
	}
}

func TestCtorInitializers(t *testing.T) {
	src := `class P { public: P(int a, int b) : x(a), y(b) { } int x, y; };`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	ctor := c.Members[0].Decl.(*ast.FunctionDecl)
	if len(ctor.Inits) != 2 || ctor.Inits[0].Name.String() != "x" {
		t.Fatalf("inits = %+v", ctor.Inits)
	}
}

func TestThrowSpecAndPureVirtual(t *testing.T) {
	src := `class Overflow {};
class Shape {
public:
    virtual double area() const = 0;
    void check() throw(Overflow);
};`
	tu := parseSrc(t, src, nil)
	var shape *ast.ClassDecl
	for _, d := range tu.Decls {
		if c, ok := d.(*ast.ClassDecl); ok && c.Name == "Shape" {
			shape = c
		}
	}
	area := shape.Members[0].Decl.(*ast.FunctionDecl)
	if !area.PureVirtual || !area.Virtual || !area.Const {
		t.Errorf("area = %+v", area)
	}
	check := shape.Members[1].Decl.(*ast.FunctionDecl)
	if !check.HasThrow || len(check.Throws) != 1 {
		t.Errorf("check throws = %+v", check.Throws)
	}
}

func TestStatements(t *testing.T) {
	src := `int f(int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) sum += i;
    while (sum > 100) { sum /= 2; }
    do { sum++; } while (sum < 10);
    if (sum == 50) return 0; else sum--;
    switch (n) {
    case 0:
    case 1: sum = 1; break;
    default: sum = 2;
    }
    try { throw sum; } catch (int e) { return e; } catch (...) { }
    return sum;
}`
	tu := parseSrc(t, src, nil)
	f := firstDecl[*ast.FunctionDecl](t, tu)
	if len(f.Body.Stmts) != 8 {
		t.Fatalf("got %d statements", len(f.Body.Stmts))
	}
	sw := f.Body.Stmts[5].(*ast.SwitchStmt)
	if len(sw.Cases) != 2 || len(sw.Cases[0].Values) != 2 {
		t.Errorf("switch cases = %+v", sw.Cases)
	}
	try := f.Body.Stmts[6].(*ast.TryStmt)
	if len(try.Handlers) != 2 || try.Handlers[1].Param != nil {
		t.Errorf("try = %+v", try)
	}
}

func TestExpressions(t *testing.T) {
	src := `int g() {
    int a = 1, b = 2;
    int c = a * b + (a - b) / 2 % 3;
    bool d = a < b && b <= 3 || !(a == b);
    c = d ? a : b;
    a = b = c;
    int *p = &a;
    *p = 5;
    p[0] = 6;
    a++; --b;
    double e = (double)a;
    double f2 = static_cast<double>(b);
    long n = sizeof(int) + sizeof a;
    return a << 2 | b >> 1 & c ^ 3;
}`
	tu := parseSrc(t, src, nil)
	f := firstDecl[*ast.FunctionDecl](t, tu)
	if f.Body == nil || len(f.Body.Stmts) < 10 {
		t.Fatalf("body stmts = %d", len(f.Body.Stmts))
	}
}

func TestNewDelete(t *testing.T) {
	src := `class T {};
void h() {
    T *p = new T;
    T *q = new T();
    int *arr = new int[10];
    delete p;
    delete q;
    delete[] arr;
}`
	tu := parseSrc(t, src, nil)
	f := firstDecl[*ast.FunctionDecl](t, tu)
	ds := f.Body.Stmts[2].(*ast.DeclStmt)
	v := ds.Decls[0].(*ast.VarDecl)
	ne := v.Init.(*ast.NewExpr)
	if ne.ArraySize == nil {
		t.Error("new[] should have array size")
	}
	es := f.Body.Stmts[5].(*ast.ExprStmt)
	de := es.E.(*ast.DeleteExpr)
	if !de.Array {
		t.Error("delete[] flag missing")
	}
}

func TestMemberAccessAndCalls(t *testing.T) {
	src := `class S { public: int f(); S *next(); };
int use(S & s, S *p) {
    return s.f() + p->f() + p->next()->f();
}`
	tu := parseSrc(t, src, nil)
	f := firstDecl[*ast.FunctionDecl](t, tu)
	ret := f.Body.Stmts[0].(*ast.ReturnStmt)
	if ret.E == nil {
		t.Fatal("no return expr")
	}
}

func TestStackFigure1(t *testing.T) {
	// The verbatim code of the paper's Figure 1 (vector included as a
	// stub header).
	vec := `template <class T> class vector {
public:
    vector();
    int size() const;
    T & operator[](int i);
};`
	src := `#include "vector.h"
class Overflow {};
class Underflow {};

template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10);
    bool isEmpty() const;
    bool isFull() const;
    const Object & top() const;
    void makeEmpty();
    void pop();
    void push(const Object & x);
    Object topAndPop();
private:
    vector<Object> theArray;
    int topOfStack;
};

template <class Object>
bool Stack<Object>::isFull() const {
    return topOfStack == theArray.size() - 1;
}

template <class Object>
void Stack<Object>::push(const Object & x) {
    if (isFull())
        throw Overflow();
    theArray[++topOfStack] = x;
}

template <class Object>
Object Stack<Object>::topAndPop() {
    if (isEmpty())
        throw Underflow();
    return theArray[topOfStack--];
}

int main() {
    Stack<int> s;
    for (int i = 0; i < 10; i++)
        s.push(i);
    while (!s.isEmpty())
        s.topAndPop();
    return 0;
}`
	tu := parseSrc(t, src, map[string]string{"vector.h": vec})
	// Expect: vector template (from header), Overflow, Underflow, Stack,
	// 3 out-of-line member templates, main.
	var classNames []string
	var funcNames []string
	for _, d := range tu.Decls {
		switch d := d.(type) {
		case *ast.ClassDecl:
			classNames = append(classNames, d.Name)
		case *ast.FunctionDecl:
			funcNames = append(funcNames, d.Name.String())
		}
	}
	wantClasses := []string{"vector", "Overflow", "Underflow", "Stack"}
	if len(classNames) != len(wantClasses) {
		t.Fatalf("classes = %v", classNames)
	}
	for i := range wantClasses {
		if classNames[i] != wantClasses[i] {
			t.Errorf("class[%d] = %q want %q", i, classNames[i], wantClasses[i])
		}
	}
	wantFuncs := []string{"Stack<Object>::isFull", "Stack<Object>::push",
		"Stack<Object>::topAndPop", "main"}
	if len(funcNames) != len(wantFuncs) {
		t.Fatalf("funcs = %v", funcNames)
	}
	for i := range wantFuncs {
		if funcNames[i] != wantFuncs[i] {
			t.Errorf("func[%d] = %q want %q", i, funcNames[i], wantFuncs[i])
		}
	}
}

func TestTemplateTextCaptured(t *testing.T) {
	src := `template <class T> class Box { T v; };`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	if c.Template.Text == "" {
		t.Error("template text not captured")
	}
}

func TestFriendDecls(t *testing.T) {
	src := `class Matrix {
    friend class Vector;
    friend Matrix transpose(const Matrix & m);
    int data;
};`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	if !c.Members[0].Friend || !c.Members[1].Friend || c.Members[2].Friend {
		t.Errorf("friend flags: %v %v %v", c.Members[0].Friend, c.Members[1].Friend, c.Members[2].Friend)
	}
}

func TestConversionOperator(t *testing.T) {
	src := `class Fraction { public: operator double() const; };`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	f := c.Members[0].Decl.(*ast.FunctionDecl)
	if f.Kind != ast.Conversion {
		t.Errorf("kind = %v", f.Kind)
	}
}

func TestLinkageSpec(t *testing.T) {
	src := `extern "C" { void c_func(int); }
extern "C" int another(void);`
	tu := parseSrc(t, src, nil)
	ls := firstDecl[*ast.LinkageSpec](t, tu)
	if ls.Lang != "C" || len(ls.Decls) != 1 {
		t.Fatalf("linkage = %+v", ls)
	}
}

func TestVexingParseBlockScope(t *testing.T) {
	src := `class T { public: T(); T(int); };
void f() {
    T a;      // default construction (not "T a()" which would be a func decl)
    T b(5);   // direct init with expression
    T c(T()); // most vexing parse: function declaration
    int x(7); // direct init of int
}`
	tu := parseSrc(t, src, nil)
	f := tu.Decls[1].(*ast.FunctionDecl)
	ds0 := f.Body.Stmts[0].(*ast.DeclStmt)
	if v := ds0.Decls[0].(*ast.VarDecl); v.HasCtorArgs {
		t.Error("T a; should not have ctor args")
	}
	ds1 := f.Body.Stmts[1].(*ast.DeclStmt)
	if v := ds1.Decls[0].(*ast.VarDecl); !v.HasCtorArgs || len(v.CtorArgs) != 1 {
		t.Error("T b(5); should have one ctor arg")
	}
	ds3 := f.Body.Stmts[3].(*ast.DeclStmt)
	if v := ds3.Decls[0].(*ast.VarDecl); !v.HasCtorArgs {
		t.Error("int x(7); should have ctor args")
	}
}

func TestStaticMemberOutOfLine(t *testing.T) {
	src := `class C { public: static int count; };
int C::count = 0;`
	tu := parseSrc(t, src, nil)
	found := false
	for _, d := range tu.Decls {
		if v, ok := d.(*ast.VarDecl); ok && v.Name == "C::count" {
			found = true
			if v.Init == nil {
				t.Error("C::count should have initializer")
			}
		}
	}
	if !found {
		t.Error("out-of-line static member definition not parsed")
	}
}

func TestErrorRecovery(t *testing.T) {
	src := `int good1;
class 123 456 garbage;
int good2;`
	tu, errs := parseSrcErrs(t, src, nil)
	if len(errs) == 0 {
		t.Error("expected parse errors")
	}
	names := map[string]bool{}
	for _, d := range tu.Decls {
		if v, ok := d.(*ast.VarDecl); ok {
			names[v.Name] = true
		}
	}
	if !names["good1"] || !names["good2"] {
		t.Errorf("recovery lost declarations: %v", names)
	}
}

func TestMemberFunctionTemplate(t *testing.T) {
	src := `class Host {
public:
    template <class U> void accept(U visitor);
};`
	tu := parseSrc(t, src, nil)
	c := firstDecl[*ast.ClassDecl](t, tu)
	f := c.Members[0].Decl.(*ast.FunctionDecl)
	if f.Template == nil || len(f.Template.Params) != 1 {
		t.Fatalf("member template = %+v", f.Template)
	}
}

func TestQualifiedCall(t *testing.T) {
	src := `namespace ns { int helper(); }
int z = ns::helper();`
	tu := parseSrc(t, src, nil)
	var v *ast.VarDecl
	for _, d := range tu.Decls {
		if vd, ok := d.(*ast.VarDecl); ok {
			v = vd
		}
	}
	call := v.Init.(*ast.CallExpr)
	ne := call.Fn.(*ast.NameExpr)
	if ne.Name.String() != "ns::helper" {
		t.Errorf("callee = %q", ne.Name.String())
	}
}
