// Package parse implements the recursive-descent C++ parser of the PDT
// frontend. It consumes the preprocessed token stream (internal/cpp/pp)
// and produces the parse tree (internal/cpp/ast).
//
// Like every C++ parser, it must disambiguate declarations from
// expressions. It does so with a lightweight syntactic symbol table
// tracking which identifiers name types and which name templates —
// enough for the supported subset without full semantic analysis (which
// happens later, in internal/cpp/sema).
package parse

import (
	"fmt"

	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/lex"
	"pdt/internal/source"
)

const maxErrors = 50

// Error is a parse diagnostic.
type Error struct {
	Loc source.Loc
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Loc, e.Msg) }

// symKind classifies names in the parser's syntactic symbol table.
type symKind int

const (
	symNone symKind = iota
	symType
	symTemplate // class template name (a '<' after it opens arguments)
	symNamespace
	symFuncTemplate // function template name
)

// scope is one level of the syntactic symbol table.
type scope struct {
	names map[string]symKind
}

// Parser parses one translation unit.
type Parser struct {
	toks []lex.Token
	pos  int
	errs []*Error

	scopes []scope
	// globalTypes remembers every type-ish name ever declared, used to
	// interpret qualified names (N::T) without modeling namespaces.
	globalTypes map[string]symKind

	// classStack tracks enclosing class names so constructors and
	// destructors can be recognized.
	classStack []string

	// lastWasFriend is set by parseMemberDecl when the declaration it
	// just parsed was introduced by 'friend'.
	lastWasFriend bool

	// inBlock is true while parsing statements inside a function body;
	// it switches declarator disambiguation to block-scope rules.
	inBlock bool

	// noGt suppresses '>'/'>>' as binary operators while parsing a
	// non-type template argument ("Stack<N>" vs "a > b").
	noGt bool
}

// New returns a parser over the preprocessed token stream (which must
// be EOF-terminated).
func New(toks []lex.Token) *Parser {
	p := &Parser{
		toks:        toks,
		globalTypes: make(map[string]symKind),
	}
	p.pushScope()
	// Names treated as types by convention (so code using a few std
	// names parses even without headers).
	for _, n := range []string{"size_t", "ptrdiff_t"} {
		p.declareName(n, symType)
	}
	return p
}

// Errors returns accumulated diagnostics.
func (p *Parser) Errors() []*Error { return p.errs }

// ParseFile parses the whole stream as one translation unit.
func ParseFile(f *source.File, toks []lex.Token) (*ast.TranslationUnit, []*Error) {
	p := New(toks)
	tu := &ast.TranslationUnit{File: f}
	for !p.at(lex.EOF) {
		start := p.pos
		d := p.parseExternalDecl()
		if d != nil {
			tu.Decls = append(tu.Decls, d)
		}
		if p.pos == start {
			// Guarantee progress even on garbage.
			p.errorf(p.peek().Loc, "unexpected token %s", p.peek())
			p.next()
		}
		if len(p.errs) > maxErrors {
			break
		}
	}
	return tu, p.errs
}

// --- token cursor -----------------------------------------------------

func (p *Parser) peek() lex.Token { return p.toks[p.pos] }

func (p *Parser) peekN(n int) lex.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() lex.Token {
	t := p.toks[p.pos]
	if t.Kind != lex.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k lex.Kind) bool { return p.peek().Kind == k }

func (p *Parser) atKw(text string) bool { return p.peek().IsKw(text) }

// accept consumes the next token if it has kind k.
func (p *Parser) accept(k lex.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

// acceptKw consumes the next token if it is the given keyword.
func (p *Parser) acceptKw(text string) bool {
	if p.atKw(text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a token of kind k or records an error.
func (p *Parser) expect(k lex.Kind, context string) lex.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.peek().Loc, "expected %s in %s, found %s", k, context, p.peek())
	return lex.Token{Kind: k, Loc: p.peek().Loc}
}

func (p *Parser) errorf(loc source.Loc, format string, args ...interface{}) {
	if len(p.errs) <= maxErrors {
		p.errs = append(p.errs, &Error{Loc: loc, Msg: fmt.Sprintf(format, args...)})
	}
}

// splitShr splits a '>>' token into two '>' tokens; called when closing
// nested template argument lists (the classic "Stack<Stack<int>>" case).
func (p *Parser) splitShr() {
	t := p.toks[p.pos]
	first := t
	first.Kind = lex.Gt
	first.Text = ">"
	second := t
	second.Kind = lex.Gt
	second.Text = ">"
	second.Loc.Col++
	rest := append([]lex.Token{first, second}, p.toks[p.pos+1:]...)
	p.toks = append(p.toks[:p.pos], rest...)
}

// skipBalancedParens consumes a '(' ... ')' group, balancing nesting.
func (p *Parser) skipBalancedParens() {
	if !p.at(lex.LParen) {
		return
	}
	depth := 0
	for !p.at(lex.EOF) {
		switch p.peek().Kind {
		case lex.LParen:
			depth++
		case lex.RParen:
			depth--
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// --- recovery ----------------------------------------------------------

// syncDecl skips tokens until a likely declaration boundary.
func (p *Parser) syncDecl() {
	depth := 0
	for !p.at(lex.EOF) {
		switch p.peek().Kind {
		case lex.Semi:
			if depth == 0 {
				p.next()
				return
			}
			p.next()
		case lex.LBrace:
			depth++
			p.next()
		case lex.RBrace:
			if depth == 0 {
				return
			}
			depth--
			p.next()
			if depth == 0 {
				// Consume a trailing ';' of a class definition.
				p.accept(lex.Semi)
				return
			}
		default:
			p.next()
		}
	}
}

// --- syntactic symbol table ---------------------------------------------

func (p *Parser) pushScope() { p.scopes = append(p.scopes, scope{names: map[string]symKind{}}) }

func (p *Parser) popScope() { p.scopes = p.scopes[:len(p.scopes)-1] }

// declareName records a name's kind in the current scope and globally.
func (p *Parser) declareName(name string, kind symKind) {
	if name == "" {
		return
	}
	p.scopes[len(p.scopes)-1].names[name] = kind
	if kind == symType || kind == symTemplate || kind == symNamespace || kind == symFuncTemplate {
		// Type-ness is remembered globally so out-of-line and cross-
		// namespace references still parse.
		if old, ok := p.globalTypes[name]; !ok || old < kind {
			p.globalTypes[name] = kind
		}
	}
}

// lookupName returns the kind of name in the nearest scope, falling back
// to the global type registry.
func (p *Parser) lookupName(name string) symKind {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if k, ok := p.scopes[i].names[name]; ok {
			return k
		}
	}
	if k, ok := p.globalTypes[name]; ok {
		return k
	}
	return symNone
}

// isTypeName reports whether an identifier currently names a type or
// class template.
func (p *Parser) isTypeName(name string) bool {
	k := p.lookupName(name)
	return k == symType || k == symTemplate
}

// isTemplateName reports whether a '<' after the identifier should open
// a template argument list.
func (p *Parser) isTemplateName(name string) bool {
	k := p.lookupName(name)
	return k == symTemplate || k == symFuncTemplate
}

// currentClass returns the innermost class name being parsed, or "".
func (p *Parser) currentClass() string {
	if len(p.classStack) == 0 {
		return ""
	}
	return p.classStack[len(p.classStack)-1]
}

// endLocOf returns the location of the token just consumed.
func (p *Parser) lastLoc() source.Loc {
	if p.pos == 0 {
		return p.peek().Loc
	}
	return p.toks[p.pos-1].Loc
}
