package parse

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/lex"
)

// builtinSpecWords are the keywords that can combine into a fundamental
// type specifier.
var builtinSpecWords = map[string]bool{
	"void": true, "bool": true, "char": true, "int": true, "long": true,
	"short": true, "signed": true, "unsigned": true, "float": true,
	"double": true,
}

// parseType parses a type: cv-qualifiers, a fundamental or named type,
// then pointer/reference declarator operators. Array/function parts
// belong to declarators, not to this production.
func (p *Parser) parseType() ast.TypeExpr {
	base := p.parseTypeSpecifier()
	return p.parseTypeOps(base)
}

// parseTypeSpecifier parses cv-qualifiers plus the core type.
func (p *Parser) parseTypeSpecifier() ast.TypeExpr {
	constQ, volatileQ := false, false
	for {
		if p.acceptKw("const") {
			constQ = true
			continue
		}
		if p.acceptKw("volatile") {
			volatileQ = true
			continue
		}
		break
	}
	core := p.parseCoreType()
	// Trailing cv-qualifiers ("int const").
	for {
		if p.acceptKw("const") {
			constQ = true
			continue
		}
		if p.acceptKw("volatile") {
			volatileQ = true
			continue
		}
		break
	}
	if volatileQ {
		core = &ast.VolatileType{Elem: core, Pos: core.Span().Begin}
	}
	if constQ {
		core = &ast.ConstType{Elem: core, Pos: core.Span().Begin}
	}
	return core
}

// parseCoreType parses the fundamental-type word run or a named type.
func (p *Parser) parseCoreType() ast.TypeExpr {
	t := p.peek()
	if t.Kind == lex.Keyword && builtinSpecWords[t.Text] {
		loc := t.Loc
		var words []string
		for p.peek().Kind == lex.Keyword && builtinSpecWords[p.peek().Text] {
			words = append(words, p.next().Text)
		}
		return &ast.BuiltinType{Spec: normalizeBuiltin(words), Pos: loc}
	}
	elaborated := ""
	if t.Kind == lex.Keyword {
		switch t.Text {
		case "class", "struct", "union", "enum", "typename":
			elaborated = t.Text
			p.next()
		}
	}
	name := p.parseQualNameInType()
	return &ast.NamedType{Name: name, Elaborated: elaborated}
}

// parseQualNameInType parses a qualified name in a type context, where
// '<' after any segment opens template arguments (even for names not
// yet registered, e.g. dependent types).
func (p *Parser) parseQualNameInType() ast.QualName {
	var q ast.QualName
	if p.at(lex.ColonCol) {
		q.Global = true
		p.next()
	}
	for {
		id := p.peek()
		if id.Kind == lex.Tilde {
			// Destructor segment in an out-of-line definition name
			// ("Vec<T>::~Vec"). Terminal by construction.
			loc := p.next().Loc
			dtor := p.expect(lex.Ident, "destructor name")
			q.Segs = append(q.Segs, ast.Seg{Name: "~" + dtor.Text, Loc: loc})
			return q
		}
		if id.Kind != lex.Ident {
			p.errorf(id.Loc, "expected type name, found %s", id)
			return q
		}
		p.next()
		seg := ast.Seg{Name: id.Text, Loc: id.Loc}
		if p.at(lex.Lt) && p.typeContextOpensArgs(id.Text) {
			seg.Args, seg.HasArgs = p.parseTemplateArgs()
		}
		q.Segs = append(q.Segs, seg)
		if p.at(lex.ColonCol) {
			p.next()
			continue
		}
		return q
	}
}

// typeContextOpensArgs: in a type context, '<' opens arguments when the
// name is a known template, or when the name is unknown entirely (a
// dependent template like "vector<Object>" inside a template body) —
// but not when the name is a known non-template type or value.
func (p *Parser) typeContextOpensArgs(name string) bool {
	switch p.lookupName(name) {
	case symTemplate, symFuncTemplate:
		return true
	case symNone:
		return true
	default:
		return false
	}
}

// parseTypeOps applies trailing '*', '&' and their cv-qualifiers.
func (p *Parser) parseTypeOps(base ast.TypeExpr) ast.TypeExpr {
	for {
		switch p.peek().Kind {
		case lex.Star:
			loc := p.next().Loc
			base = &ast.PointerType{Elem: base, Pos: loc}
			for {
				if p.acceptKw("const") {
					base = &ast.ConstType{Elem: base, Pos: loc}
					continue
				}
				if p.acceptKw("volatile") {
					base = &ast.VolatileType{Elem: base, Pos: loc}
					continue
				}
				break
			}
		case lex.Amp:
			loc := p.next().Loc
			base = &ast.RefType{Elem: base, Pos: loc}
		default:
			return base
		}
	}
}

// normalizeBuiltin canonicalizes a run of fundamental-type keywords
// ("unsigned long int" → "unsigned long").
func normalizeBuiltin(words []string) string {
	var signedness, length, core string
	longCount := 0
	for _, w := range words {
		switch w {
		case "signed", "unsigned":
			signedness = w
		case "long":
			longCount++
		case "short":
			length = "short"
		case "void", "bool", "char", "int", "float", "double":
			core = w
		}
	}
	if longCount == 1 {
		length = "long"
	} else if longCount >= 2 {
		length = "long long"
	}
	var parts []string
	if signedness == "unsigned" {
		parts = append(parts, "unsigned")
	}
	if signedness == "signed" && core == "char" {
		parts = append(parts, "signed")
	}
	switch {
	case core == "double" && length == "long":
		parts = append(parts, "long double")
	case core == "" || core == "int":
		if length != "" {
			parts = append(parts, length)
		} else {
			parts = append(parts, "int")
		}
	default:
		if length != "" && core == "int" {
			parts = append(parts, length)
		} else {
			parts = append(parts, core)
		}
	}
	return strings.Join(parts, " ")
}
