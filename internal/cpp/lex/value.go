package lex

import (
	"fmt"
	"strconv"
	"strings"
)

// IntValue parses the spelling of an IntLit token (decimal, hex, or
// octal, with optional u/l suffixes) into an int64.
func IntValue(text string) (int64, error) {
	s := strings.TrimRight(text, "uUlL")
	if s == "" {
		return 0, fmt.Errorf("empty integer literal %q", text)
	}
	// strconv with base 0 handles 0x..., 0... (octal) and decimal.
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Large unsigned constants (e.g. 0xffffffffffffffff).
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad integer literal %q: %v", text, err)
		}
		return int64(u), nil
	}
	return v, nil
}

// FloatValue parses the spelling of a FloatLit token into a float64.
func FloatValue(text string) (float64, error) {
	s := strings.TrimRight(text, "fFlL")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad float literal %q: %v", text, err)
	}
	return v, nil
}

// CharValue decodes a character literal (including escapes) to its
// integer value.
func CharValue(text string) (int64, error) {
	body := text
	if strings.HasPrefix(body, "'") {
		body = body[1:]
	}
	if strings.HasSuffix(body, "'") {
		body = body[:len(body)-1]
	}
	if body == "" {
		return 0, fmt.Errorf("empty char literal %q", text)
	}
	if body[0] != '\\' {
		return int64(body[0]), nil
	}
	v, _, err := decodeEscape(body[1:])
	return v, err
}

// StringValue decodes a string literal's spelling (quotes + escapes)
// into its contents.
func StringValue(text string) (string, error) {
	body := text
	if strings.HasPrefix(body, `"`) {
		body = body[1:]
	}
	if strings.HasSuffix(body, `"`) {
		body = body[:len(body)-1]
	}
	var sb strings.Builder
	for i := 0; i < len(body); {
		if body[i] != '\\' {
			sb.WriteByte(body[i])
			i++
			continue
		}
		v, n, err := decodeEscape(body[i+1:])
		if err != nil {
			return "", err
		}
		sb.WriteByte(byte(v))
		i += 1 + n
	}
	return sb.String(), nil
}

// decodeEscape decodes the escape sequence following a backslash,
// returning the value and the number of bytes consumed.
func decodeEscape(s string) (int64, int, error) {
	if s == "" {
		return 0, 0, fmt.Errorf("dangling backslash")
	}
	switch s[0] {
	case 'n':
		return '\n', 1, nil
	case 't':
		return '\t', 1, nil
	case 'r':
		return '\r', 1, nil
	case '0', '1', '2', '3', '4', '5', '6', '7':
		n := 0
		var v int64
		for n < 3 && n < len(s) && s[n] >= '0' && s[n] <= '7' {
			v = v*8 + int64(s[n]-'0')
			n++
		}
		return v, n, nil
	case 'x':
		n := 1
		var v int64
		for n < len(s) && isHexDigit(s[n]) {
			d, _ := strconv.ParseInt(string(s[n]), 16, 64)
			v = v*16 + d
			n++
		}
		if n == 1 {
			return 0, 0, fmt.Errorf("bad hex escape")
		}
		return v, n, nil
	case '\\':
		return '\\', 1, nil
	case '\'':
		return '\'', 1, nil
	case '"':
		return '"', 1, nil
	case '?':
		return '?', 1, nil
	case 'a':
		return 7, 1, nil
	case 'b':
		return 8, 1, nil
	case 'f':
		return 12, 1, nil
	case 'v':
		return 11, 1, nil
	default:
		return int64(s[0]), 1, nil
	}
}

// Quote renders s as a C string literal.
func Quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch b := s[i]; b {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(b)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
