package lex

import (
	"testing"

	"pdt/internal/source"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	fs := source.NewFileSet()
	f := fs.AddVirtualFile("test.cpp", src)
	toks, errs := Tokens(f)
	for _, e := range errs {
		t.Errorf("lex error: %v", e)
	}
	return toks
}

func kindsOf(toks []Token) []Kind {
	out := make([]Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := lexAll(t, "class Stack _x x1 template int")
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "class"}, {Ident, "Stack"}, {Ident, "_x"},
		{Ident, "x1"}, {Keyword, "template"}, {Keyword, "int"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok %d = (%v,%q), want (%v,%q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestPunctuators(t *testing.T) {
	toks := lexAll(t, ":: -> ->* << >> <<= >>= == != <= >= && || ++ -- ... ## .*")
	want := []Kind{ColonCol, Arrow, ArrowStar, Shl, Shr, ShlAssign, ShrAssign,
		Eq, Ne, Le, Ge, AndAnd, OrOr, PlusPlus, MinusMinus, Ellipsis, HashHash, DotStar, EOF}
	got := kindsOf(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"42", IntLit}, {"0x1f", IntLit}, {"017", IntLit}, {"42u", IntLit},
		{"42UL", IntLit}, {"3.14", FloatLit}, {"1e10", FloatLit},
		{"1.5e-3", FloatLit}, {"2.0f", FloatLit}, {".5", FloatLit},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("%q -> (%v,%q), want (%v,%q)", c.src, toks[0].Kind, toks[0].Text, c.kind, c.src)
		}
	}
}

func TestIntValue(t *testing.T) {
	cases := []struct {
		text string
		want int64
	}{
		{"42", 42}, {"0x10", 16}, {"010", 8}, {"7uL", 7},
	}
	for _, c := range cases {
		got, err := IntValue(c.text)
		if err != nil || got != c.want {
			t.Errorf("IntValue(%q) = %d,%v want %d", c.text, got, err, c.want)
		}
	}
}

func TestCharAndStringLiterals(t *testing.T) {
	toks := lexAll(t, `'a' '\n' "hi\tthere" "quote\""`)
	if toks[0].Kind != CharLit || toks[0].Text != "'a'" {
		t.Errorf("char lit: %v %q", toks[0].Kind, toks[0].Text)
	}
	if v, _ := CharValue(toks[1].Text); v != '\n' {
		t.Errorf("CharValue newline = %d", v)
	}
	if s, _ := StringValue(toks[2].Text); s != "hi\tthere" {
		t.Errorf("StringValue = %q", s)
	}
	if s, _ := StringValue(toks[3].Text); s != `quote"` {
		t.Errorf("StringValue = %q", s)
	}
}

func TestCommentsAndFlags(t *testing.T) {
	toks := lexAll(t, "a // comment\nb /* multi\nline */ c")
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if !toks[0].StartOfLine {
		t.Error("a should start a line")
	}
	if !toks[1].StartOfLine {
		t.Error("b should start a line (after // comment)")
	}
	if !toks[2].SpaceBefore {
		t.Error("c should have SpaceBefore (after block comment)")
	}
	if toks[1].Loc.Line != 2 || toks[2].Loc.Line != 3 {
		t.Errorf("line numbers: b at %d, c at %d", toks[1].Loc.Line, toks[2].Loc.Line)
	}
}

func TestLineSplice(t *testing.T) {
	toks := lexAll(t, "ab\\\ncd efg")
	if toks[0].Text != "abcd" {
		t.Errorf("spliced ident = %q, want abcd", toks[0].Text)
	}
	if toks[1].Text != "efg" || toks[1].Loc.Line != 2 {
		t.Errorf("efg at line %d", toks[1].Loc.Line)
	}
}

func TestPositions(t *testing.T) {
	toks := lexAll(t, "int x;\n  foo();")
	// int at 1:1, x at 1:5, ; at 1:6, foo at 2:3
	checks := []struct {
		i, line, col int
	}{{0, 1, 1}, {1, 1, 5}, {2, 1, 6}, {3, 2, 3}}
	for _, c := range checks {
		if toks[c.i].Loc.Line != c.line || toks[c.i].Loc.Col != c.col {
			t.Errorf("tok %d at %d:%d, want %d:%d", c.i, toks[c.i].Loc.Line, toks[c.i].Loc.Col, c.line, c.col)
		}
	}
}

func TestHideSet(t *testing.T) {
	var h *HideSet
	if h.Contains("A") {
		t.Error("empty set should not contain A")
	}
	h2 := h.With("A").With("B")
	if !h2.Contains("A") || !h2.Contains("B") || h2.Contains("C") {
		t.Error("hide set membership wrong")
	}
	h3 := h2.Union(h.With("C"))
	if !h3.Contains("C") || !h3.Contains("A") {
		t.Error("union wrong")
	}
}

func TestStringify(t *testing.T) {
	toks := lexAll(t, "template <class T> class Stack { };")
	got := Stringify(toks[:len(toks)-1])
	want := "template <class T> class Stack { };"
	if got != want {
		t.Errorf("Stringify = %q, want %q", got, want)
	}
}

func TestUnterminatedString(t *testing.T) {
	fs := source.NewFileSet()
	f := fs.AddVirtualFile("bad.cpp", "\"oops\nint x;")
	_, errs := Tokens(f)
	if len(errs) == 0 {
		t.Error("expected error for unterminated string")
	}
}
