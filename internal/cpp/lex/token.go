// Package lex implements the C++ lexer of the PDT frontend. It turns the
// bytes of one source file into a stream of tokens carrying full source
// positions. The preprocessor (internal/cpp/pp) consumes these raw token
// streams, executes directives, expands macros, and hands the resulting
// logical stream to the parser.
package lex

import (
	"fmt"

	"pdt/internal/source"
)

// Kind classifies a token.
type Kind int

// Token kinds. Punctuators get one kind each so the parser can switch on
// them directly.
const (
	EOF Kind = iota
	Ident
	Keyword
	IntLit
	FloatLit
	CharLit
	StringLit

	// Punctuators.
	LBrace    // {
	RBrace    // }
	LParen    // (
	RParen    // )
	LBracket  // [
	RBracket  // ]
	Semi      // ;
	Comma     // ,
	Colon     // :
	ColonCol  // ::
	Dot       // .
	DotStar   // .*
	Arrow     // ->
	ArrowStar // ->*
	Ellipsis  // ...
	Question  // ?

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Caret   // ^
	Amp     // &
	Pipe    // |
	Tilde   // ~
	Not     // !
	Assign  // =
	Lt      // <
	Gt      // >

	PlusAssign    // +=
	MinusAssign   // -=
	StarAssign    // *=
	SlashAssign   // /=
	PercentAssign // %=
	CaretAssign   // ^=
	AmpAssign     // &=
	PipeAssign    // |=
	Shl           // <<
	Shr           // >>
	ShlAssign     // <<=
	ShrAssign     // >>=
	Eq            // ==
	Ne            // !=
	Le            // <=
	Ge            // >=
	AndAnd        // &&
	OrOr          // ||
	PlusPlus      // ++
	MinusMinus    // --

	Hash     // #  (significant only to the preprocessor)
	HashHash // ## (significant only inside macro bodies)

	Other // any byte the lexer does not understand
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Keyword: "keyword",
	IntLit: "integer literal", FloatLit: "float literal",
	CharLit: "char literal", StringLit: "string literal",
	LBrace: "{", RBrace: "}", LParen: "(", RParen: ")",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",",
	Colon: ":", ColonCol: "::", Dot: ".", DotStar: ".*",
	Arrow: "->", ArrowStar: "->*", Ellipsis: "...", Question: "?",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Caret: "^", Amp: "&", Pipe: "|", Tilde: "~", Not: "!",
	Assign: "=", Lt: "<", Gt: ">",
	PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", CaretAssign: "^=",
	AmpAssign: "&=", PipeAssign: "|=", Shl: "<<", Shr: ">>",
	ShlAssign: "<<=", ShrAssign: ">>=", Eq: "==", Ne: "!=",
	Le: "<=", Ge: ">=", AndAnd: "&&", OrOr: "||",
	PlusPlus: "++", MinusMinus: "--", Hash: "#", HashHash: "##",
	Other: "invalid token",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords recognized by the frontend. The lexer marks them Keyword; the
// preprocessor treats them as plain identifiers (so they may be macro
// names), and the parser dispatches on Text.
var keywords = map[string]bool{
	"asm": true, "auto": true, "bool": true, "break": true,
	"case": true, "catch": true, "char": true, "class": true,
	"const": true, "const_cast": true, "continue": true,
	"default": true, "delete": true, "do": true, "double": true,
	"dynamic_cast": true, "else": true, "enum": true, "explicit": true,
	"export": true, "extern": true, "false": true, "float": true,
	"for": true, "friend": true, "goto": true, "if": true,
	"inline": true, "int": true, "long": true, "mutable": true,
	"namespace": true, "new": true, "operator": true, "private": true,
	"protected": true, "public": true, "register": true,
	"reinterpret_cast": true, "return": true, "short": true,
	"signed": true, "sizeof": true, "static": true, "static_cast": true,
	"struct": true, "switch": true, "template": true, "this": true,
	"throw": true, "true": true, "try": true, "typedef": true,
	"typeid": true, "typename": true, "union": true, "unsigned": true,
	"using": true, "virtual": true, "void": true, "volatile": true,
	"while": true,
}

// IsKeyword reports whether s is a C++ keyword in the supported subset.
func IsKeyword(s string) bool { return keywords[s] }

// Token is one lexical token. Text is the exact spelling (without quotes
// stripped or escapes processed; use Value helpers for that).
type Token struct {
	Kind Kind
	Text string
	Loc  source.Loc

	// StartOfLine marks the first token on a physical line; the
	// preprocessor uses it to find directives and to terminate them.
	StartOfLine bool
	// SpaceBefore records preceding whitespace or comments; it is used
	// when re-stringifying token runs (PDB "ttext"/"mtext" attributes).
	SpaceBefore bool

	// HideSet carries macro names that must not expand this token
	// again. Managed entirely by the preprocessor.
	HideSet *HideSet
}

// Is reports whether the token is the given punctuator/keyword spelling.
func (t Token) Is(kind Kind, text string) bool {
	return t.Kind == kind && t.Text == text
}

// IsKw reports whether the token is the given keyword.
func (t Token) IsKw(text string) bool { return t.Kind == Keyword && t.Text == text }

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "EOF"
	case Ident, Keyword, IntLit, FloatLit, CharLit, StringLit:
		return t.Text
	default:
		return t.Kind.String()
	}
}

// HideSet is an immutable set of macro names, shared structurally. Sets
// are tiny in practice (nesting depth of expansion), so a linked list is
// both simple and fast.
type HideSet struct {
	name string
	rest *HideSet
}

// Contains reports whether name is in the set.
func (h *HideSet) Contains(name string) bool {
	for s := h; s != nil; s = s.rest {
		if s.name == name {
			return true
		}
	}
	return false
}

// With returns a set extended with name.
func (h *HideSet) With(name string) *HideSet {
	return &HideSet{name: name, rest: h}
}

// Union returns the union of two hide sets.
func (h *HideSet) Union(other *HideSet) *HideSet {
	out := h
	for s := other; s != nil; s = s.rest {
		if !out.Contains(s.name) {
			out = out.With(s.name)
		}
	}
	return out
}
