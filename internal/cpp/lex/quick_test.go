package lex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdt/internal/source"
)

// randTokenText draws a random valid token spelling.
func randTokenText(r *rand.Rand) string {
	switch r.Intn(6) {
	case 0: // identifier/keyword
		words := []string{"foo", "bar", "x1", "_tmp", "class", "template",
			"int", "Stack", "operatorX"}
		return words[r.Intn(len(words))]
	case 1: // integer
		ints := []string{"0", "42", "0x1f", "017", "7u", "9L"}
		return ints[r.Intn(len(ints))]
	case 2: // float
		floats := []string{"1.5", "0.25", "2e10", "3.5e-2", "1.0f"}
		return floats[r.Intn(len(floats))]
	case 3: // string
		strs := []string{`"hi"`, `"a b c"`, `"esc\n"`, `""`}
		return strs[r.Intn(len(strs))]
	case 4: // char
		chars := []string{`'a'`, `'\n'`, `'0'`}
		return chars[r.Intn(len(chars))]
	default: // punctuator
		puncts := []string{"{", "}", "(", ")", ";", ",", "::", "->", "<<",
			">>", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+", "-",
			"*", "/", "%", "=", "<", ">", "[", "]", ".", "?", ":"}
		return puncts[r.Intn(len(puncts))]
	}
}

// Property: lex → Stringify → lex reproduces the same token kinds and
// spellings (the lexer round-trips through its own printer).
func TestLexStringifyRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		texts := make([]string, n)
		for i := range texts {
			texts[i] = randTokenText(r)
		}
		// Join with spaces so adjacent tokens cannot merge.
		src := ""
		for i, txt := range texts {
			if i > 0 {
				src += " "
			}
			src += txt
		}
		fs := source.NewFileSet()
		f1 := fs.AddVirtualFile("a.cpp", src)
		toks1, errs1 := Tokens(f1)
		if len(errs1) > 0 {
			return false
		}
		printed := Stringify(toks1[:len(toks1)-1])
		f2 := fs.AddVirtualFile("b.cpp", printed)
		toks2, errs2 := Tokens(f2)
		if len(errs2) > 0 {
			t.Logf("relex failed on %q", printed)
			return false
		}
		if len(toks1) != len(toks2) {
			t.Logf("token count changed: %d vs %d (%q vs %q)", len(toks1), len(toks2), src, printed)
			return false
		}
		for i := range toks1 {
			if toks1[i].Kind != toks2[i].Kind || toks1[i].Text != toks2[i].Text {
				t.Logf("token %d changed: (%v,%q) vs (%v,%q)",
					i, toks1[i].Kind, toks1[i].Text, toks2[i].Kind, toks2[i].Text)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the lexer never panics and always terminates with EOF on
// arbitrary byte soup.
func TestLexArbitraryBytesNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		fs := source.NewFileSet()
		file := fs.AddVirtualFile("fuzz.cpp", string(data))
		toks, _ := Tokens(file)
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: positions are non-decreasing through the token stream.
func TestLexPositionsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := ""
		for i := 0; i < 20; i++ {
			src += randTokenText(r)
			if r.Intn(3) == 0 {
				src += "\n"
			} else {
				src += " "
			}
		}
		fs := source.NewFileSet()
		file := fs.AddVirtualFile("m.cpp", src)
		toks, errs := Tokens(file)
		if len(errs) > 0 {
			return true // soup with merged tokens can error; fine
		}
		for i := 1; i < len(toks); i++ {
			a, b := toks[i-1].Loc, toks[i].Loc
			if b.Line < a.Line || (b.Line == a.Line && b.Col < a.Col) {
				t.Logf("positions went backwards at token %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
