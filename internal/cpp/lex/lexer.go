package lex

import (
	"fmt"
	"strings"

	"pdt/internal/source"
)

// Error is a lexical diagnostic.
type Error struct {
	Loc source.Loc
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Loc, e.Msg) }

// Lexer scans one file. Backslash-newline splices are handled; comments
// and whitespace are skipped but recorded via SpaceBefore/StartOfLine.
type Lexer struct {
	file *source.File
	src  []byte
	pos  int // byte offset
	line int
	col  int

	startOfLine bool
	spaceBefore bool

	errs []*Error
}

// New returns a lexer over the file's content.
func New(f *source.File) *Lexer {
	return &Lexer{file: f, src: f.Content, line: 1, col: 1, startOfLine: true}
}

// Errors returns diagnostics accumulated so far.
func (lx *Lexer) Errors() []*Error { return lx.errs }

// Tokens scans the whole file and returns its tokens, terminated by an
// EOF token.
func Tokens(f *source.File) ([]Token, []*Error) {
	lx := New(f)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == EOF {
			break
		}
	}
	return out, lx.errs
}

func (lx *Lexer) errorf(loc source.Loc, format string, args ...interface{}) {
	lx.errs = append(lx.errs, &Error{Loc: loc, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) loc() source.Loc {
	return source.Loc{File: lx.file, Line: lx.line, Col: lx.col}
}

// peek returns the byte at offset d from the cursor, looking through
// backslash-newline splices, or 0 at end of input.
func (lx *Lexer) peek(d int) byte {
	i := lx.pos
	for {
		// Skip splices at the cursor position.
		for i+1 < len(lx.src) && lx.src[i] == '\\' && (lx.src[i+1] == '\n' || (lx.src[i+1] == '\r' && i+2 < len(lx.src) && lx.src[i+2] == '\n')) {
			if lx.src[i+1] == '\r' {
				i += 3
			} else {
				i += 2
			}
		}
		if d == 0 {
			break
		}
		if i >= len(lx.src) {
			return 0
		}
		i++
		d--
	}
	if i >= len(lx.src) {
		return 0
	}
	return lx.src[i]
}

// advance consumes one logical character (through splices), updating
// line/col bookkeeping.
func (lx *Lexer) advance() byte {
	for lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '\\' && (lx.src[lx.pos+1] == '\n' || (lx.src[lx.pos+1] == '\r' && lx.pos+2 < len(lx.src) && lx.src[lx.pos+2] == '\n')) {
		if lx.src[lx.pos+1] == '\r' {
			lx.pos += 3
		} else {
			lx.pos += 2
		}
		lx.line++
		lx.col = 1
	}
	if lx.pos >= len(lx.src) {
		return 0
	}
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentCont(b byte) bool { return isIdentStart(b) || isDigit(b) }

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isHexDigit(b byte) bool {
	return isDigit(b) || (b >= 'a' && b <= 'f') || (b >= 'A' && b <= 'F')
}

// skipSpace consumes whitespace and comments, updating the pending
// StartOfLine/SpaceBefore flags.
func (lx *Lexer) skipSpace() {
	for {
		b := lx.peek(0)
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\v' || b == '\f':
			lx.advance()
			lx.spaceBefore = true
		case b == '\n':
			lx.advance()
			lx.startOfLine = true
			lx.spaceBefore = true
		case b == '/' && lx.peek(1) == '/':
			for lx.peek(0) != '\n' && lx.peek(0) != 0 {
				lx.advance()
			}
			lx.spaceBefore = true
		case b == '/' && lx.peek(1) == '*':
			loc := lx.loc()
			lx.advance()
			lx.advance()
			closed := false
			for lx.peek(0) != 0 {
				if lx.peek(0) == '*' && lx.peek(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				if lx.peek(0) == '\n' {
					lx.startOfLine = true
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(loc, "unterminated block comment")
			}
			lx.spaceBefore = true
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpace()
	tok := Token{Loc: lx.loc(), StartOfLine: lx.startOfLine, SpaceBefore: lx.spaceBefore}
	lx.startOfLine = false
	lx.spaceBefore = false

	b := lx.peek(0)
	switch {
	case b == 0:
		tok.Kind = EOF
		return tok
	case isIdentStart(b):
		var sb strings.Builder
		for isIdentCont(lx.peek(0)) {
			sb.WriteByte(lx.advance())
		}
		tok.Text = sb.String()
		if IsKeyword(tok.Text) {
			tok.Kind = Keyword
		} else {
			tok.Kind = Ident
		}
		return tok
	case isDigit(b) || (b == '.' && isDigit(lx.peek(1))):
		return lx.lexNumber(tok)
	case b == '\'':
		return lx.lexCharOrString(tok, '\'', CharLit)
	case b == '"':
		return lx.lexCharOrString(tok, '"', StringLit)
	default:
		return lx.lexPunct(tok)
	}
}

func (lx *Lexer) lexNumber(tok Token) Token {
	var sb strings.Builder
	isFloat := false
	if lx.peek(0) == '0' && (lx.peek(1) == 'x' || lx.peek(1) == 'X') {
		sb.WriteByte(lx.advance())
		sb.WriteByte(lx.advance())
		for isHexDigit(lx.peek(0)) {
			sb.WriteByte(lx.advance())
		}
	} else {
		for isDigit(lx.peek(0)) {
			sb.WriteByte(lx.advance())
		}
		if lx.peek(0) == '.' {
			isFloat = true
			sb.WriteByte(lx.advance())
			for isDigit(lx.peek(0)) {
				sb.WriteByte(lx.advance())
			}
		}
		if e := lx.peek(0); e == 'e' || e == 'E' {
			next := lx.peek(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peek(2))) {
				isFloat = true
				sb.WriteByte(lx.advance())
				if s := lx.peek(0); s == '+' || s == '-' {
					sb.WriteByte(lx.advance())
				}
				for isDigit(lx.peek(0)) {
					sb.WriteByte(lx.advance())
				}
			}
		}
	}
	// Suffixes: uUlL for ints, fFlL for floats.
	for {
		s := lx.peek(0)
		if s == 'u' || s == 'U' || s == 'l' || s == 'L' {
			sb.WriteByte(lx.advance())
			continue
		}
		if (s == 'f' || s == 'F') && isFloat {
			sb.WriteByte(lx.advance())
			continue
		}
		break
	}
	tok.Text = sb.String()
	if isFloat {
		tok.Kind = FloatLit
	} else {
		tok.Kind = IntLit
	}
	return tok
}

func (lx *Lexer) lexCharOrString(tok Token, quote byte, kind Kind) Token {
	var sb strings.Builder
	sb.WriteByte(lx.advance()) // opening quote
	for {
		b := lx.peek(0)
		if b == 0 || b == '\n' {
			lx.errorf(tok.Loc, "unterminated %s", kind)
			break
		}
		if b == '\\' {
			sb.WriteByte(lx.advance())
			if lx.peek(0) != 0 {
				sb.WriteByte(lx.advance())
			}
			continue
		}
		sb.WriteByte(lx.advance())
		if b == quote {
			break
		}
	}
	tok.Kind = kind
	tok.Text = sb.String()
	return tok
}

// punct3/punct2/punct1 map spellings to kinds, longest match first.
var punct3 = map[string]Kind{
	"...": Ellipsis, "<<=": ShlAssign, ">>=": ShrAssign, "->*": ArrowStar,
}

var punct2 = map[string]Kind{
	"::": ColonCol, ".*": DotStar, "->": Arrow,
	"+=": PlusAssign, "-=": MinusAssign, "*=": StarAssign, "/=": SlashAssign,
	"%=": PercentAssign, "^=": CaretAssign, "&=": AmpAssign, "|=": PipeAssign,
	"<<": Shl, ">>": Shr, "==": Eq, "!=": Ne, "<=": Le, ">=": Ge,
	"&&": AndAnd, "||": OrOr, "++": PlusPlus, "--": MinusMinus, "##": HashHash,
}

var punct1 = map[byte]Kind{
	'{': LBrace, '}': RBrace, '(': LParen, ')': RParen,
	'[': LBracket, ']': RBracket, ';': Semi, ',': Comma,
	':': Colon, '.': Dot, '?': Question,
	'+': Plus, '-': Minus, '*': Star, '/': Slash, '%': Percent,
	'^': Caret, '&': Amp, '|': Pipe, '~': Tilde, '!': Not,
	'=': Assign, '<': Lt, '>': Gt, '#': Hash,
}

func (lx *Lexer) lexPunct(tok Token) Token {
	b0, b1, b2 := lx.peek(0), lx.peek(1), lx.peek(2)
	if k, ok := punct3[string([]byte{b0, b1, b2})]; ok {
		tok.Kind = k
		tok.Text = string([]byte{lx.advance(), lx.advance(), lx.advance()})
		return tok
	}
	if k, ok := punct2[string([]byte{b0, b1})]; ok {
		tok.Kind = k
		tok.Text = string([]byte{lx.advance(), lx.advance()})
		return tok
	}
	if k, ok := punct1[b0]; ok {
		tok.Kind = k
		tok.Text = string(lx.advance())
		return tok
	}
	lx.errorf(tok.Loc, "unexpected character %q", string(b0))
	tok.Kind = Other
	tok.Text = string(lx.advance())
	return tok
}

// Stringify renders a token run back to compilable text, inserting the
// minimal whitespace implied by SpaceBefore. It is used for PDB
// "ttext"/"mtext" attributes and by the TAU instrumentor.
func Stringify(toks []Token) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 && t.SpaceBefore {
			sb.WriteByte(' ')
		}
		sb.WriteString(t.Text)
	}
	return sb.String()
}
