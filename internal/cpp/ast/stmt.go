package ast

import "pdt/internal/source"

// Stmt is implemented by every statement node.
type Stmt interface {
	Node
	stmtNode()
}

// CompoundStmt is "{ ... }".
type CompoundStmt struct {
	Stmts []Stmt
	Pos   source.Span // from '{' to '}'
}

// DeclStmt wraps local declarations (possibly several from one
// multi-declarator statement).
type DeclStmt struct {
	Decls []Decl
	Pos   source.Span
}

// ExprStmt is "expr;".
type ExprStmt struct {
	E   Expr
	Pos source.Span
}

// EmptyStmt is ";".
type EmptyStmt struct {
	Pos source.Span
}

// IfStmt is "if (cond) then else els".
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
	Pos  source.Span
}

// WhileStmt is "while (cond) body".
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  source.Span
}

// DoStmt is "do body while (cond);".
type DoStmt struct {
	Body Stmt
	Cond Expr
	Pos  source.Span
}

// ForStmt is "for (init; cond; post) body".
type ForStmt struct {
	Init Stmt // DeclStmt, ExprStmt or EmptyStmt
	Cond Expr // nil if absent
	Post Expr // nil if absent
	Body Stmt
	Pos  source.Span
}

// ReturnStmt is "return expr;" (expr may be nil).
type ReturnStmt struct {
	E   Expr
	Pos source.Span
}

// BreakStmt is "break;".
type BreakStmt struct{ Pos source.Span }

// ContinueStmt is "continue;".
type ContinueStmt struct{ Pos source.Span }

// SwitchCase is one "case v: ..." or "default: ..." group.
type SwitchCase struct {
	// Values lists the case expressions; empty means "default".
	Values []Expr
	Stmts  []Stmt
	Pos    source.Span
}

// SwitchStmt is "switch (cond) { cases }". Fallthrough between groups is
// honored by the interpreter.
type SwitchStmt struct {
	Cond  Expr
	Cases []SwitchCase
	Pos   source.Span
}

// Handler is one catch clause.
type Handler struct {
	// Param is nil for "catch (...)".
	Param *ParamDecl
	Body  *CompoundStmt
	Pos   source.Span
}

// TryStmt is "try { } catch (...) { } ...".
type TryStmt struct {
	Body     *CompoundStmt
	Handlers []Handler
	Pos      source.Span
}

func (s *CompoundStmt) stmtNode() {}
func (s *DeclStmt) stmtNode()     {}
func (s *ExprStmt) stmtNode()     {}
func (s *EmptyStmt) stmtNode()    {}
func (s *IfStmt) stmtNode()       {}
func (s *WhileStmt) stmtNode()    {}
func (s *DoStmt) stmtNode()       {}
func (s *ForStmt) stmtNode()      {}
func (s *ReturnStmt) stmtNode()   {}
func (s *BreakStmt) stmtNode()    {}
func (s *ContinueStmt) stmtNode() {}
func (s *SwitchStmt) stmtNode()   {}
func (s *TryStmt) stmtNode()      {}

func (s *CompoundStmt) Span() source.Span { return s.Pos }
func (s *DeclStmt) Span() source.Span     { return s.Pos }
func (s *ExprStmt) Span() source.Span     { return s.Pos }
func (s *EmptyStmt) Span() source.Span    { return s.Pos }
func (s *IfStmt) Span() source.Span       { return s.Pos }
func (s *WhileStmt) Span() source.Span    { return s.Pos }
func (s *DoStmt) Span() source.Span       { return s.Pos }
func (s *ForStmt) Span() source.Span      { return s.Pos }
func (s *ReturnStmt) Span() source.Span   { return s.Pos }
func (s *BreakStmt) Span() source.Span    { return s.Pos }
func (s *ContinueStmt) Span() source.Span { return s.Pos }
func (s *SwitchStmt) Span() source.Span   { return s.Pos }
func (s *TryStmt) Span() source.Span      { return s.Pos }
