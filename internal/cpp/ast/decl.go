package ast

import "pdt/internal/source"

// TranslationUnit is the root of the parse tree for one compiled file.
type TranslationUnit struct {
	File  *source.File
	Decls []Decl
}

func (t *TranslationUnit) Span() source.Span {
	if len(t.Decls) == 0 {
		return source.Span{}
	}
	return source.Span{Begin: t.Decls[0].Span().Begin, End: t.Decls[len(t.Decls)-1].Span().End}
}

// Decl is implemented by every declaration node.
type Decl interface {
	Node
	declNode()
}

// Access is a C++ member access mode. The PDB renders these as
// pub/prot/priv (Figure 3's "racs"/"cmacs" attributes).
type Access int

// Access modes. NoAccess marks non-member declarations.
const (
	NoAccess Access = iota
	Public
	Protected
	Private
)

func (a Access) String() string {
	switch a {
	case Public:
		return "pub"
	case Protected:
		return "prot"
	case Private:
		return "priv"
	default:
		return "NA"
	}
}

// StorageClass of a declaration.
type StorageClass int

// Storage classes.
const (
	NoStorage StorageClass = iota
	Static
	Extern
	Auto
	Register
	Mutable
)

func (s StorageClass) String() string {
	switch s {
	case Static:
		return "static"
	case Extern:
		return "extern"
	case Auto:
		return "auto"
	case Register:
		return "register"
	case Mutable:
		return "mutable"
	default:
		return "NA"
	}
}

// NamespaceDecl is "namespace N { ... }" or an alias
// "namespace A = B;".
type NamespaceDecl struct {
	Name    string // "" for anonymous namespaces
	NameLoc source.Loc
	Decls   []Decl
	// Alias is set for namespace alias definitions.
	Alias  *QualName
	Header source.Span
	Body   source.Span
}

// UsingDirective is "using namespace N;".
type UsingDirective struct {
	Namespace QualName
	Pos       source.Span
}

// UsingDecl is "using N::x;".
type UsingDecl struct {
	Name QualName
	Pos  source.Span
}

// LinkageSpec is `extern "C" { ... }` or `extern "C" decl`.
type LinkageSpec struct {
	Lang  string
	Decls []Decl
	Pos   source.Span
}

// ClassKind distinguishes class/struct/union.
type ClassKind int

// Class kinds.
const (
	Class ClassKind = iota
	Struct
	Union
)

func (k ClassKind) String() string {
	switch k {
	case Struct:
		return "struct"
	case Union:
		return "union"
	default:
		return "class"
	}
}

// BaseSpec is one entry of a base-clause.
type BaseSpec struct {
	Access  Access // as written; parser applies defaults
	Virtual bool
	Name    QualName
}

// Member is one member declaration plus its access mode.
type Member struct {
	Access Access
	Decl   Decl
	Friend bool
}

// ClassDecl is a class/struct/union declaration or definition, possibly
// templated or an explicit specialization.
type ClassDecl struct {
	Kind    ClassKind
	Name    string
	NameLoc source.Loc
	// Template is non-nil for "template<...> class C" and for
	// explicit specializations ("template<> class C<int>").
	Template *TemplateInfo
	// SpecArgs holds the <...> arguments of an explicit specialization
	// header ("template<> class Stack<int>").
	SpecArgs []TemplateArg
	Bases    []BaseSpec
	Members  []Member
	// IsDefinition is false for forward declarations ("class C;").
	IsDefinition bool
	Header       source.Span
	Body         source.Span
}

// EnumDecl declares an enumeration.
type EnumDecl struct {
	Name        string // "" for anonymous enums
	NameLoc     source.Loc
	Enumerators []Enumerator
	Header      source.Span
	Body        source.Span
}

// Enumerator is one name of an enum.
type Enumerator struct {
	Name  string
	Value Expr // nil if implicit
	Loc   source.Loc
}

// TypedefDecl is "typedef T Name;".
type TypedefDecl struct {
	Name    string
	NameLoc source.Loc
	Type    TypeExpr
	Pos     source.Span
}

// VarDecl declares one variable (or data member). A multi-declarator
// statement produces several VarDecls.
type VarDecl struct {
	Name    string
	NameLoc source.Loc
	Type    TypeExpr
	Init    Expr
	// CtorArgs holds direct-initialization arguments: "T x(a, b);".
	CtorArgs []Expr
	// HasCtorArgs distinguishes "T x;" from "T x();" — the latter never
	// reaches VarDecl (vexing parse resolves to a declaration), but
	// "T x(a)" does.
	HasCtorArgs bool
	Storage     StorageClass
	Pos         source.Span
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	Name    string // may be ""
	NameLoc source.Loc
	Type    TypeExpr
	Default Expr // default argument or nil
	// Ellipsis marks the "..." pseudo-parameter; Type is nil.
	Ellipsis bool
}

func (p *ParamDecl) Span() source.Span {
	if p.Type != nil {
		return p.Type.Span()
	}
	return source.Span{}
}

// RoutineKind distinguishes the function-like entities the PDB reports.
type RoutineKind int

// Routine kinds.
const (
	PlainFunction RoutineKind = iota
	Constructor
	Destructor
	Operator
	Conversion
)

// CtorInit is one member/base initializer in a constructor.
type CtorInit struct {
	Name QualName
	Args []Expr
}

// FunctionDecl is a function declaration or definition: free functions,
// member functions (in-class or out-of-line via a qualified name),
// constructors, destructors, and operators.
type FunctionDecl struct {
	// Name is the declarator name. Out-of-line members carry their
	// qualifier: "Stack<Object>::push" has Segs [Stack<Object>, push].
	Name        QualName
	Kind        RoutineKind
	OpName      string // "+", "[]", "()"... for Kind==Operator
	Ret         TypeExpr
	Params      []*ParamDecl
	Inits       []CtorInit
	Body        *CompoundStmt // nil for pure declarations
	PureVirtual bool

	Template *TemplateInfo

	Virtual  bool
	Explicit bool
	Inline   bool
	Const    bool
	Storage  StorageClass
	// Linkage is "C++" by default, "C" inside extern "C".
	Linkage string

	// Throws lists the exception-specification types, HasThrow marks
	// that a throw() clause was present at all.
	HasThrow bool
	Throws   []TypeExpr

	Header source.Span
	Body2  source.Span // body span; zero when no body
}

// DeclGroup wraps the declarations produced by one multi-declarator
// statement ("int a, *b;"). It keeps TranslationUnit and class bodies
// flat while preserving source grouping.
type DeclGroup struct {
	Decls []Decl
	Pos   source.Span
}

func (d *DeclGroup) declNode()         {}
func (d *DeclGroup) Span() source.Span { return d.Pos }

// ExplicitInstantiation is "template class Stack<int>;".
type ExplicitInstantiation struct {
	Type TypeExpr
	Pos  source.Span
}

// StaticAssertLike is kept for diagnostics of unsupported constructs the
// parser consumed but could not represent; it never reaches sema.
type BadDecl struct {
	Why string
	Pos source.Span
}

func (d *NamespaceDecl) declNode()         {}
func (d *UsingDirective) declNode()        {}
func (d *UsingDecl) declNode()             {}
func (d *LinkageSpec) declNode()           {}
func (d *ClassDecl) declNode()             {}
func (d *EnumDecl) declNode()              {}
func (d *TypedefDecl) declNode()           {}
func (d *VarDecl) declNode()               {}
func (d *FunctionDecl) declNode()          {}
func (d *ExplicitInstantiation) declNode() {}
func (d *BadDecl) declNode()               {}

func (d *NamespaceDecl) Span() source.Span {
	if d.Body.Valid() {
		return source.Span{Begin: d.Header.Begin, End: d.Body.End}
	}
	return d.Header
}
func (d *UsingDirective) Span() source.Span { return d.Pos }
func (d *UsingDecl) Span() source.Span      { return d.Pos }
func (d *LinkageSpec) Span() source.Span    { return d.Pos }
func (d *ClassDecl) Span() source.Span {
	if d.Body.Valid() {
		return source.Span{Begin: d.Header.Begin, End: d.Body.End}
	}
	return d.Header
}
func (d *EnumDecl) Span() source.Span {
	if d.Body.Valid() {
		return source.Span{Begin: d.Header.Begin, End: d.Body.End}
	}
	return d.Header
}
func (d *TypedefDecl) Span() source.Span { return d.Pos }
func (d *VarDecl) Span() source.Span     { return d.Pos }
func (d *FunctionDecl) Span() source.Span {
	if d.Body2.Valid() {
		return source.Span{Begin: d.Header.Begin, End: d.Body2.End}
	}
	return d.Header
}
func (d *ExplicitInstantiation) Span() source.Span { return d.Pos }
func (d *BadDecl) Span() source.Span               { return d.Pos }

// DeclaredName returns the simple name a declaration introduces, for
// diagnostics and scope indexing.
func DeclaredName(d Decl) string {
	switch d := d.(type) {
	case *NamespaceDecl:
		return d.Name
	case *ClassDecl:
		return d.Name
	case *EnumDecl:
		return d.Name
	case *TypedefDecl:
		return d.Name
	case *VarDecl:
		return d.Name
	case *FunctionDecl:
		return d.Name.Terminal().Name
	default:
		return ""
	}
}
