// Package ast defines the parse tree produced by the PDT C++ parser
// (internal/cpp/parse). The tree is purely syntactic: names are not yet
// resolved and templates are not yet instantiated; that is the job of
// internal/cpp/sema, which lowers the AST into the IL.
//
// Every node records the source extent it covers. Declarations that have
// a distinguishable header and body (classes, functions, namespaces,
// templates — the paper's "fat items") record both spans, because the
// PDB format reports them separately (Figure 3's four-position "pos"
// attributes).
package ast

import (
	"strings"

	"pdt/internal/source"
)

// Node is implemented by every AST node.
type Node interface {
	Span() source.Span
}

// ---------------------------------------------------------------------
// Names

// Seg is one segment of a (possibly qualified) name, with optional
// template arguments: e.g. the "Stack<int>" in "Stack<int>::push".
type Seg struct {
	Name string
	Args []TemplateArg // nil when not a template-id
	// HasArgs distinguishes "Stack<>" (empty arg list) from "Stack".
	HasArgs bool
	Loc     source.Loc
}

// QualName is a qualified name: one or more segments. A leading empty
// segment ("::x") denotes explicit global qualification.
type QualName struct {
	Global bool
	Segs   []Seg
}

// Terminal returns the last segment.
func (q QualName) Terminal() Seg {
	if len(q.Segs) == 0 {
		return Seg{}
	}
	return q.Segs[len(q.Segs)-1]
}

// IsSimple reports whether the name is a single unqualified identifier
// without template arguments.
func (q QualName) IsSimple() bool {
	return !q.Global && len(q.Segs) == 1 && !q.Segs[0].HasArgs
}

// Loc returns the location of the first segment.
func (q QualName) Loc() source.Loc {
	if len(q.Segs) == 0 {
		return source.Loc{}
	}
	return q.Segs[0].Loc
}

// String renders the name in C++ syntax.
func (q QualName) String() string {
	var sb strings.Builder
	if q.Global {
		sb.WriteString("::")
	}
	for i, s := range q.Segs {
		if i > 0 {
			sb.WriteString("::")
		}
		sb.WriteString(s.Name)
		if s.HasArgs {
			sb.WriteByte('<')
			for j, a := range s.Args {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(a.String())
			}
			sb.WriteByte('>')
		}
	}
	return sb.String()
}

// TemplateArg is one template argument: either a type or a constant
// expression (non-type argument).
type TemplateArg struct {
	Type TypeExpr // non-nil for type arguments
	Expr Expr     // non-nil for non-type arguments
}

func (a TemplateArg) String() string {
	if a.Type != nil {
		return a.Type.String()
	}
	if a.Expr != nil {
		return ExprString(a.Expr)
	}
	return "?"
}

// TemplateParam is one parameter of a template declaration.
type TemplateParam struct {
	// IsType is true for "class T" / "typename T" parameters, false for
	// non-type parameters ("int N").
	IsType bool
	Name   string
	// Type is the declared type of a non-type parameter.
	Type TypeExpr
	// Default is the default argument, if any (a type for type
	// parameters, an expression for non-type parameters).
	DefaultType TypeExpr
	DefaultExpr Expr
	Loc         source.Loc
}

// TemplateInfo captures the "template <...>" clause attached to a
// declaration. Specializations ("template <>") have empty Params.
type TemplateInfo struct {
	Params []TemplateParam
	// KwLoc is the location of the "template" keyword.
	KwLoc source.Loc
	// Text is the full original text of the templated declaration,
	// reported by the PDB "ttext" attribute.
	Text string
}

// IsSpecialization reports whether this is an explicit specialization
// clause ("template <>").
func (t *TemplateInfo) IsSpecialization() bool { return t != nil && len(t.Params) == 0 }

// ---------------------------------------------------------------------
// Types (syntactic)

// TypeExpr is a syntactic type.
type TypeExpr interface {
	Node
	String() string
	typeExpr()
}

// BuiltinType is a fundamental type ("int", "unsigned long", "void"...).
type BuiltinType struct {
	Spec string
	Pos  source.Loc
}

// NamedType refers to a class/enum/typedef/template-id by name.
type NamedType struct {
	Name QualName
	// Struct records an elaborated-type-specifier keyword ("class",
	// "struct", "union", "enum", "typename"), or "".
	Elaborated string
}

// ConstType wraps a type with a const qualifier.
type ConstType struct {
	Elem TypeExpr
	Pos  source.Loc
}

// VolatileType wraps a type with a volatile qualifier.
type VolatileType struct {
	Elem TypeExpr
	Pos  source.Loc
}

// PointerType is "T*".
type PointerType struct {
	Elem TypeExpr
	Pos  source.Loc
}

// RefType is "T&".
type RefType struct {
	Elem TypeExpr
	Pos  source.Loc
}

// ArrayType is "T[n]" (n may be nil for unsized).
type ArrayType struct {
	Elem TypeExpr
	Size Expr
	Pos  source.Loc
}

// FuncType is a function type as it appears in a declarator (pointers
// to functions, signatures).
type FuncType struct {
	Ret    TypeExpr
	Params []*ParamDecl
	Const  bool
	Pos    source.Loc
}

func (t *BuiltinType) typeExpr()  {}
func (t *NamedType) typeExpr()    {}
func (t *ConstType) typeExpr()    {}
func (t *VolatileType) typeExpr() {}
func (t *PointerType) typeExpr()  {}
func (t *RefType) typeExpr()      {}
func (t *ArrayType) typeExpr()    {}
func (t *FuncType) typeExpr()     {}

func (t *BuiltinType) Span() source.Span { return source.Span{Begin: t.Pos, End: t.Pos} }
func (t *NamedType) Span() source.Span {
	l := t.Name.Loc()
	return source.Span{Begin: l, End: l}
}
func (t *ConstType) Span() source.Span    { return t.Elem.Span() }
func (t *VolatileType) Span() source.Span { return t.Elem.Span() }
func (t *PointerType) Span() source.Span  { return t.Elem.Span() }
func (t *RefType) Span() source.Span      { return t.Elem.Span() }
func (t *ArrayType) Span() source.Span    { return t.Elem.Span() }
func (t *FuncType) Span() source.Span     { return source.Span{Begin: t.Pos, End: t.Pos} }

func (t *BuiltinType) String() string { return t.Spec }
func (t *NamedType) String() string   { return t.Name.String() }
func (t *ConstType) String() string   { return "const " + t.Elem.String() }
func (t *VolatileType) String() string {
	return "volatile " + t.Elem.String()
}
func (t *PointerType) String() string { return t.Elem.String() + " *" }
func (t *RefType) String() string     { return t.Elem.String() + " &" }
func (t *ArrayType) String() string   { return t.Elem.String() + " []" }
func (t *FuncType) String() string {
	var sb strings.Builder
	sb.WriteString(t.Ret.String())
	sb.WriteString(" (")
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Type.String())
	}
	sb.WriteString(")")
	if t.Const {
		sb.WriteString(" const")
	}
	return sb.String()
}
