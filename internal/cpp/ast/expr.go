package ast

import (
	"strings"

	"pdt/internal/source"
)

// Expr is implemented by every expression node.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Text  string
	Pos   source.Loc
}

// FloatLit is a floating literal.
type FloatLit struct {
	Value float64
	Text  string
	Pos   source.Loc
}

// CharLit is a character literal.
type CharLit struct {
	Value int64
	Text  string
	Pos   source.Loc
}

// StringLit is a string literal (adjacent literals already concatenated).
type StringLit struct {
	Value string
	Pos   source.Loc
}

// BoolLit is "true" or "false".
type BoolLit struct {
	Value bool
	Pos   source.Loc
}

// NameExpr references a (possibly qualified) name.
type NameExpr struct {
	Name QualName
}

// ThisExpr is "this".
type ThisExpr struct {
	Pos source.Loc
}

// ParenExpr is "(e)".
type ParenExpr struct {
	E   Expr
	Pos source.Span
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	Neg     UnaryOp = iota // -
	Pos_                   // +
	LogNot                 // !
	BitNot                 // ~
	Deref                  // *
	AddrOf                 // &
	PreInc                 // ++e
	PreDec                 // --e
	PostInc                // e++
	PostDec                // e--
)

var unaryNames = map[UnaryOp]string{
	Neg: "-", Pos_: "+", LogNot: "!", BitNot: "~", Deref: "*", AddrOf: "&",
	PreInc: "++", PreDec: "--", PostInc: "++", PostDec: "--",
}

func (o UnaryOp) String() string { return unaryNames[o] }

// UnaryExpr is a unary operation.
type UnaryExpr struct {
	Op      UnaryOp
	Operand Expr
	Pos     source.Loc
}

// BinOp enumerates binary (and assignment and comma) operators.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	BAnd
	BOr
	BXor
	ShlOp
	ShrOp
	LAnd
	LOr
	EqOp
	NeOp
	LtOp
	GtOp
	LeOp
	GeOp
	AssignOp
	AddAssign
	SubAssign
	MulAssign
	DivAssign
	RemAssign
	AndAssign
	OrAssign
	XorAssign
	ShlAssignOp
	ShrAssignOp
	Comma
)

var binNames = map[BinOp]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
	BAnd: "&", BOr: "|", BXor: "^", ShlOp: "<<", ShrOp: ">>",
	LAnd: "&&", LOr: "||", EqOp: "==", NeOp: "!=",
	LtOp: "<", GtOp: ">", LeOp: "<=", GeOp: ">=",
	AssignOp: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=",
	DivAssign: "/=", RemAssign: "%=", AndAssign: "&=", OrAssign: "|=",
	XorAssign: "^=", ShlAssignOp: "<<=", ShrAssignOp: ">>=", Comma: ",",
}

func (o BinOp) String() string { return binNames[o] }

// IsAssign reports whether the operator assigns to its left operand.
func (o BinOp) IsAssign() bool {
	switch o {
	case AssignOp, AddAssign, SubAssign, MulAssign, DivAssign, RemAssign,
		AndAssign, OrAssign, XorAssign, ShlAssignOp, ShrAssignOp:
		return true
	}
	return false
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
	Pos  source.Loc // operator position
}

// CondExpr is "c ? t : f".
type CondExpr struct {
	C, T, F Expr
	Pos     source.Loc
}

// CallExpr is "fn(args...)". Fn may be a NameExpr, MemberExpr, or any
// callable expression.
type CallExpr struct {
	Fn   Expr
	Args []Expr
	Pos  source.Span // from fn to ')'
	// LParen is the call's opening parenthesis; PDB "rcall" locations
	// point at the callee name, kept on Fn.
	LParen source.Loc
}

// MemberExpr is "base.name" or "base->name".
type MemberExpr struct {
	Base  Expr
	Arrow bool
	Name  QualName
	Pos   source.Loc // location of name
}

// IndexExpr is "base[index]".
type IndexExpr struct {
	Base, Index Expr
	Pos         source.Span
}

// CastStyle distinguishes cast syntaxes.
type CastStyle int

// Cast styles.
const (
	CCast CastStyle = iota
	StaticCast
	ConstCast
	ReinterpretCast
	DynamicCast
	FunctionalCast // T(expr)
)

// CastExpr is a cast of any style.
type CastExpr struct {
	Style   CastStyle
	Type    TypeExpr
	Operand Expr
	Pos     source.Span
}

// ConstructExpr is a functional-style construction "T(a, b)" with zero
// or 2+ arguments (one argument parses as FunctionalCast), or an
// explicit temporary of class type.
type ConstructExpr struct {
	Type TypeExpr
	Args []Expr
	Pos  source.Span
}

// NewExpr is "new T", "new T(args)", or "new T[n]".
type NewExpr struct {
	Type      TypeExpr
	Args      []Expr
	ArraySize Expr // non-nil for new[]
	Pos       source.Span
}

// DeleteExpr is "delete e" or "delete[] e".
type DeleteExpr struct {
	Operand Expr
	Array   bool
	Pos     source.Span
}

// SizeofExpr is "sizeof(type)" or "sizeof expr".
type SizeofExpr struct {
	Type TypeExpr // exactly one of Type/Operand set
	E    Expr
	Pos  source.Span
}

// ThrowExpr is "throw e" or rethrow "throw".
type ThrowExpr struct {
	Operand Expr // may be nil
	Pos     source.Span
}

func (e *IntLit) exprNode()        {}
func (e *FloatLit) exprNode()      {}
func (e *CharLit) exprNode()       {}
func (e *StringLit) exprNode()     {}
func (e *BoolLit) exprNode()       {}
func (e *NameExpr) exprNode()      {}
func (e *ThisExpr) exprNode()      {}
func (e *ParenExpr) exprNode()     {}
func (e *UnaryExpr) exprNode()     {}
func (e *BinaryExpr) exprNode()    {}
func (e *CondExpr) exprNode()      {}
func (e *CallExpr) exprNode()      {}
func (e *MemberExpr) exprNode()    {}
func (e *IndexExpr) exprNode()     {}
func (e *CastExpr) exprNode()      {}
func (e *ConstructExpr) exprNode() {}
func (e *NewExpr) exprNode()       {}
func (e *DeleteExpr) exprNode()    {}
func (e *SizeofExpr) exprNode()    {}
func (e *ThrowExpr) exprNode()     {}

func ptSpan(l source.Loc) source.Span { return source.Span{Begin: l, End: l} }

func (e *IntLit) Span() source.Span     { return ptSpan(e.Pos) }
func (e *FloatLit) Span() source.Span   { return ptSpan(e.Pos) }
func (e *CharLit) Span() source.Span    { return ptSpan(e.Pos) }
func (e *StringLit) Span() source.Span  { return ptSpan(e.Pos) }
func (e *BoolLit) Span() source.Span    { return ptSpan(e.Pos) }
func (e *NameExpr) Span() source.Span   { return ptSpan(e.Name.Loc()) }
func (e *ThisExpr) Span() source.Span   { return ptSpan(e.Pos) }
func (e *ParenExpr) Span() source.Span  { return e.Pos }
func (e *UnaryExpr) Span() source.Span  { return ptSpan(e.Pos) }
func (e *BinaryExpr) Span() source.Span { return ptSpan(e.Pos) }
func (e *CondExpr) Span() source.Span   { return ptSpan(e.Pos) }
func (e *CallExpr) Span() source.Span   { return e.Pos }
func (e *MemberExpr) Span() source.Span { return ptSpan(e.Pos) }
func (e *IndexExpr) Span() source.Span  { return e.Pos }
func (e *CastExpr) Span() source.Span   { return e.Pos }
func (e *ConstructExpr) Span() source.Span {
	return e.Pos
}
func (e *NewExpr) Span() source.Span    { return e.Pos }
func (e *DeleteExpr) Span() source.Span { return e.Pos }
func (e *SizeofExpr) Span() source.Span { return e.Pos }
func (e *ThrowExpr) Span() source.Span  { return e.Pos }

// ExprString renders an expression back to approximate C++ source, used
// in diagnostics and in PDB template-argument spellings.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return e.Text
	case *FloatLit:
		return e.Text
	case *CharLit:
		return e.Text
	case *StringLit:
		return "\"" + e.Value + "\""
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *NameExpr:
		return e.Name.String()
	case *ThisExpr:
		return "this"
	case *ParenExpr:
		return "(" + ExprString(e.E) + ")"
	case *UnaryExpr:
		if e.Op == PostInc || e.Op == PostDec {
			return ExprString(e.Operand) + e.Op.String()
		}
		return e.Op.String() + ExprString(e.Operand)
	case *BinaryExpr:
		return ExprString(e.L) + " " + e.Op.String() + " " + ExprString(e.R)
	case *CondExpr:
		return ExprString(e.C) + " ? " + ExprString(e.T) + " : " + ExprString(e.F)
	case *CallExpr:
		return ExprString(e.Fn) + "(" + exprList(e.Args) + ")"
	case *MemberExpr:
		op := "."
		if e.Arrow {
			op = "->"
		}
		return ExprString(e.Base) + op + e.Name.String()
	case *IndexExpr:
		return ExprString(e.Base) + "[" + ExprString(e.Index) + "]"
	case *CastExpr:
		switch e.Style {
		case StaticCast:
			return "static_cast<" + e.Type.String() + ">(" + ExprString(e.Operand) + ")"
		case FunctionalCast:
			return e.Type.String() + "(" + ExprString(e.Operand) + ")"
		default:
			return "(" + e.Type.String() + ")" + ExprString(e.Operand)
		}
	case *ConstructExpr:
		return e.Type.String() + "(" + exprList(e.Args) + ")"
	case *NewExpr:
		s := "new " + e.Type.String()
		if e.ArraySize != nil {
			s += "[" + ExprString(e.ArraySize) + "]"
		} else if len(e.Args) > 0 {
			s += "(" + exprList(e.Args) + ")"
		}
		return s
	case *DeleteExpr:
		if e.Array {
			return "delete[] " + ExprString(e.Operand)
		}
		return "delete " + ExprString(e.Operand)
	case *SizeofExpr:
		if e.Type != nil {
			return "sizeof(" + e.Type.String() + ")"
		}
		return "sizeof " + ExprString(e.E)
	case *ThrowExpr:
		if e.Operand == nil {
			return "throw"
		}
		return "throw " + ExprString(e.Operand)
	default:
		return "<expr>"
	}
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}
