// Package core is the PDT pipeline facade: it wires the preprocessor,
// parser, and semantic analyzer into a single Compile call producing
// the IL, and (together with internal/ilanalyzer and internal/pdb) a
// program database. It is the programmatic equivalent of the paper's
// cxxparse front-end driver.
package core

import (
	"fmt"

	"pdt/internal/cpp/ast"
	"pdt/internal/cpp/parse"
	"pdt/internal/cpp/pp"
	"pdt/internal/cpp/sema"
	"pdt/internal/cpp/stdlib"
	"pdt/internal/il"
	"pdt/internal/source"
)

// Options configure a compilation.
type Options struct {
	// Defines are command-line macro definitions ("NAME" or "NAME=V").
	Defines []string
	// IncludePaths are extra directories for #include resolution.
	IncludePaths []string
	// Mode selects template instantiation strategy (default Used).
	Mode sema.InstantiationMode
	// NoStdlib disables the built-in system headers.
	NoStdlib bool
}

// Diagnostic is a pipeline error with its source stage.
type Diagnostic struct {
	Stage string // "lex/pp", "parse", "sema"
	Loc   source.Loc
	Msg   string
}

func (d Diagnostic) Error() string { return fmt.Sprintf("%s: %s: %s", d.Loc, d.Stage, d.Msg) }

// Result is the output of Compile.
type Result struct {
	Unit        *il.Unit
	TU          *ast.TranslationUnit
	Diagnostics []Diagnostic
	Stats       sema.Stats
}

// HasErrors reports whether any stage produced diagnostics.
func (r *Result) HasErrors() bool { return len(r.Diagnostics) > 0 }

// NewFileSet returns a file set with the built-in headers registered
// (unless opts.NoStdlib) and the option include paths installed.
func NewFileSet(opts Options) *source.FileSet {
	fs := source.NewFileSet()
	fs.SearchPaths = append(fs.SearchPaths, opts.IncludePaths...)
	if !opts.NoStdlib {
		stdlib.Register(fs)
	}
	return fs
}

// CompileFile loads path from disk and compiles it.
func CompileFile(fs *source.FileSet, path string, opts Options) (*Result, error) {
	f, err := fs.Load(path)
	if err != nil {
		return nil, err
	}
	return Compile(fs, f, opts), nil
}

// CompileSource compiles in-memory source registered under name.
func CompileSource(fs *source.FileSet, name, src string, opts Options) *Result {
	f := fs.AddVirtualFile(name, src)
	return Compile(fs, f, opts)
}

// Compile runs the full frontend over one translation unit.
func Compile(fs *source.FileSet, f *source.File, opts Options) *Result {
	res := &Result{}

	pre := pp.New(fs)
	for _, d := range opts.Defines {
		pre.Define(d)
	}
	toks := pre.Process(f)
	for _, e := range pre.Errors() {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{Stage: "lex/pp", Loc: e.Loc, Msg: e.Msg})
	}

	tu, perrs := parse.ParseFile(f, toks)
	res.TU = tu
	for _, e := range perrs {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{Stage: "parse", Loc: e.Loc, Msg: e.Msg})
	}

	semaOpts := sema.DefaultOptions()
	semaOpts.Mode = opts.Mode
	an := sema.New(f, semaOpts)
	res.Unit = an.Analyze(tu)
	res.Unit.Macros = pre.Records
	for _, e := range an.Errors() {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{Stage: "sema", Loc: e.Loc, Msg: e.Msg})
	}
	res.Stats = an.Stats()
	return res
}
