package core_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/cpp/stdlib"
)

func TestCompileFileFromDisk(t *testing.T) {
	dir := t.TempDir()
	hdr := filepath.Join(dir, "lib.h")
	mainPath := filepath.Join(dir, "main.cpp")
	os.WriteFile(hdr, []byte("int helper();\n"), 0o644)
	os.WriteFile(mainPath, []byte("#include \"lib.h\"\nint main() { return helper(); }\n"), 0o644)

	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res, err := core.CompileFile(fs, mainPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasErrors() {
		t.Fatalf("diagnostics: %v", res.Diagnostics)
	}
	if len(res.Unit.Files) != 2 {
		t.Errorf("files = %d", len(res.Unit.Files))
	}
	if _, err := core.CompileFile(fs, filepath.Join(dir, "missing.cpp"), opts); err == nil {
		t.Error("missing file should error")
	}
}

func TestIncludePaths(t *testing.T) {
	dir := t.TempDir()
	incDir := filepath.Join(dir, "include")
	os.MkdirAll(incDir, 0o755)
	os.WriteFile(filepath.Join(incDir, "dep.h"), []byte("int fromdep;\n"), 0o644)

	opts := core.Options{IncludePaths: []string{incDir}}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", "#include \"dep.h\"\nint main() { return fromdep; }\n", opts)
	if res.HasErrors() {
		t.Fatalf("diagnostics: %v", res.Diagnostics)
	}
}

func TestCommandLineDefines(t *testing.T) {
	opts := core.Options{Defines: []string{"FEATURE", "LEVEL=3"}}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", `
#ifdef FEATURE
int enabled[LEVEL];
#endif
int main() { return 0; }
`, opts)
	if res.HasErrors() {
		t.Fatalf("diagnostics: %v", res.Diagnostics)
	}
	found := false
	for _, v := range res.Unit.Global.Vars {
		if v.Name == "enabled" && v.Type.Unqualified().ArrayLen == 3 {
			found = true
		}
	}
	if !found {
		t.Error("define-controlled declaration missing")
	}
}

func TestDiagnosticStages(t *testing.T) {
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", `
#include "nope.h"
class C {
UnknownType x;
int main( { return 0; }
`, opts)
	if !res.HasErrors() {
		t.Fatal("expected diagnostics")
	}
	stages := map[string]bool{}
	for _, d := range res.Diagnostics {
		stages[d.Stage] = true
		if d.Error() == "" {
			t.Error("empty diagnostic string")
		}
	}
	if !stages["lex/pp"] {
		t.Errorf("missing pp diagnostic: %v", res.Diagnostics)
	}
	if !stages["parse"] && !stages["sema"] {
		t.Errorf("missing parse/sema diagnostics: %v", res.Diagnostics)
	}
}

func TestNoStdlib(t *testing.T) {
	opts := core.Options{NoStdlib: true}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", "#include <vector>\nint main() { return 0; }\n", opts)
	if !res.HasErrors() {
		t.Error("NoStdlib should make <vector> unresolvable")
	}
}

// TestEveryBuiltinHeaderCompiles compiles each built-in header as its
// own translation unit — the headers must be self-contained, like the
// KAI headers the paper ships.
func TestEveryBuiltinHeaderCompiles(t *testing.T) {
	seen := map[string]bool{}
	for name := range stdlib.Headers {
		if seen[stdlib.Headers[name]] {
			continue
		}
		seen[stdlib.Headers[name]] = true
		t.Run(name, func(t *testing.T) {
			opts := core.Options{}
			fs := core.NewFileSet(opts)
			src := "#include <" + name + ">\nint main() { return 0; }\n"
			res := core.CompileSource(fs, "main.cpp", src, opts)
			for _, d := range res.Diagnostics {
				t.Errorf("%s: %v", name, d)
			}
		})
	}
}

func TestStatsPopulated(t *testing.T) {
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", `
template <class T> class Box { public: T v; T get() { return v; } };
int main() { Box<int> b; return b.get(); }
`, opts)
	if res.HasErrors() {
		t.Fatal(res.Diagnostics)
	}
	st := res.Stats
	if st.Classes == 0 || st.Routines == 0 || st.ClassInsts != 1 ||
		st.RoutineInsts == 0 || st.Types == 0 || st.BodiesAnalyzed == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMacroRecordsFlowToUnit(t *testing.T) {
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", "#define X 1\nint main() { return X; }\n", opts)
	if res.HasErrors() {
		t.Fatal(res.Diagnostics)
	}
	found := false
	for _, m := range res.Unit.Macros {
		if m.Name == "X" {
			found = true
		}
	}
	if !found {
		t.Error("macro records not attached to unit")
	}
}

func TestDiagnosticFormat(t *testing.T) {
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", "Unknown x;\n", opts)
	if len(res.Diagnostics) == 0 {
		t.Fatal("expected diagnostics")
	}
	msg := res.Diagnostics[0].Error()
	if !strings.Contains(msg, "main.cpp:1") {
		t.Errorf("diagnostic lacks position: %q", msg)
	}
}
