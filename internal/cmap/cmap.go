// Package cmap provides a sharded concurrent map: the key space is
// split across a fixed power-of-two number of independently locked
// shards, so readers and writers only contend when their keys hash to
// the same shard. It replaces the global maps of internal/ductape —
// the per-PDB ID indices and the merge dedup-key tables — where one
// RWMutex (or one unguarded map) would serialize every core touching
// the database.
//
// The design follows the src/cmap shape of the please build system:
// fixed shard array, per-shard RWMutex + map, a cheap hash to pick the
// shard, and a GetOrSet primitive so dedup ("first writer wins, and
// tell me who won") is one shard-local critical section instead of a
// global lock-check-insert dance.
package cmap

import (
	"math/bits"
	"sync"
)

// shardCount is the number of shards. 64 keeps per-shard contention
// negligible at any realistic core count while costing only a few
// kilobytes per map; a power of two makes shard selection a mask.
const shardCount = 64

// Hasher maps a key to a well-distributed 64-bit value. The high bits
// pick the shard, so identity hashes on small ints must be avoided —
// use the provided IntHash/StringHash.
type Hasher[K comparable] func(K) uint64

// IntHash is a Fibonacci multiplicative hash: one multiply spreads
// dense sequential IDs (the common PDB case) across shards.
func IntHash(k int) uint64 {
	return uint64(k) * 0x9E3779B97F4A7C15
}

// StringHash is FNV-1a, inlined to avoid the hash.Hash64 allocation.
func StringHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

type shard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// Map is a sharded concurrent map. The zero value is not usable; use
// New (or NewInt / NewString).
type Map[K comparable, V any] struct {
	hash   Hasher[K]
	shards [shardCount]shard[K, V]
}

// New builds an empty map sharded by hash.
func New[K comparable, V any](hash Hasher[K]) *Map[K, V] {
	m := &Map[K, V]{hash: hash}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V)
	}
	return m
}

// NewInt builds an int-keyed map with the Fibonacci hash.
func NewInt[V any]() *Map[int, V] { return New[int, V](IntHash) }

// NewString builds a string-keyed map with the FNV-1a hash.
func NewString[V any]() *Map[string, V] { return New[string, V](StringHash) }

func (m *Map[K, V]) shard(k K) *shard[K, V] {
	// The top bits of the hash select the shard: multiplicative hashes
	// mix upward, so the high bits are the well-distributed ones.
	return &m.shards[m.hash(k)>>(64-bits.Len(shardCount-1))]
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	s := m.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Value returns the value stored under k, or the zero value when
// absent — the sharded spelling of a plain map index expression.
func (m *Map[K, V]) Value(k K) V {
	v, _ := m.Get(k)
	return v
}

// Set stores v under k, replacing any existing value.
func (m *Map[K, V]) Set(k K, v V) {
	s := m.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// GetOrSet returns the value stored under k, storing (and returning)
// v if the key was absent. The boolean reports whether the key was
// already present — the dedup primitive: the first caller wins and
// every caller learns the winner, all in one shard-local section.
func (m *Map[K, V]) GetOrSet(k K, v V) (V, bool) {
	s := m.shard(k)
	s.mu.Lock()
	if old, ok := s.m[k]; ok {
		s.mu.Unlock()
		return old, true
	}
	s.m[k] = v
	s.mu.Unlock()
	return v, false
}

// Delete removes k.
func (m *Map[K, V]) Delete(k K) {
	s := m.shard(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Len returns the number of stored keys. It locks each shard in turn,
// so the count is a consistent sum only when no writer is running.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Iteration
// order is unspecified; each shard is read-locked only while being
// walked, so fn must not call back into the same shard's writers.
func (m *Map[K, V]) Range(fn func(K, V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
