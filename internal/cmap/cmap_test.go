package cmap_test

import (
	"sync"
	"testing"

	"pdt/internal/cmap"
)

func TestBasicOps(t *testing.T) {
	m := cmap.NewInt[string]()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map reported a key")
	}
	m.Set(1, "a")
	m.Set(2, "b")
	m.Set(1, "c") // replace
	if v, ok := m.Get(1); !ok || v != "c" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Delete(1)
	if _, ok := m.Get(1); ok {
		t.Fatal("deleted key still present")
	}
}

func TestGetOrSet(t *testing.T) {
	m := cmap.NewString[int]()
	v, loaded := m.GetOrSet("k", 1)
	if loaded || v != 1 {
		t.Fatalf("first GetOrSet = %d, %v", v, loaded)
	}
	v, loaded = m.GetOrSet("k", 2)
	if !loaded || v != 1 {
		t.Fatalf("second GetOrSet = %d, %v; the first writer must win", v, loaded)
	}
}

func TestRange(t *testing.T) {
	m := cmap.NewInt[int]()
	for i := 0; i < 1000; i++ {
		m.Set(i, i*i)
	}
	seen := make(map[int]int)
	m.Range(func(k, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 1000 {
		t.Fatalf("Range visited %d keys, want 1000", len(seen))
	}
	for k, v := range seen {
		if v != k*k {
			t.Fatalf("key %d has value %d", k, v)
		}
	}
	// Early termination stops the walk.
	n := 0
	m.Range(func(int, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early-terminated Range visited %d", n)
	}
}

// TestConcurrentDedup exercises the GetOrSet dedup contract under
// contention: for every key exactly one writer must win, and every
// loser must observe the winner's value. Run with -race in CI.
func TestConcurrentDedup(t *testing.T) {
	m := cmap.NewString[int]()
	const keys = 128
	const writers = 8
	winners := make([][]int, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				v, loaded := m.GetOrSet(key(k), w)
				if !loaded {
					winners[w] = append(winners[w], k)
				} else if v < 0 || v >= writers {
					t.Errorf("key %d: loser observed impossible value %d", k, v)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, ws := range winners {
		total += len(ws)
	}
	if total != keys {
		t.Fatalf("%d wins for %d keys; GetOrSet must elect exactly one winner per key", total, keys)
	}
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
}

func key(k int) string {
	return string(rune('a'+k%26)) + string(rune('0'+k/26))
}

// TestConcurrentMixed hammers reads, writes, and deletes together so
// the race detector can see any unguarded path.
func TestConcurrentMixed(t *testing.T) {
	m := cmap.NewInt[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*2000 + i) % 512
				switch i % 4 {
				case 0:
					m.Set(k, i)
				case 1:
					m.Get(k)
				case 2:
					m.GetOrSet(k, i)
				case 3:
					if i%64 == 3 {
						m.Delete(k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	m.Range(func(k, v int) bool { return true })
}

func BenchmarkShardedGet(b *testing.B) {
	m := cmap.NewInt[int]()
	for i := 0; i < 4096; i++ {
		m.Set(i, i)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Get(i % 4096)
			i++
		}
	})
}

func BenchmarkGlobalGet(b *testing.B) {
	var mu sync.RWMutex
	m := make(map[int]int, 4096)
	for i := 0; i < 4096; i++ {
		m[i] = i
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.RLock()
			_ = m[i%4096]
			mu.RUnlock()
			i++
		}
	})
}
