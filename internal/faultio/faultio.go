// Package faultio provides deterministic, seed-driven fault injection
// for I/O paths: io.Reader and fs.FS wrappers that deliver short reads,
// mid-stream errors, truncation, and byte corruption on schedule. It is
// the test harness behind the resilient-ingestion work: the lenient PDB
// reader and the pdbio retry/quarantine options are proven against
// corpora damaged by these wrappers, under fixed seeds so every failure
// reproduces bit-for-bit.
//
// The package is production-shaped test infrastructure: it has no
// dependency on the PDB layers, injects faults only where a Plan says
// to, and its injected errors satisfy the Temporary() convention that
// retry layers (internal/pdbio's WithRetry) classify on.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"sync"
)

// ErrInjected is the sentinel all injected faults match via errors.Is,
// so tests can tell a scheduled fault from a genuine I/O failure.
var ErrInjected = errors.New("faultio: injected fault")

// InjectedError is the concrete error delivered by a scheduled
// mid-stream fault. It reports Temporary() == true — the same
// convention net.Error uses for transient failures — so retry layers
// treat it as retryable.
type InjectedError struct {
	Op  string // "read" or "open"
	Off int64  // stream offset (reads) or attempt number (opens)
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultio: injected %s fault at %d", e.Op, e.Off)
}

// Temporary marks the fault as transient for retry classification.
func (e *InjectedError) Temporary() bool { return true }

// Is matches the ErrInjected sentinel.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Plan is one reader's deterministic fault schedule. The zero Plan
// injects nothing; NewPlan derives a randomized one from a seed.
type Plan struct {
	// ShortReads caps every Read at 1..7 bytes (sized by the reader's
	// seed-driven rng), exercising partial-read handling.
	ShortReads bool
	// FailAfter injects an InjectedError once the stream has delivered
	// this many bytes. <=0 disables, keeping the zero Plan clean.
	FailAfter int64
	// TruncateAfter delivers a clean io.EOF once the stream has
	// delivered this many bytes — a torn write, not an error. <=0
	// disables, keeping the zero Plan clean.
	TruncateAfter int64
	// Corrupt XORs the byte at each stream offset with the given
	// non-zero mask as it passes through.
	Corrupt map[int64]byte
}

// NewPlan derives a deterministic fault plan for a stream of the given
// size from seed. Roughly one in three plans truncates, one in three
// fails mid-stream, and all corrupt a sprinkling of bytes; short reads
// are always on so buffer boundaries move with the seed.
func NewPlan(seed, size int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{ShortReads: true}
	if size <= 0 {
		return p
	}
	switch rng.Intn(3) {
	case 0:
		p.TruncateAfter = 1 + rng.Int63n(size)
	case 1:
		p.FailAfter = 1 + rng.Int63n(size)
	}
	n := 1 + rng.Intn(8)
	p.Corrupt = make(map[int64]byte, n)
	for i := 0; i < n; i++ {
		mask := byte(1 + rng.Intn(255))
		p.Corrupt[rng.Int63n(size)] = mask
	}
	return p
}

// Reader wraps r and applies the plan's faults in stream order. The
// seed drives only the short-read sizes; all fault positions come from
// the plan, so two readers with the same plan and seed behave
// identically.
type Reader struct {
	r    io.Reader
	plan Plan
	rng  *rand.Rand
	off  int64
	done bool // a fault already fired; subsequent reads repeat it
	err  error
}

// NewReader builds a fault-injecting reader over r.
func NewReader(r io.Reader, plan Plan, seed int64) *Reader {
	return &Reader{r: r, plan: plan, rng: rand.New(rand.NewSource(seed))}
}

func (f *Reader) Read(p []byte) (int, error) {
	if f.done {
		return 0, f.err
	}
	if len(p) == 0 {
		return f.r.Read(p)
	}
	limit := int64(len(p))
	if f.plan.ShortReads {
		if max := int64(1 + f.rng.Intn(7)); max < limit {
			limit = max
		}
	}
	if f.plan.TruncateAfter > 0 {
		if rem := f.plan.TruncateAfter - f.off; rem < limit {
			limit = rem
		}
	}
	if f.plan.FailAfter > 0 {
		if rem := f.plan.FailAfter - f.off; rem < limit {
			limit = rem
		}
	}
	if limit <= 0 {
		f.done = true
		if f.plan.FailAfter > 0 && f.off >= f.plan.FailAfter {
			f.err = &InjectedError{Op: "read", Off: f.off}
		} else {
			f.err = io.EOF
		}
		return 0, f.err
	}
	n, err := f.r.Read(p[:limit])
	for i := 0; i < n; i++ {
		if mask, ok := f.plan.Corrupt[f.off+int64(i)]; ok {
			p[i] ^= mask
		}
	}
	f.off += int64(n)
	return n, err
}

// FS wraps a base filesystem and injects faults per open: failed opens
// for the first attempts of a path, and fault-injecting readers on the
// files it does hand out. Attempt counting is per path and concurrency
// safe, so retry loops observe a deterministic fail-then-succeed
// sequence.
type FS struct {
	base fs.FS
	// PlanFor decides the faults for one open: attempt is 0-based per
	// path. Return openErr non-nil to fail the open itself; otherwise
	// the returned plan (zero Plan = clean) wraps the file's reads. A
	// nil PlanFor makes the filesystem transparent.
	planFor func(name string, attempt int) (Plan, error)

	mu    sync.Mutex
	opens map[string]int
}

// NewFS builds a fault-injecting filesystem over base. planFor may be
// nil for a transparent wrapper.
func NewFS(base fs.FS, planFor func(name string, attempt int) (Plan, error)) *FS {
	return &FS{base: base, planFor: planFor, opens: map[string]int{}}
}

// FailOpens returns a planFor that fails the first n opens of every
// path with an InjectedError and serves clean files afterwards.
func FailOpens(n int) func(string, int) (Plan, error) {
	return func(name string, attempt int) (Plan, error) {
		if attempt < n {
			return Plan{}, &InjectedError{Op: "open", Off: int64(attempt)}
		}
		return Plan{}, nil
	}
}

// OpenCount reports how many opens the path has seen.
func (f *FS) OpenCount(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens[name]
}

// Open implements fs.FS.
func (f *FS) Open(name string) (fs.File, error) {
	f.mu.Lock()
	attempt := f.opens[name]
	f.opens[name] = attempt + 1
	f.mu.Unlock()

	var plan Plan
	if f.planFor != nil {
		var err error
		plan, err = f.planFor(name, attempt)
		if err != nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: err}
		}
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, r: NewReader(file, plan, int64(attempt)+1)}, nil
}

// faultFile routes Read through the fault-injecting reader while
// delegating Stat and Close to the real file.
type faultFile struct {
	fs.File
	r *Reader
}

func (f *faultFile) Read(p []byte) (int, error) { return f.r.Read(p) }

// CorruptBytes XORs n bytes of data at seed-driven offsets with
// seed-driven non-zero masks, returning a corrupted copy and the sorted
// offsets touched. It never writes a zero mask, so every listed offset
// really differs from the original.
func CorruptBytes(data []byte, seed int64, n int) ([]byte, []int64) {
	out := make([]byte, len(data))
	copy(out, data)
	if len(out) == 0 || n <= 0 {
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed))
	touched := map[int64]bool{}
	for i := 0; i < n; i++ {
		off := rng.Int63n(int64(len(out)))
		out[off] ^= byte(1 + rng.Intn(255))
		touched[off] = true
	}
	offs := make([]int64, 0, len(touched))
	for off := range touched {
		offs = append(offs, off)
	}
	for i := 1; i < len(offs); i++ { // insertion sort: n is tiny
		for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
	return out, offs
}
