//go:build !unix

package faultio

import "os"

// selfKill without POSIX signals approximates kill -9 with an
// immediate exit: deferred functions are skipped, but create-exclusive
// lock files are left behind (matching durable's !unix lock caveat).
func selfKill() {
	os.Exit(137)
}

// selfStop cannot be emulated portably (there is no way to freeze a
// process while keeping it alive); a stop directive degrades to a
// kill, which the same supervision path recovers.
func selfStop() {
	os.Exit(137)
}
