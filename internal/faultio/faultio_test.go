package faultio

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"strings"
	"testing"
	"testing/fstest"
)

func TestReaderCleanPlanPassesThrough(t *testing.T) {
	data := []byte("hello, fault injection world")
	r := NewReader(bytes.NewReader(data), Plan{FailAfter: -1, TruncateAfter: -1}, 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q, want %q", got, data)
	}
}

func TestReaderShortReadsDeliverEverything(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 100)
	r := NewReader(bytes.NewReader(data), Plan{ShortReads: true, FailAfter: -1, TruncateAfter: -1}, 7)
	buf := make([]byte, 64)
	var got []byte
	for {
		n, err := r.Read(buf)
		if n > 8 {
			t.Fatalf("read delivered %d bytes, short-read cap is 7", n)
		}
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Errorf("short reads lost data: got %d bytes, want %d", len(got), len(data))
	}
}

func TestReaderTruncation(t *testing.T) {
	data := []byte("0123456789")
	r := NewReader(bytes.NewReader(data), Plan{TruncateAfter: 4, FailAfter: -1}, 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll after truncation: %v (truncation must be a clean EOF)", err)
	}
	if string(got) != "0123" {
		t.Errorf("got %q, want %q", got, "0123")
	}
}

func TestReaderFailAfter(t *testing.T) {
	data := []byte("0123456789")
	r := NewReader(bytes.NewReader(data), Plan{FailAfter: 6, TruncateAfter: -1}, 1)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "012345" {
		t.Errorf("delivered %q before the fault, want %q", got, "012345")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || !ie.Temporary() {
		t.Errorf("injected error %v must report Temporary() == true", err)
	}
	// The fault latches: later reads repeat it.
	if _, err2 := r.Read(make([]byte, 4)); !errors.Is(err2, ErrInjected) {
		t.Errorf("second read after fault = %v, want the latched fault", err2)
	}
}

func TestReaderCorruption(t *testing.T) {
	data := []byte("abcdef")
	plan := Plan{FailAfter: -1, TruncateAfter: -1, Corrupt: map[int64]byte{2: 0xFF, 5: 0x01}}
	r := NewReader(bytes.NewReader(data), plan, 1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	want := []byte{'a', 'b', 'c' ^ 0xFF, 'd', 'e', 'f' ^ 0x01}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReaderDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte("determinism"), 50)
	plan := NewPlan(42, int64(len(data)))
	read := func() ([]byte, error) {
		return io.ReadAll(NewReader(bytes.NewReader(data), plan, 42))
	}
	a, errA := read()
	b, errB := read()
	if !bytes.Equal(a, b) {
		t.Error("same plan+seed delivered different bytes")
	}
	if (errA == nil) != (errB == nil) {
		t.Errorf("same plan+seed delivered different errors: %v vs %v", errA, errB)
	}
}

func TestNewPlanCoversFaultKinds(t *testing.T) {
	var truncs, fails, corrupts int
	for seed := int64(0); seed < 60; seed++ {
		p := NewPlan(seed, 1000)
		if p.TruncateAfter >= 0 {
			truncs++
		}
		if p.FailAfter >= 0 {
			fails++
		}
		if len(p.Corrupt) > 0 {
			corrupts++
		}
		if !p.ShortReads {
			t.Fatalf("seed %d: short reads must always be on", seed)
		}
	}
	if truncs == 0 || fails == 0 || corrupts != 60 {
		t.Errorf("over 60 seeds: %d truncations, %d failures, %d corruptions — want all kinds represented",
			truncs, fails, corrupts)
	}
}

func TestFSFailOpens(t *testing.T) {
	base := fstest.MapFS{"a.pdb": &fstest.MapFile{Data: []byte("content")}}
	fsys := NewFS(base, FailOpens(2))

	for attempt := 0; attempt < 2; attempt++ {
		_, err := fsys.Open("a.pdb")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("open %d: err = %v, want injected", attempt, err)
		}
		var pe *fs.PathError
		if !errors.As(err, &pe) || pe.Path != "a.pdb" {
			t.Errorf("open %d: err = %v, want a *fs.PathError naming the path", attempt, err)
		}
	}
	f, err := fsys.Open("a.pdb")
	if err != nil {
		t.Fatalf("third open: %v, want success", err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "content" {
		t.Errorf("read = %q, %v; want clean content", got, err)
	}
	if n := fsys.OpenCount("a.pdb"); n != 3 {
		t.Errorf("OpenCount = %d, want 3", n)
	}
}

func TestFSTransparentWithNilPlanFor(t *testing.T) {
	base := fstest.MapFS{"x": &fstest.MapFile{Data: []byte("xyz")}}
	f, err := NewFS(base, nil).Open("x")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "xyz" {
		t.Errorf("read = %q, %v; want transparent passthrough", got, err)
	}
}

func TestCorruptBytes(t *testing.T) {
	orig := []byte(strings.Repeat("the quick brown fox ", 20))
	out, offs := CorruptBytes(orig, 99, 10)
	if len(out) != len(orig) {
		t.Fatalf("length changed: %d vs %d", len(out), len(orig))
	}
	if len(offs) == 0 {
		t.Fatal("no offsets touched")
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatalf("offsets not sorted: %v", offs)
		}
	}
	diff := map[int64]bool{}
	for i := range out {
		if out[i] != orig[i] {
			diff[int64(i)] = true
		}
	}
	for _, off := range offs {
		if !diff[off] {
			// A second XOR at the same offset may restore the byte; the
			// contract is only that offs ⊇ real diffs and masks are
			// non-zero per application, so check the reverse direction.
			continue
		}
		delete(diff, off)
	}
	if len(diff) != 0 {
		t.Errorf("bytes differ at offsets not reported: %v", diff)
	}

	// Deterministic under the same seed.
	out2, offs2 := CorruptBytes(orig, 99, 10)
	if !bytes.Equal(out, out2) {
		t.Error("same seed produced different corruption")
	}
	if len(offs) != len(offs2) {
		t.Error("same seed produced different offsets")
	}
}
