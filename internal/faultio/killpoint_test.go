package faultio_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pdt/internal/durable"
	"pdt/internal/faultio"
)

func TestCrashWriterCutsAtBudget(t *testing.T) {
	var sink bytes.Buffer
	w := faultio.NewCrashWriter(&sink, 10)
	n, err := w.Write([]byte("0123456"))
	if n != 7 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	n, err = w.Write([]byte("789abcdef"))
	if n != 3 || !errors.Is(err, faultio.ErrKilled) {
		t.Fatalf("killing write = %d, %v; want 3 bytes then ErrKilled", n, err)
	}
	if !w.Killed() {
		t.Error("Killed() = false after the kill")
	}
	if sink.String() != "0123456789" {
		t.Errorf("underlying stream = %q, want exactly the 10-byte prefix", sink.String())
	}
	// A dead process writes nothing more.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, faultio.ErrKilled) {
		t.Errorf("write after kill = %d, %v", n, err)
	}
	if sink.Len() != 10 {
		t.Errorf("stream grew after the kill: %d bytes", sink.Len())
	}
}

func TestCrashWriterNeverKillsWithNegativeBudget(t *testing.T) {
	var sink bytes.Buffer
	w := faultio.NewCrashWriter(&sink, -1)
	for i := 0; i < 100; i++ {
		if _, err := w.Write([]byte("payload")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if w.Killed() {
		t.Error("probe writer reported killed")
	}
}

// TestCrashFSProbeCountsSites: a probe run (budget < 0) consumes but
// never kills, and two identical runs consume identically — the
// determinism the kill-point sweep depends on.
func TestCrashFSProbeCountsSites(t *testing.T) {
	run := func(budget int64, dir string) (int64, error) {
		cfs := faultio.NewCrashFS(nil, budget)
		err := durable.WriteFileFS(cfs, filepath.Join(dir, "out.txt"), []byte("hello, crash"), 0o644)
		return cfs.Sites(), err
	}
	sites1, err := run(-1, t.TempDir())
	if err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	sites2, err := run(-1, t.TempDir())
	if err != nil || sites1 != sites2 {
		t.Fatalf("probe runs disagree: %d vs %d (%v)", sites1, sites2, err)
	}
	if sites1 < int64(len("hello, crash")) {
		t.Fatalf("sites = %d, want at least one per byte", sites1)
	}
}

// TestCrashFSDeadAfterKill: once the kill fires, every subsequent
// operation fails — a dead process issues no more I/O.
func TestCrashFSDeadAfterKill(t *testing.T) {
	dir := t.TempDir()
	cfs := faultio.NewCrashFS(nil, 0) // dies before its first operation
	if err := durable.WriteFileFS(cfs, filepath.Join(dir, "a"), []byte("x"), 0o644); !errors.Is(err, faultio.ErrKilled) {
		t.Fatalf("first op: %v, want ErrKilled", err)
	}
	if !cfs.Killed() {
		t.Fatal("Killed() = false")
	}
	if err := cfs.Rename("a", "b"); !errors.Is(err, faultio.ErrKilled) {
		t.Errorf("rename after death: %v", err)
	}
	if err := cfs.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, faultio.ErrKilled) {
		t.Errorf("mkdir after death: %v", err)
	}
	if _, err := cfs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, faultio.ErrKilled) {
		t.Errorf("open after death: %v", err)
	}
}

// TestKilledErrorIsNotTemporary: kill-point faults must never look
// retryable — no retry loop survives a dead process.
func TestKilledErrorIsNotTemporary(t *testing.T) {
	err := error(&faultio.KilledError{Op: "write", Site: 3})
	var te interface{ Temporary() bool }
	if errors.As(err, &te) {
		t.Error("KilledError advertises Temporary(); kill-points must not be retryable")
	}
	if !errors.Is(err, faultio.ErrKilled) {
		t.Error("KilledError does not match ErrKilled")
	}
	if errors.Is(err, faultio.ErrInjected) {
		t.Error("KilledError matches ErrInjected; the sentinels must stay distinct")
	}
}

// TestWriteFileNeverTornAtAnyKillPoint is the core never-torn
// property at the primitive level: kill durable.WriteFile at every
// write site and check the target always holds nothing, the old
// bytes, or the complete new bytes.
func TestWriteFileNeverTornAtAnyKillPoint(t *testing.T) {
	const oldContent = "the old complete content"
	const newContent = "the new complete content, somewhat longer than before"

	probe := faultio.NewCrashFS(nil, -1)
	dir := t.TempDir()
	if err := durable.WriteFileFS(probe, filepath.Join(dir, "probe.txt"), []byte(newContent), 0o644); err != nil {
		t.Fatalf("probe: %v", err)
	}
	sites := probe.Sites()

	for _, preExisting := range []bool{false, true} {
		for k := int64(0); k <= sites; k++ {
			dir := t.TempDir()
			target := filepath.Join(dir, "out.txt")
			if preExisting {
				if err := os.WriteFile(target, []byte(oldContent), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			cfs := faultio.NewCrashFS(nil, k)
			err := durable.WriteFileFS(cfs, target, []byte(newContent), 0o644)
			if k < sites && !errors.Is(err, faultio.ErrKilled) {
				t.Fatalf("k=%d pre=%v: err = %v, want ErrKilled", k, preExisting, err)
			}
			got, rerr := os.ReadFile(target)
			switch {
			case rerr != nil && os.IsNotExist(rerr) && !preExisting:
				// absent: fine for a fresh target
			case rerr != nil:
				t.Fatalf("k=%d pre=%v: reading target: %v", k, preExisting, rerr)
			case string(got) == oldContent && preExisting:
				// old bytes intact: fine
			case string(got) == newContent:
				// complete new bytes: fine
			default:
				t.Fatalf("k=%d pre=%v: TORN OUTPUT %q", k, preExisting, got)
			}
		}
	}
}
