package faultio

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"

	"pdt/internal/durable"
)

// ErrKilled is the sentinel every kill-point fault matches via
// errors.Is. Unlike ErrInjected faults it does NOT report
// Temporary(): it simulates the process dying mid-write (kill -9,
// power cut), which no retry loop survives.
var ErrKilled = errors.New("faultio: killed at write site")

// KilledError is the concrete error a crash site delivers. Site is
// the global write-site index at which the process "died".
type KilledError struct {
	Op   string // the operation that was cut: "write", "sync", "rename", ...
	Site int64
}

func (e *KilledError) Error() string {
	return fmt.Sprintf("faultio: killed during %s at write site %d", e.Op, e.Site)
}

// Is matches the ErrKilled sentinel.
func (e *KilledError) Is(target error) bool { return target == ErrKilled }

// CrashWriter wraps w and cuts the stream after budget bytes: the
// prefix up to the budget is written through, then every Write fails
// with a KilledError — the shape of a torn in-place write. budget < 0
// never kills.
type CrashWriter struct {
	w      io.Writer
	budget int64
	off    int64
	killed bool
}

// NewCrashWriter builds a crashing writer over w.
func NewCrashWriter(w io.Writer, budget int64) *CrashWriter {
	return &CrashWriter{w: w, budget: budget}
}

// Killed reports whether the kill point has fired.
func (c *CrashWriter) Killed() bool { return c.killed }

func (c *CrashWriter) Write(p []byte) (int, error) {
	if c.killed {
		return 0, &KilledError{Op: "write", Site: c.off}
	}
	allowed := int64(len(p))
	if c.budget >= 0 {
		if rem := c.budget - c.off; rem < allowed {
			allowed = rem
			c.killed = true
		}
	}
	n, err := c.w.Write(p[:allowed])
	c.off += int64(n)
	if err != nil {
		return n, err
	}
	if c.killed {
		return n, &KilledError{Op: "write", Site: c.off}
	}
	return n, nil
}

// CrashFS implements the durable.FS write seam over a base filesystem
// and deterministically cuts the process's write stream at a chosen
// site. Every mutating operation — open, sync, close, rename, remove,
// mkdir — consumes one site; every byte written consumes one more, so
// a kill can land inside a write and leave a genuinely torn staging
// file. Once the kill fires, every subsequent operation fails too (a
// dead process issues no more I/O), which is what lets a property
// test iterate the budget over [0, Sites()) and assert the final path
// is never torn at any crash site.
type CrashFS struct {
	base durable.FS

	mu     sync.Mutex
	budget int64 // sites allowed before the kill; < 0 = never kill
	used   int64
	killed bool
}

// NewCrashFS builds a crashing filesystem over base (nil = the real
// filesystem) that kills at write site budget. budget < 0 disables
// the kill — a probe run that only counts sites.
func NewCrashFS(base durable.FS, budget int64) *CrashFS {
	if base == nil {
		base = durable.OS
	}
	return &CrashFS{base: base, budget: budget}
}

// Sites reports how many write sites the run has consumed so far; a
// probe run's final value bounds the kill points worth testing.
func (c *CrashFS) Sites() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Killed reports whether the kill point has fired.
func (c *CrashFS) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// spend consumes up to n sites, returning how many were granted and
// whether the process is (now) dead. Once dead, nothing is granted.
func (c *CrashFS) spend(n int64) (granted int64, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return 0, true
	}
	if c.budget < 0 {
		c.used += n
		return n, false
	}
	if rem := c.budget - c.used; rem < n {
		c.used = c.budget
		c.killed = true
		return rem, true
	}
	c.used += n
	return n, false
}

// op spends one site for a whole-operation crash point.
func (c *CrashFS) op(name string) error {
	if _, dead := c.spend(1); dead {
		return &KilledError{Op: name, Site: c.Sites()}
	}
	return nil
}

// OpenFile implements durable.FS.
func (c *CrashFS) OpenFile(name string, flag int, perm fs.FileMode) (durable.File, error) {
	if err := c.op("open"); err != nil {
		return nil, err
	}
	f, err := c.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, f: f}, nil
}

// Rename implements durable.FS.
func (c *CrashFS) Rename(oldpath, newpath string) error {
	if err := c.op("rename"); err != nil {
		return err
	}
	return c.base.Rename(oldpath, newpath)
}

// Remove implements durable.FS.
func (c *CrashFS) Remove(name string) error {
	if err := c.op("remove"); err != nil {
		return err
	}
	return c.base.Remove(name)
}

// MkdirAll implements durable.FS.
func (c *CrashFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := c.op("mkdir"); err != nil {
		return err
	}
	return c.base.MkdirAll(path, perm)
}

// crashFile charges one site per byte written and one per sync/close,
// writing through the granted prefix so a mid-write kill leaves a
// torn staging file behind.
type crashFile struct {
	fs *CrashFS
	f  durable.File
}

func (c *crashFile) Write(p []byte) (int, error) {
	granted, dead := c.fs.spend(int64(len(p)))
	n, err := c.f.Write(p[:granted])
	if err != nil {
		return n, err
	}
	if dead {
		return n, &KilledError{Op: "write", Site: c.fs.Sites()}
	}
	return n, nil
}

func (c *crashFile) Sync() error {
	if err := c.fs.op("sync"); err != nil {
		return err
	}
	return c.f.Sync()
}

func (c *crashFile) Close() error {
	// Closing is not a crash site of its own (a dead process's
	// descriptors close anyway), but a dead filesystem still closes
	// the real file so probe runs don't leak descriptors.
	return c.f.Close()
}
