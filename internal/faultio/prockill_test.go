//go:build unix

package faultio_test

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"pdt/internal/faultio"
)

// crashHelperEnv re-execs the test binary straight into a CrashPoint
// call, so the kill directives are proven against a real process.
const crashHelperEnv = "PDT_TEST_CRASH_HELPER"

func TestMain(m *testing.M) {
	if stage := os.Getenv(crashHelperEnv); stage != "" {
		faultio.CrashPoint(stage)
		fmt.Println("survived")
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCrashPointKillsOnMatchingStage: a kill@stage directive must end
// the process with SIGKILL at exactly that stage and no other.
func TestCrashPointKillsOnMatchingStage(t *testing.T) {
	run := func(directive, stage string) (string, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			crashHelperEnv+"="+stage,
			faultio.ProcKillEnv+"="+directive)
		out, err := cmd.Output()
		return strings.TrimSpace(string(out)), err
	}

	out, err := run("kill@merge", "merge")
	if err == nil || out == "survived" {
		t.Fatalf("kill@merge at stage merge: out=%q err=%v, want SIGKILL death", out, err)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != -1 {
		t.Fatalf("expected signal death, got %v", err)
	}

	out, err = run("kill@merge", "lease")
	if err != nil || out != "survived" {
		t.Fatalf("kill@merge at stage lease: out=%q err=%v, want survival", out, err)
	}
	out, err = run("", "merge")
	if err != nil || out != "survived" {
		t.Fatalf("no directive: out=%q err=%v, want survival", out, err)
	}
}

// TestProcKillFSUnarmed: without a site directive there is no wrapper,
// so the hot path costs nothing.
func TestProcKillFSUnarmed(t *testing.T) {
	t.Setenv(faultio.ProcKillEnv, "")
	if fs := faultio.ProcKillFS(nil); fs != nil {
		t.Fatal("ProcKillFS armed with empty directive")
	}
	t.Setenv(faultio.ProcKillEnv, "kill@merge")
	if fs := faultio.ProcKillFS(nil); fs != nil {
		t.Fatal("ProcKillFS armed by a stage directive")
	}
	t.Setenv(faultio.ProcKillEnv, "site@12")
	if fs := faultio.ProcKillFS(nil); fs == nil {
		t.Fatal("ProcKillFS not armed by site@12")
	}
}

// TestKillScheduleDeterministicAndConverging: same seed, same
// directives regardless of draw order; attempt 0 always kills; beyond
// maxKillAttempts always clean.
func TestKillScheduleDeterministicAndConverging(t *testing.T) {
	stages := []string{"start", "lease", "merge", "result"}
	a := faultio.NewKillSchedule(42, stages, 2, 500)
	b := faultio.NewKillSchedule(42, stages, 2, 500)
	for shard := 0; shard < 16; shard++ {
		for attempt := 0; attempt < 5; attempt++ {
			da, db := a.Directive(shard, attempt), b.Directive(shard, attempt)
			if da != db {
				t.Fatalf("shard %d attempt %d: %q != %q", shard, attempt, da, db)
			}
			if attempt == 0 && da == "" {
				t.Fatalf("shard %d attempt 0: no kill directive; every worker must die once", shard)
			}
			if attempt >= 2 && da != "" {
				t.Fatalf("shard %d attempt %d: directive %q past maxKillAttempts", shard, attempt, da)
			}
			if da != "" && !strings.HasPrefix(da, "kill@") && !strings.HasPrefix(da, "stop@") && !strings.HasPrefix(da, "site@") {
				t.Fatalf("malformed directive %q", da)
			}
		}
	}
	// Different seeds must eventually disagree (sanity, not certainty:
	// 16 shards x 2 attempts of identical draws is astronomically
	// unlikely).
	c := faultio.NewKillSchedule(43, stages, 2, 500)
	same := true
	for shard := 0; shard < 16 && same; shard++ {
		for attempt := 0; attempt < 2; attempt++ {
			if a.Directive(shard, attempt) != c.Directive(shard, attempt) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}
