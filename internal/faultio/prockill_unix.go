//go:build unix

package faultio

import (
	"os"
	"syscall"
)

// selfKill dies the way kill -9 does: no deferred functions, no
// flushes, descriptors and flocks released by the kernel.
func selfKill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL is not deliverable to self synchronously in every
	// scheduler state; block until it lands rather than return and
	// keep executing past the "crash".
	select {}
}

// selfStop wedges the process: alive, locks held, heartbeat frozen —
// the failure mode only a deadline-based supervisor catches.
func selfStop() {
	syscall.Kill(os.Getpid(), syscall.SIGSTOP)
}
