package faultio

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"pdt/internal/durable"
)

// ProcKillEnv is the environment variable that arms real process-level
// chaos in a cooperating process (a shard-merge worker). Unlike the
// CrashFS error-injection seam, these directives end the process the
// way the field does — SIGKILL mid-instruction, SIGSTOP wedging it
// alive — so supervision, lease takeover, and journal resume are
// exercised across true process boundaries. One directive:
//
//	kill@<stage>  SIGKILL the process when CrashPoint(stage) runs
//	stop@<stage>  SIGSTOP it there instead: alive, flock held,
//	              heartbeat frozen (the wedge a supervisor must detect)
//	site@<N>      SIGKILL at the Nth durable write site (ProcKillFS),
//	              tearing whatever write was in flight
//
// An unset or non-matching directive costs one Getenv per crash point.
const ProcKillEnv = "PDT_PROCKILL"

// CrashPoint executes the armed directive when stage matches it: the
// cooperating process names its supervision stages ("start", "lease",
// "merge", "result", ...) and a chaos schedule picks which one to die
// at. A no-op in normal runs.
func CrashPoint(stage string) {
	mode, arg, ok := strings.Cut(os.Getenv(ProcKillEnv), "@")
	if !ok || arg != stage {
		return
	}
	switch mode {
	case "kill":
		selfKill()
	case "stop":
		selfStop()
	}
}

// ProcKillFS returns a durable.FS over base (nil = the real
// filesystem) that SIGKILLs the process at the write site armed by a
// site@N directive, or nil when no site kill is armed. Site accounting
// matches CrashFS — one site per mutating operation, one per byte
// written — so a kill can land inside a write and leave a genuinely
// torn staging file for the survivor to cope with.
func ProcKillFS(base durable.FS) durable.FS {
	mode, arg, ok := strings.Cut(os.Getenv(ProcKillEnv), "@")
	if !ok || mode != "site" {
		return nil
	}
	site, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || site < 0 {
		return nil
	}
	if base == nil {
		base = durable.OS
	}
	return &killFS{base: base, budget: site}
}

// killFS is the self-killing filesystem behind ProcKillFS.
type killFS struct {
	base durable.FS

	mu     sync.Mutex
	budget int64
	used   int64
}

// spend consumes up to n sites; when the budget runs out it reports
// how many bytes may still be written before the process must die.
func (k *killFS) spend(n int64) (granted int64, die bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if rem := k.budget - k.used; rem < n {
		k.used = k.budget
		return rem, true
	}
	k.used += n
	return n, false
}

// op charges one site for a whole-operation kill point, dying before
// the operation runs.
func (k *killFS) op() {
	if _, die := k.spend(1); die {
		selfKill()
	}
}

func (k *killFS) OpenFile(name string, flag int, perm fs.FileMode) (durable.File, error) {
	k.op()
	f, err := k.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &killFile{fs: k, f: f}, nil
}

func (k *killFS) Rename(oldpath, newpath string) error {
	k.op()
	return k.base.Rename(oldpath, newpath)
}

func (k *killFS) Remove(name string) error {
	k.op()
	return k.base.Remove(name)
}

func (k *killFS) MkdirAll(path string, perm fs.FileMode) error {
	k.op()
	return k.base.MkdirAll(path, perm)
}

// killFile tears writes for real: the granted prefix reaches the disk,
// then the process dies mid-write.
type killFile struct {
	fs *killFS
	f  durable.File
}

func (k *killFile) Write(p []byte) (int, error) {
	granted, die := k.fs.spend(int64(len(p)))
	n, err := k.f.Write(p[:granted])
	if die {
		k.f.Sync() // make the torn prefix durable before dying
		selfKill()
	}
	return n, err
}

func (k *killFile) Sync() error {
	k.fs.op()
	return k.f.Sync()
}

func (k *killFile) Close() error { return k.f.Close() }

// KillSchedule derives a deterministic chaos directive for every
// (shard, attempt) pair from one seed — deterministic per pair rather
// than per draw order, so concurrent supervision slots scheduling
// attempts in any interleaving reproduce the same kills. Attempt 0 of
// every shard always dies (each worker is killed at least once);
// later attempts below maxKillAttempts die with probability 1/2; at
// and beyond maxKillAttempts the directive is always empty, so a
// bounded-retry supervisor is guaranteed to converge.
type KillSchedule struct {
	seed            int64
	stages          []string
	maxKillAttempts int
	maxSite         int64
}

// NewKillSchedule builds a schedule over the given crash stages.
// maxSite bounds site@N draws (the write-site kill offset).
func NewKillSchedule(seed int64, stages []string, maxKillAttempts int, maxSite int64) *KillSchedule {
	if maxSite < 1 {
		maxSite = 1
	}
	return &KillSchedule{seed: seed, stages: stages, maxKillAttempts: maxKillAttempts, maxSite: maxSite}
}

// Directive returns the PDT_PROCKILL value for one attempt, or "" for
// a clean run.
func (k *KillSchedule) Directive(shard, attempt int) string {
	if attempt >= k.maxKillAttempts {
		return ""
	}
	rng := rand.New(rand.NewSource(k.seed ^ int64(shard)*1_000_003 ^ int64(attempt)*7_919))
	if attempt > 0 && rng.Intn(2) == 0 {
		return ""
	}
	switch rng.Intn(4) {
	case 0:
		return "kill@" + k.stages[rng.Intn(len(k.stages))]
	case 1:
		return "stop@" + k.stages[rng.Intn(len(k.stages))]
	default:
		return fmt.Sprintf("site@%d", rng.Int63n(k.maxSite))
	}
}

// Env returns the directive as environment entries ready to append to
// a worker's environment — empty for a clean attempt.
func (k *KillSchedule) Env(shard, attempt int) []string {
	if d := k.Directive(shard, attempt); d != "" {
		return []string{ProcKillEnv + "=" + d}
	}
	return nil
}
