package script

// Node positions are (line, col) pairs; slang diagnostics are simple.

type sStmt interface{ sstmt() }

type sExprStmt struct{ e sExpr }

type sAssign struct {
	target sExpr // sName or sIndex
	value  sExpr
}

type sDef struct {
	name   string
	params []string
	body   []sStmt
	line   int
}

type sIf struct {
	cond sExpr
	then []sStmt
	els  []sStmt
}

type sWhile struct {
	cond sExpr
	body []sStmt
}

type sFor struct {
	init sStmt
	cond sExpr
	post sStmt
	body []sStmt
}

type sReturn struct{ e sExpr }

type sBreak struct{}

type sContinue struct{}

func (*sExprStmt) sstmt() {}
func (*sAssign) sstmt()   {}
func (*sDef) sstmt()      {}
func (*sIf) sstmt()       {}
func (*sWhile) sstmt()    {}
func (*sFor) sstmt()      {}
func (*sReturn) sstmt()   {}
func (*sBreak) sstmt()    {}
func (*sContinue) sstmt() {}

type sExpr interface{ sexpr() }

type sNum struct{ v float64 }

type sStrLit struct{ v string }

type sBool struct{ v bool }

type sNil struct{}

type sName struct {
	name string
	line int
	col  int
}

type sList struct{ elems []sExpr }

type sIndex struct {
	base  sExpr
	index sExpr
}

type sCall struct {
	fn   sExpr
	args []sExpr
	line int
	col  int
}

type sMethod struct {
	base sExpr
	name string
	args []sExpr
	line int
	col  int
}

type sUnary struct {
	op string
	e  sExpr
}

type sBinary struct {
	op   string
	l, r sExpr
	line int
	col  int
}

func (*sNum) sexpr()    {}
func (*sStrLit) sexpr() {}
func (*sBool) sexpr()   {}
func (*sNil) sexpr()    {}
func (*sName) sexpr()   {}
func (*sList) sexpr()   {}
func (*sIndex) sexpr()  {}
func (*sCall) sexpr()   {}
func (*sMethod) sexpr() {}
func (*sUnary) sexpr()  {}
func (*sBinary) sexpr() {}
