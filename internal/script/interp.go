package script

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Value is a slang runtime value: Num, Str, Bool, Nil, *List, *Func,
// Foreign (a handle to a bridged C++ object), or Builtin.
type Value interface{ svalue() }

// Num is a slang number (all numbers are float64, Perl-style).
type Num float64

// Str is a slang string.
type Str string

// Bool is a slang boolean.
type Bool bool

// Nil is the absent value.
type Nil struct{}

// List is a mutable slang list.
type List struct{ Elems []Value }

// Foreign is a handle to an object owned by the bridge (a C++ object
// living in the PDT interpreter).
type Foreign struct {
	Handle int
	// Class is the C++ class name, for diagnostics and method routing.
	Class string
}

// Func is a user-defined slang function.
type Func struct {
	Name   string
	Params []string
	Body   []sStmt
	env    *Env
}

// Builtin is a native function.
type Builtin struct {
	Name string
	Fn   func(it *Interp, args []Value) (Value, error)
}

func (Num) svalue()      {}
func (Str) svalue()      {}
func (Bool) svalue()     {}
func (Nil) svalue()      {}
func (*List) svalue()    {}
func (Foreign) svalue()  {}
func (*Func) svalue()    {}
func (*Builtin) svalue() {}

// Format renders a value the way print does.
func Format(v Value) string {
	switch v := v.(type) {
	case Num:
		f := float64(v)
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			return fmt.Sprintf("%d", int64(f))
		}
		return fmt.Sprintf("%g", f)
	case Str:
		return string(v)
	case Bool:
		if v {
			return "true"
		}
		return "false"
	case Nil:
		return "nil"
	case *List:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = Format(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case Foreign:
		return fmt.Sprintf("<%s#%d>", v.Class, v.Handle)
	case *Func:
		return "<def " + v.Name + ">"
	case *Builtin:
		return "<builtin " + v.Name + ">"
	default:
		return "<?>"
	}
}

// Env is a lexical environment.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns a child environment.
func NewEnv(parent *Env) *Env { return &Env{vars: map[string]Value{}, parent: parent} }

// Get looks a name up through the chain.
func (e *Env) Get(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set assigns to an existing binding, or creates one in this scope.
func (e *Env) Set(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// Define creates a binding in this scope.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// MethodDispatcher routes obj.method(args) calls on foreign objects —
// the SILOON bridge implements this.
type MethodDispatcher interface {
	CallMethod(obj Foreign, method string, args []Value) (Value, error)
}

// Interp executes slang programs.
type Interp struct {
	Globals *Env
	Out     io.Writer
	// Dispatcher handles foreign method calls (may be nil).
	Dispatcher MethodDispatcher

	steps    int
	maxSteps int
}

// NewInterp returns an interpreter with the standard builtins bound.
func NewInterp(out io.Writer) *Interp {
	if out == nil {
		out = io.Discard
	}
	it := &Interp{Globals: NewEnv(nil), Out: out, maxSteps: 50_000_000}
	it.installBuiltins()
	return it
}

// RegisterBuiltin binds a native function.
func (it *Interp) RegisterBuiltin(name string, fn func(it *Interp, args []Value) (Value, error)) {
	it.Globals.Define(name, &Builtin{Name: name, Fn: fn})
}

func (it *Interp) installBuiltins() {
	it.RegisterBuiltin("print", func(it *Interp, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Format(a)
		}
		fmt.Fprintln(it.Out, strings.Join(parts, " "))
		return Nil{}, nil
	})
	it.RegisterBuiltin("len", func(it *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("len expects one argument")
		}
		switch v := args[0].(type) {
		case Str:
			return Num(len(v)), nil
		case *List:
			return Num(len(v.Elems)), nil
		default:
			return nil, fmt.Errorf("len of %s", Format(v))
		}
	})
	it.RegisterBuiltin("push", func(it *Interp, args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("push expects (list, value)")
		}
		l, ok := args[0].(*List)
		if !ok {
			return nil, fmt.Errorf("push on non-list")
		}
		l.Elems = append(l.Elems, args[1:]...)
		return Num(len(l.Elems)), nil
	})
	it.RegisterBuiltin("str", func(it *Interp, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("str expects one argument")
		}
		return Str(Format(args[0])), nil
	})
	it.RegisterBuiltin("abs", func(it *Interp, args []Value) (Value, error) {
		n, err := wantNum(args, 0, "abs")
		if err != nil {
			return nil, err
		}
		return Num(math.Abs(n)), nil
	})
	it.RegisterBuiltin("sqrt", func(it *Interp, args []Value) (Value, error) {
		n, err := wantNum(args, 0, "sqrt")
		if err != nil {
			return nil, err
		}
		return Num(math.Sqrt(n)), nil
	})
}

func wantNum(args []Value, i int, ctx string) (float64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("%s: missing argument %d", ctx, i)
	}
	n, ok := args[i].(Num)
	if !ok {
		return 0, fmt.Errorf("%s: argument %d is not a number", ctx, i)
	}
	return float64(n), nil
}

// Run parses and executes a program in the global environment.
func (it *Interp) Run(src string) error {
	prog, errs := parseProgram(src)
	if len(errs) > 0 {
		return fmt.Errorf("slang parse: %v", errs[0])
	}
	_, err := it.execStmts(prog, it.Globals)
	return err
}

type sctl struct {
	kind int // 1 return, 2 break, 3 continue
	val  Value
}

func (it *Interp) execStmts(stmts []sStmt, env *Env) (*sctl, error) {
	for _, st := range stmts {
		c, err := it.execStmt(st, env)
		if err != nil || c != nil {
			return c, err
		}
	}
	return nil, nil
}

func (it *Interp) execStmt(st sStmt, env *Env) (*sctl, error) {
	it.steps++
	if it.steps > it.maxSteps {
		return nil, fmt.Errorf("slang: step budget exceeded")
	}
	switch st := st.(type) {
	case *sExprStmt:
		_, err := it.eval(st.e, env)
		return nil, err
	case *sAssign:
		v, err := it.eval(st.value, env)
		if err != nil {
			return nil, err
		}
		switch target := st.target.(type) {
		case *sName:
			env.Set(target.name, v)
		case *sIndex:
			base, err := it.eval(target.base, env)
			if err != nil {
				return nil, err
			}
			idx, err := it.eval(target.index, env)
			if err != nil {
				return nil, err
			}
			l, ok := base.(*List)
			if !ok {
				return nil, fmt.Errorf("index assignment on non-list")
			}
			i, ok := idx.(Num)
			if !ok || int(i) < 0 || int(i) >= len(l.Elems) {
				return nil, fmt.Errorf("list index out of range")
			}
			l.Elems[int(i)] = v
		}
		return nil, nil
	case *sDef:
		env.Define(st.name, &Func{Name: st.name, Params: st.params, Body: st.body, env: env})
		return nil, nil
	case *sIf:
		cond, err := it.eval(st.cond, env)
		if err != nil {
			return nil, err
		}
		if truthyS(cond) {
			return it.execStmts(st.then, NewEnv(env))
		}
		return it.execStmts(st.els, NewEnv(env))
	case *sWhile:
		for {
			cond, err := it.eval(st.cond, env)
			if err != nil {
				return nil, err
			}
			if !truthyS(cond) {
				return nil, nil
			}
			c, err := it.execStmts(st.body, NewEnv(env))
			if err != nil {
				return nil, err
			}
			if c != nil {
				if c.kind == 2 {
					return nil, nil
				}
				if c.kind == 1 {
					return c, nil
				}
			}
		}
	case *sFor:
		loopEnv := NewEnv(env)
		if st.init != nil {
			if c, err := it.execStmt(st.init, loopEnv); err != nil || c != nil {
				return c, err
			}
		}
		for {
			if st.cond != nil {
				cond, err := it.eval(st.cond, loopEnv)
				if err != nil {
					return nil, err
				}
				if !truthyS(cond) {
					return nil, nil
				}
			}
			c, err := it.execStmts(st.body, NewEnv(loopEnv))
			if err != nil {
				return nil, err
			}
			if c != nil {
				if c.kind == 2 {
					return nil, nil
				}
				if c.kind == 1 {
					return c, nil
				}
			}
			if st.post != nil {
				if c, err := it.execStmt(st.post, loopEnv); err != nil || c != nil {
					return c, err
				}
			}
		}
	case *sReturn:
		var v Value = Nil{}
		if st.e != nil {
			ev, err := it.eval(st.e, env)
			if err != nil {
				return nil, err
			}
			v = ev
		}
		return &sctl{kind: 1, val: v}, nil
	case *sBreak:
		return &sctl{kind: 2}, nil
	case *sContinue:
		return &sctl{kind: 3}, nil
	default:
		return nil, fmt.Errorf("slang: unknown statement %T", st)
	}
}

func truthyS(v Value) bool {
	switch v := v.(type) {
	case Bool:
		return bool(v)
	case Num:
		return v != 0
	case Str:
		return v != ""
	case Nil:
		return false
	case *List:
		return len(v.Elems) > 0
	default:
		return true
	}
}

func (it *Interp) eval(e sExpr, env *Env) (Value, error) {
	it.steps++
	if it.steps > it.maxSteps {
		return nil, fmt.Errorf("slang: step budget exceeded")
	}
	switch e := e.(type) {
	case *sNum:
		return Num(e.v), nil
	case *sStrLit:
		return Str(e.v), nil
	case *sBool:
		return Bool(e.v), nil
	case *sNil:
		return Nil{}, nil
	case *sName:
		if v, ok := env.Get(e.name); ok {
			return v, nil
		}
		return nil, fmt.Errorf("%d:%d: undefined name %q", e.line, e.col, e.name)
	case *sList:
		l := &List{}
		for _, el := range e.elems {
			v, err := it.eval(el, env)
			if err != nil {
				return nil, err
			}
			l.Elems = append(l.Elems, v)
		}
		return l, nil
	case *sIndex:
		base, err := it.eval(e.base, env)
		if err != nil {
			return nil, err
		}
		idx, err := it.eval(e.index, env)
		if err != nil {
			return nil, err
		}
		i, ok := idx.(Num)
		if !ok {
			return nil, fmt.Errorf("non-numeric index")
		}
		switch b := base.(type) {
		case *List:
			if int(i) < 0 || int(i) >= len(b.Elems) {
				return nil, fmt.Errorf("list index out of range")
			}
			return b.Elems[int(i)], nil
		case Str:
			if int(i) < 0 || int(i) >= len(b) {
				return nil, fmt.Errorf("string index out of range")
			}
			return Str(b[int(i) : int(i)+1]), nil
		default:
			return nil, fmt.Errorf("index on %s", Format(base))
		}
	case *sUnary:
		v, err := it.eval(e.e, env)
		if err != nil {
			return nil, err
		}
		switch e.op {
		case "-":
			n, ok := v.(Num)
			if !ok {
				return nil, fmt.Errorf("unary - on %s", Format(v))
			}
			return Num(-n), nil
		case "!":
			return Bool(!truthyS(v)), nil
		}
		return nil, fmt.Errorf("unknown unary %q", e.op)
	case *sBinary:
		return it.evalBinary(e, env)
	case *sCall:
		fn, err := it.eval(e.fn, env)
		if err != nil {
			return nil, err
		}
		args, err := it.evalArgs(e.args, env)
		if err != nil {
			return nil, err
		}
		return it.callValue(fn, args)
	case *sMethod:
		base, err := it.eval(e.base, env)
		if err != nil {
			return nil, err
		}
		args, err := it.evalArgs(e.args, env)
		if err != nil {
			return nil, err
		}
		obj, ok := base.(Foreign)
		if !ok {
			return nil, fmt.Errorf("%d:%d: method call on non-object %s", e.line, e.col, Format(base))
		}
		if it.Dispatcher == nil {
			return nil, fmt.Errorf("no bridge attached for method %q", e.name)
		}
		return it.Dispatcher.CallMethod(obj, e.name, args)
	default:
		return nil, fmt.Errorf("slang: unknown expression %T", e)
	}
}

func (it *Interp) evalArgs(exprs []sExpr, env *Env) ([]Value, error) {
	var out []Value
	for _, a := range exprs {
		v, err := it.eval(a, env)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// callValue invokes a slang function or builtin.
func (it *Interp) callValue(fn Value, args []Value) (Value, error) {
	switch fn := fn.(type) {
	case *Builtin:
		return fn.Fn(it, args)
	case *Func:
		env := NewEnv(fn.env)
		for i, p := range fn.Params {
			if i < len(args) {
				env.Define(p, args[i])
			} else {
				env.Define(p, Nil{})
			}
		}
		c, err := it.execStmts(fn.Body, env)
		if err != nil {
			return nil, err
		}
		if c != nil && c.kind == 1 {
			return c.val, nil
		}
		return Nil{}, nil
	default:
		return nil, fmt.Errorf("call of non-function %s", Format(fn))
	}
}

func (it *Interp) evalBinary(e *sBinary, env *Env) (Value, error) {
	if e.op == "&&" {
		l, err := it.eval(e.l, env)
		if err != nil {
			return nil, err
		}
		if !truthyS(l) {
			return Bool(false), nil
		}
		r, err := it.eval(e.r, env)
		if err != nil {
			return nil, err
		}
		return Bool(truthyS(r)), nil
	}
	if e.op == "||" {
		l, err := it.eval(e.l, env)
		if err != nil {
			return nil, err
		}
		if truthyS(l) {
			return Bool(true), nil
		}
		r, err := it.eval(e.r, env)
		if err != nil {
			return nil, err
		}
		return Bool(truthyS(r)), nil
	}
	l, err := it.eval(e.l, env)
	if err != nil {
		return nil, err
	}
	r, err := it.eval(e.r, env)
	if err != nil {
		return nil, err
	}
	// String concatenation and comparison.
	if ls, ok := l.(Str); ok {
		switch e.op {
		case "+":
			return Str(string(ls) + Format(r)), nil
		case "==":
			rs, ok := r.(Str)
			return Bool(ok && ls == rs), nil
		case "!=":
			rs, ok := r.(Str)
			return Bool(!ok || ls != rs), nil
		case "<", ">", "<=", ">=":
			rs, ok := r.(Str)
			if !ok {
				return nil, fmt.Errorf("comparison of string and %s", Format(r))
			}
			switch e.op {
			case "<":
				return Bool(ls < rs), nil
			case ">":
				return Bool(ls > rs), nil
			case "<=":
				return Bool(ls <= rs), nil
			default:
				return Bool(ls >= rs), nil
			}
		}
	}
	if e.op == "==" || e.op == "!=" {
		eq := valueEq(l, r)
		if e.op == "==" {
			return Bool(eq), nil
		}
		return Bool(!eq), nil
	}
	ln, lok := l.(Num)
	rn, rok := r.(Num)
	if !lok || !rok {
		return nil, fmt.Errorf("%d:%d: operator %q needs numbers, got %s and %s",
			e.line, e.col, e.op, Format(l), Format(r))
	}
	a, b := float64(ln), float64(rn)
	switch e.op {
	case "+":
		return Num(a + b), nil
	case "-":
		return Num(a - b), nil
	case "*":
		return Num(a * b), nil
	case "/":
		if b == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return Num(a / b), nil
	case "%":
		if b == 0 {
			return nil, fmt.Errorf("modulo by zero")
		}
		return Num(math.Mod(a, b)), nil
	case "<":
		return Bool(a < b), nil
	case ">":
		return Bool(a > b), nil
	case "<=":
		return Bool(a <= b), nil
	case ">=":
		return Bool(a >= b), nil
	default:
		return nil, fmt.Errorf("unknown operator %q", e.op)
	}
}

func valueEq(l, r Value) bool {
	switch l := l.(type) {
	case Num:
		rn, ok := r.(Num)
		return ok && l == rn
	case Str:
		rs, ok := r.(Str)
		return ok && l == rs
	case Bool:
		rb, ok := r.(Bool)
		return ok && l == rb
	case Nil:
		_, ok := r.(Nil)
		return ok
	case Foreign:
		rf, ok := r.(Foreign)
		return ok && l.Handle == rf.Handle
	default:
		return false
	}
}

// CallFunction invokes a named global function (used by the bridge and
// by embedding hosts).
func (it *Interp) CallFunction(name string, args []Value) (Value, error) {
	fn, ok := it.Globals.Get(name)
	if !ok {
		return nil, fmt.Errorf("undefined function %q", name)
	}
	return it.callValue(fn, args)
}
