package script

import (
	"strings"
	"testing"
)

func runScript(t *testing.T, src string) string {
	t.Helper()
	var sb strings.Builder
	it := NewInterp(&sb)
	if err := it.Run(src); err != nil {
		t.Fatalf("slang: %v", err)
	}
	return sb.String()
}

func TestArithmeticAndPrint(t *testing.T) {
	out := runScript(t, `
x = 2 + 3 * 4;
y = (2 + 3) * 4;
print(x, y, x < y, x == 14);
`)
	if out != "14 20 true true\n" {
		t.Errorf("out = %q", out)
	}
}

func TestStringsAndConcat(t *testing.T) {
	out := runScript(t, `
s = "hello" + " " + "world";
print(s, len(s), s[0]);
`)
	if out != "hello world 11 h\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := runScript(t, `
def fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
print(fib(10));
`)
	if out != "55\n" {
		t.Errorf("out = %q", out)
	}
}

func TestWhileForBreakContinue(t *testing.T) {
	out := runScript(t, `
sum = 0;
i = 0;
while (true) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    sum = sum + i;   # 1+3+5+7+9
}
total = 0;
for (j = 0; j < 5; j = j + 1) { total = total + j; }
print(sum, total);
`)
	if out != "25 10\n" {
		t.Errorf("out = %q", out)
	}
}

func TestListsAndBuiltins(t *testing.T) {
	out := runScript(t, `
l = [1, 2, 3];
push(l, 10);
l[0] = 99;
print(l, len(l), l[3]);
print(abs(0-5), sqrt(16));
`)
	if out != "[99, 2, 3, 10] 4 10\n5 4\n" {
		t.Errorf("out = %q", out)
	}
}

func TestClosuresAndScope(t *testing.T) {
	out := runScript(t, `
x = 1;
def bump() { x = x + 1; return x; }
bump();
bump();
print(x);
`)
	if out != "3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestLogicalOperators(t *testing.T) {
	out := runScript(t, `
print(true && false, true || false, not true, 1 and 2, 0 or 0);
`)
	if out != "false true false true false\n" {
		t.Errorf("out = %q", out)
	}
}

func TestElseIfChain(t *testing.T) {
	out := runScript(t, `
def grade(x) {
    if (x > 90) { return "A"; }
    else if (x > 80) { return "B"; }
    else { return "C"; }
}
print(grade(95), grade(85), grade(50));
`)
	if out != "A B C\n" {
		t.Errorf("out = %q", out)
	}
}

func TestComments(t *testing.T) {
	out := runScript(t, `
# full line comment
x = 5; # trailing comment
print(x);
`)
	if out != "5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	it := NewInterp(nil)
	if err := it.Run(`x = 1 / 0;`); err == nil {
		t.Error("expected division-by-zero error")
	}
	it2 := NewInterp(nil)
	if err := it2.Run(`print(undefined_thing);`); err == nil {
		t.Error("expected undefined-name error")
	}
}

func TestParseErrors(t *testing.T) {
	it := NewInterp(nil)
	if err := it.Run(`def broken( {`); err == nil {
		t.Error("expected parse error")
	}
}

func TestForeignMethodNeedsBridge(t *testing.T) {
	it := NewInterp(nil)
	it.Globals.Define("obj", Foreign{Handle: 1, Class: "Stack<int>"})
	err := it.Run(`obj.push(3);`)
	if err == nil || !strings.Contains(err.Error(), "no bridge") {
		t.Errorf("err = %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	it := NewInterp(nil)
	it.maxSteps = 1000
	err := it.Run(`while (true) { }`)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("err = %v", err)
	}
}

func TestCallFunctionFromHost(t *testing.T) {
	it := NewInterp(nil)
	if err := it.Run(`def add(a, b) { return a + b; }`); err != nil {
		t.Fatal(err)
	}
	v, err := it.CallFunction("add", []Value{Num(2), Num(40)})
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.(Num); !ok || n != 42 {
		t.Errorf("v = %v", v)
	}
}

func TestNumberFormatting(t *testing.T) {
	out := runScript(t, `print(1.5, 2, 0.25, 1000000);`)
	if out != "1.5 2 0.25 1000000\n" {
		t.Errorf("out = %q", out)
	}
}
