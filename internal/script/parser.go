package script

import "fmt"

type sparser struct {
	toks []token
	pos  int
	errs []error
}

// parseProgram parses slang source into a statement list.
func parseProgram(src string) ([]sStmt, []error) {
	toks, lerrs := lexAll(src)
	p := &sparser{toks: toks, errs: lerrs}
	var out []sStmt
	for !p.at(tEOF, "") {
		start := p.pos
		if st := p.stmt(); st != nil {
			out = append(out, st)
		}
		if p.pos == start {
			p.errorf("unexpected token %q", p.peek().text)
			p.pos++
		}
		if len(p.errs) > 20 {
			break
		}
	}
	return out, p.errs
}

func (p *sparser) peek() token { return p.toks[p.pos] }

func (p *sparser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *sparser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *sparser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *sparser) expect(kind tokKind, text, ctx string) token {
	if p.at(kind, text) {
		return p.next()
	}
	p.errorf("expected %q in %s, found %q", text, ctx, p.peek().text)
	return p.peek()
}

func (p *sparser) errorf(format string, args ...interface{}) {
	t := p.peek()
	p.errs = append(p.errs, fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...)))
}

func (p *sparser) block() []sStmt {
	p.expect(tPunct, "{", "block")
	var out []sStmt
	for !p.at(tPunct, "}") && !p.at(tEOF, "") {
		start := p.pos
		if st := p.stmt(); st != nil {
			out = append(out, st)
		}
		if p.pos == start {
			p.errorf("unexpected token %q in block", p.peek().text)
			p.pos++
		}
	}
	p.expect(tPunct, "}", "block")
	return out
}

func (p *sparser) stmt() sStmt {
	t := p.peek()
	switch {
	case t.kind == tKeyword && t.text == "def":
		p.next()
		name := p.expect(tIdent, "", "function definition")
		p.expect(tPunct, "(", "parameter list")
		var params []string
		for !p.at(tPunct, ")") && !p.at(tEOF, "") {
			id := p.expect(tIdent, "", "parameter list")
			params = append(params, id.text)
			if !p.accept(tPunct, ",") {
				break
			}
		}
		p.expect(tPunct, ")", "parameter list")
		body := p.block()
		return &sDef{name: name.text, params: params, body: body, line: t.line}
	case t.kind == tKeyword && t.text == "if":
		return p.ifStmt()
	case t.kind == tKeyword && t.text == "while":
		p.next()
		p.expect(tPunct, "(", "while")
		cond := p.expr()
		p.expect(tPunct, ")", "while")
		return &sWhile{cond: cond, body: p.block()}
	case t.kind == tKeyword && t.text == "for":
		p.next()
		p.expect(tPunct, "(", "for")
		var init, post sStmt
		var cond sExpr
		if !p.at(tPunct, ";") {
			init = p.simpleStmt()
		}
		p.expect(tPunct, ";", "for")
		if !p.at(tPunct, ";") {
			cond = p.expr()
		}
		p.expect(tPunct, ";", "for")
		if !p.at(tPunct, ")") {
			post = p.simpleStmtNoSemi()
		}
		p.expect(tPunct, ")", "for")
		return &sFor{init: init, cond: cond, post: post, body: p.block()}
	case t.kind == tKeyword && t.text == "return":
		p.next()
		var e sExpr
		if !p.at(tPunct, ";") {
			e = p.expr()
		}
		p.expect(tPunct, ";", "return")
		return &sReturn{e: e}
	case t.kind == tKeyword && t.text == "break":
		p.next()
		p.expect(tPunct, ";", "break")
		return &sBreak{}
	case t.kind == tKeyword && t.text == "continue":
		p.next()
		p.expect(tPunct, ";", "continue")
		return &sContinue{}
	default:
		st := p.simpleStmt()
		p.expect(tPunct, ";", "statement")
		return st
	}
}

func (p *sparser) ifStmt() sStmt {
	p.next() // if
	p.expect(tPunct, "(", "if")
	cond := p.expr()
	p.expect(tPunct, ")", "if")
	then := p.block()
	var els []sStmt
	if p.accept(tKeyword, "else") {
		if p.at(tKeyword, "if") {
			els = []sStmt{p.ifStmt()}
		} else {
			els = p.block()
		}
	}
	return &sIf{cond: cond, then: then, els: els}
}

// simpleStmt parses "target = expr" or a bare expression, without the
// trailing semicolon.
func (p *sparser) simpleStmt() sStmt { return p.simpleStmtNoSemi() }

func (p *sparser) simpleStmtNoSemi() sStmt {
	e := p.expr()
	if p.accept(tPunct, "=") {
		v := p.expr()
		switch e.(type) {
		case *sName, *sIndex:
			return &sAssign{target: e, value: v}
		default:
			p.errorf("invalid assignment target")
			return &sExprStmt{e: v}
		}
	}
	return &sExprStmt{e: e}
}

var slangPrec = map[string]int{
	"||": 1, "or": 1, "&&": 2, "and": 2,
	"==": 3, "!=": 3, "<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}

func (p *sparser) expr() sExpr { return p.binary(1) }

func (p *sparser) binary(minPrec int) sExpr {
	lhs := p.unary()
	for {
		t := p.peek()
		op := t.text
		if t.kind != tPunct && t.kind != tKeyword {
			return lhs
		}
		prec, ok := slangPrec[op]
		if !ok || prec < minPrec {
			return lhs
		}
		p.next()
		rhs := p.binary(prec + 1)
		if op == "or" {
			op = "||"
		}
		if op == "and" {
			op = "&&"
		}
		lhs = &sBinary{op: op, l: lhs, r: rhs, line: t.line, col: t.col}
	}
}

func (p *sparser) unary() sExpr {
	t := p.peek()
	if t.kind == tPunct && (t.text == "-" || t.text == "!") {
		p.next()
		return &sUnary{op: t.text, e: p.unary()}
	}
	if t.kind == tKeyword && t.text == "not" {
		p.next()
		return &sUnary{op: "!", e: p.unary()}
	}
	return p.postfix(p.primary())
}

func (p *sparser) postfix(e sExpr) sExpr {
	for {
		t := p.peek()
		switch {
		case p.at(tPunct, "("):
			p.next()
			args := p.argList()
			e = &sCall{fn: e, args: args, line: t.line, col: t.col}
		case p.at(tPunct, "["):
			p.next()
			idx := p.expr()
			p.expect(tPunct, "]", "index")
			e = &sIndex{base: e, index: idx}
		case p.at(tPunct, "."):
			p.next()
			name := p.expect(tIdent, "", "method call")
			p.expect(tPunct, "(", "method call")
			args := p.argList()
			e = &sMethod{base: e, name: name.text, args: args, line: t.line, col: t.col}
		default:
			return e
		}
	}
}

func (p *sparser) argList() []sExpr {
	var args []sExpr
	for !p.at(tPunct, ")") && !p.at(tEOF, "") {
		args = append(args, p.expr())
		if !p.accept(tPunct, ",") {
			break
		}
	}
	p.expect(tPunct, ")", "argument list")
	return args
}

func (p *sparser) primary() sExpr {
	t := p.peek()
	switch {
	case t.kind == tNum:
		p.next()
		return &sNum{v: t.num}
	case t.kind == tStr:
		p.next()
		return &sStrLit{v: t.text}
	case t.kind == tKeyword && t.text == "true":
		p.next()
		return &sBool{v: true}
	case t.kind == tKeyword && t.text == "false":
		p.next()
		return &sBool{v: false}
	case t.kind == tKeyword && t.text == "nil":
		p.next()
		return &sNil{}
	case t.kind == tIdent:
		p.next()
		return &sName{name: t.text, line: t.line, col: t.col}
	case p.at(tPunct, "("):
		p.next()
		e := p.expr()
		p.expect(tPunct, ")", "parenthesized expression")
		return e
	case p.at(tPunct, "["):
		p.next()
		var elems []sExpr
		for !p.at(tPunct, "]") && !p.at(tEOF, "") {
			elems = append(elems, p.expr())
			if !p.accept(tPunct, ",") {
				break
			}
		}
		p.expect(tPunct, "]", "list literal")
		return &sList{elems: elems}
	default:
		p.errorf("expected expression, found %q", t.text)
		p.next()
		return &sNil{}
	}
}
