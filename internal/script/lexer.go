// Package script implements "slang", the small scripting language that
// stands in for Perl/Python in the SILOON reproduction (§4.2). SILOON
// generates slang wrapper functions that call bridging functions, which
// dispatch into C++ libraries running on the PDT interpreter. The
// language itself is deliberately small: numbers, strings, booleans,
// lists, user functions, control flow, and foreign calls.
package script

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNum
	tStr
	tIdent
	tKeyword
	tPunct
)

type token struct {
	kind tokKind
	text string
	num  float64
	line int
	col  int
}

var slangKeywords = map[string]bool{
	"def": true, "if": true, "else": true, "while": true, "for": true,
	"return": true, "true": true, "false": true, "nil": true,
	"and": true, "or": true, "not": true, "break": true, "continue": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	errs []error
}

func lexAll(src string) ([]token, []error) {
	lx := &lexer{src: src, line: 1, col: 1}
	var out []token
	for {
		t := lx.next()
		out = append(out, t)
		if t.kind == tEOF {
			break
		}
	}
	return out, lx.errs
}

func (lx *lexer) errorf(line, col int, format string, args ...interface{}) {
	lx.errs = append(lx.errs, fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...)))
}

func (lx *lexer) peek() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *lexer) peek2() byte {
	if lx.pos+1 < len(lx.src) {
		return lx.src[lx.pos+1]
	}
	return 0
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *lexer) next() token {
	for lx.pos < len(lx.src) {
		b := lx.peek()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			goto scan
		}
	}
scan:
	if lx.pos >= len(lx.src) {
		return token{kind: tEOF, line: lx.line, col: lx.col}
	}
	line, col := lx.line, lx.col
	b := lx.peek()
	switch {
	case b >= '0' && b <= '9' || (b == '.' && lx.peek2() >= '0' && lx.peek2() <= '9'):
		var sb strings.Builder
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
				((c == '+' || c == '-') && sb.Len() > 0 && (sb.String()[sb.Len()-1] == 'e' || sb.String()[sb.Len()-1] == 'E')) {
				sb.WriteByte(lx.advance())
			} else {
				break
			}
		}
		var v float64
		if _, err := fmt.Sscanf(sb.String(), "%g", &v); err != nil {
			lx.errorf(line, col, "bad number %q", sb.String())
		}
		return token{kind: tNum, text: sb.String(), num: v, line: line, col: col}
	case b == '"' || b == '\'':
		quote := lx.advance()
		var sb strings.Builder
		for lx.pos < len(lx.src) && lx.peek() != quote {
			c := lx.advance()
			if c == '\\' && lx.pos < len(lx.src) {
				e := lx.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"', '\'':
					sb.WriteByte(e)
				default:
					sb.WriteByte(e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		if lx.pos >= len(lx.src) {
			lx.errorf(line, col, "unterminated string")
		} else {
			lx.advance()
		}
		return token{kind: tStr, text: sb.String(), line: line, col: col}
	case b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z'):
		var sb strings.Builder
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
				sb.WriteByte(lx.advance())
			} else {
				break
			}
		}
		kind := tIdent
		if slangKeywords[sb.String()] {
			kind = tKeyword
		}
		return token{kind: kind, text: sb.String(), line: line, col: col}
	default:
		two := ""
		if lx.pos+1 < len(lx.src) {
			two = lx.src[lx.pos : lx.pos+2]
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||":
			lx.advance()
			lx.advance()
			return token{kind: tPunct, text: two, line: line, col: col}
		}
		c := lx.advance()
		switch c {
		case '(', ')', '{', '}', '[', ']', ',', ';', '+', '-', '*', '/',
			'%', '<', '>', '=', '!', '.':
			return token{kind: tPunct, text: string(c), line: line, col: col}
		}
		lx.errorf(line, col, "unexpected character %q", string(c))
		return lx.next()
	}
}
