package pdb

import "fmt"

// Validate checks the database's referential integrity: every Ref
// points at an existing item of the right kind, IDs are unique per
// item type, and locations reference known files. It returns every
// violation found (nil for a well-formed database).
//
// The IL Analyzer always produces valid databases; Validate exists for
// hand-written or merged inputs, and as the invariant backing the
// property tests.
func (p *PDB) Validate() []error {
	var errs []error
	report := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	files := map[int]bool{}
	types := map[int]bool{}
	templates := map[int]bool{}
	classes := map[int]bool{}
	routines := map[int]bool{}
	namespaces := map[int]bool{}

	index := func(kind string, id int, seen map[int]bool) {
		if id == 0 {
			report("%s item with zero ID", kind)
			return
		}
		if seen[id] {
			report("duplicate %s ID %d", kind, id)
		}
		seen[id] = true
	}
	for _, f := range p.Files {
		index("so", f.ID, files)
	}
	for _, t := range p.Types {
		index("ty", t.ID, types)
	}
	for _, t := range p.Templates {
		index("te", t.ID, templates)
	}
	for _, c := range p.Classes {
		index("cl", c.ID, classes)
	}
	for _, r := range p.Routines {
		index("ro", r.ID, routines)
	}
	for _, n := range p.Namespaces {
		index("na", n.ID, namespaces)
	}

	checkRef := func(owner string, ref Ref, wantPrefix string, seen map[int]bool) {
		if !ref.Valid() {
			return
		}
		if ref.Prefix != wantPrefix {
			report("%s: reference %s has prefix %q, want %q", owner, ref, ref.Prefix, wantPrefix)
			return
		}
		if !seen[ref.ID] {
			report("%s: dangling reference %s", owner, ref)
		}
	}
	checkLoc := func(owner string, l Loc) {
		if !l.Valid() {
			return
		}
		checkRef(owner, l.File, PrefixSourceFile, files)
		if l.Line < 1 || l.Col < 1 {
			report("%s: non-positive location %d:%d", owner, l.Line, l.Col)
		}
	}
	checkPos := func(owner string, pos Pos) {
		checkLoc(owner+" pos.hb", pos.HeaderBegin)
		checkLoc(owner+" pos.he", pos.HeaderEnd)
		checkLoc(owner+" pos.bb", pos.BodyBegin)
		checkLoc(owner+" pos.be", pos.BodyEnd)
	}

	for _, f := range p.Files {
		owner := fmt.Sprintf("so#%d", f.ID)
		for _, inc := range f.Includes {
			checkRef(owner, inc, PrefixSourceFile, files)
		}
	}
	for _, t := range p.Templates {
		owner := fmt.Sprintf("te#%d", t.ID)
		checkLoc(owner, t.Loc)
		checkRef(owner, t.Class, PrefixClass, classes)
		checkRef(owner, t.Namespace, PrefixNamespace, namespaces)
		checkPos(owner, t.Pos)
	}
	for _, r := range p.Routines {
		owner := fmt.Sprintf("ro#%d", r.ID)
		checkLoc(owner, r.Loc)
		checkRef(owner, r.Class, PrefixClass, classes)
		checkRef(owner, r.Namespace, PrefixNamespace, namespaces)
		checkRef(owner, r.Signature, PrefixType, types)
		checkRef(owner, r.Template, PrefixTemplate, templates)
		checkPos(owner, r.Pos)
		for i, c := range r.Calls {
			callOwner := fmt.Sprintf("%s rcall[%d]", owner, i)
			checkRef(callOwner, c.Callee, PrefixRoutine, routines)
			checkLoc(callOwner, c.Loc)
		}
	}
	for _, c := range p.Classes {
		owner := fmt.Sprintf("cl#%d", c.ID)
		checkLoc(owner, c.Loc)
		checkRef(owner, c.Parent, PrefixClass, classes)
		checkRef(owner, c.Namespace, PrefixNamespace, namespaces)
		checkRef(owner, c.Template, PrefixTemplate, templates)
		checkPos(owner, c.Pos)
		for i, b := range c.Bases {
			baseOwner := fmt.Sprintf("%s cbase[%d]", owner, i)
			checkRef(baseOwner, b.Class, PrefixClass, classes)
			checkLoc(baseOwner, b.Loc)
		}
		for i, fr := range c.Funcs {
			fOwner := fmt.Sprintf("%s cfunc[%d]", owner, i)
			checkRef(fOwner, fr.Routine, PrefixRoutine, routines)
			checkLoc(fOwner, fr.Loc)
		}
		for _, m := range c.Members {
			mOwner := fmt.Sprintf("%s cmem %s", owner, m.Name)
			checkRef(mOwner, m.Type, PrefixType, types)
			checkLoc(mOwner, m.Loc)
		}
	}
	for _, t := range p.Types {
		owner := fmt.Sprintf("ty#%d", t.ID)
		checkRef(owner, t.Elem, PrefixType, types)
		checkRef(owner, t.Tref, PrefixType, types)
		checkRef(owner, t.Class, PrefixClass, classes)
		checkRef(owner, t.Ret, PrefixType, types)
		for i, a := range t.Args {
			checkRef(fmt.Sprintf("%s yargt[%d]", owner, i), a, PrefixType, types)
		}
	}
	for _, n := range p.Namespaces {
		owner := fmt.Sprintf("na#%d", n.ID)
		checkLoc(owner, n.Loc)
		checkRef(owner, n.Parent, PrefixNamespace, namespaces)
	}
	for _, m := range p.Macros {
		checkLoc(fmt.Sprintf("ma#%d", m.ID), m.Loc)
	}
	return errs
}
