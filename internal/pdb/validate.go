package pdb

import "fmt"

// vOwner identifies the item (and optionally the sub-record inside it)
// a validation message is about. It stays a plain value until an error
// is actually reported; String renders the familiar "ro#4 rcall[2]"
// label on demand.
type vOwner struct {
	kind   string // item prefix: so, ty, te, cl, ro, na, ma
	id     int
	subrec string // "", or rcall/cbase/cfunc/yargt
	idx    int
	member string // member name, for "cmem" records
	where  string // "", or pos.hb/pos.he/pos.bb/pos.be
}

func (o vOwner) sub(rec string, i int) vOwner { o.subrec, o.idx = rec, i; return o }
func (o vOwner) mem(name string) vOwner       { o.member = name; return o }
func (o vOwner) at(pos string) vOwner         { o.where = pos; return o }

func (o vOwner) String() string {
	s := fmt.Sprintf("%s#%d", o.kind, o.id)
	switch {
	case o.member != "":
		s += " cmem " + o.member
	case o.subrec != "":
		s += fmt.Sprintf(" %s[%d]", o.subrec, o.idx)
	}
	if o.where != "" {
		s += " " + o.where
	}
	return s
}

// Validate checks the database's referential integrity: every Ref
// points at an existing item of the right kind, IDs are unique per
// item type, and locations reference known files. It returns every
// violation found (nil for a well-formed database).
//
// The IL Analyzer always produces valid databases; Validate exists for
// hand-written or merged inputs, and as the invariant backing the
// property tests.
func (p *PDB) Validate() []error {
	var errs []error
	report := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	files := map[int]bool{}
	types := map[int]bool{}
	templates := map[int]bool{}
	classes := map[int]bool{}
	routines := map[int]bool{}
	namespaces := map[int]bool{}

	index := func(kind string, id int, seen map[int]bool) {
		if id == 0 {
			report("%s item with zero ID", kind)
			return
		}
		if seen[id] {
			report("duplicate %s ID %d", kind, id)
		}
		seen[id] = true
	}
	for _, f := range p.Files {
		index("so", f.ID, files)
	}
	for _, t := range p.Types {
		index("ty", t.ID, types)
	}
	for _, t := range p.Templates {
		index("te", t.ID, templates)
	}
	for _, c := range p.Classes {
		index("cl", c.ID, classes)
	}
	for _, r := range p.Routines {
		index("ro", r.ID, routines)
	}
	for _, n := range p.Namespaces {
		index("na", n.ID, namespaces)
	}

	// Owner labels are only rendered when a violation is reported;
	// building them eagerly for every healthy item dominated the cost of
	// validating large merged databases.
	checkRef := func(owner vOwner, ref Ref, wantPrefix string, seen map[int]bool) {
		if !ref.Valid() {
			return
		}
		if ref.Prefix != wantPrefix {
			report("%s: reference %s has prefix %q, want %q", owner, ref, ref.Prefix, wantPrefix)
			return
		}
		if !seen[ref.ID] {
			report("%s: dangling reference %s", owner, ref)
		}
	}
	checkLoc := func(owner vOwner, l Loc) {
		if !l.Valid() {
			return
		}
		checkRef(owner, l.File, PrefixSourceFile, files)
		if l.Line < 1 || l.Col < 1 {
			report("%s: non-positive location %d:%d", owner, l.Line, l.Col)
		}
	}
	checkPos := func(owner vOwner, pos Pos) {
		checkLoc(owner.at("pos.hb"), pos.HeaderBegin)
		checkLoc(owner.at("pos.he"), pos.HeaderEnd)
		checkLoc(owner.at("pos.bb"), pos.BodyBegin)
		checkLoc(owner.at("pos.be"), pos.BodyEnd)
	}

	for _, f := range p.Files {
		owner := vOwner{kind: "so", id: f.ID}
		for _, inc := range f.Includes {
			checkRef(owner, inc, PrefixSourceFile, files)
		}
	}
	for _, t := range p.Templates {
		owner := vOwner{kind: "te", id: t.ID}
		checkLoc(owner, t.Loc)
		checkRef(owner, t.Class, PrefixClass, classes)
		checkRef(owner, t.Namespace, PrefixNamespace, namespaces)
		checkPos(owner, t.Pos)
	}
	for _, r := range p.Routines {
		owner := vOwner{kind: "ro", id: r.ID}
		checkLoc(owner, r.Loc)
		checkRef(owner, r.Class, PrefixClass, classes)
		checkRef(owner, r.Namespace, PrefixNamespace, namespaces)
		checkRef(owner, r.Signature, PrefixType, types)
		checkRef(owner, r.Template, PrefixTemplate, templates)
		checkPos(owner, r.Pos)
		for i, c := range r.Calls {
			callOwner := owner.sub("rcall", i)
			checkRef(callOwner, c.Callee, PrefixRoutine, routines)
			checkLoc(callOwner, c.Loc)
		}
	}
	for _, c := range p.Classes {
		owner := vOwner{kind: "cl", id: c.ID}
		checkLoc(owner, c.Loc)
		checkRef(owner, c.Parent, PrefixClass, classes)
		checkRef(owner, c.Namespace, PrefixNamespace, namespaces)
		checkRef(owner, c.Template, PrefixTemplate, templates)
		checkPos(owner, c.Pos)
		for i, b := range c.Bases {
			baseOwner := owner.sub("cbase", i)
			checkRef(baseOwner, b.Class, PrefixClass, classes)
			checkLoc(baseOwner, b.Loc)
		}
		for i, fr := range c.Funcs {
			fOwner := owner.sub("cfunc", i)
			checkRef(fOwner, fr.Routine, PrefixRoutine, routines)
			checkLoc(fOwner, fr.Loc)
		}
		for _, m := range c.Members {
			mOwner := owner.mem(m.Name)
			checkRef(mOwner, m.Type, PrefixType, types)
			checkLoc(mOwner, m.Loc)
		}
	}
	for _, t := range p.Types {
		owner := vOwner{kind: "ty", id: t.ID}
		checkRef(owner, t.Elem, PrefixType, types)
		checkRef(owner, t.Tref, PrefixType, types)
		checkRef(owner, t.Class, PrefixClass, classes)
		checkRef(owner, t.Ret, PrefixType, types)
		for i, a := range t.Args {
			checkRef(owner.sub("yargt", i), a, PrefixType, types)
		}
	}
	for _, n := range p.Namespaces {
		owner := vOwner{kind: "na", id: n.ID}
		checkLoc(owner, n.Loc)
		checkRef(owner, n.Parent, PrefixNamespace, namespaces)
	}
	for _, m := range p.Macros {
		checkLoc(vOwner{kind: "ma", id: m.ID}, m.Loc)
	}

	p.validateCrossRefs(report)
	return errs
}

// validateCrossRefs checks semantic consistency between items that are
// individually well-formed: the inclusion graph, the inheritance graph,
// class↔routine membership, and template-kind agreement. These are the
// invariants the analysis passes lean on, so a database that merges or
// hand-edits its way into violating them is reported here rather than
// silently producing nonsense downstream.
func (p *PDB) validateCrossRefs(report func(format string, args ...interface{})) {
	classByID := map[int]*Class{}
	for _, c := range p.Classes {
		classByID[c.ID] = c
	}
	routineByID := map[int]*Routine{}
	for _, r := range p.Routines {
		routineByID[r.ID] = r
	}
	templateByID := map[int]*Template{}
	for _, t := range p.Templates {
		templateByID[t.ID] = t
	}

	// A file must not include itself.
	for _, f := range p.Files {
		for _, inc := range f.Includes {
			if inc.Prefix == PrefixSourceFile && inc.ID == f.ID {
				report("so#%d: file %q includes itself", f.ID, f.Name)
			}
		}
	}

	// The inheritance graph must be acyclic. Colors: 0 unvisited,
	// 1 on the current DFS path, 2 done.
	color := map[int]int{}
	var visit func(c *Class) bool
	visit = func(c *Class) bool {
		switch color[c.ID] {
		case 1:
			return true // back edge: cycle
		case 2:
			return false
		}
		color[c.ID] = 1
		for _, b := range c.Bases {
			if base, ok := classByID[b.Class.ID]; ok && b.Class.Prefix == PrefixClass {
				if visit(base) {
					color[c.ID] = 2
					return true
				}
			}
		}
		color[c.ID] = 2
		return false
	}
	for _, c := range p.Classes {
		if color[c.ID] == 0 && visit(c) {
			report("cl#%d: inheritance cycle through class %q", c.ID, c.Name)
		}
	}

	// A routine listed as a member function of a class must agree: its
	// own class back-reference, when set, has to point at that class.
	for _, c := range p.Classes {
		for i, fr := range c.Funcs {
			r, ok := routineByID[fr.Routine.ID]
			if !ok || fr.Routine.Prefix != PrefixRoutine {
				continue // dangling ref already reported
			}
			if r.Class.Valid() && (r.Class.Prefix != PrefixClass || r.Class.ID != c.ID) {
				report("cl#%d cfunc[%d]: routine ro#%d claims class %s, not cl#%d",
					c.ID, i, r.ID, r.Class, c.ID)
			}
		}
	}

	// Template kinds must match the referencing item: classes
	// instantiate class templates, routines instantiate function-like
	// templates (func, memfunc, statmem).
	for _, c := range p.Classes {
		if t, ok := templateByID[c.Template.ID]; ok && c.Template.Prefix == PrefixTemplate {
			if t.Kind != "" && t.Kind != "class" {
				report("cl#%d: references %q template te#%d, want kind \"class\"",
					c.ID, t.Kind, t.ID)
			}
		}
	}
	for _, r := range p.Routines {
		if t, ok := templateByID[r.Template.ID]; ok && r.Template.Prefix == PrefixTemplate {
			switch t.Kind {
			case "", "func", "memfunc", "statmem":
			case "class":
				// Member functions of a class-template instantiation
				// carry the enclosing class template as their origin.
				if !r.Class.Valid() {
					report("ro#%d: free routine references \"class\" template te#%d, want a function-like kind",
						r.ID, t.ID)
				}
			default:
				report("ro#%d: references %q template te#%d, want a function-like kind",
					r.ID, t.Kind, t.ID)
			}
		}
	}
}
