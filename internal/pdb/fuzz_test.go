package pdb_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/faultio"
	"pdt/internal/ilanalyzer"
	"pdt/internal/pdb"
	"pdt/internal/workload"
)

// compileToPDBText turns one workload translation unit into PDB text,
// for corpus seeding.
func compileToPDBText(f *testing.F, files map[string]string, main string) string {
	f.Helper()
	opts := core.Options{}
	fset := core.NewFileSet(opts)
	for name, text := range files {
		if name != main {
			fset.AddVirtualFile(name, text)
		}
	}
	res := core.CompileSource(fset, main, files[main], opts)
	for _, d := range res.Diagnostics {
		f.Fatalf("compile %s: %v", main, d)
	}
	return ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}).String()
}

// FuzzWriteReadRoundTrip: for any input, Read must never panic, and on
// inputs Read accepts, Write∘Read must be a fixed point — writing the
// parsed database and reading it back reproduces the same bytes. This
// is the serialization invariant every other engine (pdbio's parallel
// reader, the merge dedup keys, the golden integration tests) builds
// on. Seeded from the golden merged database, the workload generators,
// the property-test generator, and degenerate hand-written inputs.
func FuzzWriteReadRoundTrip(f *testing.F) {
	if golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "lintdemo.pdb")); err == nil {
		f.Add(string(golden))
	} else {
		f.Errorf("golden seed: %v", err)
	}

	hdr, units := workload.GenMergeUnits(2, 3, 2)
	for _, unit := range units {
		f.Add(compileToPDBText(f, map[string]string{"shared.h": hdr, "unit.cpp": unit}, "unit.cpp"))
	}
	f.Add(compileToPDBText(f, map[string]string{"gen.cpp": workload.GenClasses(3, 2)}, "gen.cpp"))
	f.Add(compileToPDBText(f, map[string]string{"gen.cpp": workload.GenDistinctInstantiations(4)}, "gen.cpp"))

	for seed := int64(1); seed <= 8; seed++ {
		f.Add(pdb.RandPDB(rand.New(rand.NewSource(seed))).String())
	}

	f.Add("")
	f.Add("<PDB 1.0>\n")
	f.Add("<PDB 1.0>\nso#1 a.h\nro#2 f\nrcall ro#2 yes so#1 1 1\n")
	f.Add("ro#1 orphan\n")
	f.Add("<PDB 1.0>\nty#1 weird\nykind func\nyargt ty#1 T\nyqual const volatile\n")

	// Corrupted-block seeds: well-formed databases damaged at
	// deterministic offsets, steering the fuzzer toward the recovery
	// paths of the lenient reader.
	clean := pdb.RandPDB(rand.New(rand.NewSource(99))).String()
	for seed := int64(1); seed <= 4; seed++ {
		corrupted, _ := faultio.CorruptBytes([]byte(clean), seed, 1+int(seed)*3)
		f.Add(string(corrupted))
	}

	f.Fuzz(func(t *testing.T, input string) {
		// The lenient reader must never panic and never report format
		// damage as an error; and when it saw nothing wrong, it must
		// agree with the strict reader byte for byte.
		ldb, diags, lerr := pdb.ReadLenient(strings.NewReader(input), pdb.DefaultMaxLineBytes, "")
		if lerr != nil {
			t.Fatalf("ReadLenient returned a non-I/O error: %v", lerr)
		}

		db, err := pdb.Read(strings.NewReader(input)) // must not panic
		if err != nil {
			return
		}
		if len(diags) == 0 && ldb.String() != db.String() {
			t.Fatalf("diagnostic-free lenient parse differs from strict:\n--- lenient ---\n%s\n--- strict ---\n%s",
				ldb.String(), db.String())
		}
		w1 := db.String()
		db2, err := pdb.Read(strings.NewReader(w1))
		if err != nil {
			t.Fatalf("written output does not parse back: %v\n%s", err, w1)
		}
		if w2 := db2.String(); w1 != w2 {
			t.Fatalf("Write∘Read is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", w1, w2)
		}
		if db2.ItemCount() != db.ItemCount() {
			t.Fatalf("item count drifted: %d -> %d", db.ItemCount(), db2.ItemCount())
		}
	})
}
