package pdb_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pdt/internal/faultio"
	"pdt/internal/pdb"
	"pdt/internal/workload"
)

// binSeed encodes db and returns the binary bytes, for corpus seeding.
func binSeed(f *testing.F, db *pdb.PDB) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := db.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzBinaryRead: for arbitrary bytes the binary decoders must never
// panic, must keep memory proportional to the input (no
// length-field-driven allocations), and must report damage as
// structured errors (strict) or structured diagnostics (lenient) —
// and on clean inputs strict, lenient, and the encode/decode
// round-trip must all agree. Seeded from golden corpora, the workload
// generators, and faultio.CorruptBytes-damaged encodings of each.
func FuzzBinaryRead(f *testing.F) {
	var seeds [][]byte
	if golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "lintdemo.pdb")); err == nil {
		db, err := pdb.Read(bytes.NewReader(golden))
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, binSeed(f, db))
	} else {
		f.Errorf("golden seed: %v", err)
	}

	hdr, units := workload.GenMergeUnits(2, 3, 2)
	for _, unit := range units {
		text := compileToPDBText(f, map[string]string{"shared.h": hdr, "unit.cpp": unit}, "unit.cpp")
		db, err := pdb.Read(bytes.NewReader([]byte(text)))
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, binSeed(f, db))
	}
	for seed := int64(1); seed <= 6; seed++ {
		seeds = append(seeds, binSeed(f, pdb.RandPDB(rand.New(rand.NewSource(seed)))))
	}

	for _, s := range seeds {
		f.Add(s)
		// Damaged variants steer the fuzzer into the recovery paths:
		// payload flips, truncations, and header damage.
		for dseed := int64(1); dseed <= 3; dseed++ {
			corrupted, _ := faultio.CorruptBytes(s, dseed, 1+int(dseed)*2)
			f.Add(corrupted)
		}
		f.Add(s[:len(s)/2])
		f.Add(s[:min(len(s), 9)])
	}
	f.Add([]byte{})
	f.Add([]byte("PDTB"))
	f.Add([]byte("PDTB\x01\x00\x00\x00\x00"))
	f.Add([]byte("<PDB 1.0>\nso#1 a.h\n"))

	f.Fuzz(func(t *testing.T, input []byte) {
		// Bounded memory: whatever the decoders build must stay
		// proportional to the input. Each decoded item consumes at
		// least two payload bytes, so the item count is bounded by the
		// input length; a violation means a length field sized an
		// allocation unchecked.
		ldb, diags, lerr := pdb.ReadBinaryLenient(bytes.NewReader(input), "fuzz")
		if lerr != nil {
			t.Fatalf("ReadBinaryLenient returned a non-I/O error: %v", lerr)
		}
		if ldb.ItemCount() > len(input) {
			t.Fatalf("lenient decode built %d items from %d bytes", ldb.ItemCount(), len(input))
		}
		for _, d := range diags {
			if d.Cause == "" {
				t.Fatalf("diagnostic with no cause: %+v", d)
			}
			if d.File != "fuzz" {
				t.Fatalf("diagnostic does not name the input: %+v", d)
			}
		}

		db, err := pdb.ReadBinary(bytes.NewReader(input)) // must not panic
		if err != nil {
			if len(diags) == 0 && pdb.IsBinaryPrefix(input) {
				t.Fatalf("strict read failed (%v) but lenient saw nothing wrong", err)
			}
			return
		}
		if db.ItemCount() > len(input) {
			t.Fatalf("strict decode built %d items from %d bytes", db.ItemCount(), len(input))
		}
		// A strict-clean input must be lenient-clean and agree.
		if len(diags) != 0 {
			t.Fatalf("strict read succeeded but lenient diagnosed: %v", diags)
		}
		if ldb.String() != db.String() {
			t.Fatal("lenient and strict decodes of a clean stream disagree")
		}
		// Encode/decode is a fixed point on accepted inputs.
		var re bytes.Buffer
		if err := db.WriteBinary(&re); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		db2, err := pdb.ReadBinary(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded stream does not decode: %v", err)
		}
		if db2.String() != db.String() {
			t.Fatal("binary encode/decode is not a fixed point")
		}
	})
}
