package pdb

// Shared primitives of the PDTB wire conventions (see binary.go):
// unsigned and zigzag varints, and length-prefixed byte strings. The
// binary PDB encoder uses them through binWriter, and the taustream
// profile-event protocol reuses them directly, so both wire formats
// agree on how an integer or a string looks on the wire.

import (
	"encoding/binary"
	"fmt"
)

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v as a zigzag varint (signed values survive).
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendLenBytes appends b length-prefixed: a uvarint byte count, then
// the raw bytes — the inline spelling of a string (the binary PDB
// string table frames its entries the same way).
func AppendLenBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendLenString appends s as a length-prefixed byte string.
func AppendLenString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// WireReader is a bounds-checked decoding cursor over one wire buffer.
// It follows the binary PDB reader's error discipline: the first
// defect latches into Err, every later read is a no-op zero, and any
// length or count read from the wire is validated against the bytes
// that remain before an allocation is sized from it.
type WireReader struct {
	data []byte
	pos  int
	err  error
}

// NewWireReader builds a cursor over data.
func NewWireReader(data []byte) *WireReader { return &WireReader{data: data} }

// Err returns the first decoding defect, or nil.
func (r *WireReader) Err() error { return r.err }

// Pos returns the current byte offset (for diagnostics).
func (r *WireReader) Pos() int { return r.pos }

// Remaining returns the number of undecoded bytes.
func (r *WireReader) Remaining() int { return len(r.data) - r.pos }

func (r *WireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// U8 reads one byte.
func (r *WireReader) U8() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail("truncated at offset %d", r.pos)
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// Uvarint reads an unsigned varint.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a zigzag varint.
func (r *WireReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Length reads a byte length and bounds it by the bytes that remain,
// so corrupted input can never size an oversized allocation.
func (r *WireReader) Length() int {
	at := r.pos
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.Remaining()) {
		r.fail("length %d at offset %d exceeds the %d bytes remaining", v, at, r.Remaining())
		return 0
	}
	return int(v)
}

// Bytes reads n raw bytes, aliasing the underlying buffer.
func (r *WireReader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail("%d bytes requested at offset %d with %d remaining", n, r.pos, r.Remaining())
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// LenString reads a length-prefixed byte string (AppendLenString's
// inverse), copying it out of the buffer.
func (r *WireReader) LenString() string {
	return string(r.Bytes(r.Length()))
}
