package pdb

import (
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40)
	b = AppendVarint(b, -7)
	b = AppendVarint(b, 1<<33)
	b = AppendLenString(b, "push() Stack<int>")
	b = AppendLenBytes(b, []byte{1, 2, 3})
	b = AppendLenString(b, "")

	r := NewWireReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Errorf("uvarint = %d, want 0", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Errorf("uvarint = %d, want %d", v, uint64(1)<<40)
	}
	if v := r.Varint(); v != -7 {
		t.Errorf("varint = %d, want -7", v)
	}
	if v := r.Varint(); v != 1<<33 {
		t.Errorf("varint = %d, want %d", v, int64(1)<<33)
	}
	if s := r.LenString(); s != "push() Stack<int>" {
		t.Errorf("string = %q", s)
	}
	if got := r.Bytes(r.Length()); string(got) != "\x01\x02\x03" {
		t.Errorf("bytes = %v", got)
	}
	if s := r.LenString(); s != "" {
		t.Errorf("empty string = %q", s)
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestWireReaderTruncation(t *testing.T) {
	// A length that overruns the remaining bytes must fail before any
	// allocation is sized from it, and the first error must latch.
	b := AppendUvarint(nil, 1<<30)
	r := NewWireReader(b)
	if n := r.Length(); n != 0 {
		t.Errorf("oversized length = %d, want 0", n)
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "exceeds") {
		t.Errorf("err = %v, want bounds failure", r.Err())
	}
	// Reads after a latched error are no-op zeros.
	if v := r.Uvarint(); v != 0 {
		t.Errorf("post-error uvarint = %d", v)
	}

	r = NewWireReader(nil)
	if r.U8() != 0 || r.Err() == nil {
		t.Error("U8 on empty input must fail")
	}

	// A truncated varint (continuation bit set, no next byte).
	r = NewWireReader([]byte{0x80})
	r.Uvarint()
	if r.Err() == nil {
		t.Error("truncated uvarint must fail")
	}
}
