package pdb

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Write serializes the database in the compact ASCII format of Figure 3.
// Items are written grouped by kind: files, templates, routines,
// classes, types, namespaces, macros — each in ID order.
func (p *PDB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "<PDB %s>\n", Version)

	for _, f := range p.Files {
		fmt.Fprintf(bw, "\nso#%d %s\n", f.ID, f.Name)
		if f.System {
			fmt.Fprintf(bw, "ssys yes\n")
		}
		for _, inc := range f.Includes {
			fmt.Fprintf(bw, "sinc %s\n", inc)
		}
	}

	for _, t := range p.Templates {
		fmt.Fprintf(bw, "\nte#%d %s\n", t.ID, t.Name)
		writeLoc(bw, "tloc", t.Loc)
		fmt.Fprintf(bw, "tkind %s\n", t.Kind)
		if t.Class.Valid() {
			fmt.Fprintf(bw, "tclass %s\n", t.Class)
		}
		if t.Namespace.Valid() {
			fmt.Fprintf(bw, "tns %s\n", t.Namespace)
		}
		if t.Access != "" && t.Access != "NA" {
			fmt.Fprintf(bw, "tacs %s\n", t.Access)
		}
		if t.Text != "" {
			fmt.Fprintf(bw, "ttext %s\n", oneLine(t.Text))
		}
		writePos(bw, "tpos", t.Pos)
	}

	for _, r := range p.Routines {
		fmt.Fprintf(bw, "\nro#%d %s\n", r.ID, r.Name)
		writeLoc(bw, "rloc", r.Loc)
		if r.Class.Valid() {
			fmt.Fprintf(bw, "rclass %s\n", r.Class)
		}
		if r.Namespace.Valid() {
			fmt.Fprintf(bw, "rns %s\n", r.Namespace)
		}
		fmt.Fprintf(bw, "racs %s\n", orNA(r.Access))
		if r.Signature.Valid() {
			fmt.Fprintf(bw, "rsig %s\n", r.Signature)
		}
		fmt.Fprintf(bw, "rkind %s\n", orDefault(r.Kind, "fun"))
		fmt.Fprintf(bw, "rlink %s\n", orDefault(r.Linkage, "C++"))
		fmt.Fprintf(bw, "rstore %s\n", orNA(r.Storage))
		fmt.Fprintf(bw, "rvirt %s\n", orDefault(r.Virtual, "no"))
		if r.Static {
			fmt.Fprintf(bw, "rstatic yes\n")
		}
		if r.Inline {
			fmt.Fprintf(bw, "rinline yes\n")
		}
		if r.Const {
			fmt.Fprintf(bw, "rconst yes\n")
		}
		if r.Template.Valid() {
			fmt.Fprintf(bw, "rtempl %s\n", r.Template)
		}
		for _, c := range r.Calls {
			fmt.Fprintf(bw, "rcall %s %s %s\n", c.Callee, yesNo(c.Virtual), c.Loc)
		}
		writePos(bw, "rpos", r.Pos)
	}

	for _, c := range p.Classes {
		fmt.Fprintf(bw, "\ncl#%d %s\n", c.ID, c.Name)
		writeLoc(bw, "cloc", c.Loc)
		fmt.Fprintf(bw, "ckind %s\n", orDefault(c.Kind, "class"))
		if c.Parent.Valid() {
			fmt.Fprintf(bw, "cparent %s\n", c.Parent)
		}
		if c.Namespace.Valid() {
			fmt.Fprintf(bw, "cns %s\n", c.Namespace)
		}
		if c.Access != "" && c.Access != "NA" {
			fmt.Fprintf(bw, "cacs %s\n", c.Access)
		}
		if c.Template.Valid() {
			fmt.Fprintf(bw, "ctempl %s\n", c.Template)
		}
		if c.Instantiation {
			fmt.Fprintf(bw, "cinst yes\n")
		}
		if c.Specialization {
			fmt.Fprintf(bw, "cspec yes\n")
		}
		for _, b := range c.Bases {
			fmt.Fprintf(bw, "cbase %s %s %s %s\n", b.Access, yesNo(b.Virtual), b.Class, b.Loc)
		}
		for _, fr := range c.Friends {
			fmt.Fprintf(bw, "cfriend %s\n", fr)
		}
		for _, f := range c.Funcs {
			fmt.Fprintf(bw, "cfunc %s %s\n", f.Routine, f.Loc)
		}
		for _, m := range c.Members {
			fmt.Fprintf(bw, "cmem %s\n", m.Name)
			writeLoc(bw, "cmloc", m.Loc)
			fmt.Fprintf(bw, "cmacs %s\n", orNA(m.Access))
			fmt.Fprintf(bw, "cmkind %s\n", orDefault(m.Kind, "var"))
			if m.Type.Valid() {
				fmt.Fprintf(bw, "cmtype %s\n", m.Type)
			}
			if m.Static {
				fmt.Fprintf(bw, "cmstatic yes\n")
			}
		}
		writePos(bw, "cpos", c.Pos)
	}

	for _, t := range p.Types {
		fmt.Fprintf(bw, "\nty#%d %s\n", t.ID, t.Name)
		fmt.Fprintf(bw, "ykind %s\n", t.Kind)
		if t.IntKind != "" {
			fmt.Fprintf(bw, "yikind %s\n", t.IntKind)
		}
		switch t.Kind {
		case "ptr":
			fmt.Fprintf(bw, "yptr %s\n", t.Elem)
		case "ref":
			fmt.Fprintf(bw, "yref %s\n", t.Elem)
		case "array":
			fmt.Fprintf(bw, "yelem %s\n", t.Elem)
			fmt.Fprintf(bw, "ynelem %d\n", t.ArrayLen)
		case "tref":
			fmt.Fprintf(bw, "ytref %s\n", t.Tref)
			if len(t.Qual) > 0 {
				fmt.Fprintf(bw, "yqual %s\n", strings.Join(t.Qual, " "))
			}
		case "class":
			if t.Class.Valid() {
				fmt.Fprintf(bw, "yclass %s\n", t.Class)
			}
		case "enum":
			if t.Enum.Valid() {
				fmt.Fprintf(bw, "yenum %s\n", t.Enum)
			}
		case "func":
			fmt.Fprintf(bw, "yrett %s\n", t.Ret)
			for _, a := range t.Args {
				fmt.Fprintf(bw, "yargt %s %s\n", a, tf(t.Ellipsis))
			}
			if len(t.Args) == 0 && t.Ellipsis {
				fmt.Fprintf(bw, "yellip T\n")
			}
			if len(t.Qual) > 0 {
				fmt.Fprintf(bw, "yqual %s\n", strings.Join(t.Qual, " "))
			}
		}
	}

	for _, n := range p.Namespaces {
		fmt.Fprintf(bw, "\nna#%d %s\n", n.ID, n.Name)
		writeLoc(bw, "nloc", n.Loc)
		if n.Parent.Valid() {
			fmt.Fprintf(bw, "nparent %s\n", n.Parent)
		}
		if n.Alias != "" {
			fmt.Fprintf(bw, "nalias %s\n", n.Alias)
		}
		for _, m := range n.Members {
			fmt.Fprintf(bw, "nmem %s\n", m)
		}
	}

	for _, m := range p.Macros {
		fmt.Fprintf(bw, "\nma#%d %s\n", m.ID, m.Name)
		writeLoc(bw, "mloc", m.Loc)
		fmt.Fprintf(bw, "mkind %s\n", orDefault(m.Kind, "def"))
		if m.Text != "" {
			fmt.Fprintf(bw, "mtext %s\n", oneLine(m.Text))
		}
	}

	return bw.Flush()
}

// String renders the PDB to a string.
func (p *PDB) String() string {
	var sb strings.Builder
	_ = p.Write(&sb)
	return sb.String()
}

func writeLoc(w io.Writer, attr string, l Loc) {
	if l.Valid() {
		fmt.Fprintf(w, "%s %s\n", attr, l)
	}
}

func writePos(w io.Writer, attr string, p Pos) {
	if !p.Valid() {
		return
	}
	fmt.Fprintf(w, "%s %s %s %s %s\n", attr,
		p.HeaderBegin, p.HeaderEnd, p.BodyBegin, p.BodyEnd)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func tf(b bool) string {
	if b {
		return "T"
	}
	return "F"
}

func orNA(s string) string {
	if s == "" {
		return "NA"
	}
	return s
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// naEmpty maps the two spellings of "no access recorded" — "" and
// "NA" — to the canonical empty string, mirroring the writer's
// omit-when-NA rule for template and class access.
func naEmpty(s string) string {
	if s == "NA" {
		return ""
	}
	return s
}

// oneLine collapses whitespace so multi-line texts (template bodies,
// macro definitions) stay on a single attribute line.
func oneLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
