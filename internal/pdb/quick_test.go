package pdb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randWord produces a safe item/attribute word (no newlines; names may
// contain template angle brackets and spaces like real PDB names).
func randWord(r *rand.Rand) string {
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := 1 + r.Intn(10)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[r.Intn(len(letters))])
	}
	return sb.String()
}

func randName(r *rand.Rand) string {
	name := randWord(r)
	switch r.Intn(4) {
	case 0:
		name += "<" + randWord(r) + ">"
	case 1:
		name += "<" + randWord(r) + ", " + randWord(r) + ">"
	case 2:
		name = randWord(r) + "::" + name
	}
	return name
}

func randRef(r *rand.Rand, prefix string, max int) Ref {
	if r.Intn(4) == 0 {
		return Ref{}
	}
	return Ref{Prefix: prefix, ID: 1 + r.Intn(max)}
}

func randLoc(r *rand.Rand, files int) Loc {
	if r.Intn(5) == 0 {
		return Loc{}
	}
	return Loc{File: Ref{Prefix: PrefixSourceFile, ID: 1 + r.Intn(files)},
		Line: 1 + r.Intn(500), Col: 1 + r.Intn(120)}
}

func randPos(r *rand.Rand, files int) Pos {
	return Pos{
		HeaderBegin: randLoc(r, files), HeaderEnd: randLoc(r, files),
		BodyBegin: randLoc(r, files), BodyEnd: randLoc(r, files),
	}
}

// randPDB generates a structurally arbitrary (but well-formed) PDB.
func randPDB(r *rand.Rand) *PDB {
	p := &PDB{}
	nFiles := 1 + r.Intn(5)
	for i := 1; i <= nFiles; i++ {
		f := &SourceFile{ID: i, Name: randWord(r) + ".h", System: r.Intn(3) == 0}
		for j := 0; j < r.Intn(3); j++ {
			// Validate rejects self-inclusion, so draw another file.
			if target := 1 + r.Intn(nFiles); target != i {
				f.Includes = append(f.Includes, Ref{Prefix: PrefixSourceFile, ID: target})
			}
		}
		p.Files = append(p.Files, f)
	}
	nTypes := 1 + r.Intn(8)
	for i := 1; i <= nTypes; i++ {
		kinds := []string{"int", "bool", "void", "ptr", "ref", "tref", "func", "class", "array"}
		ty := &Type{ID: i, Name: randName(r), Kind: kinds[r.Intn(len(kinds))]}
		switch ty.Kind {
		case "ptr", "ref":
			ty.Elem = randRef(r, PrefixType, nTypes)
		case "array":
			ty.Elem = randRef(r, PrefixType, nTypes)
			ty.ArrayLen = int64(r.Intn(64)) - 1
		case "tref":
			ty.Tref = randRef(r, PrefixType, nTypes)
			ty.Qual = []string{"const"}
		case "func":
			ty.Ret = Ref{Prefix: PrefixType, ID: 1 + r.Intn(nTypes)}
			for j := 0; j < r.Intn(3); j++ {
				ty.Args = append(ty.Args, Ref{Prefix: PrefixType, ID: 1 + r.Intn(nTypes)})
			}
			ty.Ellipsis = r.Intn(4) == 0 && len(ty.Args) > 0
		case "int":
			ty.IntKind = "int"
		}
		p.Types = append(p.Types, ty)
	}
	nTempl := r.Intn(4)
	var classTemplIDs []int
	for i := 1; i <= nTempl; i++ {
		kinds := []string{"class", "func", "memfunc", "statmem"}
		kind := kinds[r.Intn(len(kinds))]
		if kind == "class" {
			classTemplIDs = append(classTemplIDs, i)
		}
		p.Templates = append(p.Templates, &Template{
			ID: i, Name: randWord(r), Loc: randLoc(r, nFiles),
			Kind: kind,
			Text: "template <class T> " + randWord(r) + " {...};",
			Pos:  randPos(r, nFiles),
		})
	}
	nClasses := r.Intn(4)
	for i := 1; i <= nClasses; i++ {
		c := &Class{ID: i, Name: randName(r), Loc: randLoc(r, nFiles),
			Kind: []string{"class", "struct", "union"}[r.Intn(3)],
			Pos:  randPos(r, nFiles)}
		// Only class-kind templates may back a class instantiation.
		if len(classTemplIDs) > 0 && r.Intn(2) == 0 {
			c.Template = Ref{Prefix: PrefixTemplate,
				ID: classTemplIDs[r.Intn(len(classTemplIDs))]}
			c.Instantiation = true
		}
		if i > 1 && r.Intn(2) == 0 {
			c.Bases = append(c.Bases, BaseClass{Access: "pub",
				Virtual: r.Intn(3) == 0,
				Class:   Ref{Prefix: PrefixClass, ID: 1 + r.Intn(i-1)},
				Loc:     randLoc(r, nFiles)})
		}
		for j := 0; j < r.Intn(3); j++ {
			c.Members = append(c.Members, Member{
				Name: randWord(r), Loc: randLoc(r, nFiles),
				Access: []string{"pub", "prot", "priv"}[r.Intn(3)],
				Kind:   "var", Type: randRef(r, PrefixType, nTypes),
				Static: r.Intn(4) == 0,
			})
		}
		p.Classes = append(p.Classes, c)
	}
	nRoutines := r.Intn(5)
	for i := 1; i <= nRoutines; i++ {
		ro := &Routine{ID: i, Name: randWord(r), Loc: randLoc(r, nFiles),
			Access: "pub", Kind: []string{"fun", "ctor", "dtor", "op", "conv"}[r.Intn(5)],
			Linkage: "C++", Storage: "NA",
			Virtual:   []string{"no", "virt", "pure"}[r.Intn(3)],
			Signature: randRef(r, PrefixType, nTypes),
			Static:    r.Intn(4) == 0, Inline: r.Intn(4) == 0, Const: r.Intn(4) == 0,
			Pos: randPos(r, nFiles)}
		if nClasses > 0 && r.Intn(2) == 0 {
			ro.Class = Ref{Prefix: PrefixClass, ID: 1 + r.Intn(nClasses)}
		}
		for j := 0; j < r.Intn(3); j++ {
			ro.Calls = append(ro.Calls, Call{
				Callee:  Ref{Prefix: PrefixRoutine, ID: 1 + r.Intn(nRoutines)},
				Virtual: r.Intn(3) == 0,
				Loc:     Loc{File: Ref{Prefix: PrefixSourceFile, ID: 1 + r.Intn(nFiles)}, Line: 1 + r.Intn(99), Col: 1 + r.Intn(40)},
			})
		}
		p.Routines = append(p.Routines, ro)
	}
	for i := 1; i <= r.Intn(3); i++ {
		p.Namespaces = append(p.Namespaces, &Namespace{ID: i, Name: randWord(r),
			Loc: randLoc(r, nFiles), Members: []string{randWord(r), randWord(r)}})
	}
	for i := 1; i <= r.Intn(3); i++ {
		p.Macros = append(p.Macros, &Macro{ID: i, Name: randWord(r),
			Loc: randLoc(r, nFiles), Kind: []string{"def", "undef"}[r.Intn(2)],
			Text: randWord(r) + " " + randWord(r)})
	}
	return p
}

// Property: Write → Read → Write is byte-stable for arbitrary
// well-formed databases.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPDB(r)
		text := p.String()
		parsed, err := Read(strings.NewReader(text))
		if err != nil {
			t.Logf("read failed: %v\n%s", err, text)
			return false
		}
		text2 := parsed.String()
		if text != text2 {
			t.Logf("unstable round trip:\n--- 1 ---\n%s\n--- 2 ---\n%s", text, text2)
			return false
		}
		return parsed.ItemCount() == p.ItemCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on arbitrary line permutations of
// a valid file (robustness against hand-edited databases).
func TestReadShuffledLinesNoPanic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPDB(r)
		lines := strings.Split(p.String(), "\n")
		r.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
		// Keep the header first so parsing proceeds past it.
		shuffled := "<PDB 1.0>\n" + strings.Join(lines, "\n")
		_, _ = Read(strings.NewReader(shuffled)) // may error; must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
