package pdb

import (
	"errors"
	"strings"
	"testing"
)

// lenientSample is a small well-formed database used as the clean
// baseline for the recovery tests.
const lenientSample = `<PDB 1.0>

so#1 main.cpp
sinc so#2

so#2 util.h

cl#1 Widget
cloc so#1 3 7
ckind class

ro#1 spin
rloc so#1 10 5
rclass cl#1
racs pub

ty#1 int
ykind int
yikind int
`

func TestReadLenientCleanMatchesStrict(t *testing.T) {
	strict, err := Read(strings.NewReader(lenientSample))
	if err != nil {
		t.Fatalf("strict Read: %v", err)
	}
	got, diags, err := ReadLenient(strings.NewReader(lenientSample), DefaultMaxLineBytes, "sample.pdb")
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("clean input produced diagnostics: %v", diags)
	}
	if got.String() != strict.String() {
		t.Errorf("lenient parse of clean input differs from strict:\nlenient:\n%s\nstrict:\n%s",
			got.String(), strict.String())
	}
}

func TestReadLenientCorruptedHead(t *testing.T) {
	in := `<PDB 1.0>

so#1 main.cpp

cl#x Widget
cloc so#1 3 7
ckind class

ro#1 spin
rloc so#1 10 5
`
	db, diags, err := ReadLenient(strings.NewReader(in), DefaultMaxLineBytes, "f.pdb")
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one", diags)
	}
	d := diags[0]
	if d.File != "f.pdb" || d.StartLine != 5 || d.EndLine != 7 {
		t.Errorf("span = %s:%d-%d, want f.pdb:5-7", d.File, d.StartLine, d.EndLine)
	}
	if !strings.Contains(d.Cause, "malformed item head") {
		t.Errorf("cause = %q, want malformed item head", d.Cause)
	}
	if len(d.Skipped) != 3 {
		t.Errorf("skipped %d lines, want 3 (head + 2 attrs): %q", len(d.Skipped), d.Skipped)
	}
	// The undamaged neighbors survive intact.
	if len(db.Files) != 1 || db.Files[0].Name != "main.cpp" {
		t.Errorf("file item lost: %+v", db.Files)
	}
	if len(db.Routines) != 1 || db.Routines[0].Name != "spin" || !db.Routines[0].Loc.Valid() {
		t.Errorf("routine after the damage lost or incomplete: %+v", db.Routines)
	}
	if len(db.Classes) != 0 {
		t.Errorf("corrupted class should have been dropped, got %+v", db.Classes)
	}
	if len(db.Recovered) != 1 {
		t.Errorf("PDB.Recovered = %v, want the diagnostic attached", db.Recovered)
	}
}

func TestReadLenientUnknownAttrKeepsParsedPrefix(t *testing.T) {
	in := `<PDB 1.0>

cl#1 Widget
cloc so#1 3 7
cXXX garbage here
ckind class

cl#2 Gadget
ckind struct
`
	db, diags, err := ReadLenient(strings.NewReader(in), DefaultMaxLineBytes, "")
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want one", diags)
	}
	if d := diags[0]; d.Tag != "cl#1" || !strings.Contains(d.Cause, `unknown attribute "cXXX"`) {
		t.Errorf("diag = %+v, want unknown-attribute on cl#1", d)
	}
	// cl#1 keeps the attributes parsed before the damage, loses the rest
	// of its block; cl#2 is untouched.
	if len(db.Classes) != 2 {
		t.Fatalf("classes = %+v, want 2", db.Classes)
	}
	if c := db.Classes[0]; c.Name != "Widget" || !c.Loc.Valid() || c.Kind != "" {
		t.Errorf("damaged class = %+v, want cloc kept and ckind (after damage) dropped", c)
	}
	if c := db.Classes[1]; c.Name != "Gadget" || c.Kind != "struct" {
		t.Errorf("clean class = %+v, want intact", c)
	}
}

func TestReadLenientAttrOutsideItem(t *testing.T) {
	in := `<PDB 1.0>

cloc so#1 3 7

so#1 main.cpp
`
	db, diags, err := ReadLenient(strings.NewReader(in), DefaultMaxLineBytes, "")
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Cause, "outside any item") {
		t.Fatalf("diagnostics = %v, want one outside-any-item", diags)
	}
	if len(db.Files) != 1 {
		t.Errorf("files = %+v, want the later item preserved", db.Files)
	}
}

func TestReadLenientMissingHeader(t *testing.T) {
	in := "so#1 main.cpp\n\ncl#1 Widget\nckind class\n"
	db, diags, err := ReadLenient(strings.NewReader(in), DefaultMaxLineBytes, "")
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Cause, "header") {
		t.Fatalf("diagnostics = %v, want one header diagnostic", diags)
	}
	// The headerless first line is still consumed as the item it is.
	if len(db.Files) != 1 || len(db.Classes) != 1 {
		t.Errorf("items = %d files %d classes, want 1+1", len(db.Files), len(db.Classes))
	}
}

func TestReadLenientEmptyInput(t *testing.T) {
	db, diags, err := ReadLenient(strings.NewReader(""), DefaultMaxLineBytes, "")
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if db.ItemCount() != 0 {
		t.Errorf("items = %d, want 0", db.ItemCount())
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Cause, "header") {
		t.Errorf("diagnostics = %v, want the missing-header diagnostic", diags)
	}
}

func TestReadLenientOverlongLine(t *testing.T) {
	long := strings.Repeat("x", 200)
	in := "<PDB 1.0>\n\nso#1 main.cpp\n\ncl#1 " + long + "\nckind class\n\nso#2 util.h\n"
	db, diags, err := ReadLenient(strings.NewReader(in), 64, "")
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want one", diags)
	}
	if !strings.Contains(diags[0].Cause, "64-byte limit") {
		t.Errorf("cause = %q, want the line limit named", diags[0].Cause)
	}
	if len(db.Files) != 2 {
		t.Errorf("files = %+v, want both preserved", db.Files)
	}
	if len(db.Classes) != 0 {
		t.Errorf("classes = %+v, want the over-long item dropped", db.Classes)
	}
	// Strict mode still rejects the same input outright.
	if _, err := ReadLimit(strings.NewReader(in), 64); err == nil {
		t.Error("strict ReadLimit accepted an over-long line")
	}
}

type failAfterReader struct {
	r    *strings.Reader
	n    int
	read int
}

func (f *failAfterReader) Read(p []byte) (int, error) {
	if f.read >= f.n {
		return 0, errors.New("disk on fire")
	}
	if len(p) > f.n-f.read {
		p = p[:f.n-f.read]
	}
	n, err := f.r.Read(p)
	f.read += n
	return n, err
}

func TestReadLenientIOErrorSurfaces(t *testing.T) {
	r := &failAfterReader{r: strings.NewReader(lenientSample), n: 40}
	_, _, err := ReadLenient(r, DefaultMaxLineBytes, "")
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v, want the I/O failure surfaced", err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a.pdb", StartLine: 3, EndLine: 5, Tag: "ro#7", Cause: "boom"}
	if got, want := d.String(), "a.pdb:3-5: [ro#7] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d = Diagnostic{StartLine: 2, EndLine: 2, Cause: "boom"}
	if got, want := d.String(), "<stream>:2: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
