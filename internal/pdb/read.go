package pdb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// DefaultMaxLineBytes is the scanner token limit of Read: attribute
// lines carrying template texts or macro bodies can be long, but a
// single line larger than this aborts the parse.
const DefaultMaxLineBytes = 4 * 1024 * 1024

// Read parses a PDB file from r, auto-detecting the encoding: streams
// that start with the binary magic decode through ReadBinary, anything
// else takes the ASCII path (whose own header check rejects non-PDB
// input). Both encodings carry the same document model, so callers
// never see which one a file used.
func Read(r io.Reader) (*PDB, error) {
	br := bufio.NewReader(r)
	if sniffBinary(br) {
		return ReadBinary(br)
	}
	return ReadLimit(br, DefaultMaxLineBytes)
}

// sniffBinary peeks at the stream for the binary magic without
// consuming it. Streams shorter than the magic are never binary.
func sniffBinary(br *bufio.Reader) bool {
	prefix, _ := br.Peek(len(BinaryMagic))
	return IsBinaryPrefix(prefix)
}

// ReadFile parses the PDB file at path. It is the convenience
// constructor the command-line tools share; callers that need
// concurrency, cancellation, or options should use internal/pdbio.
func ReadFile(path string) (*PDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ReadLimit parses a PDB file from r, accepting lines up to
// maxLineBytes long.
func ReadLimit(r io.Reader, maxLineBytes int) (*PDB, error) {
	p := &PDB{}
	ip := itemParser{out: p}
	sc := newLineScanner(r, maxLineBytes)

	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		trimmed := strings.TrimSpace(strings.TrimRight(sc.Text(), "\r\n"))
		if trimmed == "" {
			continue
		}
		if !sawHeader {
			if !strings.HasPrefix(trimmed, "<PDB") {
				return nil, fmt.Errorf("line %d: missing <PDB> header", lineNo)
			}
			sawHeader = true
			continue
		}
		if id, name, prefix, ok := parseItemHead(trimmed); ok {
			ip.startItem(id, name, prefix)
			continue
		}
		if !ip.attrLine(trimmed) {
			attr, _, _ := strings.Cut(trimmed, " ")
			return nil, fmt.Errorf("line %d: attribute %q outside any item", lineNo, attr)
		}
	}
	ip.finish()
	if err := sc.Err(); err != nil {
		return nil, scanError(err, lineNo, maxLineBytes)
	}
	if !sawHeader {
		return nil, fmt.Errorf("empty input: missing <PDB> header")
	}
	return p, nil
}

// newLineScanner builds the line scanner shared by the sequential
// reader and the parallel block splitter.
func newLineScanner(r io.Reader, maxLineBytes int) *bufio.Scanner {
	if maxLineBytes <= 0 {
		maxLineBytes = DefaultMaxLineBytes
	}
	initial := 64 * 1024
	if initial > maxLineBytes {
		initial = maxLineBytes
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, initial), maxLineBytes)
	return sc
}

// scanError decorates scanner failures with the position they occurred
// at: a bare bufio.ErrTooLong names no line, which makes over-long
// attribute lines in multi-megabyte databases impossible to find.
func scanError(err error, lastLine, maxLineBytes int) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("line %d: line exceeds the %d-byte limit: %w",
			lastLine+1, maxLineBytes, err)
	}
	return err
}

// itemParser is the per-item state machine shared by the sequential
// reader and the per-block parser of the parallel path: it consumes
// item-head and attribute lines and appends finished items to out.
type itemParser struct {
	out *PDB

	curFile      *SourceFile
	curRoutine   *Routine
	curClass     *Class
	curType      *Type
	curTemplate  *Template
	curNamespace *Namespace
	curMacro     *Macro
	curMember    *Member // pending cmem sub-attributes
}

func (ip *itemParser) flushMember() {
	if ip.curMember != nil && ip.curClass != nil {
		ip.curClass.Members = append(ip.curClass.Members, *ip.curMember)
	}
	ip.curMember = nil
}

// finish flushes pending state and closes the current item.
func (ip *itemParser) finish() {
	ip.flushMember()
	ip.curFile, ip.curRoutine, ip.curClass, ip.curType = nil, nil, nil, nil
	ip.curTemplate, ip.curNamespace, ip.curMacro = nil, nil, nil
}

// startItem closes the current item and opens a new one of the given
// kind, appending it to the output database.
func (ip *itemParser) startItem(id int, name, prefix string) {
	ip.finish()
	switch prefix {
	case PrefixSourceFile:
		ip.curFile = &SourceFile{ID: id, Name: name}
		ip.out.Files = append(ip.out.Files, ip.curFile)
	case PrefixRoutine:
		ip.curRoutine = &Routine{ID: id, Name: name}
		ip.out.Routines = append(ip.out.Routines, ip.curRoutine)
	case PrefixClass:
		ip.curClass = &Class{ID: id, Name: name}
		ip.out.Classes = append(ip.out.Classes, ip.curClass)
	case PrefixType:
		ip.curType = &Type{ID: id, Name: name}
		ip.out.Types = append(ip.out.Types, ip.curType)
	case PrefixTemplate:
		ip.curTemplate = &Template{ID: id, Name: name}
		ip.out.Templates = append(ip.out.Templates, ip.curTemplate)
	case PrefixNamespace:
		ip.curNamespace = &Namespace{ID: id, Name: name}
		ip.out.Namespaces = append(ip.out.Namespaces, ip.curNamespace)
	case PrefixMacro:
		ip.curMacro = &Macro{ID: id, Name: name}
		ip.out.Macros = append(ip.out.Macros, ip.curMacro)
	}
}

// attrLine consumes one attribute line for the open item. It reports
// false when no item is open (an attribute outside any item).
func (ip *itemParser) attrLine(trimmed string) bool {
	attr, rest, _ := strings.Cut(trimmed, " ")
	switch {
	case ip.curFile != nil:
		switch attr {
		case "sinc":
			ip.curFile.Includes = append(ip.curFile.Includes, parseRef(rest))
		case "ssys":
			ip.curFile.System = rest == "yes"
		}
	case ip.curTemplate != nil:
		switch attr {
		case "tloc":
			ip.curTemplate.Loc = parseLoc(rest)
		case "tkind":
			ip.curTemplate.Kind = rest
		case "tclass":
			ip.curTemplate.Class = parseRef(rest)
		case "tns":
			ip.curTemplate.Namespace = parseRef(rest)
		case "tacs":
			ip.curTemplate.Access = rest
		case "ttext":
			ip.curTemplate.Text = rest
		case "tpos":
			ip.curTemplate.Pos = parsePos(rest)
		}
	case ip.curRoutine != nil:
		switch attr {
		case "rloc":
			ip.curRoutine.Loc = parseLoc(rest)
		case "rclass":
			ip.curRoutine.Class = parseRef(rest)
		case "rns":
			ip.curRoutine.Namespace = parseRef(rest)
		case "racs":
			ip.curRoutine.Access = rest
		case "rsig":
			ip.curRoutine.Signature = parseRef(rest)
		case "rkind":
			ip.curRoutine.Kind = rest
		case "rlink":
			ip.curRoutine.Linkage = rest
		case "rstore":
			ip.curRoutine.Storage = rest
		case "rvirt":
			ip.curRoutine.Virtual = rest
		case "rstatic":
			ip.curRoutine.Static = rest == "yes"
		case "rinline":
			ip.curRoutine.Inline = rest == "yes"
		case "rconst":
			ip.curRoutine.Const = rest == "yes"
		case "rtempl":
			ip.curRoutine.Template = parseRef(rest)
		case "rcall":
			fields := strings.Fields(rest)
			if len(fields) >= 5 {
				ip.curRoutine.Calls = append(ip.curRoutine.Calls, Call{
					Callee:  parseRef(fields[0]),
					Virtual: fields[1] == "yes",
					Loc:     parseLocFields(fields[2:5]),
				})
			}
		case "rpos":
			ip.curRoutine.Pos = parsePos(rest)
		}
	case ip.curClass != nil:
		switch attr {
		case "cloc":
			ip.flushMember()
			ip.curClass.Loc = parseLoc(rest)
		case "ckind":
			ip.flushMember()
			ip.curClass.Kind = rest
		case "cparent":
			ip.flushMember()
			ip.curClass.Parent = parseRef(rest)
		case "cns":
			ip.flushMember()
			ip.curClass.Namespace = parseRef(rest)
		case "cacs":
			ip.flushMember()
			ip.curClass.Access = rest
		case "ctempl":
			ip.flushMember()
			ip.curClass.Template = parseRef(rest)
		case "cinst":
			ip.flushMember()
			ip.curClass.Instantiation = rest == "yes"
		case "cspec":
			ip.flushMember()
			ip.curClass.Specialization = rest == "yes"
		case "cbase":
			ip.flushMember()
			fields := strings.Fields(rest)
			if len(fields) >= 6 {
				ip.curClass.Bases = append(ip.curClass.Bases, BaseClass{
					Access:  fields[0],
					Virtual: fields[1] == "yes",
					Class:   parseRef(fields[2]),
					Loc:     parseLocFields(fields[3:6]),
				})
			}
		case "cfriend":
			ip.flushMember()
			ip.curClass.Friends = append(ip.curClass.Friends, rest)
		case "cfunc":
			ip.flushMember()
			fields := strings.Fields(rest)
			if len(fields) >= 4 {
				ip.curClass.Funcs = append(ip.curClass.Funcs, FuncRef{
					Routine: parseRef(fields[0]),
					Loc:     parseLocFields(fields[1:4]),
				})
			}
		case "cmem":
			ip.flushMember()
			ip.curMember = &Member{Name: rest}
		case "cmloc":
			if ip.curMember != nil {
				ip.curMember.Loc = parseLoc(rest)
			}
		case "cmacs":
			if ip.curMember != nil {
				ip.curMember.Access = rest
			}
		case "cmkind":
			if ip.curMember != nil {
				ip.curMember.Kind = rest
			}
		case "cmtype":
			if ip.curMember != nil {
				ip.curMember.Type = parseRef(rest)
			}
		case "cmstatic":
			if ip.curMember != nil {
				ip.curMember.Static = rest == "yes"
			}
		case "cpos":
			ip.flushMember()
			ip.curClass.Pos = parsePos(rest)
		}
	case ip.curType != nil:
		switch attr {
		case "ykind":
			ip.curType.Kind = rest
		case "yikind":
			ip.curType.IntKind = rest
		case "yptr", "yref", "yelem":
			ip.curType.Elem = parseRef(rest)
		case "ynelem":
			ip.curType.ArrayLen, _ = strconv.ParseInt(rest, 10, 64)
		case "ytref":
			ip.curType.Tref = parseRef(rest)
		case "yqual":
			ip.curType.Qual = strings.Fields(rest)
		case "yclass":
			ip.curType.Class = parseRef(rest)
		case "yenum":
			ip.curType.Enum = parseRef(rest)
		case "yrett":
			ip.curType.Ret = parseRef(rest)
		case "yargt":
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				ip.curType.Args = append(ip.curType.Args, parseRef(fields[0]))
			}
			if len(fields) >= 2 && fields[1] == "T" {
				ip.curType.Ellipsis = true
			}
		case "yellip":
			ip.curType.Ellipsis = rest == "T"
		}
	case ip.curNamespace != nil:
		switch attr {
		case "nloc":
			ip.curNamespace.Loc = parseLoc(rest)
		case "nparent":
			ip.curNamespace.Parent = parseRef(rest)
		case "nalias":
			ip.curNamespace.Alias = rest
		case "nmem":
			ip.curNamespace.Members = append(ip.curNamespace.Members, rest)
		}
	case ip.curMacro != nil:
		switch attr {
		case "mloc":
			ip.curMacro.Loc = parseLoc(rest)
		case "mkind":
			ip.curMacro.Kind = rest
		case "mtext":
			ip.curMacro.Text = rest
		}
	default:
		return false
	}
	return true
}

// parseItemHead recognizes "xx#N name..." lines.
func parseItemHead(line string) (id int, name, prefix string, ok bool) {
	hash := strings.Index(line, "#")
	if hash != 2 {
		return 0, "", "", false
	}
	prefix = line[:2]
	switch prefix {
	case PrefixSourceFile, PrefixRoutine, PrefixClass, PrefixType,
		PrefixTemplate, PrefixNamespace, PrefixMacro:
	default:
		return 0, "", "", false
	}
	rest := line[3:]
	sp := strings.IndexByte(rest, ' ')
	numStr := rest
	if sp >= 0 {
		numStr = rest[:sp]
		name = rest[sp+1:]
	}
	n, err := strconv.Atoi(numStr)
	if err != nil {
		return 0, "", "", false
	}
	return n, name, prefix, true
}

// parseRef parses "xx#N" or "NA".
func parseRef(s string) Ref {
	s = strings.TrimSpace(s)
	if s == "" || s == "NA" || s == "NULL" {
		return Ref{}
	}
	hash := strings.Index(s, "#")
	if hash != 2 {
		return Ref{}
	}
	id, err := strconv.Atoi(s[hash+1:])
	if err != nil {
		return Ref{}
	}
	return Ref{Prefix: s[:2], ID: id}
}

// parseLoc parses "so#N line col" or "NULL 0 0".
func parseLoc(s string) Loc {
	return parseLocFields(strings.Fields(s))
}

func parseLocFields(fields []string) Loc {
	if len(fields) < 3 {
		return Loc{}
	}
	ref := parseRef(fields[0])
	if !ref.Valid() {
		return Loc{}
	}
	line, _ := strconv.Atoi(fields[1])
	col, _ := strconv.Atoi(fields[2])
	return Loc{File: ref, Line: line, Col: col}
}

// parsePos parses four locations (12 fields).
func parsePos(s string) Pos {
	fields := strings.Fields(s)
	if len(fields) < 12 {
		return Pos{}
	}
	return Pos{
		HeaderBegin: parseLocFields(fields[0:3]),
		HeaderEnd:   parseLocFields(fields[3:6]),
		BodyBegin:   parseLocFields(fields[6:9]),
		BodyEnd:     parseLocFields(fields[9:12]),
	}
}
