package pdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Read parses a PDB file from r.
func Read(r io.Reader) (*PDB, error) {
	p := &PDB{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	lineNo := 0
	sawHeader := false

	// current item state
	var curFile *SourceFile
	var curRoutine *Routine
	var curClass *Class
	var curType *Type
	var curTemplate *Template
	var curNamespace *Namespace
	var curMacro *Macro
	var curMember *Member // pending cmem sub-attributes

	flushMember := func() {
		if curMember != nil && curClass != nil {
			curClass.Members = append(curClass.Members, *curMember)
		}
		curMember = nil
	}
	reset := func() {
		flushMember()
		curFile, curRoutine, curClass, curType = nil, nil, nil, nil
		curTemplate, curNamespace, curMacro = nil, nil, nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if !sawHeader {
			if !strings.HasPrefix(trimmed, "<PDB") {
				return nil, fmt.Errorf("line %d: missing <PDB> header", lineNo)
			}
			sawHeader = true
			continue
		}
		// New item?
		if id, name, prefix, ok := parseItemHead(trimmed); ok {
			reset()
			switch prefix {
			case PrefixSourceFile:
				curFile = &SourceFile{ID: id, Name: name}
				p.Files = append(p.Files, curFile)
			case PrefixRoutine:
				curRoutine = &Routine{ID: id, Name: name}
				p.Routines = append(p.Routines, curRoutine)
			case PrefixClass:
				curClass = &Class{ID: id, Name: name}
				p.Classes = append(p.Classes, curClass)
			case PrefixType:
				curType = &Type{ID: id, Name: name}
				p.Types = append(p.Types, curType)
			case PrefixTemplate:
				curTemplate = &Template{ID: id, Name: name}
				p.Templates = append(p.Templates, curTemplate)
			case PrefixNamespace:
				curNamespace = &Namespace{ID: id, Name: name}
				p.Namespaces = append(p.Namespaces, curNamespace)
			case PrefixMacro:
				curMacro = &Macro{ID: id, Name: name}
				p.Macros = append(p.Macros, curMacro)
			default:
				return nil, fmt.Errorf("line %d: unknown item prefix %q", lineNo, prefix)
			}
			continue
		}
		// Attribute line.
		attr, rest, _ := strings.Cut(trimmed, " ")
		switch {
		case curFile != nil:
			switch attr {
			case "sinc":
				curFile.Includes = append(curFile.Includes, parseRef(rest))
			case "ssys":
				curFile.System = rest == "yes"
			}
		case curTemplate != nil:
			switch attr {
			case "tloc":
				curTemplate.Loc = parseLoc(rest)
			case "tkind":
				curTemplate.Kind = rest
			case "tclass":
				curTemplate.Class = parseRef(rest)
			case "tns":
				curTemplate.Namespace = parseRef(rest)
			case "tacs":
				curTemplate.Access = rest
			case "ttext":
				curTemplate.Text = rest
			case "tpos":
				curTemplate.Pos = parsePos(rest)
			}
		case curRoutine != nil:
			switch attr {
			case "rloc":
				curRoutine.Loc = parseLoc(rest)
			case "rclass":
				curRoutine.Class = parseRef(rest)
			case "rns":
				curRoutine.Namespace = parseRef(rest)
			case "racs":
				curRoutine.Access = rest
			case "rsig":
				curRoutine.Signature = parseRef(rest)
			case "rkind":
				curRoutine.Kind = rest
			case "rlink":
				curRoutine.Linkage = rest
			case "rstore":
				curRoutine.Storage = rest
			case "rvirt":
				curRoutine.Virtual = rest
			case "rstatic":
				curRoutine.Static = rest == "yes"
			case "rinline":
				curRoutine.Inline = rest == "yes"
			case "rconst":
				curRoutine.Const = rest == "yes"
			case "rtempl":
				curRoutine.Template = parseRef(rest)
			case "rcall":
				fields := strings.Fields(rest)
				if len(fields) >= 5 {
					curRoutine.Calls = append(curRoutine.Calls, Call{
						Callee:  parseRef(fields[0]),
						Virtual: fields[1] == "yes",
						Loc:     parseLocFields(fields[2:5]),
					})
				}
			case "rpos":
				curRoutine.Pos = parsePos(rest)
			}
		case curClass != nil:
			switch attr {
			case "cloc":
				flushMember()
				curClass.Loc = parseLoc(rest)
			case "ckind":
				flushMember()
				curClass.Kind = rest
			case "cparent":
				flushMember()
				curClass.Parent = parseRef(rest)
			case "cns":
				flushMember()
				curClass.Namespace = parseRef(rest)
			case "cacs":
				flushMember()
				curClass.Access = rest
			case "ctempl":
				flushMember()
				curClass.Template = parseRef(rest)
			case "cinst":
				flushMember()
				curClass.Instantiation = rest == "yes"
			case "cspec":
				flushMember()
				curClass.Specialization = rest == "yes"
			case "cbase":
				flushMember()
				fields := strings.Fields(rest)
				if len(fields) >= 6 {
					curClass.Bases = append(curClass.Bases, BaseClass{
						Access:  fields[0],
						Virtual: fields[1] == "yes",
						Class:   parseRef(fields[2]),
						Loc:     parseLocFields(fields[3:6]),
					})
				}
			case "cfriend":
				flushMember()
				curClass.Friends = append(curClass.Friends, rest)
			case "cfunc":
				flushMember()
				fields := strings.Fields(rest)
				if len(fields) >= 4 {
					curClass.Funcs = append(curClass.Funcs, FuncRef{
						Routine: parseRef(fields[0]),
						Loc:     parseLocFields(fields[1:4]),
					})
				}
			case "cmem":
				flushMember()
				curMember = &Member{Name: rest}
			case "cmloc":
				if curMember != nil {
					curMember.Loc = parseLoc(rest)
				}
			case "cmacs":
				if curMember != nil {
					curMember.Access = rest
				}
			case "cmkind":
				if curMember != nil {
					curMember.Kind = rest
				}
			case "cmtype":
				if curMember != nil {
					curMember.Type = parseRef(rest)
				}
			case "cmstatic":
				if curMember != nil {
					curMember.Static = rest == "yes"
				}
			case "cpos":
				flushMember()
				curClass.Pos = parsePos(rest)
			}
		case curType != nil:
			switch attr {
			case "ykind":
				curType.Kind = rest
			case "yikind":
				curType.IntKind = rest
			case "yptr", "yref", "yelem":
				curType.Elem = parseRef(rest)
			case "ynelem":
				curType.ArrayLen, _ = strconv.ParseInt(rest, 10, 64)
			case "ytref":
				curType.Tref = parseRef(rest)
			case "yqual":
				curType.Qual = strings.Fields(rest)
			case "yclass":
				curType.Class = parseRef(rest)
			case "yenum":
				curType.Enum = parseRef(rest)
			case "yrett":
				curType.Ret = parseRef(rest)
			case "yargt":
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					curType.Args = append(curType.Args, parseRef(fields[0]))
				}
				if len(fields) >= 2 && fields[1] == "T" {
					curType.Ellipsis = true
				}
			case "yellip":
				curType.Ellipsis = rest == "T"
			}
		case curNamespace != nil:
			switch attr {
			case "nloc":
				curNamespace.Loc = parseLoc(rest)
			case "nparent":
				curNamespace.Parent = parseRef(rest)
			case "nalias":
				curNamespace.Alias = rest
			case "nmem":
				curNamespace.Members = append(curNamespace.Members, rest)
			}
		case curMacro != nil:
			switch attr {
			case "mloc":
				curMacro.Loc = parseLoc(rest)
			case "mkind":
				curMacro.Kind = rest
			case "mtext":
				curMacro.Text = rest
			}
		default:
			return nil, fmt.Errorf("line %d: attribute %q outside any item", lineNo, attr)
		}
	}
	reset()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("empty input: missing <PDB> header")
	}
	return p, nil
}

// parseItemHead recognizes "xx#N name..." lines.
func parseItemHead(line string) (id int, name, prefix string, ok bool) {
	hash := strings.Index(line, "#")
	if hash != 2 {
		return 0, "", "", false
	}
	prefix = line[:2]
	switch prefix {
	case PrefixSourceFile, PrefixRoutine, PrefixClass, PrefixType,
		PrefixTemplate, PrefixNamespace, PrefixMacro:
	default:
		return 0, "", "", false
	}
	rest := line[3:]
	sp := strings.IndexByte(rest, ' ')
	numStr := rest
	if sp >= 0 {
		numStr = rest[:sp]
		name = rest[sp+1:]
	}
	n, err := strconv.Atoi(numStr)
	if err != nil {
		return 0, "", "", false
	}
	return n, name, prefix, true
}

// parseRef parses "xx#N" or "NA".
func parseRef(s string) Ref {
	s = strings.TrimSpace(s)
	if s == "" || s == "NA" || s == "NULL" {
		return Ref{}
	}
	hash := strings.Index(s, "#")
	if hash != 2 {
		return Ref{}
	}
	id, err := strconv.Atoi(s[hash+1:])
	if err != nil {
		return Ref{}
	}
	return Ref{Prefix: s[:2], ID: id}
}

// parseLoc parses "so#N line col" or "NULL 0 0".
func parseLoc(s string) Loc {
	return parseLocFields(strings.Fields(s))
}

func parseLocFields(fields []string) Loc {
	if len(fields) < 3 {
		return Loc{}
	}
	ref := parseRef(fields[0])
	if !ref.Valid() {
		return Loc{}
	}
	line, _ := strconv.Atoi(fields[1])
	col, _ := strconv.Atoi(fields[2])
	return Loc{File: ref, Line: line, Col: col}
}

// parsePos parses four locations (12 fields).
func parsePos(s string) Pos {
	fields := strings.Fields(s)
	if len(fields) < 12 {
		return Pos{}
	}
	return Pos{
		HeaderBegin: parseLocFields(fields[0:3]),
		HeaderEnd:   parseLocFields(fields[3:6]),
		BodyBegin:   parseLocFields(fields[6:9]),
		BodyEnd:     parseLocFields(fields[9:12]),
	}
}
