package pdb

import "math/rand"

// RandPDB exposes the property-test generator of quick_test.go to the
// external test package, so the fuzz corpus can seed from arbitrary
// well-formed databases.
func RandPDB(r *rand.Rand) *PDB { return randPDB(r) }
