package pdb

import (
	"strings"
	"testing"

	"pdt/internal/faultio"
)

// reassemble runs the two parallel-reader stages sequentially: split
// into blocks, parse each, append in order.
func reassemble(input string, maxLineBytes int) (*PDB, error) {
	out := &PDB{}
	err := SplitBlocks(strings.NewReader(input), maxLineBytes, func(b Block) error {
		frag, perr := ParseBlock(b)
		if perr != nil {
			return perr
		}
		out.AppendItems(frag)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func TestSplitBlocksMatchesRead(t *testing.T) {
	var sb strings.Builder
	if err := samplePDB().Write(&sb); err != nil {
		t.Fatal(err)
	}
	input := sb.String()

	seq, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	par, err := reassemble(input, DefaultMaxLineBytes)
	if err != nil {
		t.Fatal(err)
	}
	var w1, w2 strings.Builder
	if err := seq.Write(&w1); err != nil {
		t.Fatal(err)
	}
	if err := par.Write(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Error("block reassembly differs from sequential read")
	}
}

func TestSplitBlocksErrors(t *testing.T) {
	cases := []string{
		"",
		"ro#1 orphan\n",
		"<PDB 1.0>\nrcall ro#1 no so#1 1 1\n",
	}
	for _, input := range cases {
		_, seqErr := Read(strings.NewReader(input))
		_, splitErr := reassemble(input, DefaultMaxLineBytes)
		if seqErr == nil || splitErr == nil {
			t.Fatalf("input %q: expected both paths to fail (seq %v, split %v)",
				input, seqErr, splitErr)
		}
		if seqErr.Error() != splitErr.Error() {
			t.Errorf("input %q: split error %q, sequential %q",
				input, splitErr, seqErr)
		}
	}
}

// FuzzSplitBlocksMatchesRead is the block splitter's equivalence
// oracle: for any input, splitting + per-block parsing must agree with
// the sequential reader on both the result bytes and the error text.
func FuzzSplitBlocksMatchesRead(f *testing.F) {
	f.Add("<PDB 1.0>\n\nso#1 a.h\n\nro#2 f\n  loc so#1 3 1\n")
	f.Add("")
	f.Add("<PDB 1.0>")
	f.Add("junk\n")
	f.Add("<PDB 1.0>\nrcall ro#1 no so#1 1 1\n")
	f.Add("<PDB 1.0>\nso#1 a.h\nincl so#2\nty#3 int\n  kind int\n")
	f.Add("<PDB 1.0>\r\nso#1 a.h\r\n\r\ncl#2 C\r\n  member m pub var ty#3 so#1 1 1\r\n")
	// Corrupted-block seeds (deterministic faultio damage over a clean
	// database) so the equivalence oracle covers recovery-shaped inputs.
	clean := "<PDB 1.0>\n\nso#1 a.h\nsinc so#2\n\nso#2 b.h\n\ncl#1 C\ncloc so#1 3 7\nckind class\n\nro#1 f\nrloc so#1 9 1\n"
	for seed := int64(1); seed <= 3; seed++ {
		corrupted, _ := faultio.CorruptBytes([]byte(clean), seed, 4)
		f.Add(string(corrupted))
	}
	f.Fuzz(func(t *testing.T, input string) {
		const limit = 1 << 16
		seq, seqErr := ReadLimit(strings.NewReader(input), limit)
		par, splitErr := reassemble(input, limit)
		if (seqErr == nil) != (splitErr == nil) {
			t.Fatalf("error mismatch: sequential %v, split %v", seqErr, splitErr)
		}
		if seqErr != nil {
			if seqErr.Error() != splitErr.Error() {
				t.Fatalf("error text mismatch: sequential %q, split %q", seqErr, splitErr)
			}
			return
		}
		var w1, w2 strings.Builder
		if err := seq.Write(&w1); err != nil {
			t.Fatal(err)
		}
		if err := par.Write(&w2); err != nil {
			t.Fatal(err)
		}
		if w1.String() != w2.String() {
			t.Fatalf("output mismatch for %q:\nsequential:\n%s\nsplit:\n%s",
				input, w1.String(), w2.String())
		}
	})
}
