package pdb_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/faultio"
	"pdt/internal/pdb"
)

// roundTripBinary encodes p and decodes the bytes strictly.
func roundTripBinary(t *testing.T, p *pdb.PDB) *pdb.PDB {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := pdb.ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	return back
}

// TestBinaryRoundTripGolden: ascii → binary → ascii over the golden
// database must be byte-identical.
func TestBinaryRoundTripGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "lintdemo.pdb"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := pdb.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ascii1 := p.String()
	back := roundTripBinary(t, p)
	if ascii2 := back.String(); ascii1 != ascii2 {
		t.Fatalf("ascii -> binary -> ascii is not byte-identical:\n--- before ---\n%s\n--- after ---\n%s", ascii1, ascii2)
	}
}

// TestBinaryRoundTripRandom: the binary codec must preserve every
// model field of arbitrary generated databases, including ones the
// ASCII writer would normalize away.
func TestBinaryRoundTripRandom(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := pdb.RandPDB(rand.New(rand.NewSource(seed)))
		back := roundTripBinary(t, p)
		if a, b := p.String(), back.String(); a != b {
			t.Fatalf("seed %d: binary round-trip changed the ascii rendering:\n--- before ---\n%s\n--- after ---\n%s", seed, a, b)
		}
		if a, b := p.ItemCount(), back.ItemCount(); a != b {
			t.Fatalf("seed %d: item count drifted %d -> %d", seed, a, b)
		}
	}
}

// TestBinaryRoundTripOddFields covers model states the generators
// rarely produce: negative IDs, refs with unusual prefixes, set
// ellipsis with no args, empty strings that the ASCII writer would
// replace with defaults.
func TestBinaryRoundTripOddFields(t *testing.T) {
	p := &pdb.PDB{
		Files: []*pdb.SourceFile{{ID: -3, Name: "a b c.h", System: true,
			Includes: []pdb.Ref{{Prefix: "so", ID: -9}, {}}}},
		Types: []*pdb.Type{{ID: 7, Name: "", Kind: "func", Ellipsis: true,
			ArrayLen: -1, Args: nil, Ret: pdb.Ref{Prefix: "zz", ID: 4}}},
		Routines: []*pdb.Routine{{ID: 1, Name: "f", Access: "", Kind: "",
			Loc: pdb.Loc{File: pdb.Ref{Prefix: "so", ID: -3}, Line: -5, Col: 0}}},
	}
	back := roundTripBinary(t, p)
	if got := back.Files[0].Includes[0].ID; got != -9 {
		t.Errorf("negative include ref ID lost: %d", got)
	}
	if !back.Types[0].Ellipsis || back.Types[0].ArrayLen != -1 {
		t.Errorf("type flags lost: %+v", back.Types[0])
	}
	if back.Routines[0].Loc.Line != -5 {
		t.Errorf("negative line lost: %+v", back.Routines[0].Loc)
	}
	if got := back.Types[0].Ret.Prefix; got != "zz" {
		t.Errorf("odd ref prefix lost: %q", got)
	}
	if a, b := p.String(), back.String(); a != b {
		t.Fatalf("ascii rendering changed:\n%s\nvs\n%s", a, b)
	}
}

// TestBinaryDeterministic: the same model must always encode to the
// same bytes, so content-addressed caches can key on the encoding.
func TestBinaryDeterministic(t *testing.T) {
	p := pdb.RandPDB(rand.New(rand.NewSource(42)))
	var b1, b2 bytes.Buffer
	if err := p.WriteBinary(&b1); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBinary(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two encodings of the same model differ")
	}
}

// TestReadAutoDetects: pdb.Read and pdb.ReadLenient must accept both
// encodings without being told which one they are looking at.
func TestReadAutoDetects(t *testing.T) {
	p := pdb.RandPDB(rand.New(rand.NewSource(7)))
	ascii := p.String()
	var bin bytes.Buffer
	if err := p.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}

	fromASCII, err := pdb.Read(strings.NewReader(ascii))
	if err != nil {
		t.Fatalf("Read(ascii): %v", err)
	}
	fromBin, err := pdb.Read(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("Read(binary): %v", err)
	}
	if fromASCII.String() != fromBin.String() {
		t.Fatal("auto-detected reads disagree between encodings")
	}

	lb, diags, err := pdb.ReadLenient(bytes.NewReader(bin.Bytes()), pdb.DefaultMaxLineBytes, "x.pdb")
	if err != nil {
		t.Fatalf("ReadLenient(binary): %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("clean binary stream produced diagnostics: %v", diags)
	}
	if lb.String() != fromBin.String() {
		t.Fatal("lenient binary read disagrees with strict")
	}
}

// TestBinaryStrictErrors: every class of damage must surface as a
// structured error naming what went wrong, never a panic or a silent
// misparse.
func TestBinaryStrictErrors(t *testing.T) {
	p := pdb.RandPDB(rand.New(rand.NewSource(3)))
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"not binary", func(b []byte) []byte { return []byte("<PDB 1.0>\n") }, "missing PDTB magic"},
		{"truncated magic", func(b []byte) []byte { return b[:2] }, "missing PDTB magic"},
		{"bad version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 0xFF
			return c
		}, "unsupported binary PDB version"},
		{"truncated header", func(b []byte) []byte { return b[:6] }, "truncated"},
		{"payload damage", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xFF
			return c
		}, "checksum mismatch"},
		{"truncated payloads", func(b []byte) []byte { return b[:len(b)-4] }, "overruns"},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 1, 2, 3) }, "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := pdb.ReadBinary(bytes.NewReader(tc.mutate(clean)))
			if err == nil {
				t.Fatal("strict read accepted damaged input")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestBinaryLenientRecoversUntouchedSections is the binary recovery
// contract: damage confined to one section's payload drops that
// section with one diagnostic and preserves every other section's
// items intact.
func TestBinaryLenientRecoversUntouchedSections(t *testing.T) {
	var p *pdb.PDB
	for seed := int64(1); ; seed++ {
		p = pdb.RandPDB(rand.New(rand.NewSource(seed)))
		if len(p.Routines) > 0 && len(p.Classes) > 0 && len(p.Files) > 0 {
			break
		}
		if seed > 100 {
			t.Fatal("generator never produced routines+classes+files")
		}
	}
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Find the routines section via a probe: flip one byte at a time
	// from the end until the strict error names the routines section,
	// then hand that damaged stream to the lenient reader.
	var damaged []byte
	for i := len(clean) - 1; i > 0; i-- {
		c := append([]byte(nil), clean...)
		c[i] ^= 0xA5
		_, err := pdb.ReadBinary(bytes.NewReader(c))
		if err != nil && strings.Contains(err.Error(), "routines section") {
			damaged = c
			break
		}
	}
	if damaged == nil {
		t.Fatal("could not construct a routines-section-only corruption")
	}

	got, diags, err := pdb.ReadBinaryLenient(bytes.NewReader(damaged), "dmg.pdb")
	if err != nil {
		t.Fatalf("lenient read errored on format damage: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Tag != "routines" || d.File != "dmg.pdb" || d.Cause == "" {
		t.Fatalf("diagnostic not structured: %+v", d)
	}
	if len(got.Routines) != 0 {
		t.Fatalf("damaged routines section still produced %d routines", len(got.Routines))
	}
	if len(got.Files) != len(p.Files) || len(got.Classes) != len(p.Classes) ||
		len(got.Types) != len(p.Types) || len(got.Templates) != len(p.Templates) ||
		len(got.Namespaces) != len(p.Namespaces) || len(got.Macros) != len(p.Macros) {
		t.Fatalf("untouched sections not fully recovered: got %d/%d/%d/%d/%d/%d items",
			len(got.Files), len(got.Classes), len(got.Types), len(got.Templates),
			len(got.Namespaces), len(got.Macros))
	}
	// The recovered files must match the originals byte-for-byte.
	want := &pdb.PDB{Files: p.Files, Classes: p.Classes, Types: p.Types,
		Templates: p.Templates, Namespaces: p.Namespaces, Macros: p.Macros}
	if got.String() != want.String() {
		t.Fatal("recovered sections differ from the originals")
	}
}

// TestBinaryLenientSeededDamage: under seeded random corruption the
// lenient reader must never error, and any surviving items must come
// only from checksum-clean sections (no silent misparses).
func TestBinaryLenientSeededDamage(t *testing.T) {
	p := pdb.RandPDB(rand.New(rand.NewSource(23)))
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for seed := int64(1); seed <= 64; seed++ {
		damaged, _ := faultio.CorruptBytes(clean, seed, 1+int(seed%7))
		got, diags, err := pdb.ReadBinaryLenient(bytes.NewReader(damaged), "seeded.pdb")
		if err != nil {
			t.Fatalf("seed %d: lenient read errored: %v", seed, err)
		}
		if bytes.Equal(damaged, clean) {
			continue
		}
		// Structured diagnostics: every entry names the input and a
		// cause; section-level entries carry the section name.
		for _, d := range diags {
			if d.File != "seeded.pdb" || d.Cause == "" {
				t.Fatalf("seed %d: unstructured diagnostic %+v", seed, d)
			}
		}
		if got.ItemCount() > p.ItemCount() {
			t.Fatalf("seed %d: corruption grew the database: %d -> %d items",
				seed, p.ItemCount(), got.ItemCount())
		}
	}
}
