// Package pdb defines the program database (PDB) document model and its
// compact, portable ASCII serialization — the format of the paper's
// §3.2, Table 1 and Figure 3.
//
// A PDB is a flat list of items, each identified by a prefixed ID
// ("so#66", "ro#7", "cl#8", "ty#2058", "te#559", "na#3", "ma#12").
// Item attributes follow on subsequent lines, each introduced by a
// short attribute keyword whose first letter repeats the item prefix
// ("rloc", "rcall", "cmem", "ykind", ...). Items are separated by blank
// lines; the file begins with the header "<PDB 1.0>".
package pdb

import "fmt"

// Version is the format version written in the header line.
const Version = "1.0"

// Item prefixes (Table 1).
const (
	PrefixSourceFile = "so"
	PrefixRoutine    = "ro"
	PrefixClass      = "cl"
	PrefixType       = "ty"
	PrefixTemplate   = "te"
	PrefixNamespace  = "na"
	PrefixMacro      = "ma"
)

// Ref is a typed reference to another item: prefix + numeric ID.
// The zero Ref is "no reference".
type Ref struct {
	Prefix string
	ID     int
}

// Valid reports whether the reference points at an item.
func (r Ref) Valid() bool { return r.ID != 0 }

func (r Ref) String() string {
	if !r.Valid() {
		return "NA"
	}
	return fmt.Sprintf("%s#%d", r.Prefix, r.ID)
}

// Loc is a source location within the PDB: a file item reference plus
// 1-based line and column. An invalid FileRef renders as "NULL 0 0"
// (Figure 3's te#559 tpos).
type Loc struct {
	File Ref
	Line int
	Col  int
}

// Valid reports whether the location points into a file.
func (l Loc) Valid() bool { return l.File.Valid() }

func (l Loc) String() string {
	if !l.Valid() {
		return "NULL 0 0"
	}
	return fmt.Sprintf("%s %d %d", l.File, l.Line, l.Col)
}

// Pos is the four-position extent of a "fat" item: header begin/end and
// body begin/end (the paper's rpos/cpos/tpos attributes).
type Pos struct {
	HeaderBegin Loc
	HeaderEnd   Loc
	BodyBegin   Loc
	BodyEnd     Loc
}

// Valid reports whether any of the four positions is set.
func (p Pos) Valid() bool {
	return p.HeaderBegin.Valid() || p.BodyBegin.Valid()
}

// SourceFile is a "so" item.
type SourceFile struct {
	ID   int
	Name string
	// Includes lists directly included files (the "sinc" attribute).
	Includes []Ref
	// System marks built-in/system headers.
	System bool
}

// Call is one "rcall" attribute: callee, virtualness, call location.
type Call struct {
	Callee  Ref
	Virtual bool
	Loc     Loc
}

// Routine is a "ro" item.
type Routine struct {
	ID   int
	Name string
	Loc  Loc
	// Class is the parent class ("rclass"), Namespace the parent
	// namespace ("rns"); at most one is valid.
	Class     Ref
	Namespace Ref
	Access    string // pub/prot/priv/NA ("racs")
	Signature Ref    // "rsig"
	Linkage   string // "rlink"
	Storage   string // "rstore"
	Virtual   string // no/virt/pure ("rvirt")
	Kind      string // fun/ctor/dtor/op/conv ("rkind")
	Template  Ref    // originating template ("rtempl")
	Calls     []Call
	Pos       Pos
	Static    bool
	Inline    bool
	Const     bool
}

// Member is one data member of a class ("cmem" with cm* sub-attributes).
type Member struct {
	Name   string
	Loc    Loc
	Access string
	Kind   string // "var", "type", ...
	Type   Ref
	Static bool
}

// BaseClass is a "cbase" attribute.
type BaseClass struct {
	Access  string
	Virtual bool
	Class   Ref
	Loc     Loc
}

// FuncRef is a "cfunc" attribute: a member function with its location.
type FuncRef struct {
	Routine Ref
	Loc     Loc
}

// Class is a "cl" item.
type Class struct {
	ID        int
	Name      string
	Loc       Loc
	Kind      string // class/struct/union ("ckind")
	Parent    Ref    // enclosing class ("cparent")
	Namespace Ref    // enclosing namespace ("cns")
	Access    string
	Template  Ref // originating template ("ctempl"); absent for
	// specializations in the paper-faithful scan mode
	Bases   []BaseClass
	Friends []string
	Funcs   []FuncRef
	Members []Member
	Pos     Pos
	// Specialization marks explicit specializations ("cspec yes").
	Specialization bool
	// Instantiation marks template instantiations ("cinst yes").
	Instantiation bool
}

// Type is a "ty" item.
type Type struct {
	ID   int
	Name string
	Kind string // "ykind": bool/int/.../ptr/ref/tref/array/func/class/enum
	// IntKind is the "yikind" integer-kind detail for integral types.
	IntKind string
	// Elem is the referent for ptr ("yptr"), ref ("yref"), array
	// ("yelem").
	Elem Ref
	// Tref is the unqualified type of a tref ("ytref"); Qual lists the
	// qualifiers ("yqual").
	Tref Ref
	Qual []string
	// Class/Enum link named types ("yclass"/"yenum").
	Class Ref
	Enum  Ref
	// Func parts: return ("yrett"), arguments ("yargt" with an
	// ellipsis flag).
	Ret      Ref
	Args     []Ref
	Ellipsis bool
	// ArrayLen is the element count of arrays (-1 unknown).
	ArrayLen int64
}

// Template is a "te" item.
type Template struct {
	ID   int
	Name string
	Loc  Loc
	// Kind is class/func/memfunc/statmem ("tkind").
	Kind      string
	Class     Ref // parent class
	Namespace Ref // parent namespace
	Access    string
	Text      string // "ttext", single-line normalized declaration text
	Pos       Pos
}

// Namespace is a "na" item.
type Namespace struct {
	ID      int
	Name    string
	Loc     Loc
	Parent  Ref // enclosing namespace
	Members []string
	// Alias names the target namespace for alias items ("nalias").
	Alias string
}

// Macro is a "ma" item.
type Macro struct {
	ID   int
	Name string
	Loc  Loc
	Kind string // def/undef ("mkind")
	Text string // "mtext"
}

// PDB is a whole program database.
type PDB struct {
	Files      []*SourceFile
	Routines   []*Routine
	Classes    []*Class
	Types      []*Type
	Templates  []*Template
	Namespaces []*Namespace
	Macros     []*Macro

	// Recovered carries the diagnostics of a lenient (recovering) parse
	// — the malformed spans ReadLenient skipped to keep going. It is
	// not part of the serialized format: Write ignores it, and strict
	// reads leave it empty.
	Recovered []Diagnostic
}

// FileByID returns the source file with the given ID, or nil.
func (p *PDB) FileByID(id int) *SourceFile {
	for _, f := range p.Files {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// RoutineByID returns the routine with the given ID, or nil.
func (p *PDB) RoutineByID(id int) *Routine {
	for _, r := range p.Routines {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// ClassByID returns the class with the given ID, or nil.
func (p *PDB) ClassByID(id int) *Class {
	for _, c := range p.Classes {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// TypeByID returns the type with the given ID, or nil.
func (p *PDB) TypeByID(id int) *Type {
	for _, t := range p.Types {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// TemplateByID returns the template with the given ID, or nil.
func (p *PDB) TemplateByID(id int) *Template {
	for _, t := range p.Templates {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// NamespaceByID returns the namespace with the given ID, or nil.
func (p *PDB) NamespaceByID(id int) *Namespace {
	for _, n := range p.Namespaces {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// ItemCount returns the total number of items.
func (p *PDB) ItemCount() int {
	return len(p.Files) + len(p.Routines) + len(p.Classes) + len(p.Types) +
		len(p.Templates) + len(p.Namespaces) + len(p.Macros)
}
