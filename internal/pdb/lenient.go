package pdb

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file is the recovering (lenient) parse mode: where the strict
// reader of read.go aborts on the first malformed input, the lenient
// reader skips the damaged span, records a structured Diagnostic, and
// keeps parsing — the discipline a production-scale ingest needs when
// truncated writes, partial reads, and hand-edited databases are
// routine. Strict mode is untouched: Read/ReadLimit and SplitBlocks
// behave byte-for-byte as before, and the lenient path is a separate
// entry point callers opt into (internal/pdbio's WithLenient).

// Diagnostic describes one recovered-from defect in a PDB stream: the
// input it came from, the 1-based line span that was skipped, the tag
// of the item block involved ("ro#7", "" when no item was open), and
// the cause. Skipped raw lines are retained so callers can quarantine
// them for post-mortem without rereading the input.
type Diagnostic struct {
	File      string   // input path; "" for anonymous streams
	StartLine int      // first line of the skipped span (1-based)
	EndLine   int      // last line of the skipped span
	Tag       string   // item tag of the enclosing/afflicted block
	Cause     string   // what was wrong
	Skipped   []string // raw text of the skipped lines
}

func (d Diagnostic) String() string {
	file := d.File
	if file == "" {
		file = "<stream>"
	}
	span := fmt.Sprintf("%d", d.StartLine)
	if d.EndLine > d.StartLine {
		span = fmt.Sprintf("%d-%d", d.StartLine, d.EndLine)
	}
	if d.Tag != "" {
		return fmt.Sprintf("%s:%s: [%s] %s", file, span, d.Tag, d.Cause)
	}
	return fmt.Sprintf("%s:%s: %s", file, span, d.Cause)
}

// knownAttrs lists, per item prefix, the attribute keywords the parser
// understands. The lenient reader treats anything else inside an item
// block as evidence of corruption; the strict reader keeps its historic
// behavior of silently ignoring unknown keywords.
var knownAttrs = map[string]map[string]bool{
	PrefixSourceFile: attrSet("sinc", "ssys"),
	PrefixTemplate:   attrSet("tloc", "tkind", "tclass", "tns", "tacs", "ttext", "tpos"),
	PrefixRoutine: attrSet("rloc", "rclass", "rns", "racs", "rsig", "rkind", "rlink",
		"rstore", "rvirt", "rstatic", "rinline", "rconst", "rtempl", "rcall", "rpos"),
	PrefixClass: attrSet("cloc", "ckind", "cparent", "cns", "cacs", "ctempl", "cinst",
		"cspec", "cbase", "cfriend", "cfunc", "cmem", "cmloc", "cmacs", "cmkind",
		"cmtype", "cmstatic", "cpos"),
	PrefixType: attrSet("ykind", "yikind", "yptr", "yref", "yelem", "ynelem", "ytref",
		"yqual", "yclass", "yenum", "yrett", "yargt", "yellip"),
	PrefixNamespace: attrSet("nloc", "nparent", "nalias", "nmem"),
	PrefixMacro:     attrSet("mloc", "mkind", "mtext"),
}

func attrSet(keys ...string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

// maxSkippedLineBytes bounds how much of one damaged line a Diagnostic
// retains for quarantine; the tail of a multi-megabyte line adds no
// forensic value.
const maxSkippedLineBytes = 4096

// ReadLenient parses a PDB stream in recovering mode, auto-detecting
// the encoding like Read: binary streams route to ReadBinaryLenient
// (whose unit of recovery is the checksummed section instead of the
// line span). For ASCII input: malformed spans —
// a damaged header, over-long lines, corrupted item heads, unknown
// attribute keywords, attributes outside any item — are skipped with
// one Diagnostic per span instead of aborting the parse. The returned
// error is reserved for real I/O failures from r; format damage never
// produces one. file names the input in diagnostics, which are also
// attached to the returned database as PDB.Recovered.
//
// Recovery discipline: a malformed line closes the item block it
// appears in (attributes parsed so far are kept) and parsing skips to
// the next well-formed item head. An item whose block the damage never
// touched is therefore always preserved intact — the invariant the
// fault-injection property tests pin down.
func ReadLenient(r io.Reader, maxLineBytes int, file string) (*PDB, []Diagnostic, error) {
	br := bufio.NewReader(r)
	if sniffBinary(br) {
		return ReadBinaryLenient(br, file)
	}
	p := &PDB{}
	ip := itemParser{out: p}
	sc := newLenientLineScanner(br, maxLineBytes)

	var diags []Diagnostic
	sawHeader := false
	skipping := false // dropping lines until the next well-formed item head
	curTag := ""      // tag of the open item block, "" when none
	var pending *Diagnostic

	flushDiag := func() {
		if pending != nil {
			diags = append(diags, *pending)
			pending = nil
		}
	}
	clip := func(raw string) string {
		if len(raw) > maxSkippedLineBytes {
			return raw[:maxSkippedLineBytes] + "..."
		}
		return raw
	}
	// malformed opens a skip span at lineNo: the open item is closed
	// (keeping its attributes so far) and lines are dropped until the
	// next well-formed item head.
	malformed := func(lineNo int, raw, cause string) {
		flushDiag()
		pending = &Diagnostic{File: file, StartLine: lineNo, EndLine: lineNo,
			Tag: curTag, Cause: cause, Skipped: []string{clip(raw)}}
		ip.finish()
		curTag = ""
		skipping = true
	}

	lineNo := 0
	for sc.scan() {
		lineNo++
		if sc.truncated {
			malformed(lineNo, sc.text,
				fmt.Sprintf("line exceeds the %d-byte limit", sc.max))
			continue
		}
		trimmed := strings.TrimSpace(strings.TrimRight(sc.text, "\r\n"))
		if trimmed == "" {
			continue
		}
		if !sawHeader {
			sawHeader = true
			if strings.HasPrefix(trimmed, "<PDB") {
				continue
			}
			diags = append(diags, Diagnostic{File: file, StartLine: lineNo,
				EndLine: lineNo, Cause: "missing or damaged <PDB> header"})
			// Fall through: the line itself may be a usable item head.
		}
		if id, name, prefix, ok := parseItemHead(trimmed); ok {
			flushDiag()
			skipping = false
			ip.startItem(id, name, prefix)
			curTag = fmt.Sprintf("%s#%d", prefix, id)
			continue
		}
		if skipping {
			// Extend the open skip span through this line.
			pending.EndLine = lineNo
			pending.Skipped = append(pending.Skipped, clip(trimmed))
			continue
		}
		attr, _, _ := strings.Cut(trimmed, " ")
		switch {
		case strings.Index(attr, "#") == 2:
			// Head-shaped but unparseable: a corrupted item head. The
			// attribute lines that follow belong to an item we cannot
			// identify, so they are skipped with it.
			malformed(lineNo, trimmed, fmt.Sprintf("malformed item head %q", attr))
		case curTag == "":
			malformed(lineNo, trimmed, fmt.Sprintf("attribute %q outside any item", attr))
		case !knownAttrs[curTag[:2]][attr]:
			malformed(lineNo, trimmed, fmt.Sprintf("unknown attribute %q for %s", attr, curTag))
		default:
			ip.attrLine(trimmed)
		}
	}
	ip.finish()
	flushDiag()
	if err := sc.err; err != nil {
		return nil, diags, err
	}
	if !sawHeader {
		diags = append(diags, Diagnostic{File: file, StartLine: 1, EndLine: 1,
			Cause: "empty input: missing <PDB> header"})
	}
	p.Recovered = diags
	return p, diags, nil
}

// lenientLineScanner reads physical lines like the strict scanner but
// survives over-long lines: instead of bufio.ErrTooLong poisoning the
// whole stream, the oversized remainder is discarded in place (memory
// stays bounded by the line limit, not the line length) and the line is
// delivered with truncated set, so the caller can diagnose it and keep
// going.
type lenientLineScanner struct {
	br        *bufio.Reader
	max       int
	text      string
	truncated bool
	err       error
	done      bool
}

func newLenientLineScanner(r io.Reader, maxLineBytes int) *lenientLineScanner {
	if maxLineBytes <= 0 {
		maxLineBytes = DefaultMaxLineBytes
	}
	size := 64 * 1024
	if size > maxLineBytes {
		size = maxLineBytes
	}
	if size < 16 {
		size = 16
	}
	return &lenientLineScanner{br: bufio.NewReaderSize(r, size), max: maxLineBytes}
}

// scan advances to the next line, reporting false at end of stream or
// on a read error (check err afterwards; io.EOF is not an error).
func (s *lenientLineScanner) scan() bool {
	if s.done {
		return false
	}
	s.text, s.truncated = "", false
	var sb strings.Builder
	overflow := false
	for {
		chunk, err := s.br.ReadSlice('\n')
		if room := s.max + 1 - sb.Len(); room > 0 {
			if room > len(chunk) {
				room = len(chunk)
			}
			sb.Write(chunk[:room])
		} else {
			overflow = true
		}
		switch err {
		case nil:
			// Newline found: the line is complete.
		case bufio.ErrBufferFull:
			continue // still the same line: keep draining
		case io.EOF:
			s.done = true
			if sb.Len() == 0 {
				return false
			}
		default:
			s.done = true
			s.err = err
			// A partial line before the error is still delivered; the
			// caller sees the error after the final scan.
			if sb.Len() == 0 {
				return false
			}
		}
		line := strings.TrimSuffix(sb.String(), "\n")
		if overflow || len(line) > s.max {
			if len(line) > s.max {
				line = line[:s.max]
			}
			s.text, s.truncated = line, true
		} else {
			s.text = line
		}
		return true
	}
}
