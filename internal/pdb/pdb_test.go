package pdb

import (
	"reflect"
	"strings"
	"testing"
)

// samplePDB builds a database exercising every item type and attribute.
func samplePDB() *PDB {
	soRef := func(id int) Ref { return Ref{Prefix: PrefixSourceFile, ID: id} }
	loc := func(f, l, c int) Loc { return Loc{File: soRef(f), Line: l, Col: c} }
	return &PDB{
		Files: []*SourceFile{
			{ID: 66, Name: "StackAr.h", Includes: []Ref{soRef(71), soRef(72), soRef(73)}},
			{ID: 71, Name: "/pdt/include/kai/vector.h", System: true},
			{ID: 72, Name: "dsexceptions.h"},
			{ID: 73, Name: "StackAr.cpp"},
			{ID: 75, Name: "TestStackAr.cpp", Includes: []Ref{soRef(66)}},
		},
		Templates: []*Template{
			{ID: 559, Name: "Stack", Loc: loc(66, 23, 15), Kind: "class",
				Text: "template <class Object> class Stack {...};",
				Pos: Pos{
					HeaderBegin: loc(66, 22, 9), HeaderEnd: Loc{},
					BodyBegin: loc(66, 23, 9), BodyEnd: loc(66, 40, 9),
				}},
			{ID: 566, Name: "push", Loc: loc(73, 72, 14), Kind: "memfunc"},
		},
		Routines: []*Routine{
			{ID: 7, Name: "push", Loc: loc(73, 72, 29),
				Class:  Ref{Prefix: PrefixClass, ID: 8},
				Access: "pub", Signature: Ref{Prefix: PrefixType, ID: 2058},
				Linkage: "C++", Storage: "NA", Virtual: "no", Kind: "fun",
				Template: Ref{Prefix: PrefixTemplate, ID: 566},
				Calls: []Call{
					{Callee: Ref{Prefix: PrefixRoutine, ID: 32}, Virtual: false, Loc: loc(73, 74, 17)},
					{Callee: Ref{Prefix: PrefixRoutine, ID: 33}, Virtual: true, Loc: loc(73, 76, 21)},
				},
				Pos: Pos{HeaderBegin: loc(73, 72, 9), HeaderEnd: loc(73, 72, 52),
					BodyBegin: loc(73, 73, 9), BodyEnd: loc(73, 77, 9)},
			},
			{ID: 32, Name: "isFull", Loc: loc(73, 27, 29), Access: "pub",
				Virtual: "no", Kind: "fun", Linkage: "C++", Storage: "NA",
				Const: true, Inline: true, Static: false},
			{ID: 33, Name: "overflow", Access: "NA", Virtual: "virt",
				Kind: "ctor", Linkage: "C", Storage: "static", Static: true},
		},
		Classes: []*Class{
			{ID: 8, Name: "Stack<int>", Kind: "class",
				Template:      Ref{Prefix: PrefixTemplate, ID: 559},
				Instantiation: true,
				Bases: []BaseClass{
					{Access: "pub", Virtual: false, Class: Ref{Prefix: PrefixClass, ID: 2}, Loc: loc(66, 23, 30)},
				},
				Friends: []string{"Vector", "transpose"},
				Funcs: []FuncRef{
					{Routine: Ref{Prefix: PrefixRoutine, ID: 7}, Loc: loc(73, 72, 29)},
				},
				Members: []Member{
					{Name: "theArray", Loc: loc(66, 38, 28), Access: "priv",
						Kind: "var", Type: Ref{Prefix: PrefixType, ID: 63}},
					{Name: "topOfStack", Loc: loc(66, 39, 28), Access: "priv",
						Kind: "var", Type: Ref{Prefix: PrefixType, ID: 5}, Static: true},
				},
				Pos: Pos{HeaderBegin: loc(66, 23, 9), HeaderEnd: loc(66, 23, 19),
					BodyBegin: loc(66, 24, 9), BodyEnd: loc(66, 40, 9)},
			},
			{ID: 2, Name: "Base", Kind: "struct", Specialization: true},
		},
		Types: []*Type{
			{ID: 9, Name: "bool", Kind: "bool", IntKind: "char"},
			{ID: 5, Name: "int", Kind: "int", IntKind: "int"},
			{ID: 14, Name: "void", Kind: "void"},
			{ID: 49, Name: "const int &", Kind: "ref", Elem: Ref{Prefix: PrefixType, ID: 439}},
			{ID: 439, Name: "const int", Kind: "tref",
				Tref: Ref{Prefix: PrefixType, ID: 5}, Qual: []string{"const"}},
			{ID: 2054, Name: "bool () const", Kind: "func",
				Ret: Ref{Prefix: PrefixType, ID: 9}, Qual: []string{"const"}},
			{ID: 2058, Name: "void (const int &)", Kind: "func",
				Ret: Ref{Prefix: PrefixType, ID: 14}, Args: []Ref{{Prefix: PrefixType, ID: 49}}},
			{ID: 70, Name: "int [8]", Kind: "array",
				Elem: Ref{Prefix: PrefixType, ID: 5}, ArrayLen: 8},
			{ID: 71, Name: "int *", Kind: "ptr", Elem: Ref{Prefix: PrefixType, ID: 5}},
		},
		Namespaces: []*Namespace{
			{ID: 1, Name: "math", Loc: loc(66, 2, 11), Members: []string{"pi", "twice"}},
			{ID: 2, Name: "m", Alias: "math"},
		},
		Macros: []*Macro{
			{ID: 1, Name: "TAU_PROFILE", Loc: loc(73, 3, 9), Kind: "def",
				Text: "TAU_PROFILE(name, type, group) TauProfiler __tau(name, type, group)"},
			{ID: 2, Name: "NDEBUG", Loc: loc(73, 4, 9), Kind: "undef"},
		},
	}
}

func TestWriteHeaderAndShape(t *testing.T) {
	text := samplePDB().String()
	if !strings.HasPrefix(text, "<PDB 1.0>\n") {
		t.Errorf("missing header: %q", text[:20])
	}
	for _, want := range []string{
		"so#66 StackAr.h", "sinc so#71",
		"te#559 Stack", "tkind class", "tloc so#66 23 15",
		"ro#7 push", "rclass cl#8", "racs pub", "rsig ty#2058",
		"rcall ro#32 no so#73 74 17", "rcall ro#33 yes so#73 76 21",
		"rtempl te#566",
		"rpos so#73 72 9 so#73 72 52 so#73 73 9 so#73 77 9",
		"cl#8 Stack<int>", "ctempl te#559", "cmem theArray",
		"cmloc so#66 38 28", "cmacs priv", "cmkind var", "cmtype ty#63",
		"ty#9 bool", "ykind bool", "yikind char",
		"ty#439 const int", "ykind tref", "ytref ty#5", "yqual const",
		"ty#2058 void (const int &)", "yrett ty#14", "yargt ty#49 F",
		"na#1 math", "nmem pi",
		"ma#1 TAU_PROFILE", "mkind def",
		"tpos so#66 22 9 NULL 0 0 so#66 23 9 so#66 40 9",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := samplePDB()
	text := orig.String()
	parsed, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	text2 := parsed.String()
	if text != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestRoundTripSemantics(t *testing.T) {
	orig := samplePDB()
	parsed, err := Read(strings.NewReader(orig.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if parsed.ItemCount() != orig.ItemCount() {
		t.Fatalf("item count %d != %d", parsed.ItemCount(), orig.ItemCount())
	}
	r := parsed.RoutineByID(7)
	if r == nil || r.Name != "push" || len(r.Calls) != 2 {
		t.Fatalf("ro#7 = %+v", r)
	}
	if !r.Calls[1].Virtual || r.Calls[1].Loc.Line != 76 {
		t.Errorf("call 2 = %+v", r.Calls[1])
	}
	c := parsed.ClassByID(8)
	if c == nil || len(c.Members) != 2 || c.Members[1].Name != "topOfStack" {
		t.Fatalf("cl#8 = %+v", c)
	}
	if !c.Members[1].Static {
		t.Error("static member flag lost")
	}
	if !c.Instantiation || c.Template.ID != 559 {
		t.Errorf("instantiation attrs lost: %+v", c)
	}
	ty := parsed.TypeByID(439)
	if ty.Kind != "tref" || ty.Tref.ID != 5 || !reflect.DeepEqual(ty.Qual, []string{"const"}) {
		t.Errorf("ty#439 = %+v", ty)
	}
	ft := parsed.TypeByID(2058)
	if ft.Ret.ID != 14 || len(ft.Args) != 1 || ft.Args[0].ID != 49 || ft.Ellipsis {
		t.Errorf("ty#2058 = %+v", ft)
	}
	na := parsed.NamespaceByID(1)
	if na.Name != "math" || len(na.Members) != 2 {
		t.Errorf("na#1 = %+v", na)
	}
	ar := parsed.TypeByID(70)
	if ar.Kind != "array" || ar.ArrayLen != 8 {
		t.Errorf("ty#70 = %+v", ar)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read(strings.NewReader("ro#1 orphan\n")); err == nil {
		t.Error("missing header should fail")
	}
	if _, err := Read(strings.NewReader("<PDB 1.0>\nrcall ro#1 no so#1 1 1\n")); err == nil {
		t.Error("attribute outside item should fail")
	}
}

func TestRefParsing(t *testing.T) {
	cases := []struct {
		in   string
		want Ref
	}{
		{"ro#7", Ref{Prefix: "ro", ID: 7}},
		{"NA", Ref{}},
		{"NULL", Ref{}},
		{"bogus", Ref{}},
		{"ty#2058", Ref{Prefix: "ty", ID: 2058}},
	}
	for _, c := range cases {
		if got := parseRef(c.in); got != c.want {
			t.Errorf("parseRef(%q) = %+v want %+v", c.in, got, c.want)
		}
	}
}

func TestLocRendering(t *testing.T) {
	l := Loc{}
	if l.String() != "NULL 0 0" {
		t.Errorf("invalid loc renders %q", l.String())
	}
	l2 := Loc{File: Ref{Prefix: "so", ID: 3}, Line: 10, Col: 4}
	if l2.String() != "so#3 10 4" {
		t.Errorf("loc renders %q", l2.String())
	}
}

func TestOneLineText(t *testing.T) {
	p := &PDB{Templates: []*Template{{ID: 1, Name: "T",
		Text: "template <class X>\n  class T {\n  };", Kind: "class"}}}
	text := p.String()
	if !strings.Contains(text, "ttext template <class X> class T { };") {
		t.Errorf("ttext not normalized: %s", text)
	}
	parsed, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Templates[0].Text != "template <class X> class T { };" {
		t.Errorf("parsed ttext = %q", parsed.Templates[0].Text)
	}
}
