package pdb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateAcceptsSample(t *testing.T) {
	// The hand-built sample contains intentional references to items
	// it does not define (forward examples like ty#63), so build a
	// self-consistent subset instead.
	p := &PDB{
		Files: []*SourceFile{{ID: 1, Name: "a.h"}},
		Types: []*Type{
			{ID: 1, Name: "int", Kind: "int", IntKind: "int"},
			{ID: 2, Name: "int *", Kind: "ptr", Elem: Ref{Prefix: "ty", ID: 1}},
		},
		Classes: []*Class{{ID: 1, Name: "C", Kind: "class",
			Loc: Loc{File: Ref{Prefix: "so", ID: 1}, Line: 3, Col: 7},
			Members: []Member{{Name: "x", Access: "priv", Kind: "var",
				Type: Ref{Prefix: "ty", ID: 1}}}}},
		Routines: []*Routine{{ID: 1, Name: "f", Access: "pub",
			Class: Ref{Prefix: "cl", ID: 1}, Signature: Ref{Prefix: "ty", ID: 2}}},
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Errorf("valid PDB rejected: %v", errs)
	}
}

func TestValidateCatchesDanglingRefs(t *testing.T) {
	p := &PDB{
		Routines: []*Routine{{ID: 1, Name: "f",
			Class:     Ref{Prefix: "cl", ID: 99},
			Signature: Ref{Prefix: "ty", ID: 42}}},
	}
	errs := p.Validate()
	if len(errs) != 2 {
		t.Errorf("errors = %v", errs)
	}
}

func TestValidateCatchesDuplicateIDs(t *testing.T) {
	p := &PDB{Files: []*SourceFile{{ID: 1, Name: "a"}, {ID: 1, Name: "b"}}}
	if errs := p.Validate(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
}

func TestValidateCatchesWrongPrefix(t *testing.T) {
	p := &PDB{
		Types:    []*Type{{ID: 1, Name: "int", Kind: "int"}},
		Routines: []*Routine{{ID: 1, Name: "f", Signature: Ref{Prefix: "cl", ID: 1}}},
	}
	if errs := p.Validate(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
}

func TestValidateCatchesBadLocation(t *testing.T) {
	p := &PDB{
		Files: []*SourceFile{{ID: 1, Name: "a.h"}},
		Macros: []*Macro{{ID: 1, Name: "M",
			Loc: Loc{File: Ref{Prefix: "so", ID: 1}, Line: 0, Col: 5}}},
	}
	if errs := p.Validate(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
}

// Cross-reference consistency checks: each case builds a database that
// is referentially sound item by item but semantically inconsistent.
func TestValidateCrossRefs(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *PDB
		want    string // substring of the single expected error; "" = clean
		nErrors int
	}{
		{
			name: "self include",
			build: func() *PDB {
				return &PDB{Files: []*SourceFile{{ID: 1, Name: "a.h",
					Includes: []Ref{{Prefix: "so", ID: 1}}}}}
			},
			want: "includes itself", nErrors: 1,
		},
		{
			name: "mutual includes are allowed",
			build: func() *PDB {
				return &PDB{Files: []*SourceFile{
					{ID: 1, Name: "a.h", Includes: []Ref{{Prefix: "so", ID: 2}}},
					{ID: 2, Name: "b.h", Includes: []Ref{{Prefix: "so", ID: 1}}},
				}}
			},
			// An include cycle between distinct files is a lint
			// finding, not a malformed database.
			want: "", nErrors: 0,
		},
		{
			name: "inheritance cycle",
			build: func() *PDB {
				return &PDB{Classes: []*Class{
					{ID: 1, Name: "A", Kind: "class",
						Bases: []BaseClass{{Access: "pub", Class: Ref{Prefix: "cl", ID: 2}}}},
					{ID: 2, Name: "B", Kind: "class",
						Bases: []BaseClass{{Access: "pub", Class: Ref{Prefix: "cl", ID: 1}}}},
				}}
			},
			want: "inheritance cycle", nErrors: 1,
		},
		{
			name: "self inheritance",
			build: func() *PDB {
				return &PDB{Classes: []*Class{{ID: 1, Name: "A", Kind: "class",
					Bases: []BaseClass{{Access: "pub", Class: Ref{Prefix: "cl", ID: 1}}}}}}
			},
			want: "inheritance cycle", nErrors: 1,
		},
		{
			name: "diamond inheritance is acyclic",
			build: func() *PDB {
				return &PDB{Classes: []*Class{
					{ID: 1, Name: "Top", Kind: "class"},
					{ID: 2, Name: "L", Kind: "class",
						Bases: []BaseClass{{Access: "pub", Class: Ref{Prefix: "cl", ID: 1}}}},
					{ID: 3, Name: "R", Kind: "class",
						Bases: []BaseClass{{Access: "pub", Class: Ref{Prefix: "cl", ID: 1}}}},
					{ID: 4, Name: "Bottom", Kind: "class", Bases: []BaseClass{
						{Access: "pub", Class: Ref{Prefix: "cl", ID: 2}},
						{Access: "pub", Class: Ref{Prefix: "cl", ID: 3}},
					}},
				}}
			},
			want: "", nErrors: 0,
		},
		{
			name: "member function claiming another class",
			build: func() *PDB {
				return &PDB{
					Classes: []*Class{
						{ID: 1, Name: "A", Kind: "class",
							Funcs: []FuncRef{{Routine: Ref{Prefix: "ro", ID: 1}}}},
						{ID: 2, Name: "B", Kind: "class"},
					},
					Routines: []*Routine{{ID: 1, Name: "f", Access: "pub",
						Class: Ref{Prefix: "cl", ID: 2}}},
				}
			},
			want: "claims class", nErrors: 1,
		},
		{
			name: "member function with matching back-reference",
			build: func() *PDB {
				return &PDB{
					Classes: []*Class{{ID: 1, Name: "A", Kind: "class",
						Funcs: []FuncRef{{Routine: Ref{Prefix: "ro", ID: 1}}}}},
					Routines: []*Routine{{ID: 1, Name: "f", Access: "pub",
						Class: Ref{Prefix: "cl", ID: 1}}},
				}
			},
			want: "", nErrors: 0,
		},
		{
			name: "class instantiated from function template",
			build: func() *PDB {
				return &PDB{
					Templates: []*Template{{ID: 1, Name: "max", Kind: "func"}},
					Classes: []*Class{{ID: 1, Name: "max<int>", Kind: "class",
						Template: Ref{Prefix: "te", ID: 1}, Instantiation: true}},
				}
			},
			want: `want kind "class"`, nErrors: 1,
		},
		{
			name: "free routine instantiated from class template",
			build: func() *PDB {
				return &PDB{
					Templates: []*Template{{ID: 1, Name: "Stack", Kind: "class"}},
					Routines: []*Routine{{ID: 1, Name: "push", Access: "pub",
						Template: Ref{Prefix: "te", ID: 1}}},
				}
			},
			want: "function-like kind", nErrors: 1,
		},
		{
			name: "member routine may carry its class template",
			build: func() *PDB {
				return &PDB{
					Templates: []*Template{{ID: 1, Name: "Stack", Kind: "class"}},
					Classes: []*Class{{ID: 1, Name: "Stack<int>", Kind: "class",
						Template: Ref{Prefix: "te", ID: 1}, Instantiation: true}},
					Routines: []*Routine{{ID: 1, Name: "push", Access: "pub",
						Class: Ref{Prefix: "cl", ID: 1}, Template: Ref{Prefix: "te", ID: 1}}},
				}
			},
			want: "", nErrors: 0,
		},
		{
			name: "routine instantiated from memfunc template",
			build: func() *PDB {
				return &PDB{
					Templates: []*Template{{ID: 1, Name: "push", Kind: "memfunc"}},
					Routines: []*Routine{{ID: 1, Name: "push", Access: "pub",
						Template: Ref{Prefix: "te", ID: 1}}},
				}
			},
			want: "", nErrors: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := tc.build().Validate()
			if len(errs) != tc.nErrors {
				t.Fatalf("errors = %v, want %d", errs, tc.nErrors)
			}
			if tc.want != "" && !strings.Contains(errs[0].Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", errs[0], tc.want)
			}
		})
	}
}

// Property: every randomly generated database (which draws references
// only from existing ID ranges) validates cleanly, and survives the
// write/read cycle still valid.
func TestValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPDB(r)
		if errs := p.Validate(); len(errs) != 0 {
			t.Logf("generator produced invalid PDB: %v", errs[0])
			return false
		}
		parsed, err := Read(strings.NewReader(p.String()))
		if err != nil {
			return false
		}
		return len(parsed.Validate()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
