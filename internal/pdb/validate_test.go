package pdb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateAcceptsSample(t *testing.T) {
	// The hand-built sample contains intentional references to items
	// it does not define (forward examples like ty#63), so build a
	// self-consistent subset instead.
	p := &PDB{
		Files: []*SourceFile{{ID: 1, Name: "a.h"}},
		Types: []*Type{
			{ID: 1, Name: "int", Kind: "int", IntKind: "int"},
			{ID: 2, Name: "int *", Kind: "ptr", Elem: Ref{Prefix: "ty", ID: 1}},
		},
		Classes: []*Class{{ID: 1, Name: "C", Kind: "class",
			Loc: Loc{File: Ref{Prefix: "so", ID: 1}, Line: 3, Col: 7},
			Members: []Member{{Name: "x", Access: "priv", Kind: "var",
				Type: Ref{Prefix: "ty", ID: 1}}}}},
		Routines: []*Routine{{ID: 1, Name: "f", Access: "pub",
			Class: Ref{Prefix: "cl", ID: 1}, Signature: Ref{Prefix: "ty", ID: 2}}},
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Errorf("valid PDB rejected: %v", errs)
	}
}

func TestValidateCatchesDanglingRefs(t *testing.T) {
	p := &PDB{
		Routines: []*Routine{{ID: 1, Name: "f",
			Class:     Ref{Prefix: "cl", ID: 99},
			Signature: Ref{Prefix: "ty", ID: 42}}},
	}
	errs := p.Validate()
	if len(errs) != 2 {
		t.Errorf("errors = %v", errs)
	}
}

func TestValidateCatchesDuplicateIDs(t *testing.T) {
	p := &PDB{Files: []*SourceFile{{ID: 1, Name: "a"}, {ID: 1, Name: "b"}}}
	if errs := p.Validate(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
}

func TestValidateCatchesWrongPrefix(t *testing.T) {
	p := &PDB{
		Types:    []*Type{{ID: 1, Name: "int", Kind: "int"}},
		Routines: []*Routine{{ID: 1, Name: "f", Signature: Ref{Prefix: "cl", ID: 1}}},
	}
	if errs := p.Validate(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
}

func TestValidateCatchesBadLocation(t *testing.T) {
	p := &PDB{
		Files: []*SourceFile{{ID: 1, Name: "a.h"}},
		Macros: []*Macro{{ID: 1, Name: "M",
			Loc: Loc{File: Ref{Prefix: "so", ID: 1}, Line: 0, Col: 5}}},
	}
	if errs := p.Validate(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
}

// Property: every randomly generated database (which draws references
// only from existing ID ranges) validates cleanly, and survives the
// write/read cycle still valid.
func TestValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPDB(r)
		if errs := p.Validate(); len(errs) != 0 {
			t.Logf("generator produced invalid PDB: %v", errs[0])
			return false
		}
		parsed, err := Read(strings.NewReader(p.String()))
		if err != nil {
			return false
		}
		return len(parsed.Validate()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
