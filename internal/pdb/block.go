package pdb

import (
	"fmt"
	"io"
	"strings"
)

// The block API is the substrate of internal/pdbio's chunked parallel
// reader: SplitBlocks cuts the ASCII stream into per-item line blocks
// (stage 1), ParseBlock turns one block into a single-item fragment on
// a worker (stage 2), and AppendItems reassembles fragments in input
// order (stage 3), so the combined result is identical to a sequential
// Read of the same stream.

// Line is one physical input line, kept with its 1-based number so
// errors reported from a block still point at the original source line.
type Line struct {
	N    int
	Text string // whitespace-trimmed
}

// Block is one item's worth of input: the item-head line followed by
// the item's attribute lines.
type Block struct {
	Lines []Line
}

// SplitBlocks scans r, checks the <PDB> header, groups the remaining
// non-blank lines into per-item blocks, and hands each block to emit in
// input order. A non-nil error returned by emit stops the scan and is
// returned verbatim. The errors SplitBlocks reports itself are exactly
// the ones the sequential reader would report for the same stream: a
// missing header, an attribute line before the first item, and an
// over-long line.
func SplitBlocks(r io.Reader, maxLineBytes int, emit func(Block) error) error {
	sc := newLineScanner(r, maxLineBytes)
	lineNo := 0
	sawHeader := false
	var cur []Line
	flush := func() error {
		if cur == nil {
			return nil
		}
		b := Block{Lines: cur}
		cur = nil
		return emit(b)
	}
	for sc.Scan() {
		lineNo++
		trimmed := strings.TrimSpace(strings.TrimRight(sc.Text(), "\r\n"))
		if trimmed == "" {
			continue
		}
		if !sawHeader {
			if !strings.HasPrefix(trimmed, "<PDB") {
				return fmt.Errorf("line %d: missing <PDB> header", lineNo)
			}
			sawHeader = true
			continue
		}
		if _, _, _, ok := parseItemHead(trimmed); ok {
			if err := flush(); err != nil {
				return err
			}
			cur = []Line{{N: lineNo, Text: trimmed}}
			continue
		}
		if cur == nil {
			attr, _, _ := strings.Cut(trimmed, " ")
			return fmt.Errorf("line %d: attribute %q outside any item", lineNo, attr)
		}
		cur = append(cur, Line{N: lineNo, Text: trimmed})
	}
	if err := sc.Err(); err != nil {
		return scanError(err, lineNo, maxLineBytes)
	}
	if !sawHeader {
		return fmt.Errorf("empty input: missing <PDB> header")
	}
	return flush()
}

// ParseBlock parses one item block into a single-item PDB fragment.
// The first line must be an item head, which SplitBlocks guarantees.
func ParseBlock(b Block) (*PDB, error) {
	if len(b.Lines) == 0 {
		return nil, fmt.Errorf("empty item block")
	}
	frag := &PDB{}
	ip := itemParser{out: frag}
	head := b.Lines[0]
	id, name, prefix, ok := parseItemHead(head.Text)
	if !ok {
		return nil, fmt.Errorf("line %d: block does not start with an item head: %q",
			head.N, head.Text)
	}
	ip.startItem(id, name, prefix)
	for _, ln := range b.Lines[1:] {
		if !ip.attrLine(ln.Text) {
			attr, _, _ := strings.Cut(ln.Text, " ")
			return nil, fmt.Errorf("line %d: attribute %q outside any item", ln.N, attr)
		}
	}
	ip.finish()
	return frag, nil
}

// AppendItems appends every item of src to p, preserving per-kind
// order.
func (p *PDB) AppendItems(src *PDB) {
	p.Files = append(p.Files, src.Files...)
	p.Routines = append(p.Routines, src.Routines...)
	p.Classes = append(p.Classes, src.Classes...)
	p.Types = append(p.Types, src.Types...)
	p.Templates = append(p.Templates, src.Templates...)
	p.Namespaces = append(p.Namespaces, src.Namespaces...)
	p.Macros = append(p.Macros, src.Macros...)
}
