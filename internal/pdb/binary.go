package pdb

// This file is the write side of the versioned binary PDB encoding —
// the hardware-speed sibling of the ASCII format of write.go. The two
// encodings carry the same document model: reading either and writing
// the other round-trips byte-identically (the differential tests pin
// ascii → binary → ascii down to the byte).
//
// Layout (all integers little-endian or varint):
//
//	magic    "PDTB" (4 bytes; ASCII files start "<PDB", so the first
//	         byte alone separates the two formats)
//	header   u16 version, u16 flags, uvarint section count,
//	         one TOC entry per section (u8 kind, uvarint payload
//	         length, u32 CRC-32C of the payload),
//	         u32 CRC-32C of the header bytes (version..TOC end)
//	payloads the section payloads, concatenated in TOC order
//
// Sections: an interned string table first, then one section per item
// kind in the ASCII writer's order (files, templates, routines,
// classes, types, namespaces, macros). Every string in an item payload
// is a uvarint index into the string table; IDs, line/column numbers,
// and array lengths are zigzag varints (signed values survive); bools
// are single bytes. Each item payload starts with a uvarint item
// count.
//
// The per-section checksums make damage locally diagnosable: the
// lenient reader (binary_read.go) drops exactly the sections whose
// bytes were touched and recovers every other one, mirroring the
// span-skipping recovery contract of the ASCII lenient reader.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// BinaryMagic is the 4-byte signature binary PDB files start with.
// Readers sniff it to auto-detect the encoding.
const BinaryMagic = "PDTB"

// BinaryVersion is the format version this package writes. Readers
// accept exactly the versions they know; anything newer is a
// structured "unsupported version" error, never a garbled parse —
// the compatibility contract of DESIGN D11.
const BinaryVersion = 1

// Section kind codes. The string table must precede every item
// section that references it; the writer emits it first.
const (
	secStrings byte = iota
	secFiles
	secTemplates
	secRoutines
	secClasses
	secTypes
	secNamespaces
	secMacros
	sectionCount = 8
)

// sectionName names a section kind in diagnostics.
func sectionName(kind byte) string {
	switch kind {
	case secStrings:
		return "strings"
	case secFiles:
		return "files"
	case secTemplates:
		return "templates"
	case secRoutines:
		return "routines"
	case secClasses:
		return "classes"
	case secTypes:
		return "types"
	case secNamespaces:
		return "namespaces"
	case secMacros:
		return "macros"
	}
	return "unknown"
}

// castagnoli is the CRC-32C table; Castagnoli has hardware support on
// every platform the toolchain targets.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// binWriter interns strings and encodes primitives into per-section
// buffers.
type binWriter struct {
	interned map[string]uint64
	table    []string
	scratch  [binary.MaxVarintLen64]byte
}

func newBinWriter() *binWriter {
	return &binWriter{interned: make(map[string]uint64, 256)}
}

// str interns s and returns its table index.
func (e *binWriter) str(s string) uint64 {
	if idx, ok := e.interned[s]; ok {
		return idx
	}
	idx := uint64(len(e.table))
	e.interned[s] = idx
	e.table = append(e.table, s)
	return idx
}

func (e *binWriter) putUvarint(b *bytes.Buffer, v uint64) {
	b.Write(AppendUvarint(e.scratch[:0], v))
}

func (e *binWriter) putVarint(b *bytes.Buffer, v int64) {
	b.Write(AppendVarint(e.scratch[:0], v))
}

func (e *binWriter) putStr(b *bytes.Buffer, s string) {
	e.putUvarint(b, e.str(s))
}

func (e *binWriter) putBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func (e *binWriter) putRef(b *bytes.Buffer, r Ref) {
	e.putStr(b, r.Prefix)
	e.putVarint(b, int64(r.ID))
}

func (e *binWriter) putLoc(b *bytes.Buffer, l Loc) {
	e.putRef(b, l.File)
	e.putVarint(b, int64(l.Line))
	e.putVarint(b, int64(l.Col))
}

func (e *binWriter) putPos(b *bytes.Buffer, p Pos) {
	e.putLoc(b, p.HeaderBegin)
	e.putLoc(b, p.HeaderEnd)
	e.putLoc(b, p.BodyBegin)
	e.putLoc(b, p.BodyEnd)
}

// WriteBinary serializes the database in the binary encoding. The
// bytes are deterministic: the same model always encodes identically,
// so content-addressed caches may key on them. Defaultable fields are
// written in the same canonical form the ASCII writer emits (racs NA,
// rkind fun, rvirt no, ...), so a model and its ASCII round-trip — the
// detour every journaled merge checkpoint takes — encode to identical
// binary bytes.
func (p *PDB) WriteBinary(w io.Writer) error {
	e := newBinWriter()

	var files, templates, routines, classes, types, namespaces, macros bytes.Buffer

	e.putUvarint(&files, uint64(len(p.Files)))
	for _, f := range p.Files {
		e.putVarint(&files, int64(f.ID))
		e.putStr(&files, f.Name)
		e.putBool(&files, f.System)
		e.putUvarint(&files, uint64(len(f.Includes)))
		for _, inc := range f.Includes {
			e.putRef(&files, inc)
		}
	}

	e.putUvarint(&templates, uint64(len(p.Templates)))
	for _, t := range p.Templates {
		e.putVarint(&templates, int64(t.ID))
		e.putStr(&templates, t.Name)
		e.putLoc(&templates, t.Loc)
		e.putStr(&templates, t.Kind)
		e.putRef(&templates, t.Class)
		e.putRef(&templates, t.Namespace)
		e.putStr(&templates, naEmpty(t.Access))
		e.putStr(&templates, oneLine(t.Text))
		e.putPos(&templates, t.Pos)
	}

	e.putUvarint(&routines, uint64(len(p.Routines)))
	for _, r := range p.Routines {
		e.putVarint(&routines, int64(r.ID))
		e.putStr(&routines, r.Name)
		e.putLoc(&routines, r.Loc)
		e.putRef(&routines, r.Class)
		e.putRef(&routines, r.Namespace)
		e.putStr(&routines, orNA(r.Access))
		e.putRef(&routines, r.Signature)
		e.putStr(&routines, orDefault(r.Linkage, "C++"))
		e.putStr(&routines, orNA(r.Storage))
		e.putStr(&routines, orDefault(r.Virtual, "no"))
		e.putStr(&routines, orDefault(r.Kind, "fun"))
		e.putRef(&routines, r.Template)
		e.putBool(&routines, r.Static)
		e.putBool(&routines, r.Inline)
		e.putBool(&routines, r.Const)
		e.putUvarint(&routines, uint64(len(r.Calls)))
		for _, c := range r.Calls {
			e.putRef(&routines, c.Callee)
			e.putBool(&routines, c.Virtual)
			e.putLoc(&routines, c.Loc)
		}
		e.putPos(&routines, r.Pos)
	}

	e.putUvarint(&classes, uint64(len(p.Classes)))
	for _, c := range p.Classes {
		e.putVarint(&classes, int64(c.ID))
		e.putStr(&classes, c.Name)
		e.putLoc(&classes, c.Loc)
		e.putStr(&classes, orDefault(c.Kind, "class"))
		e.putRef(&classes, c.Parent)
		e.putRef(&classes, c.Namespace)
		e.putStr(&classes, naEmpty(c.Access))
		e.putRef(&classes, c.Template)
		e.putBool(&classes, c.Specialization)
		e.putBool(&classes, c.Instantiation)
		e.putUvarint(&classes, uint64(len(c.Bases)))
		for _, b := range c.Bases {
			e.putStr(&classes, b.Access)
			e.putBool(&classes, b.Virtual)
			e.putRef(&classes, b.Class)
			e.putLoc(&classes, b.Loc)
		}
		e.putUvarint(&classes, uint64(len(c.Friends)))
		for _, fr := range c.Friends {
			e.putStr(&classes, fr)
		}
		e.putUvarint(&classes, uint64(len(c.Funcs)))
		for _, f := range c.Funcs {
			e.putRef(&classes, f.Routine)
			e.putLoc(&classes, f.Loc)
		}
		e.putUvarint(&classes, uint64(len(c.Members)))
		for _, m := range c.Members {
			e.putStr(&classes, m.Name)
			e.putLoc(&classes, m.Loc)
			e.putStr(&classes, orNA(m.Access))
			e.putStr(&classes, orDefault(m.Kind, "var"))
			e.putRef(&classes, m.Type)
			e.putBool(&classes, m.Static)
		}
		e.putPos(&classes, c.Pos)
	}

	e.putUvarint(&types, uint64(len(p.Types)))
	for _, t := range p.Types {
		e.putVarint(&types, int64(t.ID))
		e.putStr(&types, t.Name)
		e.putStr(&types, t.Kind)
		e.putStr(&types, t.IntKind)
		e.putRef(&types, t.Elem)
		e.putRef(&types, t.Tref)
		e.putUvarint(&types, uint64(len(t.Qual)))
		for _, q := range t.Qual {
			e.putStr(&types, q)
		}
		e.putRef(&types, t.Class)
		e.putRef(&types, t.Enum)
		e.putRef(&types, t.Ret)
		e.putUvarint(&types, uint64(len(t.Args)))
		for _, a := range t.Args {
			e.putRef(&types, a)
		}
		e.putBool(&types, t.Ellipsis)
		e.putVarint(&types, t.ArrayLen)
	}

	e.putUvarint(&namespaces, uint64(len(p.Namespaces)))
	for _, n := range p.Namespaces {
		e.putVarint(&namespaces, int64(n.ID))
		e.putStr(&namespaces, n.Name)
		e.putLoc(&namespaces, n.Loc)
		e.putRef(&namespaces, n.Parent)
		e.putStr(&namespaces, n.Alias)
		e.putUvarint(&namespaces, uint64(len(n.Members)))
		for _, m := range n.Members {
			e.putStr(&namespaces, m)
		}
	}

	e.putUvarint(&macros, uint64(len(p.Macros)))
	for _, m := range p.Macros {
		e.putVarint(&macros, int64(m.ID))
		e.putStr(&macros, m.Name)
		e.putLoc(&macros, m.Loc)
		e.putStr(&macros, orDefault(m.Kind, "def"))
		e.putStr(&macros, oneLine(m.Text))
	}

	// The string table is complete only now that every item payload
	// has been interned through it.
	var strs bytes.Buffer
	e.putUvarint(&strs, uint64(len(e.table)))
	for _, s := range e.table {
		e.putUvarint(&strs, uint64(len(s)))
		strs.WriteString(s)
	}

	sections := []struct {
		kind    byte
		payload []byte
	}{
		{secStrings, strs.Bytes()},
		{secFiles, files.Bytes()},
		{secTemplates, templates.Bytes()},
		{secRoutines, routines.Bytes()},
		{secClasses, classes.Bytes()},
		{secTypes, types.Bytes()},
		{secNamespaces, namespaces.Bytes()},
		{secMacros, macros.Bytes()},
	}

	var hdr bytes.Buffer
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], BinaryVersion)
	hdr.Write(u16[:])
	binary.LittleEndian.PutUint16(u16[:], 0) // flags, reserved
	hdr.Write(u16[:])
	e.putUvarint(&hdr, uint64(len(sections)))
	var u32 [4]byte
	for _, s := range sections {
		hdr.WriteByte(s.kind)
		e.putUvarint(&hdr, uint64(len(s.payload)))
		binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(s.payload, castagnoli))
		hdr.Write(u32[:])
	}

	if _, err := io.WriteString(w, BinaryMagic); err != nil {
		return err
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(hdr.Bytes(), castagnoli))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, s := range sections {
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}
