package pdb

// The read side of the binary PDB encoding (see binary.go for the
// layout). Two entry points mirror the ASCII readers:
//
//   - ReadBinary is strict: the first defect — bad magic, unsupported
//     version, header or section checksum mismatch, a truncated or
//     over-running payload — aborts the parse with a structured error.
//   - ReadBinaryLenient recovers: a damaged section is dropped with one
//     Diagnostic and every untouched section is decoded normally. Only
//     real I/O failures from the reader return an error; format damage
//     never does. In binary diagnostics the StartLine/EndLine fields
//     carry byte offsets into the stream instead of line numbers.
//
// Every length and count read from the wire is validated against the
// bytes that remain before any allocation is sized from it, so a
// corrupted or adversarial input can never make the decoder allocate
// more memory than a small multiple of the input size.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// IsBinaryPrefix reports whether the first bytes of a PDB stream
// identify the binary encoding. Four bytes are enough; fewer never
// match.
func IsBinaryPrefix(prefix []byte) bool {
	return len(prefix) >= len(BinaryMagic) && string(prefix[:len(BinaryMagic)]) == BinaryMagic
}

// ErrNotBinary reports input that does not start with the binary
// magic; callers sniffing formats can test for it with errors.Is.
var ErrNotBinary = errors.New("not a binary PDB: missing PDTB magic")

// binSection is one decoded TOC entry.
type binSection struct {
	kind  byte
	off   int // payload offset into the stream (diagnostics)
	sum   uint32
	bytes []byte
}

// ReadBinary parses a binary PDB stream strictly: any defect aborts
// with an error naming the section and offset involved.
func ReadBinary(r io.Reader) (*PDB, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeBinary(data)
}

func decodeBinary(data []byte) (*PDB, error) {
	sections, err := parseBinaryHeader(data)
	if err != nil {
		return nil, err
	}
	p := &PDB{}
	var tbl []string
	for _, s := range sections {
		if got := crc32.Checksum(s.bytes, castagnoli); got != s.sum {
			return nil, fmt.Errorf("binary PDB: %s section at offset %d: checksum mismatch (stored %08x, computed %08x)",
				sectionName(s.kind), s.off, s.sum, got)
		}
		if s.kind == secStrings {
			tbl, err = decodeStrings(s.bytes)
		} else {
			err = decodeSection(p, s.kind, s.bytes, tbl)
		}
		if err != nil {
			return nil, fmt.Errorf("binary PDB: %s section at offset %d: %w",
				sectionName(s.kind), s.off, err)
		}
	}
	return p, nil
}

// ReadBinaryLenient parses a binary PDB stream in recovering mode:
// damaged sections are dropped with one Diagnostic each and every
// untouched section is decoded. A defect in the header or the string
// table — which every other section depends on — ends the parse with
// a diagnostic, returning whatever was recovered before it. The
// returned error is reserved for I/O failures from r.
func ReadBinaryLenient(r io.Reader, file string) (*PDB, []Diagnostic, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	p, diags := decodeBinaryLenient(data, file)
	p.Recovered = diags
	return p, diags, nil
}

func decodeBinaryLenient(data []byte, file string) (*PDB, []Diagnostic) {
	p := &PDB{}
	sections, err := parseBinaryHeader(data)
	if err != nil {
		return p, []Diagnostic{{File: file, StartLine: 0, EndLine: len(data),
			Cause: err.Error()}}
	}
	var diags []Diagnostic
	damaged := func(s binSection, cause string) {
		diags = append(diags, Diagnostic{File: file, StartLine: s.off,
			EndLine: s.off + len(s.bytes), Tag: sectionName(s.kind), Cause: cause})
	}
	var tbl []string
	for _, s := range sections {
		if got := crc32.Checksum(s.bytes, castagnoli); got != s.sum {
			damaged(s, fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", s.sum, got))
			if s.kind == secStrings {
				// Without the string table no item section can resolve a
				// name; everything after this point is undecodable.
				diags[len(diags)-1].Cause += "; string table lost, dropping all sections"
				return p, diags
			}
			continue
		}
		if s.kind == secStrings {
			t, err := decodeStrings(s.bytes)
			if err != nil {
				damaged(s, err.Error()+"; string table lost, dropping all sections")
				return p, diags
			}
			tbl = t
			continue
		}
		// Decode into a scratch database so a mid-section defect cannot
		// leave half a section's items behind: a section is recovered
		// whole or dropped whole, the binary analogue of the ASCII
		// reader's span-skipping discipline.
		scratch := &PDB{}
		if err := decodeSection(scratch, s.kind, s.bytes, tbl); err != nil {
			damaged(s, err.Error())
			continue
		}
		p.AppendItems(scratch)
	}
	return p, diags
}

// parseBinaryHeader validates the magic, version, and header checksum
// and slices the payload of every TOC section out of data. No payload
// checksum is verified here — strict and lenient mode differ in how
// they react to payload damage, not in how they locate sections.
func parseBinaryHeader(data []byte) ([]binSection, error) {
	if !IsBinaryPrefix(data) {
		return nil, ErrNotBinary
	}
	hdr := binReader{data: data, pos: len(BinaryMagic)}
	version := hdr.u16()
	hdr.u16() // flags, reserved
	if hdr.err == nil && version != BinaryVersion {
		return nil, fmt.Errorf("unsupported binary PDB version %d (this build reads version %d)",
			version, BinaryVersion)
	}
	nSec := hdr.count(6) // kind + length varint + crc32 per entry
	type tocEntry struct {
		kind byte
		n    int
		sum  uint32
	}
	entries := make([]tocEntry, 0, min(nSec, sectionCount*2))
	for i := 0; i < nSec && hdr.err == nil; i++ {
		kind := hdr.u8()
		n := hdr.length()
		sum := hdr.u32()
		entries = append(entries, tocEntry{kind, n, sum})
	}
	hdrEnd := hdr.pos
	storedHdrSum := hdr.u32()
	if hdr.err != nil {
		return nil, fmt.Errorf("truncated binary PDB header: %w", hdr.err)
	}
	if got := crc32.Checksum(data[len(BinaryMagic):hdrEnd], castagnoli); got != storedHdrSum {
		return nil, fmt.Errorf("binary PDB header checksum mismatch (stored %08x, computed %08x)",
			storedHdrSum, got)
	}
	sections := make([]binSection, 0, len(entries))
	off := hdr.pos
	for _, e := range entries {
		if e.n > len(data)-off {
			return nil, fmt.Errorf("binary PDB: %s section at offset %d: payload of %d bytes overruns the %d-byte stream",
				sectionName(e.kind), off, e.n, len(data))
		}
		sections = append(sections, binSection{kind: e.kind, off: off,
			sum: e.sum, bytes: data[off : off+e.n]})
		off += e.n
	}
	if off != len(data) {
		return nil, fmt.Errorf("binary PDB: %d trailing bytes after the last section", len(data)-off)
	}
	return sections, nil
}

// binReader decodes primitives out of a byte slice with saturating
// error handling: the first defect sets err, and every later read
// returns zero values without advancing, so decode loops need a single
// error check per item.
type binReader struct {
	data []byte
	pos  int
	tbl  []string
	err  error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binReader) remaining() int { return len(r.data) - r.pos }

func (r *binReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail("truncated at offset %d", r.pos)
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *binReader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 2 {
		r.fail("truncated at offset %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *binReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 4 {
		r.fail("truncated at offset %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// count reads an element count and bounds it by the bytes that remain:
// each element costs at least minBytes on the wire, so any larger
// count is corruption — rejected before it can size an allocation.
func (r *binReader) count(minBytes int) int {
	at := r.pos
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes) {
		r.fail("count %d at offset %d exceeds the %d bytes remaining", v, at, r.remaining())
		return 0
	}
	return int(v)
}

// length reads a byte length bounded by the bytes that remain.
func (r *binReader) length() int { return r.count(1) }

func (r *binReader) boolean() bool { return r.u8() != 0 }

func (r *binReader) str() string {
	at := r.pos
	idx := r.uvarint()
	if r.err != nil {
		return ""
	}
	if idx >= uint64(len(r.tbl)) {
		r.fail("string index %d at offset %d outside the %d-entry table", idx, at, len(r.tbl))
		return ""
	}
	return r.tbl[idx]
}

func (r *binReader) ref() Ref {
	return Ref{Prefix: r.str(), ID: int(r.varint())}
}

func (r *binReader) loc() Loc {
	return Loc{File: r.ref(), Line: int(r.varint()), Col: int(r.varint())}
}

func (r *binReader) posn() Pos {
	return Pos{HeaderBegin: r.loc(), HeaderEnd: r.loc(),
		BodyBegin: r.loc(), BodyEnd: r.loc()}
}

// decodeStrings decodes the interned string table payload.
func decodeStrings(payload []byte) ([]string, error) {
	r := binReader{data: payload}
	n := r.count(1)
	tbl := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		ln := r.length()
		if r.err != nil {
			break
		}
		tbl = append(tbl, string(r.data[r.pos:r.pos+ln]))
		r.pos += ln
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(payload) {
		return nil, fmt.Errorf("%d trailing bytes after %d strings", len(payload)-r.pos, n)
	}
	return tbl, nil
}

// decodeSection decodes one item section payload into p. The payload
// must be consumed exactly; trailing bytes are corruption.
func decodeSection(p *PDB, kind byte, payload []byte, tbl []string) error {
	r := binReader{data: payload, tbl: tbl}
	n := r.count(2)
	for i := 0; i < n && r.err == nil; i++ {
		switch kind {
		case secFiles:
			f := &SourceFile{ID: int(r.varint()), Name: r.str(), System: r.boolean()}
			nInc := r.count(2)
			for j := 0; j < nInc && r.err == nil; j++ {
				f.Includes = append(f.Includes, r.ref())
			}
			if r.err == nil {
				p.Files = append(p.Files, f)
			}
		case secTemplates:
			t := &Template{ID: int(r.varint()), Name: r.str(), Loc: r.loc(),
				Kind: r.str(), Class: r.ref(), Namespace: r.ref(),
				Access: r.str(), Text: r.str(), Pos: r.posn()}
			if r.err == nil {
				p.Templates = append(p.Templates, t)
			}
		case secRoutines:
			rt := &Routine{ID: int(r.varint()), Name: r.str(), Loc: r.loc(),
				Class: r.ref(), Namespace: r.ref(), Access: r.str(),
				Signature: r.ref(), Linkage: r.str(), Storage: r.str(),
				Virtual: r.str(), Kind: r.str(), Template: r.ref(),
				Static: r.boolean(), Inline: r.boolean(), Const: r.boolean()}
			nCalls := r.count(6)
			for j := 0; j < nCalls && r.err == nil; j++ {
				rt.Calls = append(rt.Calls, Call{Callee: r.ref(),
					Virtual: r.boolean(), Loc: r.loc()})
			}
			rt.Pos = r.posn()
			if r.err == nil {
				p.Routines = append(p.Routines, rt)
			}
		case secClasses:
			c := &Class{ID: int(r.varint()), Name: r.str(), Loc: r.loc(),
				Kind: r.str(), Parent: r.ref(), Namespace: r.ref(),
				Access: r.str(), Template: r.ref(),
				Specialization: r.boolean(), Instantiation: r.boolean()}
			nBases := r.count(7)
			for j := 0; j < nBases && r.err == nil; j++ {
				c.Bases = append(c.Bases, BaseClass{Access: r.str(),
					Virtual: r.boolean(), Class: r.ref(), Loc: r.loc()})
			}
			nFriends := r.count(1)
			for j := 0; j < nFriends && r.err == nil; j++ {
				c.Friends = append(c.Friends, r.str())
			}
			nFuncs := r.count(6)
			for j := 0; j < nFuncs && r.err == nil; j++ {
				c.Funcs = append(c.Funcs, FuncRef{Routine: r.ref(), Loc: r.loc()})
			}
			nMembers := r.count(9)
			for j := 0; j < nMembers && r.err == nil; j++ {
				c.Members = append(c.Members, Member{Name: r.str(), Loc: r.loc(),
					Access: r.str(), Kind: r.str(), Type: r.ref(),
					Static: r.boolean()})
			}
			c.Pos = r.posn()
			if r.err == nil {
				p.Classes = append(p.Classes, c)
			}
		case secTypes:
			t := &Type{ID: int(r.varint()), Name: r.str(), Kind: r.str(),
				IntKind: r.str(), Elem: r.ref(), Tref: r.ref()}
			nQual := r.count(1)
			for j := 0; j < nQual && r.err == nil; j++ {
				t.Qual = append(t.Qual, r.str())
			}
			t.Class = r.ref()
			t.Enum = r.ref()
			t.Ret = r.ref()
			nArgs := r.count(2)
			for j := 0; j < nArgs && r.err == nil; j++ {
				t.Args = append(t.Args, r.ref())
			}
			t.Ellipsis = r.boolean()
			t.ArrayLen = r.varint()
			if r.err == nil {
				p.Types = append(p.Types, t)
			}
		case secNamespaces:
			ns := &Namespace{ID: int(r.varint()), Name: r.str(), Loc: r.loc(),
				Parent: r.ref(), Alias: r.str()}
			nMem := r.count(1)
			for j := 0; j < nMem && r.err == nil; j++ {
				ns.Members = append(ns.Members, r.str())
			}
			if r.err == nil {
				p.Namespaces = append(p.Namespaces, ns)
			}
		case secMacros:
			m := &Macro{ID: int(r.varint()), Name: r.str(), Loc: r.loc(),
				Kind: r.str(), Text: r.str()}
			if r.err == nil {
				p.Macros = append(p.Macros, m)
			}
		default:
			return fmt.Errorf("unknown section kind %d", kind)
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(payload) {
		return fmt.Errorf("%d trailing bytes after %d items", len(payload)-r.pos, n)
	}
	return nil
}
