package pdb

import (
	"bufio"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFileRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := samplePDB().Write(&sb); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.pdb")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := p.Write(&out); err != nil {
		t.Fatal(err)
	}
	if out.String() != sb.String() {
		t.Error("ReadFile round trip is not byte-identical")
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.pdb"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("err = %v, want fs.ErrNotExist", err)
	}
}

// TestReadLimitLineNumber: an over-long line must be reported with its
// line number and the configured limit, wrapping bufio.ErrTooLong.
func TestReadLimitLineNumber(t *testing.T) {
	input := "<PDB 1.0>\nso#1 a.h\nro#2 " + strings.Repeat("x", 500) + "\n"
	_, err := ReadLimit(strings.NewReader(input), 128)
	if err == nil {
		t.Fatal("over-long line should fail")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("err = %v, want wrapped bufio.ErrTooLong", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") {
		t.Errorf("err %q does not name line 3", msg)
	}
	if !strings.Contains(msg, "128") {
		t.Errorf("err %q does not name the 128-byte limit", msg)
	}
}

// TestReadLimitLineNumberFinalLine: ErrTooLong on the very last line —
// with and without a trailing newline — must still name that line, not
// a neighbor. The no-trailing-newline case is the regression trap: the
// scanner hits the limit before any final-token bookkeeping runs.
func TestReadLimitLineNumberFinalLine(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"final line without newline", "<PDB 1.0>\nso#1 a.h\nro#2 " + strings.Repeat("x", 500), "line 3"},
		{"final line with newline", "<PDB 1.0>\nso#1 a.h\nro#2 " + strings.Repeat("x", 500) + "\n", "line 3"},
		{"first line", strings.Repeat("x", 500), "line 1"},
		{"mid-stream", "<PDB 1.0>\nro#2 " + strings.Repeat("x", 500) + "\nso#1 a.h\n", "line 2"},
		{"after blank lines", "<PDB 1.0>\n\n\n\nro#2 " + strings.Repeat("x", 500), "line 5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadLimit(strings.NewReader(tc.input), 128)
			if !errors.Is(err, bufio.ErrTooLong) {
				t.Fatalf("err = %v, want wrapped bufio.ErrTooLong", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestSplitBlocksLineNumberFinalLine: the parallel splitter shares the
// line-numbering discipline of the sequential reader.
func TestSplitBlocksLineNumberFinalLine(t *testing.T) {
	input := "<PDB 1.0>\nso#1 a.h\nro#2 " + strings.Repeat("x", 500)
	err := SplitBlocks(strings.NewReader(input), 128, func(Block) error { return nil })
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want wrapped bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err %q does not name line 3", err)
	}
}

// TestReadTruncatedHeader: a stream whose header was cut off must fail
// on the first item line, naming it.
func TestReadTruncatedHeader(t *testing.T) {
	_, err := Read(strings.NewReader("so#1 a.h\nro#2 f\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1: missing <PDB> header") {
		t.Errorf("err = %v, want line-1 missing-header failure", err)
	}
	_, err = Read(strings.NewReader("\n\n"))
	if err == nil || !strings.Contains(err.Error(), "missing <PDB> header") {
		t.Errorf("blank-only input: err = %v, want missing-header failure", err)
	}
}
