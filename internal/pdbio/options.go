// Package pdbio is the concurrent ingestion and merge engine for
// program databases — the scalable front door to the paper's §3.2
// whole-program workflow, where one PDB per compilation unit is merged
// into a single program database. Template-heavy codebases produce
// hundreds of large per-unit PDBs, so pdbio parallelizes both ends of
// the pipeline:
//
//   - Load / LoadAll parse files with a chunked three-stage reader
//     (split into item blocks, parse blocks on a worker pool,
//     reassemble in input order) whose output is byte-identical to the
//     sequential pdb.Read.
//   - Merge combines N databases with a balanced k-way tree reduction
//     whose leaf merges run in parallel and whose result is
//     byte-identical to the sequential left-to-right ductape.Merge.
//
// All entry points take a context for cancellation and a variadic
// option list (WithWorkers, WithStrictValidation, WithMaxLineBytes).
// Multi-file failures use keep-going semantics: every input is
// attempted and the returned error aggregates one %w-wrapped error per
// failed input.
package pdbio

import (
	"io"
	"io/fs"
	"runtime"
	"sync/atomic"
	"time"

	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/pdb"
)

// Option configures Load, LoadAll, Read, Merge, and MergeFiles.
type Option func(*config)

// Format selects a serialization encoding for written output. Reads
// never need one: every reader auto-detects the encoding from the
// stream's first bytes.
type Format int

const (
	// FormatASCII is the line-oriented "<PDB 1.0>" text encoding — the
	// default, and the interchange form every tool accepts.
	FormatASCII Format = iota
	// FormatBinary is the PDTB binary container: interned strings,
	// varint-packed sections, per-section checksums. Same model,
	// smaller and faster to parse.
	FormatBinary
)

type config struct {
	workers      int
	maxLineBytes int
	strict       bool
	metrics      *obs.Metrics
	parent       *obs.Span // enclosing stage span, nil at the root

	// Resilient-ingestion knobs (see also internal/pdb's lenient mode).
	lenient    bool
	quarantine string
	retries    int
	backoff    time.Duration
	fsys       fs.FS
	stats      *Stats

	// Crash-consistency knobs (internal/durable).
	ckptDir string
	resume  bool
	writeFS durable.FS

	// Post-load hooks, run on every successfully built object graph.
	postLoad []func(*ductape.PDB)

	// Output encoding for MergeFiles / MergeToFile.
	format Format
}

// writeMerged serializes db in the configured output format.
func (c config) writeMerged(db *ductape.PDB, w io.Writer) error {
	if c.format == FormatBinary {
		return db.WriteBinary(w)
	}
	return db.Write(w)
}

// durableFS resolves the filesystem all durable writes go through:
// the real one by default, or the WithWriteFS override (the
// kill-point seam internal/faultio's CrashFS plugs into).
func (c config) durableFS() durable.FS {
	if c.writeFS != nil {
		return c.writeFS
	}
	return durable.OS
}

// Stats accumulates the resilience counters of one or more Load calls:
// how many malformed spans the lenient reader recovered past, how many
// raw lines those spans dropped, and how many retry attempts transient
// I/O errors cost. All fields are atomics, so one Stats may be shared
// across a concurrent LoadAll. The same counts flow into the metrics
// registry (WithMetrics) as load.recovered, load.dropped_lines, and
// load.retries.
type Stats struct {
	Recovered    atomic.Int64 // malformed spans skipped and recovered past
	DroppedLines atomic.Int64 // raw lines discarded inside those spans
	Retries      atomic.Int64 // extra attempts made by WithRetry
}

// startSpan opens a stage span under the enclosing span when there is
// one, else at the registry root. With metrics disabled both paths
// return the nil no-op span.
func (c config) startSpan(name string) *obs.Span {
	if c.parent != nil {
		return c.parent.Start(name)
	}
	return c.metrics.StartSpan(name)
}

// under returns a copy of the config whose spans nest below sp.
func (c config) under(sp *obs.Span) config {
	c.parent = sp
	return c
}

func newConfig(opts []Option) config {
	cfg := config{maxLineBytes: pdb.DefaultMaxLineBytes}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// workerCount resolves the configured worker count: 0 (the default)
// means one worker per available CPU.
func (c config) workerCount() int {
	if c.workers > 0 {
		return c.workers
	}
	return runtime.GOMAXPROCS(0)
}

// WithWorkers sets the number of concurrent workers used for block
// parsing, multi-file loading, and leaf merges. n <= 0 selects one
// worker per available CPU; n == 1 forces the sequential paths.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithFormat selects the encoding MergeFiles and MergeToFile use for
// the merged output: FormatASCII (the default) or FormatBinary. Load,
// LoadAll, and Read are unaffected — they detect the encoding of each
// input from its first bytes, so ASCII and binary corpora mix freely.
func WithFormat(f Format) Option {
	return func(c *config) { c.format = f }
}

// WithStrictValidation makes Load and LoadAll run the referential
// integrity checks of pdb.Validate on every database after parsing and
// fail if any check does.
func WithStrictValidation() Option {
	return func(c *config) { c.strict = true }
}

// WithPostLoad registers a hook run on every successfully loaded
// object graph before Load/LoadAll return it — the seam consumers use
// to build derived views (dependency graphs, fingerprints) inside the
// load stage's instrumentation instead of after it. Hooks run in
// registration order; for LoadAll they run per file on the loading
// worker, so they must not share mutable state without locking.
func WithPostLoad(hook func(*ductape.PDB)) Option {
	return func(c *config) { c.postLoad = append(c.postLoad, hook) }
}

// WithMetrics routes stage spans, item/byte counts, and worker-pool
// utilization samples into m as the pipelines run. A nil m (the
// default) disables instrumentation entirely: the hot paths take no
// locks and never read the clock.
func WithMetrics(m *obs.Metrics) Option {
	return func(c *config) { c.metrics = m }
}

// WithMaxLineBytes sets the longest input line the reader accepts.
// Lines beyond the limit abort the parse with an error naming the
// offending line (strict mode) or are skipped with a diagnostic
// (lenient mode). n <= 0 keeps the 4 MiB default.
func WithMaxLineBytes(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxLineBytes = n
		}
	}
}

// WithLenient switches Load and LoadAll into the recovering parse mode
// of pdb.ReadLenient: malformed item blocks are skipped with structured
// diagnostics instead of aborting the load, and the diagnostics ride on
// the database (ductape's Raw().Recovered) for the analysis layer.
// Recovered/dropped counts flow into WithStats and the metrics
// registry. Lenient files are parsed with the sequential recovering
// reader — cross-file parallelism in LoadAll is unaffected, but the
// intra-file block pipeline only runs in strict mode, where damaged
// input aborts anyway.
func WithLenient() Option {
	return func(c *config) { c.lenient = true }
}

// WithQuarantine makes lenient loads dump every skipped span into dir
// (one file per span, named <input>.<start>-<end>.skipped) for
// post-mortem inspection. The dir is created on first use. Implies
// nothing in strict mode.
func WithQuarantine(dir string) Option {
	return func(c *config) { c.quarantine = dir }
}

// WithRetry makes Load and LoadAll retry transient I/O failures —
// errors reporting Temporary() == true (the net.Error convention, which
// injected faults from internal/faultio follow) or wrapping
// io.ErrUnexpectedEOF / EINTR / EAGAIN / EIO, or the
// connection-lifecycle errnos a daemon restart surfaces (ECONNRESET /
// ECONNREFUSED / EPIPE) — up to n extra attempts
// per file, sleeping backoff before the first retry and doubling it
// each attempt. Parse failures are never retried.
func WithRetry(n int, backoff time.Duration) Option {
	return func(c *config) {
		if n > 0 {
			c.retries = n
			c.backoff = backoff
		}
	}
}

// WithFS reroutes Load and LoadAll file opens through fsys instead of
// the OS filesystem — the seam the fault-injection harness
// (internal/faultio) plugs into, and the hook for future non-POSIX
// backends. Paths must be valid fs.FS paths.
func WithFS(fsys fs.FS) Option {
	return func(c *config) { c.fsys = fsys }
}

// WithStats accumulates resilience counters (recoveries, dropped lines,
// retries) into s as loads run. A nil s disables the accounting.
func WithStats(s *Stats) Option {
	return func(c *config) { c.stats = s }
}

// WithCheckpoint makes Merge journal every completed tree-reduction
// unit into dir as a crash-safe checkpoint (internal/durable.Journal):
// each unit is written atomically under a content hash of its inputs
// and the merge options. With resume, a restarted merge loads
// verified checkpoints instead of recomputing their units — proven
// byte-identical to an uninterrupted run, since a key can only name
// one byte string and stale or torn entries are invalidated by hash
// mismatch. Progress is visible in the metrics registry as
// checkpoint.written / checkpoint.reused / checkpoint.invalidated.
// Checkpointing forces the tree-reduction path even at one worker, so
// the journaled units are identical at every -j.
func WithCheckpoint(dir string, resume bool) Option {
	return func(c *config) {
		c.ckptDir = dir
		c.resume = resume
	}
}

// WithWriteFS reroutes all durable writes — checkpoints and
// MergeToFile's final output — through fsys instead of the real
// filesystem. It is the kill-point seam: internal/faultio's CrashFS
// implements durable.FS to cut the write stream at a chosen byte or
// operation.
func WithWriteFS(fsys durable.FS) Option {
	return func(c *config) { c.writeFS = fsys }
}
