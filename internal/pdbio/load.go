package pdbio

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/pdb"
)

// Load reads the PDB file at path with the chunked parallel reader and
// builds the DUCTAPE object graph. With WithLenient it recovers past
// malformed spans instead of failing; with WithRetry it retries
// transient I/O errors.
func Load(ctx context.Context, path string, opts ...Option) (*ductape.PDB, error) {
	cfg := newConfig(opts)
	return load(ctx, path, cfg)
}

// load runs loadOnce under the configured retry policy: transient I/O
// failures are retried with doubling backoff, everything else (parse
// errors, cancellation) returns immediately.
func load(ctx context.Context, path string, cfg config) (*ductape.PDB, error) {
	backoff := cfg.backoff
	for attempt := 0; ; attempt++ {
		db, err := loadOnce(ctx, path, cfg)
		if err == nil || attempt >= cfg.retries || !retryable(err) || ctx.Err() != nil {
			return db, err
		}
		cfg.metrics.Counter("load.retries").Add(1)
		if cfg.stats != nil {
			cfg.stats.Retries.Add(1)
		}
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			backoff *= 2
		}
	}
}

// Retryable reports whether err is a transient failure worth retrying
// under this package's classification — the shared retry discipline:
// the loader's WithRetry policy and the taustream emitter's
// send-with-backoff both consult it, so "what is transient" has one
// answer toolkit-wide.
func Retryable(err error) bool { return retryable(err) }

// retryable classifies an error as a transient failure worth
// retrying: it reports Temporary() == true (the net.Error convention,
// followed by faultio's injected errors), or wraps one of the classic
// transient read failures, or one of the connection-lifecycle errnos a
// daemon restart surfaces to its clients — ECONNRESET, ECONNREFUSED,
// EPIPE — which syscall.Errno.Temporary() does not report but which
// resolve as soon as the peer is back. A false Temporary() therefore
// cannot veto the errno list (syscall.Errno implements Temporary, so
// an As-then-return would short-circuit every errno to its own
// conservative answer). Format/parse errors never match.
func retryable(err error) bool {
	var te interface{ Temporary() bool }
	if errors.As(err, &te) && te.Temporary() {
		return true
	}
	return errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE)
}

func loadOnce(ctx context.Context, path string, cfg config) (*ductape.PDB, error) {
	f, err := cfg.open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var raw *pdb.PDB
	if cfg.lenient {
		raw, err = cfg.readLenient(ctx, f, path)
	} else {
		raw, err = readRaw(ctx, f, cfg)
	}
	if err != nil {
		return nil, err
	}
	if cfg.strict {
		vs := cfg.startSpan("validate")
		verrs := raw.Validate()
		vs.End()
		if len(verrs) > 0 {
			return nil, fmt.Errorf("integrity: %w", errors.Join(verrs...))
		}
	}
	cfg.metrics.Counter("files.loaded").Add(1)
	db := ductape.FromRaw(raw)
	if len(cfg.postLoad) > 0 {
		hs := cfg.startSpan("post-load")
		for _, hook := range cfg.postLoad {
			hook(db)
		}
		hs.End()
	}
	return db, nil
}

// open resolves the configured filesystem: the OS by default, or the
// WithFS override (the fault-injection seam).
func (c config) open(path string) (io.ReadCloser, error) {
	if c.fsys != nil {
		return c.fsys.Open(path)
	}
	return os.Open(path)
}

// readLenient is the recovering per-file parse: pdb.ReadLenient plus
// the resilience accounting (stats, metrics counters) and the optional
// quarantine dump of every skipped span.
func (c config) readLenient(ctx context.Context, r io.Reader, path string) (*pdb.PDB, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := c.startSpan("read")
	defer sp.End()
	br := bufio.NewReader(r)
	var raw *pdb.PDB
	var diags []pdb.Diagnostic
	var err error
	if prefix, _ := br.Peek(len(pdb.BinaryMagic)); pdb.IsBinaryPrefix(prefix) {
		// Binary damage diagnostics carry byte offsets and section names
		// but no skipped source lines, so the dropped-line counters stay
		// zero and there is nothing for the quarantine to dump.
		raw, diags, err = pdb.ReadBinaryLenient(br, path)
	} else {
		raw, diags, err = pdb.ReadLenient(br, c.maxLineBytes, path)
	}
	if err != nil {
		return nil, err
	}
	if len(diags) > 0 {
		var dropped int64
		for _, d := range diags {
			dropped += int64(len(d.Skipped))
		}
		c.metrics.Counter("load.recovered").Add(int64(len(diags)))
		c.metrics.Counter("load.dropped_lines").Add(dropped)
		if c.stats != nil {
			c.stats.Recovered.Add(int64(len(diags)))
			c.stats.DroppedLines.Add(dropped)
		}
		if c.quarantine != "" {
			if qerr := writeQuarantine(c.quarantine, path, diags); qerr != nil {
				return nil, fmt.Errorf("quarantine: %w", qerr)
			}
		}
	}
	sp.AddItems(int64(raw.ItemCount()))
	return raw, nil
}

// writeQuarantine dumps each skipped span to its own file in dir,
// headed by the diagnostic it was recorded under. File names are
// content-addressed — <base>.<start>-<end>.<hash>.skipped, where the
// hash covers the input path and the dump bytes — so same-named spans
// from different inputs never silently overwrite each other, and the
// writes are atomic (durable.WriteFile) so a crash never leaves a
// torn dump. Identical spans from identical inputs coalesce onto one
// file, which holds the same bytes either way.
func writeQuarantine(dir, path string, diags []pdb.Diagnostic) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range diags {
		if len(d.Skipped) == 0 {
			continue
		}
		content := "# " + d.String() + "\n" + strings.Join(d.Skipped, "\n") + "\n"
		sum := sha256.Sum256([]byte(path + "\x00" + content))
		name := fmt.Sprintf("%s.%d-%d.%s.skipped", filepath.Base(path),
			d.StartLine, d.EndLine, hex.EncodeToString(sum[:6]))
		if err := durable.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadAll reads every path concurrently. It keeps going after a
// failure: all inputs are attempted, and the returned error joins one
// %w-wrapped error per failed input (check with errors.Is/As).
// Cancellation is the exception to the joining: when the context is
// canceled the cancellation itself is returned (errors.Is
// context.Canceled / DeadlineExceeded), never folded into the per-file
// join as N spurious file errors. The databases come back in input
// order; on error the slice is nil.
func LoadAll(ctx context.Context, paths []string, opts ...Option) ([]*ductape.PDB, error) {
	cfg := newConfig(opts)
	dbs := make([]*ductape.PDB, len(paths))
	loadErrs := make([]error, len(paths))

	sp := cfg.startSpan("load")
	defer sp.End()
	sp.AddItems(int64(len(paths)))

	// Cross-file parallelism comes first: with many files each is
	// parsed inline on its worker, and only when files are fewer than
	// workers does the leftover budget go to intra-file block parsing.
	workers := cfg.workerCount()
	if workers > len(paths) {
		workers = len(paths)
	}
	if workers < 1 {
		workers = 1
	}
	fileCfg := cfg.under(sp)
	fileCfg.workers = cfg.workerCount() / workers

	pool := cfg.metrics.Pool("load")
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range paths {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wrk *obs.Worker) {
			defer wg.Done()
			for i := range next {
				t0 := wrk.Begin()
				dbs[i], loadErrs[i] = load(ctx, paths[i], fileCfg)
				wrk.End(t0, 1, 0)
			}
		}(pool.Worker(w))
	}
	wg.Wait()

	// Cancellation surfaces as cancellation, exactly once: per-file
	// context errors are excluded from the join so a canceled 1000-file
	// load does not read as 1000 file failures.
	var joined []error
	var canceled error
	for i, err := range loadErrs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			canceled = err
		default:
			joined = append(joined, fmt.Errorf("%s: %w", paths[i], err))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if canceled != nil {
		// A per-file cancellation without a canceled parent context
		// (e.g. an internal reader race) must still read as one.
		return nil, canceled
	}
	if len(joined) > 0 {
		return nil, errors.Join(joined...)
	}
	return dbs, nil
}
