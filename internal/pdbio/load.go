package pdbio

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"pdt/internal/ductape"
	"pdt/internal/obs"
)

// Load reads the PDB file at path with the chunked parallel reader and
// builds the DUCTAPE object graph.
func Load(ctx context.Context, path string, opts ...Option) (*ductape.PDB, error) {
	cfg := newConfig(opts)
	return load(ctx, path, cfg)
}

func load(ctx context.Context, path string, cfg config) (*ductape.PDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := readRaw(ctx, f, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.strict {
		vs := cfg.startSpan("validate")
		verrs := raw.Validate()
		vs.End()
		if len(verrs) > 0 {
			return nil, fmt.Errorf("integrity: %w", errors.Join(verrs...))
		}
	}
	cfg.metrics.Counter("files.loaded").Add(1)
	return ductape.FromRaw(raw), nil
}

// LoadAll reads every path concurrently. It keeps going after a
// failure: all inputs are attempted, and the returned error joins one
// %w-wrapped error per failed input (check with errors.Is/As). The
// databases come back in input order; on error the slice is nil.
func LoadAll(ctx context.Context, paths []string, opts ...Option) ([]*ductape.PDB, error) {
	cfg := newConfig(opts)
	dbs := make([]*ductape.PDB, len(paths))
	loadErrs := make([]error, len(paths))

	sp := cfg.startSpan("load")
	defer sp.End()
	sp.AddItems(int64(len(paths)))

	// Cross-file parallelism comes first: with many files each is
	// parsed inline on its worker, and only when files are fewer than
	// workers does the leftover budget go to intra-file block parsing.
	workers := cfg.workerCount()
	if workers > len(paths) {
		workers = len(paths)
	}
	if workers < 1 {
		workers = 1
	}
	fileCfg := cfg.under(sp)
	fileCfg.workers = cfg.workerCount() / workers

	pool := cfg.metrics.Pool("load")
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range paths {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wrk *obs.Worker) {
			defer wg.Done()
			for i := range next {
				t0 := wrk.Begin()
				dbs[i], loadErrs[i] = load(ctx, paths[i], fileCfg)
				wrk.End(t0, 1, 0)
			}
		}(pool.Worker(w))
	}
	wg.Wait()

	var joined []error
	for i, err := range loadErrs {
		if err != nil {
			joined = append(joined, fmt.Errorf("%s: %w", paths[i], err))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(joined) > 0 {
		return nil, errors.Join(joined...)
	}
	return dbs, nil
}
