package pdbio

import (
	"context"
	"errors"
	"io"
	"sync"

	"pdt/internal/ductape"
)

// Merge combines the databases with a balanced binary tree reduction:
// adjacent pairs are merged concurrently, then the halved list again,
// until one database remains. Input order is preserved at every level,
// so the result is byte-identical to the sequential left-to-right
// ductape.Merge over the same inputs — the dedup keys and the
// richer-payload resolution are order-associative.
func Merge(ctx context.Context, dbs []*ductape.PDB, opts ...Option) (*ductape.PDB, error) {
	cfg := newConfig(opts)
	if len(dbs) == 0 {
		return nil, errors.New("no databases to merge")
	}
	if len(dbs) == 1 {
		// Normalize like ductape.Merge: a single input is still
		// renumbered and deduplicated.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return ductape.Merge(dbs[0]), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := cfg.workerCount()
	if workers <= 1 {
		// One worker: the tree would serialize anyway, and its
		// intermediate databases cost ~log2(N) times the copy work of
		// the single-pass fold. Same bytes either way.
		return ductape.Merge(dbs...), nil
	}
	cur := dbs
	for len(cur) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		level := cur
		next := make([]*ductape.PDB, (len(cur)+1)/2)
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(cur); i += 2 {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				next[i/2] = ductape.Merge(level[i], level[i+1])
			}(i)
		}
		if len(cur)%2 == 1 {
			// The odd database out passes through unmerged; the next
			// level picks it up in position.
			next[len(next)-1] = cur[len(cur)-1]
		}
		wg.Wait()
		cur = next
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cur[0], nil
}

// MergeFiles loads every input concurrently, merges the databases with
// the tree reduction, and writes the merged database to w — the whole
// pdbmerge pipeline behind one call.
func MergeFiles(ctx context.Context, w io.Writer, paths []string, opts ...Option) error {
	if len(paths) == 0 {
		return errors.New("no input files")
	}
	dbs, err := LoadAll(ctx, paths, opts...)
	if err != nil {
		return err
	}
	merged, err := Merge(ctx, dbs, opts...)
	if err != nil {
		return err
	}
	return merged.Write(w)
}
