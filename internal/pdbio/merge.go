package pdbio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"pdt/internal/ductape"
	"pdt/internal/obs"
)

// Merge combines the databases with a balanced binary tree reduction:
// adjacent pairs are merged concurrently, then the halved list again,
// until one database remains. Input order is preserved at every level,
// so the result is byte-identical to the sequential left-to-right
// ductape.Merge over the same inputs — the dedup keys and the
// richer-payload resolution are order-associative.
func Merge(ctx context.Context, dbs []*ductape.PDB, opts ...Option) (*ductape.PDB, error) {
	cfg := newConfig(opts)
	sp := cfg.startSpan("merge")
	defer sp.End()
	sp.AddItems(int64(len(dbs)))
	if len(dbs) == 0 {
		return nil, errors.New("no databases to merge")
	}
	if len(dbs) == 1 {
		// Normalize like ductape.Merge: a single input is still
		// renumbered and deduplicated.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return ductape.Merge(dbs[0]), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.ckptDir != "" {
		// Journaling forces the tree path even at one worker, so the
		// checkpointed units are identical at every worker count and a
		// -j 1 resume can reuse a -j 8 run's journal.
		return mergeCheckpointed(ctx, dbs, cfg, sp)
	}
	workers := cfg.workerCount()
	if workers <= 1 {
		// One worker: the tree would serialize anyway, and its
		// intermediate databases cost ~log2(N) times the copy work of
		// the single-pass fold. Same bytes either way.
		return ductape.Merge(dbs...), nil
	}
	pool := cfg.metrics.Pool("merge")
	cur := dbs
	for level := 1; len(cur) > 1; level++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ls := sp.Start(fmt.Sprintf("level-%d", level))
		in := cur
		next := make([]*ductape.PDB, (len(cur)+1)/2)
		pairs := len(cur) / 2
		ls.AddItems(int64(pairs))
		lw := workers
		if lw > pairs {
			lw = pairs
		}
		// Indexed workers pull pair indices from a channel; each pair's
		// result lands in its own slot, so scheduling never affects the
		// output and per-worker busy time is attributable.
		feed := make(chan int)
		go func() {
			defer close(feed)
			for i := 0; i+1 < len(in); i += 2 {
				select {
				case feed <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < lw; w++ {
			wg.Add(1)
			go func(wrk *obs.Worker) {
				defer wg.Done()
				for i := range feed {
					t0 := wrk.Begin()
					next[i/2] = ductape.Merge(in[i], in[i+1])
					wrk.End(t0, 1, 0)
				}
			}(pool.Worker(w))
		}
		if len(cur)%2 == 1 {
			// The odd database out passes through unmerged; the next
			// level picks it up in position.
			next[len(next)-1] = cur[len(cur)-1]
		}
		wg.Wait()
		ls.End()
		cur = next
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cur[0], nil
}

// MergeFiles loads every input concurrently, merges the databases with
// the tree reduction, and writes the merged database to w — the whole
// pdbmerge pipeline behind one call.
func MergeFiles(ctx context.Context, w io.Writer, paths []string, opts ...Option) error {
	if len(paths) == 0 {
		return errors.New("no input files")
	}
	dbs, err := LoadAll(ctx, paths, opts...)
	if err != nil {
		return err
	}
	merged, err := Merge(ctx, dbs, opts...)
	if err != nil {
		return err
	}
	cfg := newConfig(opts)
	ws := cfg.startSpan("write")
	defer ws.End()
	return cfg.writeMerged(merged, w)
}
