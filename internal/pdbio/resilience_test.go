package pdbio_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/fstest"

	"pdt/internal/faultio"
	"pdt/internal/obs"
	"pdt/internal/pdb"
	"pdt/internal/pdbio"
)

// writeTemp writes text as a file in a fresh temp dir and returns the
// path.
func writeTemp(tb testing.TB, name, text string) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		tb.Fatal(err)
	}
	return path
}

func TestLoadLenientCleanMatchesStrict(t *testing.T) {
	ctx := context.Background()
	for _, entry := range corpus(t) {
		text := pdbText(t, entry.db)
		path := writeTemp(t, "clean.pdb", text)

		strict, err := pdbio.Load(ctx, path)
		if err != nil {
			t.Fatalf("%s: strict load: %v", entry.name, err)
		}
		var stats pdbio.Stats
		lenient, err := pdbio.Load(ctx, path, pdbio.WithLenient(), pdbio.WithStats(&stats))
		if err != nil {
			t.Fatalf("%s: lenient load: %v", entry.name, err)
		}
		if got, want := pdbText(t, lenient), pdbText(t, strict); got != want {
			t.Errorf("%s: lenient load of clean input differs from strict", entry.name)
		}
		if n := stats.Recovered.Load(); n != 0 {
			t.Errorf("%s: clean input recorded %d recoveries", entry.name, n)
		}
	}
}

// textBlock is one item block of a serialized PDB: its 1-based line
// span (including the separator lines around it, which damage can merge
// into a neighbor) and the head's tag and name.
type textBlock struct {
	startLine, endLine int
	tag, name          string
}

// splitTextBlocks scans a serialized PDB into item blocks with line
// spans, plus a lineOf index mapping byte offsets to 1-based lines.
func splitTextBlocks(text string) (blocks []textBlock, lineOf func(off int64) int) {
	lines := strings.SplitAfter(text, "\n")
	starts := make([]int64, len(lines))
	var off int64
	for i, l := range lines {
		starts[i] = off
		off += int64(len(l))
	}
	lineOf = func(o int64) int {
		lo, hi := 0, len(starts)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if starts[mid] <= o {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo + 1
	}
	open := -1
	for i, l := range lines {
		trimmed := strings.TrimSpace(l)
		if trimmed == "" {
			if open >= 0 {
				blocks[len(blocks)-1].endLine = i // previous line, 1-based
				open = -1
			}
			continue
		}
		if open < 0 {
			head, rest, _ := strings.Cut(trimmed, " ")
			if strings.Index(head, "#") == 2 {
				blocks = append(blocks, textBlock{startLine: i + 1, endLine: i + 1, tag: head, name: rest})
				open = len(blocks) - 1
			}
			// Header or stray text: not a block; attr lines that follow
			// without a head stay unattributed.
			continue
		}
		blocks[len(blocks)-1].endLine = i + 1
	}
	return blocks, lineOf
}

// itemNames maps "xx#N" tags to the names carried under that tag. A
// corrupted head elsewhere in the stream can collide with a clean
// item's ID, so one tag may map to several names — the invariant only
// demands the clean item's name be among them.
func itemNames(p *pdb.PDB) map[string][]string {
	m := map[string][]string{}
	add := func(prefix string, id int, name string) {
		tag := fmt.Sprintf("%s#%d", prefix, id)
		m[tag] = append(m[tag], name)
	}
	for _, f := range p.Files {
		add(pdb.PrefixSourceFile, f.ID, f.Name)
	}
	for _, r := range p.Routines {
		add(pdb.PrefixRoutine, r.ID, r.Name)
	}
	for _, c := range p.Classes {
		add(pdb.PrefixClass, c.ID, c.Name)
	}
	for _, y := range p.Types {
		add(pdb.PrefixType, y.ID, y.Name)
	}
	for _, te := range p.Templates {
		add(pdb.PrefixTemplate, te.ID, te.Name)
	}
	for _, n := range p.Namespaces {
		add(pdb.PrefixNamespace, n.ID, n.Name)
	}
	for _, ma := range p.Macros {
		add(pdb.PrefixMacro, ma.ID, ma.Name)
	}
	return m
}

// TestLoadLenientCorruptedCorpusProperty is the fault-injection
// property test of the resilient-ingestion work: for every corpus
// database and a spread of fixed seeds, corrupt random bytes of the
// serialized text and load it leniently. The load must never panic and
// never fail on format damage, and — the stronger invariant — every
// item whose block the corruption did not touch must survive with its
// identity intact: recovery skips damage, it does not eat neighbors.
func TestLoadLenientCorruptedCorpusProperty(t *testing.T) {
	ctx := context.Background()
	entries := corpus(t)
	for _, entry := range entries {
		text := pdbText(t, entry.db)
		blocks, lineOf := splitTextBlocks(text)
		for seed := int64(1); seed <= 8; seed++ {
			// Damage scales with the corpus: roughly one corruption per
			// ten blocks, at least two.
			n := len(blocks)/10 + 2
			corrupted, offs := faultio.CorruptBytes([]byte(text), seed, n)

			// A corrupted offset damages its line; corrupting a newline
			// merges two lines, so the following line is damaged too. A
			// block is touched when the damage reaches one line around
			// its span (separator damage can merge neighbors).
			damaged := map[int]bool{}
			for _, off := range offs {
				line := lineOf(off)
				damaged[line] = true
				if text[off] == '\n' {
					damaged[line+1] = true
				}
			}
			touched := func(b textBlock) bool {
				for l := b.startLine - 1; l <= b.endLine+1; l++ {
					if damaged[l] {
						return true
					}
				}
				return false
			}

			path := writeTemp(t, "corrupt.pdb", string(corrupted))
			var stats pdbio.Stats
			db, err := pdbio.Load(ctx, path, pdbio.WithLenient(), pdbio.WithStats(&stats))
			if err != nil {
				t.Fatalf("%s seed %d: lenient load failed on format damage: %v", entry.name, seed, err)
			}
			got := itemNames(db.Raw())
			for _, b := range blocks {
				if touched(b) {
					continue
				}
				found := false
				for _, name := range got[b.tag] {
					found = found || name == b.name
				}
				if !found {
					t.Errorf("%s seed %d: untouched item %s %q silently dropped (corrupted offsets %v, got %v)",
						entry.name, seed, b.tag, b.name, offs, got[b.tag])
				}
			}
		}
	}
}

func TestLoadLenientQuarantine(t *testing.T) {
	ctx := context.Background()
	in := `<PDB 1.0>

so#1 main.cpp

cl#x Widget
cloc so#1 3 7

so#2 util.h
`
	path := writeTemp(t, "damaged.pdb", in)
	qdir := filepath.Join(t.TempDir(), "quarantine")
	var stats pdbio.Stats
	db, err := pdbio.Load(ctx, path, pdbio.WithLenient(),
		pdbio.WithQuarantine(qdir), pdbio.WithStats(&stats))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := len(db.Raw().Files); got != 2 {
		t.Errorf("files = %d, want both preserved", got)
	}
	if stats.Recovered.Load() != 1 || stats.DroppedLines.Load() != 2 {
		t.Errorf("stats = %d recovered / %d dropped, want 1/2",
			stats.Recovered.Load(), stats.DroppedLines.Load())
	}
	matches, err := filepath.Glob(filepath.Join(qdir, "damaged.pdb.*.skipped"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("quarantine files = %v (%v), want one", matches, err)
	}
	content, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(content), "# ") ||
		!strings.Contains(string(content), "cl#x Widget") {
		t.Errorf("quarantine content = %q, want the diagnostic header and the skipped lines", content)
	}
}

func TestLoadRetrySucceedsAfterTransientFaults(t *testing.T) {
	ctx := context.Background()
	text := pdbText(t, corpus(t)[0].db)
	base := fstest.MapFS{"unit.pdb": &fstest.MapFile{Data: []byte(text)}}
	fsys := faultio.NewFS(base, faultio.FailOpens(2))

	var stats pdbio.Stats
	m := obs.New("test")
	db, err := pdbio.Load(ctx, "unit.pdb",
		pdbio.WithFS(fsys), pdbio.WithRetry(3, 0), pdbio.WithStats(&stats), pdbio.WithMetrics(m))
	if err != nil {
		t.Fatalf("Load with retry: %v", err)
	}
	if got := pdbText(t, db); got != text {
		t.Error("retried load returned different bytes")
	}
	if n := stats.Retries.Load(); n != 2 {
		t.Errorf("stats.Retries = %d, want 2", n)
	}
	if n := fsys.OpenCount("unit.pdb"); n != 3 {
		t.Errorf("opens = %d, want 3", n)
	}
	if snap := m.Snapshot(); snap.Counters["load.retries"] != 2 {
		t.Errorf("load.retries counter = %d, want 2", snap.Counters["load.retries"])
	}
}

func TestLoadRetryBudgetExhausted(t *testing.T) {
	ctx := context.Background()
	base := fstest.MapFS{"unit.pdb": &fstest.MapFile{Data: []byte("<PDB 1.0>\n")}}
	fsys := faultio.NewFS(base, faultio.FailOpens(5))

	_, err := pdbio.Load(ctx, "unit.pdb", pdbio.WithFS(fsys), pdbio.WithRetry(2, 0))
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("err = %v, want the injected fault after the retry budget", err)
	}
	if n := fsys.OpenCount("unit.pdb"); n != 3 {
		t.Errorf("opens = %d, want 1 + 2 retries", n)
	}
}

func TestLoadParseErrorsNotRetried(t *testing.T) {
	ctx := context.Background()
	path := writeTemp(t, "bad.pdb", "<PDB 1.0>\n\nbogus line here\n")
	var stats pdbio.Stats
	_, err := pdbio.Load(ctx, path, pdbio.WithRetry(3, 0), pdbio.WithStats(&stats))
	if err == nil {
		t.Fatal("strict load of damaged input succeeded")
	}
	if n := stats.Retries.Load(); n != 0 {
		t.Errorf("parse error cost %d retries, want 0", n)
	}
}

// TestLoadAllCancellationSurfacesAsCancellation pins the keep-going
// contract of LoadAll: cancellation is returned as the cancellation it
// is, not folded into the per-file errors.Join as N spurious file
// failures.
func TestLoadAllCancellationSurfacesAsCancellation(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 6; i++ {
		p := filepath.Join(dir, fmt.Sprintf("u%d.pdb", i))
		if err := os.WriteFile(p, []byte("<PDB 1.0>\n\nso#1 main.cpp\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pdbio.LoadAll(ctx, paths)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	if n := strings.Count(err.Error(), "context canceled"); n != 1 {
		t.Errorf("error mentions cancellation %d times, want once: %q", n, err)
	}
}

// cancelFS fails one path with context.Canceled to model a per-file
// cancellation that the parent context never saw.
type cancelFS struct {
	base     fstest.MapFS
	poisoned string
}

func (c cancelFS) Open(name string) (fs.File, error) {
	if name == c.poisoned {
		return nil, context.Canceled
	}
	return c.base.Open(name)
}

func TestLoadAllPerFileCancellationNotJoined(t *testing.T) {
	base := fstest.MapFS{
		"a.pdb": &fstest.MapFile{Data: []byte("<PDB 1.0>\n\nso#1 a.cpp\n")},
		"b.pdb": &fstest.MapFile{Data: []byte("<PDB 1.0>\n\nso#1 b.cpp\n")},
	}
	fsys := cancelFS{base: base, poisoned: "b.pdb"}
	_, err := pdbio.LoadAll(context.Background(), []string{"a.pdb", "b.pdb"}, pdbio.WithFS(fsys))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	if strings.Contains(err.Error(), "b.pdb") {
		t.Errorf("cancellation folded into the per-file join: %q", err)
	}
}

// TestLoadAllLenientKeepGoing mixes clean and damaged inputs: lenient
// keep-going loads everything, strict reports only the damaged file.
func TestLoadAllLenientKeepGoing(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.pdb")
	damaged := filepath.Join(dir, "damaged.pdb")
	// The junk line sits before any item head: that is the damage the
	// strict reader rejects ("attribute outside any item") while the
	// lenient reader records and skips.
	os.WriteFile(clean, []byte("<PDB 1.0>\n\nso#1 a.cpp\n"), 0o644)
	os.WriteFile(damaged, []byte("<PDB 1.0>\n\nbogus junk\n\nso#1 b.cpp\n\nso#2 c.h\n"), 0o644)

	_, err := pdbio.LoadAll(ctx, []string{clean, damaged})
	if err == nil || !strings.Contains(err.Error(), "damaged.pdb") || strings.Contains(err.Error(), "clean.pdb") {
		t.Fatalf("strict err = %v, want only the damaged file reported", err)
	}

	var stats pdbio.Stats
	dbs, err := pdbio.LoadAll(ctx, []string{clean, damaged},
		pdbio.WithLenient(), pdbio.WithStats(&stats))
	if err != nil {
		t.Fatalf("lenient LoadAll: %v", err)
	}
	if len(dbs) != 2 || len(dbs[1].Raw().Files) != 2 {
		t.Errorf("lenient load lost items: %d dbs", len(dbs))
	}
	if stats.Recovered.Load() == 0 {
		t.Error("no recoveries recorded for the damaged input")
	}
}
