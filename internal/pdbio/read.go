package pdbio

import (
	"bufio"
	"context"
	"io"
	"sync"

	"pdt/internal/ductape"
	"pdt/internal/obs"
	"pdt/internal/pdb"
)

// Read parses a PDB stream with the chunked parallel reader and builds
// the DUCTAPE object graph. The parsed database is byte-identical to
// what the sequential pdb.Read produces for the same stream.
func Read(ctx context.Context, r io.Reader, opts ...Option) (*ductape.PDB, error) {
	cfg := newConfig(opts)
	raw, err := readRaw(ctx, r, cfg)
	if err != nil {
		return nil, err
	}
	return ductape.FromRaw(raw), nil
}

// blockSize sums the line bytes of a block, for the split stage's byte
// accounting. Called only when metrics are enabled.
func blockSize(b pdb.Block) int64 {
	var n int64
	for _, ln := range b.Lines {
		n += int64(len(ln.Text)) + 1
	}
	return n
}

// readRaw runs the three-stage pipeline: stage 1 splits the stream
// into item blocks, stage 2 parses blocks on a worker pool, stage 3
// reassembles the fragments in input order.
func readRaw(ctx context.Context, r io.Reader, cfg config) (*pdb.PDB, error) {
	// Binary streams announce themselves with the PDTB magic; they have
	// no line structure for the block pipeline to split, so they take
	// the dedicated binary decoder at any worker count.
	br := bufio.NewReader(r)
	if prefix, _ := br.Peek(len(pdb.BinaryMagic)); pdb.IsBinaryPrefix(prefix) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := cfg.startSpan("read")
		defer sp.End()
		raw, err := pdb.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		sp.AddItems(int64(raw.ItemCount()))
		return raw, nil
	}
	r = br

	workers := cfg.workerCount()
	if workers <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.metrics == nil {
			return pdb.ReadLimit(r, cfg.maxLineBytes)
		}
		return readSeqInstrumented(r, cfg)
	}

	sp := cfg.startSpan("read")
	defer sp.End()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		idx    int
		blocks []pdb.Block
	}
	type parsed struct {
		idx  int
		frag *pdb.PDB
		err  error
	}
	jobs := make(chan job, workers)
	results := make(chan parsed, workers)

	// Stage 1: the splitter feeds batches of blocks to the pool as it
	// discovers them, so parsing overlaps the scan of the rest of the
	// stream. Batching keeps the channel traffic proportional to the
	// batch count, not the item count.
	const blockBatch = 64
	split := sp.Start("split")
	var splitErr error
	go func() {
		defer close(jobs)
		defer split.End()
		idx := 0
		var batch []pdb.Block
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			select {
			case jobs <- job{idx, batch}:
				idx++
				batch = nil
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		splitErr = pdb.SplitBlocks(r, cfg.maxLineBytes, func(b pdb.Block) error {
			if cfg.metrics != nil {
				split.AddItems(1)
				split.AddBytes(blockSize(b))
			}
			batch = append(batch, b)
			if len(batch) >= blockBatch {
				return flush()
			}
			return nil
		})
		if splitErr == nil {
			splitErr = flush()
		}
	}()

	// Stage 2: the worker pool. Each worker folds its batch into one
	// fragment, crediting its busy time to the shared "parse" pool so
	// utilization aggregates across concurrent loads.
	parse := sp.Start("parse")
	pool := cfg.metrics.Pool("parse")
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(wrk *obs.Worker) {
			defer wg.Done()
			for jb := range jobs {
				t0 := wrk.Begin()
				frag := &pdb.PDB{}
				var err error
				for _, b := range jb.blocks {
					sub, perr := pdb.ParseBlock(b)
					if perr != nil {
						err = perr
						break
					}
					frag.AppendItems(sub)
				}
				if cfg.metrics != nil {
					n := int64(frag.ItemCount())
					parse.AddItems(n)
					wrk.End(t0, n, 0)
				}
				select {
				case results <- parsed{jb.idx, frag, err}:
				case <-ctx.Done():
					return
				}
			}
		}(pool.Worker(i))
	}
	go func() {
		wg.Wait()
		parse.End()
		close(results)
	}()

	// Stage 3: collect fragments by index. Block parsing cannot fail on
	// anything SplitBlocks emits, but a worker error is still tracked
	// and the earliest one (in input order) wins, mirroring the
	// fail-on-first-error behavior of the sequential reader.
	var frags []*pdb.PDB
	firstErrIdx := -1
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErrIdx < 0 || res.idx < firstErrIdx {
				firstErrIdx, firstErr = res.idx, res.err
			}
			cancel()
			continue
		}
		for res.idx >= len(frags) {
			frags = append(frags, nil)
		}
		frags[res.idx] = res.frag
	}
	// The results channel is closed only after the workers exit, and
	// the workers exit only after the splitter closes jobs, so reading
	// splitErr here is ordered after its write. A block error wins over
	// splitErr: it concerns earlier input, and the cancel it triggers
	// may have turned splitErr into a bare context error.
	if firstErr != nil {
		return nil, firstErr
	}
	if splitErr != nil {
		return nil, splitErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reasm := sp.Start("reassemble")
	out := &pdb.PDB{}
	for _, frag := range frags {
		out.AppendItems(frag)
	}
	reasm.AddItems(int64(len(frags)))
	reasm.End()
	return out, nil
}

// readSeqInstrumented is the one-worker read with metrics enabled: it
// runs the same split/parse stages as the parallel path, inline, so
// the stage spans exist at every worker count. The block path is
// byte-equivalent to pdb.ReadLimit (the invariant the pdbio
// equivalence tests and fuzz target pin down), so the parsed database
// and the error behavior are unchanged.
func readSeqInstrumented(r io.Reader, cfg config) (*pdb.PDB, error) {
	sp := cfg.startSpan("read")
	defer sp.End()
	split := sp.Start("split")
	parse := sp.Start("parse")
	defer parse.End()
	defer split.End()
	out := &pdb.PDB{}
	err := pdb.SplitBlocks(r, cfg.maxLineBytes, func(b pdb.Block) error {
		split.AddItems(1)
		split.AddBytes(blockSize(b))
		frag, perr := pdb.ParseBlock(b)
		if perr != nil {
			return perr
		}
		parse.AddItems(int64(frag.ItemCount()))
		out.AppendItems(frag)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
