package pdbio

import (
	"context"
	"io"
	"sync"

	"pdt/internal/ductape"
	"pdt/internal/pdb"
)

// Read parses a PDB stream with the chunked parallel reader and builds
// the DUCTAPE object graph. The parsed database is byte-identical to
// what the sequential pdb.Read produces for the same stream.
func Read(ctx context.Context, r io.Reader, opts ...Option) (*ductape.PDB, error) {
	cfg := newConfig(opts)
	raw, err := readRaw(ctx, r, cfg)
	if err != nil {
		return nil, err
	}
	return ductape.FromRaw(raw), nil
}

// readRaw runs the three-stage pipeline: stage 1 splits the stream
// into item blocks, stage 2 parses blocks on a worker pool, stage 3
// reassembles the fragments in input order.
func readRaw(ctx context.Context, r io.Reader, cfg config) (*pdb.PDB, error) {
	workers := cfg.workerCount()
	if workers <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return pdb.ReadLimit(r, cfg.maxLineBytes)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		idx    int
		blocks []pdb.Block
	}
	type parsed struct {
		idx  int
		frag *pdb.PDB
		err  error
	}
	jobs := make(chan job, workers)
	results := make(chan parsed, workers)

	// Stage 1: the splitter feeds batches of blocks to the pool as it
	// discovers them, so parsing overlaps the scan of the rest of the
	// stream. Batching keeps the channel traffic proportional to the
	// batch count, not the item count.
	const blockBatch = 64
	var splitErr error
	go func() {
		defer close(jobs)
		idx := 0
		var batch []pdb.Block
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			select {
			case jobs <- job{idx, batch}:
				idx++
				batch = nil
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		splitErr = pdb.SplitBlocks(r, cfg.maxLineBytes, func(b pdb.Block) error {
			batch = append(batch, b)
			if len(batch) >= blockBatch {
				return flush()
			}
			return nil
		})
		if splitErr == nil {
			splitErr = flush()
		}
	}()

	// Stage 2: the worker pool. Each worker folds its batch into one
	// fragment.
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				frag := &pdb.PDB{}
				var err error
				for _, b := range jb.blocks {
					sub, perr := pdb.ParseBlock(b)
					if perr != nil {
						err = perr
						break
					}
					frag.AppendItems(sub)
				}
				select {
				case results <- parsed{jb.idx, frag, err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Stage 3: collect fragments by index. Block parsing cannot fail on
	// anything SplitBlocks emits, but a worker error is still tracked
	// and the earliest one (in input order) wins, mirroring the
	// fail-on-first-error behavior of the sequential reader.
	var frags []*pdb.PDB
	firstErrIdx := -1
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErrIdx < 0 || res.idx < firstErrIdx {
				firstErrIdx, firstErr = res.idx, res.err
			}
			cancel()
			continue
		}
		for res.idx >= len(frags) {
			frags = append(frags, nil)
		}
		frags[res.idx] = res.frag
	}
	// The results channel is closed only after the workers exit, and
	// the workers exit only after the splitter closes jobs, so reading
	// splitErr here is ordered after its write. A block error wins over
	// splitErr: it concerns earlier input, and the cancel it triggers
	// may have turned splitErr into a bare context error.
	if firstErr != nil {
		return nil, firstErr
	}
	if splitErr != nil {
		return nil, splitErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &pdb.PDB{}
	for _, frag := range frags {
		out.AppendItems(frag)
	}
	return out, nil
}
