package pdbio

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"pdt/internal/ductape"
	"pdt/internal/durable"
	"pdt/internal/obs"
	"pdt/internal/pdb"
)

// mergeFingerprint pins the checkpoint key space: it enters every
// unit key, so a format or version change invalidates old journals
// wholesale instead of reusing entries produced under different merge
// semantics. Today no merge option changes the output bytes (the
// reduction is order-associative at every worker count), so the
// fingerprint is the only "options" component.
const mergeFingerprint = "pdt-merge-v1 pdb=" + pdb.Version

// mergeUnit is one node of the reduction tree: a database plus the
// content-derived key that names it in the checkpoint journal. Leaves
// are keyed by the hash of their serialized bytes; internal units by
// the hash of their children's keys and the fingerprint, so the key
// of every unit pins the exact inputs that produced it.
type mergeUnit struct {
	db  *ductape.PDB
	key string
}

// mergeCheckpointed is the journaling tree reduction behind
// WithCheckpoint: identical pairing and bytes to the plain Merge tree,
// but every completed pair-merge is stored in the journal, and — when
// resuming — verified entries are loaded instead of recomputed. The
// tree runs even at one worker so the journaled units are the same at
// every -j.
func mergeCheckpointed(ctx context.Context, dbs []*ductape.PDB, cfg config, sp *obs.Span) (*ductape.PDB, error) {
	j, err := durable.OpenJournal(cfg.durableFS(), cfg.ckptDir)
	if err != nil {
		return nil, err
	}

	// Leaf keys: hash each input's serialization in parallel. The hash
	// streams through the writer, so no input is buffered twice.
	units := make([]mergeUnit, len(dbs))
	hashErrs := make([]error, len(dbs))
	hs := sp.Start("hash")
	hs.AddItems(int64(len(dbs)))
	workers := cfg.workerCount()
	if workers > len(dbs) {
		workers = len(dbs)
	}
	var wg sync.WaitGroup
	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range dbs {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				h := sha256.New()
				if err := dbs[i].Write(h); err != nil {
					hashErrs[i] = err
					continue
				}
				units[i] = mergeUnit{db: dbs[i], key: hex.EncodeToString(h.Sum(nil))}
			}
		}()
	}
	wg.Wait()
	hs.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := errors.Join(hashErrs...); err != nil {
		return nil, fmt.Errorf("hashing inputs: %w", err)
	}

	pool := cfg.metrics.Pool("merge")
	for level := 1; len(units) > 1; level++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ls := sp.Start(fmt.Sprintf("level-%d", level))
		in := units
		next := make([]mergeUnit, (len(in)+1)/2)
		pairErrs := make([]error, len(in)/2)
		pairs := len(in) / 2
		ls.AddItems(int64(pairs))
		lw := workers
		if lw > pairs {
			lw = pairs
		}
		if lw < 1 {
			lw = 1
		}
		pairFeed := make(chan int)
		go func() {
			defer close(pairFeed)
			for p := 0; p < pairs; p++ {
				select {
				case pairFeed <- p:
				case <-ctx.Done():
					return
				}
			}
		}()
		var lwg sync.WaitGroup
		for w := 0; w < lw; w++ {
			lwg.Add(1)
			go func(wrk *obs.Worker) {
				defer lwg.Done()
				for p := range pairFeed {
					t0 := wrk.Begin()
					next[p], pairErrs[p] = cfg.mergeUnitPair(j, in[2*p], in[2*p+1])
					wrk.End(t0, 1, 0)
				}
			}(pool.Worker(w))
		}
		if len(in)%2 == 1 {
			// The odd unit out passes through with its key unchanged;
			// the next level pairs it in position.
			next[len(next)-1] = in[len(in)-1]
		}
		lwg.Wait()
		ls.End()
		if err := errors.Join(pairErrs...); err != nil {
			return nil, err
		}
		units = next
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return units[0].db, nil
}

// mergeUnitPair resolves one reduction unit: reuse the journaled
// result when resuming and the entry verifies, else merge the pair
// and journal the result atomically. A stored entry that exists but
// fails verification — torn, tampered, or from a different format —
// is counted as invalidated and overwritten; its bytes are never
// used.
func (c config) mergeUnitPair(j *durable.Journal, a, b mergeUnit) (mergeUnit, error) {
	key := durable.KeyOf(mergeFingerprint, a.key, b.key)
	if c.resume {
		payload, ok, invalid := j.Load(key)
		if ok {
			db, err := ductape.Read(bytes.NewReader(payload))
			if err == nil {
				c.metrics.Counter("checkpoint.reused").Add(1)
				return mergeUnit{db: db, key: key}, nil
			}
			// The checksum held but the payload no longer parses —
			// format drift. Treat exactly like a hash mismatch.
			invalid = true
		}
		if invalid {
			c.metrics.Counter("checkpoint.invalidated").Add(1)
		}
	}
	merged := ductape.Merge(a.db, b.db)
	var buf bytes.Buffer
	if err := merged.Write(&buf); err != nil {
		return mergeUnit{}, err
	}
	if err := j.Store(key, buf.Bytes()); err != nil {
		return mergeUnit{}, fmt.Errorf("checkpoint: %w", err)
	}
	c.metrics.Counter("checkpoint.written").Add(1)
	return mergeUnit{db: merged, key: key}, nil
}

// MergeToFile runs the whole pdbmerge pipeline with crash-consistent
// output: load every input concurrently, merge them (journaling
// checkpoints when WithCheckpoint is configured), and atomically
// replace path with the result — staged to a same-directory temp
// file, fsynced, renamed over the target, directory fsynced. At every
// write site a crash leaves path holding nothing, the previous bytes,
// or the complete new bytes, never a prefix; the kill-point property
// tests iterate a CrashFS over every site to prove it.
func MergeToFile(ctx context.Context, path string, inputs []string, opts ...Option) error {
	if len(inputs) == 0 {
		return errors.New("no input files")
	}
	dbs, err := LoadAll(ctx, inputs, opts...)
	if err != nil {
		return err
	}
	merged, err := Merge(ctx, dbs, opts...)
	if err != nil {
		return err
	}
	cfg := newConfig(opts)
	ws := cfg.startSpan("write")
	defer ws.End()
	w, err := durable.CreateFS(cfg.durableFS(), path)
	if err != nil {
		return err
	}
	if err := cfg.writeMerged(merged, w); err != nil {
		w.Abort()
		return err
	}
	// The durable child span isolates the crash-consistency cost —
	// fsync, atomic rename, directory fsync — from the serialization.
	ds := ws.Start("durable")
	defer ds.End()
	return w.Close()
}
