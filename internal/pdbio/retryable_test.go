package pdbio_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"

	"pdt/internal/pdbio"
)

// temporaryErr reports whatever Temporary() answer it is built with —
// the net.Error convention faultio's injected faults follow.
type temporaryErr struct{ temp bool }

func (e temporaryErr) Error() string   { return fmt.Sprintf("temporary=%v", e.temp) }
func (e temporaryErr) Temporary() bool { return e.temp }

// TestRetryableClassification is the table of the shared retry
// discipline: one row per errno and convention the loader's WithRetry
// policy and the taustream client consult. The connection-lifecycle
// errnos (ECONNRESET, ECONNREFUSED, EPIPE) matter most: a daemon
// restart surfaces exactly those to in-flight clients, and
// syscall.Errno.Temporary() reports false for all three — so each row
// also checks the wrapped forms a real dial/write produces, proving a
// false Temporary() cannot veto the errno list.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", errors.New("parse failed"), false},
		{"io.EOF", io.EOF, false},
		{"io.ErrUnexpectedEOF", io.ErrUnexpectedEOF, true},
		{"EINTR", syscall.EINTR, true},
		{"EAGAIN", syscall.EAGAIN, true},
		{"EIO", syscall.EIO, true},
		{"ECONNRESET", syscall.ECONNRESET, true},
		{"ECONNREFUSED", syscall.ECONNREFUSED, true},
		{"EPIPE", syscall.EPIPE, true},
		{"ENOENT", syscall.ENOENT, false},
		{"EACCES", syscall.EACCES, false},
		{"ENOSPC", syscall.ENOSPC, false},
		{"Temporary() true", temporaryErr{temp: true}, true},
		{"Temporary() false", temporaryErr{temp: false}, false},
		{"wrapped ECONNRESET", fmt.Errorf("read frame: %w", syscall.ECONNRESET), true},
		{"wrapped EPIPE", fmt.Errorf("send event: %w", syscall.EPIPE), true},
		{"net.OpError ECONNREFUSED", &net.OpError{
			Op: "dial", Net: "tcp",
			Err: &os.SyscallError{Syscall: "connect", Err: syscall.ECONNREFUSED},
		}, true},
		{"net.OpError ECONNRESET", &net.OpError{
			Op: "write", Net: "tcp",
			Err: &os.SyscallError{Syscall: "write", Err: syscall.ECONNRESET},
		}, true},
		{"net.OpError ENETUNREACH", &net.OpError{
			Op: "dial", Net: "tcp",
			Err: &os.SyscallError{Syscall: "connect", Err: syscall.ENETUNREACH},
		}, false},
		{"os.PathError ENOENT", &os.PathError{Op: "open", Path: "x.pdb", Err: syscall.ENOENT}, false},
		{"os.PathError EIO", &os.PathError{Op: "read", Path: "x.pdb", Err: syscall.EIO}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := pdbio.Retryable(tc.err); got != tc.want {
				t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// TestErrnoTemporaryIsFalseForConnReset pins the assumption the
// classifier's structure rests on: the kernel errnos a daemon restart
// produces do NOT self-report as temporary, so an As-then-return on
// Temporary() would misclassify them. If a Go release ever changes
// this, the early-return shortcut becomes safe again and this test
// documents why the fall-through exists.
func TestErrnoTemporaryIsFalseForConnReset(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.ECONNRESET, syscall.ECONNREFUSED, syscall.EPIPE} {
		if errno.Temporary() {
			t.Logf("note: %v now self-reports Temporary(); fall-through no longer load-bearing", errno)
		}
		if !pdbio.Retryable(errno) {
			t.Errorf("Retryable(%v) = false despite explicit errno listing", errno)
		}
	}
}
