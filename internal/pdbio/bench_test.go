package pdbio_test

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/pdbio"
	"pdt/internal/workload"
)

// benchFiles lazily builds the on-disk merge workload shared by the
// benchmarks: 12 translation units over one header, each with enough
// unit-local classes that parsing dominates.
var benchFiles struct {
	once  sync.Once
	dir   string
	paths []string
}

func mergeBenchPaths(b *testing.B) []string {
	b.Helper()
	benchFiles.once.Do(func() {
		dir, err := os.MkdirTemp("", "pdbio-bench")
		if err != nil {
			b.Fatal(err)
		}
		benchFiles.dir = dir
		// Dedup-heavy shape: most of each unit is shared template
		// instantiations (the paper's duplicate-elimination scenario),
		// so per-file parsing dominates and the merged result stays
		// small.
		hdr, units := workload.GenMergeUnits(12, 40, 8)
		for i, unit := range units {
			files := map[string]string{"shared.h": hdr, "unit.cpp": unit}
			db := compileUnit(b, files, "unit.cpp")
			path := filepath.Join(dir, "unit"+string(rune('a'+i))+".pdb")
			if err := os.WriteFile(path, []byte(pdbText(b, db)), 0o644); err != nil {
				b.Fatal(err)
			}
			benchFiles.paths = append(benchFiles.paths, path)
		}
	})
	if benchFiles.paths == nil {
		b.Fatal("bench workload setup failed earlier")
	}
	return benchFiles.paths
}

// BenchmarkMergeSequential is the old pdbmerge pipeline: load every
// input one after another, then fold left-to-right.
func BenchmarkMergeSequential(b *testing.B) {
	paths := mergeBenchPaths(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dbs := make([]*ductape.PDB, 0, len(paths))
		for _, p := range paths {
			db, err := ductape.ReadFile(p)
			if err != nil {
				b.Fatal(err)
			}
			dbs = append(dbs, db)
		}
		merged := ductape.Merge(dbs...)
		if err := merged.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeParallel is the pdbio pipeline over the same files:
// concurrent loading plus the k-way tree reduction.
func BenchmarkMergeParallel(b *testing.B) {
	paths := mergeBenchPaths(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pdbio.MergeFiles(ctx, io.Discard, paths); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadSequential / BenchmarkReadParallel isolate the chunked
// reader on one large concatenated database.
func readBenchText(b *testing.B) string {
	b.Helper()
	paths := mergeBenchPaths(b)
	ctx := context.Background()
	dbs, err := pdbio.LoadAll(ctx, paths)
	if err != nil {
		b.Fatal(err)
	}
	merged, err := pdbio.Merge(ctx, dbs)
	if err != nil {
		b.Fatal(err)
	}
	return pdbText(b, merged)
}

func BenchmarkReadSequential(b *testing.B) {
	text := readBenchText(b)
	ctx := context.Background()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdbio.Read(ctx, strings.NewReader(text),
			pdbio.WithWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadParallel(b *testing.B) {
	text := readBenchText(b)
	ctx := context.Background()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdbio.Read(ctx, strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}
