package pdbio_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/pdbio"
	"pdt/internal/workload"
)

// randTreeMerge folds the databases with a random parenthesization:
// the list is split at a random point, each half merged recursively,
// and the two halves merged pairwise. Input order is preserved — only
// the tree shape varies — so by the order-associativity of
// ductape.Merge every shape must produce identical bytes.
func randTreeMerge(r *rand.Rand, dbs []*ductape.PDB) *ductape.PDB {
	if len(dbs) == 1 {
		return dbs[0]
	}
	cut := 1 + r.Intn(len(dbs)-1)
	return ductape.Merge(randTreeMerge(r, dbs[:cut]), randTreeMerge(r, dbs[cut:]))
}

// mergeUnitDBs compiles a GenMergeUnits workload into per-unit
// databases.
func mergeUnitDBs(tb testing.TB, m, sharedInsts, localClasses int) []*ductape.PDB {
	tb.Helper()
	hdr, units := workload.GenMergeUnits(m, sharedInsts, localClasses)
	dbs := make([]*ductape.PDB, len(units))
	for i, unit := range units {
		files := map[string]string{"shared.h": hdr, "unit.cpp": unit}
		dbs[i] = compileUnit(tb, files, "unit.cpp")
	}
	return dbs
}

// TestMergeAssociativityProperty extends the fixed-order equivalence
// test of the tree reduction: over seeded random input permutations
// AND random merge-tree shapes of a GenMergeUnits workload, the merge
// result must be byte-identical to the sequential left-to-right fold
// over the same input order — the invariant that makes the parallel
// tree reduction safe at any worker count and any scheduling.
func TestMergeAssociativityProperty(t *testing.T) {
	ctx := context.Background()
	dbs := mergeUnitDBs(t, 7, 4, 3)

	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		r := rand.New(rand.NewSource(seed))

		// A fresh input permutation per trial. The fold over the
		// permuted order is the reference for this trial (the merge is
		// order-associative, not order-commutative: different input
		// orders legitimately renumber differently).
		perm := make([]*ductape.PDB, len(dbs))
		for i, j := range r.Perm(len(dbs)) {
			perm[i] = dbs[j]
		}
		want := pdbText(t, ductape.Merge(perm...))

		// Random parenthesizations of the permuted list.
		for shape := 0; shape < 4; shape++ {
			if got := pdbText(t, randTreeMerge(r, perm)); got != want {
				t.Fatalf("seed %d shape %d: random merge tree differs from fold",
					seed, shape)
			}
		}

		// The engine itself over the same order, at assorted worker
		// counts (its balanced tree is one more shape).
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := pdbio.Merge(ctx, perm, pdbio.WithWorkers(workers))
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if g := pdbText(t, got); g != want {
				t.Fatalf("seed %d workers %d: pdbio.Merge differs from fold",
					seed, workers)
			}
		}
	}
}

// TestMergeAssociativityPairs is the minimal three-way associativity
// law stated directly: (a+b)+c == a+(b+c) == fold(a,b,c).
func TestMergeAssociativityPairs(t *testing.T) {
	dbs := mergeUnitDBs(t, 3, 5, 2)
	a, b, c := dbs[0], dbs[1], dbs[2]
	fold := pdbText(t, ductape.Merge(a, b, c))
	left := pdbText(t, ductape.Merge(ductape.Merge(a, b), c))
	right := pdbText(t, ductape.Merge(a, ductape.Merge(b, c)))
	if left != fold {
		t.Error("(a+b)+c differs from fold(a,b,c)")
	}
	if right != fold {
		t.Error("a+(b+c) differs from fold(a,b,c)")
	}
	if !strings.Contains(fold, "<PDB") {
		t.Fatal("merged output is not a PDB")
	}
}
