package pdbio_test

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/ductape"
	"pdt/internal/ilanalyzer"
	"pdt/internal/pdb"
	"pdt/internal/pdbio"
	"pdt/internal/workload"
)

// compileUnit turns one translation unit of a virtual file map into a
// DUCTAPE database.
func compileUnit(tb testing.TB, files map[string]string, main string) *ductape.PDB {
	tb.Helper()
	opts := core.Options{}
	fset := core.NewFileSet(opts)
	for name, text := range files {
		if name != main {
			fset.AddVirtualFile(name, text)
		}
	}
	res := core.CompileSource(fset, main, files[main], opts)
	for _, d := range res.Diagnostics {
		tb.Fatalf("compile %s: %v", main, d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

// compileDisk compiles a real on-disk translation unit (headers resolve
// relative to it).
func compileDisk(tb testing.TB, path string) *ductape.PDB {
	tb.Helper()
	opts := core.Options{}
	fset := core.NewFileSet(opts)
	res, err := core.CompileFile(fset, path, opts)
	if err != nil {
		tb.Fatalf("compile %s: %v", path, err)
	}
	for _, d := range res.Diagnostics {
		tb.Fatalf("compile %s: %v", path, d)
	}
	return ductape.FromRaw(ilanalyzer.Analyze(res.Unit, ilanalyzer.Options{}))
}

func pdbText(tb testing.TB, db *ductape.PDB) string {
	tb.Helper()
	var sb strings.Builder
	if err := db.Write(&sb); err != nil {
		tb.Fatal(err)
	}
	return sb.String()
}

type corpusEntry struct {
	name string
	db   *ductape.PDB
}

// corpus builds databases from every flavor of testdata the repo has:
// the lint demo TUs on disk, the two golden workloads, and synthetic
// merge units with a shared header.
func corpus(tb testing.TB) []corpusEntry {
	tb.Helper()
	var out []corpusEntry
	for _, tu := range []string{"one.cpp", "two.cpp", "main.cpp"} {
		path := filepath.Join("..", "..", "testdata", "cxx", "lintdemo", tu)
		out = append(out, corpusEntry{"lintdemo/" + tu, compileDisk(tb, path)})
	}
	out = append(out,
		corpusEntry{"krylov", compileUnit(tb, workload.KrylovFiles(), "krylov.cpp")},
		corpusEntry{"stack", compileUnit(tb, workload.StackFiles(), "TestStackAr.cpp")},
	)
	hdr, units := workload.GenMergeUnits(3, 4, 6)
	for i, unit := range units {
		files := map[string]string{"shared.h": hdr, "unit.cpp": unit}
		out = append(out, corpusEntry{
			"merge-unit-" + string(rune('a'+i)),
			compileUnit(tb, files, "unit.cpp"),
		})
	}
	return out
}

// TestReadMatchesSequential: the chunked parallel reader must be
// byte-identical to the sequential reader on every corpus database,
// for any worker count.
func TestReadMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, entry := range corpus(t) {
		text := pdbText(t, entry.db)
		seq, err := ductape.Read(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: sequential read: %v", entry.name, err)
		}
		want := pdbText(t, seq)
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := pdbio.Read(ctx, strings.NewReader(text),
				pdbio.WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", entry.name, workers, err)
			}
			if g := pdbText(t, got); g != want {
				t.Errorf("%s workers=%d: parallel read differs from sequential",
					entry.name, workers)
			}
		}
	}
}

// TestReadErrorsMatchSequential: malformed streams must fail with the
// same error text on both paths.
func TestReadErrorsMatchSequential(t *testing.T) {
	ctx := context.Background()
	longLine := "<PDB 1.0>\nso#1 a.h\nro#2 " + strings.Repeat("x", 4096) + "\n"
	cases := []struct {
		name  string
		input string
		limit int
	}{
		{"empty", "", 0},
		{"no-header", "ro#1 orphan\n", 0},
		{"attr-outside-item", "<PDB 1.0>\nrcall ro#1 no so#1 1 1\n", 0},
		{"line-too-long", longLine, 256},
	}
	for _, tc := range cases {
		_, seqErr := pdb.ReadLimit(strings.NewReader(tc.input), tc.limit)
		if seqErr == nil {
			t.Fatalf("%s: sequential read unexpectedly succeeded", tc.name)
		}
		for _, workers := range []int{1, 4} {
			opts := []pdbio.Option{pdbio.WithWorkers(workers)}
			if tc.limit > 0 {
				opts = append(opts, pdbio.WithMaxLineBytes(tc.limit))
			}
			_, err := pdbio.Read(ctx, strings.NewReader(tc.input), opts...)
			if err == nil {
				t.Fatalf("%s workers=%d: parallel read unexpectedly succeeded",
					tc.name, workers)
			}
			if err.Error() != seqErr.Error() {
				t.Errorf("%s workers=%d: error = %q, sequential = %q",
					tc.name, workers, err, seqErr)
			}
		}
	}
}

// TestMergeMatchesSequentialFold: the tree reduction must be
// byte-identical to the sequential left-to-right fold, including for
// odd input counts (the pass-through path).
func TestMergeMatchesSequentialFold(t *testing.T) {
	ctx := context.Background()
	entries := corpus(t)
	dbs := make([]*ductape.PDB, len(entries))
	for i, e := range entries {
		dbs[i] = e.db
	}
	if len(dbs) < 8 {
		t.Fatalf("corpus has %d databases, want >= 8", len(dbs))
	}
	for _, n := range []int{1, 2, 3, 5, 8} {
		want := pdbText(t, ductape.Merge(dbs[:n]...))
		for _, workers := range []int{1, 4} {
			got, err := pdbio.Merge(ctx, dbs[:n], pdbio.WithWorkers(workers))
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if g := pdbText(t, got); g != want {
				t.Errorf("n=%d workers=%d: tree merge differs from sequential fold",
					n, workers)
			}
		}
	}
}

// TestMergeFilesMatchesSequential drives the whole on-disk pipeline and
// compares it against loading and folding by hand.
func TestMergeFilesMatchesSequential(t *testing.T) {
	ctx := context.Background()
	entries := corpus(t)
	dir := t.TempDir()
	var paths []string
	dbs := make([]*ductape.PDB, 0, len(entries))
	for i, e := range entries {
		path := filepath.Join(dir, "u"+string(rune('0'+i))+".pdb")
		if err := os.WriteFile(path, []byte(pdbText(t, e.db)), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		seq, err := ductape.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, seq)
	}
	want := pdbText(t, ductape.Merge(dbs...))

	var sb strings.Builder
	if err := pdbio.MergeFiles(ctx, &sb, paths, pdbio.WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Error("MergeFiles output differs from the sequential fold")
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := pdbio.Merge(context.Background(), nil); err == nil {
		t.Error("merging zero databases should fail")
	}
}

// TestLoadAllKeepGoing: every input is attempted and the aggregated
// error names each failure, %w-wrapped so errors.Is still works.
func TestLoadAllKeepGoing(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	entries := corpus(t)

	good := filepath.Join(dir, "good.pdb")
	if err := os.WriteFile(good, []byte(pdbText(t, entries[0].db)), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.pdb")
	if err := os.WriteFile(bad, []byte("this is not a pdb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.pdb")

	dbs, err := pdbio.LoadAll(ctx, []string{good, missing, bad})
	if err == nil {
		t.Fatal("LoadAll with bad inputs should fail")
	}
	if dbs != nil {
		t.Errorf("dbs = %v, want nil on error", dbs)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("error does not wrap fs.ErrNotExist: %v", err)
	}
	msg := err.Error()
	for _, frag := range []string{"missing.pdb", "bad.pdb", "missing <PDB> header"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q does not mention %q", msg, frag)
		}
	}
	if strings.Contains(msg, "good.pdb") {
		t.Errorf("error %q blames the good input", msg)
	}

	// All-good inputs succeed and come back in input order.
	dbs, err = pdbio.LoadAll(ctx, []string{good, good})
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 2 || dbs[0] == nil || dbs[1] == nil {
		t.Fatalf("dbs = %v, want two databases", dbs)
	}
}

// TestLoadStrictValidation: WithStrictValidation rejects files with
// dangling references that the lenient path would accept.
func TestLoadStrictValidation(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	dangling := &pdb.PDB{Routines: []*pdb.Routine{{
		ID: 1, Name: "f",
		Signature: pdb.Ref{Prefix: pdb.PrefixType, ID: 42},
	}}}
	var sb strings.Builder
	if err := dangling.Write(&sb); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "dangling.pdb")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := pdbio.Load(ctx, path, pdbio.WithStrictValidation())
	if err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Errorf("strict load error = %v, want integrity failure", err)
	}

	good := filepath.Join(dir, "good.pdb")
	if err := os.WriteFile(good, []byte(pdbText(t, corpus(t)[0].db)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pdbio.Load(ctx, good, pdbio.WithStrictValidation()); err != nil {
		t.Errorf("strict load of a valid file failed: %v", err)
	}
}

// TestCanceledContext: a pre-canceled context fails every entry point
// with context.Canceled.
func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	entries := corpus(t)
	text := pdbText(t, entries[0].db)
	dir := t.TempDir()
	path := filepath.Join(dir, "a.pdb")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		if _, err := pdbio.Read(ctx, strings.NewReader(text),
			pdbio.WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Errorf("Read workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if _, err := pdbio.Load(ctx, path,
			pdbio.WithWorkers(workers)); !errors.Is(err, context.Canceled) {
			t.Errorf("Load workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if _, err := pdbio.LoadAll(ctx, []string{path, path}); !errors.Is(err, context.Canceled) {
		t.Errorf("LoadAll: err = %v, want context.Canceled", err)
	}
	dbs := []*ductape.PDB{entries[0].db, entries[1].db}
	if _, err := pdbio.Merge(ctx, dbs); !errors.Is(err, context.Canceled) {
		t.Errorf("Merge: err = %v, want context.Canceled", err)
	}
}
