package pdbio_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"pdt/internal/faultio"
	"pdt/internal/obs"
	"pdt/internal/pdbio"
)

// killpointSeed honors PDT_KILLPOINT_SEED so CI can sweep different
// random kill offsets across runs while any failure stays reproducible
// from the logged seed.
func killpointSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("PDT_KILLPOINT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PDT_KILLPOINT_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

// saveKillpointArtifacts copies the checkpoint directory of a failing
// kill-point iteration into PDT_KILLPOINT_ARTIFACTS (when set) so CI
// can upload the journal that reproduces the failure.
func saveKillpointArtifacts(t *testing.T, ck string, k int64) {
	t.Helper()
	root := os.Getenv("PDT_KILLPOINT_ARTIFACTS")
	if root == "" {
		return
	}
	dst := filepath.Join(root, fmt.Sprintf("%s-k%d", filepath.Base(t.Name()), k))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	entries, err := os.ReadDir(ck)
	if err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(ck, e.Name()))
		if err == nil {
			err = os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644)
		}
		if err != nil {
			t.Logf("artifacts: %v", err)
		}
	}
	t.Logf("kill-point artifacts saved to %s", dst)
}

// checkTargetIntact asserts the never-torn invariant on the output
// path: after a kill it must hold nothing, the pre-existing bytes, or
// the complete merged bytes — never a prefix or a mix.
func checkTargetIntact(target string, preExisting bool, old, golden []byte) error {
	got, err := os.ReadFile(target)
	switch {
	case err != nil && os.IsNotExist(err) && !preExisting:
		return nil
	case err != nil && os.IsNotExist(err) && preExisting:
		return errors.New("pre-existing output vanished")
	case err != nil:
		return err
	case preExisting && bytes.Equal(got, old):
		return nil
	case bytes.Equal(got, golden):
		return nil
	default:
		return fmt.Errorf("TORN OUTPUT: %d bytes, want absent, %d old bytes, or %d merged bytes", len(got), len(old), len(golden))
	}
}

// TestMergeToFileNeverTornAtAnyKillPoint is the acceptance property of
// the PR: probe the full pdbmerge pipeline to count its write sites,
// then kill it at every single one and assert (a) the output path is
// never torn, and (b) a -resume run afterwards produces bytes
// identical to the uninterrupted run, reusing journaled checkpoints
// whenever the kill left any behind.
func TestMergeToFileNeverTornAtAnyKillPoint(t *testing.T) {
	base := t.TempDir()
	paths := writeTinyInputs(t, base, 3)
	ctx := context.Background()

	goldenPath := filepath.Join(base, "golden.pdb")
	if err := pdbio.MergeToFile(ctx, goldenPath, paths); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	// Probe run: an unlimited budget counts the sites without killing.
	// Worker count 1 keeps site consumption deterministic so the sweep
	// below visits every site exactly once.
	probe := faultio.NewCrashFS(nil, -1)
	if err := pdbio.MergeToFile(ctx, filepath.Join(base, "probe.pdb"), paths,
		pdbio.WithWorkers(1), pdbio.WithWriteFS(probe),
		pdbio.WithCheckpoint(filepath.Join(base, "ck-probe"), false)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	sites := probe.Sites()
	if sites < int64(len(golden)) {
		t.Fatalf("probe counted %d sites for a %d-byte output", sites, len(golden))
	}
	t.Logf("sweeping %d kill sites", sites)

	old := []byte("pre-existing output from an earlier run\n")
	for k := int64(0); k <= sites; k++ {
		dir := filepath.Join(base, fmt.Sprintf("k%d", k))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		target := filepath.Join(dir, "out.pdb")
		ck := filepath.Join(dir, "ck")
		preExisting := k%2 == 1
		if preExisting {
			if err := os.WriteFile(target, old, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		cfs := faultio.NewCrashFS(nil, k)
		err := pdbio.MergeToFile(ctx, target, paths,
			pdbio.WithWorkers(1), pdbio.WithWriteFS(cfs),
			pdbio.WithCheckpoint(ck, false))
		if k < sites && !errors.Is(err, faultio.ErrKilled) {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("k=%d: err = %v, want ErrKilled", k, err)
		}
		if err := checkTargetIntact(target, preExisting, old, golden); err != nil {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("k=%d: %v", k, err)
		}

		// Resume: pick up whatever the killed run journaled and finish.
		survived := countCheckpoints(t, ck)
		m := obs.New("test")
		if err := pdbio.MergeToFile(ctx, target, paths,
			pdbio.WithWorkers(1), pdbio.WithCheckpoint(ck, true), pdbio.WithMetrics(m)); err != nil {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		got, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, golden) {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("k=%d: resumed output differs from uninterrupted run", k)
		}
		snap := m.Snapshot()
		if survived > 0 && snap.Counters["checkpoint.reused"] < 1 {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("k=%d: %d checkpoints survived the kill but resume reused none", k, survived)
		}
		// Checkpoint stores are themselves atomic, so a kill can never
		// leave a torn entry for resume to trip over.
		if got := snap.Counters["checkpoint.invalidated"]; got != 0 {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("k=%d: resume invalidated %d journal entries after a clean kill", k, got)
		}

		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeToFileKillPointConcurrent re-checks the never-torn and
// resume-equivalence properties with a concurrent merge, where the
// kill lands nondeterministically between workers. The sampled kill
// budgets come from PDT_KILLPOINT_SEED so CI shuffles coverage.
func TestMergeToFileKillPointConcurrent(t *testing.T) {
	base := t.TempDir()
	paths := writeTinyInputs(t, base, 6)
	ctx := context.Background()

	goldenPath := filepath.Join(base, "golden.pdb")
	if err := pdbio.MergeToFile(ctx, goldenPath, paths); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	probe := faultio.NewCrashFS(nil, -1)
	if err := pdbio.MergeToFile(ctx, filepath.Join(base, "probe.pdb"), paths,
		pdbio.WithWorkers(4), pdbio.WithWriteFS(probe),
		pdbio.WithCheckpoint(filepath.Join(base, "ck-probe"), false)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	sites := probe.Sites()

	seed := killpointSeed(t)
	t.Logf("seed=%d sites=%d", seed, sites)
	rng := rand.New(rand.NewSource(seed))
	old := []byte("stale bytes\n")
	for i := 0; i < 16; i++ {
		k := rng.Int63n(sites)
		dir := filepath.Join(base, fmt.Sprintf("i%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		target := filepath.Join(dir, "out.pdb")
		ck := filepath.Join(dir, "ck")
		preExisting := i%2 == 1
		if preExisting {
			if err := os.WriteFile(target, old, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		cfs := faultio.NewCrashFS(nil, k)
		err := pdbio.MergeToFile(ctx, target, paths,
			pdbio.WithWorkers(4), pdbio.WithWriteFS(cfs),
			pdbio.WithCheckpoint(ck, false))
		// The total operation count is worker-independent, so a budget
		// under the probed site count always kills.
		if !errors.Is(err, faultio.ErrKilled) {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("seed=%d k=%d: err = %v, want ErrKilled", seed, k, err)
		}
		if err := checkTargetIntact(target, preExisting, old, golden); err != nil {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("seed=%d k=%d: %v", seed, k, err)
		}

		if err := pdbio.MergeToFile(ctx, target, paths,
			pdbio.WithWorkers(4), pdbio.WithCheckpoint(ck, true)); err != nil {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("seed=%d k=%d: resume: %v", seed, k, err)
		}
		got, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, golden) {
			saveKillpointArtifacts(t, ck, k)
			t.Fatalf("seed=%d k=%d: resumed output differs from uninterrupted run", seed, k)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeToFileAbortsOnWriteError: a failure while serializing the
// merged database must abort the staged file and leave a pre-existing
// target untouched.
func TestMergeToFileAbortsOnWriteError(t *testing.T) {
	base := t.TempDir()
	paths := writeTinyInputs(t, base, 2)
	target := filepath.Join(base, "out.pdb")
	if err := os.WriteFile(target, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A zero budget kills the very first filesystem operation — the
	// staging-file open — before a single output byte is at risk.
	cfs := faultio.NewCrashFS(nil, 0)
	err := pdbio.MergeToFile(context.Background(), target, paths, pdbio.WithWriteFS(cfs))
	if !errors.Is(err, faultio.ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
	if got, _ := os.ReadFile(target); string(got) != "old" {
		t.Errorf("target = %q, want old bytes", got)
	}
}
