package pdbio_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/pdbio"
	"pdt/internal/workload"
)

// savePDB writes a database to a temp file and returns its path.
func savePDB(t *testing.T, db *ductape.PDB) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.pdb")
	var sb strings.Builder
	if err := db.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRunsPostLoadHooks(t *testing.T) {
	path := savePDB(t, compileUnit(t, workload.StackFiles(), "TestStackAr.cpp"))

	var order []string
	var hooked *ductape.PDB
	db, err := pdbio.Load(context.Background(), path,
		pdbio.WithPostLoad(func(d *ductape.PDB) { order = append(order, "first"); hooked = d }),
		pdbio.WithPostLoad(func(d *ductape.PDB) { order = append(order, "second") }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("hook order = %v", order)
	}
	if hooked != db {
		t.Error("hook saw a different database than Load returned")
	}
}

func TestLoadAllRunsPostLoadPerFile(t *testing.T) {
	paths := []string{
		savePDB(t, compileUnit(t, workload.StackFiles(), "TestStackAr.cpp")),
		savePDB(t, compileUnit(t, workload.KrylovFiles(), "krylov.cpp")),
	}
	var mu sync.Mutex
	seen := map[*ductape.PDB]bool{}
	dbs, err := pdbio.LoadAll(context.Background(), paths,
		pdbio.WithPostLoad(func(d *ductape.PDB) {
			mu.Lock()
			seen[d] = true
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(paths) {
		t.Errorf("hook ran for %d databases, want %d", len(seen), len(paths))
	}
	for _, db := range dbs {
		if !seen[db] {
			t.Error("a returned database was not seen by the hook")
		}
	}
}
