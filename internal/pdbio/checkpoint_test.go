package pdbio_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pdt/internal/obs"
	"pdt/internal/pdbio"
)

// tinyInput returns the text of a minimal program database: a shared
// header (so merges dedup something) plus one unit-local file and
// routine. Small inputs keep the kill-point sweeps cheap — every byte
// written is a crash site.
func tinyInput(i int) string {
	return fmt.Sprintf("<PDB 1.0>\n\nso#1 common.h\n\nso#2 unit%d.cpp\nsinc 1\n\nro#3 f%d\nrloc so#2 1 1\nracs NA\nrkind fun\nrlink C++\n", i, i)
}

// writeTinyInputs materializes n tiny databases on disk.
func writeTinyInputs(t *testing.T, dir string, n int) []string {
	t.Helper()
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("in%d.pdb", i))
		if err := os.WriteFile(paths[i], []byte(tinyInput(i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// goldenMerge is the uninterrupted, uncheckpointed reference output.
func goldenMerge(t *testing.T, paths []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pdbio.MergeFiles(context.Background(), &buf, paths); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func countCheckpoints(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestCheckpointMergeMatchesPlain: journaling must not change a
// single output byte, at any worker count, and must leave one
// checkpoint per completed reduction unit.
func TestCheckpointMergeMatchesPlain(t *testing.T) {
	tmp := t.TempDir()
	paths := writeTinyInputs(t, tmp, 5)
	want := goldenMerge(t, paths)

	for _, workers := range []int{1, 2, 8} {
		ck := filepath.Join(tmp, fmt.Sprintf("ck-j%d", workers))
		m := obs.New("test")
		var buf bytes.Buffer
		err := pdbio.MergeFiles(context.Background(), &buf, paths,
			pdbio.WithWorkers(workers), pdbio.WithCheckpoint(ck, false), pdbio.WithMetrics(m))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d: checkpointed merge differs from plain merge", workers)
		}
		// 5 leaves reduce over 4 pair merges (2+1+1), regardless of -j.
		if n := countCheckpoints(t, ck); n != 4 {
			t.Errorf("workers=%d: %d checkpoints journaled, want 4", workers, n)
		}
		snap := m.Snapshot()
		if got := snap.Counters["checkpoint.written"]; got != 4 {
			t.Errorf("workers=%d: checkpoint.written = %d, want 4", workers, got)
		}
		if got := snap.Counters["checkpoint.reused"]; got != 0 {
			t.Errorf("workers=%d: checkpoint.reused = %d on a fresh run", workers, got)
		}
	}
}

// TestResumeReusesEveryCheckpoint: a second run over the same inputs
// with -resume semantics must recompute nothing and still produce the
// same bytes — including when the worker count changes between runs,
// since the reduction tree's shape depends only on the input count.
func TestResumeReusesEveryCheckpoint(t *testing.T) {
	tmp := t.TempDir()
	paths := writeTinyInputs(t, tmp, 6)
	want := goldenMerge(t, paths)
	ck := filepath.Join(tmp, "ck")

	if err := pdbio.MergeFiles(context.Background(), &bytes.Buffer{}, paths,
		pdbio.WithWorkers(4), pdbio.WithCheckpoint(ck, false)); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		m := obs.New("test")
		var buf bytes.Buffer
		err := pdbio.MergeFiles(context.Background(), &buf, paths,
			pdbio.WithWorkers(workers), pdbio.WithCheckpoint(ck, true), pdbio.WithMetrics(m))
		if err != nil {
			t.Fatalf("resume workers=%d: %v", workers, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("resume workers=%d: output differs from uninterrupted run", workers)
		}
		snap := m.Snapshot()
		// 6 leaves → 5 pair merges, all journaled by the first run.
		if got := snap.Counters["checkpoint.reused"]; got != 5 {
			t.Errorf("resume workers=%d: checkpoint.reused = %d, want 5", workers, got)
		}
		if got := snap.Counters["checkpoint.written"]; got != 0 {
			t.Errorf("resume workers=%d: checkpoint.written = %d, want 0", workers, got)
		}
	}
}

// TestResumeInvalidatesTamperedCheckpoints: flipping one byte in a
// journaled entry must invalidate it (hash mismatch), recompute that
// unit, and still converge on the uninterrupted bytes.
func TestResumeInvalidatesTamperedCheckpoints(t *testing.T) {
	tmp := t.TempDir()
	paths := writeTinyInputs(t, tmp, 4)
	want := goldenMerge(t, paths)
	ck := filepath.Join(tmp, "ck")
	if err := pdbio.MergeFiles(context.Background(), &bytes.Buffer{}, paths,
		pdbio.WithCheckpoint(ck, false)); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(ck, "*.ckpt"))
	if err != nil || len(entries) != 3 {
		t.Fatalf("checkpoints = %v (%v), want 3", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	m := obs.New("test")
	var buf bytes.Buffer
	err = pdbio.MergeFiles(context.Background(), &buf, paths,
		pdbio.WithCheckpoint(ck, true), pdbio.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("output differs after invalidating a tampered checkpoint")
	}
	snap := m.Snapshot()
	if got := snap.Counters["checkpoint.invalidated"]; got < 1 {
		t.Errorf("checkpoint.invalidated = %d, want >= 1", got)
	}
	if got := snap.Counters["checkpoint.reused"]; got < 1 {
		t.Errorf("checkpoint.reused = %d, want >= 1 (the untampered entries)", got)
	}
	if got := snap.Counters["checkpoint.written"]; got < 1 {
		t.Errorf("checkpoint.written = %d, want >= 1 (the recomputed unit)", got)
	}
	// The tampered entry was overwritten with a fresh, valid one: a
	// second resume reuses everything.
	m2 := obs.New("test")
	if err := pdbio.MergeFiles(context.Background(), &bytes.Buffer{}, paths,
		pdbio.WithCheckpoint(ck, true), pdbio.WithMetrics(m2)); err != nil {
		t.Fatal(err)
	}
	if got := m2.Snapshot().Counters["checkpoint.invalidated"]; got != 0 {
		t.Errorf("second resume still invalidates %d entries", got)
	}
}

// TestFreshRunIgnoresExistingJournal: without resume, stale entries
// are neither trusted nor counted — the run recomputes and overwrites.
func TestFreshRunIgnoresExistingJournal(t *testing.T) {
	tmp := t.TempDir()
	paths := writeTinyInputs(t, tmp, 4)
	want := goldenMerge(t, paths)
	ck := filepath.Join(tmp, "ck")
	if err := pdbio.MergeFiles(context.Background(), &bytes.Buffer{}, paths,
		pdbio.WithCheckpoint(ck, false)); err != nil {
		t.Fatal(err)
	}
	m := obs.New("test")
	var buf bytes.Buffer
	if err := pdbio.MergeFiles(context.Background(), &buf, paths,
		pdbio.WithCheckpoint(ck, false), pdbio.WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("fresh run over an existing journal differs")
	}
	snap := m.Snapshot()
	if got := snap.Counters["checkpoint.reused"]; got != 0 {
		t.Errorf("checkpoint.reused = %d without -resume", got)
	}
	if got := snap.Counters["checkpoint.written"]; got != 3 {
		t.Errorf("checkpoint.written = %d, want 3", got)
	}
}
