package interp

import (
	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// ctlKind classifies non-sequential control flow.
type ctlKind int

const (
	ctlReturn ctlKind = iota
	ctlBreak
	ctlContinue
	// ctlThrow is reserved; exceptions propagate as *thrownError
	// errors so they unwind through Go call frames too.
	ctlThrow
)

type ctl struct {
	kind ctlKind
	val  Value
	loc  source.Loc
}

// execStmt executes one statement. A non-nil ctl requests unwinding
// (return/break/continue); C++ exceptions arrive as *thrownError via
// the error return.
func (in *Interp) execStmt(e *env, st ast.Stmt) (*ctl, error) {
	if st == nil {
		return nil, nil
	}
	if err := in.step(st.Span().Begin); err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case *ast.CompoundStmt:
		return in.execBlock(e, st.Stmts)
	case *ast.DeclStmt:
		for _, d := range st.Decls {
			if err := in.execLocalDecl(e, d); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case *ast.ExprStmt:
		_, err := in.evalRValue(e, st.E)
		return nil, err
	case *ast.EmptyStmt:
		return nil, nil
	case *ast.IfStmt:
		cond, err := in.evalRValue(e, st.Cond)
		if err != nil {
			return nil, err
		}
		b, err := truthy(cond)
		if err != nil {
			return nil, in.rterr(st.Cond.Span().Begin, "%v", err)
		}
		if b {
			return in.execStmt(e, st.Then)
		}
		return in.execStmt(e, st.Else)
	case *ast.WhileStmt:
		for {
			cond, err := in.evalRValue(e, st.Cond)
			if err != nil {
				return nil, err
			}
			b, err := truthy(cond)
			if err != nil {
				return nil, in.rterr(st.Cond.Span().Begin, "%v", err)
			}
			if !b {
				return nil, nil
			}
			c, err := in.execStmt(e, st.Body)
			if err != nil {
				return nil, err
			}
			if c != nil {
				if c.kind == ctlBreak {
					return nil, nil
				}
				if c.kind != ctlContinue {
					return c, nil
				}
			}
			if err := in.step(st.Pos.Begin); err != nil {
				return nil, err
			}
		}
	case *ast.DoStmt:
		for {
			c, err := in.execStmt(e, st.Body)
			if err != nil {
				return nil, err
			}
			if c != nil {
				if c.kind == ctlBreak {
					return nil, nil
				}
				if c.kind != ctlContinue {
					return c, nil
				}
			}
			cond, err := in.evalRValue(e, st.Cond)
			if err != nil {
				return nil, err
			}
			b, err := truthy(cond)
			if err != nil {
				return nil, in.rterr(st.Cond.Span().Begin, "%v", err)
			}
			if !b {
				return nil, nil
			}
			if err := in.step(st.Pos.Begin); err != nil {
				return nil, err
			}
		}
	case *ast.ForStmt:
		e.push()
		defer func() { _ = e.pop() }()
		if st.Init != nil {
			if c, err := in.execStmt(e, st.Init); err != nil || c != nil {
				return c, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := in.evalRValue(e, st.Cond)
				if err != nil {
					return nil, err
				}
				b, err := truthy(cond)
				if err != nil {
					return nil, in.rterr(st.Cond.Span().Begin, "%v", err)
				}
				if !b {
					return nil, nil
				}
			}
			c, err := in.execStmt(e, st.Body)
			if err != nil {
				return nil, err
			}
			if c != nil {
				if c.kind == ctlBreak {
					return nil, nil
				}
				if c.kind != ctlContinue {
					return c, nil
				}
			}
			if st.Post != nil {
				if _, err := in.evalRValue(e, st.Post); err != nil {
					return nil, err
				}
			}
			if err := in.step(st.Pos.Begin); err != nil {
				return nil, err
			}
		}
	case *ast.ReturnStmt:
		var v Value = Null{}
		if st.E != nil {
			rv, err := in.evalReturnValue(e, st.E)
			if err != nil {
				return nil, err
			}
			v = rv
		}
		return &ctl{kind: ctlReturn, val: v, loc: st.Pos.Begin}, nil
	case *ast.BreakStmt:
		return &ctl{kind: ctlBreak, loc: st.Pos.Begin}, nil
	case *ast.ContinueStmt:
		return &ctl{kind: ctlContinue, loc: st.Pos.Begin}, nil
	case *ast.SwitchStmt:
		return in.execSwitch(e, st)
	case *ast.TryStmt:
		return in.execTry(e, st)
	default:
		return nil, in.rterr(st.Span().Begin, "unsupported statement %T", st)
	}
}

// execBlock runs statements in a fresh scope, running destructors on
// every exit path (including exception unwinding, which scoped TAU
// timers rely on).
func (in *Interp) execBlock(e *env, stmts []ast.Stmt) (*ctl, error) {
	e.push()
	for _, st := range stmts {
		c, err := in.execStmt(e, st)
		if err != nil {
			if _, thrown := err.(*thrownError); thrown {
				if derr := e.pop(); derr != nil {
					return nil, derr
				}
			} else {
				e.popNoDtor()
			}
			return nil, err
		}
		if c != nil {
			if derr := e.pop(); derr != nil {
				return nil, derr
			}
			return c, nil
		}
	}
	return nil, e.pop()
}

// execLocalDecl materializes a local variable.
func (in *Interp) execLocalDecl(e *env, d ast.Decl) error {
	switch d := d.(type) {
	case *ast.VarDecl:
		t := in.unit.ExprType(e.rtn, d.Type)
		cell := &Cell{V: zeroValueFor(t)}
		e.declare(d.Name, cell)
		obj, isObj := cell.V.(*Object)
		switch {
		case d.HasCtorArgs:
			var args []Value
			for _, a := range d.CtorArgs {
				v, err := in.evalArg(e, a)
				if err != nil {
					return err
				}
				args = append(args, v)
			}
			if isObj {
				if err := in.construct(obj, args, d.NameLoc); err != nil {
					return err
				}
				e.trackObj(obj)
			} else if len(args) >= 1 {
				cell.V = convertForStore(t, copyValue(deref(args[0])))
			}
		case d.Init != nil:
			v, err := in.evalRValue(e, d.Init)
			if err != nil {
				return err
			}
			if isObj {
				if src, ok := deref(v).(*Object); ok {
					copyFields(obj, src)
				} else if err := in.construct(obj, []Value{v}, d.NameLoc); err != nil {
					return err
				}
				e.trackObj(obj)
			} else {
				cell.V = convertForStore(t, copyValue(deref(v)))
			}
		default:
			if isObj {
				if err := in.construct(obj, nil, d.NameLoc); err != nil {
					return err
				}
				e.trackObj(obj)
			}
		}
		return nil
	case *ast.DeclGroup:
		for _, inner := range d.Decls {
			if err := in.execLocalDecl(e, inner); err != nil {
				return err
			}
		}
		return nil
	default:
		// Local typedefs/classes/enums need no runtime action.
		return nil
	}
}

func (in *Interp) execSwitch(e *env, st *ast.SwitchStmt) (*ctl, error) {
	condV, err := in.evalRValue(e, st.Cond)
	if err != nil {
		return nil, err
	}
	cond, err := asInt(deref(condV))
	if err != nil {
		return nil, in.rterr(st.Cond.Span().Begin, "switch condition: %v", err)
	}
	match := -1
	defaultIdx := -1
	for i, cs := range st.Cases {
		if len(cs.Values) == 0 {
			defaultIdx = i
			continue
		}
		for _, vexpr := range cs.Values {
			v, err := in.evalRValue(e, vexpr)
			if err != nil {
				return nil, err
			}
			iv, err := asInt(deref(v))
			if err != nil {
				return nil, in.rterr(vexpr.Span().Begin, "case value: %v", err)
			}
			if iv == cond {
				match = i
				break
			}
		}
		if match >= 0 {
			break
		}
	}
	if match < 0 {
		match = defaultIdx
	}
	if match < 0 {
		return nil, nil
	}
	e.push()
	// Fallthrough: execute from the matched group onward.
	for i := match; i < len(st.Cases); i++ {
		for _, inner := range st.Cases[i].Stmts {
			c, err := in.execStmt(e, inner)
			if err != nil {
				if _, thrown := err.(*thrownError); thrown {
					if derr := e.pop(); derr != nil {
						return nil, derr
					}
				} else {
					e.popNoDtor()
				}
				return nil, err
			}
			if c != nil {
				if derr := e.pop(); derr != nil {
					return nil, derr
				}
				if c.kind == ctlBreak {
					return nil, nil
				}
				return c, nil
			}
		}
	}
	return nil, e.pop()
}

func (in *Interp) execTry(e *env, st *ast.TryStmt) (*ctl, error) {
	c, err := in.execStmt(e, st.Body)
	if err == nil {
		return c, nil
	}
	thrown, ok := err.(*thrownError)
	if !ok {
		return nil, err
	}
	for i := range st.Handlers {
		h := &st.Handlers[i]
		if !in.handlerMatches(e, h, thrown.val) {
			continue
		}
		e.push()
		if h.Param != nil && h.Param.Name != "" {
			t := in.unit.ExprType(e.rtn, h.Param.Type)
			var cell *Cell
			if isRefParam(t) {
				cell = &Cell{V: deref(thrown.val)}
			} else {
				cell = &Cell{V: copyValue(deref(thrown.val))}
			}
			e.declare(h.Param.Name, cell)
		}
		// The exception is "active" inside the handler so a bare
		// "throw;" can rethrow it.
		in.excStack = append(in.excStack, thrown.val)
		hc, herr := in.execStmt(e, h.Body)
		in.excStack = in.excStack[:len(in.excStack)-1]
		if herr != nil {
			if _, t2 := herr.(*thrownError); t2 {
				if derr := e.pop(); derr != nil {
					return nil, derr
				}
			} else {
				e.popNoDtor()
			}
			return nil, herr
		}
		if derr := e.pop(); derr != nil {
			return nil, derr
		}
		return hc, nil
	}
	return nil, thrown // rethrow to the next enclosing try
}

// handlerMatches tests whether a catch clause accepts the thrown value.
func (in *Interp) handlerMatches(e *env, h *ast.Handler, v Value) bool {
	if h.Param == nil {
		return true // catch (...)
	}
	t := in.unit.ExprType(e.rtn, h.Param.Type)
	if t == nil {
		return true
	}
	u := t.Deref()
	switch v := deref(v).(type) {
	case *Object:
		if u.Kind != il.TClass || u.Class == nil {
			return false
		}
		return v.Class == u.Class || (v.Class != nil && v.Class.DerivesFrom(u.Class))
	case Int, Char, Bool:
		return u.Kind.IsInteger()
	case Float:
		return u.Kind.IsFloat()
	case Str:
		return u.Kind == il.TPtr
	default:
		return false
	}
}

// evalReturnValue handles reference returns: when the routine returns
// T&, the operand is evaluated as an lvalue so callers can alias it.
func (in *Interp) evalReturnValue(e *env, expr ast.Expr) (Value, error) {
	if e.rtn != nil && isRefReturn(e.rtn.Ret) {
		if cell, err := in.evalLValue(e, expr); err == nil && cell != nil {
			return Ref{Cell: cell}, nil
		}
	}
	return in.evalRValue(e, expr)
}
