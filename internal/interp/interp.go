package interp

import (
	"fmt"
	"io"
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// Hooks receive routine entry/exit events — the attachment point for
// measurement runtimes (TAU).
type Hooks interface {
	RoutineEnter(r *il.Routine)
	RoutineExit(r *il.Routine)
}

// Intrinsic implements a routine natively. this is nil for free
// functions.
type Intrinsic func(in *Interp, this *Object, args []Value) (Value, error)

// Options configure an interpreter.
type Options struct {
	// Out receives cout/printf output (io.Discard when nil).
	Out io.Writer
	// MaxSteps bounds execution (0 = default 200M).
	MaxSteps uint64
	// MaxDepth bounds the call stack (0 = default 10000).
	MaxDepth int
	// Hooks observe routine entry/exit.
	Hooks Hooks
}

// RuntimeError is an execution failure with a source position and a
// call trace.
type RuntimeError struct {
	Loc   source.Loc
	Msg   string
	Trace []string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s: runtime error: %s", e.Loc, e.Msg)
}

// UncaughtException reports a C++ exception that escaped main.
type UncaughtException struct {
	Value Value
}

func (e *UncaughtException) Error() string {
	if o, ok := e.Value.(*Object); ok && o.Class != nil {
		return "uncaught exception of type " + o.Class.QualifiedName()
	}
	return "uncaught exception: " + FormatValue(e.Value)
}

// Interp executes routines of one IL unit.
type Interp struct {
	unit *il.Unit
	opts Options
	out  io.Writer

	globals map[*il.Var]*Cell

	clock    uint64
	maxSteps uint64
	maxDepth int
	depth    int

	intrinsics map[string]Intrinsic
	trace      []string

	// excStack holds the exceptions currently being handled, so a bare
	// "throw;" can rethrow the active one.
	excStack []Value

	// freeByName indexes free functions (and their template
	// instantiations) by base name; built lazily.
	freeByName map[string][]*il.Routine

	rngState uint64
}

// New prepares an interpreter: globals are allocated (and initialized
// when Run is called) and the standard intrinsics installed.
func New(unit *il.Unit, opts Options) *Interp {
	in := &Interp{
		unit: unit, opts: opts,
		out:        opts.Out,
		globals:    map[*il.Var]*Cell{},
		maxSteps:   opts.MaxSteps,
		maxDepth:   opts.MaxDepth,
		intrinsics: map[string]Intrinsic{},
		rngState:   0x2545F4914F6CDD1D,
	}
	if in.out == nil {
		in.out = io.Discard
	}
	if in.maxSteps == 0 {
		in.maxSteps = 200_000_000
	}
	if in.maxDepth == 0 {
		in.maxDepth = 10_000
	}
	installStdIntrinsics(in)
	return in
}

// RegisterIntrinsic installs (or overrides) a native routine
// implementation, keyed by qualified name ("TauProfiler::TauProfiler",
// "sqrt", "ostream::operator<<").
func (in *Interp) RegisterIntrinsic(qualified string, fn Intrinsic) {
	in.intrinsics[qualified] = fn
}

// Clock returns the current virtual time (steps executed).
func (in *Interp) Clock() uint64 { return in.clock }

// Unit returns the IL unit.
func (in *Interp) Unit() *il.Unit { return in.unit }

// Output returns the configured output writer.
func (in *Interp) Output() io.Writer { return in.out }

// step advances the virtual clock, enforcing the step budget.
func (in *Interp) step(loc source.Loc) error {
	in.clock++
	if in.clock > in.maxSteps {
		return in.rterr(loc, "step budget exceeded (%d)", in.maxSteps)
	}
	return nil
}

func (in *Interp) rterr(loc source.Loc, format string, args ...interface{}) error {
	return &RuntimeError{Loc: loc, Msg: fmt.Sprintf(format, args...),
		Trace: append([]string(nil), in.trace...)}
}

// Run initializes globals and executes main, returning its exit code.
func (in *Interp) Run() (int, error) {
	if err := in.initGlobals(); err != nil {
		return 1, err
	}
	mainR := in.unit.LookupRoutine("main")
	if mainR == nil || !mainR.HasBody {
		return 1, fmt.Errorf("no main function in unit")
	}
	v, err := in.Call(mainR, nil, nil)
	if err != nil {
		if ee, ok := err.(*exitSignal); ok {
			return ee.code, nil
		}
		return 1, err
	}
	code, _ := asInt(deref(v))
	return int(code), nil
}

// InitGlobals initializes namespace-scope variables without running
// main — used by embedding hosts (the SILOON bridge) that call library
// routines directly.
func (in *Interp) InitGlobals() error { return in.initGlobals() }

// Construct allocates and constructs an object of cls with the given
// arguments (the embedding-host entry point used by SILOON's bridge).
func (in *Interp) Construct(cls *il.Class, args []Value) (*Object, error) {
	obj := NewObject(cls)
	if err := in.construct(obj, args, cls.Loc); err != nil {
		return nil, err
	}
	return obj, nil
}

// Destroy runs the destructor chain of obj.
func (in *Interp) Destroy(obj *Object) error { return in.destroy(obj) }

// CallMethod dispatches a method call on obj by name, with runtime
// overload selection and virtual dispatch.
func (in *Interp) CallMethod(obj *Object, name string, args []Value) (Value, error) {
	return in.callMethodByName(nil, obj, name, args, source.Loc{})
}

// CallFree calls a free function (or function-template instantiation)
// by name with runtime overload selection.
func (in *Interp) CallFree(name string, args []Value) (Value, error) {
	if r := in.findFreeRoutine(name, args); r != nil {
		return in.Call(r, nil, args)
	}
	if fn, ok := in.intrinsics[name]; ok {
		return fn(in, nil, args)
	}
	return nil, fmt.Errorf("no function %q matching %d argument(s)", name, len(args))
}

// exitSignal implements the exit() intrinsic.
type exitSignal struct{ code int }

func (e *exitSignal) Error() string { return fmt.Sprintf("exit(%d)", e.code) }

// initGlobals allocates and initializes namespace-scope variables.
func (in *Interp) initGlobals() error {
	var walk func(ns *il.Namespace) error
	walk = func(ns *il.Namespace) error {
		for _, v := range ns.Vars {
			cell := &Cell{V: zeroValueFor(v.Type)}
			in.globals[v] = cell
			// Well-known stream globals from the built-in <iostream>.
			if v.Init == nil && v.Name == "endl" {
				cell.V = Str("\n")
				continue
			}
			if v.Init != nil {
				env := in.newEnv(nil, nil)
				val, err := in.evalRValue(env, v.Init)
				if err != nil {
					return err
				}
				cell.V = convertForStore(v.Type, copyValue(val))
			}
		}
		for _, sub := range ns.Namespaces {
			if err := walk(sub); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(in.unit.Global)
}

// convertForStore applies the trivially-needed conversions when a value
// is stored into a typed location (float↔int truncation, bool).
func convertForStore(t *il.Type, v Value) Value {
	if t == nil {
		return v
	}
	switch u := t.Deref(); u.Kind {
	case il.TBool:
		b, err := truthy(deref(v))
		if err == nil {
			return Bool(b)
		}
	case il.TChar, il.TSChar, il.TUChar:
		if i, err := asInt(deref(v)); err == nil {
			return Char(i)
		}
	case il.TFloat, il.TDouble, il.TLongDouble:
		if f, err := asFloat(deref(v)); err == nil {
			return Float(f)
		}
	case il.TInt, il.TUInt, il.TShort, il.TUShort, il.TLong, il.TULong,
		il.TLongLong, il.TULongLong:
		switch deref(v).(type) {
		case Float, Bool, Char:
			if i, err := asInt(deref(v)); err == nil {
				return Int(i)
			}
		}
	case il.TPtr:
		// Integer zero (and Null) convert to the null pointer.
		switch dv := deref(v).(type) {
		case Int:
			if dv == 0 {
				return Ptr{}
			}
		case Null:
			return Ptr{}
		}
	}
	return v
}

// env is one lexical environment (function frame with block scopes).
type env struct {
	in     *Interp
	this   *Object
	rtn    *il.Routine
	scopes []map[string]*Cell
	// objStack tracks locally-constructed objects per scope for
	// destructor calls at scope exit.
	objStack [][]*Object
}

func (in *Interp) newEnv(r *il.Routine, this *Object) *env {
	e := &env{in: in, this: this, rtn: r}
	e.push()
	return e
}

func (e *env) push() {
	e.scopes = append(e.scopes, map[string]*Cell{})
	e.objStack = append(e.objStack, nil)
}

// pop destroys the scope, running destructors of tracked objects in
// reverse order.
func (e *env) pop() error {
	top := e.objStack[len(e.objStack)-1]
	e.scopes = e.scopes[:len(e.scopes)-1]
	e.objStack = e.objStack[:len(e.objStack)-1]
	for i := len(top) - 1; i >= 0; i-- {
		if err := e.in.destroy(top[i]); err != nil {
			return err
		}
	}
	return nil
}

// popNoDtor discards the scope without running destructors (used after
// an error already unwound).
func (e *env) popNoDtor() {
	e.scopes = e.scopes[:len(e.scopes)-1]
	e.objStack = e.objStack[:len(e.objStack)-1]
}

func (e *env) declare(name string, cell *Cell) {
	e.scopes[len(e.scopes)-1][name] = cell
}

func (e *env) trackObj(o *Object) {
	e.objStack[len(e.objStack)-1] = append(e.objStack[len(e.objStack)-1], o)
}

func (e *env) lookup(name string) *Cell {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if c, ok := e.scopes[i][name]; ok {
			return c
		}
	}
	return nil
}

// unwindAll runs destructors for every open scope (function return).
func (e *env) unwindAll() error {
	for len(e.scopes) > 0 {
		if err := e.pop(); err != nil {
			return err
		}
	}
	return nil
}

// --- calls ---------------------------------------------------------------------

// Call invokes a routine with evaluated arguments. this is the receiver
// object for member functions (nil otherwise). Reference parameters
// receive Ref values; everything else is copied.
func (in *Interp) Call(r *il.Routine, this *Object, args []Value) (Value, error) {
	if r == nil {
		return nil, fmt.Errorf("call of unresolved routine")
	}
	if in.depth >= in.maxDepth {
		return nil, in.rterr(r.Loc, "call stack depth limit exceeded (%d)", in.maxDepth)
	}
	// Intrinsic?
	if fn, ok := in.intrinsics[r.QualifiedName()]; ok {
		return fn(in, this, args)
	}
	if !r.HasBody || r.Decl == nil || r.Decl.Body == nil {
		// Unused-mode stub or undefined external.
		if fn, ok := in.intrinsics[r.Name]; ok {
			return fn(in, this, args)
		}
		return nil, in.rterr(r.Loc, "call of routine %s with no body (not instantiated or intrinsic)", r.QualifiedName())
	}

	in.depth++
	in.trace = append(in.trace, r.QualifiedName())
	defer func() {
		in.depth--
		in.trace = in.trace[:len(in.trace)-1]
	}()

	if in.opts.Hooks != nil {
		in.opts.Hooks.RoutineEnter(r)
		defer in.opts.Hooks.RoutineExit(r)
	}

	e := in.newEnv(r, this)

	// Bind parameters.
	for i, p := range r.Params {
		var cell *Cell
		var argV Value
		switch {
		case i < len(args):
			argV = args[i]
		case p.Default != nil:
			dv, err := in.evalRValue(e, p.Default)
			if err != nil {
				return nil, err
			}
			argV = dv
		default:
			argV = zeroValueFor(p.Type)
		}
		if isRefParam(p.Type) {
			if ref, ok := argV.(Ref); ok {
				cell = ref.Cell
			} else {
				// Bind a temporary (const ref to rvalue).
				cell = &Cell{V: copyValue(deref(argV))}
			}
		} else {
			cell = &Cell{V: convertForStore(p.Type, copyValue(deref(argV)))}
		}
		e.declare(p.Name, cell)
	}

	// Constructor initializers.
	if r.Kind == ast.Constructor && this != nil {
		if err := in.runCtorInits(e, r, this); err != nil {
			e.popNoDtor()
			return nil, err
		}
	}

	ctl, err := in.execStmt(e, r.Decl.Body)
	if err != nil {
		return nil, err
	}
	// Normal or early return: unwind scopes (running local dtors).
	var ret Value = Null{}
	if ctl != nil && ctl.kind == ctlReturn {
		ret = ctl.val
	}
	if ctl != nil && ctl.kind == ctlThrow {
		if err := e.unwindAll(); err != nil {
			return nil, err
		}
		return nil, &thrownError{val: ctl.val, loc: ctl.loc}
	}
	if err := e.unwindAll(); err != nil {
		return nil, err
	}

	// Destructor body done: run member + base destruction for the
	// receiver.
	if r.Kind == ast.Destructor && this != nil {
		if err := in.destroyMembers(this, this.Class); err != nil {
			return nil, err
		}
	}
	if !isRefReturn(r.Ret) {
		ret = copyValue(deref(ret))
		ret = convertForStore(r.Ret, ret)
	}
	return ret, nil
}

func isRefParam(t *il.Type) bool { return t != nil && t.Unqualified().Kind == il.TRef }

func isRefReturn(t *il.Type) bool { return t != nil && t.Unqualified().Kind == il.TRef }

// runCtorInits performs the initialization phase of a constructor in
// the canonical C++ order: direct bases in declaration order, then
// data members in declaration order — each using its explicit
// initializer when present and default construction otherwise. The
// class is taken from the routine (not the object's dynamic class) so
// base-subobject construction of derived objects initializes the right
// layer.
func (in *Interp) runCtorInits(e *env, r *il.Routine, this *Object) error {
	cls := r.Class
	if cls == nil {
		return nil
	}
	inits := map[string]ast.CtorInit{}
	for _, init := range r.Decl.Inits {
		inits[init.Name.Terminal().Name] = init
	}
	evalInitArgs := func(init ast.CtorInit) ([]Value, error) {
		var args []Value
		for _, a := range init.Args {
			v, err := in.evalArg(e, a)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		return args, nil
	}

	// Direct bases, declaration order.
	for _, b := range cls.Bases {
		if b.Class == nil {
			continue
		}
		init, ok := inits[b.Class.Name]
		if !ok {
			init, ok = inits[b.Class.BaseName()]
		}
		var args []Value
		if ok {
			var err error
			if args, err = evalInitArgs(init); err != nil {
				return err
			}
		}
		if err := in.constructInPlace(this, b.Class, args, r.Loc); err != nil {
			return err
		}
	}

	// Data members, declaration order.
	for _, m := range cls.Members {
		if m.Storage == ast.Static {
			continue
		}
		cell := this.Field(m.Name)
		if cell == nil {
			continue
		}
		init, ok := inits[m.Name]
		if !ok {
			// No explicit initializer: default-construct class-typed
			// members (their constructors may have side effects).
			if mo, isObj := cell.V.(*Object); isObj {
				if err := in.construct(mo, nil, r.Loc); err != nil {
					return err
				}
			}
			continue
		}
		args, err := evalInitArgs(init)
		if err != nil {
			return err
		}
		if mo, isObj := cell.V.(*Object); isObj {
			if err := in.construct(mo, args, init.Name.Loc()); err != nil {
				return err
			}
			continue
		}
		if len(args) > 0 {
			cell.V = convertForStore(m.Type, copyValue(deref(args[0])))
		}
	}

	// Any remaining initializer names must have matched something.
	for name, init := range inits {
		if this.Field(name) != nil {
			continue
		}
		matched := false
		for _, b := range cls.Bases {
			if b.Class != nil && (b.Class.Name == name || b.Class.BaseName() == name) {
				matched = true
			}
		}
		if !matched {
			return in.rterr(init.Name.Loc(), "constructor initializer for unknown member %s", name)
		}
	}
	return nil
}

// construct runs the best-matching constructor of obj's class on obj.
// Classes without user constructors are already zero-initialized.
func (in *Interp) construct(obj *Object, args []Value, loc source.Loc) error {
	return in.constructInPlace(obj, obj.Class, args, loc)
}

func (in *Interp) constructInPlace(obj *Object, cls *il.Class, args []Value, loc source.Loc) error {
	if cls == nil {
		return nil
	}
	ctor := in.pickCtor(cls, args)
	if ctor == nil {
		// Copy construction from a same-class object.
		if len(args) == 1 {
			if src, ok := deref(args[0]).(*Object); ok && sameOrDerived(src.Class, cls) {
				copyFields(obj, src)
				return nil
			}
		}
		if len(args) > 0 {
			return in.rterr(loc, "no matching constructor for %s with %d argument(s)",
				cls.QualifiedName(), len(args))
		}
		// Default: construct class-typed members recursively (their
		// default ctors may have side effects).
		return in.defaultConstructMembers(obj, cls, loc)
	}
	// Receiver for an in-place base construction is the full object;
	// fields are shared via the flat field map.
	saved := obj.Class
	if cls != obj.Class {
		obj.Class = cls
	}
	_, err := in.Call(ctor, obj, args)
	obj.Class = saved
	return err
}

// defaultConstructMembers runs default constructors of class-typed
// members when the enclosing class has no user constructor.
func (in *Interp) defaultConstructMembers(obj *Object, cls *il.Class, loc source.Loc) error {
	for _, b := range cls.Bases {
		if b.Class != nil {
			if err := in.constructInPlace(obj, b.Class, nil, loc); err != nil {
				return err
			}
		}
	}
	for _, m := range cls.Members {
		if cell := obj.Field(m.Name); cell != nil {
			if mo, ok := cell.V.(*Object); ok {
				if err := in.construct(mo, nil, loc); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func copyFields(dst, src *Object) {
	for name, cell := range src.Fields {
		if d, ok := dst.Fields[name]; ok {
			d.V = copyValue(cell.V)
		}
	}
}

func sameOrDerived(c, base *il.Class) bool {
	return c == base || (c != nil && base != nil && c.DerivesFrom(base))
}

// pickCtor selects a constructor by runtime arguments.
func (in *Interp) pickCtor(cls *il.Class, args []Value) *il.Routine {
	var cands []*il.Routine
	for _, m := range cls.Methods {
		if m.Kind == ast.Constructor {
			cands = append(cands, m)
		}
	}
	return pickByRuntimeArgs(cands, args)
}

// destroy runs the destructor chain of an object.
func (in *Interp) destroy(obj *Object) error {
	if obj == nil || obj.Class == nil {
		return nil
	}
	dtor := findDtor(obj.Class)
	if dtor != nil && (dtor.HasBody || in.hasIntrinsic(dtor)) {
		_, err := in.Call(dtor, obj, nil)
		return err
	}
	return in.destroyMembers(obj, obj.Class)
}

// hasIntrinsic reports whether r has a native implementation.
func (in *Interp) hasIntrinsic(r *il.Routine) bool {
	_, ok := in.intrinsics[r.QualifiedName()]
	return ok
}

// destroyMembers destroys class-typed members and base subobjects
// (after a destructor body has run, or when no destructor exists).
func (in *Interp) destroyMembers(obj *Object, cls *il.Class) error {
	if cls == nil {
		return nil
	}
	for i := len(cls.Members) - 1; i >= 0; i-- {
		m := cls.Members[i]
		if cell := obj.Field(m.Name); cell != nil {
			if mo, ok := cell.V.(*Object); ok {
				if err := in.destroy(mo); err != nil {
					return err
				}
			}
		}
	}
	for i := len(cls.Bases) - 1; i >= 0; i-- {
		b := cls.Bases[i]
		if b.Class == nil {
			continue
		}
		if bd := findDtorIn(b.Class); bd != nil && (bd.HasBody || in.hasIntrinsic(bd)) {
			saved := obj.Class
			obj.Class = b.Class
			_, err := in.Call(bd, obj, nil)
			obj.Class = saved
			if err != nil {
				return err
			}
		} else if err := in.destroyMembers(obj, b.Class); err != nil {
			return err
		}
	}
	return nil
}

func findDtor(cls *il.Class) *il.Routine {
	for c := cls; c != nil; {
		if d := findDtorIn(c); d != nil {
			return d
		}
		// climb to first base
		if len(c.Bases) > 0 {
			c = c.Bases[0].Class
		} else {
			c = nil
		}
	}
	return nil
}

func findDtorIn(cls *il.Class) *il.Routine {
	for _, m := range cls.Methods {
		if m.Kind == ast.Destructor {
			return m
		}
	}
	return nil
}

// pickByRuntimeArgs selects an overload by argument count and runtime
// value kinds.
func pickByRuntimeArgs(cands []*il.Routine, args []Value) *il.Routine {
	var best *il.Routine
	bestScore := -1
	for _, cand := range cands {
		minArgs := 0
		for _, p := range cand.Params {
			if p.Default == nil {
				minArgs++
			}
		}
		variadic := cand.Signature != nil && cand.Signature.Variadic
		if len(args) < minArgs || (!variadic && len(args) > len(cand.Params)) {
			continue
		}
		score := 0
		for i, a := range args {
			if i >= len(cand.Params) {
				break
			}
			score += runtimeRank(cand.Params[i].Type, deref(a))
		}
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

// runtimeRank scores a runtime value against a parameter type.
func runtimeRank(t *il.Type, v Value) int {
	if t == nil {
		return 0
	}
	u := t.Deref()
	switch v := v.(type) {
	case Int:
		if u.Kind == il.TInt || u.Kind == il.TUInt || u.Kind == il.TLong ||
			u.Kind == il.TULong || u.Kind == il.TLongLong || u.Kind == il.TULongLong ||
			u.Kind == il.TShort || u.Kind == il.TUShort {
			return 3
		}
		if u.Kind.IsArithmetic() {
			return 1
		}
	case Float:
		if u.Kind.IsFloat() {
			return 3
		}
		if u.Kind.IsArithmetic() {
			return 1
		}
	case Bool:
		if u.Kind == il.TBool {
			return 3
		}
		if u.Kind.IsArithmetic() {
			return 1
		}
	case Char:
		if u.Kind == il.TChar || u.Kind == il.TSChar || u.Kind == il.TUChar {
			return 3
		}
		if u.Kind.IsArithmetic() {
			return 1
		}
	case Str:
		if u.Kind == il.TPtr {
			if e := u.Elem.Unqualified(); e.Kind == il.TChar {
				return 3
			}
			return 1
		}
	case Ptr:
		if u.Kind == il.TPtr || u.Kind == il.TArray {
			return 3
		}
	case *Object:
		if u.Kind == il.TClass {
			if u.Class == v.Class {
				return 4
			}
			if v.Class != nil && u.Class != nil && v.Class.DerivesFrom(u.Class) {
				return 2
			}
		}
	}
	return 0
}

// thrownError propagates a C++ exception through Go frames.
type thrownError struct {
	val Value
	loc source.Loc
}

func (t *thrownError) Error() string {
	if o, ok := t.val.(*Object); ok && o.Class != nil {
		return "exception of type " + o.Class.QualifiedName()
	}
	return "exception: " + FormatValue(t.val)
}

// nameOfType renders a runtime type name for the CT() RTTI query.
func nameOfType(v Value) string {
	switch v := deref(v).(type) {
	case *Object:
		if v.Class != nil {
			return v.Class.QualifiedName()
		}
		return "class"
	case Int:
		return "int"
	case Float:
		return "double"
	case Bool:
		return "bool"
	case Char:
		return "char"
	case Str:
		return "const char *"
	case Ptr:
		if !v.IsNull() && len(v.Alloc.Cells) > 0 {
			return strings.TrimSpace(nameOfType(v.Alloc.Cells[v.Idx].V) + " *")
		}
		return "void *"
	default:
		return "void"
	}
}
