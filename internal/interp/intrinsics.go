package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// installStdIntrinsics wires the built-in header declarations
// (internal/cpp/stdlib) to native implementations.
func installStdIntrinsics(in *Interp) {
	// Stream output: every ostream::operator<< overload.
	in.RegisterIntrinsic("ostream::operator<<", func(in *Interp, this *Object, args []Value) (Value, error) {
		if len(args) > 0 {
			fmt.Fprint(in.out, FormatValue(args[0]))
		}
		return this, nil
	})

	mono := func(name string, f func(float64) float64) {
		in.RegisterIntrinsic(name, func(in *Interp, _ *Object, args []Value) (Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("%s: missing argument", name)
			}
			x, err := asFloat(deref(args[0]))
			if err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
			return Float(f(x)), nil
		})
	}
	mono("sqrt", math.Sqrt)
	mono("fabs", math.Abs)
	mono("sin", math.Sin)
	mono("cos", math.Cos)
	mono("tan", math.Tan)
	mono("exp", math.Exp)
	mono("log", math.Log)
	mono("floor", math.Floor)
	mono("ceil", math.Ceil)

	in.RegisterIntrinsic("pow", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("pow: missing arguments")
		}
		a, err1 := asFloat(deref(args[0]))
		b, err2 := asFloat(deref(args[1]))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("pow: non-numeric argument")
		}
		return Float(math.Pow(a, b)), nil
	})

	in.RegisterIntrinsic("printf", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) == 0 {
			return Int(0), nil
		}
		format, ok := deref(args[0]).(Str)
		if !ok {
			return nil, fmt.Errorf("printf: format is not a string")
		}
		s := formatPrintf(string(format), args[1:])
		n, _ := fmt.Fprint(in.out, s)
		return Int(n), nil
	})
	in.RegisterIntrinsic("puts", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) > 0 {
			fmt.Fprintln(in.out, FormatValue(args[0]))
		}
		return Int(0), nil
	})
	in.RegisterIntrinsic("putchar", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) > 0 {
			if i, err := asInt(deref(args[0])); err == nil {
				fmt.Fprint(in.out, string(rune(i)))
				return Int(i), nil
			}
		}
		return Int(-1), nil
	})

	in.RegisterIntrinsic("abs", func(in *Interp, _ *Object, args []Value) (Value, error) {
		i, err := asInt(deref(args[0]))
		if err != nil {
			return nil, err
		}
		if i < 0 {
			i = -i
		}
		return Int(i), nil
	})
	in.RegisterIntrinsic("labs", in.intrinsics["abs"])
	in.RegisterIntrinsic("exit", func(in *Interp, _ *Object, args []Value) (Value, error) {
		code := int64(0)
		if len(args) > 0 {
			code, _ = asInt(deref(args[0]))
		}
		return nil, &exitSignal{code: int(code)}
	})
	// Deterministic xorshift PRNG so runs are reproducible.
	in.RegisterIntrinsic("rand", func(in *Interp, _ *Object, args []Value) (Value, error) {
		in.rngState ^= in.rngState << 13
		in.rngState ^= in.rngState >> 7
		in.rngState ^= in.rngState << 17
		return Int(int64(in.rngState % 2147483647)), nil
	})
	in.RegisterIntrinsic("srand", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) > 0 {
			if i, err := asInt(deref(args[0])); err == nil && i != 0 {
				in.rngState = uint64(i)
			}
		}
		return Null{}, nil
	})
	in.RegisterIntrinsic("atoi", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) > 0 {
			if s, ok := deref(args[0]).(Str); ok {
				n, _ := strconv.Atoi(strings.TrimSpace(string(s)))
				return Int(n), nil
			}
		}
		return Int(0), nil
	})
	in.RegisterIntrinsic("strcmp", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) < 2 {
			return Int(0), nil
		}
		a, _ := deref(args[0]).(Str)
		b, _ := deref(args[1]).(Str)
		return Int(int64(strings.Compare(string(a), string(b)))), nil
	})
	in.RegisterIntrinsic("strlen", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) > 0 {
			if s, ok := deref(args[0]).(Str); ok {
				return Int(int64(len(s))), nil
			}
		}
		return Int(0), nil
	})
	in.RegisterIntrinsic("__pdt_assert", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) >= 1 {
			ok, _ := asInt(deref(args[0]))
			if ok == 0 {
				what := "assertion failed"
				if len(args) >= 2 {
					if s, isStr := deref(args[1]).(Str); isStr {
						what = "assertion failed: " + string(s)
					}
				}
				return nil, fmt.Errorf("%s", what)
			}
		}
		return Null{}, nil
	})

	// RTTI for TAU's CT(obj) macro: the run-time type name, including
	// instantiated template arguments ("Stack<int>").
	in.RegisterIntrinsic("__pdt_typename", func(in *Interp, _ *Object, args []Value) (Value, error) {
		if len(args) == 0 {
			return Str("void"), nil
		}
		return Str(nameOfType(args[0])), nil
	})
}

// formatPrintf implements the printf subset: %d %i %ld %u %f %g %e %s
// %c %x %% with optional width/precision digits (which are honored via
// Go's formatter).
func formatPrintf(format string, args []Value) string {
	var sb strings.Builder
	argi := 0
	next := func() Value {
		if argi < len(args) {
			v := deref(args[argi])
			argi++
			return v
		}
		return Int(0)
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			sb.WriteByte(ch)
			continue
		}
		if i+1 >= len(format) {
			break
		}
		// Collect flags/width/precision.
		j := i + 1
		for j < len(format) && (format[j] == '-' || format[j] == '+' || format[j] == ' ' ||
			format[j] == '0' || format[j] == '.' || (format[j] >= '0' && format[j] <= '9')) {
			j++
		}
		// Skip length modifiers.
		for j < len(format) && (format[j] == 'l' || format[j] == 'h' || format[j] == 'z') {
			j++
		}
		if j >= len(format) {
			break
		}
		spec := format[i+1 : j]
		verb := format[j]
		switch verb {
		case '%':
			sb.WriteByte('%')
		case 'd', 'i', 'u':
			v, _ := asInt(next())
			fmt.Fprintf(&sb, "%"+spec+"d", v)
		case 'x':
			v, _ := asInt(next())
			fmt.Fprintf(&sb, "%"+spec+"x", v)
		case 'f', 'e', 'g':
			v, _ := asFloat(next())
			fmt.Fprintf(&sb, "%"+spec+string(verb), v)
		case 'c':
			v, _ := asInt(next())
			sb.WriteString(string(rune(v)))
		case 's':
			sb.WriteString(FormatValue(next()))
		default:
			sb.WriteByte('%')
			sb.WriteByte(verb)
		}
		i = j
	}
	return sb.String()
}
