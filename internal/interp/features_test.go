package interp_test

import (
	"strings"
	"testing"
)

func TestConstructionDestructionOrder(t *testing.T) {
	// Bases construct before members, members before the body;
	// destruction reverses everything.
	_, out := run(t, `
#include <iostream>
class Part {
public:
    Part(int id) : id_(id) { cout << "+" << id_; }
    ~Part() { cout << "-" << id_; }
private:
    int id_;
};
class Base {
public:
    Base() : bp(1) { cout << "B"; }
    ~Base() { cout << "b"; }
private:
    Part bp;
};
class Whole : public Base {
public:
    Whole() : p1(2), p2(3) { cout << "W"; }
    ~Whole() { cout << "w"; }
private:
    Part p1;
    Part p2;
};
int main() {
    { Whole w; cout << "."; }
    return 0;
}`, nil)
	// Construction: Base(bp then body) then members p1, p2, then W.
	// Destruction: w body, members reverse (p2, p1), then Base (body
	// then bp).
	want := "+1B+2+3W.w-3-2b-1"
	if out != want {
		t.Errorf("order = %q, want %q", out, want)
	}
}

func TestBaseCtorInitArgs(t *testing.T) {
	code, _ := run(t, `
class Base {
public:
    Base(int v) : stored(v * 2) { }
    int stored;
};
class Derived : public Base {
public:
    Derived(int v) : Base(v + 1) { }
};
int main() {
    Derived d(20);
    return d.stored; // (20+1)*2
}`, nil)
	if code != 42 {
		t.Errorf("code = %d, want 42", code)
	}
}

func TestMemberFunctionTemplateRuns(t *testing.T) {
	code, _ := run(t, `
class Host {
public:
    template <class U> U twice(U v) { return v + v; }
};
int main() {
    Host h;
    int a = h.twice(10);
    double b = h.twice(1.25);
    return a + (int)(b * 4); // 20 + 10
}`, nil)
	if code != 30 {
		t.Errorf("code = %d, want 30", code)
	}
}

func TestExplicitTemplateArgsCall(t *testing.T) {
	code, _ := run(t, `
template <class T> T zero() { return 0; }
template <class T> T widen(int x) { return x; }
int main() {
    double d = widen<double>(21);
    return (int)(d * 2) + (int) zero<int>();
}`, nil)
	if code != 42 {
		t.Errorf("code = %d, want 42", code)
	}
}

func TestArrayOfObjects(t *testing.T) {
	code, _ := run(t, `
#include <iostream>
class Cell {
public:
    Cell() : v(7) { }
    int v;
};
int main() {
    Cell *cells = new Cell[3];
    int sum = cells[0].v + cells[1].v + cells[2].v;
    cells[1].v = 1;
    sum += cells[1].v;
    delete[] cells;
    return sum; // 21 + 1
}`, nil)
	if code != 22 {
		t.Errorf("code = %d, want 22", code)
	}
}

func TestStaticMethods(t *testing.T) {
	code, _ := run(t, `
class MathUtil {
public:
    static int square(int x) { return x * x; }
    static int calls;
};
int MathUtil::calls = 0;
int main() {
    return MathUtil::square(6) + MathUtil::calls;
}`, nil)
	if code != 36 {
		t.Errorf("code = %d, want 36", code)
	}
}

func TestCharAndBoolSemantics(t *testing.T) {
	code, out := run(t, `
#include <iostream>
int main() {
    char c = 'A';
    c = c + 1;
    cout << c;
    bool b = 5;   // non-zero converts to true
    bool b2 = 0;
    int total = b + b2 + (c == 'B' ? 10 : 0);
    return total; // 1 + 0 + 10
}`, nil)
	if out != "B" || code != 11 {
		t.Errorf("out=%q code=%d", out, code)
	}
}

func TestTypedefsInFunctions(t *testing.T) {
	code, _ := run(t, `
typedef unsigned long ulong_t;
typedef int number;
number compute(ulong_t n) { return (number) (n * 2); }
int main() {
    ulong_t x = 21;
    return compute(x);
}`, nil)
	if code != 42 {
		t.Errorf("code = %d", code)
	}
}

func TestNamespaceStaticsAndGlobals(t *testing.T) {
	code, _ := run(t, `
namespace counters {
    int hits = 0;
    void bump() { hits += 2; }
}
int main() {
    counters::bump();
    counters::bump();
    return counters::hits + 38;
}`, nil)
	if code != 42 {
		t.Errorf("code = %d", code)
	}
}

func TestCoutChaining(t *testing.T) {
	_, out := run(t, `
#include <iostream>
int main() {
    cout << "a=" << 1 << " b=" << 2.5 << " done" << endl;
    cerr << "err" << endl;
    return 0;
}`, nil)
	if out != "a=1 b=2.5 done\nerr\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCompoundAssignOnMembers(t *testing.T) {
	code, _ := run(t, `
class Acc {
public:
    Acc() : total(0) { }
    void feed(int v) {
        total += v;
        total *= 2;
        total -= 1;
    }
    int total;
};
int main() {
    Acc a;
    a.feed(3);  // (0+3)*2-1 = 5
    a.feed(2);  // (5+2)*2-1 = 13
    return a.total;
}`, nil)
	if code != 13 {
		t.Errorf("code = %d, want 13", code)
	}
}

func TestPointerComparisonsAndNull(t *testing.T) {
	code, _ := run(t, `
int main() {
    int *arr = new int[4];
    int *p = arr;
    int *q = arr + 2;
    int r = 0;
    if (p < q) r += 1;
    if (q - p == 2) r += 2;
    if (p == arr) r += 4;
    int *n = 0;
    if (n == 0) r += 8;
    if (!n) r += 16;
    delete[] arr;
    return r; // 31
}`, nil)
	if code != 31 {
		t.Errorf("code = %d, want 31", code)
	}
}

func TestStaticCastsAndTruncation(t *testing.T) {
	code, _ := run(t, `
int main() {
    double d = 3.99;
    int i = static_cast<int>(d);          // 3
    int j = (int) (d * 2);                // 7
    double back = static_cast<double>(i); // 3.0
    return i + j + (int) back;            // 13
}`, nil)
	if code != 13 {
		t.Errorf("code = %d, want 13", code)
	}
}

func TestStrcmpStrlen(t *testing.T) {
	code, _ := run(t, `
#include <cstring>
int main() {
    int r = 0;
    if (strcmp("abc", "abc") == 0) r += 1;
    if (strcmp("abc", "abd") < 0) r += 2;
    if (strlen("hello") == 5) r += 4;
    return r;
}`, nil)
	if code != 7 {
		t.Errorf("code = %d, want 7", code)
	}
}

func TestExitIntrinsic(t *testing.T) {
	code, out := run(t, `
#include <cstdlib>
#include <iostream>
int main() {
    cout << "before";
    exit(5);
    cout << "after";
    return 0;
}`, nil)
	if code != 5 || out != "before" {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestDeterministicRand(t *testing.T) {
	src := `
#include <cstdlib>
int main() {
    srand(12345);
    return (rand() + rand()) % 100;
}`
	c1, _ := run(t, src, nil)
	c2, _ := run(t, src, nil)
	if c1 != c2 {
		t.Errorf("rand not deterministic: %d vs %d", c1, c2)
	}
}

func TestNestedClassesRuntime(t *testing.T) {
	code, _ := run(t, `
class Outer {
public:
    class Inner {
    public:
        Inner() : v(21) { }
        int v;
    };
    Inner make() { Inner i; return i; }
};
int main() {
    Outer o;
    Outer::Inner i = o.make();
    return i.v * 2;
}`, nil)
	if code != 42 {
		t.Errorf("code = %d, want 42", code)
	}
}

func TestVirtualDtorThroughBasePointer(t *testing.T) {
	_, out := run(t, `
#include <iostream>
class Base {
public:
    virtual ~Base() { cout << "b"; }
};
class Derived : public Base {
public:
    ~Derived() { cout << "d"; }
};
int main() {
    Base *p = new Derived;
    delete p; // must run ~Derived then ~Base
    return 0;
}`, nil)
	if out != "db" {
		t.Errorf("dtor chain = %q, want db", out)
	}
}

func TestThrowAcrossTemplates(t *testing.T) {
	code, _ := run(t, `
class Bad { public: Bad(int c) : code(c) { } int code; };
template <class T>
T risky(T v) {
    if (v > 10)
        throw Bad((int) v);
    return v;
}
int main() {
    int total = risky(5);
    try {
        total += risky(50);
    } catch (Bad & b) {
        total += b.code / 10;
    }
    return total; // 5 + 5
}`, nil)
	if code != 10 {
		t.Errorf("code = %d, want 10", code)
	}
}

func TestDeepRecursionGuard(t *testing.T) {
	_, _, err := runErr(t, `
int forever(int n) { return forever(n + 1); }
int main() { return forever(0); }`, nil)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("err = %v", err)
	}
}

func TestDoubleDeleteDetected(t *testing.T) {
	_, _, err := runErr(t, `
int main() {
    int *p = new int[4];
    delete[] p;
    delete[] p;
    return 0;
}`, nil)
	if err == nil || !strings.Contains(err.Error(), "double delete") {
		t.Errorf("err = %v", err)
	}
}

func TestUseAfterDeleteDetected(t *testing.T) {
	_, _, err := runErr(t, `
int main() {
    int *p = new int[4];
    delete[] p;
    return p[0];
}`, nil)
	if err == nil || !strings.Contains(err.Error(), "delete") {
		t.Errorf("err = %v", err)
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	_, _, err := runErr(t, `
int main() {
    int *p = new int[4];
    return p[9];
}`, nil)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("err = %v", err)
	}
}

func TestAssertIntrinsic(t *testing.T) {
	code, _ := run(t, `
#include <cassert>
int main() {
    assert(1 + 1 == 2);
    return 0;
}`, nil)
	if code != 0 {
		t.Errorf("code = %d", code)
	}
	_, _, err := runErr(t, `
#include <cassert>
int main() {
    assert(1 == 2);
    return 0;
}`, nil)
	if err == nil || !strings.Contains(err.Error(), "assertion failed") {
		t.Errorf("err = %v", err)
	}
}

func TestRethrow(t *testing.T) {
	code, out := run(t, `
#include <iostream>
class E { public: E(int c) : code(c) { } int code; };
void middle() {
    try {
        throw E(7);
    } catch (E & e) {
        cout << "m" << e.code;
        throw; // rethrow the active exception
    }
}
int main() {
    try {
        middle();
    } catch (E & e) {
        cout << "o" << e.code;
        return e.code;
    }
    return 0;
}`, nil)
	if out != "m7o7" || code != 7 {
		t.Errorf("out=%q code=%d", out, code)
	}
}

func TestBareRethrowOutsideHandlerErrors(t *testing.T) {
	_, _, err := runErr(t, `int main() { throw; }`, nil)
	if err == nil || !strings.Contains(err.Error(), "rethrow") {
		t.Errorf("err = %v", err)
	}
}
