package interp

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// evalCall resolves and executes a call expression.
func (in *Interp) evalCall(e *env, expr *ast.CallExpr) (Value, error) {
	var args []Value
	for _, a := range expr.Args {
		v, err := in.evalArg(e, a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}

	switch fn := expr.Fn.(type) {
	case *ast.NameExpr:
		name := fn.Name.Terminal().Name
		if fn.Name.IsSimple() || (len(fn.Name.Segs) == 1) {
			// A local/member variable of class type: operator().
			if c := e.lookup(name); c != nil {
				if obj, ok := c.V.(*Object); ok {
					return in.callMethodByName(e, obj, "operator()", args, fn.Name.Loc())
				}
			}
			// Member function of the receiver (virtual via dynamic
			// class).
			if e.this != nil {
				if v, err, ok := in.tryMethod(e.this, name, args); ok {
					return v, err
				}
			}
			// Free function (including template instantiations).
			if r := in.findFreeRoutine(name, args); r != nil {
				return in.Call(r, nil, args)
			}
			// Intrinsic-only names (declared in built-in headers).
			if fnIntr, ok := in.intrinsics[name]; ok {
				return fnIntr(in, nil, args)
			}
			return nil, in.rterr(fn.Name.Loc(), "call of undefined function %q", name)
		}
		// Qualified call: Class::f or ns::f.
		ownerSeg := fn.Name.Segs[len(fn.Name.Segs)-2]
		owner := ownerSeg.Name
		if cls := in.unit.LookupClass(owner); cls != nil {
			cands := collectMethods(cls, name)
			m := pickByRuntimeArgs(cands, args)
			if m != nil {
				var this *Object
				if !m.Static && e.this != nil {
					this = e.this
				}
				return in.Call(m, this, args)
			}
		}
		qname := fn.Name.String()
		if r := in.findQualifiedRoutine(qname, args); r != nil {
			return in.Call(r, nil, args)
		}
		return nil, in.rterr(fn.Name.Loc(), "call of undefined function %q", qname)

	case *ast.MemberExpr:
		obj, err := in.evalObjectBase(e, fn.Base, fn.Arrow)
		if err != nil {
			return nil, err
		}
		name := fn.Name.Terminal().Name
		return in.callMethodByName(e, obj, name, args, fn.Pos)

	default:
		fnV, err := in.evalRValue(e, expr.Fn)
		if err != nil {
			return nil, err
		}
		if obj, ok := fnV.(*Object); ok {
			return in.callMethodByName(e, obj, "operator()", args, expr.Pos.Begin)
		}
		return nil, in.rterr(expr.Pos.Begin, "call of non-function value")
	}
}

// tryMethod attempts a method call on obj; ok=false when no candidate
// matched (so the caller can fall back to free functions).
func (in *Interp) tryMethod(obj *Object, name string, args []Value) (Value, error, bool) {
	cands := collectMethods(obj.Class, name)
	m := pickByRuntimeArgs(cands, args)
	if m == nil {
		return nil, nil, false
	}
	v, err := in.Call(m, obj, args)
	return v, err, true
}

// callMethodByName dispatches a (possibly virtual) method call on obj.
func (in *Interp) callMethodByName(e *env, obj *Object, name string, args []Value, loc source.Loc) (Value, error) {
	if obj.Class == nil {
		return nil, in.rterr(loc, "method call on classless object")
	}
	cands := collectMethods(obj.Class, name)
	m := pickByRuntimeArgs(cands, args)
	if m == nil {
		return nil, in.rterr(loc, "class %s has no method %q matching %d argument(s)",
			obj.Class.QualifiedName(), name, len(args))
	}
	// Virtual dispatch: collectMethods searched the dynamic class
	// first, so m is already the final overrider.
	return in.Call(m, obj, args)
}

// collectMethods gathers the overload set for name on cls, searching
// the dynamic class before its bases (so overrides win), and including
// member-template instantiations by base name.
func collectMethods(cls *il.Class, name string) []*il.Routine {
	var out []*il.Routine
	seen := map[*il.Routine]bool{}
	var visit func(c *il.Class)
	visit = func(c *il.Class) {
		if c == nil {
			return
		}
		for _, m := range c.Methods {
			if seen[m] {
				continue
			}
			if m.Name == name || instBaseName(m.Name) == name {
				// An override in a more-derived class shadows the base
				// declaration with the same arity.
				shadowed := false
				for _, prev := range out {
					if prev.Name == m.Name && len(prev.Params) == len(m.Params) {
						shadowed = true
						break
					}
				}
				if !shadowed {
					out = append(out, m)
				}
				seen[m] = true
			}
		}
		for _, b := range c.Bases {
			visit(b.Class)
		}
	}
	visit(cls)
	return out
}

func instBaseName(name string) string {
	if i := strings.IndexByte(name, '<'); i >= 0 {
		return name[:i]
	}
	return name
}

// freeIndex lazily builds the free-function index: base name → overload
// set (template instantiations included under their base name).
func (in *Interp) freeIndex() map[string][]*il.Routine {
	if in.freeByName != nil {
		return in.freeByName
	}
	idx := map[string][]*il.Routine{}
	for _, r := range in.unit.AllRoutines {
		if r.Class != nil {
			continue
		}
		idx[instBaseName(r.Name)] = append(idx[instBaseName(r.Name)], r)
		if q := r.QualifiedName(); q != r.Name {
			idx[q] = append(idx[q], r)
		}
	}
	in.freeByName = idx
	return idx
}

// findFreeRoutine picks the best free-function overload for the
// runtime arguments.
func (in *Interp) findFreeRoutine(name string, args []Value) *il.Routine {
	cands := in.freeIndex()[name]
	return pickByRuntimeArgs(cands, args)
}

// findQualifiedRoutine matches "ns::f" style names.
func (in *Interp) findQualifiedRoutine(qname string, args []Value) *il.Routine {
	if r := in.findFreeRoutine(qname, args); r != nil {
		return r
	}
	// Loose suffix match for using-directive style calls.
	var cands []*il.Routine
	for key, rs := range in.freeIndex() {
		if strings.HasSuffix(key, "::"+qname) || key == qname {
			cands = append(cands, rs...)
		}
	}
	return pickByRuntimeArgs(cands, args)
}
