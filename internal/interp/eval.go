package interp

import (
	"strings"

	"pdt/internal/cpp/ast"
	"pdt/internal/il"
	"pdt/internal/source"
)

// evalRValue evaluates an expression to a plain value (references are
// unwrapped).
func (in *Interp) evalRValue(e *env, expr ast.Expr) (Value, error) {
	v, err := in.evalExpr(e, expr)
	if err != nil {
		return nil, err
	}
	return deref(v), nil
}

// evalArg evaluates a call argument: lvalues become Ref so reference
// parameters can alias them; everything else is a plain value.
func (in *Interp) evalArg(e *env, expr ast.Expr) (Value, error) {
	if isLValueExpr(expr) {
		cell, err := in.evalLValue(e, expr)
		if err == nil && cell != nil {
			return Ref{Cell: cell}, nil
		}
		if _, thrown := err.(*thrownError); thrown {
			return nil, err
		}
		// Not an lvalue after all (e.g. an enumerator name): evaluate
		// as an rvalue.
	}
	return in.evalExpr(e, expr)
}

func isLValueExpr(expr ast.Expr) bool {
	switch expr := expr.(type) {
	case *ast.NameExpr, *ast.MemberExpr, *ast.IndexExpr:
		return true
	case *ast.UnaryExpr:
		return expr.Op == ast.Deref || expr.Op == ast.PreInc || expr.Op == ast.PreDec
	case *ast.ParenExpr:
		return isLValueExpr(expr.E)
	default:
		return false
	}
}

// evalExpr evaluates an expression; may return a Ref for
// reference-yielding expressions.
func (in *Interp) evalExpr(e *env, expr ast.Expr) (Value, error) {
	if err := in.step(expr.Span().Begin); err != nil {
		return nil, err
	}
	switch expr := expr.(type) {
	case *ast.IntLit:
		return Int(expr.Value), nil
	case *ast.FloatLit:
		return Float(expr.Value), nil
	case *ast.CharLit:
		return Char(expr.Value), nil
	case *ast.StringLit:
		return Str(expr.Value), nil
	case *ast.BoolLit:
		return Bool(expr.Value), nil
	case *ast.ThisExpr:
		if e.this == nil {
			return nil, in.rterr(expr.Pos, "'this' outside a member function")
		}
		return Ptr{Obj: e.this}, nil
	case *ast.ParenExpr:
		return in.evalExpr(e, expr.E)
	case *ast.NameExpr:
		return in.evalName(e, expr)
	case *ast.UnaryExpr:
		return in.evalUnary(e, expr)
	case *ast.BinaryExpr:
		return in.evalBinary(e, expr)
	case *ast.CondExpr:
		cond, err := in.evalRValue(e, expr.C)
		if err != nil {
			return nil, err
		}
		b, err := truthy(cond)
		if err != nil {
			return nil, in.rterr(expr.Pos, "%v", err)
		}
		if b {
			return in.evalExpr(e, expr.T)
		}
		return in.evalExpr(e, expr.F)
	case *ast.CallExpr:
		return in.evalCall(e, expr)
	case *ast.MemberExpr:
		cell, err := in.memberCell(e, expr)
		if err != nil {
			return nil, err
		}
		return Ref{Cell: cell}, nil
	case *ast.IndexExpr:
		return in.evalIndex(e, expr)
	case *ast.CastExpr:
		return in.evalCast(e, expr)
	case *ast.ConstructExpr:
		return in.evalConstruct(e, expr)
	case *ast.NewExpr:
		return in.evalNew(e, expr)
	case *ast.DeleteExpr:
		return in.evalDelete(e, expr)
	case *ast.SizeofExpr:
		return in.evalSizeof(e, expr)
	case *ast.ThrowExpr:
		if expr.Operand == nil {
			// Bare "throw;" rethrows the exception being handled.
			if n := len(in.excStack); n > 0 {
				return nil, &thrownError{val: in.excStack[n-1], loc: expr.Pos.Begin}
			}
			return nil, in.rterr(expr.Pos.Begin, "rethrow with no active exception")
		}
		tv, err := in.evalRValue(e, expr.Operand)
		if err != nil {
			return nil, err
		}
		return nil, &thrownError{val: copyValue(tv), loc: expr.Pos.Begin}
	default:
		return nil, in.rterr(expr.Span().Begin, "unsupported expression %T", expr)
	}
}

// --- names ---------------------------------------------------------------------

func (in *Interp) evalName(e *env, expr *ast.NameExpr) (Value, error) {
	cell, err := in.nameCell(e, expr, false)
	if err != nil {
		return nil, err
	}
	if cell != nil {
		return Ref{Cell: cell}, nil
	}
	// Bound non-type template parameter (e.g. N in Slot<int, 4>).
	if e.rtn != nil && e.rtn.Bindings != nil && expr.Name.IsSimple() {
		if bv, ok := e.rtn.Bindings[expr.Name.Terminal().Name]; ok && bv.IsInt {
			return Int(bv.Const), nil
		}
	}
	// Enumerator?
	if v, ok := in.lookupEnumConst(expr.Name); ok {
		return Int(v), nil
	}
	return nil, in.rterr(expr.Name.Loc(), "undefined name %q", expr.Name.String())
}

// nameCell resolves a name to its storage cell: locals, receiver
// members, static members, then globals. Returns nil (no error) if the
// name is not a variable (e.g. an enumerator) unless required.
func (in *Interp) nameCell(e *env, expr *ast.NameExpr, required bool) (*Cell, error) {
	name := expr.Name.Terminal().Name
	if expr.Name.IsSimple() {
		if c := e.lookup(name); c != nil {
			return c, nil
		}
		if e.this != nil {
			if c := e.this.Field(name); c != nil {
				return c, nil
			}
			// static member of the receiver's class
			if m := e.this.Class.FindMember(name); m != nil && m.Storage == ast.Static {
				return in.staticCell(m), nil
			}
		}
		if v := in.lookupGlobalVar(name); v != nil {
			return in.globalCell(v), nil
		}
		if required {
			return nil, in.rterr(expr.Name.Loc(), "undefined variable %q", name)
		}
		return nil, nil
	}
	// Qualified: Class::staticMember or ns::var.
	owner := expr.Name.Segs[len(expr.Name.Segs)-2].Name
	if cls := in.unit.LookupClass(owner); cls != nil {
		if m := cls.FindMember(name); m != nil {
			return in.staticCell(m), nil
		}
	}
	if v := in.lookupGlobalVarQualified(expr.Name); v != nil {
		return in.globalCell(v), nil
	}
	if required {
		return nil, in.rterr(expr.Name.Loc(), "undefined name %q", expr.Name.String())
	}
	return nil, nil
}

func (in *Interp) globalCell(v *il.Var) *Cell {
	if c, ok := in.globals[v]; ok {
		return c
	}
	c := &Cell{V: zeroValueFor(v.Type)}
	in.globals[v] = c
	return c
}

func (in *Interp) staticCell(v *il.Var) *Cell { return in.globalCell(v) }

func (in *Interp) lookupGlobalVar(name string) *il.Var {
	var find func(ns *il.Namespace) *il.Var
	find = func(ns *il.Namespace) *il.Var {
		for _, v := range ns.Vars {
			if v.Name == name {
				return v
			}
		}
		for _, sub := range ns.Namespaces {
			if v := find(sub); v != nil {
				return v
			}
		}
		return nil
	}
	return find(in.unit.Global)
}

func (in *Interp) lookupGlobalVarQualified(q ast.QualName) *il.Var {
	// Resolve the namespace path loosely: match the terminal variable
	// within a namespace whose qualified name ends with the prefix.
	prefix := make([]string, 0, len(q.Segs)-1)
	for _, s := range q.Segs[:len(q.Segs)-1] {
		prefix = append(prefix, s.Name)
	}
	want := strings.Join(prefix, "::")
	name := q.Terminal().Name
	var find func(ns *il.Namespace) *il.Var
	find = func(ns *il.Namespace) *il.Var {
		if qn := ns.QualifiedName(); qn == want || strings.HasSuffix(qn, "::"+want) {
			for _, v := range ns.Vars {
				if v.Name == name {
					return v
				}
			}
		}
		for _, sub := range ns.Namespaces {
			if v := find(sub); v != nil {
				return v
			}
		}
		return nil
	}
	return find(in.unit.Global)
}

func (in *Interp) lookupEnumConst(q ast.QualName) (int64, bool) {
	name := q.Terminal().Name
	if len(q.Segs) >= 2 {
		owner := q.Segs[len(q.Segs)-2].Name
		for _, en := range in.unit.AllEnums {
			if en.Name == owner {
				if v, ok := en.Lookup(name); ok {
					return v, true
				}
			}
		}
		for _, c := range in.unit.AllClasses {
			if c.Name == owner {
				for _, en := range c.Enums {
					if v, ok := en.Lookup(name); ok {
						return v, true
					}
				}
			}
		}
		return 0, false
	}
	for _, en := range in.unit.AllEnums {
		if v, ok := en.Lookup(name); ok {
			return v, true
		}
	}
	return 0, false
}

// --- lvalues --------------------------------------------------------------------

// evalLValue resolves an expression to its storage cell.
func (in *Interp) evalLValue(e *env, expr ast.Expr) (*Cell, error) {
	switch expr := expr.(type) {
	case *ast.ParenExpr:
		return in.evalLValue(e, expr.E)
	case *ast.NameExpr:
		return in.nameCell(e, expr, true)
	case *ast.MemberExpr:
		return in.memberCell(e, expr)
	case *ast.IndexExpr:
		v, err := in.evalIndex(e, expr)
		if err != nil {
			return nil, err
		}
		if r, ok := v.(Ref); ok {
			return r.Cell, nil
		}
		return &Cell{V: v}, nil
	case *ast.UnaryExpr:
		switch expr.Op {
		case ast.Deref:
			pv, err := in.evalRValue(e, expr.Operand)
			if err != nil {
				return nil, err
			}
			p, ok := pv.(Ptr)
			if !ok {
				return nil, in.rterr(expr.Pos, "dereference of non-pointer")
			}
			if p.Obj != nil {
				return &Cell{V: p.Obj}, nil
			}
			cell, err := p.Cell()
			if err != nil {
				return nil, in.rterr(expr.Pos, "%v", err)
			}
			return cell, nil
		case ast.PreInc, ast.PreDec:
			if _, err := in.evalExpr(e, expr); err != nil {
				return nil, err
			}
			return in.evalLValue(e, expr.Operand)
		}
	case *ast.CallExpr:
		v, err := in.evalCall(e, expr)
		if err != nil {
			return nil, err
		}
		if r, ok := v.(Ref); ok {
			return r.Cell, nil
		}
		return &Cell{V: v}, nil
	}
	return nil, in.rterr(expr.Span().Begin, "expression is not an lvalue")
}

// memberCell resolves base.field / base->field to the field's cell.
func (in *Interp) memberCell(e *env, expr *ast.MemberExpr) (*Cell, error) {
	obj, err := in.evalObjectBase(e, expr.Base, expr.Arrow)
	if err != nil {
		return nil, err
	}
	name := expr.Name.Terminal().Name
	if c := obj.Field(name); c != nil {
		return c, nil
	}
	if m := obj.Class.FindMember(name); m != nil && m.Storage == ast.Static {
		return in.staticCell(m), nil
	}
	return nil, in.rterr(expr.Pos, "class %s has no member %q", obj.Class.QualifiedName(), name)
}

// evalObjectBase evaluates the base of a member access to an object.
func (in *Interp) evalObjectBase(e *env, base ast.Expr, arrow bool) (*Object, error) {
	v, err := in.evalExpr(e, base)
	if err != nil {
		return nil, err
	}
	v2 := deref(v)
	if arrow {
		p, ok := v2.(Ptr)
		if !ok {
			return nil, in.rterr(base.Span().Begin, "-> on non-pointer")
		}
		pv, err := p.Pointee()
		if err != nil {
			return nil, in.rterr(base.Span().Begin, "%v", err)
		}
		v2 = deref(pv)
	}
	obj, ok := v2.(*Object)
	if !ok {
		return nil, in.rterr(base.Span().Begin, "member access on non-class value (%T)", v2)
	}
	return obj, nil
}

// --- operators -------------------------------------------------------------------

func (in *Interp) evalUnary(e *env, expr *ast.UnaryExpr) (Value, error) {
	switch expr.Op {
	case ast.AddrOf:
		cell, err := in.evalLValue(e, expr.Operand)
		if err != nil {
			return nil, err
		}
		if obj, ok := cell.V.(*Object); ok {
			return Ptr{Obj: obj}, nil
		}
		return Ptr{Direct: cell}, nil
	case ast.Deref:
		v, err := in.evalRValue(e, expr.Operand)
		if err != nil {
			return nil, err
		}
		switch v := v.(type) {
		case Ptr:
			pv, err := v.Pointee()
			if err != nil {
				return nil, in.rterr(expr.Pos, "%v", err)
			}
			if cell, cerr := v.Cell(); cerr == nil && v.Obj == nil {
				return Ref{Cell: cell}, nil
			}
			return pv, nil
		case *Object:
			// operator* overload
			return in.callMethodByName(e, v, "operator*", nil, expr.Pos)
		}
		return nil, in.rterr(expr.Pos, "dereference of non-pointer")
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		return in.evalIncDec(e, expr)
	}

	v, err := in.evalRValue(e, expr.Operand)
	if err != nil {
		return nil, err
	}
	if obj, ok := v.(*Object); ok {
		opName := map[ast.UnaryOp]string{
			ast.Neg: "operator-", ast.LogNot: "operator!",
		}[expr.Op]
		if opName != "" {
			return in.callMethodByName(e, obj, opName, nil, expr.Pos)
		}
	}
	switch expr.Op {
	case ast.Neg:
		switch v := v.(type) {
		case Float:
			return Float(-v), nil
		default:
			i, err := asInt(v)
			if err != nil {
				return nil, in.rterr(expr.Pos, "%v", err)
			}
			return Int(-i), nil
		}
	case ast.Pos_:
		return v, nil
	case ast.LogNot:
		b, err := truthy(v)
		if err != nil {
			return nil, in.rterr(expr.Pos, "%v", err)
		}
		return Bool(!b), nil
	case ast.BitNot:
		i, err := asInt(v)
		if err != nil {
			return nil, in.rterr(expr.Pos, "%v", err)
		}
		return Int(^i), nil
	}
	return nil, in.rterr(expr.Pos, "unsupported unary operator")
}

func (in *Interp) evalIncDec(e *env, expr *ast.UnaryExpr) (Value, error) {
	cell, err := in.evalLValue(e, expr.Operand)
	if err != nil {
		return nil, err
	}
	old := cell.V
	if obj, ok := old.(*Object); ok {
		opName := "operator++"
		if expr.Op == ast.PreDec || expr.Op == ast.PostDec {
			opName = "operator--"
		}
		return in.callMethodByName(e, obj, opName, nil, expr.Pos)
	}
	delta := int64(1)
	if expr.Op == ast.PreDec || expr.Op == ast.PostDec {
		delta = -1
	}
	var newV Value
	switch v := old.(type) {
	case Int:
		newV = Int(int64(v) + delta)
	case Char:
		newV = Char(int64(v) + delta)
	case Float:
		newV = Float(float64(v) + float64(delta))
	case Ptr:
		if v.Alloc == nil {
			return nil, in.rterr(expr.Pos, "arithmetic on non-array pointer")
		}
		newV = Ptr{Alloc: v.Alloc, Idx: v.Idx + int(delta)}
	default:
		return nil, in.rterr(expr.Pos, "cannot increment value of kind %T", old)
	}
	cell.V = newV
	if expr.Op == ast.PostInc || expr.Op == ast.PostDec {
		return old, nil
	}
	return Ref{Cell: cell}, nil
}

func (in *Interp) evalBinary(e *env, expr *ast.BinaryExpr) (Value, error) {
	if expr.Op.IsAssign() {
		return in.evalAssign(e, expr)
	}
	switch expr.Op {
	case ast.LAnd:
		l, err := in.evalRValue(e, expr.L)
		if err != nil {
			return nil, err
		}
		lb, err := truthy(l)
		if err != nil {
			return nil, in.rterr(expr.Pos, "%v", err)
		}
		if !lb {
			return Bool(false), nil
		}
		r, err := in.evalRValue(e, expr.R)
		if err != nil {
			return nil, err
		}
		rb, err := truthy(r)
		if err != nil {
			return nil, in.rterr(expr.Pos, "%v", err)
		}
		return Bool(rb), nil
	case ast.LOr:
		l, err := in.evalRValue(e, expr.L)
		if err != nil {
			return nil, err
		}
		lb, err := truthy(l)
		if err != nil {
			return nil, in.rterr(expr.Pos, "%v", err)
		}
		if lb {
			return Bool(true), nil
		}
		r, err := in.evalRValue(e, expr.R)
		if err != nil {
			return nil, err
		}
		rb, err := truthy(r)
		if err != nil {
			return nil, in.rterr(expr.Pos, "%v", err)
		}
		return Bool(rb), nil
	case ast.Comma:
		if _, err := in.evalRValue(e, expr.L); err != nil {
			return nil, err
		}
		return in.evalExpr(e, expr.R)
	}

	// Operator overloading: when the left operand is a class object,
	// dispatch before evaluating numerically.
	lv, err := in.evalArg(e, expr.L)
	if err != nil {
		return nil, err
	}
	if obj, ok := deref(lv).(*Object); ok {
		rv, err := in.evalArg(e, expr.R)
		if err != nil {
			return nil, err
		}
		opName := "operator" + expr.Op.String()
		if v, err2 := in.callMethodByName(e, obj, opName, []Value{rv}, expr.Pos); err2 == nil {
			return v, nil
		}
		// Free operator function.
		if r := in.findFreeRoutine(opName, []Value{lv, rv}); r != nil {
			return in.Call(r, nil, []Value{lv, rv})
		}
		return nil, in.rterr(expr.Pos, "no %s for class %s", opName, obj.Class.QualifiedName())
	}
	rv, err := in.evalArg(e, expr.R)
	if err != nil {
		return nil, err
	}
	if obj, ok := deref(rv).(*Object); ok {
		// Free operator with class RHS (e.g. scalar * vector).
		opName := "operator" + expr.Op.String()
		if r := in.findFreeRoutine(opName, []Value{lv, rv}); r != nil {
			return in.Call(r, nil, []Value{lv, rv})
		}
		_ = obj
	}
	return in.numericBinary(expr.Op, deref(lv), deref(rv), expr.Pos)
}

// numericBinary applies a builtin binary operator.
func (in *Interp) numericBinary(op ast.BinOp, l, r Value, loc source.Loc) (Value, error) {
	// Pointer arithmetic and comparisons.
	lp, lIsPtr := l.(Ptr)
	rp, rIsPtr := r.(Ptr)
	switch {
	case lIsPtr && rIsPtr:
		switch op {
		case ast.EqOp:
			return Bool(lp.SameAddress(rp)), nil
		case ast.NeOp:
			return Bool(!lp.SameAddress(rp)), nil
		case ast.Sub:
			if lp.Alloc != nil && lp.Alloc == rp.Alloc {
				return Int(lp.Idx - rp.Idx), nil
			}
			return nil, in.rterr(loc, "subtraction of unrelated pointers")
		case ast.LtOp:
			return Bool(lp.Alloc == rp.Alloc && lp.Idx < rp.Idx), nil
		case ast.GtOp:
			return Bool(lp.Alloc == rp.Alloc && lp.Idx > rp.Idx), nil
		case ast.LeOp:
			return Bool(lp.Alloc == rp.Alloc && lp.Idx <= rp.Idx), nil
		case ast.GeOp:
			return Bool(lp.Alloc == rp.Alloc && lp.Idx >= rp.Idx), nil
		}
	case lIsPtr:
		n, err := asInt(r)
		if err != nil {
			return nil, in.rterr(loc, "pointer arithmetic: %v", err)
		}
		switch op {
		case ast.Add:
			return Ptr{Alloc: lp.Alloc, Idx: lp.Idx + int(n), Obj: lp.Obj, Direct: lp.Direct}, nil
		case ast.Sub:
			return Ptr{Alloc: lp.Alloc, Idx: lp.Idx - int(n), Obj: lp.Obj, Direct: lp.Direct}, nil
		case ast.EqOp:
			return Bool(n == 0 && lp.IsNull()), nil
		case ast.NeOp:
			return Bool(!(n == 0 && lp.IsNull())), nil
		}
	case rIsPtr:
		n, err := asInt(l)
		if err != nil {
			return nil, in.rterr(loc, "pointer arithmetic: %v", err)
		}
		switch op {
		case ast.Add:
			return Ptr{Alloc: rp.Alloc, Idx: rp.Idx + int(n)}, nil
		case ast.EqOp:
			return Bool(n == 0 && rp.IsNull()), nil
		case ast.NeOp:
			return Bool(!(n == 0 && rp.IsNull())), nil
		}
	}

	// String comparisons.
	if ls, ok := l.(Str); ok {
		if rs, ok := r.(Str); ok {
			switch op {
			case ast.EqOp:
				return Bool(ls == rs), nil
			case ast.NeOp:
				return Bool(ls != rs), nil
			case ast.LtOp:
				return Bool(ls < rs), nil
			case ast.GtOp:
				return Bool(ls > rs), nil
			}
		}
	}

	_, lf := l.(Float)
	_, rf := r.(Float)
	if lf || rf {
		a, err := asFloat(l)
		if err != nil {
			return nil, in.rterr(loc, "%v", err)
		}
		b, err := asFloat(r)
		if err != nil {
			return nil, in.rterr(loc, "%v", err)
		}
		switch op {
		case ast.Add:
			return Float(a + b), nil
		case ast.Sub:
			return Float(a - b), nil
		case ast.Mul:
			return Float(a * b), nil
		case ast.Div:
			if b == 0 {
				return nil, in.rterr(loc, "floating division by zero")
			}
			return Float(a / b), nil
		case ast.EqOp:
			return Bool(a == b), nil
		case ast.NeOp:
			return Bool(a != b), nil
		case ast.LtOp:
			return Bool(a < b), nil
		case ast.GtOp:
			return Bool(a > b), nil
		case ast.LeOp:
			return Bool(a <= b), nil
		case ast.GeOp:
			return Bool(a >= b), nil
		default:
			return nil, in.rterr(loc, "invalid operator %s on floating values", op)
		}
	}

	a, err := asInt(l)
	if err != nil {
		return nil, in.rterr(loc, "%v", err)
	}
	b, err := asInt(r)
	if err != nil {
		return nil, in.rterr(loc, "%v", err)
	}
	switch op {
	case ast.Add:
		return Int(a + b), nil
	case ast.Sub:
		return Int(a - b), nil
	case ast.Mul:
		return Int(a * b), nil
	case ast.Div:
		if b == 0 {
			return nil, in.rterr(loc, "integer division by zero")
		}
		return Int(a / b), nil
	case ast.Rem:
		if b == 0 {
			return nil, in.rterr(loc, "integer remainder by zero")
		}
		return Int(a % b), nil
	case ast.BAnd:
		return Int(a & b), nil
	case ast.BOr:
		return Int(a | b), nil
	case ast.BXor:
		return Int(a ^ b), nil
	case ast.ShlOp:
		return Int(a << uint(b&63)), nil
	case ast.ShrOp:
		return Int(a >> uint(b&63)), nil
	case ast.EqOp:
		return Bool(a == b), nil
	case ast.NeOp:
		return Bool(a != b), nil
	case ast.LtOp:
		return Bool(a < b), nil
	case ast.GtOp:
		return Bool(a > b), nil
	case ast.LeOp:
		return Bool(a <= b), nil
	case ast.GeOp:
		return Bool(a >= b), nil
	default:
		return nil, in.rterr(loc, "unsupported binary operator %s", op)
	}
}

func (in *Interp) evalAssign(e *env, expr *ast.BinaryExpr) (Value, error) {
	cell, err := in.evalLValue(e, expr.L)
	if err != nil {
		return nil, err
	}
	if obj, ok := cell.V.(*Object); ok {
		rv, err := in.evalArg(e, expr.R)
		if err != nil {
			return nil, err
		}
		opName := "operator" + expr.Op.String()
		if v, err2 := in.callMethodByName(e, obj, opName, []Value{rv}, expr.Pos); err2 == nil {
			return v, nil
		}
		if expr.Op == ast.AssignOp {
			if src, ok := deref(rv).(*Object); ok {
				copyFields(obj, src)
				return Ref{Cell: cell}, nil
			}
			// Converting assignment through a one-argument constructor.
			tmp := NewObject(obj.Class)
			if err := in.construct(tmp, []Value{rv}, expr.Pos); err != nil {
				return nil, err
			}
			copyFields(obj, tmp)
			return Ref{Cell: cell}, nil
		}
		return nil, in.rterr(expr.Pos, "no %s for class %s", opName, obj.Class.QualifiedName())
	}
	rv, err := in.evalRValue(e, expr.R)
	if err != nil {
		return nil, err
	}
	if expr.Op == ast.AssignOp {
		cell.V = assignConvert(cell.V, copyValue(rv))
		return Ref{Cell: cell}, nil
	}
	// Compound assignment.
	base := map[ast.BinOp]ast.BinOp{
		ast.AddAssign: ast.Add, ast.SubAssign: ast.Sub, ast.MulAssign: ast.Mul,
		ast.DivAssign: ast.Div, ast.RemAssign: ast.Rem, ast.AndAssign: ast.BAnd,
		ast.OrAssign: ast.BOr, ast.XorAssign: ast.BXor,
		ast.ShlAssignOp: ast.ShlOp, ast.ShrAssignOp: ast.ShrOp,
	}[expr.Op]
	nv, err := in.numericBinary(base, deref(cell.V), rv, expr.Pos)
	if err != nil {
		return nil, err
	}
	cell.V = assignConvert(cell.V, nv)
	return Ref{Cell: cell}, nil
}

// assignConvert keeps the stored kind stable when the destination
// already holds a typed value (int cell receiving a float truncates).
func assignConvert(old, v Value) Value {
	switch old.(type) {
	case Int:
		if i, err := asInt(v); err == nil {
			return Int(i)
		}
	case Char:
		if i, err := asInt(v); err == nil {
			return Char(i)
		}
	case Float:
		if f, err := asFloat(v); err == nil {
			return Float(f)
		}
	case Bool:
		if b, err := truthy(v); err == nil {
			return Bool(b)
		}
	}
	return v
}

func (in *Interp) evalIndex(e *env, expr *ast.IndexExpr) (Value, error) {
	baseV, err := in.evalExpr(e, expr.Base)
	if err != nil {
		return nil, err
	}
	idxV, err := in.evalRValue(e, expr.Index)
	if err != nil {
		return nil, err
	}
	switch b := deref(baseV).(type) {
	case Ptr:
		i, err := asInt(idxV)
		if err != nil {
			return nil, in.rterr(expr.Pos.Begin, "subscript: %v", err)
		}
		p := Ptr{Alloc: b.Alloc, Idx: b.Idx + int(i), Direct: b.Direct, Obj: b.Obj}
		cell, err := p.Cell()
		if err != nil {
			return nil, in.rterr(expr.Pos.Begin, "%v", err)
		}
		return Ref{Cell: cell}, nil
	case Str:
		i, err := asInt(idxV)
		if err != nil || i < 0 || int(i) >= len(b) {
			return nil, in.rterr(expr.Pos.Begin, "string index out of range")
		}
		return Char(b[i]), nil
	case *Object:
		return in.callMethodByName(e, b, "operator[]", []Value{idxV}, expr.Pos.Begin)
	default:
		return nil, in.rterr(expr.Pos.Begin, "subscript on non-array value")
	}
}

func (in *Interp) evalCast(e *env, expr *ast.CastExpr) (Value, error) {
	t := in.unit.ExprType(e.rtn, expr.Type)
	// Functional casts on class types construct a temporary.
	if t != nil {
		if u := t.Unqualified(); u.Kind == il.TClass && u.Class != nil {
			v, err := in.evalArg(e, expr.Operand)
			if err != nil {
				return nil, err
			}
			obj := NewObject(u.Class)
			if err := in.construct(obj, []Value{v}, expr.Pos.Begin); err != nil {
				return nil, err
			}
			return obj, nil
		}
	}
	v, err := in.evalRValue(e, expr.Operand)
	if err != nil {
		return nil, err
	}
	if t == nil {
		return v, nil
	}
	return convertForStore(t, v), nil
}

func (in *Interp) evalConstruct(e *env, expr *ast.ConstructExpr) (Value, error) {
	t := in.unit.ExprType(e.rtn, expr.Type)
	var args []Value
	for _, a := range expr.Args {
		v, err := in.evalArg(e, a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if t != nil {
		if u := t.Unqualified(); u.Kind == il.TClass && u.Class != nil {
			obj := NewObject(u.Class)
			if err := in.construct(obj, args, expr.Pos.Begin); err != nil {
				return nil, err
			}
			return obj, nil
		}
	}
	if len(args) > 0 {
		return convertForStore(t, deref(args[0])), nil
	}
	return zeroValueFor(t), nil
}

func (in *Interp) evalNew(e *env, expr *ast.NewExpr) (Value, error) {
	t := in.unit.ExprType(e.rtn, expr.Type)
	if expr.ArraySize != nil {
		nV, err := in.evalRValue(e, expr.ArraySize)
		if err != nil {
			return nil, err
		}
		n, err := asInt(nV)
		if err != nil || n < 0 {
			return nil, in.rterr(expr.Pos.Begin, "bad array size")
		}
		if n > 1<<28 {
			return nil, in.rterr(expr.Pos.Begin, "array allocation too large (%d)", n)
		}
		alloc := &Alloc{Cells: make([]Cell, n)}
		var elemCls *il.Class
		if t != nil {
			if u := t.Unqualified(); u.Kind == il.TClass {
				elemCls = u.Class
			}
		}
		alloc.Elem = elemCls
		for i := range alloc.Cells {
			alloc.Cells[i].V = zeroValueFor(t)
			if elemCls != nil {
				if obj, ok := alloc.Cells[i].V.(*Object); ok {
					if err := in.construct(obj, nil, expr.Pos.Begin); err != nil {
						return nil, err
					}
				}
			}
		}
		return Ptr{Alloc: alloc}, nil
	}
	var args []Value
	for _, a := range expr.Args {
		v, err := in.evalArg(e, a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if t != nil {
		if u := t.Unqualified(); u.Kind == il.TClass && u.Class != nil {
			obj := NewObject(u.Class)
			if err := in.construct(obj, args, expr.Pos.Begin); err != nil {
				return nil, err
			}
			return Ptr{Obj: obj}, nil
		}
	}
	alloc := &Alloc{Cells: make([]Cell, 1)}
	alloc.Cells[0].V = zeroValueFor(t)
	if len(args) > 0 {
		alloc.Cells[0].V = convertForStore(t, deref(args[0]))
	}
	return Ptr{Alloc: alloc}, nil
}

func (in *Interp) evalDelete(e *env, expr *ast.DeleteExpr) (Value, error) {
	v, err := in.evalRValue(e, expr.Operand)
	if err != nil {
		return nil, err
	}
	p, ok := v.(Ptr)
	if !ok {
		// delete of the integer literal 0 (null) is a no-op.
		if i, err := asInt(v); err == nil && i == 0 {
			return Null{}, nil
		}
		if _, isNull := v.(Null); isNull {
			return Null{}, nil
		}
		return nil, in.rterr(expr.Pos.Begin, "delete of non-pointer")
	}
	if p.IsNull() {
		return Null{}, nil // deleting null is a no-op
	}
	if p.Obj != nil {
		if err := in.destroy(p.Obj); err != nil {
			return nil, err
		}
		return Null{}, nil
	}
	if p.Alloc != nil {
		if p.Alloc.Freed {
			return nil, in.rterr(expr.Pos.Begin, "double delete")
		}
		if expr.Array && p.Alloc.Elem != nil {
			for i := len(p.Alloc.Cells) - 1; i >= 0; i-- {
				if obj, ok := p.Alloc.Cells[i].V.(*Object); ok {
					if err := in.destroy(obj); err != nil {
						return nil, err
					}
				}
			}
		}
		p.Alloc.Freed = true
	}
	return Null{}, nil
}

func (in *Interp) evalSizeof(e *env, expr *ast.SizeofExpr) (Value, error) {
	if expr.Type != nil {
		if t := in.unit.ExprType(e.rtn, expr.Type); t != nil {
			return Int(staticSize(t)), nil
		}
		return Int(8), nil
	}
	v, err := in.evalRValue(e, expr.E)
	if err != nil {
		return nil, err
	}
	switch v.(type) {
	case Bool, Char:
		return Int(1), nil
	case Int:
		return Int(4), nil
	case Float:
		return Int(8), nil
	default:
		return Int(8), nil
	}
}

func staticSize(t *il.Type) int64 {
	switch u := t.Unqualified(); u.Kind {
	case il.TBool, il.TChar, il.TSChar, il.TUChar:
		return 1
	case il.TShort, il.TUShort:
		return 2
	case il.TInt, il.TUInt, il.TFloat, il.TEnum:
		return 4
	case il.TArray:
		if u.ArrayLen > 0 {
			return u.ArrayLen * staticSize(u.Elem)
		}
		return 8
	default:
		return 8
	}
}
