package interp_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/interp"
)

// compileUnit compiles a library without running it.
func compileUnit(t *testing.T, src string) *core.Result {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "lib.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("diagnostic: %v", d)
	}
	return res
}

// TestEmbeddingAPI drives the interpreter the way an embedding host
// (the SILOON bridge) does: InitGlobals, Construct, CallMethod,
// CallFree, Destroy.
func TestEmbeddingAPI(t *testing.T) {
	res := compileUnit(t, `
#include <iostream>
int initialized = 40;
class Gauge {
public:
    Gauge() : level(initialized) { }
    Gauge(int start) : level(start) { }
    void raise(int by) { level += by; }
    int read() const { return level; }
    ~Gauge() { cout << "gone"; }
private:
    int level;
};
double half(double x) { return x / 2; }
int main() { return 0; }
`)
	var out strings.Builder
	in := interp.New(res.Unit, interp.Options{Out: &out})
	if err := in.InitGlobals(); err != nil {
		t.Fatal(err)
	}

	cls := res.Unit.LookupClass("Gauge")
	// Default ctor reads the initialized global.
	g1, err := in.Construct(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := in.CallMethod(g1, "read", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.(interp.Int); n != 40 {
		t.Errorf("read = %v, want 40", v)
	}
	// Overloaded ctor.
	g2, err := in.Construct(cls, []interp.Value{interp.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.CallMethod(g2, "raise", []interp.Value{interp.Int(11)}); err != nil {
		t.Fatal(err)
	}
	v2, _ := in.CallMethod(g2, "read", nil)
	if n, _ := v2.(interp.Int); n != 111 {
		t.Errorf("read = %v, want 111", v2)
	}
	// Free function with float conversion.
	h, err := in.CallFree("half", []interp.Value{interp.Float(9)})
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := h.(interp.Float); f != 4.5 {
		t.Errorf("half = %v", h)
	}
	// Destroy runs the destructor.
	if err := in.Destroy(g1); err != nil {
		t.Fatal(err)
	}
	if out.String() != "gone" {
		t.Errorf("dtor output = %q", out.String())
	}
	// Unknown free call errors.
	if _, err := in.CallFree("nonexistent", nil); err == nil {
		t.Error("expected error for unknown function")
	}
	if in.Unit() != res.Unit || in.Output() == nil {
		t.Error("accessors broken")
	}
}

func TestSizeofAtRuntime(t *testing.T) {
	code, _ := run(t, `
int main() {
    int total = 0;
    total += sizeof(char);      // 1
    total += sizeof(int);       // 4
    total += sizeof(double);    // 8
    int x = 3;
    total += sizeof x;          // 4
    double d = 1.0;
    total += (int) sizeof d;    // 8
    return total;               // 25
}`, nil)
	if code != 25 {
		t.Errorf("code = %d, want 25", code)
	}
}

func TestEnumConstantsAtRuntime(t *testing.T) {
	code, _ := run(t, `
enum Color { RED, GREEN = 10, BLUE };
class Palette {
public:
    enum Depth { SHALLOW = 2, DEEP = 4 };
};
int main() {
    return RED + GREEN + BLUE + Palette::DEEP + Color::GREEN; // 0+10+11+4+10
}`, nil)
	if code != 35 {
		t.Errorf("code = %d, want 35", code)
	}
}

func TestCopyAssignWithoutOperator(t *testing.T) {
	code, _ := run(t, `
class P { public: int x, y; };
int main() {
    P a;
    a.x = 1; a.y = 2;
    P b;
    b = a;            // memberwise copy (no user operator=)
    b.x = 9;
    return a.x * 10 + b.x; // 19
}`, nil)
	if code != 19 {
		t.Errorf("code = %d, want 19", code)
	}
}

func TestUserAssignOperatorCalled(t *testing.T) {
	_, out := run(t, `
#include <iostream>
class Tracked {
public:
    Tracked() : v(0) { }
    Tracked & operator=(const Tracked & o) {
        cout << "=";
        v = o.v;
        return *this;
    }
    int v;
};
int main() {
    Tracked a, b;
    a.v = 5;
    b = a;
    cout << b.v;
    return 0;
}`, nil)
	if out != "=5" {
		t.Errorf("out = %q", out)
	}
}

func TestQualifiedFreeCall(t *testing.T) {
	code, _ := run(t, `
namespace outer {
    namespace inner {
        int deep() { return 21; }
    }
    int mid() { return inner::deep(); }
}
int main() { return outer::mid() + outer::inner::deep(); }`, nil)
	if code != 42 {
		t.Errorf("code = %d, want 42", code)
	}
}

func TestConstRefBindsTemporary(t *testing.T) {
	code, _ := run(t, `
int describe(const int & v) { return v * 2; }
int main() {
    return describe(10 + 11); // const ref binds an rvalue
}`, nil)
	if code != 42 {
		t.Errorf("code = %d, want 42", code)
	}
}

func TestRefReturnAssignable(t *testing.T) {
	code, _ := run(t, `
class Box {
public:
    Box() : v(0) { }
    int & slot() { return v; }
    int v;
};
int main() {
    Box b;
    b.slot() = 42;
    b.slot() += 0;
    return b.v;
}`, nil)
	if code != 42 {
		t.Errorf("code = %d, want 42", code)
	}
}

func TestWhileWithSideEffectCond(t *testing.T) {
	code, _ := run(t, `
int main() {
    int i = 0, n = 0;
    while (i++ < 5) n++;
    int j = 0, m = 0;
    while (++j < 5) m++;
    return n * 10 + m; // 5*10 + 4
}`, nil)
	if code != 54 {
		t.Errorf("code = %d, want 54", code)
	}
}
