// Package interp is a deterministic tree-walking interpreter over the
// PDT IL. It is the execution substrate for the paper's dynamic
// analysis (§4.1): the TAU-instrumented programs produced by
// internal/tau run on it, with object lifetimes (constructors and
// destructors at scope exit), virtual dispatch, overloaded operators,
// exceptions, heap arrays, and run-time type information for template
// instantiations (the CT(obj) query).
//
// Time is virtual by default: a monotonically increasing step counter
// advanced by every statement and expression node, which makes profile
// output exactly reproducible in CI. Wall-clock time is available as
// an option for real measurements.
package interp

import (
	"fmt"

	"pdt/internal/cpp/ast"
	"pdt/internal/il"
)

// Value is a runtime value. The concrete types are:
//
//	Int, Float, Bool, Char  — arithmetic values
//	Str                     — C string (char* literal and results)
//	Ptr                     — pointer into an allocation (or null)
//	*Object                 — class instance storage
//	Ref                     — reference (alias of a Cell)
//	Null                    — the null pointer constant / void result
type Value interface{ valueKind() string }

// Int is any integral value.
type Int int64

// Float is any floating-point value.
type Float float64

// Bool is a boolean value.
type Bool bool

// Char is a character value (kept distinct from Int so overload
// selection can route it to operator<<(char)).
type Char int64

// Str is a C string value.
type Str string

// Null is the null pointer / absent value.
type Null struct{}

func (Int) valueKind() string   { return "int" }
func (Float) valueKind() string { return "float" }
func (Bool) valueKind() string  { return "bool" }
func (Char) valueKind() string  { return "char" }
func (Str) valueKind() string   { return "str" }
func (Null) valueKind() string  { return "null" }

// Cell is one storage location.
type Cell struct {
	V Value
}

// Ref is a reference value: an alias of a cell.
type Ref struct {
	Cell *Cell
}

func (Ref) valueKind() string { return "ref" }

// Alloc is a heap or stack allocation of one or more cells; pointers
// index into it, giving well-defined pointer arithmetic and equality.
type Alloc struct {
	Cells []Cell
	Freed bool
	// Elem remembers the element class for object arrays (destructor
	// runs on delete[]).
	Elem *il.Class
}

// Ptr is a pointer value, in one of three forms:
//   - allocation form: Alloc+Idx (supports pointer arithmetic),
//   - object form: Obj (points at a class instance, e.g. `this`,
//     `new T`, or the address of an object variable),
//   - cell form: Direct (address of a scalar variable).
//
// All fields nil is the null pointer.
type Ptr struct {
	Alloc  *Alloc
	Idx    int
	Obj    *Object
	Direct *Cell
}

func (Ptr) valueKind() string { return "ptr" }

// IsNull reports whether the pointer is null.
func (p Ptr) IsNull() bool { return p.Alloc == nil && p.Obj == nil && p.Direct == nil }

// Cell returns the pointed-to cell (allocation and cell forms).
func (p Ptr) Cell() (*Cell, error) {
	if p.Direct != nil {
		return p.Direct, nil
	}
	if p.Alloc == nil {
		return nil, fmt.Errorf("null pointer dereference")
	}
	if p.Alloc.Freed {
		return nil, fmt.Errorf("use after delete")
	}
	if p.Idx < 0 || p.Idx >= len(p.Alloc.Cells) {
		return nil, fmt.Errorf("pointer out of bounds (index %d of %d)", p.Idx, len(p.Alloc.Cells))
	}
	return &p.Alloc.Cells[p.Idx], nil
}

// SameAddress reports whether two pointers designate the same storage.
func (p Ptr) SameAddress(q Ptr) bool {
	if p.Obj != nil || q.Obj != nil {
		return p.Obj == q.Obj
	}
	if p.Direct != nil || q.Direct != nil {
		return p.Direct == q.Direct
	}
	return p.Alloc == q.Alloc && (p.Alloc == nil || p.Idx == q.Idx)
}

// Pointee returns the value designated by the pointer (the object for
// object form, the cell contents otherwise).
func (p Ptr) Pointee() (Value, error) {
	if p.Obj != nil {
		return p.Obj, nil
	}
	c, err := p.Cell()
	if err != nil {
		return nil, err
	}
	return c.V, nil
}

// Object is a class instance: named field cells plus the dynamic class
// for virtual dispatch.
type Object struct {
	Class  *il.Class
	Fields map[string]*Cell
	// order preserves field declaration order for deterministic
	// copying and destruction.
	order []string
}

func (*Object) valueKind() string { return "object" }

// NewObject allocates zeroed storage for every data member of cls
// (including inherited members).
func NewObject(cls *il.Class) *Object {
	o := &Object{Class: cls, Fields: map[string]*Cell{}}
	o.addMembers(cls)
	return o
}

func (o *Object) addMembers(cls *il.Class) {
	if cls == nil {
		return
	}
	for _, b := range cls.Bases {
		o.addMembers(b.Class)
	}
	for _, m := range cls.Members {
		if m.Storage == ast.Static {
			continue // static members live in per-class storage
		}
		if _, ok := o.Fields[m.Name]; !ok {
			cell := &Cell{V: zeroValueFor(m.Type)}
			o.Fields[m.Name] = cell
			o.order = append(o.order, m.Name)
		}
	}
}

// Field returns the named member cell, or nil.
func (o *Object) Field(name string) *Cell { return o.Fields[name] }

// zeroValueFor produces the default-initialized value for a type.
func zeroValueFor(t *il.Type) Value {
	if t == nil {
		return Int(0)
	}
	u := t.Unqualified()
	switch u.Kind {
	case il.TBool:
		return Bool(false)
	case il.TChar, il.TSChar, il.TUChar:
		return Char(0)
	case il.TFloat, il.TDouble, il.TLongDouble:
		return Float(0)
	case il.TPtr:
		return Ptr{}
	case il.TRef:
		return Null{}
	case il.TClass:
		if u.Class != nil {
			return NewObject(u.Class)
		}
		return Null{}
	case il.TArray:
		n := u.ArrayLen
		if n < 0 {
			n = 0
		}
		a := &Alloc{Cells: make([]Cell, n)}
		for i := range a.Cells {
			a.Cells[i].V = zeroValueFor(u.Elem)
		}
		return Ptr{Alloc: a}
	default:
		return Int(0)
	}
}

// copyValue implements C++ value semantics: objects copy deeply,
// everything else copies by value.
func copyValue(v Value) Value {
	switch v := v.(type) {
	case *Object:
		return copyObject(v)
	default:
		return v
	}
}

func copyObject(o *Object) *Object {
	cp := &Object{Class: o.Class, Fields: map[string]*Cell{}, order: o.order}
	for name, cell := range o.Fields {
		cp.Fields[name] = &Cell{V: copyValue(cell.V)}
	}
	return cp
}

// truthy converts a value to a branch condition.
func truthy(v Value) (bool, error) {
	switch v := v.(type) {
	case Bool:
		return bool(v), nil
	case Int:
		return v != 0, nil
	case Char:
		return v != 0, nil
	case Float:
		return v != 0, nil
	case Ptr:
		return !v.IsNull(), nil
	case Str:
		return true, nil
	case Null:
		return false, nil
	default:
		return false, fmt.Errorf("value of kind %s is not a condition", v.valueKind())
	}
}

// asInt coerces arithmetic values to an integer.
func asInt(v Value) (int64, error) {
	switch v := v.(type) {
	case Int:
		return int64(v), nil
	case Char:
		return int64(v), nil
	case Bool:
		if v {
			return 1, nil
		}
		return 0, nil
	case Float:
		return int64(v), nil
	default:
		return 0, fmt.Errorf("value of kind %s is not an integer", v.valueKind())
	}
}

// asFloat coerces arithmetic values to a float.
func asFloat(v Value) (float64, error) {
	switch v := v.(type) {
	case Float:
		return float64(v), nil
	case Int:
		return float64(v), nil
	case Char:
		return float64(v), nil
	case Bool:
		if v {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("value of kind %s is not arithmetic", v.valueKind())
	}
}

// deref unwraps Ref values to their current contents.
func deref(v Value) Value {
	for {
		r, ok := v.(Ref)
		if !ok {
			return v
		}
		v = r.Cell.V
	}
}

// FormatValue renders a value the way the stream inserters do.
func FormatValue(v Value) string {
	switch v := deref(v).(type) {
	case Int:
		return fmt.Sprintf("%d", int64(v))
	case Float:
		return fmt.Sprintf("%g", float64(v))
	case Bool:
		if v {
			return "1"
		}
		return "0"
	case Char:
		return string(rune(v))
	case Str:
		return string(v)
	case Ptr:
		if v.IsNull() {
			return "0x0"
		}
		return fmt.Sprintf("<ptr+%d>", v.Idx)
	case *Object:
		if v.Class != nil {
			return "<" + v.Class.QualifiedName() + ">"
		}
		return "<object>"
	case Null:
		return "0"
	default:
		return "<?>"
	}
}
