package interp_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pdt/internal/core"
	"pdt/internal/interp"
)

// randIntExpr builds a random C++ integer expression along with its
// expected value computed independently in Go (C++ and Go share
// semantics for these operators on int64).
func randIntExpr(r *rand.Rand, depth int) (string, int64) {
	if depth <= 0 {
		v := int64(r.Intn(100) - 50)
		if v < 0 {
			return fmt.Sprintf("(%d)", v), v
		}
		return fmt.Sprintf("%d", v), v
	}
	ls, lv := randIntExpr(r, depth-1)
	rs, rv := randIntExpr(r, depth-1)
	switch r.Intn(9) {
	case 0:
		return "(" + ls + " + " + rs + ")", lv + rv
	case 1:
		return "(" + ls + " - " + rs + ")", lv - rv
	case 2:
		return "(" + ls + " * " + rs + ")", lv * rv
	case 3:
		if rv == 0 {
			return "(" + ls + " + " + rs + ")", lv + rv
		}
		return "(" + ls + " / " + rs + ")", lv / rv
	case 4:
		if rv == 0 {
			return "(" + ls + " - " + rs + ")", lv - rv
		}
		return "(" + ls + " % " + rs + ")", lv % rv
	case 5:
		return "(" + ls + " & " + rs + ")", lv & rv
	case 6:
		return "(" + ls + " | " + rs + ")", lv | rv
	case 7:
		return "(" + ls + " ^ " + rs + ")", lv ^ rv
	default:
		return fmt.Sprintf("(%s < %s ? %s : %s)", ls, rs, ls, rs),
			map[bool]int64{true: lv, false: rv}[lv < rv]
	}
}

// Property: the interpreter computes random integer expressions
// exactly as Go does.
func TestIntArithmeticProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		exprText, want := randIntExpr(r, 4)
		src := fmt.Sprintf(`
int main() {
    long result = %s;
    long want = %d;
    return result == want ? 0 : 1;
}`, exprText, want)
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		res := core.CompileSource(fs, "m.cpp", src, opts)
		if res.HasErrors() {
			t.Logf("compile failed on %s: %v", exprText, res.Diagnostics[0])
			return false
		}
		in := interp.New(res.Unit, interp.Options{})
		code, err := in.Run()
		if err != nil {
			t.Logf("run failed on %s: %v", exprText, err)
			return false
		}
		if code != 0 {
			t.Logf("mismatch: %s should be %d", exprText, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a vector subjected to a random push/pop/set sequence
// mirrors a Go slice driven by the same sequence.
func TestVectorModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var ops []string
		model := []int64{}
		for i := 0; i < 30; i++ {
			switch r.Intn(3) {
			case 0:
				v := int64(r.Intn(1000))
				ops = append(ops, fmt.Sprintf("v.push_back(%d);", v))
				model = append(model, v)
			case 1:
				if len(model) > 0 {
					ops = append(ops, "v.pop_back();")
					model = model[:len(model)-1]
				}
			default:
				if len(model) > 0 {
					idx := r.Intn(len(model))
					val := int64(r.Intn(1000))
					ops = append(ops, fmt.Sprintf("v[%d] = %d;", idx, val))
					model[idx] = val
				}
			}
		}
		var sum int64
		for _, v := range model {
			sum += v
		}
		body := ""
		for _, op := range ops {
			body += "    " + op + "\n"
		}
		src := fmt.Sprintf(`
#include <vector>
int main() {
    vector<long> v;
%s
    long sum = 0;
    for (int i = 0; i < v.size(); i++) sum += v[i];
    long want = %d;
    int wantLen = %d;
    if (v.size() != wantLen) return 2;
    return sum == want ? 0 : 1;
}`, body, sum, len(model))
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		res := core.CompileSource(fs, "m.cpp", src, opts)
		if res.HasErrors() {
			t.Logf("compile: %v", res.Diagnostics[0])
			return false
		}
		in := interp.New(res.Unit, interp.Options{})
		code, err := in.Run()
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if code != 0 {
			t.Logf("model mismatch (code %d) for ops:\n%s", code, body)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the Figure-1 Stack behaves as a LIFO for random push/pop
// sequences (bounded by capacity), matching a Go slice model.
func TestStackModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const cap = 16
		var ops []string
		var model []int64
		checks := 0
		for i := 0; i < 40; i++ {
			if r.Intn(2) == 0 && len(model) < cap {
				v := int64(r.Intn(100))
				ops = append(ops, fmt.Sprintf("s.push(%d);", v))
				model = append(model, v)
			} else if len(model) > 0 {
				want := model[len(model)-1]
				model = model[:len(model)-1]
				ops = append(ops, fmt.Sprintf("if (s.topAndPop() != %d) return %d;", want, 10+checks))
				checks++
			}
		}
		body := ""
		for _, op := range ops {
			body += "    " + op + "\n"
		}
		src := fmt.Sprintf(`
#include <vector>
class Overflow { };
class Underflow { };
template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10) : theArray(capacity), topOfStack(-1) { }
    bool isEmpty() const { return topOfStack == -1; }
    bool isFull() const { return topOfStack == theArray.size() - 1; }
    void push(const Object & x) {
        if (isFull()) throw Overflow();
        theArray[++topOfStack] = x;
    }
    Object topAndPop() {
        if (isEmpty()) throw Underflow();
        return theArray[topOfStack--];
    }
private:
    vector<Object> theArray;
    int topOfStack;
};
int main() {
    Stack<long> s(%d);
%s
    return 0;
}`, cap, body)
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		res := core.CompileSource(fs, "m.cpp", src, opts)
		if res.HasErrors() {
			t.Logf("compile: %v", res.Diagnostics[0])
			return false
		}
		in := interp.New(res.Unit, interp.Options{})
		code, err := in.Run()
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if code != 0 {
			t.Logf("LIFO violated (code %d):\n%s", code, body)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
