package interp_test

import (
	"strings"
	"testing"

	"pdt/internal/core"
	"pdt/internal/interp"
)

// run compiles and executes src, returning exit code and stdout.
func run(t *testing.T, src string, extra map[string]string) (int, string) {
	t.Helper()
	code, out, err := runErr(t, src, extra)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return code, out
}

func runErr(t *testing.T, src string, extra map[string]string) (int, string, error) {
	t.Helper()
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	for name, content := range extra {
		fs.AddVirtualFile(name, content)
	}
	res := core.CompileSource(fs, "main.cpp", src, opts)
	for _, d := range res.Diagnostics {
		t.Fatalf("compile diagnostic: %v", d)
	}
	var sb strings.Builder
	in := interp.New(res.Unit, interp.Options{Out: &sb})
	code, err := in.Run()
	return code, sb.String(), err
}

func TestArithmeticAndControlFlow(t *testing.T) {
	code, _ := run(t, `
int main() {
    int sum = 0;
    for (int i = 1; i <= 10; i++) sum += i;       // 55
    int n = 0;
    while (n * n < 50) n++;                        // 8
    do { n--; } while (n > 5);                     // 5
    if (sum == 55 && n == 5) return 42;
    return 1;
}`, nil)
	if code != 42 {
		t.Errorf("exit code = %d, want 42", code)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	code, _ := run(t, `
int classify(int x) {
    int r = 0;
    switch (x) {
    case 0:
    case 1: r = 10; break;
    case 2: r = 20; // fallthrough
    case 3: r += 1; break;
    default: r = 99;
    }
    return r;
}
int main() {
    // classify(1)=10, classify(2)=21, classify(3)=1, classify(7)=99
    return classify(1) + classify(2) + classify(3) + classify(7);
}`, nil)
	if code != 131 {
		t.Errorf("code = %d, want 131", code)
	}
}

func TestFunctionsOverloadsDefaults(t *testing.T) {
	code, _ := run(t, `
int f(int x) { return 1; }
int f(double x) { return 2; }
int g(int a, int b = 10) { return a + b; }
int main() { return f(1) * 100 + f(1.5) * 10 + g(5); }`, nil)
	if code != 125 { // 100 + 20 + 15 = 135? f(1)=1*100, f(1.5)=2*10, g(5)=15 → 135
		if code != 135 {
			t.Errorf("code = %d, want 135", code)
		}
	}
	if code != 135 {
		t.Errorf("code = %d, want 135", code)
	}
}

func TestReferencesAndPointers(t *testing.T) {
	code, _ := run(t, `
void bump(int & x) { x++; }
void set(int * p, int v) { *p = v; }
int main() {
    int a = 1;
    bump(a);            // 2
    set(&a, 40);        // 40
    int * q = &a;
    *q += 2;            // 42
    return a;
}`, nil)
	if code != 42 {
		t.Errorf("code = %d, want 42", code)
	}
}

func TestClassesCtorsDtors(t *testing.T) {
	_, out := run(t, `
#include <iostream>
class Tracer {
public:
    Tracer(int id) : id_(id) { cout << "+" << id_; }
    ~Tracer() { cout << "-" << id_; }
private:
    int id_;
};
int main() {
    Tracer a(1);
    {
        Tracer b(2);
    }
    Tracer c(3);
    return 0;
}`, nil)
	if out != "+1+2-2+3-3-1" {
		t.Errorf("lifetime trace = %q, want +1+2-2+3-3-1", out)
	}
}

func TestVirtualDispatch(t *testing.T) {
	code, _ := run(t, `
class Shape {
public:
    virtual int sides() const { return 0; }
    virtual ~Shape() { }
};
class Triangle : public Shape {
public:
    int sides() const { return 3; }
};
class Square : public Shape {
public:
    int sides() const { return 4; }
};
int count(Shape * s) { return s->sides(); }
int main() {
    Triangle t;
    Square q;
    Shape plain;
    return count(&t) * 100 + count(&q) * 10 + count(&plain);
}`, nil)
	if code != 340 {
		t.Errorf("code = %d, want 340", code)
	}
}

func TestOperatorOverloading(t *testing.T) {
	code, _ := run(t, `
class Vec2 {
public:
    Vec2(int x, int y) : x_(x), y_(y) { }
    Vec2 operator+(const Vec2 & o) const { return Vec2(x_ + o.x_, y_ + o.y_); }
    int operator[](int i) const { return i == 0 ? x_ : y_; }
    bool operator==(const Vec2 & o) const { return x_ == o.x_ && y_ == o.y_; }
private:
    int x_, y_;
};
int main() {
    Vec2 a(1, 2), b(3, 4);
    Vec2 c = a + b;
    if (c == Vec2(4, 6))
        return c[0] * 10 + c[1];
    return 0;
}`, nil)
	if code != 46 {
		t.Errorf("code = %d, want 46", code)
	}
}

func TestHeapAndArrays(t *testing.T) {
	code, _ := run(t, `
int main() {
    int *a = new int[10];
    for (int i = 0; i < 10; i++) a[i] = i * i;
    int sum = 0;
    for (int i = 0; i < 10; i++) sum += a[i];
    delete[] a;
    int *p = new int(7);
    sum += *p;
    delete p;
    return sum; // 285 + 7
}`, nil)
	if code != 292 {
		t.Errorf("code = %d, want 292", code)
	}
}

func TestExceptions(t *testing.T) {
	code, out := run(t, `
#include <iostream>
class Err { public: Err(int c) : code(c) { } int code; };
int risky(int x) {
    if (x > 5) throw Err(x);
    return x;
}
int main() {
    int got = 0;
    try {
        got += risky(3);
        got += risky(9);
        got += 1000; // skipped
    } catch (Err & e) {
        cout << "caught " << e.code;
        got += e.code * 10;
    }
    return got; // 3 + 90
}`, nil)
	if code != 93 {
		t.Errorf("code = %d, want 93", code)
	}
	if out != "caught 9" {
		t.Errorf("out = %q", out)
	}
}

func TestExceptionRunsDtorsDuringUnwind(t *testing.T) {
	_, out := run(t, `
#include <iostream>
class Guard {
public:
    Guard(int id) : id_(id) { }
    ~Guard() { cout << "~" << id_; }
private:
    int id_;
};
void deep() {
    Guard g(2);
    throw 42;
}
int main() {
    try {
        Guard g(1);
        deep();
    } catch (int e) {
        cout << "!" << e;
    }
    return 0;
}`, nil)
	if out != "~2~1!42" {
		t.Errorf("unwind order = %q, want ~2~1!42", out)
	}
}

func TestUncaughtExceptionPropagates(t *testing.T) {
	_, _, err := runErr(t, "int main() { throw 3; }", nil)
	if err == nil {
		t.Fatal("expected error for uncaught exception")
	}
}

func TestCatchEllipsisAndRethrowToOuter(t *testing.T) {
	code, _ := run(t, `
int main() {
    int r = 0;
    try {
        try {
            throw 1.5;
        } catch (int i) {
            r = 1; // must not match a double
        }
    } catch (...) {
        r = 7;
    }
    return r;
}`, nil)
	if code != 7 {
		t.Errorf("code = %d, want 7", code)
	}
}

func TestTemplatesRun(t *testing.T) {
	code, _ := run(t, `
template <class T> T biggest(T a, T b) { return a > b ? a : b; }
template <class T>
class Acc {
public:
    Acc() : total(0) { }
    void add(T v) { total += v; }
    T get() const { return total; }
private:
    T total;
};
int main() {
    Acc<int> a;
    for (int i = 1; i <= 4; i++) a.add(i);   // 10
    Acc<double> d;
    d.add(1.5); d.add(2.5);                  // 4.0
    return biggest(a.get(), (int) d.get()) * 10 + (int) d.get();
}`, nil)
	if code != 104 {
		t.Errorf("code = %d, want 104", code)
	}
}

func TestVectorHeaderRuns(t *testing.T) {
	code, _ := run(t, `
#include <vector>
int main() {
    vector<int> v;
    for (int i = 0; i < 100; i++) v.push_back(i);
    int sum = 0;
    for (int i = 0; i < v.size(); i++) sum += v[i];
    return sum == 4950 ? 0 : 1;
}`, nil)
	if code != 0 {
		t.Errorf("vector run failed, code = %d", code)
	}
}

func TestStackFigure1Runs(t *testing.T) {
	// The paper's Figure 1 driver, verbatim semantics: pushes 0..9 and
	// pops them back in LIFO order, printing each.
	code, out := run(t, `
#include <vector>
#include <iostream>
class Overflow { };
class Underflow { };

template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10)
        : theArray(capacity), topOfStack(-1) { }
    bool isEmpty() const { return topOfStack == -1; }
    bool isFull() const { return topOfStack == theArray.size() - 1; }
    void push(const Object & x) {
        if (isFull())
            throw Overflow();
        theArray[++topOfStack] = x;
    }
    Object topAndPop() {
        if (isEmpty())
            throw Underflow();
        return theArray[topOfStack--];
    }
private:
    vector<Object> theArray;
    int topOfStack;
};

int main() {
    Stack<int> s;
    for (int i = 0; i < 10; i++)
        s.push(i);
    while (!s.isEmpty())
        cout << s.topAndPop() << endl;
    return 0;
}`, nil)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	want := "9\n8\n7\n6\n5\n4\n3\n2\n1\n0\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestStackOverflowThrows(t *testing.T) {
	code, out := run(t, `
#include <vector>
#include <iostream>
class Overflow { };
template <class Object>
class Stack {
public:
    explicit Stack(int capacity = 10) : theArray(capacity), topOfStack(-1) { }
    bool isFull() const { return topOfStack == theArray.size() - 1; }
    void push(const Object & x) {
        if (isFull())
            throw Overflow();
        theArray[++topOfStack] = x;
    }
private:
    vector<Object> theArray;
    int topOfStack;
};
int main() {
    Stack<int> s(3);
    try {
        for (int i = 0; i < 100; i++) s.push(i);
    } catch (Overflow & o) {
        cout << "overflow";
        return 3;
    }
    return 0;
}`, nil)
	if code != 3 || out != "overflow" {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestStaticMembers(t *testing.T) {
	code, _ := run(t, `
class Counter {
public:
    Counter() { count++; }
    static int count;
};
int Counter::count = 0;
int main() {
    Counter a, b, c;
    return Counter::count;
}`, nil)
	if code != 3 {
		t.Errorf("code = %d, want 3", code)
	}
}

func TestStreamOutputFormats(t *testing.T) {
	_, out := run(t, `
#include <iostream>
int main() {
    cout << 42 << " " << 2.5 << " " << 'x' << " " << true << " " << "str" << endl;
    return 0;
}`, nil)
	if out != "42 2.5 x 1 str\n" {
		t.Errorf("out = %q", out)
	}
}

func TestPrintfIntrinsic(t *testing.T) {
	_, out := run(t, `
#include <cstdio>
int main() {
    printf("%d %s %c %.2f %x %%\n", 7, "ok", 65, 3.14159, 255);
    return 0;
}`, nil)
	if out != "7 ok A 3.14 ff %\n" {
		t.Errorf("out = %q", out)
	}
}

func TestMathIntrinsics(t *testing.T) {
	code, _ := run(t, `
#include <cmath>
int main() {
    double x = sqrt(16.0) + fabs(-3.0) + pow(2.0, 3.0) + floor(1.9);
    return (int) x; // 4 + 3 + 8 + 1
}`, nil)
	if code != 16 {
		t.Errorf("code = %d, want 16", code)
	}
}

func TestRecursionAndGlobals(t *testing.T) {
	code, _ := run(t, `
int calls = 0;
int fib(int n) {
    calls++;
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10) + (calls > 0 ? 0 : 1000); }`, nil)
	if code != 55 {
		t.Errorf("code = %d, want 55", code)
	}
}

func TestNamespaceCalls(t *testing.T) {
	code, _ := run(t, `
namespace math {
    int sq(int x) { return x * x; }
    namespace inner { int one() { return 1; } }
}
int main() { return math::sq(6) + math::inner::one(); }`, nil)
	if code != 37 {
		t.Errorf("code = %d, want 37", code)
	}
}

func TestCopySemantics(t *testing.T) {
	code, _ := run(t, `
class Box {
public:
    Box(int v) : val(v) { }
    int val;
};
void mutate(Box b) { b.val = 999; }
int main() {
    Box a(5);
    Box b = a;
    b.val = 7;
    mutate(a);
    return a.val * 10 + b.val; // copy semantics: 57
}`, nil)
	if code != 57 {
		t.Errorf("code = %d, want 57", code)
	}
}

func TestVirtualClockDeterministic(t *testing.T) {
	src := `
int work() { int s = 0; for (int i = 0; i < 100; i++) s += i; return s; }
int main() { return work() > 0 ? 0 : 1; }`
	clock := func() uint64 {
		opts := core.Options{}
		fs := core.NewFileSet(opts)
		res := core.CompileSource(fs, "main.cpp", src, opts)
		in := interp.New(res.Unit, interp.Options{})
		if _, err := in.Run(); err != nil {
			t.Fatal(err)
		}
		return in.Clock()
	}
	c1, c2 := clock(), clock()
	if c1 != c2 {
		t.Errorf("virtual clock not deterministic: %d vs %d", c1, c2)
	}
	if c1 == 0 {
		t.Error("clock did not advance")
	}
}

func TestStepBudget(t *testing.T) {
	opts := core.Options{}
	fs := core.NewFileSet(opts)
	res := core.CompileSource(fs, "main.cpp", "int main() { while (true) { } return 0; }", opts)
	in := interp.New(res.Unit, interp.Options{MaxSteps: 10000})
	_, err := in.Run()
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("expected step budget error, got %v", err)
	}
}

func TestDeleteNullIsNoop(t *testing.T) {
	code, _ := run(t, `
int main() {
    int *p = 0;
    delete p;
    return 0;
}`, nil)
	if code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestEnumValues(t *testing.T) {
	code, _ := run(t, `
enum Mode { OFF, SLOW = 5, FAST };
int main() { return OFF + SLOW + FAST; }`, nil)
	if code != 11 {
		t.Errorf("code = %d, want 11", code)
	}
}

func TestRTTIIntrinsic(t *testing.T) {
	_, out := run(t, `
#include <iostream>
#include <tau.h>
template <class T> class Holder {
public:
    const char * name() { return CT(*this); }
};
int main() {
    Holder<double> h;
    cout << h.name();
    return 0;
}`, nil)
	if out != "Holder<double>" {
		t.Errorf("CT(*this) = %q, want Holder<double>", out)
	}
}

func TestRuntimeErrorHasTrace(t *testing.T) {
	_, _, err := runErr(t, `
int crash() { int *p = 0; return *p; }
int main() { return crash(); }`, nil)
	if err == nil {
		t.Fatal("expected null-deref error")
	}
	re, ok := err.(*interp.RuntimeError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	found := false
	for _, fr := range re.Trace {
		if fr == "crash" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace = %v", re.Trace)
	}
}
