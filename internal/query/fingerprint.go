package query

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pdt/internal/ductape"
)

// Section names one per-unit slice of the database content — the
// granularity at which analysis passes declare their inputs and at
// which the incremental lint driver fingerprints the database. A
// pass whose declared sections are fingerprint-identical between two
// databases is guaranteed (by determinism of the passes) to produce
// identical findings on both.
type Section string

// Sections, in canonical order.
const (
	SecFiles      Section = "files"
	SecRoutines   Section = "routines"
	SecClasses    Section = "classes"
	SecTypes      Section = "types"
	SecTemplates  Section = "templates"
	SecNamespaces Section = "namespaces"
	SecMacros     Section = "macros"
	SecRecovered  Section = "recovered"
)

// Sections lists every section in canonical order.
func Sections() []Section {
	return []Section{SecFiles, SecRoutines, SecClasses, SecTypes,
		SecTemplates, SecNamespaces, SecMacros, SecRecovered}
}

// PseudoUnit is the unit that holds location-less items (types, and
// any entity the frontend recorded without a position).
const PseudoUnit = "<none>"

// Fingerprints carries the content fingerprint of every (unit,
// section) slice of one database. Fingerprints are content-addressed
// and identity-free: items are serialized with every cross-reference
// resolved to a canonical name instead of a numeric ID, so two
// databases that differ only in item numbering (as merge outputs of
// reordered inputs do) fingerprint identically.
type Fingerprints struct {
	byUnit map[string]map[Section]string
	units  []string
}

// recEntry is one canonical record, tagged with the unit and section
// it fingerprints into.
type recEntry struct {
	unit   string
	sec    Section
	record string
}

// parallelDo runs fn(i) for every i in [0, n) across a small worker
// pool. Record construction and group hashing are per-item pure, so
// items are handed out in chunks through one atomic cursor.
func parallelDo(n int, fn func(i int)) {
	const chunk = 32
	workers := runtime.GOMAXPROCS(0)
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&cursor, chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Fingerprint computes the per-unit, per-section fingerprints of db.
// Building the canonical records is the dominant cost on large merged
// databases, so records (and the per-group digests) are computed in
// parallel; grouping stays sequential and the result is independent
// of scheduling.
func Fingerprint(db *ductape.PDB) *Fingerprints {
	files := db.Files()
	routines := db.Routines()
	classes := db.Classes()
	types := db.Types()
	templates := db.Templates()
	namespaces := db.Namespaces()
	macros := db.Macros()
	recovered := db.Raw().Recovered

	total := len(files) + len(routines) + len(classes) + len(types) +
		len(templates) + len(namespaces) + len(macros) + len(recovered)
	entries := make([]recEntry, total)
	build := func(g int) {
		i := g
		switch {
		case i < len(files):
			f := files[i]
			entries[g] = recEntry{f.Name(), SecFiles, fileRecord(f)}
			return
		}
		i -= len(files)
		if i < len(routines) {
			r := routines[i]
			entries[g] = recEntry{unitOfLoc(r.Location()), SecRoutines, routineRecord(r)}
			return
		}
		i -= len(routines)
		if i < len(classes) {
			c := classes[i]
			entries[g] = recEntry{unitOfLoc(c.Location()), SecClasses, classRecord(c)}
			return
		}
		i -= len(classes)
		if i < len(types) {
			entries[g] = recEntry{"", SecTypes, typeRecord(types[i])}
			return
		}
		i -= len(types)
		if i < len(templates) {
			t := templates[i]
			entries[g] = recEntry{unitOfLoc(t.Location()), SecTemplates, templateRecord(t)}
			return
		}
		i -= len(templates)
		if i < len(namespaces) {
			n := namespaces[i]
			entries[g] = recEntry{unitOfLoc(n.Location()), SecNamespaces, namespaceRecord(n)}
			return
		}
		i -= len(namespaces)
		if i < len(macros) {
			m := macros[i]
			entries[g] = recEntry{unitOfLoc(m.Location()), SecMacros, macroRecord(m)}
			return
		}
		i -= len(macros)
		d := recovered[i]
		entries[g] = recEntry{d.File, SecRecovered, fmt.Sprintf("recovered %s %d-%d %s %s %d",
			d.File, d.StartLine, d.EndLine, d.Tag, d.Cause, len(d.Skipped))}
	}
	parallelDo(total, build)

	records := map[string]map[Section][]string{}
	for _, e := range entries {
		unit := e.unit
		if unit == "" {
			unit = PseudoUnit
		}
		m := records[unit]
		if m == nil {
			m = map[Section][]string{}
			records[unit] = m
		}
		m[e.sec] = append(m[e.sec], e.record)
	}

	type group struct {
		unit string
		sec  Section
		recs []string
		hash string
	}
	var groups []group
	for unit, secs := range records {
		for sec, recs := range secs {
			groups = append(groups, group{unit: unit, sec: sec, recs: recs})
		}
	}
	parallelDo(len(groups), func(i int) {
		g := &groups[i]
		sort.Strings(g.recs)
		h := sha256.New()
		var lenBuf [20]byte
		for _, r := range g.recs {
			h.Write(strconv.AppendInt(lenBuf[:0], int64(len(r)), 10))
			h.Write([]byte{':'})
			h.Write([]byte(r))
		}
		g.hash = hex.EncodeToString(h.Sum(nil))
	})

	fp := &Fingerprints{byUnit: map[string]map[Section]string{}}
	for _, g := range groups {
		m := fp.byUnit[g.unit]
		if m == nil {
			m = map[Section]string{}
			fp.byUnit[g.unit] = m
			fp.units = append(fp.units, g.unit)
		}
		m[g.sec] = g.hash
	}
	sort.Strings(fp.units)
	return fp
}

// Units returns every unit name (including PseudoUnit if present),
// sorted.
func (f *Fingerprints) Units() []string { return f.units }

// Unit returns the section fingerprints of one unit (nil if the unit
// holds nothing).
func (f *Fingerprints) Unit(unit string) map[Section]string { return f.byUnit[unit] }

// SectionDigest folds one section's per-unit fingerprints into a
// single digest over (unit, fingerprint) pairs in unit order — the
// digest a pass key embeds per declared section. Units without
// content in the section contribute nothing, so adding an unrelated
// empty unit does not invalidate.
func (f *Fingerprints) SectionDigest(sec Section) string {
	h := sha256.New()
	for _, unit := range f.units {
		if d, ok := f.byUnit[unit][sec]; ok {
			fmt.Fprintf(h, "%d:%s%d:%s", len(unit), unit, len(d), d)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ChangedUnits returns the units whose fingerprints differ between f
// and old (in any section), including units present on only one side.
// Sorted.
func (f *Fingerprints) ChangedUnits(old *Fingerprints) []string {
	seen := map[string]bool{}
	var out []string
	mark := func(unit string) {
		if !seen[unit] {
			seen[unit] = true
			out = append(out, unit)
		}
	}
	for unit, secs := range f.byUnit {
		oldSecs := old.byUnit[unit]
		if len(oldSecs) != len(secs) {
			mark(unit)
			continue
		}
		for sec, d := range secs {
			if oldSecs[sec] != d {
				mark(unit)
				break
			}
		}
	}
	for unit := range old.byUnit {
		if _, ok := f.byUnit[unit]; !ok {
			mark(unit)
		}
	}
	sort.Strings(out)
	return out
}

// --- canonical, identity-free item records ----------------------------------

func unitOfLoc(l ductape.Location) string {
	if l.File == nil {
		return ""
	}
	return l.File.Name()
}

func locRef(l ductape.Location) string {
	if !l.Valid() {
		if l.File != nil {
			return l.File.Name()
		}
		return "-"
	}
	var b []byte
	b = append(b, l.File.Name()...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(l.Line), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(l.Col), 10)
	return string(b)
}

// appendLoc writes locRef(l) into sb without the intermediate string.
func appendLoc(sb *strings.Builder, l ductape.Location) {
	if !l.Valid() {
		if l.File != nil {
			sb.WriteString(l.File.Name())
		} else {
			sb.WriteByte('-')
		}
		return
	}
	sb.WriteString(l.File.Name())
	sb.WriteByte(':')
	sb.WriteString(strconv.Itoa(l.Line))
	sb.WriteByte(':')
	sb.WriteString(strconv.Itoa(l.Col))
}

// appendBool writes " name=true/false" into sb.
func appendBool(sb *strings.Builder, name string, v bool) {
	sb.WriteByte(' ')
	sb.WriteString(name)
	sb.WriteByte('=')
	sb.WriteString(strconv.FormatBool(v))
}

// appendField writes " name=value" into sb.
func appendField(sb *strings.Builder, name, value string) {
	sb.WriteByte(' ')
	sb.WriteString(name)
	sb.WriteByte('=')
	sb.WriteString(value)
}

// appendList writes " name=[a;b;...]" into sb, sorting parts first.
func appendList(sb *strings.Builder, name string, parts []string) {
	sort.Strings(parts)
	sb.WriteByte(' ')
	sb.WriteString(name)
	sb.WriteString("=[")
	for i, p := range parts {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(p)
	}
	sb.WriteByte(']')
}

func fileRef(f *ductape.File) string {
	if f == nil {
		return "-"
	}
	return f.Name()
}

func classRef(c *ductape.Class) string {
	if c == nil {
		return "-"
	}
	return c.FullName() + "@" + locRef(c.Location())
}

func routineRef(r *ductape.Routine) string {
	if r == nil {
		return "-"
	}
	return r.FullName() + "@" + locRef(r.Location())
}

func templateRef(t *ductape.Template) string {
	if t == nil {
		return "-"
	}
	return t.Name() + "@" + locRef(t.Location())
}

func typeRef(t *ductape.Type) string {
	if t == nil {
		return "-"
	}
	return t.Name()
}

func namespaceRef(n *ductape.Namespace) string {
	if n == nil {
		return "-"
	}
	return namespaceFullName(n)
}

func namespaceFullName(n *ductape.Namespace) string {
	if p := n.ParentNamespace(); p != nil {
		return namespaceFullName(p) + "::" + n.Name()
	}
	return n.Name()
}

func posRecord(hb, he, bb, be ductape.Location) string {
	var sb strings.Builder
	appendPos(&sb, hb, he, bb, be)
	return sb.String()
}

func appendPos(sb *strings.Builder, hb, he, bb, be ductape.Location) {
	appendLoc(sb, hb)
	sb.WriteByte('|')
	appendLoc(sb, he)
	sb.WriteByte('|')
	appendLoc(sb, bb)
	sb.WriteByte('|')
	appendLoc(sb, be)
}

func fileRecord(f *ductape.File) string {
	incs := make([]string, 0, len(f.Includes()))
	for _, inc := range f.Includes() {
		incs = append(incs, inc.Name())
	}
	sort.Strings(incs)
	return fmt.Sprintf("so %s sys=%v inc=[%s]", f.Name(), f.System(), strings.Join(incs, ","))
}

func routineRecord(r *ductape.Routine) string {
	var sb strings.Builder
	sb.Grow(256)
	sb.WriteString("ro ")
	sb.WriteString(r.FullName())
	sb.WriteString(" loc=")
	appendLoc(&sb, r.Location())
	appendField(&sb, "acs", r.Access())
	appendField(&sb, "kind", r.Kind())
	appendField(&sb, "link", r.Linkage())
	appendField(&sb, "store", r.Storage())
	appendField(&sb, "virt", r.Virtuality())
	appendBool(&sb, "static", r.IsStatic())
	appendBool(&sb, "inline", r.IsInline())
	appendBool(&sb, "const", r.IsConst())
	appendBool(&sb, "body", r.HasBody())
	if sig := r.Signature(); sig != nil {
		appendField(&sb, "sig", sig.Name())
		appendField(&sb, "args", strconv.Itoa(len(sig.ArgumentTypes())))
	}
	if te := r.Template(); te != nil {
		appendField(&sb, "templ", templateRef(te))
	}
	calls := make([]string, 0, len(r.Callees()))
	for _, c := range r.Callees() {
		var cb strings.Builder
		cb.Grow(64)
		cb.WriteString(routineRef(c.Call()))
		appendBool(&cb, "virt", c.IsVirtual())
		cb.WriteString(" at=")
		appendLoc(&cb, c.Location())
		calls = append(calls, cb.String())
	}
	appendList(&sb, "calls", calls)
	sb.WriteString(" pos=")
	appendPos(&sb, r.HeaderBegin(), r.HeaderEnd(), r.BodyBegin(), r.BodyEnd())
	return sb.String()
}

func classRecord(c *ductape.Class) string {
	var sb strings.Builder
	sb.Grow(256)
	sb.WriteString("cl ")
	sb.WriteString(c.FullName())
	sb.WriteString(" loc=")
	appendLoc(&sb, c.Location())
	appendField(&sb, "kind", c.Kind())
	appendField(&sb, "acs", c.Access())
	appendBool(&sb, "inst", c.IsInstantiation())
	appendBool(&sb, "spec", c.IsSpecialization())
	if te := c.Template(); te != nil {
		appendField(&sb, "templ", templateRef(te))
	}
	bases := make([]string, 0, len(c.BaseClasses()))
	for _, b := range c.BaseClasses() {
		var bb strings.Builder
		bb.WriteString(classRef(b.Class))
		appendField(&bb, "acs", b.Access)
		appendBool(&bb, "virt", b.Virtual)
		bases = append(bases, bb.String())
	}
	appendList(&sb, "bases", bases)
	appendList(&sb, "friends", append([]string(nil), c.Friends()...))
	funcs := make([]string, 0, len(c.Functions()))
	for _, fn := range c.Functions() {
		funcs = append(funcs, routineRef(fn))
	}
	appendList(&sb, "funcs", funcs)
	members := make([]string, 0, len(c.DataMembers()))
	for _, m := range c.DataMembers() {
		var mb strings.Builder
		mb.WriteString(m.Name)
		appendField(&mb, "type", typeRef(m.Type))
		appendField(&mb, "acs", m.Access)
		appendField(&mb, "kind", m.Kind)
		appendBool(&mb, "static", m.Static)
		members = append(members, mb.String())
	}
	appendList(&sb, "members", members)
	sb.WriteString(" pos=")
	appendPos(&sb, c.HeaderBegin(), c.HeaderEnd(), c.BodyBegin(), c.BodyEnd())
	return sb.String()
}

func typeRecord(t *ductape.Type) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ty %s kind=%s ikind=%s", t.Name(), t.Kind(), t.IntegerKind())
	if e := t.Elem(); e != nil {
		fmt.Fprintf(&sb, " elem=%s", typeRef(e))
	}
	if b := t.BaseType(); b != nil {
		fmt.Fprintf(&sb, " tref=%s", typeRef(b))
	}
	if q := t.Qualifiers(); len(q) > 0 {
		fmt.Fprintf(&sb, " qual=%s", strings.Join(q, " "))
	}
	if c := t.Class(); c != nil {
		fmt.Fprintf(&sb, " class=%s", classRef(c))
	}
	if rt := t.ReturnType(); rt != nil {
		fmt.Fprintf(&sb, " ret=%s", typeRef(rt))
	}
	args := t.ArgumentTypes()
	if len(args) > 0 || t.HasEllipsis() {
		parts := make([]string, 0, len(args))
		for _, a := range args {
			parts = append(parts, typeRef(a))
		}
		fmt.Fprintf(&sb, " args=[%s] ellipsis=%v", strings.Join(parts, ","), t.HasEllipsis())
	}
	if t.Kind() == "array" {
		fmt.Fprintf(&sb, " n=%d", t.ArrayLength())
	}
	return sb.String()
}

func templateRecord(t *ductape.Template) string {
	parent := "-"
	if c := t.ParentClass(); c != nil {
		parent = "cl:" + classRef(c)
	} else if n := t.ParentNamespace(); n != nil {
		parent = "na:" + namespaceRef(n)
	}
	return fmt.Sprintf("te %s loc=%s kind=%s acs=%s parent=%s text=%s pos=%s",
		t.Name(), locRef(t.Location()), t.Kind(), t.Access(), parent, t.Text(),
		posRecord(t.HeaderBegin(), t.HeaderEnd(), t.BodyBegin(), t.BodyEnd()))
}

func namespaceRecord(n *ductape.Namespace) string {
	members := append([]string(nil), n.Members()...)
	sort.Strings(members)
	return fmt.Sprintf("na %s loc=%s alias=%s members=[%s]",
		namespaceRef(n), locRef(n.Location()), n.AliasOf(), strings.Join(members, ";"))
}

func macroRecord(m *ductape.Macro) string {
	return fmt.Sprintf("ma %s loc=%s kind=%s text=%s",
		m.Name(), locRef(m.Location()), m.Kind(), m.Text())
}
