package query

import "sort"

// Deps returns every node the start nodes transitively depend on —
// the forward closure over outgoing edges, excluding the start nodes
// themselves. maxDepth bounds the walk (0 or negative = unbounded;
// 1 = direct dependencies only). Results are sorted by node key.
func (g *Graph) Deps(start []*Node, maxDepth int) []*Node {
	return g.closure(start, maxDepth, func(n *Node) []edge { return n.out })
}

// RevDeps returns every node that transitively depends on the start
// nodes — the reverse closure over incoming edges, excluding the start
// nodes themselves. maxDepth bounds the walk as in Deps.
func (g *Graph) RevDeps(start []*Node, maxDepth int) []*Node {
	return g.closure(start, maxDepth, func(n *Node) []edge { return n.in })
}

// WhatInputs returns every file for which any of the given files is a
// transitive input: the reverse dependency closure of the file nodes,
// filtered to file nodes. It answers "which translation units and
// headers would have to be revisited if these files changed" — the
// file-to-file projection of RevDeps.
func (g *Graph) WhatInputs(files []*Node) []*Node {
	var out []*Node
	for _, n := range g.RevDeps(files, 0) {
		if n.Kind == KindFile {
			out = append(out, n)
		}
	}
	return out
}

// Reaches reports whether from transitively depends on to.
func (g *Graph) Reaches(from, to *Node) bool {
	return g.SomePath(from, to) != nil
}

// SomePath returns one shortest dependency chain from -> ... -> to as
// a list of traversed edges, nil if none exists, and an empty slice
// when from == to. Among equally short paths the lexicographically
// smallest (by node key at each hop) is returned, so the answer is
// deterministic.
func (g *Graph) SomePath(from, to *Node) []Edge {
	if from == nil || to == nil {
		return nil
	}
	if from == to {
		return []Edge{}
	}
	// BFS with sorted expansion: the first discovery of each node is
	// via the smallest-key predecessor at the shallowest depth.
	type hop struct {
		prev *Node
		via  EdgeKind
	}
	visited := map[*Node]hop{from: {}}
	frontier := []*Node{from}
	for len(frontier) > 0 && visited[to] == (hop{}) {
		var next []*Node
		for _, n := range frontier {
			for _, e := range sortedEdges(n.out) {
				if _, seen := visited[e.to]; seen {
					continue
				}
				visited[e.to] = hop{prev: n, via: e.kind}
				next = append(next, e.to)
			}
		}
		sortNodes(next)
		frontier = next
	}
	end, ok := visited[to]
	if !ok || end.prev == nil {
		return nil
	}
	var rev []Edge
	for n := to; n != from; {
		h := visited[n]
		rev = append(rev, Edge{Kind: h.via, From: h.prev.Key(), To: n.Key()})
		n = h.prev
	}
	out := make([]Edge, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// closure walks BFS over next(n), excluding the start set from the
// result, bounded by maxDepth levels.
func (g *Graph) closure(start []*Node, maxDepth int, next func(*Node) []edge) []*Node {
	seen := map[*Node]bool{}
	for _, n := range start {
		if n != nil {
			seen[n] = true
		}
	}
	frontier := append([]*Node(nil), start...)
	var out []*Node
	for depth := 0; len(frontier) > 0 && (maxDepth <= 0 || depth < maxDepth); depth++ {
		var nf []*Node
		for _, n := range frontier {
			if n == nil {
				continue
			}
			for _, e := range next(n) {
				if seen[e.to] {
					continue
				}
				seen[e.to] = true
				out = append(out, e.to)
				nf = append(nf, e.to)
			}
		}
		frontier = nf
	}
	sortNodes(out)
	return out
}

// sortedEdges orders edges by target key (then edge kind), for
// deterministic traversal.
func sortedEdges(es []edge) []edge {
	out := append([]edge(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].to.Key() != out[j].to.Key() {
			return out[i].to.Key() < out[j].to.Key()
		}
		return out[i].kind < out[j].kind
	})
	return out
}
