// Package query is an in-memory dependency-graph layer over a DUCTAPE
// program database — the PDB seen as what it fundamentally is: a graph
// of units (source files), classes, templates, and routines connected
// by include, inherit, instantiate, call, and definition edges.
//
// The query suite follows the shape of build-graph query tools
// (please's src/query/): deps and revdeps walk the graph forward and
// backward, somepath finds a connecting chain, reaches answers
// reachability, whatinputs maps a source file to everything that takes
// it as an input, and Affected computes the transitive invalidation
// set of a changed-file list — the computation the incremental pdblint
// driver (internal/analysis.RunIncremental) and the pdbquery CLI share.
//
// Edge direction follows dependency: an edge X -> Y means "X depends
// on Y" (X includes Y, X inherits from Y, X was instantiated from Y,
// X calls Y, X is defined in Y). Deps walks outgoing edges, RevDeps
// incoming ones. All query results are deterministically ordered by
// node key regardless of map iteration or build order.
package query

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pdt/internal/ductape"
)

// Kind classifies a graph node.
type Kind string

// Node kinds.
const (
	KindFile     Kind = "file"
	KindClass    Kind = "class"
	KindRoutine  Kind = "routine"
	KindTemplate Kind = "template"
)

// EdgeKind classifies a dependency edge.
type EdgeKind string

// Edge kinds, in the canonical presentation order.
const (
	EdgeInclude     EdgeKind = "include"     // file -> file it includes
	EdgeInherit     EdgeKind = "inherit"     // class -> base class
	EdgeInstantiate EdgeKind = "instantiate" // class/routine -> its template
	EdgeCall        EdgeKind = "call"        // routine -> callee
	EdgeDefine      EdgeKind = "define"      // entity -> file defining it
)

// Node is one graph vertex. Name is the canonical, merge-stable
// identity within the kind: the file name for files, the qualified
// name (plus signature for routines) for entities, suffixed with the
// definition location when one qualified name has several distinct
// definitions (ODR duplicates survive as distinct nodes).
type Node struct {
	Kind Kind
	Name string

	out []edge // dependencies (this node depends on edge.to)
	in  []edge // dependents   (edge.to depends on this node)
}

type edge struct {
	kind EdgeKind
	to   *Node
}

// Key returns the unique "kind:name" identity of the node.
func (n *Node) Key() string { return string(n.Kind) + ":" + n.Name }

func (n *Node) String() string { return n.Key() }

// Edge is one resolved dependency edge, as reported by path queries.
type Edge struct {
	Kind EdgeKind `json:"kind"`
	From string   `json:"from"`
	To   string   `json:"to"`
}

// Graph is the dependency graph of one program database.
type Graph struct {
	db    *ductape.PDB
	nodes map[string]*Node // by Key()

	fileNode     map[*ductape.File]*Node
	classNode    map[*ductape.Class]*Node
	routineNode  map[*ductape.Routine]*Node
	templateNode map[*ductape.Template]*Node
}

// New builds the dependency graph of db. Building is O(items + edges);
// the graph holds pointers into the database and stays valid as long
// as the database does.
func New(db *ductape.PDB) *Graph {
	g, _ := NewContext(context.Background(), db)
	return g
}

// buildCheckEvery is how many items/edge groups construction processes
// between context checks: small enough that an abandoned build on a
// monorepo-scale database stops within microseconds of cancellation,
// large enough that the check is free on the hot path.
const buildCheckEvery = 1024

// NewContext builds the dependency graph like New but honors ctx the
// way pdbio.LoadAll does: construction polls for cancellation between
// batches of items and returns ctx.Err() instead of a graph, so a
// server whose client disconnected mid-build does not keep burning a
// core on an abandoned graph. A nil error means the graph is complete.
func NewContext(ctx context.Context, db *ductape.PDB) (*Graph, error) {
	g := &Graph{
		db:           db,
		nodes:        map[string]*Node{},
		fileNode:     map[*ductape.File]*Node{},
		classNode:    map[*ductape.Class]*Node{},
		routineNode:  map[*ductape.Routine]*Node{},
		templateNode: map[*ductape.Template]*Node{},
	}
	if err := g.build(ctx); err != nil {
		return nil, err
	}
	return g, nil
}

// DB returns the database the graph was built from.
func (g *Graph) DB() *ductape.PDB { return g.db }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, nd := range g.nodes {
		n += len(nd.out)
	}
	return n
}

// Nodes returns every node sorted by key.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

// Lookup resolves a node by exact "kind:name" key, by bare name, or —
// for files — by base name. A bare name or base name that matches
// several nodes returns them all; the caller decides whether ambiguity
// is an error.
func (g *Graph) Lookup(spec string) []*Node {
	if n, ok := g.nodes[spec]; ok {
		return []*Node{n}
	}
	var out []*Node
	for _, n := range g.nodes {
		if n.Name == spec || matchesBase(n, spec) || bareEntityName(n) == spec {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

// bareEntityName strips the disambiguating "@file:line" and "#n"
// suffixes so every duplicate definition is found by the shared
// qualified name (the ODR-clash lookup case).
func bareEntityName(n *Node) string {
	if n.Kind == KindFile {
		return n.Name
	}
	name := n.Name
	if i := strings.LastIndex(name, "@"); i >= 0 {
		name = name[:i]
	} else if i := strings.LastIndex(name, "#"); i >= 0 {
		name = name[:i]
	}
	return name
}

// matchesBase reports whether spec names the file node by its path
// base ("matrix.h" for "include/matrix.h").
func matchesBase(n *Node, spec string) bool {
	if n.Kind != KindFile {
		return false
	}
	name := n.Name
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:] == spec
		}
	}
	return false
}

// --- construction -----------------------------------------------------------

func (g *Graph) build(ctx context.Context) error {
	db := g.db
	if err := ctx.Err(); err != nil {
		return err
	}

	// tick polls the context once per buildCheckEvery items so an
	// abandoned build stops promptly without paying a per-item check.
	step := 0
	tick := func() error {
		if step++; step%buildCheckEvery == 0 {
			return ctx.Err()
		}
		return nil
	}

	for _, f := range db.Files() {
		g.fileNode[f] = g.addNode(KindFile, f.Name())
		if err := tick(); err != nil {
			return err
		}
	}
	// Entity names can collide (ODR duplicates, unresolved overloads);
	// collisions get a "@file:line" location suffix, and a further "#n"
	// ordinal only if even the located name repeats.
	for _, c := range db.Classes() {
		g.classNode[c] = g.addEntityNode(KindClass, c.FullName(), locSuffix(c.Location()))
		if err := tick(); err != nil {
			return err
		}
	}
	for _, r := range db.Routines() {
		g.routineNode[r] = g.addEntityNode(KindRoutine, r.FullName(), locSuffix(r.Location()))
		if err := tick(); err != nil {
			return err
		}
	}
	for _, t := range db.Templates() {
		g.templateNode[t] = g.addEntityNode(KindTemplate, t.Name(), locSuffix(t.Location()))
		if err := tick(); err != nil {
			return err
		}
	}

	for _, f := range db.Files() {
		from := g.fileNode[f]
		for _, inc := range f.Includes() {
			g.addEdge(EdgeInclude, from, g.fileNode[inc])
		}
		if err := tick(); err != nil {
			return err
		}
	}
	for _, c := range db.Classes() {
		from := g.classNode[c]
		for _, b := range c.BaseClasses() {
			if b.Class != nil {
				g.addEdge(EdgeInherit, from, g.classNode[b.Class])
			}
		}
		if te := c.Template(); te != nil {
			g.addEdge(EdgeInstantiate, from, g.templateNode[te])
		}
		if loc := c.Location(); loc.File != nil {
			g.addEdge(EdgeDefine, from, g.fileNode[loc.File])
		}
		if err := tick(); err != nil {
			return err
		}
	}
	for _, r := range db.Routines() {
		from := g.routineNode[r]
		for _, call := range r.Callees() {
			g.addEdge(EdgeCall, from, g.routineNode[call.Call()])
		}
		if te := r.Template(); te != nil {
			g.addEdge(EdgeInstantiate, from, g.templateNode[te])
		}
		if loc := r.Location(); loc.File != nil {
			g.addEdge(EdgeDefine, from, g.fileNode[loc.File])
		}
		if err := tick(); err != nil {
			return err
		}
	}
	for _, t := range db.Templates() {
		if loc := t.Location(); loc.File != nil {
			g.addEdge(EdgeDefine, g.templateNode[t], g.fileNode[loc.File])
		}
		if err := tick(); err != nil {
			return err
		}
	}
	return nil
}

func locSuffix(l ductape.Location) string {
	if !l.Valid() {
		return ""
	}
	return fmt.Sprintf("@%s:%d", l.File.Name(), l.Line)
}

func (g *Graph) addNode(kind Kind, name string) *Node {
	n := &Node{Kind: kind, Name: name}
	if _, taken := g.nodes[n.Key()]; taken {
		for i := 2; ; i++ {
			n.Name = fmt.Sprintf("%s#%d", name, i)
			if _, taken := g.nodes[n.Key()]; !taken {
				break
			}
		}
	}
	g.nodes[n.Key()] = n
	return n
}

// addEntityNode names an entity by its qualified name, falling back to
// the location-suffixed name when the bare name is already taken —
// duplicate definitions stay distinct, and unique names stay short.
func (g *Graph) addEntityNode(kind Kind, name, suffix string) *Node {
	if _, taken := g.nodes[string(kind)+":"+name]; taken && suffix != "" {
		return g.addNode(kind, name+suffix)
	}
	return g.addNode(kind, name)
}

func (g *Graph) addEdge(kind EdgeKind, from, to *Node) {
	if from == nil || to == nil || from == to {
		return
	}
	for _, e := range from.out {
		if e.kind == kind && e.to == to {
			return
		}
	}
	from.out = append(from.out, edge{kind, to})
	to.in = append(to.in, edge{kind, from})
}

// NodeFor returns the node of a database object (a *ductape.File,
// *Class, *Routine, or *Template), or nil.
func (g *Graph) NodeFor(obj any) *Node {
	switch v := obj.(type) {
	case *ductape.File:
		return g.fileNode[v]
	case *ductape.Class:
		return g.classNode[v]
	case *ductape.Routine:
		return g.routineNode[v]
	case *ductape.Template:
		return g.templateNode[v]
	}
	return nil
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Key() < ns[j].Key() })
}
