package query

import (
	"reflect"
	"testing"

	"pdt/internal/ductape"
	"pdt/internal/pdb"
)

// testDB builds a small raw database with a known shape:
//
//	files:    main.cc -> a.h -> b.h   (includes)
//	          lib.cc  -> b.h
//	classes:  Base (a.h), Derived (main.cc) : Base
//	template: Box (b.h) instantiating class Box<int> (b.h)
//	routines: main (main.cc) calls helper (a.h); helper calls boxed (b.h);
//	          orphan (lib.cc) calls nothing
func testDB(t *testing.T) *ductape.PDB {
	t.Helper()
	return ductape.FromRaw(testRaw(0))
}

// testRaw builds the raw database with all item IDs shifted by delta —
// the same program under a different numbering.
func testRaw(delta int) *pdb.PDB {
	id := func(n int) int { return n + delta }
	fref := func(n int) pdb.Ref { return pdb.Ref{Prefix: "so", ID: id(n)} }
	loc := func(file, line int) pdb.Loc { return pdb.Loc{File: fref(file), Line: line, Col: 1} }
	return &pdb.PDB{
		Files: []*pdb.SourceFile{
			{ID: id(1), Name: "main.cc", Includes: []pdb.Ref{fref(2)}},
			{ID: id(2), Name: "a.h", Includes: []pdb.Ref{fref(3)}},
			{ID: id(3), Name: "b.h"},
			{ID: id(4), Name: "lib.cc", Includes: []pdb.Ref{fref(3)}},
		},
		Classes: []*pdb.Class{
			{ID: id(10), Name: "Base", Loc: loc(2, 1)},
			{ID: id(11), Name: "Derived", Loc: loc(1, 5),
				Bases: []pdb.BaseClass{{Access: "pub", Class: pdb.Ref{Prefix: "cl", ID: id(10)}}}},
			{ID: id(12), Name: "Box<int>", Loc: loc(3, 4),
				Template: pdb.Ref{Prefix: "te", ID: id(20)}, Instantiation: true},
		},
		Templates: []*pdb.Template{
			{ID: id(20), Name: "Box", Loc: loc(3, 1), Kind: "class"},
		},
		Routines: []*pdb.Routine{
			{ID: id(30), Name: "main", Loc: loc(1, 10),
				Pos:   pdb.Pos{BodyBegin: loc(1, 10), BodyEnd: loc(1, 12)},
				Calls: []pdb.Call{{Callee: pdb.Ref{Prefix: "ro", ID: id(31)}, Loc: loc(1, 11)}}},
			{ID: id(31), Name: "helper", Loc: loc(2, 10),
				Pos:   pdb.Pos{BodyBegin: loc(2, 10), BodyEnd: loc(2, 12)},
				Calls: []pdb.Call{{Callee: pdb.Ref{Prefix: "ro", ID: id(32)}, Loc: loc(2, 11)}}},
			{ID: id(32), Name: "boxed", Loc: loc(3, 10),
				Pos: pdb.Pos{BodyBegin: loc(3, 10), BodyEnd: loc(3, 12)}},
			{ID: id(33), Name: "orphan", Loc: loc(4, 2),
				Pos: pdb.Pos{BodyBegin: loc(4, 2), BodyEnd: loc(4, 4)}},
		},
	}
}

func keys(ns []*Node) []string {
	out := make([]string, 0, len(ns))
	for _, n := range ns {
		out = append(out, n.Key())
	}
	return out
}

func one(t *testing.T, g *Graph, spec string) *Node {
	t.Helper()
	ns := g.Lookup(spec)
	if len(ns) != 1 {
		t.Fatalf("Lookup(%q) = %v, want exactly one node", spec, keys(ns))
	}
	return ns[0]
}

func TestDepsAndRevDeps(t *testing.T) {
	g := New(testDB(t))

	mainCC := one(t, g, "file:main.cc")
	deps := keys(g.Deps([]*Node{mainCC}, 0))
	want := []string{"file:a.h", "file:b.h"}
	if !reflect.DeepEqual(deps, want) {
		t.Errorf("Deps(main.cc) = %v, want %v", deps, want)
	}

	// Depth-limited: only the direct include.
	deps1 := keys(g.Deps([]*Node{mainCC}, 1))
	if !reflect.DeepEqual(deps1, []string{"file:a.h"}) {
		t.Errorf("Deps(main.cc, depth 1) = %v", deps1)
	}

	bh := one(t, g, "file:b.h")
	rev := keys(g.RevDeps([]*Node{bh}, 0))
	// Every includer of b.h, everything defined in b.h, and the
	// entities defined in (and callers into) those files.
	wantRev := []string{
		"class:Base", "class:Box<int>", "class:Derived",
		"file:a.h", "file:lib.cc", "file:main.cc",
		"routine:boxed()", "routine:helper()", "routine:main()",
		"routine:orphan()", "template:Box",
	}
	if !reflect.DeepEqual(rev, wantRev) {
		t.Errorf("RevDeps(b.h) = %v, want %v", rev, wantRev)
	}
}

func TestEntityEdges(t *testing.T) {
	g := New(testDB(t))

	derived := one(t, g, "class:Derived")
	deps := keys(g.Deps([]*Node{derived}, 1))
	want := []string{"class:Base", "file:main.cc"}
	if !reflect.DeepEqual(deps, want) {
		t.Errorf("Deps(Derived, 1) = %v, want %v", deps, want)
	}

	box := one(t, g, "class:Box<int>")
	deps = keys(g.Deps([]*Node{box}, 1))
	want = []string{"file:b.h", "template:Box"}
	if !reflect.DeepEqual(deps, want) {
		t.Errorf("Deps(Box<int>, 1) = %v, want %v", deps, want)
	}

	mainRo := one(t, g, "routine:main()")
	deps = keys(g.Deps([]*Node{mainRo}, 0))
	want = []string{"file:a.h", "file:b.h", "file:main.cc", "routine:boxed()", "routine:helper()"}
	if !reflect.DeepEqual(deps, want) {
		t.Errorf("Deps(main, 0) = %v, want %v", deps, want)
	}
}

func TestSomePathAndReaches(t *testing.T) {
	g := New(testDB(t))
	from := one(t, g, "routine:main()")
	to := one(t, g, "file:b.h")

	path := g.SomePath(from, to)
	if path == nil {
		t.Fatal("no path from main to b.h")
	}
	// Shortest path: main -call-> helper -define-> a.h -include-> b.h is
	// length 3; main -define-> main.cc -include-> a.h -include-> b.h is
	// also 3; the lexicographically smallest first hop wins ("file:main.cc"
	// < "routine:helper()").
	if len(path) != 3 {
		t.Fatalf("path length %d: %v", len(path), path)
	}
	if path[0].To != "file:main.cc" || path[len(path)-1].To != "file:b.h" {
		t.Errorf("unexpected path %v", path)
	}
	if !g.Reaches(from, to) {
		t.Error("Reaches(main, b.h) = false")
	}
	if g.Reaches(to, from) {
		t.Error("Reaches(b.h, main) = true, want false")
	}
	if g.SomePath(to, from) != nil {
		t.Error("SomePath(b.h, main) found a path")
	}
	if p := g.SomePath(from, from); p == nil || len(p) != 0 {
		t.Errorf("SomePath(x, x) = %v, want empty path", p)
	}

	// Determinism: same path every time.
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(g.SomePath(from, to), path) {
			t.Fatal("SomePath is not deterministic")
		}
	}
}

func TestWhatInputs(t *testing.T) {
	g := New(testDB(t))
	ah := one(t, g, "file:a.h")
	got := keys(g.WhatInputs([]*Node{ah}))
	// Every file that (transitively) takes a.h as input — the reverse
	// closure projected to file nodes; entities along the way (Base,
	// helper, their dependents) are traversed but not reported.
	want := []string{"file:main.cc"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WhatInputs(a.h) = %v, want %v", got, want)
	}
}

func TestLookup(t *testing.T) {
	g := New(testDB(t))
	if n := one(t, g, "b.h"); n.Kind != KindFile {
		t.Errorf("bare lookup b.h = %v", n)
	}
	if ns := g.Lookup("no-such-node"); len(ns) != 0 {
		t.Errorf("Lookup(no-such-node) = %v", keys(ns))
	}
	// Base-name lookup for files with directory components is covered
	// by matchesBase; plain names match exactly.
	if n := one(t, g, "class:Derived"); n.Name != "Derived" {
		t.Errorf("Lookup(class:Derived) = %v", n)
	}
}

func TestAffectedClosure(t *testing.T) {
	g := New(testDB(t))

	// Changing b.h invalidates every includer and everything linked to
	// the entities involved.
	aff := g.Affected([]string{"b.h"})
	for _, unit := range []string{"b.h", "a.h", "main.cc", "lib.cc"} {
		if !aff.ContainsUnit(unit) {
			t.Errorf("Affected(b.h) misses unit %s (got %v)", unit, aff.Units())
		}
	}

	// Changing lib.cc: orphan has no links beyond its file, and lib.cc
	// only includes b.h — the a-side entities join only through b.h's
	// include neighborhood.
	aff = g.Affected([]string{"lib.cc"})
	if !aff.ContainsUnit("lib.cc") || !aff.ContainsUnit("b.h") {
		t.Errorf("Affected(lib.cc) = %v", aff.Units())
	}

	// Unknown files affect nothing.
	if n := g.Affected([]string{"ghost.cc"}).Len(); n != 0 {
		t.Errorf("Affected(ghost.cc) has %d nodes", n)
	}

	// Affected output is deterministic.
	a1 := g.Affected([]string{"b.h"}).Nodes()
	a2 := g.Affected([]string{"b.h"}).Nodes()
	if !reflect.DeepEqual(keys(a1), keys(a2)) {
		t.Error("Affected is not deterministic")
	}
}

func TestFingerprintStableAcrossRenumbering(t *testing.T) {
	fp1 := Fingerprint(ductape.FromRaw(testRaw(0)))
	fp2 := Fingerprint(ductape.FromRaw(testRaw(1000)))

	if !reflect.DeepEqual(fp1.Units(), fp2.Units()) {
		t.Fatalf("units differ: %v vs %v", fp1.Units(), fp2.Units())
	}
	for _, unit := range fp1.Units() {
		if !reflect.DeepEqual(fp1.Unit(unit), fp2.Unit(unit)) {
			t.Errorf("unit %s fingerprints differ under renumbering:\n%v\n%v",
				unit, fp1.Unit(unit), fp2.Unit(unit))
		}
	}
	for _, sec := range Sections() {
		if fp1.SectionDigest(sec) != fp2.SectionDigest(sec) {
			t.Errorf("section %s digest differs under renumbering", sec)
		}
	}
	if ch := fp1.ChangedUnits(fp2); len(ch) != 0 {
		t.Errorf("ChangedUnits across renumbering = %v, want none", ch)
	}
}

func TestFingerprintDetectsChange(t *testing.T) {
	raw := testRaw(0)
	fpOld := Fingerprint(ductape.FromRaw(raw))

	// Add a call to orphan (in lib.cc): only lib.cc's routine section
	// may change.
	raw2 := testRaw(0)
	raw2.Routines[3].Calls = []pdb.Call{{Callee: pdb.Ref{Prefix: "ro", ID: 32},
		Loc: pdb.Loc{File: pdb.Ref{Prefix: "so", ID: 4}, Line: 3, Col: 1}}}
	fpNew := Fingerprint(ductape.FromRaw(raw2))

	ch := fpNew.ChangedUnits(fpOld)
	if !reflect.DeepEqual(ch, []string{"lib.cc"}) {
		t.Fatalf("ChangedUnits = %v, want [lib.cc]", ch)
	}
	if fpOld.Unit("lib.cc")[SecRoutines] == fpNew.Unit("lib.cc")[SecRoutines] {
		t.Error("routine section of lib.cc did not change")
	}
	if fpOld.Unit("lib.cc")[SecFiles] != fpNew.Unit("lib.cc")[SecFiles] {
		t.Error("file section of lib.cc changed unexpectedly")
	}
	if fpOld.SectionDigest(SecFiles) != fpNew.SectionDigest(SecFiles) {
		t.Error("global files digest changed on a call-only diff")
	}
	if fpOld.SectionDigest(SecRoutines) == fpNew.SectionDigest(SecRoutines) {
		t.Error("global routines digest did not change")
	}
}

func TestDuplicateEntityNamesStayDistinct(t *testing.T) {
	raw := testRaw(0)
	// A second class named Base at a different location (an ODR clash).
	raw.Classes = append(raw.Classes, &pdb.Class{ID: 99, Name: "Base",
		Loc: pdb.Loc{File: pdb.Ref{Prefix: "so", ID: 3}, Line: 7, Col: 1}})
	g := New(ductape.FromRaw(raw))
	ns := g.Lookup("Base")
	if len(ns) != 2 {
		t.Fatalf("expected 2 Base nodes, got %v", keys(ns))
	}
	if ns[0].Key() == ns[1].Key() {
		t.Error("duplicate classes share a node key")
	}
}
