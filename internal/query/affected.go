package query

import (
	"sort"
)

// AffectedSet is the transitive invalidation set of a changed-file
// list: every unit (source file) and entity whose analysis results a
// change to those files could alter. It is deliberately conservative —
// the incremental lint driver pairs it with exact content-addressed
// fingerprints, and the soundness contract (enforced by property
// tests) is that the set is always a superset of the units whose
// findings actually change.
type AffectedSet struct {
	nodes map[*Node]bool
}

// Affected computes the invalidation closure of the changed files,
// named exactly or by path base. Influence propagates along:
//
//   - include edges, both directions: a changed header invalidates
//     every includer, and a changed includer can rewire cycles and
//     unused-include judgements anywhere below it;
//   - definition edges, both directions: a changed file invalidates
//     the entities it defines, and an invalidated entity drags in its
//     defining unit (so cached per-unit findings there cannot be
//     trusted);
//   - call, inherit, and instantiate edges, both directions: liveness
//     flows callee-ward, hierarchy and bloat findings anchor at either
//     end of their edges.
//
// Changed names that match no file node are ignored (a deleted file
// no longer has a node; its former dependents were re-fingerprinted
// away by the cache layer).
func (g *Graph) Affected(changed []string) *AffectedSet {
	set := &AffectedSet{nodes: map[*Node]bool{}}
	var frontier []*Node
	mark := func(n *Node) {
		if n != nil && !set.nodes[n] {
			set.nodes[n] = true
			frontier = append(frontier, n)
		}
	}
	for _, name := range changed {
		for _, n := range g.Lookup("file:" + name) {
			mark(n)
		}
		for _, n := range g.Lookup(name) {
			if n.Kind == KindFile {
				mark(n)
			}
		}
	}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, e := range n.out {
			mark(e.to)
		}
		for _, e := range n.in {
			mark(e.to)
		}
	}
	return set
}

// Contains reports whether the node is in the affected set.
func (s *AffectedSet) Contains(n *Node) bool { return s != nil && s.nodes[n] }

// Len returns the number of affected nodes.
func (s *AffectedSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.nodes)
}

// Nodes returns every affected node sorted by key.
func (s *AffectedSet) Nodes() []*Node {
	if s == nil {
		return nil
	}
	out := make([]*Node, 0, len(s.nodes))
	for n := range s.nodes {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

// Units returns the names of the affected units (file nodes), sorted.
func (s *AffectedSet) Units() []string {
	if s == nil {
		return nil
	}
	var out []string
	for n := range s.nodes {
		if n.Kind == KindFile {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ContainsUnit reports whether the named unit is affected.
func (s *AffectedSet) ContainsUnit(name string) bool {
	if s == nil {
		return false
	}
	for n := range s.nodes {
		if n.Kind == KindFile && n.Name == name {
			return true
		}
	}
	return false
}
