package query

import (
	"context"
	"errors"
	"testing"
)

// TestNewContextCanceled pins the cancellation contract of graph
// construction: a canceled context aborts the build with ctx.Err()
// instead of returning a graph.
func TestNewContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, err := NewContext(ctx, testDB(t))
	if g != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("NewContext(canceled) = (%v, %v), want (nil, context.Canceled)", g, err)
	}
}

// TestNewContextLive verifies the context-aware constructor builds the
// same graph New does when the context stays live.
func TestNewContextLive(t *testing.T) {
	g, err := NewContext(context.Background(), testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	plain := New(testDB(t))
	if g.Len() != plain.Len() || g.EdgeCount() != plain.EdgeCount() {
		t.Errorf("NewContext graph (%d nodes, %d edges) != New graph (%d nodes, %d edges)",
			g.Len(), g.EdgeCount(), plain.Len(), plain.EdgeCount())
	}
}
